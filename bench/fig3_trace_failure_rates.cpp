// Figure 3: node failure rate (failures per node per second) over time for
// the Gnutella, OverNet and Microsoft traces, with the daily/weekly
// patterns and the order-of-magnitude gap between open-Internet and
// corporate environments.

#include "bench_util.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

void one_trace(const trace::SyntheticChurnParams& params,
               SimDuration window, double paper_mean_session_s,
               double paper_peak_rate, JsonEmitter& out) {
  const auto t = trace::generate_synthetic(params);
  const auto stats = t.session_stats();
  const auto pop = t.population_stats();
  std::printf("\n-- %s: %d sessions, active [%d..%d]\n", t.name().c_str(),
              t.session_count(), pop.min_active, pop.max_active);
  print_compare("mean session time (s, completed sessions)",
                paper_mean_session_s, stats.mean_seconds);
  // Peak failure rate over the trace (compare against the figure's axis).
  const auto series = t.failure_rate_series(window);
  double peak = 0.0;
  double sum = 0.0;
  for (const auto& [ts, rate] : series) {
    (void)ts;
    peak = std::max(peak, rate);
    sum += rate;
  }
  print_compare("peak failure rate (/node/s)", paper_peak_rate, peak);
  print_compare("mean failure rate (/node/s)",
                1.0 / paper_mean_session_s,
                series.empty() ? 0.0 : sum / series.size());
  out.row(t.name())
      .field("sessions", t.session_count())
      .field("min_active", pop.min_active)
      .field("max_active", pop.max_active)
      .field("mean_session_seconds", stats.mean_seconds)
      .field("peak_failure_rate", peak)
      .field("mean_failure_rate",
             series.empty() ? 0.0 : sum / series.size())
      .field("paper_mean_session_seconds", paper_mean_session_s)
      .field("paper_peak_failure_rate", paper_peak_rate);
  std::printf("# series: %s failure rate (hours\t/node/s)\n",
              t.name().c_str());
  for (const auto& [ts, rate] : series) {
    std::printf("%.4g\t%.4g\n", ts / 3600.0, rate);
  }
}

}  // namespace

int main() {
  print_header("Figure 3: failure rates of the three churn traces");
  const double ns = node_scale();
  const double ts = full_scale() ? 1.0 : 0.2;
  JsonEmitter out("fig3");
  // Paper peaks read off Figure 3: Gnutella/OverNet ~3e-4, Microsoft ~2e-5.
  one_trace(trace::gnutella_params(ns, ts), minutes(10), 2.3 * 3600, 3.0e-4,
            out);
  one_trace(trace::overnet_params(std::max(0.2, ns * 4), ts), minutes(10),
            134 * 60.0, 3.0e-4, out);
  one_trace(trace::microsoft_params(ns / 5, ts), hours(1), 37.7 * 3600,
            2.0e-5, out);
  return 0;
}
