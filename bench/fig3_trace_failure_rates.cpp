// Figure 3: node failure rate (failures per node per second) over time for
// the Gnutella, OverNet and Microsoft traces, with the daily/weekly
// patterns and the order-of-magnitude gap between open-Internet and
// corporate environments.
//
// Supports `--jobs N`: the three traces are independent generations, so
// they fan out across worker threads (sweep_runner.hpp); output is
// byte-identical to the serial run.

#include "bench_util.hpp"
#include "sweep_runner.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

struct TraceSpec {
  trace::SyntheticChurnParams params;
  SimDuration window;
  double paper_mean_session_s;
  double paper_peak_rate;
};

void one_trace(const TraceSpec& spec, TrialSink& sink) {
  const auto t = trace::generate_synthetic(spec.params);
  const auto stats = t.session_stats();
  const auto pop = t.population_stats();
  sink.printf("\n-- %s: %d sessions, active [%d..%d]\n", t.name().c_str(),
              t.session_count(), pop.min_active, pop.max_active);
  sink.printf("  %-44s paper=%-10.4g measured=%-10.4g \n",
              "mean session time (s, completed sessions)",
              spec.paper_mean_session_s, stats.mean_seconds);
  // Peak failure rate over the trace (compare against the figure's axis).
  const auto series = t.failure_rate_series(spec.window);
  double peak = 0.0;
  double sum = 0.0;
  for (const auto& [ts, rate] : series) {
    (void)ts;
    peak = std::max(peak, rate);
    sum += rate;
  }
  const double mean_rate = series.empty() ? 0.0 : sum / series.size();
  sink.printf("  %-44s paper=%-10.4g measured=%-10.4g \n",
              "peak failure rate (/node/s)", spec.paper_peak_rate, peak);
  sink.printf("  %-44s paper=%-10.4g measured=%-10.4g \n",
              "mean failure rate (/node/s)", 1.0 / spec.paper_mean_session_s,
              mean_rate);
  const std::string name = t.name();
  const int sessions = t.session_count();
  const double mean_session = stats.mean_seconds;
  const double paper_mean = spec.paper_mean_session_s;
  const double paper_peak = spec.paper_peak_rate;
  sink.emit([=, min_active = pop.min_active,
             max_active = pop.max_active](JsonEmitter& out) {
    out.row(name)
        .field("sessions", sessions)
        .field("min_active", min_active)
        .field("max_active", max_active)
        .field("mean_session_seconds", mean_session)
        .field("peak_failure_rate", peak)
        .field("mean_failure_rate", mean_rate)
        .field("paper_mean_session_seconds", paper_mean)
        .field("paper_peak_failure_rate", paper_peak);
  });
  sink.printf("# series: %s failure rate (hours\t/node/s)\n",
              t.name().c_str());
  for (const auto& [ts, rate] : series) {
    sink.printf("%.4g\t%.4g\n", ts / 3600.0, rate);
  }
}

}  // namespace

int main(int argc, char** argv) {
  print_header("Figure 3: failure rates of the three churn traces");
  const double ns = node_scale();
  const double ts = full_scale() ? 1.0 : 0.2;
  JsonEmitter out("fig3");
  // Paper peaks read off Figure 3: Gnutella/OverNet ~3e-4, Microsoft ~2e-5.
  const TraceSpec specs[] = {
      {trace::gnutella_params(ns, ts), minutes(10), 2.3 * 3600, 3.0e-4},
      {trace::overnet_params(std::max(0.2, ns * 4), ts), minutes(10),
       134 * 60.0, 3.0e-4},
      {trace::microsoft_params(ns / 5, ts), hours(1), 37.7 * 3600, 2.0e-5},
  };
  run_sweep(parse_jobs(argc, argv), std::size(specs), out,
            [&](std::size_t i, TrialSink& sink) { one_trace(specs[i], sink); });
  return 0;
}
