// Figure 4: RDP and control traffic over (normalised) time for the three
// real-world traces, plus the control-traffic breakdown by message type
// for the Gnutella trace. Also checks the headline aggregate: maintenance
// overhead below half a control message per second per node on Gnutella.

#include "bench_util.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

struct TraceRun {
  std::string name;
  trace::ChurnTrace trace;
  double paper_rdp;
  double paper_ctrl;
};

void run_one(const TraceRun& tr, bool breakdown, JsonEmitter& out) {
  overlay::DriverConfig dcfg = base_driver_config(200);
  WallTimer timer;
  overlay::OverlayDriver driver(make_topology(TopologyKind::kGATech),
                                make_net_config(TopologyKind::kGATech),
                                dcfg);
  driver.run_trace(tr.trace);
  emit_summary_row(out, tr.name, "topology=GATech",
                   summarize(driver, timer.seconds()));
  auto& m = driver.metrics();
  std::printf("\n-- %s\n", tr.name.c_str());
  print_compare("mean RDP", tr.paper_rdp, m.mean_rdp());
  print_compare("control traffic (msgs/s/node)", tr.paper_ctrl,
                m.control_traffic_rate());
  print_compare("lookup loss rate", 1.6e-5, m.loss_rate());
  print_compare("incorrect delivery rate", 0.0,
                m.incorrect_delivery_rate());

  const SimTime end = tr.trace.duration();
  const double norm = end > 0 ? 1.0 / to_seconds(end) : 1.0;
  print_series((tr.name + " RDP vs normalised time").c_str(),
               m.rdp_series(), norm);
  print_series((tr.name + " control traffic vs normalised time").c_str(),
               m.control_traffic_series(end), norm);
  if (breakdown) {
    using pastry::TrafficClass;
    const TrafficClass classes[] = {
        TrafficClass::kDistanceProbes, TrafficClass::kLeafSetTraffic,
        TrafficClass::kRtProbes, TrafficClass::kAcksRetransmits,
        TrafficClass::kJoin};
    for (const auto c : classes) {
      print_series((tr.name + " " +
                    std::string(pastry::traffic_class_name(c)) +
                    " (msgs/s/node) vs hours")
                       .c_str(),
                   m.control_traffic_series(c, end), 1.0 / 3600.0);
    }
  }
}

}  // namespace

int main() {
  print_header(
      "Figure 4: RDP and control traffic for the real-world traces");
  const double ns = node_scale();
  const double ts = full_scale() ? 1.0 : 0.05;
  // Paper values read off Figure 4 / Section 5.3: RDP ~1.8 (GATech),
  // control traffic ~0.25 for Gnutella/OverNet and ~3x lower (Microsoft).
  std::vector<TraceRun> runs;
  runs.push_back({"Gnutella",
                  trace::generate_synthetic(trace::gnutella_params(ns, ts)),
                  1.8, 0.245});
  runs.push_back(
      {"OverNet",
       trace::generate_synthetic(
           trace::overnet_params(std::max(0.2, ns * 4), ts)),
       1.8, 0.25});
  runs.push_back(
      {"Microsoft",
       trace::generate_synthetic(trace::microsoft_params(ns / 5, ts / 4)),
       1.6, 0.082});
  JsonEmitter out("fig4");
  bool first = true;
  for (const auto& tr : runs) {
    run_one(tr, first, out);
    first = false;
  }
  return 0;
}
