// Section 5.3 "Active probing and per-hop acks": the reliability/delay
// ablation. Paper: 32% of lookups lost with neither technique; 2.8e-5
// loss with acks only; 1.6e-5 with both; active probing alone cannot get
// below ~1e-3 (minimum probing period); acks-only RDP is 17% higher than
// both at 0.01 lookups/s/node and 61% higher at 0.001.

#include "bench_util.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

RunSummary run_variant(bool acks, bool probing, double lookup_rate,
                       std::uint64_t seed) {
  auto dcfg = base_driver_config(seed);
  dcfg.lookup_rate_per_node = lookup_rate;
  dcfg.pastry.per_hop_acks = acks;
  dcfg.pastry.active_rt_probing = probing;
  if (!acks && !probing) {
    // The paper's "neither" variant also lacks fast leaf-set detection
    // tuning; keep Tls at default but rely on nothing else.
  }
  return run_experiment(TopologyKind::kGATech, dcfg, bench_gnutella(46));
}

}  // namespace

int main() {
  print_header("Section 5.3 table: active probing and per-hop acks");
  JsonEmitter out("tab_ablation");

  std::printf("\nvariant\t\t\tloss\tpaper_loss\tRDP\tctrl\n");
  const auto both = run_variant(true, true, 0.01, 1000);
  emit_summary_row(out, "acks+probing", "lookup_rate=0.01", both);
  std::printf("acks+probing\t\t%.3g\t%.3g\t\t%.2f\t%.3f\n", both.loss_rate,
              1.6e-5, both.rdp, both.control_traffic);
  const auto acks_only = run_variant(true, false, 0.01, 1001);
  emit_summary_row(out, "acks_only", "lookup_rate=0.01", acks_only);
  std::printf("acks only\t\t%.3g\t%.3g\t\t%.2f\t%.3f\n",
              acks_only.loss_rate, 2.8e-5, acks_only.rdp,
              acks_only.control_traffic);
  const auto probe_only = run_variant(false, true, 0.01, 1002);
  emit_summary_row(out, "probing_only", "lookup_rate=0.01", probe_only);
  // Paper: probing alone cannot reach 1e-5-order loss; at the 5% tuning
  // target the raw loss is ~5.3%.
  std::printf("probing only\t\t%.3g\t%.3g\t\t%.2f\t%.3f\n",
              probe_only.loss_rate, 0.053, probe_only.rdp,
              probe_only.control_traffic);
  const auto neither = run_variant(false, false, 0.01, 1003);
  emit_summary_row(out, "neither", "lookup_rate=0.01", neither);
  std::printf("neither\t\t\t%.3g\t%.3g\t\t%.2f\t%.3f\n", neither.loss_rate,
              0.32, neither.rdp, neither.control_traffic);

  print_compare("acks-only RDP / both RDP at 0.01 lookups/s (paper 1.17)",
                1.17, acks_only.rdp / both.rdp, "(ratio)");

  // Low application traffic: acks-only degrades much more.
  const auto both_low = run_variant(true, true, 0.001, 1004);
  const auto acks_low = run_variant(true, false, 0.001, 1005);
  emit_summary_row(out, "acks+probing", "lookup_rate=0.001", both_low);
  emit_summary_row(out, "acks_only", "lookup_rate=0.001", acks_low);
  print_compare("acks-only RDP / both RDP at 0.001 lookups/s (paper 1.61)",
                1.61, acks_low.rdp / both_low.rdp, "(ratio)");

  std::printf(
      "\nshape checks: loss(neither) >> loss(probing only) > "
      "loss(acks only) >= loss(both); ack-only delay penalty grows as "
      "application traffic shrinks.\n");
  return 0;
}
