#pragma once

// Shared harness for the paper-reproduction benches. Each bench binary
// regenerates one table or figure from the paper's evaluation (Section 5):
// it builds the environment (topology + churn trace + workload), runs the
// overlay simulation, and prints the series/rows the paper reports,
// together with the paper's own numbers where it states them.
//
// Scale: by default runs are scaled down so the full bench suite finishes
// in minutes. Set REPRO_FULL=1 for paper-scale runs (hours).

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "net/corpnet.hpp"
#include "net/hier_as.hpp"
#include "net/transit_stub.hpp"
#include "overlay/driver.hpp"
#include "overlay/sharded_driver.hpp"
#include "trace/churn_generators.hpp"

namespace mspastry::bench {

inline bool full_scale() {
  const char* v = std::getenv("REPRO_FULL");
  return v != nullptr && v[0] == '1';
}

/// Node-count scale factor relative to the paper (1.0 = paper scale).
inline double node_scale() { return full_scale() ? 1.0 : 0.1; }

/// Trace-length scale factor relative to the paper.
inline double time_scale() { return full_scale() ? 1.0 : 0.033; }

// --- Timing, memory, and checksum helpers ----------------------------------

/// Wall-clock stopwatch (starts on construction).
class WallTimer {
 public:
  double seconds() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Peak resident set size of this process, in bytes (0 if unavailable).
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

/// FNV-1a accumulation over fixed-width values; used for the determinism
/// checksums recorded in BENCH_*.json (same seed + same code must give
/// the same digest, across event-core rewrites).
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

inline std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t hash_f64(std::uint64_t h, double v) {
  // Hash the bit pattern; normalise -0.0 so it digests like 0.0.
  if (v == 0.0) v = 0.0;
  return hash_u64(h, std::bit_cast<std::uint64_t>(v));
}

// --- Shared JSON emitter ----------------------------------------------------
//
// Every bench binary can append machine-readable rows next to its table
// output: JsonEmitter writes BENCH_<bench>.json in the working directory
// (an array of row objects under a tiny header). CI uploads these as the
// per-PR perf trajectory; EXPERIMENTS.md explains how to compare runs.

class JsonEmitter {
 public:
  class Row {
   public:
    Row& field(const char* key, const std::string& v) {
      append_key(key);
      body_ += '"';
      for (const char c : v) {
        if (c == '"' || c == '\\') {
          body_ += '\\';
          body_ += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          body_ += buf;
        } else {
          body_ += c;
        }
      }
      body_ += '"';
      return *this;
    }
    Row& field(const char* key, const char* v) {
      return field(key, std::string(v));
    }
    Row& field(const char* key, double v) {
      append_key(key);
      if (std::isfinite(v)) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        body_ += buf;
      } else {
        body_ += "null";
      }
      return *this;
    }
    Row& field(const char* key, std::uint64_t v) {
      append_key(key);
      body_ += std::to_string(v);
      return *this;
    }
    Row& field(const char* key, std::int64_t v) {
      append_key(key);
      body_ += std::to_string(v);
      return *this;
    }
    Row& field(const char* key, int v) {
      return field(key, static_cast<std::int64_t>(v));
    }
    Row& field(const char* key, bool v) {
      append_key(key);
      body_ += v ? "true" : "false";
      return *this;
    }
    /// Checksums are emitted as fixed-width hex strings so diffs of two
    /// BENCH files line up visually.
    Row& hex(const char* key, std::uint64_t v) {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%016llx",
                    static_cast<unsigned long long>(v));
      return field(key, buf);
    }

   private:
    friend class JsonEmitter;
    void append_key(const char* key) {
      if (!body_.empty()) body_ += ", ";
      body_ += '"';
      body_ += key;
      body_ += "\": ";
    }
    std::string body_;
  };

  explicit JsonEmitter(std::string bench) : bench_(std::move(bench)) {}

  /// Write to an explicit path instead of BENCH_<bench>.json (tools such
  /// as trace_explorer reuse the emitter outside the bench harness).
  JsonEmitter(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  ~JsonEmitter() { write(); }

  JsonEmitter(const JsonEmitter&) = delete;
  JsonEmitter& operator=(const JsonEmitter&) = delete;

  /// Start a new row; fields can be chained onto the returned reference
  /// (stable until write()).
  Row& row(const std::string& name) {
    rows_.emplace_back();
    rows_.back().field("name", name);
    return rows_.back();
  }

  /// Write BENCH_<bench>.json; called automatically on destruction.
  void write() {
    if (written_) return;
    written_ = true;
    const std::string path =
        path_.empty() ? "BENCH_" + bench_ + ".json" : path_;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"schema\": 1,\n  \"bench\": \"%s\",\n",
                 bench_.c_str());
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {%s}%s\n", rows_[i].body_.c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  std::string bench_;
  std::string path_;  // empty: derive BENCH_<bench>.json
  std::deque<Row> rows_;
  bool written_ = false;
};

enum class TopologyKind { kGATech, kMercator, kCorpNet };

inline std::shared_ptr<net::Topology> make_topology(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kGATech:
      return std::make_shared<net::TransitStubTopology>(
          full_scale() ? net::TransitStubParams{}
                       : net::TransitStubParams::scaled(6, 4, 5));
    case TopologyKind::kMercator: {
      net::HierASParams p;
      if (!full_scale()) {
        p.autonomous_systems = 80;
        p.routers_per_as = 15;
      }
      return std::make_shared<net::HierASTopology>(p);
    }
    case TopologyKind::kCorpNet:
      return std::make_shared<net::CorpNetTopology>(net::CorpNetParams{});
  }
  return nullptr;
}

inline net::NetworkConfig make_net_config(TopologyKind kind,
                                          double loss_rate = 0.0) {
  net::NetworkConfig cfg;
  cfg.loss_rate = loss_rate;
  // The paper attaches GATech/CorpNet end nodes via 1 ms LAN links and
  // Mercator end nodes directly.
  cfg.lan_delay = kind == TopologyKind::kMercator ? 0 : milliseconds(1);
  return cfg;
}

/// The paper's base configuration (Section 5.1).
inline overlay::DriverConfig base_driver_config(std::uint64_t seed = 7) {
  overlay::DriverConfig cfg;
  cfg.lookup_rate_per_node = 0.01;
  cfg.metrics_window = minutes(10);
  cfg.warmup = full_scale() ? hours(1) : minutes(10);
  cfg.seed = seed;
  return cfg;
}

struct RunSummary {
  double rdp = 0.0;
  double rdp_p50 = 0.0;
  double control_traffic = 0.0;
  double loss_rate = 0.0;
  double incorrect_rate = 0.0;
  std::uint64_t lookups = 0;
  double join_latency_p50 = 0.0;
  double join_latency_p95 = 0.0;
  pastry::Counters counters;

  // Performance accounting (filled by run_experiment).
  double wall_seconds = 0.0;
  std::uint64_t executed_events = 0;  ///< simulator events in the run
  double events_per_sec = 0.0;        ///< executed_events / wall_seconds
  std::uint64_t digest = 0;           ///< determinism checksum, see below
};

/// Determinism checksum over everything the run *computed* (not how fast
/// it computed it): executed-event count plus a digest of the headline
/// metrics and protocol counters. Two builds of the same (seed, config)
/// must produce identical digests — this is how event-core rewrites prove
/// they preserved behaviour.
inline std::uint64_t summary_digest(const RunSummary& s) {
  std::uint64_t h = kFnvOffset;
  h = hash_u64(h, s.executed_events);
  h = hash_f64(h, s.rdp);
  h = hash_f64(h, s.rdp_p50);
  h = hash_f64(h, s.control_traffic);
  h = hash_f64(h, s.loss_rate);
  h = hash_f64(h, s.incorrect_rate);
  h = hash_u64(h, s.lookups);
  h = hash_f64(h, s.join_latency_p50);
  h = hash_f64(h, s.join_latency_p95);
  h = hash_u64(h, s.counters.heartbeats_sent);
  h = hash_u64(h, s.counters.rt_probes_sent);
  h = hash_u64(h, s.counters.ls_probes_sent);
  h = hash_u64(h, s.counters.distance_probes_sent);
  h = hash_u64(h, s.counters.acks_sent);
  h = hash_u64(h, s.counters.ack_timeouts);
  h = hash_u64(h, s.counters.lookups_forwarded);
  h = hash_u64(h, s.counters.joins_completed);
  h = hash_u64(h, s.counters.nodes_marked_faulty);
  return h;
}

/// Summarise a driver that has already run (for benches that construct
/// their own OverlayDriver, e.g. to attach apps or read series).
inline RunSummary summarize(overlay::OverlayDriver& driver,
                            double wall_seconds) {
  RunSummary s;
  s.wall_seconds = wall_seconds;
  s.executed_events = driver.sim().executed_events();
  s.events_per_sec =
      s.wall_seconds > 0 ? s.executed_events / s.wall_seconds : 0.0;
  auto& m = driver.metrics();
  s.rdp = m.mean_rdp();
  s.rdp_p50 = m.rdp_samples().quantile(0.5);
  s.control_traffic = m.control_traffic_rate();
  s.loss_rate = m.loss_rate();
  s.incorrect_rate = m.incorrect_delivery_rate();
  s.lookups = m.lookups_issued();
  s.join_latency_p50 = m.join_latency_samples().quantile(0.5);
  s.join_latency_p95 = m.join_latency_samples().quantile(0.95);
  s.counters = driver.counters();
  s.digest = summary_digest(s);
  return s;
}

/// Summarise a sharded-driver run: same shape, so single-threaded and
/// sharded runs of the sharded harness can be digest-compared row to row.
inline RunSummary summarize(overlay::ShardedDriver& driver,
                            double wall_seconds) {
  RunSummary s;
  s.wall_seconds = wall_seconds;
  s.executed_events = driver.executed_events();
  s.events_per_sec =
      s.wall_seconds > 0 ? s.executed_events / s.wall_seconds : 0.0;
  auto& m = driver.metrics();
  s.rdp = m.mean_rdp();
  s.rdp_p50 = m.rdp_samples().quantile(0.5);
  s.control_traffic = m.control_traffic_rate();
  s.loss_rate = m.loss_rate();
  s.incorrect_rate = m.incorrect_delivery_rate();
  s.lookups = m.lookups_issued();
  s.join_latency_p50 = m.join_latency_samples().quantile(0.5);
  s.join_latency_p95 = m.join_latency_samples().quantile(0.95);
  s.counters = driver.counters();
  s.digest = summary_digest(s);
  return s;
}

/// Run one trace-driven experiment and summarise.
inline RunSummary run_experiment(TopologyKind kind,
                                 const overlay::DriverConfig& dcfg,
                                 const trace::ChurnTrace& trace,
                                 double loss_rate = 0.0) {
  WallTimer timer;
  overlay::OverlayDriver driver(make_topology(kind),
                                make_net_config(kind, loss_rate), dcfg);
  driver.run_trace(trace);
  return summarize(driver, timer.seconds());
}

/// Append the standard row shape shared by all trace-driven benches:
/// identification, wall-clock, throughput, checksum, headline metrics.
inline JsonEmitter::Row& emit_summary_row(JsonEmitter& out,
                                          const std::string& name,
                                          const std::string& params,
                                          const RunSummary& s) {
  return out.row(name)
      .field("params", params)
      .field("wall_seconds", s.wall_seconds)
      .field("executed_events", s.executed_events)
      .field("events_per_sec", s.events_per_sec)
      .hex("digest", s.digest)
      .field("rdp", s.rdp)
      .field("control_traffic", s.control_traffic)
      .field("loss_rate", s.loss_rate)
      .field("incorrect_rate", s.incorrect_rate)
      .field("lookups", s.lookups);
}

/// Gnutella-like churn scaled for bench runs.
inline trace::ChurnTrace bench_gnutella(std::uint64_t seed = 11) {
  return trace::generate_synthetic(
      trace::gnutella_params(node_scale(), std::max(0.02, time_scale()),
                             seed));
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
  std::printf("mode: %s scale (set REPRO_FULL=1 for paper scale)\n",
              full_scale() ? "PAPER" : "reduced");
}

/// One "paper says X, we measured Y" comparison row.
inline void print_compare(const char* what, double paper, double measured,
                          const char* unit = "") {
  std::printf("  %-44s paper=%-10.4g measured=%-10.4g %s\n", what, paper,
              measured, unit);
}

inline void print_series(const char* name,
                         const std::vector<overlay::Metrics::SeriesPoint>& s,
                         double x_scale = 1.0) {
  std::printf("# series: %s (x\ty)\n", name);
  for (const auto& p : s) {
    std::printf("%.6g\t%.6g\n", p.t_seconds * x_scale, p.value);
  }
}

}  // namespace mspastry::bench
