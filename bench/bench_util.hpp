#pragma once

// Shared harness for the paper-reproduction benches. Each bench binary
// regenerates one table or figure from the paper's evaluation (Section 5):
// it builds the environment (topology + churn trace + workload), runs the
// overlay simulation, and prints the series/rows the paper reports,
// together with the paper's own numbers where it states them.
//
// Scale: by default runs are scaled down so the full bench suite finishes
// in minutes. Set REPRO_FULL=1 for paper-scale runs (hours).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "net/corpnet.hpp"
#include "net/hier_as.hpp"
#include "net/transit_stub.hpp"
#include "overlay/driver.hpp"
#include "trace/churn_generators.hpp"

namespace mspastry::bench {

inline bool full_scale() {
  const char* v = std::getenv("REPRO_FULL");
  return v != nullptr && v[0] == '1';
}

/// Node-count scale factor relative to the paper (1.0 = paper scale).
inline double node_scale() { return full_scale() ? 1.0 : 0.1; }

/// Trace-length scale factor relative to the paper.
inline double time_scale() { return full_scale() ? 1.0 : 0.033; }

enum class TopologyKind { kGATech, kMercator, kCorpNet };

inline std::shared_ptr<net::Topology> make_topology(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kGATech:
      return std::make_shared<net::TransitStubTopology>(
          full_scale() ? net::TransitStubParams{}
                       : net::TransitStubParams::scaled(6, 4, 5));
    case TopologyKind::kMercator: {
      net::HierASParams p;
      if (!full_scale()) {
        p.autonomous_systems = 80;
        p.routers_per_as = 15;
      }
      return std::make_shared<net::HierASTopology>(p);
    }
    case TopologyKind::kCorpNet:
      return std::make_shared<net::CorpNetTopology>(net::CorpNetParams{});
  }
  return nullptr;
}

inline net::NetworkConfig make_net_config(TopologyKind kind,
                                          double loss_rate = 0.0) {
  net::NetworkConfig cfg;
  cfg.loss_rate = loss_rate;
  // The paper attaches GATech/CorpNet end nodes via 1 ms LAN links and
  // Mercator end nodes directly.
  cfg.lan_delay = kind == TopologyKind::kMercator ? 0 : milliseconds(1);
  return cfg;
}

/// The paper's base configuration (Section 5.1).
inline overlay::DriverConfig base_driver_config(std::uint64_t seed = 7) {
  overlay::DriverConfig cfg;
  cfg.lookup_rate_per_node = 0.01;
  cfg.metrics_window = minutes(10);
  cfg.warmup = full_scale() ? hours(1) : minutes(10);
  cfg.seed = seed;
  return cfg;
}

struct RunSummary {
  double rdp = 0.0;
  double rdp_p50 = 0.0;
  double control_traffic = 0.0;
  double loss_rate = 0.0;
  double incorrect_rate = 0.0;
  std::uint64_t lookups = 0;
  double join_latency_p50 = 0.0;
  double join_latency_p95 = 0.0;
  pastry::Counters counters;
};

/// Run one trace-driven experiment and summarise.
inline RunSummary run_experiment(TopologyKind kind,
                                 const overlay::DriverConfig& dcfg,
                                 const trace::ChurnTrace& trace,
                                 double loss_rate = 0.0) {
  overlay::OverlayDriver driver(make_topology(kind),
                                make_net_config(kind, loss_rate), dcfg);
  driver.run_trace(trace);
  RunSummary s;
  auto& m = driver.metrics();
  s.rdp = m.mean_rdp();
  s.rdp_p50 = m.rdp_samples().quantile(0.5);
  s.control_traffic = m.control_traffic_rate();
  s.loss_rate = m.loss_rate();
  s.incorrect_rate = m.incorrect_delivery_rate();
  s.lookups = m.lookups_issued();
  s.join_latency_p50 = m.join_latency_samples().quantile(0.5);
  s.join_latency_p95 = m.join_latency_samples().quantile(0.95);
  s.counters = driver.counters();
  return s;
}

/// Gnutella-like churn scaled for bench runs.
inline trace::ChurnTrace bench_gnutella(std::uint64_t seed = 11) {
  return trace::generate_synthetic(
      trace::gnutella_params(node_scale(), std::max(0.02, time_scale()),
                             seed));
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
  std::printf("mode: %s scale (set REPRO_FULL=1 for paper scale)\n",
              full_scale() ? "PAPER" : "reduced");
}

/// One "paper says X, we measured Y" comparison row.
inline void print_compare(const char* what, double paper, double measured,
                          const char* unit = "") {
  std::printf("  %-44s paper=%-10.4g measured=%-10.4g %s\n", what, paper,
              measured, unit);
}

inline void print_series(const char* name,
                         const std::vector<overlay::Metrics::SeriesPoint>& s,
                         double x_scale = 1.0) {
  std::printf("# series: %s (x\ty)\n", name);
  for (const auto& p : s) {
    std::printf("%.6g\t%.6g\n", p.t_seconds * x_scale, p.value);
  }
}

}  // namespace mspastry::bench
