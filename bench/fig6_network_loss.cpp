// Figure 6: RDP, control traffic, lookup loss rate and incorrect-delivery
// rate as the uniform network message loss rate varies from 0% to 5%,
// with the Gnutella trace on GATech.
//
// Supports `--jobs N`: each loss point is an independent simulation,
// fanned out across worker threads by sweep_runner.hpp; output is
// byte-identical to the serial run.

#include "bench_util.hpp"
#include "sweep_runner.hpp"

using namespace mspastry;
using namespace mspastry::bench;

int main(int argc, char** argv) {
  print_header("Figure 6: varying the network message loss rate");
  JsonEmitter out("fig6");

  // Paper values read off Figure 6 (at 0% and 5%).
  std::printf(
      "\nloss%%\tRDP\tctrl(msgs/s/node)\tlookup_loss\tincorrect\t"
      "ack_timeouts\tfalse_positives\n");
  run_sweep(
      parse_jobs(argc, argv), 6, out, [&](std::size_t i, TrialSink& sink) {
        const int pct = static_cast<int>(i);
        auto dcfg = base_driver_config(600 + static_cast<std::uint64_t>(pct));
        const auto trace = bench_gnutella(42);
        const auto s = run_experiment(TopologyKind::kGATech, dcfg, trace,
                                      pct / 100.0);
        sink.emit([s, pct](JsonEmitter& o) {
          emit_summary_row(o, "loss_sweep",
                           "net_loss_pct=" + std::to_string(pct), s)
              .field("net_loss_pct", pct)
              .field("ack_timeouts", s.counters.ack_timeouts)
              .field("false_positives", s.counters.false_positives);
        });
        sink.printf("%d\t%.2f\t%.3f\t%.3g\t%.3g\t%llu\t%llu\n", pct, s.rdp,
                    s.control_traffic, s.loss_rate, s.incorrect_rate,
                    (unsigned long long)s.counters.ack_timeouts,
                    (unsigned long long)s.counters.false_positives);
      });
  std::printf(
      "\npaper: RDP ~1.8 -> ~2.1 from 0%% to 5%%; control traffic rises "
      "slightly (0.245 -> ~0.27); lookup loss 1.5e-5 -> 3.3e-5; incorrect "
      "deliveries 0 at <=1%% and 1.6e-5 at 5%%. Shape to check: all four "
      "curves stay nearly flat — per-hop acks absorb link loss.\n");
  return 0;
}
