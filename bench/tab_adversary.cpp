// Adversarial routing f-sweep: lookup dependability as a growing fraction
// f of overlay nodes turns Byzantine, with and without the two
// countermeasures (diverse-path redundant lookups, leaf-set plausibility
// checks). Each cell builds a fresh overlay, corrupts round(f*N) nodes
// with one scripted behavior (drop / misroute / lie), then scores probe
// lookups issued from honest sources for honest-rooted keys — the
// secure-routing measurement convention. Prints one row per cell and
// writes BENCH_adversary.json.
//
// The headline claim (ISSUE/EXPERIMENTS.md): at f = 0.2 both
// countermeasures together recover >= 95% lookup success while the
// baseline is visibly degraded.
//
// Usage: tab_adversary [--seed=N] [--smoke] [--shards=N]
//   --smoke: the CI gate — only the corner cells (f=0 purity, f=0.2
//   baseline-vs-both), and a nonzero exit if the f=0.2 "both" cell
//   misses the SLO (incorrect < 1%, lookup failure < 5%).
//   --shards=N: run the cells on the parallel sharded engine instead
//   (joins-only trace, Poisson probe workload with the same honest-source
//   / honest-rooted-key conventions built into the ShardedDriver). Every
//   cell runs at 1 shard and at N shards; a digest mismatch between the
//   two fails the bench — the shard-count-invariance gate for the
//   adversary, on top of the same SLO gates.

#include <cstring>
#include <unordered_map>

#include "bench_util.hpp"
#include "overlay/adversary.hpp"
#include "overlay/sharded_driver.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

struct Cell {
  const char* config;  // baseline / diverse-path / density-checks / both
  int redundancy;
  bool checks;
  overlay::AdversaryBehavior behavior;
  double f;
};

struct CellResult {
  std::uint64_t issued = 0;
  std::uint64_t correct = 0;    // delivered at the oracle root
  std::uint64_t incorrect = 0;  // delivered, wrong node, never corrected
  pastry::Counters counters;
  std::uint64_t metrics_incorrect_adversarial = 0;
  std::uint64_t metrics_incorrect_stale = 0;
  std::uint64_t metrics_lost_devoured = 0;
  std::uint64_t executed_events = 0;
  std::uint64_t digest = 0;

  double success_rate() const {
    return issued == 0 ? 1.0
                       : static_cast<double>(correct) /
                             static_cast<double>(issued);
  }
  double failure_rate() const { return 1.0 - success_rate(); }
  double incorrect_rate() const {
    return issued == 0 ? 0.0
                       : static_cast<double>(incorrect) /
                             static_cast<double>(issued);
  }
};

struct ProbeOutcome {
  bool delivered = false;
  bool correct = false;
};

CellResult run_cell(const std::shared_ptr<const net::Topology>& topology,
                    std::uint64_t seed, const Cell& cell, int nodes,
                    int probes) {
  overlay::DriverConfig dcfg;
  dcfg.seed = seed;
  dcfg.warmup = 0;
  dcfg.pastry.lookup_redundancy = cell.redundancy;
  dcfg.pastry.leaf_plausibility_checks = cell.checks;
  overlay::OverlayDriver driver(topology, net::NetworkConfig{}, dcfg);

  std::unordered_map<std::uint64_t, ProbeOutcome> outcomes;
  driver.on_app_deliver = [&outcomes, &driver](net::Address self,
                                               const pastry::LookupMsg& m) {
    const auto it = outcomes.find(m.lookup_id);
    if (it == outcomes.end() || (it->second.delivered && it->second.correct)) {
      return;
    }
    const auto root = driver.oracle().root_of(m.key);
    const bool correct = root && *root == self;
    // First-correct-wins: any redundant copy landing at the true root
    // upgrades an earlier misdelivery.
    if (!it->second.delivered || correct) {
      it->second.delivered = true;
      it->second.correct = correct;
    }
  };

  for (int i = 0; i < nodes; ++i) {
    driver.add_node();
    driver.run_for(seconds(2));
  }
  driver.run_for(minutes(3));  // settle: leaf sets converge

  overlay::AdversaryController adv(driver, cell.behavior, 1.0,
                                   seed ^ 0xadd5a17ull);
  if (cell.f > 0.0) adv.corrupt_fraction(cell.f);

  for (int i = 0; i < probes; ++i) {
    auto src = driver.oracle().random_active(driver.rng());
    for (int tries = 0;
         src && adv.is_adversarial(src->second) && tries < 64; ++tries) {
      src = driver.oracle().random_active(driver.rng());
    }
    NodeId key = driver.rng().node_id();
    for (int tries = 0; tries < 64; ++tries) {
      const auto root = driver.oracle().root_of(key);
      if (root && !adv.is_adversarial(*root)) break;
      key = driver.rng().node_id();
    }
    const auto root = driver.oracle().root_of(key);
    if (!src || adv.is_adversarial(src->second) || !root ||
        adv.is_adversarial(*root)) {
      driver.run_for(seconds(1));
      continue;
    }
    // Register before issuing: a source that is itself the root delivers
    // synchronously inside issue_lookup.
    outcomes.emplace(driver.next_lookup_id(), ProbeOutcome{});
    driver.issue_lookup(src->second, key);
    driver.run_for(seconds(1));
  }
  driver.run_for(seconds(30));  // let stragglers land
  driver.finish();              // flush pending-incorrect attribution

  CellResult r;
  for (const auto& [id, p] : outcomes) {
    (void)id;
    ++r.issued;
    if (p.delivered && p.correct) ++r.correct;
    if (p.delivered && !p.correct) ++r.incorrect;
  }
  r.counters = driver.counters();
  const auto& m = driver.metrics();
  r.metrics_incorrect_adversarial = m.incorrect_misrouted_by_adversary();
  r.metrics_incorrect_stale = m.incorrect_stale_leaf_set();
  r.metrics_lost_devoured = m.lost_dropped_by_adversary();
  r.executed_events = driver.sim().executed_events();

  std::uint64_t h = kFnvOffset;
  h = hash_u64(h, r.issued);
  h = hash_u64(h, r.correct);
  h = hash_u64(h, r.incorrect);
  h = hash_u64(h, r.executed_events);
  h = hash_u64(h, r.counters.lookups_dropped_adversarial);
  h = hash_u64(h, r.counters.lookups_misrouted_adversarial);
  h = hash_u64(h, r.counters.ls_replies_corrupted);
  h = hash_u64(h, r.counters.redundant_lookup_copies);
  h = hash_u64(h, r.counters.leaf_candidates_rejected);
  r.digest = h;
  return r;
}

/// Sharded-engine counterpart of run_cell: a joins-only trace (one join
/// every 2 s, no failures — the same cadence the serial cell uses), then
/// the driver's own Poisson probe workload over a measurement window that
/// opens when the adversary arms. Scoring comes from the driver's metrics
/// (honest-source and honest-rooted-key probe conventions are built into
/// the ShardedDriver when an adversary is configured).
CellResult run_cell_sharded(
    const std::shared_ptr<const net::Topology>& topology, std::uint64_t seed,
    const Cell& cell, int nodes, std::size_t shards) {
  std::vector<trace::ChurnEvent> events;
  events.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    events.push_back({seconds(2) * i, i, trace::ChurnEventType::kJoin});
  }
  const trace::ChurnTrace joins(std::move(events), "adversary-joins");
  const SimTime arm_at = joins.duration() + minutes(3);  // settle first

  overlay::DriverConfig dcfg;
  dcfg.seed = seed;
  dcfg.warmup = arm_at;  // score only the armed window
  dcfg.lookup_rate_per_node = 0.01;
  dcfg.pastry.lookup_redundancy = cell.redundancy;
  dcfg.pastry.leaf_plausibility_checks = cell.checks;
  overlay::ShardedDriver driver(topology, net::NetworkConfig{}, dcfg,
                                shards);
  if (cell.f > 0.0) {
    overlay::ShardedAdversaryConfig adv;
    adv.behavior = cell.behavior;
    adv.fraction = cell.f;
    adv.arm_at = arm_at;
    adv.seed = seed ^ 0xadd5a17ull;
    driver.set_adversary(adv);
  }
  // Extra = settle + measurement window + straggler drain.
  driver.run_trace(joins, minutes(3) + minutes(5) + seconds(30));

  CellResult r;
  auto& m = driver.metrics();
  r.issued = m.lookups_issued();
  r.correct = m.lookups_delivered_correct();
  r.incorrect =
      m.incorrect_misrouted_by_adversary() + m.incorrect_stale_leaf_set();
  r.counters = driver.counters();
  r.metrics_incorrect_adversarial = m.incorrect_misrouted_by_adversary();
  r.metrics_incorrect_stale = m.incorrect_stale_leaf_set();
  r.metrics_lost_devoured = m.lost_dropped_by_adversary();
  r.executed_events = driver.executed_events();

  std::uint64_t h = kFnvOffset;
  h = hash_u64(h, r.issued);
  h = hash_u64(h, r.correct);
  h = hash_u64(h, r.incorrect);
  h = hash_u64(h, r.executed_events);
  h = hash_u64(h, r.counters.lookups_dropped_adversarial);
  h = hash_u64(h, r.counters.lookups_misrouted_adversarial);
  h = hash_u64(h, r.counters.ls_replies_corrupted);
  h = hash_u64(h, r.counters.redundant_lookup_copies);
  h = hash_u64(h, r.counters.leaf_candidates_rejected);
  h = hash_u64(h, r.metrics_lost_devoured);
  h = hash_u64(h, driver.packets_dropped_adversarial());
  r.digest = h;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 7;
  bool smoke = false;
  std::size_t shards = 0;  // 0 = classic single-threaded engine
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<std::size_t>(std::strtoull(argv[i] + 9, nullptr, 10));
      if (shards == 0) shards = 1;
    } else {
      std::fprintf(stderr, "usage: %s [--seed=N] [--smoke] [--shards=N]\n",
                   argv[0]);
      return 2;
    }
  }

  print_header("Adversarial routing: Byzantine fraction sweep");
  std::printf("seed: %llu%s\n", (unsigned long long)seed,
              smoke ? " (smoke: corner cells + SLO gate)" : "");
  if (shards > 0) {
    std::printf("engine: sharded; every cell runs at 1 and %zu shards and "
                "the digests must match\n",
                shards);
  }
  JsonEmitter out(shards > 0 ? "adversary_sharded" : "adversary");

  // Interception needs multi-hop routes: with l=32 a small overlay is
  // covered by every leaf set and lookups reach the root in one honest
  // hop, so the sweep runs bigger rings than the chaos scenarios do.
  const int nodes = full_scale() ? 500 : 160;
  const int probes = full_scale() ? 300 : 120;
  const auto topology = make_topology(TopologyKind::kGATech);

  constexpr struct {
    const char* name;
    int redundancy;
    bool checks;
  } kConfigs[] = {
      {"baseline", 1, false},
      {"diverse-path", 3, false},
      {"density-checks", 1, true},
      {"both", 3, true},
  };
  constexpr overlay::AdversaryBehavior kBehaviors[] = {
      overlay::AdversaryBehavior::kDrop,
      overlay::AdversaryBehavior::kMisroute,
      overlay::AdversaryBehavior::kLie,
  };
  constexpr double kFractions[] = {0.05, 0.1, 0.2, 0.3};

  std::vector<Cell> cells;
  if (smoke) {
    // Corner cells only: f=0 purity for "both" (countermeasures must not
    // hurt an honest overlay), and the f=0.2 baseline-vs-both contrast
    // for the two behaviors the SLO gates.
    cells.push_back({"both", 3, true, overlay::AdversaryBehavior::kDrop, 0.0});
    for (const auto b : {overlay::AdversaryBehavior::kDrop,
                         overlay::AdversaryBehavior::kMisroute}) {
      cells.push_back({"baseline", 1, false, b, 0.2});
      cells.push_back({"both", 3, true, b, 0.2});
    }
  } else {
    for (const auto& c : kConfigs) {
      // f=0 once per config (behavior irrelevant with nobody corrupted).
      cells.push_back({c.name, c.redundancy, c.checks,
                       overlay::AdversaryBehavior::kDrop, 0.0});
      for (const auto b : kBehaviors) {
        for (const double f : kFractions) {
          cells.push_back({c.name, c.redundancy, c.checks, b, f});
        }
      }
    }
  }

  std::printf("\n%-15s %-9s %5s %7s %8s %8s %7s %7s  %s\n", "config",
              "behavior", "f", "success", "incorr", "devoured", "misrte",
              "rejects", "digest");
  bool gate_ok = true;
  std::uint64_t suite_digest = kFnvOffset;
  for (const auto& cell : cells) {
    // Per-cell seed: mixed from the grid coordinates so each cell is
    // independently reproducible.
    std::uint64_t cell_seed = seed;
    for (const char* p = cell.config; *p != '\0'; ++p) {
      cell_seed = hash_u64(cell_seed, static_cast<std::uint64_t>(*p));
    }
    cell_seed = hash_u64(cell_seed,
                         static_cast<std::uint64_t>(cell.behavior) ^
                             static_cast<std::uint64_t>(cell.f * 1000.0));
    CellResult r;
    if (shards > 0) {
      const CellResult serial_like =
          run_cell_sharded(topology, cell_seed, cell, nodes, 1);
      r = run_cell_sharded(topology, cell_seed, cell, nodes, shards);
      if (r.digest != serial_like.digest) {
        std::printf("  GATE: %s/%s/f=%.2f digest differs between 1 and %zu "
                    "shards (%016llx vs %016llx)\n",
                    cell.config, overlay::to_string(cell.behavior), cell.f,
                    shards, (unsigned long long)serial_like.digest,
                    (unsigned long long)r.digest);
        gate_ok = false;
      }
    } else {
      r = run_cell(topology, cell_seed, cell, nodes, probes);
    }
    suite_digest = hash_u64(suite_digest, r.digest);

    const char* behavior_name =
        cell.f == 0.0 ? "none" : overlay::to_string(cell.behavior);
    std::printf("%-15s %-9s %5.2f %7.3f %8.3f %8llu %7llu %7llu  %016llx\n",
                cell.config, behavior_name, cell.f, r.success_rate(),
                r.incorrect_rate(),
                (unsigned long long)r.counters.lookups_dropped_adversarial,
                (unsigned long long)r.counters.lookups_misrouted_adversarial,
                (unsigned long long)r.counters.leaf_candidates_rejected,
                (unsigned long long)r.digest);

    out.row(std::string(cell.config) + "/" + behavior_name + "/f=" +
            std::to_string(cell.f).substr(0, 4))
        .field("config", cell.config)
        .field("behavior", behavior_name)
        .field("fraction", cell.f)
        .field("issued", r.issued)
        .field("success_rate", r.success_rate())
        .field("failure_rate", r.failure_rate())
        .field("incorrect_rate", r.incorrect_rate())
        .field("adversary_drops", r.counters.lookups_dropped_adversarial)
        .field("adversary_misroutes",
               r.counters.lookups_misrouted_adversarial)
        .field("replies_corrupted", r.counters.ls_replies_corrupted +
                                        r.counters.nn_replies_corrupted)
        .field("redundant_copies", r.counters.redundant_lookup_copies)
        .field("leaf_rejections", r.counters.leaf_candidates_rejected)
        .field("claims_distrusted", r.counters.failure_claims_distrusted)
        .field("incorrect_adversarial", r.metrics_incorrect_adversarial)
        .field("incorrect_stale", r.metrics_incorrect_stale)
        .field("lost_devoured", r.metrics_lost_devoured)
        .field("executed_events", r.executed_events)
        .hex("digest", r.digest);

    // SLO gates (all modes): f=0 must be pure — an honest overlay with
    // countermeasures on loses nothing; f=0.2 "both" must hold the
    // headline bound for drop and misroute.
    if (cell.f == 0.0 &&
        (r.failure_rate() > 0.0 || r.incorrect_rate() > 0.0)) {
      std::printf("  GATE: f=0 %s not pure (failure %.3f incorrect %.3f)\n",
                  cell.config, r.failure_rate(), r.incorrect_rate());
      gate_ok = false;
    }
    if (cell.f == 0.2 && std::strcmp(cell.config, "both") == 0 &&
        cell.behavior != overlay::AdversaryBehavior::kLie) {
      if (r.incorrect_rate() >= 0.01 || r.failure_rate() >= 0.05) {
        std::printf(
            "  GATE: f=0.2 both/%s misses SLO (incorrect %.3f >= 0.01 or "
            "failure %.3f >= 0.05)\n",
            overlay::to_string(cell.behavior), r.incorrect_rate(),
            r.failure_rate());
        gate_ok = false;
      }
    }
  }

  out.row("suite").hex("digest", suite_digest).field("smoke", smoke);
  std::printf("\nsuite digest: %016llx\n",
              (unsigned long long)suite_digest);
  std::printf("overall: %s\n",
              gate_ok ? "all gates passed" : "GATE FAILURES (see above)");
  return gate_ok ? 0 : 1;
}
