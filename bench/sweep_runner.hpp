#pragma once

// Parallel trial fan-out for the figure sweeps. Each sweep point is an
// independent simulation — its own Simulator, Network, MessagePool, Rng
// and seed — so trials can run on worker threads with no shared mutable
// state beyond a couple of relaxed diagnostic counters
// (callback_heap_fallbacks, small_vec_spills).
//
// Output determinism is the contract: trials never touch stdout or the
// JsonEmitter directly. Each trial writes into its own TrialSink (buffered
// text plus deferred JSON-row closures), and run_sweep flushes the sinks
// strictly in trial-index order after all trials finish. `--jobs N`
// therefore produces byte-identical stdout and BENCH_*.json to `--jobs 1`
// by construction; tests/bench assert this for fig3/fig5/fig6.

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"

namespace mspastry::bench {

/// Parse `--jobs N` / `--jobs=N` from argv (default 1 = serial). Other
/// arguments are left for the caller.
inline int parse_jobs(int argc, char** argv) {
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    }
  }
  return jobs < 1 ? 1 : jobs;
}

/// Per-trial output buffer. Text goes through printf(); JSON rows are
/// deferred as closures so the shared JsonEmitter is only touched on the
/// main thread, in trial order.
class TrialSink {
 public:
  __attribute__((format(printf, 2, 3))) void printf(const char* fmt, ...) {
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n > 0) {
      const std::size_t old = text_.size();
      text_.resize(old + static_cast<std::size_t>(n) + 1);
      std::vsnprintf(&text_[old], static_cast<std::size_t>(n) + 1, fmt, ap2);
      text_.resize(old + static_cast<std::size_t>(n));
    }
    va_end(ap2);
  }

  /// Defer JSON emission; `fn` runs on the main thread during the ordered
  /// flush. Capture results by value — the trial's locals are gone by then.
  void emit(std::function<void(JsonEmitter&)> fn) {
    rows_.push_back(std::move(fn));
  }

 private:
  friend inline void run_sweep(
      int, std::size_t, JsonEmitter&,
      const std::function<void(std::size_t, TrialSink&)>&);
  std::string text_;
  std::vector<std::function<void(JsonEmitter&)>> rows_;
};

/// Run `trials` sweep points across `jobs` worker threads (an atomic
/// index dispenser; trials are claimed in order but may finish in any),
/// then flush every sink in trial-index order.
inline void run_sweep(
    int jobs, std::size_t trials, JsonEmitter& out,
    const std::function<void(std::size_t, TrialSink&)>& trial) {
  std::vector<TrialSink> sinks(trials);
  if (jobs > static_cast<int>(trials)) jobs = static_cast<int>(trials);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < trials; ++i) trial(i, sinks[i]);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      workers.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < trials;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          trial(i, sinks[i]);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  for (auto& s : sinks) {
    if (!s.text_.empty()) {
      std::fwrite(s.text_.data(), 1, s.text_.size(), stdout);
    }
    for (auto& fn : s.rows_) fn(out);
  }
}

}  // namespace mspastry::bench
