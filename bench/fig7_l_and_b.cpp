// Figure 7: the effect of the leaf-set size l on control traffic and RDP
// (left, center) and of the routing-table parameter b on RDP (right),
// using the Gnutella trace on GATech.

#include "bench_util.hpp"

using namespace mspastry;
using namespace mspastry::bench;

int main() {
  print_header("Figure 7: varying l and b");
  JsonEmitter out("fig7");

  std::printf("\n-- sweep l (b = 4)\nl\tctrl(msgs/s/node)\tRDP\tloss\n");
  double ctrl_l16 = 0;
  double ctrl_l32 = 0;
  for (const int l : {8, 16, 24, 32, 48, 64}) {
    auto dcfg = base_driver_config(700 + static_cast<std::uint64_t>(l));
    dcfg.pastry.l = l;
    const auto s = run_experiment(TopologyKind::kGATech, dcfg,
                                  bench_gnutella(43));
    emit_summary_row(out, "l_sweep", "l=" + std::to_string(l), s)
        .field("l", l);
    if (l == 16) ctrl_l16 = s.control_traffic;
    if (l == 32) ctrl_l32 = s.control_traffic;
    std::printf("%d\t%.3f\t%.2f\t%.2g\n", l, s.control_traffic, s.rdp,
                s.loss_rate);
  }
  if (ctrl_l16 > 0) {
    print_compare("control-traffic increase l=16 -> l=32 (paper: +7%)",
                  1.07, ctrl_l32 / ctrl_l16, "(ratio)");
  }

  std::printf("\n-- sweep b (l = 32)\nb\tRDP\tctrl(msgs/s/node)\tloss\n");
  double ctrl_b1 = 0;
  double ctrl_b4 = 0;
  double rdp_b1 = 0;
  double rdp_b4 = 0;
  for (const int b : {1, 2, 3, 4, 5}) {
    auto dcfg = base_driver_config(800 + static_cast<std::uint64_t>(b));
    dcfg.pastry.b = b;
    const auto s = run_experiment(TopologyKind::kGATech, dcfg,
                                  bench_gnutella(44));
    emit_summary_row(out, "b_sweep", "b=" + std::to_string(b), s)
        .field("b", b);
    if (b == 1) {
      ctrl_b1 = s.control_traffic;
      rdp_b1 = s.rdp;
    }
    if (b == 4) {
      ctrl_b4 = s.control_traffic;
      rdp_b4 = s.rdp;
    }
    std::printf("%d\t%.2f\t%.3f\t%.2g\n", b, s.rdp, s.control_traffic,
                s.loss_rate);
  }
  print_compare("RDP(b=1) - RDP(b=4) (paper: ~3.1 - ~1.8 = 1.3)", 1.3,
                rdp_b1 - rdp_b4);
  print_compare("ctrl(b=4) - ctrl(b=1) (paper: ~0.05 msgs/s/node)", 0.05,
                ctrl_b4 - ctrl_b1);
  std::printf(
      "\npaper shape: larger l cuts RDP slightly at small extra cost "
      "(heartbeats go to one neighbour, so cost is ~independent of l); "
      "smaller b inflates RDP via extra hops while barely reducing "
      "control traffic.\n");
  return 0;
}
