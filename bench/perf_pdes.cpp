// Parallel sharded simulation (PDES) benchmark. Runs the Figure-4-style
// Gnutella churn replay on the conservative epoch engine at 1, 2, 4 and
// 8 shards and records, per shard count: wall-clock, events/sec, epoch
// count, lookahead, and the full run-summary digest in BENCH_pdes.json.
//
// Two gates:
//   1. Determinism (always on): every shard count must produce the exact
//      digest the single-shard run produced — the engine's correctness
//      contract, independent of how many cores the host has. Any
//      mismatch exits nonzero.
//   2. Speedup (hardware-gated): --min-speedup X requires the best
//      multi-shard run to beat single-shard wall-clock by Xx, but only
//      when the host actually has at least that many cores
//      (hardware_concurrency >= shards); on smaller hosts the measured
//      ratio is still recorded, just not gated — a 1-core CI runner
//      cannot exhibit parallel speedup and must not fail for it.
//
// Usage: perf_pdes [--smoke] [--min-speedup X]
//        REPRO_FULL=1 perf_pdes   for paper-scale replay

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "overlay/sharded_driver.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

struct ShardRun {
  std::size_t shards = 0;
  std::size_t effective = 0;
  std::uint64_t epochs = 0;
  SimDuration lookahead = 0;
  RunSummary summary;
};

ShardRun run_sharded(const trace::ChurnTrace& trace, std::size_t shards) {
  ShardRun r;
  r.shards = shards;
  overlay::ShardedDriver driver(make_topology(TopologyKind::kGATech),
                                make_net_config(TopologyKind::kGATech),
                                base_driver_config(200), shards);
  WallTimer timer;
  driver.run_trace(trace);
  r.summary = summarize(driver, timer.seconds());
  r.effective = driver.effective_shards();
  r.epochs = driver.epochs();
  r.lookahead = driver.lookahead();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--min-speedup X]\n", argv[0]);
      return 2;
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  print_header("Parallel sharded simulation (perf_pdes)");
  std::printf("host cores: %u\n", cores);

  // The same fig4-mix workload perf_core replays, sized so the smoke run
  // finishes in CI seconds while still crossing thousands of epochs.
  const double ts = smoke ? 0.02 : (full_scale() ? 1.0 : 0.05);
  const double ns = smoke ? 0.1 : node_scale();
  const auto trace = trace::generate_synthetic(
      trace::gnutella_params(ns, ts, /*seed=*/11));
  const std::string params = "trace=gnutella node_scale=" +
                             std::to_string(ns) +
                             " time_scale=" + std::to_string(ts) + " seed=200";

  JsonEmitter out("pdes");
  const std::vector<std::size_t> shard_counts{1, 2, 4, 8};
  std::vector<ShardRun> runs;
  for (const std::size_t s : shard_counts) {
    const ShardRun r = run_sharded(trace, s);
    std::printf(
        "  shards=%zu (effective %zu): %9llu events in %7.3fs  "
        "(%9.0f ev/s)  epochs=%llu  digest %016llx\n",
        r.shards, r.effective, (unsigned long long)r.summary.executed_events,
        r.summary.wall_seconds, r.summary.events_per_sec,
        (unsigned long long)r.epochs, (unsigned long long)r.summary.digest);
    runs.push_back(r);
  }

  const ShardRun& base = runs.front();
  bool digests_match = true;
  double best_speedup = 1.0;
  std::size_t best_shards = 1;
  for (const ShardRun& r : runs) {
    emit_summary_row(out, "pdes_shards_" + std::to_string(r.shards), params,
                     r.summary)
        .field("shards", r.shards)
        .field("effective_shards", r.effective)
        .field("epochs", r.epochs)
        .field("lookahead_us", r.lookahead)
        .field("speedup_vs_1",
               r.summary.wall_seconds > 0
                   ? base.summary.wall_seconds / r.summary.wall_seconds
                   : 0.0);
    if (r.summary.digest != base.summary.digest ||
        r.summary.executed_events != base.summary.executed_events) {
      std::fprintf(stderr,
                   "FATAL: shards=%zu digest %016llx != shards=1 %016llx\n",
                   r.shards, (unsigned long long)r.summary.digest,
                   (unsigned long long)base.summary.digest);
      digests_match = false;
    }
    const double sp = r.summary.wall_seconds > 0
                          ? base.summary.wall_seconds / r.summary.wall_seconds
                          : 0.0;
    if (r.shards > 1 && sp > best_speedup) {
      best_speedup = sp;
      best_shards = r.shards;
    }
  }

  // The speedup gate only binds when the host can physically express the
  // parallelism; the recorded numbers stay honest either way.
  const bool gate_applies = min_speedup > 0.0 && cores >= 2;
  const bool gate_ok = !gate_applies || best_speedup >= min_speedup;
  std::printf("\n  best speedup: %.2fx at %zu shards (cores=%u)%s\n",
              best_speedup, best_shards, cores,
              gate_applies ? (gate_ok ? "  gate: PASS" : "  gate: FAIL")
                           : "  gate: skipped (single-core host)");
  std::printf("  digests across shard counts: %s\n",
              digests_match ? "MATCH" : "MISMATCH");

  out.row("pdes_compare")
      .field("cores", static_cast<std::uint64_t>(cores))
      .field("digests_match", digests_match)
      .field("best_speedup", best_speedup)
      .field("best_shards", best_shards)
      .field("min_speedup_required", min_speedup)
      .field("speedup_gate_applied", gate_applies);
  out.row("process").field("smoke", smoke).field("peak_rss_bytes",
                                                 peak_rss_bytes());
  out.write();

  if (!digests_match) return 1;
  if (!gate_ok) {
    std::fprintf(stderr, "FATAL: best speedup %.2fx < required %.2fx\n",
                 best_speedup, min_speedup);
    return 1;
  }
  return 0;
}
