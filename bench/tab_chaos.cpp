// Dependability under injected faults (the chaos suite). Each named
// scenario runs against a fresh overlay on a shared topology: a timed
// fault schedule is installed, probe lookups flow while it is active, and
// the oracle checks the paper's dependability claims afterwards — bounded
// incorrect delivery during the fault, ring reconvergence after heal, and
// near-perfect lookups once reconverged. Prints one row per scenario.
//
// Usage: tab_chaos [--seed=N] [--scenario=name] (default: the whole suite)

#include <cstring>

#include "bench_util.hpp"
#include "overlay/chaos.hpp"

using namespace mspastry;
using namespace mspastry::bench;

int main(int argc, char** argv) {
  std::uint64_t seed = 7;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      only = argv[i] + 11;
    } else {
      std::fprintf(stderr, "usage: %s [--seed=N] [--scenario=name]\n",
                   argv[0]);
      return 2;
    }
  }

  print_header("Chaos suite: dependability under injected faults");
  std::printf("seed: %llu\n", (unsigned long long)seed);
  JsonEmitter out("tab_chaos");

  overlay::ChaosConfig cfg;
  cfg.seed = seed;
  cfg.nodes = full_scale() ? 120 : 40;
  overlay::ChaosHarness harness(make_topology(TopologyKind::kGATech), cfg);

  std::vector<std::string> names =
      only.empty() ? overlay::ChaosHarness::scenarios()
                   : std::vector<std::string>{only};

  std::printf(
      "\n%-16s %9s %7s %7s %7s %7s %11s %6s\n", "scenario", "injected",
      "f.loss", "f.incor", "h.loss", "h.incor", "reconverge", "result");
  bool all_ok = true;
  std::vector<overlay::ChaosResult> results;
  for (const auto& name : names) {
    overlay::ChaosResult r;
    try {
      r = harness.run(name);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s (known scenarios:", e.what());
      for (const auto& s : overlay::ChaosHarness::scenarios()) {
        std::fprintf(stderr, " %s", s.c_str());
      }
      std::fprintf(stderr, " random)\n");
      return 2;
    }
    std::uint64_t injected = 0;
    for (const auto v : r.injected) injected += v;
    char reconv[32];
    if (r.reconverge_seconds < 0) {
      std::snprintf(reconv, sizeof(reconv), "%11s", "never");
    } else {
      std::snprintf(reconv, sizeof(reconv), "%9.1f s", r.reconverge_seconds);
    }
    std::printf("%-16s %9llu %7.3f %7.3f %7.3f %7.3f %s %6s\n",
                r.scenario.c_str(), (unsigned long long)injected,
                r.fault_loss_rate(), r.fault_incorrect_rate(),
                r.heal_loss_rate(), r.heal_incorrect_rate(), reconv,
                r.ok() ? "ok" : "FAIL");
    if (r.scenario == "gray-stall") {
      std::printf("  gray failure: rerouted=%s condemned=%s recovered=%s\n",
                  r.stall_rerouted ? "yes" : "no",
                  r.stall_condemned ? "yes" : "no",
                  r.stall_recovered ? "yes" : "no");
    }
    for (const auto& v : r.violations) {
      std::printf("  violation: %s\n", v.c_str());
    }
    out.row(r.scenario)
        .field("injected", injected)
        .field("fault_loss_rate", r.fault_loss_rate())
        .field("fault_incorrect_rate", r.fault_incorrect_rate())
        .field("heal_loss_rate", r.heal_loss_rate())
        .field("heal_incorrect_rate", r.heal_incorrect_rate())
        .field("reconverge_seconds", r.reconverge_seconds)
        .field("ok", r.ok())
        .field("violations",
               static_cast<std::uint64_t>(r.violations.size()));
    all_ok = all_ok && r.ok();
    results.push_back(std::move(r));
  }

  std::printf("\nper-kind injection counts:\n");
  for (std::size_t k = 0; k < net::kFaultKindCount; ++k) {
    std::uint64_t total = 0;
    for (const auto& r : results) total += r.injected[k];
    if (total > 0) {
      std::printf("  %-12s %llu\n",
                  net::fault_kind_name(static_cast<net::FaultKind>(k)),
                  (unsigned long long)total);
    }
  }
  std::printf("\nfault schedules (reproducible from the seed):\n");
  for (const auto& r : results) {
    std::printf("--- %s ---\n%s", r.scenario.c_str(),
                r.fault_schedule.c_str());
  }
  std::printf("\noverall: %s\n", all_ok ? "all scenarios passed"
                                        : "SLO VIOLATIONS (see above)");
  return all_ok ? 0 : 1;
}
