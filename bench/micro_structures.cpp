// Micro-benchmarks (google-benchmark) for the core data structures and
// hot paths: identifier arithmetic, leaf-set and routing-table updates,
// next-hop selection, the self-tuning solver, topology shortest-path
// queries, and the message path (pooled allocation vs make_shared,
// SmallVec vs std::vector payload fills). Not from the paper; these bound
// the per-event simulation cost.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/small_vec.hpp"
#include "net/transit_stub.hpp"
#include "pastry/leaf_set.hpp"
#include "pastry/message.hpp"
#include "pastry/message_pool.hpp"
#include "pastry/routing_table.hpp"
#include "pastry/self_tuning.hpp"

namespace {

using namespace mspastry;
using namespace mspastry::pastry;

void BM_NodeIdSharedPrefix(benchmark::State& state) {
  Rng rng(1);
  const NodeId a = rng.node_id();
  const NodeId b = rng.node_id();
  const int bb = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.shared_prefix_length(b, bb));
  }
}
BENCHMARK(BM_NodeIdSharedPrefix)->Arg(1)->Arg(4);

void BM_NodeIdRingDistance(benchmark::State& state) {
  Rng rng(2);
  const NodeId a = rng.node_id();
  const NodeId b = rng.node_id();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.ring_distance_to(b));
  }
}
BENCHMARK(BM_NodeIdRingDistance);

void BM_NodeIdHashOf(benchmark::State& state) {
  const std::string url = "http://example.com/some/moderately/long/path";
  for (auto _ : state) {
    benchmark::DoNotOptimize(NodeId::hash_of(url));
  }
}
BENCHMARK(BM_NodeIdHashOf);

void BM_LeafSetAdd(benchmark::State& state) {
  Rng rng(3);
  const NodeId self = rng.node_id();
  std::vector<NodeDescriptor> candidates;
  for (int i = 0; i < 1024; ++i) {
    candidates.push_back({rng.node_id(), i});
  }
  std::size_t i = 0;
  LeafSet ls(self, 32);
  for (auto _ : state) {
    ls.add(candidates[i++ & 1023]);
  }
}
BENCHMARK(BM_LeafSetAdd);

void BM_LeafSetClosest(benchmark::State& state) {
  Rng rng(4);
  const NodeId self = rng.node_id();
  LeafSet ls(self, 32);
  for (int i = 0; i < 64; ++i) ls.add({rng.node_id(), i});
  const NodeId key = rng.node_id();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ls.closest(key));
  }
}
BENCHMARK(BM_LeafSetClosest);

void BM_RoutingTableAddWithRtt(benchmark::State& state) {
  Rng rng(5);
  const NodeId self = rng.node_id();
  std::vector<NodeDescriptor> candidates;
  for (int i = 0; i < 4096; ++i) candidates.push_back({rng.node_id(), i});
  RoutingTable rt(self, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    rt.add_with_rtt(candidates[i & 4095],
                    milliseconds(static_cast<std::int64_t>(i & 127) + 1),
                    true);
    ++i;
  }
}
BENCHMARK(BM_RoutingTableAddWithRtt);

void BM_RoutingTableSlotLookup(benchmark::State& state) {
  Rng rng(6);
  const NodeId self = rng.node_id();
  RoutingTable rt(self, 4);
  for (int i = 0; i < 1000; ++i) rt.add({rng.node_id(), i});
  const NodeId key = rng.node_id();
  for (auto _ : state) {
    const auto [r, c] = rt.slot_of(key);
    benchmark::DoNotOptimize(rt.get(r, c));
  }
}
BENCHMARK(BM_RoutingTableSlotLookup);

void BM_SelfTuneSolve(benchmark::State& state) {
  const Config cfg;
  double mu = 1e-4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selftune::tune_trt(cfg, mu, 10000.0));
    mu = mu < 1e-2 ? mu * 1.01 : 1e-4;  // vary to defeat caching
  }
}
BENCHMARK(BM_SelfTuneSolve);

void BM_TopologyDelayCached(benchmark::State& state) {
  net::TransitStubTopology topo(net::TransitStubParams::scaled(6, 4, 5));
  Rng rng(7);
  const int n = topo.router_count();
  const int a = topo.transit_router_count();  // first stub router
  // Warm the row cache, then measure lookups.
  benchmark::DoNotOptimize(topo.delay(a, n - 1));
  int b = a + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.delay(a, b));
    if (++b >= n) b = a;
  }
  (void)rng;
}
BENCHMARK(BM_TopologyDelayCached);

void BM_TopologyDelayColdRow(benchmark::State& state) {
  // Cost of the first query from a fresh source router (one Dijkstra).
  const auto params = net::TransitStubParams::scaled(6, 4, 5);
  for (auto _ : state) {
    state.PauseTiming();
    net::TransitStubTopology topo(params);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        topo.delay(topo.transit_router_count(), topo.router_count() - 1));
  }
}
BENCHMARK(BM_TopologyDelayColdRow)->Unit(benchmark::kMicrosecond);

// Exact vs landmark delay-oracle query on the same graph: the landmark
// path is a k x k min over precomputed tables (no Dijkstra, no cache),
// the exact path is a warm row-cache hit. The interesting number is how
// close the landmark query gets to the cached exact lookup — that gap is
// what N = 100k pays per delay() in exchange for dropping the O(R^2)
// row cache.
void BM_DelayOracleExactQuery(benchmark::State& state) {
  auto params = net::TransitStubParams::scaled(6, 4, 5);
  params.oracle.mode = net::DelayOracleMode::kExact;
  net::TransitStubTopology topo(params);
  const int n = topo.router_count();
  const int a = topo.transit_router_count();
  benchmark::DoNotOptimize(topo.delay(a, n - 1));  // warm the row
  int b = a + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.delay(a, b));
    if (++b >= n) b = a;
  }
}
BENCHMARK(BM_DelayOracleExactQuery);

void BM_DelayOracleLandmarkQuery(benchmark::State& state) {
  auto params = net::TransitStubParams::scaled(6, 4, 5);
  params.oracle.mode = net::DelayOracleMode::kLandmark;
  net::TransitStubTopology topo(params);
  const int n = topo.router_count();
  const int a = topo.transit_router_count();
  int b = a + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.delay(a, b));
    if (++b >= n) b = a;
  }
}
BENCHMARK(BM_DelayOracleLandmarkQuery);

// --- Message path (PR-3): pooled allocation vs make_shared ------------------
//
// A shared_ptr mirror of HeartbeatMsg/LsProbeMsg, local to the bench, so
// the comparison stays honest after the production types moved to the
// pool. perf_core measures the full replay; these isolate allocation.

struct SharedMsgBase {
  virtual ~SharedMsgBase() = default;
  NodeDescriptor sender;
};

struct SharedHeartbeat final : SharedMsgBase {};

struct SharedLsProbe final : SharedMsgBase {
  std::vector<NodeDescriptor> leaf;
  std::vector<NodeDescriptor> failed;
};

void BM_MsgAllocHeartbeatSharedPtr(benchmark::State& state) {
  for (auto _ : state) {
    auto m = std::make_shared<SharedHeartbeat>();
    benchmark::DoNotOptimize(m.get());
  }
}
BENCHMARK(BM_MsgAllocHeartbeatSharedPtr);

void BM_MsgAllocHeartbeatPooled(benchmark::State& state) {
  MessagePool pool;
  for (auto _ : state) {
    auto m = make_msg<HeartbeatMsg>(pool);
    benchmark::DoNotOptimize(m.get());
  }
}
BENCHMARK(BM_MsgAllocHeartbeatPooled);

void BM_MsgAllocLsProbeSharedPtr(benchmark::State& state) {
  Rng rng(8);
  std::vector<NodeDescriptor> peers;
  for (int i = 0; i < 32; ++i) peers.push_back({rng.node_id(), i});
  for (auto _ : state) {
    auto m = std::make_shared<SharedLsProbe>();
    m->leaf.assign(peers.begin(), peers.end());
    benchmark::DoNotOptimize(m.get());
  }
}
BENCHMARK(BM_MsgAllocLsProbeSharedPtr);

void BM_MsgAllocLsProbePooled(benchmark::State& state) {
  Rng rng(8);
  std::vector<NodeDescriptor> peers;
  for (int i = 0; i < 32; ++i) peers.push_back({rng.node_id(), i});
  MessagePool pool;
  for (auto _ : state) {
    auto m = make_msg<LsProbeMsg>(pool, false);
    m->leaf.assign(peers.begin(), peers.end());
    benchmark::DoNotOptimize(m.get());
  }
}
BENCHMARK(BM_MsgAllocLsProbePooled);

void BM_MsgDispatchRefcount(benchmark::State& state) {
  // The per-dispatch pointer traffic on the pooled path: one copy (the
  // handler cast) and two moves, all non-atomic.
  MessagePool pool;
  auto m = make_msg<HeartbeatMsg>(pool);
  MessagePtr slot(m);
  for (auto _ : state) {
    MessagePtr moved(std::move(slot));
    MessagePtr cast(moved);
    benchmark::DoNotOptimize(cast.get());
    slot = std::move(moved);
  }
}
BENCHMARK(BM_MsgDispatchRefcount);

// --- SmallVec vs std::vector payload fills ----------------------------------

void BM_PayloadFillStdVector(benchmark::State& state) {
  Rng rng(9);
  std::vector<NodeDescriptor> peers;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    peers.push_back({rng.node_id(), static_cast<std::int32_t>(i)});
  }
  for (auto _ : state) {
    std::vector<NodeDescriptor> v;  // fresh each time: heap alloc + copy
    v.assign(peers.begin(), peers.end());
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_PayloadFillStdVector)->Arg(8)->Arg(32);

void BM_PayloadFillSmallVec(benchmark::State& state) {
  Rng rng(9);
  std::vector<NodeDescriptor> peers;
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    peers.push_back({rng.node_id(), static_cast<std::int32_t>(i)});
  }
  for (auto _ : state) {
    LeafVec v;  // inline capacity 32: fill is a bulk copy, no heap
    v.assign(peers.begin(), peers.end());
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_PayloadFillSmallVec)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
