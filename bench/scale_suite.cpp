// Paper-scale simulation suite: runs N = 10,000-node slices of the
// fig3/fig4/fig5 experiments and records, per phase, the wall-clock,
// event throughput, peak RSS and routing-arena footprint that make those
// runs tractable (slab routing rows, the timer wheel, the incremental
// oracle). Output lands in BENCH_scale.json; CI runs `--smoke` with
// thresholds (see --max-rss-mb / --min-events-per-sec) so a memory or
// throughput regression fails the build instead of silently doubling the
// paper-reproduction budget.
//
// Modes:
//   --smoke        shortened slices (CI budget: a few minutes, Release)
//   default        ~1 simulated hour per overlay slice
//   REPRO_FULL=1   paper-scale slices (hours of wall-clock)

#include <cstring>

#include "bench_util.hpp"
#include "overlay/sharded_driver.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

constexpr int kPopulation = 10000;

struct Phase {
  /// What ran, and therefore which telemetry fields mean anything:
  /// kTraceOnly phases have no overlay (no arena, no live nodes beyond
  /// what the trace itself says), kSharded phases have per-shard arenas
  /// (reported via shard/epoch telemetry instead of one arena's rows).
  enum class Kind { kTraceOnly, kOverlay, kSharded };

  std::string name;
  std::string params;
  Kind kind = Kind::kOverlay;
  double wall_seconds = 0.0;
  std::uint64_t executed_events = 0;
  double events_per_sec = 0.0;
  std::uint64_t peak_rss = 0;  ///< process peak at phase end (monotone)
  std::uint64_t digest = 0;
  std::uint64_t live_nodes = 0;  ///< slice end: overlay- or trace-derived
  std::uint64_t arena_rows = 0;
  std::uint64_t arena_bytes = 0;
  std::uint64_t timer_arena_slots = 0;
  std::uint64_t parked_timers = 0;
  std::size_t shards = 0;        ///< kSharded only
  std::size_t effective_shards = 0;
  std::uint64_t epochs = 0;
  RunSummary summary;  ///< zero for trace-only phases
};

void emit_phase(JsonEmitter& out, const Phase& p) {
  auto& row = out.row(p.name)
                  .field("params", p.params)
                  .field("population", kPopulation)
                  .field("wall_seconds", p.wall_seconds)
                  .field("executed_events", p.executed_events)
                  .field("events_per_sec", p.events_per_sec)
                  .field("peak_rss_bytes", p.peak_rss)
                  .field("peak_rss_mb",
                         static_cast<double>(p.peak_rss) / (1024 * 1024))
                  .hex("digest", p.digest)
                  .field("live_nodes", p.live_nodes);
  // Arena/timer telemetry only exists where a (single) overlay ran;
  // emitting zeros for trace-only phases reads as "empty arena", which is
  // not a fact this phase measured.
  if (p.kind == Phase::Kind::kOverlay) {
    row.field("arena_rows", p.arena_rows)
        .field("arena_bytes", p.arena_bytes)
        .field("timer_arena_slots", p.timer_arena_slots)
        .field("parked_timers", p.parked_timers);
  } else if (p.kind == Phase::Kind::kSharded) {
    row.field("shards", p.shards)
        .field("effective_shards", p.effective_shards)
        .field("epochs", p.epochs);
  }
  if (p.kind != Phase::Kind::kTraceOnly) {
    row.field("rdp", p.summary.rdp)
        .field("control_traffic", p.summary.control_traffic)
        .field("loss_rate", p.summary.loss_rate)
        .field("lookups", p.summary.lookups);
  }
  std::printf(
      "  %-18s %7.1fs wall  %9.3gM events  %8.3gk ev/s  rss %6.0f MB  "
      "digest %016llx\n",
      p.name.c_str(), p.wall_seconds, p.executed_events / 1e6,
      p.events_per_sec / 1e3, p.peak_rss / (1024.0 * 1024.0),
      static_cast<unsigned long long>(p.digest));
}

/// Fig 3 at paper scale is trace generation + analysis only (no overlay):
/// the three measurement-study traces with a 10,000-node Gnutella
/// population. The digest covers the failure-rate series, so generator
/// changes that alter the dynamics show up as a digest change.
Phase run_fig3(SimDuration slice) {
  Phase p;
  p.name = "fig3_traces";
  p.params = "gnutella+overnet+microsoft, slice=" +
             std::to_string(to_seconds(slice)) + "s";
  p.kind = Phase::Kind::kTraceOnly;
  WallTimer timer;
  std::uint64_t h = kFnvOffset;
  trace::SyntheticChurnParams specs[] = {
      trace::gnutella_params(), trace::overnet_params(),
      trace::microsoft_params()};
  specs[0].target_population = kPopulation;
  for (auto& spec : specs) {
    spec.duration = std::min(spec.duration, slice);
    const auto t = trace::generate_synthetic(spec);
    h = hash_u64(h, static_cast<std::uint64_t>(t.session_count()));
    for (const auto& [ts, rate] : t.failure_rate_series(minutes(10))) {
      h = hash_f64(hash_f64(h, ts), rate);
    }
    // Event count proxy: churn events processed by the analysis.
    p.executed_events += static_cast<std::uint64_t>(t.session_count()) * 2;
    // Slice-end population, derived from the trace itself (this phase
    // runs no overlay): sessions joined but not yet failed at the end.
    std::int64_t live = 0;
    for (const auto& ev : t.events()) {
      live += ev.type == trace::ChurnEventType::kJoin ? 1 : -1;
    }
    p.live_nodes += static_cast<std::uint64_t>(live < 0 ? 0 : live);
  }
  p.wall_seconds = timer.seconds();
  p.events_per_sec =
      p.wall_seconds > 0 ? p.executed_events / p.wall_seconds : 0.0;
  p.peak_rss = peak_rss_bytes();
  p.digest = h;
  return p;
}

/// One overlay slice at N = 10,000: build the driver, run the trace,
/// collect the standard summary plus the scale telemetry.
Phase run_overlay(const std::string& name, const std::string& params,
                  const trace::ChurnTrace& trace,
                  const overlay::DriverConfig& dcfg, std::size_t shards) {
  Phase p;
  p.name = name;
  p.params = params;
  WallTimer timer;
  if (shards > 1) {
    p.kind = Phase::Kind::kSharded;
    overlay::ShardedDriver driver(make_topology(TopologyKind::kGATech),
                                  make_net_config(TopologyKind::kGATech),
                                  dcfg, shards);
    driver.run_trace(trace);
    p.summary = summarize(driver, timer.seconds());
    p.live_nodes = driver.live_node_count();
    p.shards = shards;
    p.effective_shards = driver.effective_shards();
    p.epochs = driver.epochs();
  } else {
    overlay::OverlayDriver driver(make_topology(TopologyKind::kGATech),
                                  make_net_config(TopologyKind::kGATech),
                                  dcfg);
    driver.run_trace(trace);
    p.summary = summarize(driver, timer.seconds());
    p.live_nodes = driver.live_node_count();
    p.arena_rows = driver.routing_arena().rows_in_use();
    p.arena_bytes = driver.routing_arena().bytes_reserved();
    p.timer_arena_slots = driver.sim().arena_slots();
    p.parked_timers = driver.sim().parked_entries();
  }
  p.wall_seconds = p.summary.wall_seconds;
  p.executed_events = p.summary.executed_events;
  p.events_per_sec = p.summary.events_per_sec;
  p.digest = p.summary.digest;
  p.peak_rss = peak_rss_bytes();
  return p;
}

Phase run_fig4(SimDuration slice, SimDuration warmup, std::size_t shards) {
  // The fig4 Gnutella experiment at the paper's overlay size: Gnutella
  // session dynamics (lognormal sessions, diurnal arrivals) with the
  // population raised to 10,000.
  auto params = trace::gnutella_params();
  params.target_population = kPopulation;
  params.duration = slice;
  params.seed = 11;
  auto dcfg = base_driver_config(200);
  dcfg.warmup = warmup;
  return run_overlay("fig4_gnutella_10k",
                     "gnutella dynamics, N=10000, slice=" +
                         std::to_string(to_seconds(slice)) + "s",
                     trace::generate_synthetic(params), dcfg, shards);
}

Phase run_fig5(SimDuration slice, SimDuration warmup, std::size_t shards) {
  // One point of the fig5 session-time sweep (30-minute exponential
  // sessions, the paper's mid-churn column) at the paper's N = 10,000.
  auto dcfg = base_driver_config(302);
  dcfg.warmup = warmup;
  const auto trace =
      trace::generate_poisson(slice, 30 * 60.0, kPopulation, 502, "poisson");
  return run_overlay("fig5_poisson30_10k",
                     "poisson 30min sessions, N=10000, slice=" +
                         std::to_string(to_seconds(slice)) + "s",
                     trace, dcfg, shards);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double max_rss_mb = 0.0;       // 0 = no threshold
  double min_events_per_sec = 0.0;
  std::size_t shards = 1;        // >1: overlay slices on the sharded engine
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--max-rss-mb=", 13) == 0) {
      max_rss_mb = std::atof(argv[i] + 13);
    }
    if (std::strncmp(argv[i], "--min-events-per-sec=", 21) == 0) {
      min_events_per_sec = std::atof(argv[i] + 21);
    }
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<std::size_t>(std::atoi(argv[i] + 9));
      if (shards == 0) shards = 1;
    }
  }

  print_header("Paper-scale suite: N = 10,000 slices of fig3/fig4/fig5");
  const SimDuration slice =
      smoke ? minutes(30) : (full_scale() ? hours(4) : hours(1));
  const SimDuration warmup = smoke ? minutes(10) : minutes(20);
  std::printf("slice: %.0f simulated minutes per overlay run%s\n",
              to_seconds(slice) / 60.0, smoke ? " (smoke)" : "");
  if (shards > 1) {
    std::printf("overlay slices on the sharded engine, %zu shards\n", shards);
  }

  JsonEmitter out("scale");
  std::vector<Phase> phases;
  phases.push_back(run_fig3(slice));
  emit_phase(out, phases.back());
  phases.push_back(run_fig4(slice, warmup, shards));
  emit_phase(out, phases.back());
  phases.push_back(run_fig5(slice, warmup, shards));
  emit_phase(out, phases.back());

  // Threshold gates (CI): peak RSS is process-wide, throughput is the
  // slowest overlay phase.
  int failures = 0;
  const double rss_mb = peak_rss_bytes() / (1024.0 * 1024.0);
  if (max_rss_mb > 0 && rss_mb > max_rss_mb) {
    std::fprintf(stderr, "FAIL: peak RSS %.0f MB exceeds budget %.0f MB\n",
                 rss_mb, max_rss_mb);
    ++failures;
  }
  if (min_events_per_sec > 0) {
    for (const auto& p : phases) {
      if (p.summary.executed_events == 0) continue;  // trace-only phase
      if (p.events_per_sec < min_events_per_sec) {
        std::fprintf(stderr,
                     "FAIL: %s throughput %.0f events/s below floor %.0f\n",
                     p.name.c_str(), p.events_per_sec, min_events_per_sec);
        ++failures;
      }
    }
  }
  std::printf("\npeak RSS %.0f MB across the suite\n", rss_mb);
  return failures == 0 ? 0 : 1;
}
