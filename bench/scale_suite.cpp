// Paper-scale simulation suite: runs N = 10,000-node slices of the
// fig3/fig4/fig5 experiments and records, per phase, the wall-clock,
// event throughput, peak RSS and routing-arena footprint that make those
// runs tractable (slab routing rows, the timer wheel, the incremental
// oracle, the landmark delay oracle). Output lands in BENCH_scale.json;
// CI runs `--smoke` with thresholds (see --max-rss-mb /
// --min-events-per-sec) so a memory or throughput regression fails the
// build instead of silently doubling the paper-reproduction budget.
//
// Modes:
//   --smoke             shortened slices (CI budget: a few minutes, Release)
//   default             ~1 simulated hour per overlay slice
//   REPRO_FULL=1        paper-scale slices (hours of wall-clock)
//   --population=100000 the N = 100k tier: a single fig4 slice on the
//                       paper-size 5050-router GATech graph (landmark
//                       delay-oracle mode), emitted to BENCH_scale100k.json
//   --shards=S          overlay slices on the sharded engine
//   --per-pair-lookahead widen epochs via Topology::min_delay_between
//   --check-hops=TOL    trace a sample of lookups and run the obs
//                       expectation rules, including R7 (analytic mean
//                       hops within TOL of ceil(log_2^b N)); violations
//                       fail the run

#include <cstring>

#include "bench_util.hpp"
#include "obs/expectations.hpp"
#include "overlay/sharded_driver.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

int g_population = 10000;
bool g_per_pair_lookahead = false;
double g_check_hops = 0.0;  // R7 tolerance; 0 = observability off
int g_expectation_failures = 0;

struct Phase {
  /// What ran, and therefore which telemetry fields mean anything:
  /// kTraceOnly phases have no overlay (no arena, no live nodes beyond
  /// what the trace itself says), kSharded phases have per-shard arenas
  /// (reported via shard/epoch telemetry instead of one arena's rows).
  enum class Kind { kTraceOnly, kOverlay, kSharded };

  std::string name;
  std::string params;
  Kind kind = Kind::kOverlay;
  double wall_seconds = 0.0;
  std::uint64_t executed_events = 0;
  double events_per_sec = 0.0;
  std::uint64_t peak_rss = 0;  ///< process peak at phase end (monotone)
  std::uint64_t digest = 0;
  std::uint64_t live_nodes = 0;  ///< slice end: overlay- or trace-derived
  std::uint64_t arena_rows = 0;
  std::uint64_t arena_bytes = 0;
  std::uint64_t timer_arena_slots = 0;
  std::uint64_t parked_timers = 0;
  std::size_t shards = 0;        ///< kSharded only
  std::size_t effective_shards = 0;
  std::uint64_t epochs = 0;
  net::DelayCacheStats delay_cache;  ///< overlay phases: oracle telemetry
  RunSummary summary;  ///< zero for trace-only phases
};

void emit_phase(JsonEmitter& out, const Phase& p) {
  auto& row = out.row(p.name)
                  .field("params", p.params)
                  .field("population", static_cast<std::uint64_t>(g_population))
                  .field("wall_seconds", p.wall_seconds)
                  .field("executed_events", p.executed_events)
                  .field("events_per_sec", p.events_per_sec)
                  .field("peak_rss_bytes", p.peak_rss)
                  .field("peak_rss_mb",
                         static_cast<double>(p.peak_rss) / (1024 * 1024))
                  .hex("digest", p.digest)
                  .field("live_nodes", p.live_nodes);
  // Arena/timer telemetry only exists where a (single) overlay ran;
  // emitting zeros for trace-only phases reads as "empty arena", which is
  // not a fact this phase measured.
  if (p.kind == Phase::Kind::kOverlay) {
    row.field("arena_rows", p.arena_rows)
        .field("arena_bytes", p.arena_bytes)
        .field("timer_arena_slots", p.timer_arena_slots)
        .field("parked_timers", p.parked_timers);
  } else if (p.kind == Phase::Kind::kSharded) {
    row.field("shards", p.shards)
        .field("effective_shards", p.effective_shards)
        .field("epochs", p.epochs);
  }
  if (p.kind != Phase::Kind::kTraceOnly) {
    row.field("rdp", p.summary.rdp)
        .field("control_traffic", p.summary.control_traffic)
        .field("loss_rate", p.summary.loss_rate)
        .field("lookups", p.summary.lookups)
        // Delay-oracle telemetry: the superlinear failure mode this suite
        // exists to catch is the row cache quietly regrowing O(R^2).
        .field("oracle_landmark_mode",
               static_cast<std::uint64_t>(p.delay_cache.landmark_mode))
        .field("oracle_clusters",
               static_cast<std::uint64_t>(p.delay_cache.clusters))
        .field("oracle_landmarks",
               static_cast<std::uint64_t>(p.delay_cache.landmarks))
        .field("oracle_bytes", p.delay_cache.oracle_bytes)
        .field("row_cache_bytes", p.delay_cache.row_cache_bytes)
        .field("row_cache_rows", p.delay_cache.cached_rows);
  }
  std::printf(
      "  %-18s %7.1fs wall  %9.3gM events  %8.3gk ev/s  rss %6.0f MB  "
      "digest %016llx\n",
      p.name.c_str(), p.wall_seconds, p.executed_events / 1e6,
      p.events_per_sec / 1e3, p.peak_rss / (1024.0 * 1024.0),
      static_cast<unsigned long long>(p.digest));
  if (p.kind != Phase::Kind::kTraceOnly) {
    std::printf(
        "  %-18s delay oracle: %s, %d clusters, %d landmarks, "
        "%.1f MB tables, row cache %.1f MB (%llu rows)\n",
        "", p.delay_cache.landmark_mode ? "landmark" : "exact",
        p.delay_cache.clusters, p.delay_cache.landmarks,
        p.delay_cache.oracle_bytes / (1024.0 * 1024.0),
        p.delay_cache.row_cache_bytes / (1024.0 * 1024.0),
        static_cast<unsigned long long>(p.delay_cache.cached_rows));
  }
}

/// Fig 3 at paper scale is trace generation + analysis only (no overlay):
/// the three measurement-study traces with a 10,000-node Gnutella
/// population. The digest covers the failure-rate series, so generator
/// changes that alter the dynamics show up as a digest change.
Phase run_fig3(SimDuration slice) {
  Phase p;
  p.name = "fig3_traces";
  p.params = "gnutella+overnet+microsoft, slice=" +
             std::to_string(to_seconds(slice)) + "s";
  p.kind = Phase::Kind::kTraceOnly;
  WallTimer timer;
  std::uint64_t h = kFnvOffset;
  trace::SyntheticChurnParams specs[] = {
      trace::gnutella_params(), trace::overnet_params(),
      trace::microsoft_params()};
  specs[0].target_population = g_population;
  for (auto& spec : specs) {
    spec.duration = std::min(spec.duration, slice);
    const auto t = trace::generate_synthetic(spec);
    h = hash_u64(h, static_cast<std::uint64_t>(t.session_count()));
    for (const auto& [ts, rate] : t.failure_rate_series(minutes(10))) {
      h = hash_f64(hash_f64(h, ts), rate);
    }
    // Event count proxy: churn events processed by the analysis.
    p.executed_events += static_cast<std::uint64_t>(t.session_count()) * 2;
    // Slice-end population, derived from the trace itself (this phase
    // runs no overlay): sessions joined but not yet failed at the end.
    std::int64_t live = 0;
    for (const auto& ev : t.events()) {
      live += ev.type == trace::ChurnEventType::kJoin ? 1 : -1;
    }
    p.live_nodes += static_cast<std::uint64_t>(live < 0 ? 0 : live);
  }
  p.wall_seconds = timer.seconds();
  p.events_per_sec =
      p.wall_seconds > 0 ? p.executed_events / p.wall_seconds : 0.0;
  p.peak_rss = peak_rss_bytes();
  p.digest = h;
  return p;
}

/// Run the Pip-style expectation rules (including R7, analytic mean hops)
/// over the run's merged trace domain. Any violation fails the suite.
void check_expectations_for(const std::string& phase, obs::TraceDomain* dom,
                            std::size_t overlay_size) {
  if (dom == nullptr) {
    std::fprintf(stderr, "FAIL: %s: --check-hops set but no trace domain\n",
                 phase.c_str());
    ++g_expectation_failures;
    return;
  }
  obs::ExpectationConfig ecfg;
  ecfg.overlay_size = overlay_size;
  ecfg.analytic_hops_tolerance = g_check_hops;
  const auto paths = obs::assemble_paths(*dom);
  const auto report = obs::check_expectations(*dom, paths, ecfg);
  std::printf("  %-18s %s", "", report.summary().c_str());
  if (!report.ok()) {
    std::fprintf(stderr, "FAIL: %s: %zu expectation violations\n",
                 phase.c_str(), report.violations.size());
    ++g_expectation_failures;
  }
}

/// One overlay slice: build the driver on `topo`, run the trace, collect
/// the standard summary plus the scale telemetry.
Phase run_overlay(const std::string& name, const std::string& params,
                  std::shared_ptr<const net::Topology> topo,
                  const net::NetworkConfig& ncfg,
                  const trace::ChurnTrace& trace, overlay::DriverConfig dcfg,
                  std::size_t shards) {
  Phase p;
  p.name = name;
  p.params = params;
  if (g_check_hops > 0.0) {
    // Sampled causal tracing for the expectation rules. Small rings and a
    // low sample rate keep recorder memory out of the RSS budget.
    dcfg.obs.enabled = true;
    dcfg.obs.sample_rate = 0.05;
    dcfg.obs.ring_capacity = 512;
  }
  WallTimer timer;
  if (shards > 1) {
    p.kind = Phase::Kind::kSharded;
    dcfg.per_pair_lookahead = g_per_pair_lookahead;
    overlay::ShardedDriver driver(topo, ncfg, dcfg, shards);
    driver.run_trace(trace);
    p.summary = summarize(driver, timer.seconds());
    p.live_nodes = driver.live_node_count();
    p.shards = shards;
    p.effective_shards = driver.effective_shards();
    p.epochs = driver.epochs();
    if (g_check_hops > 0.0) {
      check_expectations_for(name, driver.trace_domain(), p.live_nodes);
    }
  } else {
    overlay::OverlayDriver driver(topo, ncfg, dcfg);
    driver.run_trace(trace);
    p.summary = summarize(driver, timer.seconds());
    p.live_nodes = driver.live_node_count();
    p.arena_rows = driver.routing_arena().rows_in_use();
    p.arena_bytes = driver.routing_arena().bytes_reserved();
    p.timer_arena_slots = driver.sim().arena_slots();
    p.parked_timers = driver.sim().parked_entries();
    if (g_check_hops > 0.0) {
      check_expectations_for(name, driver.trace_domain(), p.live_nodes);
    }
  }
  p.wall_seconds = p.summary.wall_seconds;
  p.executed_events = p.summary.executed_events;
  p.events_per_sec = p.summary.events_per_sec;
  p.digest = p.summary.digest;
  p.peak_rss = peak_rss_bytes();
  p.delay_cache = topo->delay_cache_stats();
  return p;
}

trace::ChurnTrace fig4_trace(SimDuration slice, int population) {
  auto params = trace::gnutella_params();
  params.target_population = population;
  params.duration = slice;
  params.seed = 11;
  return trace::generate_synthetic(params);
}

Phase run_fig4(SimDuration slice, SimDuration warmup, std::size_t shards) {
  // The fig4 Gnutella experiment at the paper's overlay size: Gnutella
  // session dynamics (lognormal sessions, diurnal arrivals) with the
  // population raised to 10,000.
  auto dcfg = base_driver_config(200);
  dcfg.warmup = warmup;
  return run_overlay("fig4_gnutella_10k",
                     "gnutella dynamics, N=" + std::to_string(g_population) +
                         ", slice=" + std::to_string(to_seconds(slice)) + "s",
                     make_topology(TopologyKind::kGATech),
                     make_net_config(TopologyKind::kGATech),
                     fig4_trace(slice, g_population), dcfg, shards);
}

Phase run_fig5(SimDuration slice, SimDuration warmup, std::size_t shards) {
  // One point of the fig5 session-time sweep (30-minute exponential
  // sessions, the paper's mid-churn column) at the paper's N = 10,000.
  auto dcfg = base_driver_config(302);
  dcfg.warmup = warmup;
  const auto trace =
      trace::generate_poisson(slice, 30 * 60.0, g_population, 502, "poisson");
  return run_overlay("fig5_poisson30_10k",
                     "poisson 30min sessions, N=" +
                         std::to_string(g_population) +
                         ", slice=" + std::to_string(to_seconds(slice)) + "s",
                     make_topology(TopologyKind::kGATech),
                     make_net_config(TopologyKind::kGATech), trace, dcfg,
                     shards);
}

/// The N = 100k tier: one fig4-style slice on the *paper-size* GATech
/// graph (5050 routers — landmark oracle mode regardless of REPRO_FULL),
/// normally on the sharded engine. This is the first rung of the
/// 100k -> 1M ladder: the delay oracle holds O(R*k + C^2) tables where
/// the row cache would approach O(R^2).
Phase run_fig4_100k(SimDuration slice, SimDuration warmup,
                    std::size_t shards) {
  auto dcfg = base_driver_config(200);
  dcfg.warmup = warmup;
  return run_overlay("fig4_gnutella_100k",
                     "gnutella dynamics, N=100000, paper-size GATech, "
                     "slice=" +
                         std::to_string(to_seconds(slice)) + "s",
                     std::make_shared<net::TransitStubTopology>(
                         net::TransitStubParams{}),
                     make_net_config(TopologyKind::kGATech),
                     fig4_trace(slice, g_population), dcfg, shards);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  double max_rss_mb = 0.0;       // 0 = no threshold
  double min_events_per_sec = 0.0;
  std::size_t shards = 1;        // >1: overlay slices on the sharded engine
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--max-rss-mb=", 13) == 0) {
      max_rss_mb = std::atof(argv[i] + 13);
    }
    if (std::strncmp(argv[i], "--min-events-per-sec=", 21) == 0) {
      min_events_per_sec = std::atof(argv[i] + 21);
    }
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      shards = static_cast<std::size_t>(std::atoi(argv[i] + 9));
      if (shards == 0) shards = 1;
    }
    if (std::strncmp(argv[i], "--population=", 13) == 0) {
      g_population = std::atoi(argv[i] + 13);
      if (g_population <= 0) g_population = 10000;
    }
    if (std::strcmp(argv[i], "--per-pair-lookahead") == 0) {
      g_per_pair_lookahead = true;
    }
    if (std::strncmp(argv[i], "--check-hops=", 13) == 0) {
      g_check_hops = std::atof(argv[i] + 13);
    }
  }
  const bool tier_100k = g_population >= 100000;

  JsonEmitter out(tier_100k ? "scale100k" : "scale");
  std::vector<Phase> phases;
  if (tier_100k) {
    print_header("Paper-scale suite: N = 100,000 fig4 slice");
    // The 100k tier is one long overlay phase; the smoke slice is sized
    // for a CI Release job at --shards=8.
    const SimDuration slice =
        smoke ? minutes(12) : (full_scale() ? hours(1) : minutes(30));
    const SimDuration warmup = smoke ? minutes(4) : minutes(10);
    std::printf("slice: %.0f simulated minutes, %zu shards%s%s\n",
                to_seconds(slice) / 60.0, shards,
                g_per_pair_lookahead ? ", per-pair lookahead" : "",
                smoke ? " (smoke)" : "");
    phases.push_back(run_fig4_100k(slice, warmup, shards));
    emit_phase(out, phases.back());
  } else {
    print_header("Paper-scale suite: N = 10,000 slices of fig3/fig4/fig5");
    const SimDuration slice =
        smoke ? minutes(30) : (full_scale() ? hours(4) : hours(1));
    const SimDuration warmup = smoke ? minutes(10) : minutes(20);
    std::printf("slice: %.0f simulated minutes per overlay run%s\n",
                to_seconds(slice) / 60.0, smoke ? " (smoke)" : "");
    if (shards > 1) {
      std::printf("overlay slices on the sharded engine, %zu shards%s\n",
                  shards,
                  g_per_pair_lookahead ? ", per-pair lookahead" : "");
    }
    phases.push_back(run_fig3(slice));
    emit_phase(out, phases.back());
    phases.push_back(run_fig4(slice, warmup, shards));
    emit_phase(out, phases.back());
    phases.push_back(run_fig5(slice, warmup, shards));
    emit_phase(out, phases.back());
  }

  // Threshold gates (CI): peak RSS is process-wide, throughput is the
  // slowest overlay phase.
  int failures = g_expectation_failures;
  const double rss_mb = peak_rss_bytes() / (1024.0 * 1024.0);
  if (max_rss_mb > 0 && rss_mb > max_rss_mb) {
    std::fprintf(stderr, "FAIL: peak RSS %.0f MB exceeds budget %.0f MB\n",
                 rss_mb, max_rss_mb);
    ++failures;
  }
  if (min_events_per_sec > 0) {
    for (const auto& p : phases) {
      if (p.summary.executed_events == 0) continue;  // trace-only phase
      if (p.events_per_sec < min_events_per_sec) {
        std::fprintf(stderr,
                     "FAIL: %s throughput %.0f events/s below floor %.0f\n",
                     p.name.c_str(), p.events_per_sec, min_events_per_sec);
        ++failures;
      }
    }
  }
  // Landmark-mode memory invariant: the oracle answered every delay from
  // its O(R*k + C^2) tables — a single cached Dijkstra row means some
  // path regressed to the O(R^2) cache.
  for (const auto& p : phases) {
    if (p.kind == Phase::Kind::kTraceOnly || !p.delay_cache.landmark_mode) {
      continue;
    }
    if (p.delay_cache.cached_rows > 0) {
      std::fprintf(stderr,
                   "FAIL: %s: %llu exact Dijkstra rows cached in landmark "
                   "mode (%llu bytes) — the O(R^2) cache is regrowing\n",
                   p.name.c_str(),
                   static_cast<unsigned long long>(p.delay_cache.cached_rows),
                   static_cast<unsigned long long>(
                       p.delay_cache.row_cache_bytes));
      ++failures;
    }
  }
  std::printf("\npeak RSS %.0f MB across the suite\n", rss_mb);
  return failures == 0 ? 0 : 1;
}
