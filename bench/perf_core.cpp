// Event-core performance baseline. Replays four representative
// workloads and records events/sec, wall-clock, peak RSS, and a
// determinism checksum in BENCH_core.json (plus BENCH_msgpath.json for
// the message-path replay):
//
//   1. `micro`  — a raw schedule/cancel/fire microbenchmark run twice:
//                 once on the production `Simulator` and once on
//                 `LegacySimulator`, a frozen copy of the pre-rewrite core
//                 (priority_queue + callbacks map + cancelled set). The
//                 two must produce identical execution-order checksums;
//                 their throughput ratio is the recorded speedup.
//   2. `fig4`   — the Figure-4-style Gnutella churn replay (the workload
//                 every paper table/figure is built from).
//   3. `chaos`  — the combined fault-injection scenario from the chaos
//                 harness (timer-cancel heavy: retries, probes, faults).
//   4. `msgpath`— a Figure-4-mix message allocate/send/dispatch replay
//                 run twice: once on the pooled intrusive-refcount path
//                 and once on a frozen copy of the pre-PR-3 shared_ptr +
//                 std::vector message layer. Content digests must match;
//                 the pooled run must not touch the heap after warmup.
//
// The checksums let any later event-core change prove it preserved
// observable behaviour: same executed-event counts, same metrics digest.
//
// Usage: perf_core [--smoke]   (--smoke: CI-sized run, a few seconds)
//        REPRO_FULL=1 perf_core  for paper-scale replay

#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <random>
#include <unordered_map>
#include <unordered_set>

#include "bench_util.hpp"
#include "common/inplace_callback.hpp"
#include "common/small_vec.hpp"
#include "obs/flight_recorder.hpp"
#include "overlay/chaos.hpp"
#include "pastry/message.hpp"
#include "pastry/message_pool.hpp"
#include "sim/simulator.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

// --- Frozen pre-rewrite event core (PR 1 vintage) ---------------------------
//
// Kept verbatim so the microbench always measures new-vs-old on the same
// machine, and so the checksum cross-check does not depend on a recorded
// number from somebody else's hardware. Do not "improve" this class.
class LegacySimulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  TimerId schedule_at(SimTime t, Callback fn) {
    const TimerId id = next_id_++;
    heap_.push(Entry{t < now_ ? now_ : t, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }

  TimerId schedule_after(SimDuration d, Callback fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  void cancel(TimerId id) {
    if (id == kInvalidTimer) return;
    const auto it = callbacks_.find(id);
    if (it == callbacks_.end()) return;
    callbacks_.erase(it);
    cancelled_.insert(id);
  }

  bool step() {
    prune();
    if (heap_.empty()) return false;
    const Entry e = heap_.top();
    heap_.pop();
    now_ = e.t;
    auto it = callbacks_.find(e.id);
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    ++executed_;
    fn();
    return true;
  }

  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime t;
    TimerId id;
    bool operator>(const Entry& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  void prune() {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  SimTime now_ = kTimeZero;
  TimerId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<TimerId, Callback> callbacks_;
  std::unordered_set<TimerId> cancelled_;
};

// --- Raw schedule/cancel/fire microbench ------------------------------------

struct MicroResult {
  double wall_seconds = 0.0;
  std::uint64_t executed = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancels = 0;
  double events_per_sec = 0.0;  ///< executed / wall
  double ops_per_sec = 0.0;     ///< (scheduled + cancels + executed) / wall
  std::uint64_t order_digest = kFnvOffset;  ///< order-sensitive checksum
};

/// The workload models what the overlay actually does to the simulator:
/// a deep steady-state queue (tens of thousands of outstanding timers),
/// short per-hop ack timeouts mixed with long heartbeat periods, and
/// about a third of all timers cancelled before they fire (acks arrive,
/// probes get answered). Identical PRNG decisions on both cores, so the
/// execution order checksum must match exactly.
template <typename Sim>
MicroResult run_micro(std::uint64_t target_executed, std::size_t prefill) {
  Sim sim;
  std::mt19937_64 prng(0x5eedc0de);
  std::vector<TimerId> live;  // candidates for cancellation
  live.reserve(prefill + 1024);
  MicroResult out;

  auto schedule_one = [&] {
    const std::uint64_t r = prng();
    // 1/8 long "heartbeat" timers (~30 s), the rest short "ack" timers
    // spread over ~65 ms — two bands like the real protocol mix.
    const SimDuration d = (r & 7u) == 0
                              ? seconds(30) + static_cast<SimDuration>(r % 1000)
                              : 1 + static_cast<SimDuration>(r & 0xffffu);
    const std::uint64_t tag = r >> 3;
    TimerId id = sim.schedule_after(
        d, [&out, tag] { out.order_digest = hash_u64(out.order_digest, tag); });
    ++out.scheduled;
    if (r & 1u) live.push_back(id);  // half the timers may be cancelled later
  };

  for (std::size_t i = 0; i < prefill; ++i) schedule_one();

  WallTimer timer;
  while (sim.executed_events() < target_executed) {
    for (int i = 0; i < 64; ++i) schedule_one();
    for (int i = 0; i < 24 && !live.empty(); ++i) {
      const std::size_t k = prng() % live.size();
      sim.cancel(live[k]);
      ++out.cancels;
      live[k] = live.back();
      live.pop_back();
    }
    for (int i = 0; i < 40; ++i) {
      if (!sim.step()) break;
    }
  }
  out.wall_seconds = timer.seconds();
  out.executed = sim.executed_events();
  out.events_per_sec =
      out.wall_seconds > 0 ? out.executed / out.wall_seconds : 0.0;
  out.ops_per_sec = out.wall_seconds > 0 ? (out.executed + out.scheduled +
                                            out.cancels) /
                                               out.wall_seconds
                                         : 0.0;
  return out;
}

void emit_micro_row(JsonEmitter& out, const char* name, const MicroResult& r,
                    const std::string& params) {
  out.row(name)
      .field("params", params)
      .field("wall_seconds", r.wall_seconds)
      .field("executed_events", r.executed)
      .field("scheduled", r.scheduled)
      .field("cancels", r.cancels)
      .field("events_per_sec", r.events_per_sec)
      .field("ops_per_sec", r.ops_per_sec)
      .hex("digest", r.order_digest);
}

std::uint64_t chaos_digest(const overlay::ChaosResult& r) {
  std::uint64_t h = kFnvOffset;
  for (const auto v : r.injected) h = hash_u64(h, v);
  h = hash_u64(h, r.fault_issued);
  h = hash_u64(h, r.fault_delivered);
  h = hash_u64(h, r.fault_incorrect);
  h = hash_u64(h, r.heal_issued);
  h = hash_u64(h, r.heal_delivered);
  h = hash_u64(h, r.heal_incorrect);
  h = hash_f64(h, r.reconverge_seconds);
  h = hash_u64(h, r.false_positives);
  for (const char c : r.fault_schedule) {
    h = hash_u64(h, static_cast<unsigned char>(c));
  }
  return h;
}

// --- Frozen pre-PR-3 message layer ------------------------------------------
//
// A verbatim copy of what the message path looked like before the pooled
// rewrite: one make_shared per message (atomic control block), std::vector
// payloads heap-allocated per probe. Kept frozen for the same reason as
// LegacySimulator: the speedup is always measured new-vs-old on the same
// machine. Do not "improve" these types.
namespace legacy_msg {

using pastry::MsgType;
using pastry::NodeDescriptor;

struct Message {
  explicit Message(MsgType t) : type(t) {}
  virtual ~Message() = default;
  MsgType type;
  NodeDescriptor sender;
  double trt_hint_s = 0.0;
};

struct LookupMsg final : Message {
  LookupMsg() : Message(MsgType::kLookup) {}
  NodeId key;
  int hops = 0;
  std::uint64_t hop_seq = 0;
  std::uint64_t lookup_id = 0;
};

struct LsProbeMsg final : Message {
  explicit LsProbeMsg(bool reply)
      : Message(reply ? MsgType::kLsProbeReply : MsgType::kLsProbe) {}
  std::vector<NodeDescriptor> leaf;
  std::vector<NodeDescriptor> failed;
};

struct HeartbeatMsg final : Message {
  HeartbeatMsg() : Message(MsgType::kHeartbeat) {}
};

struct RtProbeMsg final : Message {
  explicit RtProbeMsg(bool reply)
      : Message(reply ? MsgType::kRtProbeReply : MsgType::kRtProbe) {}
};

struct RtRowReplyMsg final : Message {
  RtRowReplyMsg() : Message(MsgType::kRtRowReply) {}
  int row = 0;
  std::vector<NodeDescriptor> entries;
};

struct RtRowAnnounceMsg final : Message {
  RtRowAnnounceMsg() : Message(MsgType::kRtRowAnnounce) {}
  int row = 0;
  std::vector<NodeDescriptor> entries;
};

struct AckMsg final : Message {
  AckMsg() : Message(MsgType::kAck) {}
  std::uint64_t hop_seq = 0;
};

}  // namespace legacy_msg

// --- Message-path replay ----------------------------------------------------

/// Fast deterministic stream for the replay's decisions: the digesting
/// and decision machinery must stay cheap, or it drowns out the
/// allocation/refcount cost the two paths differ on.
struct SplitMix64 {
  std::uint64_t s;
  explicit SplitMix64(std::uint64_t seed) : s(seed) {}
  std::uint64_t operator()() {
    std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

/// One dependent multiply per descriptor (order-sensitive), the field
/// mixes pipeline in parallel.
std::uint64_t fold_descriptor(std::uint64_t acc,
                              const pastry::NodeDescriptor& d) {
  return (acc * 0x100000001b3ull) ^
         (d.id.value().hi * 0x9e3779b97f4a7c15ull) ^
         (d.id.value().lo * 0xff51afd7ed558ccdull) ^
         static_cast<std::uint32_t>(d.addr);
}

/// The production path: slab pool + intrusive refcount + SmallVec payloads.
struct PooledMsgPath {
  static constexpr const char* kName = "pooled";
  using Ptr = pastry::MessagePtr;

  pastry::MessagePool pool;

  std::uint64_t chunk_allocs() const { return pool.stats().chunk_allocs; }

  template <class It>
  Ptr make_ls_probe(const pastry::NodeDescriptor& sender, bool reply,
                    It peers, std::size_t nleaf, std::size_t nfailed) {
    auto m = pastry::make_msg<pastry::LsProbeMsg>(pool, reply);
    m->sender = sender;
    m->leaf.assign(peers, peers + nleaf);
    m->failed.assign(peers + nleaf, peers + nleaf + nfailed);
    return m;
  }

  template <class It>
  Ptr make_row_reply(const pastry::NodeDescriptor& sender, int row, It peers,
                     std::size_t nentries) {
    auto m = pastry::make_msg<pastry::RtRowReplyMsg>(pool);
    m->sender = sender;
    m->row = row;
    m->entries.assign(peers, peers + nentries);
    return m;
  }

  Ptr make_lookup(const pastry::NodeDescriptor& sender, NodeId key,
                  std::uint64_t lookup_id, std::uint64_t hop_seq) {
    auto m = pastry::make_msg<pastry::LookupMsg>(pool);
    m->sender = sender;
    m->key = key;
    m->lookup_id = lookup_id;
    m->hop_seq = hop_seq;
    return m;
  }

  Ptr make_heartbeat(const pastry::NodeDescriptor& sender) {
    auto m = pastry::make_msg<pastry::HeartbeatMsg>(pool);
    m->sender = sender;
    return m;
  }

  Ptr make_rt_probe(const pastry::NodeDescriptor& sender, bool reply) {
    auto m = pastry::make_msg<pastry::RtProbeMsg>(pool, reply);
    m->sender = sender;
    return m;
  }

  Ptr make_ack(const pastry::NodeDescriptor& sender, std::uint64_t hop_seq) {
    auto m = pastry::make_msg<pastry::AckMsg>(pool);
    m->sender = sender;
    m->hop_seq = hop_seq;
    return m;
  }

  /// Per-hop forward: the production router builds the next hop's message
  /// from the incoming one (fresh pool slot, field copy, hop_seq bump).
  Ptr clone_lookup(const Ptr& m, const pastry::NodeDescriptor& hop) {
    const auto& src = static_cast<const pastry::LookupMsg&>(*m);
    auto c = pastry::make_msg<pastry::LookupMsg>(pool);
    c->sender = hop;
    c->key = src.key;
    c->lookup_id = src.lookup_id;
    c->hop_seq = src.hop_seq + 1;
    return c;
  }

  /// Join-time row broadcast the way the post-PR-3 announce_rows works:
  /// ONE pooled message, one payload fill, and `fanout` refcount aliases
  /// pushed into the delivery queue.
  template <class It, class PushFn>
  void announce_row(const pastry::NodeDescriptor& sender, int row, It peers,
                    std::size_t nentries, unsigned fanout, PushFn&& push) {
    auto m = pastry::make_msg<pastry::RtRowAnnounceMsg>(pool);
    m->sender = sender;
    m->row = row;
    m->entries.assign(peers, peers + nentries);
    for (unsigned i = 1; i < fanout; ++i) push(send(Ptr(m)));
    push(send(std::move(m)));
  }

  /// Hand a freshly built message to the network the way the production
  /// path does: moved into the delivery callback, no refcount traffic.
  static Ptr send(Ptr m) { return m; }

  /// Take the packet out of the delivery queue the way the production
  /// path does: the callback capture and deliver() hand-offs are *moves*
  /// (PR-3's refcount-move rule); only the pointer cast into the handler
  /// bumps the (non-atomic) count.
  static Ptr retain(Ptr& slot) {
    Ptr moved(std::move(slot));
    Ptr cast(moved);
    return cast;
  }

  static std::uint64_t dispatch(std::uint64_t h, const Ptr& p) {
    using pastry::MsgType;
    std::uint64_t acc = static_cast<std::uint64_t>(p->type);
    acc = fold_descriptor(acc, p->sender);
    switch (p->type) {
      case MsgType::kLsProbe:
      case MsgType::kLsProbeReply: {
        const auto& m = static_cast<const pastry::LsProbeMsg&>(*p);
        acc = (acc ^ (m.leaf.size() * 64 + m.failed.size())) *
              0x100000001b3ull;
        if (!m.leaf.empty()) {
          acc = fold_descriptor(acc, m.leaf.front());
          acc = fold_descriptor(acc, m.leaf.back());
        }
        if (!m.failed.empty()) acc = fold_descriptor(acc, m.failed.back());
        break;
      }
      case MsgType::kRtRowReply: {
        const auto& m = static_cast<const pastry::RtRowReplyMsg&>(*p);
        acc ^= static_cast<std::uint64_t>(m.row) + (m.entries.size() << 8);
        if (!m.entries.empty()) {
          acc = fold_descriptor(acc, m.entries.front());
          acc = fold_descriptor(acc, m.entries.back());
        }
        break;
      }
      case MsgType::kRtRowAnnounce: {
        const auto& m = static_cast<const pastry::RtRowAnnounceMsg&>(*p);
        acc ^= static_cast<std::uint64_t>(m.row) + (m.entries.size() << 8);
        if (!m.entries.empty()) {
          acc = fold_descriptor(acc, m.entries.front());
          acc = fold_descriptor(acc, m.entries.back());
        }
        break;
      }
      case MsgType::kLookup: {
        const auto& m = static_cast<const pastry::LookupMsg&>(*p);
        acc = (acc ^ m.key.value().lo) * 0x100000001b3ull;
        acc = (acc ^ m.lookup_id) * 0x100000001b3ull;
        acc ^= m.hop_seq;
        break;
      }
      case MsgType::kAck:
        acc ^= static_cast<const pastry::AckMsg&>(*p).hop_seq;
        break;
      default:
        break;
    }
    return (h ^ acc) * 0x100000001b3ull;
  }
};

/// The frozen baseline: same factory/dispatch surface over legacy_msg.
struct LegacyMsgPath {
  static constexpr const char* kName = "shared_ptr";
  using Ptr = std::shared_ptr<const legacy_msg::Message>;

  std::uint64_t chunk_allocs() const { return 0; }

  template <class It>
  Ptr make_ls_probe(const pastry::NodeDescriptor& sender, bool reply,
                    It peers, std::size_t nleaf, std::size_t nfailed) {
    auto m = std::make_shared<legacy_msg::LsProbeMsg>(reply);
    m->sender = sender;
    m->leaf.assign(peers, peers + nleaf);
    m->failed.assign(peers + nleaf, peers + nleaf + nfailed);
    return m;
  }

  template <class It>
  Ptr make_row_reply(const pastry::NodeDescriptor& sender, int row, It peers,
                     std::size_t nentries) {
    auto m = std::make_shared<legacy_msg::RtRowReplyMsg>();
    m->sender = sender;
    m->row = row;
    m->entries.assign(peers, peers + nentries);
    return m;
  }

  Ptr make_lookup(const pastry::NodeDescriptor& sender, NodeId key,
                  std::uint64_t lookup_id, std::uint64_t hop_seq) {
    auto m = std::make_shared<legacy_msg::LookupMsg>();
    m->sender = sender;
    m->key = key;
    m->lookup_id = lookup_id;
    m->hop_seq = hop_seq;
    return m;
  }

  Ptr make_heartbeat(const pastry::NodeDescriptor& sender) {
    auto m = std::make_shared<legacy_msg::HeartbeatMsg>();
    m->sender = sender;
    return m;
  }

  Ptr make_rt_probe(const pastry::NodeDescriptor& sender, bool reply) {
    auto m = std::make_shared<legacy_msg::RtProbeMsg>(reply);
    m->sender = sender;
    return m;
  }

  Ptr make_ack(const pastry::NodeDescriptor& sender, std::uint64_t hop_seq) {
    auto m = std::make_shared<legacy_msg::AckMsg>();
    m->sender = sender;
    m->hop_seq = hop_seq;
    return m;
  }

  /// Per-hop forward, pre-PR-3 style: make_shared a fresh message and copy
  /// the fields across.
  Ptr clone_lookup(const Ptr& m, const pastry::NodeDescriptor& hop) {
    const auto& src = static_cast<const legacy_msg::LookupMsg&>(*m);
    auto c = std::make_shared<legacy_msg::LookupMsg>();
    c->sender = hop;
    c->key = src.key;
    c->lookup_id = src.lookup_id;
    c->hop_seq = src.hop_seq + 1;
    return c;
  }

  /// Join-time row broadcast the way the pre-PR-3 announce_rows worked: a
  /// fresh make_shared (atomic control block) and a fresh heap payload
  /// vector for EVERY destination in the fanout.
  template <class It, class PushFn>
  void announce_row(const pastry::NodeDescriptor& sender, int row, It peers,
                    std::size_t nentries, unsigned fanout, PushFn&& push) {
    for (unsigned i = 0; i < fanout; ++i) {
      auto m = std::make_shared<legacy_msg::RtRowAnnounceMsg>();
      m->sender = sender;
      m->row = row;
      m->entries.assign(peers, peers + nentries);
      push(send(std::move(m)));
    }
  }

  /// Hand a freshly built message to the network the way the pre-PR-3
  /// code did: Network::send took the shared_ptr by value and *copied* it
  /// into the delivery callback's capture.
  static Ptr send(Ptr m) {
    Ptr queued(m);
    return queued;
  }

  /// Take the packet out of the delivery queue the way the pre-PR-3 code
  /// did: the delivery callback captured the shared_ptr by value, deliver
  /// copied it again (`p = packet`), and the dynamic_pointer_cast into
  /// the handler made a third copy — three atomic refcount round-trips
  /// per dispatch.
  static Ptr retain(Ptr& slot) {
    Ptr captured(slot);
    slot.reset();
    Ptr delivered(captured);
    Ptr cast(delivered);
    return cast;
  }

  static std::uint64_t dispatch(std::uint64_t h, const Ptr& p) {
    using pastry::MsgType;
    std::uint64_t acc = static_cast<std::uint64_t>(p->type);
    acc = fold_descriptor(acc, p->sender);
    switch (p->type) {
      case MsgType::kLsProbe:
      case MsgType::kLsProbeReply: {
        const auto& m = static_cast<const legacy_msg::LsProbeMsg&>(*p);
        acc = (acc ^ (m.leaf.size() * 64 + m.failed.size())) *
              0x100000001b3ull;
        if (!m.leaf.empty()) {
          acc = fold_descriptor(acc, m.leaf.front());
          acc = fold_descriptor(acc, m.leaf.back());
        }
        if (!m.failed.empty()) acc = fold_descriptor(acc, m.failed.back());
        break;
      }
      case MsgType::kRtRowReply: {
        const auto& m = static_cast<const legacy_msg::RtRowReplyMsg&>(*p);
        acc ^= static_cast<std::uint64_t>(m.row) + (m.entries.size() << 8);
        if (!m.entries.empty()) {
          acc = fold_descriptor(acc, m.entries.front());
          acc = fold_descriptor(acc, m.entries.back());
        }
        break;
      }
      case MsgType::kRtRowAnnounce: {
        const auto& m = static_cast<const legacy_msg::RtRowAnnounceMsg&>(*p);
        acc ^= static_cast<std::uint64_t>(m.row) + (m.entries.size() << 8);
        if (!m.entries.empty()) {
          acc = fold_descriptor(acc, m.entries.front());
          acc = fold_descriptor(acc, m.entries.back());
        }
        break;
      }
      case MsgType::kLookup: {
        const auto& m = static_cast<const legacy_msg::LookupMsg&>(*p);
        acc = (acc ^ m.key.value().lo) * 0x100000001b3ull;
        acc = (acc ^ m.lookup_id) * 0x100000001b3ull;
        acc ^= m.hop_seq;
        break;
      }
      case MsgType::kAck:
        acc ^= static_cast<const legacy_msg::AckMsg&>(*p).hop_seq;
        break;
      default:
        break;
    }
    return (h ^ acc) * 0x100000001b3ull;
  }
};

/// The pooled path with the observability layer compiled in but disabled:
/// every dispatch pays exactly the guard the production trace_path()
/// helper pays when no flight recorder is installed — a load of a
/// recorder pointer the optimizer must treat as unknown (volatile) and a
/// null test. The tracing-overhead gate in main() holds this within 1%
/// of the plain pooled path, in-process on the same machine (comparing
/// against a BENCH_msgpath.json recorded elsewhere would gate on the CI
/// host's hardware, not on the code).
struct TracedMsgPath : PooledMsgPath {
  static constexpr const char* kName = "pooled+tracing-off";

  // Plain pointer, exactly like the per-node member in node_core: set at
  // runtime (see main), so the compiler keeps the null check but may cache
  // the load — which is the cost actually shipped, not a volatile reload.
  static obs::FlightRecorder* recorder;

  static Ptr retain(Ptr& slot) {
    obs::FlightRecorder* rec = recorder;
    Ptr p = PooledMsgPath::retain(slot);
    if (rec != nullptr) {
      rec->record(0, obs::EventKind::kRecv, 1, net::kNullAddress, 0, 0);
    }
    return p;
  }

  static std::uint64_t dispatch(std::uint64_t h, const Ptr& p) {
    obs::FlightRecorder* rec = recorder;
    if (rec != nullptr) {
      rec->record(0, obs::EventKind::kForward, h | 1, net::kNullAddress, 0, 0);
    }
    return PooledMsgPath::dispatch(h, p);
  }
};

obs::FlightRecorder* TracedMsgPath::recorder = nullptr;

struct MsgPathResult {
  double wall_seconds = 0.0;
  std::uint64_t messages = 0;     ///< dispatched inside the timed window
  double msgs_per_sec = 0.0;
  std::uint64_t digest = kFnvOffset;       ///< content digest, full replay
  std::uint64_t steady_chunk_allocs = 0;   ///< slab chunks carved post-warmup
  std::uint64_t steady_spills = 0;         ///< SmallVec heap spills post-warmup
};

/// Replay the Figure-4 traffic mix through one message path as the
/// protocol-shaped *bursts* that produce it: leaf-set and routing-table
/// probes travel as probe/reply pairs, a lookup spawns a per-hop clone
/// plus an ack, and a join-time row announce fans one row out to 8–15
/// destinations — the case where the pre-PR-3 code built a fresh
/// make_shared + payload vector per destination and the pooled path
/// allocates once and pushes refcount aliases. Messages sit in a bounded
/// in-flight window (the network's delivery queue) and dispatch in FIFO
/// order. Occasionally an in-flight pointer is aliased — the fault plan's
/// duplication rule delivers one packet twice — which on both paths is a
/// refcount bump, not a deep copy. All decisions come from one PRNG
/// stream shared by both paths, so the content digests must match
/// exactly.
///
/// The replay runs twice on the same pool: the first (untimed) pass grows
/// the slabs to this workload's exact peak per-type occupancy, so the
/// timed second pass — the identical message sequence — provably needs no
/// new chunks. Any post-warmup chunk or SmallVec spill is reported and
/// fails the run.
template <class Path>
MsgPathResult run_msgpath(std::uint64_t target_msgs) {
  Path path;
  MsgPathResult out;

  auto replay = [&](bool record) -> std::uint64_t {
    SplitMix64 prng(0x5eedc0de);

    // A fixed roster of peer descriptors; payloads copy slices of it (the
    // copy, not the descriptor generation, is what the paths differ on).
    std::vector<pastry::NodeDescriptor> peers;
    peers.reserve(64);
    for (int i = 0; i < 64; ++i) {
      peers.push_back({NodeId{prng(), prng()}, static_cast<net::Address>(i)});
    }
    const auto* pp = peers.data();

    // Fixed ring as the in-flight window: the shared queue machinery must
    // stay cheap or it masks the per-message cost the two paths differ on.
    constexpr std::size_t kRing = 32;  // > window 8 + largest burst (15)
    std::vector<typename Path::Ptr> ring(kRing);
    std::size_t head = 0, tail = 0, in_ring = 0;
    std::uint64_t made = 0;
    std::uint64_t dispatched = 0;

    auto push = [&](typename Path::Ptr&& p) {
      ring[tail] = std::move(p);
      tail = (tail + 1) & (kRing - 1);
      ++in_ring;
      ++made;
    };
    // Single-message steps are also subject to the duplication alias.
    auto push_dup = [&](std::uint64_t r, typename Path::Ptr m) {
      if ((r >> 58) == 0) push(typename Path::Ptr(m));
      push(Path::send(std::move(m)));
    };
    auto dispatch_front = [&] {
      // Each path retains the packet across the handler the way its real
      // delivery code does (see Path::retain): copies on the shared_ptr
      // baseline, moves + one plain bump on the pooled path.
      typename Path::Ptr p = Path::retain(ring[head]);
      const std::uint64_t h = Path::dispatch(out.digest, p);
      if (record) out.digest = h;
      head = (head + 1) & (kRing - 1);
      --in_ring;
      ++dispatched;
    };

    while (made < target_msgs) {
      const std::uint64_t r = prng();
      const unsigned pick = static_cast<unsigned>(r % 100u);
      const pastry::NodeDescriptor& sender = pp[(r >> 7) & 63u];
      const pastry::NodeDescriptor& peer = pp[(r >> 13) & 63u];
      // Figure-4 (right) mix, coarsely: leaf-set traffic (heartbeats plus
      // payload-carrying probe/reply pairs) dominates, then acks, routing-
      // table probes, lookups (each hop = clone + ack), row transfer.
      if (pick < 15) {
        push_dup(r, path.make_ack(sender, r >> 9));
      } else if (pick < 35) {
        push_dup(r, path.make_heartbeat(sender));
      } else if (pick < 55) {
        // Probe and its reply, both payload-carrying.
        push(Path::send(path.make_ls_probe(sender, false, pp,
                                           24 + ((r >> 16) & 7u),
                                           (r >> 20) & 3u)));
        push(Path::send(path.make_ls_probe(peer, true, pp,
                                           24 + ((r >> 32) & 7u),
                                           (r >> 36) & 3u)));
      } else if (pick < 70) {
        push_dup(r, path.make_ls_probe(sender, false, pp,
                                       24 + ((r >> 16) & 7u),
                                       (r >> 20) & 3u));
      } else if (pick < 80) {
        push(Path::send(path.make_rt_probe(sender, false)));
        push(Path::send(path.make_rt_probe(peer, true)));
      } else if (pick < 88) {
        // One routing hop of a lookup: the incoming message, the clone
        // forwarded to the next hop, and the per-hop ack back.
        auto m = path.make_lookup(sender, NodeId{r * 0x9e3779b97f4a7c15ull, r},
                                  made, r >> 9);
        auto hop = path.clone_lookup(m, peer);
        push(Path::send(std::move(m)));
        push(Path::send(std::move(hop)));
        push(Path::send(path.make_ack(peer, r >> 9)));
      } else if (pick < 94) {
        push_dup(r, path.make_row_reply(sender,
                                        static_cast<int>((r >> 16) & 7u), pp,
                                        8 + ((r >> 24) & 7u)));
      } else {
        // Join-time row broadcast: one row's entries to every row member.
        path.announce_row(sender, static_cast<int>((r >> 16) & 7u), pp,
                          8 + ((r >> 24) & 7u), 8 + ((r >> 40) & 7u), push);
      }
      while (in_ring > 8) dispatch_front();
    }
    while (in_ring > 0) dispatch_front();
    return dispatched;
  };

  replay(/*record=*/false);  // warmup: size the pool for this exact replay
  const std::uint64_t chunks0 = path.chunk_allocs();
  const std::uint64_t spills0 = small_vec_spills();

  WallTimer timer;
  out.messages = replay(/*record=*/true);
  out.wall_seconds = timer.seconds();
  out.msgs_per_sec =
      out.wall_seconds > 0 ? out.messages / out.wall_seconds : 0.0;
  out.steady_chunk_allocs = path.chunk_allocs() - chunks0;
  out.steady_spills = small_vec_spills() - spills0;
  return out;
}

void emit_msgpath_row(JsonEmitter& out, const char* name,
                      const MsgPathResult& r, const std::string& params) {
  out.row(name)
      .field("params", params)
      .field("wall_seconds", r.wall_seconds)
      .field("messages", r.messages)
      .field("msgs_per_sec", r.msgs_per_sec)
      .field("steady_chunk_allocs", r.steady_chunk_allocs)
      .field("steady_small_vec_spills", r.steady_spills)
      .hex("digest", r.digest);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  // Opt-in live ring for the traced path (default: compiled in, disabled).
  // Assigning from getenv keeps the optimizer from folding the null check.
  std::unique_ptr<obs::FlightRecorder> trace_ring;
  if (std::getenv("PERF_CORE_TRACE_RING") != nullptr) {
    obs::ObsConfig ring_cfg;
    ring_cfg.enabled = true;
    trace_ring = std::make_unique<obs::FlightRecorder>(net::Address{0},
                                                       ring_cfg);
    TracedMsgPath::recorder = trace_ring.get();
  }

  print_header("Event-core performance baseline (perf_core)");
  JsonEmitter out("core");

  // --- 1. raw schedule/cancel microbench, new core vs frozen legacy core --
  // Same queue depth in both modes (depth is what shapes the heap and
  // cache behaviour); --smoke only trims how long we sustain it.
  const std::uint64_t micro_events = smoke ? 800'000 : 4'000'000;
  const std::size_t prefill = 50'000;
  const std::string micro_params = "target_executed=" +
                                   std::to_string(micro_events) +
                                   " prefill=" + std::to_string(prefill);

  std::printf("\n-- micro: schedule/cancel/fire (%s)\n", micro_params.c_str());
  // Alternate the two cores and keep each one's best repetition: timing
  // interference (shared CI hosts) is one-sided — it can only slow a
  // run down — so best-of-N alternating is robust where a single pair of
  // back-to-back runs is not. Checksums must agree across every rep.
  const int reps = smoke ? 2 : 3;
  MicroResult legacy, current;
  for (int r = 0; r < reps; ++r) {
    const MicroResult l = run_micro<LegacySimulator>(micro_events, prefill);
    const MicroResult c = run_micro<Simulator>(micro_events, prefill);
    if (r == 0 || l.events_per_sec > legacy.events_per_sec) legacy = l;
    if (r == 0 || c.events_per_sec > current.events_per_sec) current = c;
    if (l.order_digest != c.order_digest) {
      std::fprintf(stderr, "FATAL: micro digest mismatch in rep %d\n", r);
      return 1;
    }
  }
  std::printf("  legacy : %10.0f events/s  %10.0f ops/s  %.3fs\n",
              legacy.events_per_sec, legacy.ops_per_sec, legacy.wall_seconds);
  std::printf("  current: %10.0f events/s  %10.0f ops/s  %.3fs\n",
              current.events_per_sec, current.ops_per_sec,
              current.wall_seconds);
  const double speedup = legacy.events_per_sec > 0
                             ? current.events_per_sec / legacy.events_per_sec
                             : 0.0;
  std::printf("  speedup: %.2fx   digests %s (%016llx)\n", speedup,
              current.order_digest == legacy.order_digest ? "MATCH"
                                                          : "MISMATCH",
              (unsigned long long)current.order_digest);
  emit_micro_row(out, "micro_current", current, micro_params);
  emit_micro_row(out, "micro_legacy", legacy, micro_params);
  out.row("micro_compare")
      .field("speedup", speedup)
      .field("digests_match", current.order_digest == legacy.order_digest);

  // --- 2. fig4-style Gnutella churn replay --------------------------------
  std::printf("\n-- fig4-style churn replay\n");
  const double ts = smoke ? 0.01 : (full_scale() ? 1.0 : 0.05);
  const double ns = smoke ? 0.05 : node_scale();
  const auto trace =
      trace::generate_synthetic(trace::gnutella_params(ns, ts));
  const RunSummary fig4 =
      run_experiment(TopologyKind::kGATech, base_driver_config(200), trace);
  std::printf("  %llu events in %.3fs  (%.0f events/s)  digest %016llx\n",
              (unsigned long long)fig4.executed_events, fig4.wall_seconds,
              fig4.events_per_sec, (unsigned long long)fig4.digest);
  emit_summary_row(out, "fig4_replay",
                   "trace=gnutella node_scale=" + std::to_string(ns) +
                       " time_scale=" + std::to_string(ts) + " seed=200",
                   fig4);

  // --- 3. chaos scenario replay (cancel-heavy) ----------------------------
  std::printf("\n-- chaos combined scenario\n");
  overlay::ChaosConfig ccfg;
  ccfg.seed = 7;
  ccfg.nodes = smoke ? 25 : 40;
  WallTimer chaos_timer;
  overlay::ChaosHarness harness(make_topology(TopologyKind::kGATech), ccfg);
  const overlay::ChaosResult chaos = harness.run("combined");
  const double chaos_wall = chaos_timer.seconds();
  const std::uint64_t cdigest = chaos_digest(chaos);
  std::printf("  %.3fs  ok=%d  digest %016llx\n", chaos_wall, chaos.ok(),
              (unsigned long long)cdigest);
  out.row("chaos_combined")
      .field("params", "scenario=combined seed=7 nodes=" +
                           std::to_string(ccfg.nodes))
      .field("wall_seconds", chaos_wall)
      .field("ok", chaos.ok())
      .hex("digest", cdigest);

  // --- 4. message-path replay: pooled vs frozen shared_ptr ----------------
  // Written to its own BENCH_msgpath.json so the message-path trajectory
  // can be tracked (and diffed) independently of the event-core numbers.
  std::printf("\n-- msgpath: fig4-mix allocate/send/dispatch replay\n");
  JsonEmitter msg_out("msgpath");
  const std::uint64_t msg_target = smoke ? 400'000 : 2'000'000;
  const std::string msg_params = "target_msgs=" + std::to_string(msg_target) +
                                 " inflight=8 mix=fig4-bursts";
  MsgPathResult msg_legacy, msg_pooled;
  for (int r = 0; r < reps; ++r) {
    const MsgPathResult l = run_msgpath<LegacyMsgPath>(msg_target);
    const MsgPathResult c = run_msgpath<PooledMsgPath>(msg_target);
    if (r == 0 || l.msgs_per_sec > msg_legacy.msgs_per_sec) msg_legacy = l;
    if (r == 0 || c.msgs_per_sec > msg_pooled.msgs_per_sec) msg_pooled = c;
    if (l.digest != c.digest) {
      std::fprintf(stderr, "FATAL: msgpath digest mismatch in rep %d\n", r);
      return 1;
    }
    if (c.steady_chunk_allocs != 0 || c.steady_spills != 0) {
      std::fprintf(stderr,
                   "FATAL: msgpath pooled run hit the heap after warmup "
                   "(chunks=%llu spills=%llu)\n",
                   (unsigned long long)c.steady_chunk_allocs,
                   (unsigned long long)c.steady_spills);
      return 1;
    }
  }
  std::printf("  shared_ptr: %10.0f msgs/s  %.3fs\n", msg_legacy.msgs_per_sec,
              msg_legacy.wall_seconds);
  std::printf("  pooled    : %10.0f msgs/s  %.3fs\n", msg_pooled.msgs_per_sec,
              msg_pooled.wall_seconds);
  const double msg_speedup =
      msg_legacy.msgs_per_sec > 0
          ? msg_pooled.msgs_per_sec / msg_legacy.msgs_per_sec
          : 0.0;
  std::printf("  speedup: %.2fx   digests %s (%016llx)   steady-state heap "
              "allocs: %llu\n",
              msg_speedup,
              msg_pooled.digest == msg_legacy.digest ? "MATCH" : "MISMATCH",
              (unsigned long long)msg_pooled.digest,
              (unsigned long long)msg_pooled.steady_chunk_allocs);
  emit_msgpath_row(msg_out, "msgpath_pooled", msg_pooled, msg_params);
  emit_msgpath_row(msg_out, "msgpath_legacy", msg_legacy, msg_params);
  msg_out.row("msgpath_compare")
      .field("speedup", msg_speedup)
      .field("digests_match", msg_pooled.digest == msg_legacy.digest)
      .field("zero_steady_state_heap", msg_pooled.steady_chunk_allocs == 0 &&
                                           msg_pooled.steady_spills == 0);

  // --- 5. tracing-overhead rep: obs compiled in, recorder disabled --------
  // The observability guard (null-recorder test per message event) must
  // cost less than 1% of msgs/s relative to the plain pooled replay on
  // this machine. The baseline is re-measured here, alternated with the
  // traced replay in the same loop: the two best-of-N results then see
  // the same machine state, so the ratio gates the guard, not whatever
  // the host's scheduler was doing during section 4. A 1% verdict on a
  // tens-of-ms smoke replay also needs more reps than the speedup rows.
  std::printf("\n-- msgpath: tracing compiled in but disabled\n");
  MsgPathResult msg_base, msg_traced;
  double traced_ratio = 0.0;  // best paired rep: one quiet pair proves it
  const int traced_reps = reps * 3 < 9 ? 9 : reps * 3;
  const std::uint64_t traced_target = msg_target * 4;  // ~1% needs length
  for (int r = 0; r < traced_reps; ++r) {
    const MsgPathResult b = run_msgpath<PooledMsgPath>(traced_target);
    const MsgPathResult t = run_msgpath<TracedMsgPath>(traced_target);
    if (r == 0 || b.msgs_per_sec > msg_base.msgs_per_sec) msg_base = b;
    if (r == 0 || t.msgs_per_sec > msg_traced.msgs_per_sec) msg_traced = t;
    if (b.msgs_per_sec > 0)
      traced_ratio = std::max(traced_ratio, t.msgs_per_sec / b.msgs_per_sec);
    if (t.digest != b.digest) {
      std::fprintf(stderr, "FATAL: traced-off digest mismatch in rep %d\n",
                   r);
      return 1;
    }
  }
  std::printf("  traced-off: %10.0f msgs/s  %.3fs   ratio vs pooled: %.4f\n",
              msg_traced.msgs_per_sec, msg_traced.wall_seconds, traced_ratio);
  emit_msgpath_row(msg_out, "msgpath_traced_off", msg_traced, msg_params);
  msg_out.row("tracing_overhead")
      .field("ratio_vs_pooled", traced_ratio)
      .field("digests_match", msg_traced.digest == msg_base.digest)
      .field("within_1pct", traced_ratio >= 0.99);
  if (traced_ratio < 0.99) {
    std::fprintf(stderr,
                 "FATAL: disabled tracing cost %.2f%% msgs/s (budget 1%%)\n",
                 (1.0 - traced_ratio) * 100.0);
    return 1;
  }
  msg_out.row("process")
      .field("smoke", smoke)
      .field("peak_rss_bytes", peak_rss_bytes())
      .field("small_vec_spills", small_vec_spills());
  msg_out.write();

  // --- environment / memory row -------------------------------------------
  out.row("process")
      .field("smoke", smoke)
      .field("peak_rss_bytes", peak_rss_bytes())
      .field("callback_heap_fallbacks", callback_heap_fallbacks());

  out.write();
  return 0;
}
