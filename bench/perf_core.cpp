// Event-core performance baseline. Replays three representative
// workloads and records events/sec, wall-clock, peak RSS, and a
// determinism checksum in BENCH_core.json:
//
//   1. `micro`  — a raw schedule/cancel/fire microbenchmark run twice:
//                 once on the production `Simulator` and once on
//                 `LegacySimulator`, a frozen copy of the pre-rewrite core
//                 (priority_queue + callbacks map + cancelled set). The
//                 two must produce identical execution-order checksums;
//                 their throughput ratio is the recorded speedup.
//   2. `fig4`   — the Figure-4-style Gnutella churn replay (the workload
//                 every paper table/figure is built from).
//   3. `chaos`  — the combined fault-injection scenario from the chaos
//                 harness (timer-cancel heavy: retries, probes, faults).
//
// The checksums let any later event-core change prove it preserved
// observable behaviour: same executed-event counts, same metrics digest.
//
// Usage: perf_core [--smoke]   (--smoke: CI-sized run, a few seconds)
//        REPRO_FULL=1 perf_core  for paper-scale replay

#include <cstring>
#include <functional>
#include <queue>
#include <random>
#include <unordered_map>
#include <unordered_set>

#include "bench_util.hpp"
#include "common/inplace_callback.hpp"
#include "overlay/chaos.hpp"
#include "sim/simulator.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

// --- Frozen pre-rewrite event core (PR 1 vintage) ---------------------------
//
// Kept verbatim so the microbench always measures new-vs-old on the same
// machine, and so the checksum cross-check does not depend on a recorded
// number from somebody else's hardware. Do not "improve" this class.
class LegacySimulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  TimerId schedule_at(SimTime t, Callback fn) {
    const TimerId id = next_id_++;
    heap_.push(Entry{t < now_ ? now_ : t, id});
    callbacks_.emplace(id, std::move(fn));
    return id;
  }

  TimerId schedule_after(SimDuration d, Callback fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  void cancel(TimerId id) {
    if (id == kInvalidTimer) return;
    const auto it = callbacks_.find(id);
    if (it == callbacks_.end()) return;
    callbacks_.erase(it);
    cancelled_.insert(id);
  }

  bool step() {
    prune();
    if (heap_.empty()) return false;
    const Entry e = heap_.top();
    heap_.pop();
    now_ = e.t;
    auto it = callbacks_.find(e.id);
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    ++executed_;
    fn();
    return true;
  }

  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    SimTime t;
    TimerId id;
    bool operator>(const Entry& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  void prune() {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.top().id);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  SimTime now_ = kTimeZero;
  TimerId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<TimerId, Callback> callbacks_;
  std::unordered_set<TimerId> cancelled_;
};

// --- Raw schedule/cancel/fire microbench ------------------------------------

struct MicroResult {
  double wall_seconds = 0.0;
  std::uint64_t executed = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancels = 0;
  double events_per_sec = 0.0;  ///< executed / wall
  double ops_per_sec = 0.0;     ///< (scheduled + cancels + executed) / wall
  std::uint64_t order_digest = kFnvOffset;  ///< order-sensitive checksum
};

/// The workload models what the overlay actually does to the simulator:
/// a deep steady-state queue (tens of thousands of outstanding timers),
/// short per-hop ack timeouts mixed with long heartbeat periods, and
/// about a third of all timers cancelled before they fire (acks arrive,
/// probes get answered). Identical PRNG decisions on both cores, so the
/// execution order checksum must match exactly.
template <typename Sim>
MicroResult run_micro(std::uint64_t target_executed, std::size_t prefill) {
  Sim sim;
  std::mt19937_64 prng(0x5eedc0de);
  std::vector<TimerId> live;  // candidates for cancellation
  live.reserve(prefill + 1024);
  MicroResult out;

  auto schedule_one = [&] {
    const std::uint64_t r = prng();
    // 1/8 long "heartbeat" timers (~30 s), the rest short "ack" timers
    // spread over ~65 ms — two bands like the real protocol mix.
    const SimDuration d = (r & 7u) == 0
                              ? seconds(30) + static_cast<SimDuration>(r % 1000)
                              : 1 + static_cast<SimDuration>(r & 0xffffu);
    const std::uint64_t tag = r >> 3;
    TimerId id = sim.schedule_after(
        d, [&out, tag] { out.order_digest = hash_u64(out.order_digest, tag); });
    ++out.scheduled;
    if (r & 1u) live.push_back(id);  // half the timers may be cancelled later
  };

  for (std::size_t i = 0; i < prefill; ++i) schedule_one();

  WallTimer timer;
  while (sim.executed_events() < target_executed) {
    for (int i = 0; i < 64; ++i) schedule_one();
    for (int i = 0; i < 24 && !live.empty(); ++i) {
      const std::size_t k = prng() % live.size();
      sim.cancel(live[k]);
      ++out.cancels;
      live[k] = live.back();
      live.pop_back();
    }
    for (int i = 0; i < 40; ++i) {
      if (!sim.step()) break;
    }
  }
  out.wall_seconds = timer.seconds();
  out.executed = sim.executed_events();
  out.events_per_sec =
      out.wall_seconds > 0 ? out.executed / out.wall_seconds : 0.0;
  out.ops_per_sec = out.wall_seconds > 0 ? (out.executed + out.scheduled +
                                            out.cancels) /
                                               out.wall_seconds
                                         : 0.0;
  return out;
}

void emit_micro_row(JsonEmitter& out, const char* name, const MicroResult& r,
                    const std::string& params) {
  out.row(name)
      .field("params", params)
      .field("wall_seconds", r.wall_seconds)
      .field("executed_events", r.executed)
      .field("scheduled", r.scheduled)
      .field("cancels", r.cancels)
      .field("events_per_sec", r.events_per_sec)
      .field("ops_per_sec", r.ops_per_sec)
      .hex("digest", r.order_digest);
}

std::uint64_t chaos_digest(const overlay::ChaosResult& r) {
  std::uint64_t h = kFnvOffset;
  for (const auto v : r.injected) h = hash_u64(h, v);
  h = hash_u64(h, r.fault_issued);
  h = hash_u64(h, r.fault_delivered);
  h = hash_u64(h, r.fault_incorrect);
  h = hash_u64(h, r.heal_issued);
  h = hash_u64(h, r.heal_delivered);
  h = hash_u64(h, r.heal_incorrect);
  h = hash_f64(h, r.reconverge_seconds);
  h = hash_u64(h, r.false_positives);
  for (const char c : r.fault_schedule) {
    h = hash_u64(h, static_cast<unsigned char>(c));
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  print_header("Event-core performance baseline (perf_core)");
  JsonEmitter out("core");

  // --- 1. raw schedule/cancel microbench, new core vs frozen legacy core --
  // Same queue depth in both modes (depth is what shapes the heap and
  // cache behaviour); --smoke only trims how long we sustain it.
  const std::uint64_t micro_events = smoke ? 800'000 : 4'000'000;
  const std::size_t prefill = 50'000;
  const std::string micro_params = "target_executed=" +
                                   std::to_string(micro_events) +
                                   " prefill=" + std::to_string(prefill);

  std::printf("\n-- micro: schedule/cancel/fire (%s)\n", micro_params.c_str());
  // Alternate the two cores and keep each one's best repetition: timing
  // interference (shared CI hosts) is one-sided — it can only slow a
  // run down — so best-of-N alternating is robust where a single pair of
  // back-to-back runs is not. Checksums must agree across every rep.
  const int reps = smoke ? 2 : 3;
  MicroResult legacy, current;
  for (int r = 0; r < reps; ++r) {
    const MicroResult l = run_micro<LegacySimulator>(micro_events, prefill);
    const MicroResult c = run_micro<Simulator>(micro_events, prefill);
    if (r == 0 || l.events_per_sec > legacy.events_per_sec) legacy = l;
    if (r == 0 || c.events_per_sec > current.events_per_sec) current = c;
    if (l.order_digest != c.order_digest) {
      std::fprintf(stderr, "FATAL: micro digest mismatch in rep %d\n", r);
      return 1;
    }
  }
  std::printf("  legacy : %10.0f events/s  %10.0f ops/s  %.3fs\n",
              legacy.events_per_sec, legacy.ops_per_sec, legacy.wall_seconds);
  std::printf("  current: %10.0f events/s  %10.0f ops/s  %.3fs\n",
              current.events_per_sec, current.ops_per_sec,
              current.wall_seconds);
  const double speedup = legacy.events_per_sec > 0
                             ? current.events_per_sec / legacy.events_per_sec
                             : 0.0;
  std::printf("  speedup: %.2fx   digests %s (%016llx)\n", speedup,
              current.order_digest == legacy.order_digest ? "MATCH"
                                                          : "MISMATCH",
              (unsigned long long)current.order_digest);
  emit_micro_row(out, "micro_current", current, micro_params);
  emit_micro_row(out, "micro_legacy", legacy, micro_params);
  out.row("micro_compare")
      .field("speedup", speedup)
      .field("digests_match", current.order_digest == legacy.order_digest);

  // --- 2. fig4-style Gnutella churn replay --------------------------------
  std::printf("\n-- fig4-style churn replay\n");
  const double ts = smoke ? 0.01 : (full_scale() ? 1.0 : 0.05);
  const double ns = smoke ? 0.05 : node_scale();
  const auto trace =
      trace::generate_synthetic(trace::gnutella_params(ns, ts));
  const RunSummary fig4 =
      run_experiment(TopologyKind::kGATech, base_driver_config(200), trace);
  std::printf("  %llu events in %.3fs  (%.0f events/s)  digest %016llx\n",
              (unsigned long long)fig4.executed_events, fig4.wall_seconds,
              fig4.events_per_sec, (unsigned long long)fig4.digest);
  emit_summary_row(out, "fig4_replay",
                   "trace=gnutella node_scale=" + std::to_string(ns) +
                       " time_scale=" + std::to_string(ts) + " seed=200",
                   fig4);

  // --- 3. chaos scenario replay (cancel-heavy) ----------------------------
  std::printf("\n-- chaos combined scenario\n");
  overlay::ChaosConfig ccfg;
  ccfg.seed = 7;
  ccfg.nodes = smoke ? 25 : 40;
  WallTimer chaos_timer;
  overlay::ChaosHarness harness(make_topology(TopologyKind::kGATech), ccfg);
  const overlay::ChaosResult chaos = harness.run("combined");
  const double chaos_wall = chaos_timer.seconds();
  const std::uint64_t cdigest = chaos_digest(chaos);
  std::printf("  %.3fs  ok=%d  digest %016llx\n", chaos_wall, chaos.ok(),
              (unsigned long long)cdigest);
  out.row("chaos_combined")
      .field("params", "scenario=combined seed=7 nodes=" +
                           std::to_string(ccfg.nodes))
      .field("wall_seconds", chaos_wall)
      .field("ok", chaos.ok())
      .hex("digest", cdigest);

  // --- environment / memory row -------------------------------------------
  out.row("process")
      .field("smoke", smoke)
      .field("peak_rss_bytes", peak_rss_bytes())
      .field("callback_heap_fallbacks", callback_heap_fallbacks());

  out.write();
  return 0;
}
