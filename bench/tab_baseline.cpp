// Section 3.1's comparison against best-effort implementations: "a recent
// study [Handling Churn in a DHT] shows that existing implementations have
// a significant number of inconsistent deliveries in scenarios where
// MSPastry should have none while incurring a higher overhead than
// MSPastry."
//
// We regenerate the comparison with a Chord-style baseline (periodic
// stabilization, best-effort consistency, no per-hop acks) against
// MSPastry under identical churn, across session times. The baseline's
// stabilization period also shows the paper's overhead point: to push its
// inconsistency down it must stabilize faster, and its maintenance traffic
// rises accordingly, while MSPastry's failure detection is reactive.

#include "bench_util.hpp"
#include "chord/chord_driver.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

struct Row {
  double incorrect;
  double loss;
  double control;
};

Row run_chord(const trace::ChurnTrace& trace, SimDuration stabilize,
              std::uint64_t seed) {
  chord::ChordDriverConfig cfg;
  cfg.lookup_rate_per_node = 0.01;
  cfg.warmup = full_scale() ? hours(1) : minutes(10);
  cfg.seed = seed;
  cfg.chord.stabilize_period = stabilize;
  cfg.chord.fix_fingers_period = stabilize;
  cfg.chord.check_predecessor_period = stabilize;
  chord::ChordDriver d(make_topology(TopologyKind::kGATech),
                       make_net_config(TopologyKind::kGATech), cfg);
  d.run_trace(trace);
  return Row{d.metrics().incorrect_delivery_rate(), d.metrics().loss_rate(),
             d.metrics().control_traffic_rate()};
}

Row run_mspastry(const trace::ChurnTrace& trace, std::uint64_t seed) {
  auto cfg = base_driver_config(seed);
  overlay::OverlayDriver d(make_topology(TopologyKind::kGATech),
                           make_net_config(TopologyKind::kGATech), cfg);
  d.run_trace(trace);
  return Row{d.metrics().incorrect_delivery_rate(), d.metrics().loss_rate(),
             d.metrics().control_traffic_rate()};
}

}  // namespace

int main() {
  print_header(
      "Section 3.1: best-effort baseline (Chord-style) vs MSPastry");
  JsonEmitter out("tab_baseline");
  const auto emit = [&out](const char* name, const std::string& params,
                           const Row& r) {
    out.row(name)
        .field("params", params)
        .field("incorrect_rate", r.incorrect)
        .field("loss_rate", r.loss)
        .field("control_traffic", r.control);
  };

  const int population = full_scale() ? 1000 : 150;
  const SimDuration duration = full_scale() ? hours(6) : minutes(50);

  std::printf(
      "\nsession_min\toverlay\t\t\tincorrect\tloss\t\tctrl\n");
  for (const double session_min : {15.0, 30.0, 60.0, 120.0}) {
    const auto trace = trace::generate_poisson(
        duration, session_min * 60.0, population,
        1400 + static_cast<std::uint64_t>(session_min));
    const auto ms = run_mspastry(trace, 1500);
    const auto ch = run_chord(trace, seconds(15), 1501);
    const std::string params =
        "session_min=" + std::to_string(session_min);
    emit("mspastry", params, ms);
    emit("chord_15s", params, ch);
    std::printf("%.0f\t\tMSPastry\t\t%.3g\t\t%.3g\t\t%.3f\n", session_min,
                ms.incorrect, ms.loss, ms.control);
    std::printf("%.0f\t\tChord-style (15s)\t%.3g\t\t%.3g\t\t%.3f\n",
                session_min, ch.incorrect, ch.loss, ch.control);
  }

  // Overhead vs consistency for the baseline: faster stabilization buys
  // lower inconsistency at higher cost; MSPastry sits below both axes.
  const auto trace = trace::generate_poisson(duration, 30.0 * 60.0,
                                             population, 1499);
  std::printf("\nstabilize_s\tincorrect\tloss\t\tctrl (30-min sessions)\n");
  for (const double s : {5.0, 15.0, 30.0, 60.0}) {
    const auto r = run_chord(trace, from_seconds(s),
                             1600 + static_cast<std::uint64_t>(s));
    emit("chord_stabilize_sweep", "stabilize_s=" + std::to_string(s), r);
    std::printf("%.0f\t\t%.3g\t\t%.3g\t\t%.3f\n", s, r.incorrect, r.loss,
                r.control);
  }
  const auto ms = run_mspastry(trace, 1601);
  emit("mspastry", "session_min=30 (stabilize sweep reference)", ms);
  std::printf("MSPastry\t%.3g\t\t%.3g\t\t%.3f\n", ms.incorrect, ms.loss,
              ms.control);
  std::printf(
      "\nshape check (paper, Section 3.1): the best-effort baseline shows "
      "inconsistent deliveries and losses where MSPastry has (near) none; "
      "driving the baseline's inconsistency down requires more maintenance "
      "traffic.\n");
  return 0;
}
