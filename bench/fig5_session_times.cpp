// Figure 5: RDP and control traffic for artificial Poisson traces with
// exponential session times of {5, 15, 30, 60, 120, 600} minutes (the
// paper's overlay has 10,000 nodes), plus the join-latency CDFs for the
// 5-minute and 30-minute traces.
//
// Supports `--jobs N`: each session-time point is an independent
// simulation (own driver, network, pool, seed), fanned out across worker
// threads by sweep_runner.hpp; output is byte-identical to the serial
// run (timing fields in the JSON aside, which vary run to run anyway).

#include "bench_util.hpp"
#include "sweep_runner.hpp"

using namespace mspastry;
using namespace mspastry::bench;

int main(int argc, char** argv) {
  print_header("Figure 5: Poisson traces with varying session times");
  JsonEmitter out("fig5");
  const int population =
      full_scale() ? 10000 : 300;
  const SimDuration duration = full_scale() ? hours(10) : minutes(80);

  // Paper values read off Figure 5 (left/center).
  const double session_minutes[] = {5, 15, 30, 60, 120, 600};
  const double paper_rdp[] = {4.2, 2.4, 2.2, 2.0, 1.9, 1.7};
  const double paper_ctrl[] = {2.5, 3.5, 2.0, 1.1, 0.65, 0.16};

  std::printf(
      "\nsession_min\tRDP\tpaper_RDP\tctrl(msgs/s/node)\tpaper_ctrl\t"
      "join_p50_s\tjoin_p95_s\tloss\tincorrect\n");
  run_sweep(
      parse_jobs(argc, argv), std::size(session_minutes), out,
      [&](std::size_t i, TrialSink& sink) {
        const double s_min = session_minutes[i];
        auto dcfg = base_driver_config(300 + static_cast<std::uint64_t>(i));
        dcfg.warmup = std::min<SimDuration>(duration / 4, minutes(20));
        const auto trace = trace::generate_poisson(
            duration, s_min * 60.0, population, 500 + i, "poisson");
        WallTimer timer;
        overlay::OverlayDriver driver(make_topology(TopologyKind::kGATech),
                                      make_net_config(TopologyKind::kGATech),
                                      dcfg);
        driver.run_trace(trace);
        const auto summary = summarize(driver, timer.seconds());
        sink.emit([summary, s_min](JsonEmitter& o) {
          emit_summary_row(o, "session_sweep",
                           "session_min=" + std::to_string(s_min), summary)
              .field("session_min", s_min)
              .field("join_latency_p50", summary.join_latency_p50)
              .field("join_latency_p95", summary.join_latency_p95);
        });
        auto& m = driver.metrics();
        sink.printf("%.0f\t%.2f\t%.2f\t%.3f\t%.3f\t%.1f\t%.1f\t%.2g\t%.2g\n",
                    s_min, m.mean_rdp(), paper_rdp[i],
                    m.control_traffic_rate(), paper_ctrl[i],
                    m.join_latency_samples().quantile(0.5),
                    m.join_latency_samples().quantile(0.95), m.loss_rate(),
                    m.incorrect_delivery_rate());
        // Join-latency CDF for the two session times the paper plots.
        if (s_min == 5 || s_min == 30) {
          sink.printf("# series: join latency CDF, %.0f-minute sessions "
                      "(seconds\tfraction)\n",
                      s_min);
          for (const auto& [x, f] : m.join_latency_samples().cdf_points(20)) {
            sink.printf("%.3g\t%.3g\n", x, f);
          }
        }
      });
  std::printf(
      "\npaper shape: control traffic rises steeply as sessions shorten "
      "(22x from 600 to 15 min); RDP is flat for sessions >= 60 min and "
      "rises sharply at 5 min; joins complete within tens of seconds.\n");
  return 0;
}
