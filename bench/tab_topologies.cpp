// Section 5.3 "Network topology": RDP, control traffic and lookup loss on
// the three topologies (CorpNet, GATech, Mercator) under the Gnutella
// trace. Paper: RDP 1.45 / 1.80 / 2.12, control traffic 0.239 / 0.245 /
// 0.256 msgs/s/node, loss below 1.6e-5 everywhere, no inconsistencies.

#include "bench_util.hpp"

using namespace mspastry;
using namespace mspastry::bench;

int main() {
  print_header("Section 5.3 table: network topologies");
  JsonEmitter out("tab_topologies");

  struct Row {
    TopologyKind kind;
    const char* name;
    double paper_rdp;
    double paper_ctrl;
  };
  const Row rows[] = {
      {TopologyKind::kCorpNet, "CorpNet", 1.45, 0.239},
      {TopologyKind::kGATech, "GATech", 1.80, 0.245},
      {TopologyKind::kMercator, "Mercator", 2.12, 0.256},
  };

  std::printf(
      "\ntopology\tRDP\tRDP_p50\tpaper_RDP\tctrl\tpaper_ctrl\tloss\t"
      "incorrect\n");
  double p50_corp = 0;
  double p50_ga = 0;
  double p50_merc = 0;
  for (const Row& r : rows) {
    auto dcfg = base_driver_config(900);
    const auto s = run_experiment(r.kind, dcfg, bench_gnutella(45));
    emit_summary_row(out, "topology", r.name, s)
        .field("rdp_p50", s.rdp_p50)
        .field("paper_rdp", r.paper_rdp)
        .field("paper_ctrl", r.paper_ctrl);
    std::printf("%s\t%.2f\t%.2f\t%.2f\t%.3f\t%.3f\t%.2g\t%.2g\n", r.name,
                s.rdp, s.rdp_p50, r.paper_rdp, s.control_traffic,
                r.paper_ctrl, s.loss_rate, s.incorrect_rate);
    if (r.kind == TopologyKind::kCorpNet) p50_corp = s.rdp_p50;
    if (r.kind == TopologyKind::kGATech) p50_ga = s.rdp_p50;
    if (r.kind == TopologyKind::kMercator) p50_merc = s.rdp_p50;
  }
  std::printf(
      "\nshape checks: control traffic ~topology-independent; RDP ordering "
      "CorpNet < GATech <= Mercator (medians; reduced-scale means carry a "
      "heavy churn tail amplified by CorpNet's small intra-campus "
      "denominators) -> measured %s\n",
      (p50_corp < p50_ga && p50_ga <= p50_merc * 1.15) ? "HOLDS"
                                                       : "VIOLATED");
  return 0;
}
