// Ablations of design choices this implementation makes (indexed in
// DESIGN.md), beyond the paper's own ablation table:
//   - PNS on/off: what proximity neighbour selection buys in RDP.
//   - exclude-root-on-ack-timeout vs the consistency-over-latency variant
//     (Section 3.2 sketches both; the paper ships the former).
//   - symmetric distance probes on/off: the "almost halves distance-probe
//     messages" claim of Section 4.2.

#include "bench_util.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

struct Result {
  RunSummary s;
  double distance_rate;
};

Result run_with(const overlay::DriverConfig& dcfg, double loss,
                std::uint64_t trace_seed, JsonEmitter& out,
                const char* name, const char* params) {
  WallTimer timer;
  overlay::OverlayDriver driver(make_topology(TopologyKind::kGATech),
                                make_net_config(TopologyKind::kGATech, loss),
                                dcfg);
  driver.run_trace(bench_gnutella(trace_seed));
  Result r;
  r.s = summarize(driver, timer.seconds());
  r.distance_rate = driver.metrics().control_traffic_rate(
      pastry::TrafficClass::kDistanceProbes);
  emit_summary_row(out, name, params, r.s)
      .field("distance_rate", r.distance_rate);
  return r;
}

}  // namespace

int main() {
  print_header("Design ablations (DESIGN.md index)");
  JsonEmitter out("tab_design_ablations");

  // --- PNS ------------------------------------------------------------------
  {
    auto on = base_driver_config(1300);
    auto off = base_driver_config(1300);
    off.pastry.pns = false;
    const auto with_pns = run_with(on, 0.0, 61, out, "pns", "pns=on");
    const auto without = run_with(off, 0.0, 61, out, "pns", "pns=off");
    std::printf("\n-- proximity neighbour selection\n");
    std::printf("pns\tRDP\tRDP_p50\tctrl\n");
    std::printf("on\t%.2f\t%.2f\t%.3f\n", with_pns.s.rdp, with_pns.s.rdp_p50,
                with_pns.s.control_traffic);
    std::printf("off\t%.2f\t%.2f\t%.3f\n", without.s.rdp, without.s.rdp_p50,
                without.s.control_traffic);
    print_compare("mean RDP ratio off/on (expect >> 1)", 1.8,
                  with_pns.s.rdp > 0 ? without.s.rdp / with_pns.s.rdp : 0.0,
                  "(ratio)");
  }

  // --- Last-hop ack-timeout policy at 5% loss ---------------------------------
  {
    auto fast = base_driver_config(1301);  // default: exclude root
    auto safe = base_driver_config(1301);
    safe.pastry.exclude_root_on_ack_timeout = false;
    const auto r_fast = run_with(fast, 0.05, 62, out, "ack_timeout_policy",
                                 "policy=exclude-root loss=0.05");
    const auto r_safe = run_with(safe, 0.05, 62, out, "ack_timeout_policy",
                                 "policy=retransmit loss=0.05");
    std::printf("\n-- last-hop ack timeout policy at 5%% network loss\n");
    std::printf("policy\t\tincorrect\tRDP\tloss\n");
    std::printf("exclude-root\t%.3g\t\t%.2f\t%.3g\n", r_fast.s.incorrect_rate,
                r_fast.s.rdp, r_fast.s.loss_rate);
    std::printf("retransmit\t%.3g\t\t%.2f\t%.3g\n", r_safe.s.incorrect_rate,
                r_safe.s.rdp, r_safe.s.loss_rate);
    std::printf("expected: the retransmit (consistency-over-latency) policy "
                "trades fewer misdeliveries for higher delay.\n");
  }

  // --- Symmetric distance probes ------------------------------------------------
  {
    auto on = base_driver_config(1302);
    auto off = base_driver_config(1302);
    off.pastry.symmetric_probes = false;
    const auto sym = run_with(on, 0.0, 63, out, "symmetric_probes",
                              "symmetric=on");
    const auto nosym = run_with(off, 0.0, 63, out, "symmetric_probes",
                                "symmetric=off");
    std::printf("\n-- symmetric distance probing (Section 4.2)\n");
    std::printf("symmetric\tdistance msgs/s/node\ttotal ctrl\n");
    std::printf("on\t\t%.4f\t\t\t%.3f\n", sym.distance_rate,
                sym.s.control_traffic);
    std::printf("off\t\t%.4f\t\t\t%.3f\n", nosym.distance_rate,
                nosym.s.control_traffic);
    print_compare(
        "distance traffic ratio off/on", 1.0,
        sym.distance_rate > 0 ? nosym.distance_rate / sym.distance_rate : 0.0,
        "(ratio)");
    std::printf(
        "note: the paper counts the peer's independent re-measurement as "
        "saved (~2x); in this implementation the report's main benefit is "
        "table quality (the peer adopts the reporter without probing), so "
        "traffic is near parity while adoption improves.\n");
  }
  return 0;
}
