// Section 5.3 self-tuning: with per-hop acks disabled, tuning the routing-
// table probing to a target raw loss rate Lr should achieve approximately
// that loss rate. Paper: 5.3% measured at a 5% target, 1.2% at a 1%
// target; moving the target from 5% to 1% multiplies control traffic by
// ~2.6.

#include "bench_util.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

RunSummary run_target(double target, std::uint64_t seed) {
  auto dcfg = base_driver_config(seed);
  dcfg.pastry.per_hop_acks = false;  // measure the raw loss rate
  dcfg.pastry.target_raw_loss = target;
  // Shorter sessions so the tuner has failures to chase even at bench
  // scale (the paper uses the Gnutella trace at 2000 nodes).
  const auto trace = trace::generate_poisson(
      full_scale() ? hours(10) : minutes(80), full_scale() ? 8280.0 : 1200.0,
      full_scale() ? 2000 : 250, seed + 1, "poisson");
  return run_experiment(TopologyKind::kGATech, dcfg, trace);
}

}  // namespace

int main() {
  print_header("Section 5.3 table: self-tuned probing targets");
  JsonEmitter out("tab_selftuning");

  const auto t5 = run_target(0.05, 1100);
  const auto t1 = run_target(0.01, 1101);
  emit_summary_row(out, "target_5pct", "target_raw_loss=0.05", t5);
  emit_summary_row(out, "target_1pct", "target_raw_loss=0.01", t1);

  std::printf("\ntarget_Lr\tmeasured_loss\tpaper\tctrl(msgs/s/node)\n");
  std::printf("5%%\t\t%.3g\t\t%.3g\t%.3f\n", t5.loss_rate, 0.053,
              t5.control_traffic);
  std::printf("1%%\t\t%.3g\t\t%.3g\t%.3f\n", t1.loss_rate, 0.012,
              t1.control_traffic);
  print_compare("control traffic ratio 1% target / 5% target (paper 2.6)",
                2.6, t5.control_traffic > 0
                         ? t1.control_traffic / t5.control_traffic
                         : 0.0,
                "(ratio)");
  std::printf(
      "\nshape checks: measured raw loss tracks the target (within a "
      "factor ~2); tightening the target costs probing traffic.\n");
  return 0;
}
