// Figure 8: validation against the Squirrel web-cache deployment. The
// paper fed a 6-day log (52 machines at MSR Cambridge, 11-17 Dec 2003,
// four weekdays + a weekend) through the simulator and compared total
// per-node traffic against the live deployment.
//
// The deployment does not exist here, so per DESIGN.md the substitution
// is: synthesise the 6-day workload (diurnal weekday browsing over 52
// machines with corporate churn), run it through the simulator, and
// compare against an independently perturbed replica run (different seed,
// 10% network jitter — standing in for the deployment's real messaging
// layer). Figure 8's claim becomes: the two executions of the same
// workload produce near-identical traffic curves.

#include <cmath>

#include "apps/app_mux.hpp"
#include "apps/web_cache.hpp"
#include "apps/web_workload.hpp"
#include "bench_util.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

constexpr int kMachines = 52;
constexpr double kDays = 6.0;

std::vector<overlay::Metrics::SeriesPoint> run_once(std::uint64_t seed,
                                                    double jitter,
                                                    JsonEmitter& out,
                                                    const char* row_name) {
  // Corporate churn: most machines stay up, a few reboot.
  trace::SyntheticChurnParams churn;
  churn.duration = days(kDays);
  churn.mean_session_seconds = 37.7 * 3600;
  churn.median_session_seconds = 30.0 * 3600;
  churn.target_population = kMachines;
  churn.seed = seed * 13 + 1;
  churn.name = "squirrel-corp";
  const auto trace = trace::generate_synthetic(churn);

  auto dcfg = base_driver_config(seed);
  dcfg.lookup_rate_per_node = 0.0;  // web requests drive all lookups
  dcfg.metrics_window = hours(1);
  dcfg.warmup = hours(2);
  auto ncfg = make_net_config(TopologyKind::kCorpNet);
  ncfg.jitter_fraction = jitter;

  overlay::OverlayDriver driver(make_topology(TopologyKind::kCorpNet), ncfg,
                                dcfg);
  apps::AppMux mux(driver);
  apps::WebCacheService cache(driver);
  mux.attach(cache);

  // Non-homogeneous Poisson browsing over a Zipf-ish URL universe; day 0
  // is a Thursday so days 2-3 are the weekend, matching the trace's "4
  // week days and one weekend, clearly visible".
  apps::WebWorkload workload(apps::WebWorkloadParams{}, seed * 7 + 3);
  std::function<void()> pump = [&] {
    driver.sim().schedule_after(
        workload.next_gap(driver.sim().now(), kMachines), [&] {
          const auto src = driver.oracle().random_active(workload.rng());
          if (src) cache.request(src->second, workload.pick_url());
          pump();
        });
  };
  WallTimer timer;
  pump();
  driver.run_trace(trace);
  emit_summary_row(out, row_name,
                   "seed=" + std::to_string(seed) +
                       " jitter=" + std::to_string(jitter),
                   summarize(driver, timer.seconds()))
      .field("web_requests", cache.stats().requests)
      .field("web_hit_rate",
             cache.stats().requests
                 ? static_cast<double>(cache.stats().hits) /
                       cache.stats().requests
                 : 0.0)
      .field("web_mean_latency_ms", cache.latencies().mean() * 1000.0);

  std::printf("  run seed=%llu jitter=%.0f%%: requests=%llu hit-rate=%.2f "
              "mean-latency=%.0fms\n",
              (unsigned long long)seed, jitter * 100,
              (unsigned long long)cache.stats().requests,
              cache.stats().requests
                  ? static_cast<double>(cache.stats().hits) /
                        cache.stats().requests
                  : 0.0,
              cache.latencies().mean() * 1000.0);
  return driver.metrics().total_traffic_series(days(kDays));
}

}  // namespace

int main() {
  print_header("Figure 8: Squirrel deployment vs simulator (total traffic)");
  JsonEmitter out("fig8");
  std::printf("\nsimulator run:\n");
  const auto sim_series = run_once(2001, 0.0, out, "simulator");
  std::printf("deployment-like replica (different seed, 10%% jitter):\n");
  const auto dep_series = run_once(4243, 0.10, out, "replica");

  std::printf("\n# series: total traffic per node (hours\tsim\treplica)\n");
  const std::size_t n = std::min(sim_series.size(), dep_series.size());
  double max_rel_gap = 0.0;
  RunningStats sim_stats;
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%.1f\t%.4f\t%.4f\n", sim_series[i].t_seconds / 3600.0,
                sim_series[i].value, dep_series[i].value);
    sim_stats.add(sim_series[i].value);
    const double hi = std::max(sim_series[i].value, dep_series[i].value);
    if (hi > 0.02) {  // ignore dead-of-night windows
      max_rel_gap = std::max(
          max_rel_gap, std::abs(sim_series[i].value - dep_series[i].value) /
                           hi);
    }
  }
  std::printf(
      "\npaper shape: four weekday humps and a quiet weekend, simulator "
      "and deployment curves near-coincident (peaks ~0.2-0.35 "
      "msgs/s/node). measured: mean=%.3f max=%.3f msgs/s/node, "
      "max relative gap between runs=%.0f%%\n",
      sim_stats.mean(), sim_stats.max(), max_rel_gap * 100);
  out.row("compare")
      .field("traffic_mean", sim_stats.mean())
      .field("traffic_max", sim_stats.max())
      .field("max_relative_gap", max_rel_gap);
  return 0;
}
