// Figure 8: validation against the Squirrel web-cache deployment. The
// paper fed a 6-day log (52 machines at MSR Cambridge, 11-17 Dec 2003,
// four weekdays + a weekend) through the simulator and compared total
// per-node traffic against the live deployment.
//
// The deployment does not exist here, so per DESIGN.md the substitution
// is: synthesise the 6-day workload (diurnal weekday browsing over 52
// machines with corporate churn), run it through the simulator, and
// compare against an independently perturbed replica run (different seed,
// 10% network jitter — standing in for the deployment's real messaging
// layer). Figure 8's claim becomes: the two executions of the same
// workload produce near-identical traffic curves.

//
// --sharded-slice additionally (or exclusively, for CI) runs a one-day
// slice of the same workload through the parallel ShardedDriver with the
// shard-count-invariant ShardedWebCacheService, at 1 and 4 shards, and
// gates on digest equality — the app-data leg of the sharded-parity
// contract. Rows land in BENCH_fig8_sharded.json.

#include <cmath>
#include <cstring>

#include "apps/app_mux.hpp"
#include "apps/sharded_web_cache.hpp"
#include "apps/web_cache.hpp"
#include "apps/web_workload.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "overlay/sharded_driver.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

constexpr int kMachines = 52;
constexpr double kDays = 6.0;

std::vector<overlay::Metrics::SeriesPoint> run_once(std::uint64_t seed,
                                                    double jitter,
                                                    JsonEmitter& out,
                                                    const char* row_name) {
  // Corporate churn: most machines stay up, a few reboot.
  trace::SyntheticChurnParams churn;
  churn.duration = days(kDays);
  churn.mean_session_seconds = 37.7 * 3600;
  churn.median_session_seconds = 30.0 * 3600;
  churn.target_population = kMachines;
  churn.seed = seed * 13 + 1;
  churn.name = "squirrel-corp";
  const auto trace = trace::generate_synthetic(churn);

  auto dcfg = base_driver_config(seed);
  dcfg.lookup_rate_per_node = 0.0;  // web requests drive all lookups
  dcfg.metrics_window = hours(1);
  dcfg.warmup = hours(2);
  auto ncfg = make_net_config(TopologyKind::kCorpNet);
  ncfg.jitter_fraction = jitter;

  overlay::OverlayDriver driver(make_topology(TopologyKind::kCorpNet), ncfg,
                                dcfg);
  apps::AppMux mux(driver);
  apps::WebCacheService cache(driver);
  mux.attach(cache);

  // Non-homogeneous Poisson browsing over a Zipf-ish URL universe; day 0
  // is a Thursday so days 2-3 are the weekend, matching the trace's "4
  // week days and one weekend, clearly visible".
  apps::WebWorkload workload(apps::WebWorkloadParams{}, seed * 7 + 3);
  std::function<void()> pump = [&] {
    driver.sim().schedule_after(
        workload.next_gap(driver.sim().now(), kMachines), [&] {
          const auto src = driver.oracle().random_active(workload.rng());
          if (src) cache.request(src->second, workload.pick_url());
          pump();
        });
  };
  WallTimer timer;
  pump();
  driver.run_trace(trace);
  emit_summary_row(out, row_name,
                   "seed=" + std::to_string(seed) +
                       " jitter=" + std::to_string(jitter),
                   summarize(driver, timer.seconds()))
      .field("web_requests", cache.stats().requests)
      .field("web_hit_rate",
             cache.stats().requests
                 ? static_cast<double>(cache.stats().hits) /
                       cache.stats().requests
                 : 0.0)
      .field("web_mean_latency_ms", cache.latencies().mean() * 1000.0);

  std::printf("  run seed=%llu jitter=%.0f%%: requests=%llu hit-rate=%.2f "
              "mean-latency=%.0fms\n",
              (unsigned long long)seed, jitter * 100,
              (unsigned long long)cache.stats().requests,
              cache.stats().requests
                  ? static_cast<double>(cache.stats().hits) /
                        cache.stats().requests
                  : 0.0,
              cache.latencies().mean() * 1000.0);
  return driver.metrics().total_traffic_series(days(kDays));
}

struct SliceResult {
  RunSummary summary;
  apps::ShardedWebCacheService::Stats stats;
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  std::size_t latency_samples = 0;
  std::uint64_t digest = 0;
};

/// One weekday of the Squirrel workload on the parallel engine: the same
/// corporate churn shape, the web-cache app attached through the
/// ShardedDriver's app contract. The digest folds the run summary, the
/// cache counters, and every end-to-end latency sample (in the ledger's
/// S-invariant order) — if any app effect lands differently at a
/// different shard count, this catches it.
SliceResult run_sharded_once(std::uint64_t seed, std::size_t shards) {
  trace::SyntheticChurnParams churn;
  churn.duration = days(1.0);  // one weekday slice of the 6-day log
  churn.mean_session_seconds = 37.7 * 3600;
  churn.median_session_seconds = 30.0 * 3600;
  churn.target_population = kMachines;
  churn.seed = seed * 13 + 1;
  churn.name = "squirrel-corp-slice";
  const auto trace = trace::generate_synthetic(churn);

  auto dcfg = base_driver_config(seed);
  dcfg.lookup_rate_per_node = 0.0;  // the attached app drives all lookups
  dcfg.metrics_window = hours(1);
  dcfg.warmup = hours(2);
  overlay::ShardedDriver driver(make_topology(TopologyKind::kCorpNet),
                                make_net_config(TopologyKind::kCorpNet), dcfg,
                                shards);
  apps::ShardedWebCacheService cache;
  driver.attach_app(&cache);
  WallTimer timer;
  driver.run_trace(trace);

  SliceResult r;
  r.summary = summarize(driver, timer.seconds());
  r.stats = cache.stats();
  SampleSet lat;
  for (const double s : driver.app_latency_samples()) lat.add(s);
  r.latency_samples = driver.app_latency_samples().size();
  r.latency_p50_ms = lat.quantile(0.5) * 1000.0;
  r.latency_p95_ms = lat.quantile(0.95) * 1000.0;

  std::uint64_t h = r.summary.digest;
  h = hash_u64(h, r.stats.requests);
  h = hash_u64(h, r.stats.hits);
  h = hash_u64(h, r.stats.misses);
  h = hash_u64(h, r.stats.responses);
  h = hash_u64(h, static_cast<std::uint64_t>(cache.cached_total()));
  for (const double s : driver.app_latency_samples()) h = hash_f64(h, s);
  r.digest = h;
  return r;
}

/// Returns true when the 1-shard and 4-shard runs digest identically.
bool run_sharded_slice() {
  std::printf("\nsharded slice: one weekday, ShardedDriver + "
              "ShardedWebCacheService at 1 and 4 shards\n");
  JsonEmitter out("fig8_sharded");
  bool ok = true;
  SliceResult first;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const SliceResult r = run_sharded_once(2001, shards);
    std::printf("  shards=%zu: requests=%llu hit-rate=%.2f "
                "latency p50/p95=%.1f/%.1f ms events=%llu digest=%016llx\n",
                shards, (unsigned long long)r.stats.requests,
                r.stats.requests ? static_cast<double>(r.stats.hits) /
                                       static_cast<double>(r.stats.requests)
                                 : 0.0,
                r.latency_p50_ms, r.latency_p95_ms,
                (unsigned long long)r.summary.executed_events,
                (unsigned long long)r.digest);
    emit_summary_row(out, shards == 1 ? "slice-1shard" : "slice-4shard",
                     "seed=2001 shards=" + std::to_string(shards), r.summary)
        .field("web_requests", r.stats.requests)
        .field("web_hits", r.stats.hits)
        .field("web_responses", r.stats.responses)
        .field("latency_p50_ms", r.latency_p50_ms)
        .field("latency_p95_ms", r.latency_p95_ms)
        .field("latency_samples", r.latency_samples)
        .hex("slice_digest", r.digest);
    if (shards == 1) {
      first = r;
    } else if (r.digest != first.digest) {
      std::printf("  GATE: sharded slice digest differs between 1 and %zu "
                  "shards (%016llx vs %016llx)\n",
                  shards, (unsigned long long)first.digest,
                  (unsigned long long)r.digest);
      ok = false;
    }
  }
  if (ok) std::printf("  shard-count invariance: digests identical\n");
  out.row("gate").field("digests_match", ok);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool slice_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sharded-slice") == 0) {
      slice_only = true;
    } else {
      std::fprintf(stderr, "usage: %s [--sharded-slice]\n", argv[0]);
      return 2;
    }
  }
  if (slice_only) {
    print_header("Figure 8 (sharded slice): Squirrel on the parallel engine");
    return run_sharded_slice() ? 0 : 1;
  }

  print_header("Figure 8: Squirrel deployment vs simulator (total traffic)");
  JsonEmitter out("fig8");
  std::printf("\nsimulator run:\n");
  const auto sim_series = run_once(2001, 0.0, out, "simulator");
  std::printf("deployment-like replica (different seed, 10%% jitter):\n");
  const auto dep_series = run_once(4243, 0.10, out, "replica");

  std::printf("\n# series: total traffic per node (hours\tsim\treplica)\n");
  const std::size_t n = std::min(sim_series.size(), dep_series.size());
  double max_rel_gap = 0.0;
  RunningStats sim_stats;
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%.1f\t%.4f\t%.4f\n", sim_series[i].t_seconds / 3600.0,
                sim_series[i].value, dep_series[i].value);
    sim_stats.add(sim_series[i].value);
    const double hi = std::max(sim_series[i].value, dep_series[i].value);
    if (hi > 0.02) {  // ignore dead-of-night windows
      max_rel_gap = std::max(
          max_rel_gap, std::abs(sim_series[i].value - dep_series[i].value) /
                           hi);
    }
  }
  std::printf(
      "\npaper shape: four weekday humps and a quiet weekend, simulator "
      "and deployment curves near-coincident (peaks ~0.2-0.35 "
      "msgs/s/node). measured: mean=%.3f max=%.3f msgs/s/node, "
      "max relative gap between runs=%.0f%%\n",
      sim_stats.mean(), sim_stats.max(), max_rel_gap * 100);
  out.row("compare")
      .field("traffic_mean", sim_stats.mean())
      .field("traffic_max", sim_stats.max())
      .field("max_relative_gap", max_rel_gap);
  return 0;
}
