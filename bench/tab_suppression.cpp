// Section 5.3 suppression: application traffic replaces failure-detection
// traffic. Paper: raising application traffic from 0 to 1 lookup/s/node
// suppresses over 70% of the active probes and improves RDP by ~13%
// (failures are detected sooner by the ack stream).

#include "bench_util.hpp"

using namespace mspastry;
using namespace mspastry::bench;

namespace {

RunSummary run_rate(double lookup_rate, std::uint64_t seed) {
  auto dcfg = base_driver_config(seed);
  dcfg.lookup_rate_per_node = lookup_rate;
  const auto trace = trace::generate_poisson(
      full_scale() ? hours(10) : minutes(60),
      full_scale() ? 8280.0 : 1800.0, full_scale() ? 2000 : 200, seed + 1,
      "poisson");
  return run_experiment(TopologyKind::kGATech, dcfg, trace);
}

double suppressed_fraction(const RunSummary& s) {
  const auto done =
      s.counters.rt_probes_suppressed + s.counters.rt_probes_periodic;
  return done == 0 ? 0.0
                   : static_cast<double>(s.counters.rt_probes_suppressed) /
                         static_cast<double>(done);
}

}  // namespace

int main() {
  print_header("Section 5.3 table: probe suppression by lookup traffic");
  JsonEmitter out("tab_suppression");

  std::printf(
      "\nlookups/s/node\tsuppressed_frac\tperiodic_sent\tsuppressed\tRDP\n");
  RunSummary quiet{};
  RunSummary chatty{};
  // 0.01 lookups/s/node is the base measurement workload ("quiet"); RDP
  // needs some lookups to be measurable at all.
  for (const double rate : {0.01, 0.1, 1.0}) {
    const auto s = run_rate(rate, 1200 + static_cast<std::uint64_t>(
                                             rate * 100));
    emit_summary_row(out, "suppression",
                     "lookup_rate=" + std::to_string(rate), s)
        .field("lookup_rate", rate)
        .field("suppressed_frac", suppressed_fraction(s))
        .field("rt_probes_periodic", s.counters.rt_probes_periodic)
        .field("rt_probes_suppressed", s.counters.rt_probes_suppressed);
    if (rate == 0.01) quiet = s;
    if (rate == 1.0) chatty = s;
    std::printf("%.3g\t\t%.2f\t\t%llu\t\t%llu\t\t%.2f\n", rate,
                suppressed_fraction(s),
                (unsigned long long)s.counters.rt_probes_periodic,
                (unsigned long long)s.counters.rt_probes_suppressed,
                s.rdp);
  }
  print_compare("suppressed fraction at 1 lookup/s (paper > 0.70)", 0.70,
                suppressed_fraction(chatty));
  if (chatty.rdp > 0) {
    print_compare("RDP(0.01 lookups/s) / RDP(1 lookup/s) (paper ~1.13)",
                  1.13, quiet.rdp > 0 ? quiet.rdp / chatty.rdp : 0.0,
                  "(ratio)");
  }
  return 0;
}
