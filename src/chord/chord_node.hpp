#pragma once

// A Chord-style baseline overlay node [Stoica et al., SIGCOMM'01], used as
// the comparator the paper positions MSPastry against: *periodic*
// stabilization with *best-effort* consistency, no probing-before-
// activation, no per-hop acks. Section 3.1 notes that such
// implementations "provide best-effort consistency" and show "a
// significant number of inconsistent deliveries in scenarios where
// MSPastry should have none" (citing the Handling-Churn study) — the
// tab_baseline bench regenerates that comparison.
//
// Implementation notes:
//  - Same 128-bit identifier ring as the Pastry side, but Chord ownership:
//    key k belongs to successor(k), i.e. this node owns (predecessor, self].
//  - Successor list of `successor_list_size` entries for fault tolerance;
//    finger table with one finger per bit, fixed round-robin.
//  - Recursive greedy routing through fingers/successors.
//  - Joins: find successor via the bootstrap, adopt it, let stabilization
//    integrate the node; there is no consistency handshake by design.

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chord/chord_messages.hpp"
#include "common/inplace_callback.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "pastry/message_pool.hpp"
#include "sim/simulator.hpp"

namespace mspastry::chord {

struct ChordConfig {
  /// Stabilization period (successor check + notify) — the knob that
  /// trades maintenance traffic for consistency window length.
  SimDuration stabilize_period = seconds(15);
  /// One finger is refreshed per fix-fingers tick.
  SimDuration fix_fingers_period = seconds(15);
  /// Predecessor liveness check period; cleared after a missed pong.
  SimDuration check_predecessor_period = seconds(15);
  SimDuration rpc_timeout = seconds(3);
  int successor_list_size = 8;
  int max_route_hops = 64;
};

/// Environment for a Chord node (mirrors pastry::Env, kept separate so
/// neither overlay depends on the other).
class ChordEnv {
 public:
  virtual ~ChordEnv() = default;
  virtual SimTime now() const = 0;
  virtual TimerId schedule(SimDuration delay, InplaceCallback fn) = 0;
  virtual void cancel(TimerId id) = 0;
  virtual void send(net::Address to, ChordMessagePtr msg) = 0;
  virtual Rng& rng() = 0;
  /// Slab pool for message allocation (shared with the driver; the pool
  /// type is protocol-agnostic despite living under pastry/).
  virtual pastry::MessagePool& pool() = 0;
  /// A lookup arrived for a key this node believes it owns.
  virtual void on_deliver(const ChordLookupMsg& m) = 0;
  /// The node obtained a successor and considers itself part of the ring.
  virtual void on_joined() {}
};

class ChordNode {
 public:
  ChordNode(const ChordConfig& cfg, NodeDescriptor self, ChordEnv& env);
  ~ChordNode();

  ChordNode(const ChordNode&) = delete;
  ChordNode& operator=(const ChordNode&) = delete;

  /// First node of the ring.
  void bootstrap();

  /// Join via any ring member.
  void join(NodeDescriptor bootstrap);

  void handle(net::Address from, const ChordMessagePtr& msg);

  /// Route a lookup for `key` (delivered at the node owning it).
  void lookup(NodeId key, std::uint64_t lookup_id);

  bool joined() const { return joined_; }
  const NodeDescriptor& descriptor() const { return self_; }
  std::optional<NodeDescriptor> successor() const;
  std::optional<NodeDescriptor> predecessor() const {
    return predecessor_.valid() ? std::optional(predecessor_) : std::nullopt;
  }
  const std::vector<NodeDescriptor>& successor_list() const {
    return successors_;
  }
  std::size_t finger_count() const;

 private:
  /// True if x lies in the clockwise-open interval (a, b].
  static bool in_interval_open_closed(NodeId a, NodeId x, NodeId b);
  /// True if x lies in the clockwise-open interval (a, b).
  static bool in_interval_open_open(NodeId a, NodeId x, NodeId b);

  bool owns(NodeId key) const;
  NodeDescriptor closest_preceding(NodeId key) const;
  void route_find_succ(const FindSuccMsg& m);
  void route_lookup(const IntrusivePtr<const ChordLookupMsg>& m);

  void stabilize_tick();
  void on_stabilize_timeout();
  void fix_fingers_tick();
  void check_predecessor_tick();
  void drop_successor_head();

  void send(net::Address to, const IntrusivePtr<ChordMessage>& m);
  void cancel_timer(TimerId& t);

  ChordConfig cfg_;
  NodeDescriptor self_;
  ChordEnv& env_;

  bool joined_ = false;
  NodeDescriptor predecessor_{};
  std::vector<NodeDescriptor> successors_;  // [0] = immediate successor
  std::vector<NodeDescriptor> fingers_;     // fingers_[i] ~ succ(self+2^i)
  int next_finger_ = 0;

  // Pending find-successor requests we originated (join, finger fixing).
  struct PendingFind {
    int finger_index = -1;  // -1: this is the join request
    TimerId timer = kInvalidTimer;
  };
  std::unordered_map<std::uint64_t, PendingFind> pending_finds_;
  std::uint64_t next_request_id_ = 1;

  bool awaiting_stabilize_reply_ = false;
  TimerId stabilize_reply_timer_ = kInvalidTimer;
  bool awaiting_pong_ = false;
  TimerId pong_timer_ = kInvalidTimer;

  NodeDescriptor join_bootstrap_{};
  TimerId join_retry_timer_ = kInvalidTimer;

  TimerId stabilize_timer_ = kInvalidTimer;
  TimerId fix_fingers_timer_ = kInvalidTimer;
  TimerId check_pred_timer_ = kInvalidTimer;
};

}  // namespace mspastry::chord
