#include "chord/chord_driver.hpp"

#include <cassert>

namespace mspastry::chord {

class ChordDriver::NodeEnv final : public ChordEnv {
 public:
  NodeEnv(ChordDriver& driver, NodeDescriptor self)
      : driver_(driver), self_(self), alive_(std::make_shared<bool>(true)) {}

  void shutdown() { *alive_ = false; }
  const NodeDescriptor& self() const { return self_; }

  SimTime now() const override { return driver_.sim_.now(); }

  TimerId schedule(SimDuration delay, InplaceCallback fn) override {
    struct Guarded {
      std::shared_ptr<bool> alive;
      InplaceCallback fn;
      void operator()() {
        if (*alive) fn();
      }
    };
    static_assert(
        Simulator::Callback::fits_inline<Guarded>(),
        "liveness-guarded node timers must stay allocation-free; grow "
        "Simulator::kCallbackCapacity");
    return driver_.sim_.schedule_after(delay,
                                       Guarded{alive_, std::move(fn)});
  }

  void cancel(TimerId id) override { driver_.sim_.cancel(id); }

  void send(net::Address to, ChordMessagePtr msg) override {
    if (msg->type == ChordMsgType::kLookup) {
      driver_.metrics_.on_message(driver_.sim_.now(),
                                  pastry::MsgType::kLookup);
    } else {
      driver_.metrics_.on_unclassified_control(driver_.sim_.now());
    }
    driver_.net_.send(self_.addr, to, std::move(msg));
  }

  Rng& rng() override { return driver_.rng_; }

  pastry::MessagePool& pool() override { return driver_.pool_; }

  void on_deliver(const ChordLookupMsg& m) override {
    driver_.handle_delivery(self_.addr, m);
  }

  void on_joined() override { driver_.handle_joined(self_.addr); }

 private:
  ChordDriver& driver_;
  NodeDescriptor self_;
  std::shared_ptr<bool> alive_;
};

ChordDriver::ChordDriver(std::shared_ptr<const net::Topology> topology,
                         net::NetworkConfig net_config,
                         ChordDriverConfig config)
    : topology_(std::move(topology)),
      net_(sim_, topology_, net_config, config.seed ^ 0x51ed270b5ull),
      cfg_(config),
      rng_(config.seed),
      metrics_(config.metrics_window, config.warmup) {}

ChordDriver::~ChordDriver() {
  for (auto& [a, ln] : nodes_) ln.env->shutdown();
}

ChordNode* ChordDriver::node(net::Address a) {
  const auto it = nodes_.find(a);
  return it == nodes_.end() ? nullptr : it->second.node.get();
}

std::vector<net::Address> ChordDriver::live_addresses() const {
  std::vector<net::Address> out;
  out.reserve(nodes_.size());
  for (const auto& [a, ln] : nodes_) out.push_back(a);
  return out;
}

net::Address ChordDriver::add_node() {
  const net::Address addr = net_.attach_random(rng_);
  const NodeDescriptor self{rng_.node_id(), addr};
  LiveNode ln;
  ln.env = std::make_unique<NodeEnv>(*this, self);
  ln.node = std::make_unique<ChordNode>(cfg_.chord, self, *ln.env);
  ln.join_started = sim_.now();
  ChordNode* raw = ln.node.get();
  net_.bind(addr, [this, addr](net::Address from,
                               const net::PacketPtr& packet) {
    const auto it = nodes_.find(addr);
    if (it == nodes_.end()) return;
    if (auto msg = dynamic_pointer_cast<const ChordMessage>(packet)) {
      it->second.node->handle(from, msg);
    }
  });
  const auto bootstrap = oracle_.random_member(rng_);
  metrics_.on_join_started(sim_.now());
  metrics_.population_change(sim_.now(), +1);
  nodes_.emplace(addr, std::move(ln));
  if (!bootstrap) {
    raw->bootstrap();
  } else {
    raw->join(NodeDescriptor{bootstrap->first, bootstrap->second});
  }
  return addr;
}

void ChordDriver::kill_node(net::Address a) {
  const auto it = nodes_.find(a);
  if (it == nodes_.end()) return;
  it->second.env->shutdown();
  net_.unbind(a);
  oracle_.node_failed(it->second.env->self().id);
  metrics_.population_change(sim_.now(), -1);
  nodes_.erase(it);
}

void ChordDriver::handle_delivery(net::Address self,
                                  const ChordLookupMsg& m) {
  const auto owner = oracle_.owner_of(m.key);
  const bool correct = owner && *owner == self;
  // RDP is not meaningful without a recorded source; the baseline bench
  // compares dependability, so pass no delay.
  metrics_.on_lookup_delivered(m.lookup_id, sim_.now(), correct, 0);
}

void ChordDriver::handle_joined(net::Address self) {
  const auto it = nodes_.find(self);
  assert(it != nodes_.end());
  oracle_.node_joined(it->second.env->self().id, self);
  metrics_.on_join_completed(sim_.now(),
                             sim_.now() - it->second.join_started);
}

std::uint64_t ChordDriver::issue_lookup(net::Address from, NodeId key) {
  ChordNode* n = node(from);
  assert(n != nullptr);
  const std::uint64_t id = next_lookup_id_++;
  metrics_.on_lookup_issued(id, sim_.now(), from, key);
  n->lookup(key, id);
  return id;
}

void ChordDriver::start_workload() {
  if (workload_running_ || cfg_.lookup_rate_per_node <= 0.0) return;
  workload_running_ = true;
  schedule_next_workload_lookup();
}

void ChordDriver::schedule_next_workload_lookup() {
  const double n = std::max<std::size_t>(1, oracle_.size());
  const double rate = n * cfg_.lookup_rate_per_node;
  const SimDuration gap = from_seconds(rng_.exponential(1.0 / rate));
  sim_.schedule_after(gap, [this] {
    if (!workload_running_) return;
    const auto src = oracle_.random_member(rng_);
    if (src && nodes_.count(src->second) > 0) {
      issue_lookup(src->second, rng_.node_id());
    }
    schedule_next_workload_lookup();
  });
}

void ChordDriver::finish() {
  if (finished_) return;
  finished_ = true;
  workload_running_ = false;
  metrics_.finalize(sim_.now(), cfg_.loss_grace);
}

void ChordDriver::run_trace(const trace::ChurnTrace& trace,
                            SimDuration extra) {
  std::unordered_map<std::int32_t, net::Address> session;
  for (const trace::ChurnEvent& e : trace.events()) {
    sim_.schedule_at(e.time, [this, e, &session] {
      if (e.type == trace::ChurnEventType::kJoin) {
        session[e.node] = add_node();
      } else if (const auto it = session.find(e.node);
                 it != session.end()) {
        kill_node(it->second);
        session.erase(it);
      }
    });
  }
  start_workload();
  sim_.run_until(trace.duration() + extra);
  finish();
}

}  // namespace mspastry::chord
