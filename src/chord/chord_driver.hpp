#pragma once

// Simulation driver for the Chord-style baseline: same network model,
// traces and metrics conventions as the MSPastry driver, so the two
// overlays can be compared side by side (bench/tab_baseline).

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

#include "chord/chord_node.hpp"
#include "net/network.hpp"
#include "overlay/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/churn_trace.hpp"

namespace mspastry::chord {

/// Ground truth for Chord's ownership rule: key k belongs to successor(k),
/// the first live ring member at or after k.
class ChordOracle {
 public:
  void node_joined(NodeId id, net::Address addr) { ring_.emplace(id, addr); }
  void node_failed(NodeId id) { ring_.erase(id); }
  std::size_t size() const { return ring_.size(); }

  std::optional<net::Address> owner_of(NodeId key) const {
    if (ring_.empty()) return std::nullopt;
    auto it = ring_.lower_bound(key);
    if (it == ring_.end()) it = ring_.begin();  // wrap
    return it->second;
  }

  std::optional<std::pair<NodeId, net::Address>> random_member(
      Rng& rng) const {
    if (ring_.empty()) return std::nullopt;
    auto it = ring_.lower_bound(rng.node_id());
    if (it == ring_.end()) it = ring_.begin();
    return std::make_pair(it->first, it->second);
  }

 private:
  std::map<NodeId, net::Address> ring_;
};

struct ChordDriverConfig {
  ChordConfig chord;
  double lookup_rate_per_node = 0.01;
  SimDuration metrics_window = minutes(10);
  SimDuration warmup = minutes(10);
  SimDuration loss_grace = seconds(60);
  std::uint64_t seed = 7;
};

class ChordDriver {
 public:
  ChordDriver(std::shared_ptr<const net::Topology> topology,
              net::NetworkConfig net_config, ChordDriverConfig config);
  ~ChordDriver();

  ChordDriver(const ChordDriver&) = delete;
  ChordDriver& operator=(const ChordDriver&) = delete;

  void run_trace(const trace::ChurnTrace& trace,
                 SimDuration extra = seconds(30));

  net::Address add_node();
  void kill_node(net::Address a);
  std::uint64_t issue_lookup(net::Address from, NodeId key);
  void run_until(SimTime t) { sim_.run_until(t); }
  void run_for(SimDuration d) { sim_.run_until(sim_.now() + d); }
  void start_workload();
  void finish();

  Simulator& sim() { return sim_; }
  net::Network& network() { return net_; }
  ChordOracle& oracle() { return oracle_; }
  overlay::Metrics& metrics() { return metrics_; }
  Rng& rng() { return rng_; }
  ChordNode* node(net::Address a);
  std::vector<net::Address> live_addresses() const;

 private:
  class NodeEnv;

  struct LiveNode {
    std::unique_ptr<NodeEnv> env;
    std::unique_ptr<ChordNode> node;
    SimTime join_started = 0;
  };

  void handle_delivery(net::Address self, const ChordLookupMsg& m);
  void handle_joined(net::Address self);
  void schedule_next_workload_lookup();

  /// Before sim_: destroyed last, after queued callbacks drop their
  /// in-flight message references (see OverlayDriver).
  pastry::MessagePool pool_;
  Simulator sim_;
  std::shared_ptr<const net::Topology> topology_;
  net::Network net_;
  ChordDriverConfig cfg_;
  Rng rng_;
  ChordOracle oracle_;
  overlay::Metrics metrics_;
  std::unordered_map<net::Address, LiveNode> nodes_;
  std::uint64_t next_lookup_id_ = 1;
  bool workload_running_ = false;
  bool finished_ = false;
};

}  // namespace mspastry::chord
