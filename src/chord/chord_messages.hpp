#pragma once

// Wire messages of the Chord-style baseline overlay (see chord_node.hpp).

#include <cstdint>
#include <vector>

#include "common/node_id.hpp"
#include "net/network.hpp"
#include "pastry/types.hpp"

namespace mspastry::chord {

using pastry::NodeDescriptor;

enum class ChordMsgType : std::uint8_t {
  kFindSucc,        // recursive successor search (join, finger fixing)
  kFindSuccReply,
  kGetNeighbours,   // stabilize: ask successor for pred + successor list
  kNeighboursReply,
  kNotify,          // "I might be your predecessor"
  kPing,
  kPong,
  kLookup,
};

struct ChordMessage : net::Packet {
  explicit ChordMessage(ChordMsgType t) : type(t) {}
  ChordMsgType type;
  NodeDescriptor sender;
};

/// Chord messages are pooled and intrusively refcounted, like Pastry's
/// (pastry/message_pool.hpp is protocol-agnostic).
using ChordMessagePtr = IntrusivePtr<const ChordMessage>;

struct FindSuccMsg final : ChordMessage {
  FindSuccMsg() : ChordMessage(ChordMsgType::kFindSucc) {}
  NodeId target;
  NodeDescriptor reply_to;
  std::uint64_t request_id = 0;
  int hops = 0;
};

struct FindSuccReplyMsg final : ChordMessage {
  FindSuccReplyMsg() : ChordMessage(ChordMsgType::kFindSuccReply) {}
  std::uint64_t request_id = 0;
  NodeDescriptor successor;
};

struct GetNeighboursMsg final : ChordMessage {
  GetNeighboursMsg() : ChordMessage(ChordMsgType::kGetNeighbours) {}
};

struct NeighboursReplyMsg final : ChordMessage {
  NeighboursReplyMsg() : ChordMessage(ChordMsgType::kNeighboursReply) {}
  NodeDescriptor predecessor;                 // invalid() if unknown
  /// Sender's successor list; inline capacity covers the default
  /// successor_list_size = 8.
  SmallVec<NodeDescriptor, 8> successors;
};

struct NotifyMsg final : ChordMessage {
  NotifyMsg() : ChordMessage(ChordMsgType::kNotify) {}
};

struct PingMsg final : ChordMessage {
  PingMsg() : ChordMessage(ChordMsgType::kPing) {}
};

struct PongMsg final : ChordMessage {
  PongMsg() : ChordMessage(ChordMsgType::kPong) {}
};

struct ChordLookupMsg final : ChordMessage {
  ChordLookupMsg() : ChordMessage(ChordMsgType::kLookup) {}
  NodeId key;
  std::uint64_t lookup_id = 0;
  int hops = 0;
};

}  // namespace mspastry::chord
