#include "chord/chord_node.hpp"

#include <algorithm>
#include <cassert>

namespace mspastry::chord {

ChordNode::ChordNode(const ChordConfig& cfg, NodeDescriptor self,
                     ChordEnv& env)
    : cfg_(cfg), self_(self), env_(env) {
  fingers_.assign(128, NodeDescriptor{});
}

ChordNode::~ChordNode() {
  cancel_timer(stabilize_timer_);
  cancel_timer(fix_fingers_timer_);
  cancel_timer(check_pred_timer_);
  cancel_timer(stabilize_reply_timer_);
  cancel_timer(pong_timer_);
  cancel_timer(join_retry_timer_);
  for (auto& [id, p] : pending_finds_) cancel_timer(p.timer);
}

void ChordNode::cancel_timer(TimerId& t) {
  if (t != kInvalidTimer) {
    env_.cancel(t);
    t = kInvalidTimer;
  }
}

void ChordNode::send(net::Address to, const IntrusivePtr<ChordMessage>& m) {
  m->sender = self_;
  env_.send(to, m);
}

// --- Interval arithmetic on the ring -----------------------------------------

bool ChordNode::in_interval_open_closed(NodeId a, NodeId x, NodeId b) {
  if (a == b) return true;  // whole ring
  const U128 ax = a.clockwise_distance_to(x);
  const U128 ab = a.clockwise_distance_to(b);
  return U128{} < ax && ax <= ab;
}

bool ChordNode::in_interval_open_open(NodeId a, NodeId x, NodeId b) {
  if (a == b) return x != a;  // whole ring minus the endpoint
  const U128 ax = a.clockwise_distance_to(x);
  const U128 ab = a.clockwise_distance_to(b);
  return U128{} < ax && ax < ab;
}

bool ChordNode::owns(NodeId key) const {
  if (!predecessor_.valid()) return true;  // alone (or pre-stabilization)
  return in_interval_open_closed(predecessor_.id, key, self_.id);
}

std::optional<NodeDescriptor> ChordNode::successor() const {
  if (successors_.empty()) return std::nullopt;
  return successors_.front();
}

std::size_t ChordNode::finger_count() const {
  std::size_t n = 0;
  for (const auto& f : fingers_) n += f.valid() ? 1 : 0;
  return n;
}

NodeDescriptor ChordNode::closest_preceding(NodeId key) const {
  // Highest finger (or successor-list entry) strictly between self and key.
  NodeDescriptor best{};
  auto consider = [&](const NodeDescriptor& d) {
    if (!d.valid() || d.addr == self_.addr) return;
    if (!in_interval_open_open(self_.id, d.id, key)) return;
    if (!best.valid() ||
        in_interval_open_open(best.id, d.id, key)) {
      best = d;
    }
  };
  for (const auto& f : fingers_) consider(f);
  for (const auto& s : successors_) consider(s);
  return best;
}

// --- Lifecycle -----------------------------------------------------------------

void ChordNode::bootstrap() {
  assert(!joined_);
  joined_ = true;
  // Alone on the ring: self-successor, no predecessor.
  successors_.assign(1, self_);
  env_.on_joined();
  stabilize_timer_ = env_.schedule(
      from_seconds(env_.rng().uniform(0.5, 1.0) *
                   to_seconds(cfg_.stabilize_period)),
      [this] { stabilize_tick(); });
  fix_fingers_timer_ = env_.schedule(cfg_.fix_fingers_period,
                                     [this] { fix_fingers_tick(); });
  check_pred_timer_ = env_.schedule(cfg_.check_predecessor_period,
                                    [this] { check_predecessor_tick(); });
}

void ChordNode::join(NodeDescriptor bootstrap) {
  assert(!joined_);
  join_bootstrap_ = bootstrap;
  const std::uint64_t id = next_request_id_++;
  PendingFind p;
  p.finger_index = -1;
  p.timer = env_.schedule(4 * cfg_.rpc_timeout, [this, id] {
    // Lost somewhere (dead hop, loss): retry through the bootstrap.
    pending_finds_.erase(id);
    if (!joined_) join(join_bootstrap_);
  });
  pending_finds_.emplace(id, p);
  auto m = make_msg<FindSuccMsg>(env_.pool());
  m->target = self_.id;
  m->reply_to = self_;
  m->request_id = id;
  send(bootstrap.addr, std::move(m));
}

// --- Routing ---------------------------------------------------------------------

void ChordNode::route_find_succ(const FindSuccMsg& m) {
  const auto succ = successor();
  if (!succ) return;  // not in a ring yet; drop (requester retries)
  if (m.hops >= cfg_.max_route_hops) return;
  if (in_interval_open_closed(self_.id, m.target, succ->id)) {
    auto reply = make_msg<FindSuccReplyMsg>(env_.pool());
    reply->request_id = m.request_id;
    reply->successor = *succ;
    send(m.reply_to.addr, std::move(reply));
    return;
  }
  NodeDescriptor next = closest_preceding(m.target);
  if (!next.valid()) next = *succ;
  auto fwd = make_msg<FindSuccMsg>(env_.pool(), m);
  fwd->hops = m.hops + 1;
  send(next.addr, std::move(fwd));
}

void ChordNode::route_lookup(const IntrusivePtr<const ChordLookupMsg>& m) {
  if (!joined_) return;  // best-effort: dropped
  if (owns(m->key)) {
    env_.on_deliver(*m);
    return;
  }
  if (m->hops >= cfg_.max_route_hops) return;
  const auto succ = successor();
  NodeDescriptor next = closest_preceding(m->key);
  if (!next.valid()) {
    if (!succ || succ->addr == self_.addr) {
      // Believe we are alone: deliver (may well be inconsistent — this is
      // exactly the best-effort behaviour the baseline exists to show).
      env_.on_deliver(*m);
      return;
    }
    next = *succ;
  }
  auto fwd = make_msg<ChordLookupMsg>(env_.pool(), *m);
  fwd->hops = m->hops + 1;
  send(next.addr, std::move(fwd));
}

void ChordNode::lookup(NodeId key, std::uint64_t lookup_id) {
  auto m = make_msg<ChordLookupMsg>(env_.pool());
  m->key = key;
  m->lookup_id = lookup_id;
  m->sender = self_;
  route_lookup(m);
}

// --- Periodic maintenance ----------------------------------------------------------

void ChordNode::stabilize_tick() {
  stabilize_timer_ =
      env_.schedule(cfg_.stabilize_period, [this] { stabilize_tick(); });
  const auto succ = successor();
  if (!succ || succ->addr == self_.addr) return;
  awaiting_stabilize_reply_ = true;
  cancel_timer(stabilize_reply_timer_);
  stabilize_reply_timer_ = env_.schedule(
      cfg_.rpc_timeout, [this] { on_stabilize_timeout(); });
  send(succ->addr, make_msg<GetNeighboursMsg>(env_.pool()));
}

void ChordNode::on_stabilize_timeout() {
  stabilize_reply_timer_ = kInvalidTimer;
  if (!awaiting_stabilize_reply_) return;
  awaiting_stabilize_reply_ = false;
  // Successor did not answer: assume dead, fail over to the list.
  drop_successor_head();
}

void ChordNode::drop_successor_head() {
  if (successors_.empty()) return;
  const net::Address dead = successors_.front().addr;
  successors_.erase(successors_.begin());
  for (auto& f : fingers_) {
    if (f.valid() && f.addr == dead) f = NodeDescriptor{};
  }
  if (successors_.empty()) {
    // Ring lost: point at ourselves and wait for fingers/notify traffic
    // to reconnect us (best-effort, as in unaugmented implementations).
    successors_.assign(1, self_);
  }
}

void ChordNode::fix_fingers_tick() {
  fix_fingers_timer_ = env_.schedule(cfg_.fix_fingers_period,
                                     [this] { fix_fingers_tick(); });
  if (!joined_) return;
  const auto succ = successor();
  if (!succ || succ->addr == self_.addr) return;
  next_finger_ = (next_finger_ + 1) % 128;
  const NodeId target{self_.id.value() +
                      (U128{0, 1} << next_finger_)};
  const std::uint64_t id = next_request_id_++;
  PendingFind p;
  p.finger_index = next_finger_;
  p.timer = env_.schedule(4 * cfg_.rpc_timeout,
                          [this, id] { pending_finds_.erase(id); });
  pending_finds_.emplace(id, p);
  auto m = make_msg<FindSuccMsg>(env_.pool());
  m->target = target;
  m->reply_to = self_;
  m->request_id = id;
  route_find_succ(*m);
}

void ChordNode::check_predecessor_tick() {
  check_pred_timer_ = env_.schedule(cfg_.check_predecessor_period,
                                    [this] { check_predecessor_tick(); });
  if (!predecessor_.valid()) return;
  if (awaiting_pong_) {
    // Previous ping unanswered: drop the predecessor.
    predecessor_ = NodeDescriptor{};
    awaiting_pong_ = false;
    return;
  }
  awaiting_pong_ = true;
  cancel_timer(pong_timer_);
  pong_timer_ = env_.schedule(cfg_.rpc_timeout, [this] {
    if (awaiting_pong_) {
      predecessor_ = NodeDescriptor{};
      awaiting_pong_ = false;
    }
  });
  send(predecessor_.addr, make_msg<PingMsg>(env_.pool()));
}

// --- Ingress -------------------------------------------------------------------------

void ChordNode::handle(net::Address from, const ChordMessagePtr& msg) {
  switch (msg->type) {
    case ChordMsgType::kFindSucc:
      route_find_succ(static_cast<const FindSuccMsg&>(*msg));
      return;
    case ChordMsgType::kFindSuccReply: {
      const auto& m = static_cast<const FindSuccReplyMsg&>(*msg);
      const auto it = pending_finds_.find(m.request_id);
      if (it == pending_finds_.end()) return;
      PendingFind p = it->second;
      cancel_timer(p.timer);
      pending_finds_.erase(it);
      if (!m.successor.valid()) return;
      if (p.finger_index < 0) {
        // Join result: adopt the successor, become part of the ring.
        if (joined_) return;
        joined_ = true;
        cancel_timer(join_retry_timer_);
        successors_.assign(1, m.successor);
        env_.on_joined();
        stabilize_timer_ = env_.schedule(
            from_seconds(env_.rng().uniform(0.1, 1.0) *
                         to_seconds(cfg_.stabilize_period)),
            [this] { stabilize_tick(); });
        fix_fingers_timer_ = env_.schedule(
            cfg_.fix_fingers_period, [this] { fix_fingers_tick(); });
        check_pred_timer_ = env_.schedule(
            cfg_.check_predecessor_period,
            [this] { check_predecessor_tick(); });
        // Announce ourselves to the successor right away.
        send(m.successor.addr, make_msg<NotifyMsg>(env_.pool()));
      } else if (m.successor.addr != self_.addr) {
        fingers_[static_cast<std::size_t>(p.finger_index)] = m.successor;
      }
      return;
    }
    case ChordMsgType::kGetNeighbours: {
      auto reply = make_msg<NeighboursReplyMsg>(env_.pool());
      reply->predecessor = predecessor_;
      reply->successors = successors_;
      send(from, std::move(reply));
      return;
    }
    case ChordMsgType::kNeighboursReply: {
      const auto& m = static_cast<const NeighboursReplyMsg&>(*msg);
      awaiting_stabilize_reply_ = false;
      cancel_timer(stabilize_reply_timer_);
      const auto succ = successor();
      if (!succ) return;
      // Classic stabilize: if succ's predecessor sits between us and succ,
      // it becomes our new successor.
      if (m.predecessor.valid() && m.predecessor.addr != self_.addr &&
          in_interval_open_open(self_.id, m.predecessor.id, succ->id)) {
        successors_.insert(successors_.begin(), m.predecessor);
      } else {
        // Refresh the successor list from the successor's list.
        std::vector<NodeDescriptor> list;
        list.push_back(*succ);
        for (const auto& s : m.successors) {
          if (s.addr == self_.addr) continue;
          if (static_cast<int>(list.size()) >= cfg_.successor_list_size) {
            break;
          }
          if (std::none_of(list.begin(), list.end(),
                           [&](const NodeDescriptor& d) {
                             return d.addr == s.addr;
                           })) {
            list.push_back(s);
          }
        }
        successors_ = std::move(list);
      }
      if (static_cast<int>(successors_.size()) > cfg_.successor_list_size) {
        successors_.resize(
            static_cast<std::size_t>(cfg_.successor_list_size));
      }
      if (const auto s2 = successor(); s2 && s2->addr != self_.addr) {
        send(s2->addr, make_msg<NotifyMsg>(env_.pool()));
      }
      return;
    }
    case ChordMsgType::kNotify: {
      const NodeDescriptor& cand = msg->sender;
      if (!predecessor_.valid() ||
          in_interval_open_open(predecessor_.id, cand.id, self_.id)) {
        predecessor_ = cand;
        awaiting_pong_ = false;
      }
      // A lone bootstrap node also adopts the notifier as successor.
      if (const auto s = successor(); s && s->addr == self_.addr) {
        successors_.assign(1, cand);
      }
      return;
    }
    case ChordMsgType::kPing:
      send(from, make_msg<PongMsg>(env_.pool()));
      return;
    case ChordMsgType::kPong:
      awaiting_pong_ = false;
      cancel_timer(pong_timer_);
      return;
    case ChordMsgType::kLookup:
      route_lookup(static_pointer_cast<const ChordLookupMsg>(msg));
      return;
  }
}

}  // namespace mspastry::chord
