#include <algorithm>
#include <cassert>

#include "pastry/node.hpp"

namespace mspastry::pastry {

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void PastryNode::bootstrap() {
  assert(!active_ && !joining_);
  join_started_ = env_.now();
  ++counters_.joins_started;
  activate();
}

// ---------------------------------------------------------------------------
// Leaf-set probing (Figure 2)
// ---------------------------------------------------------------------------

void PastryNode::probe(const NodeDescriptor& j, bool announce_on_timeout) {
  if (!j.valid() || j.id == self_.id) return;
  if (in_failed(j.addr)) return;
  if (const auto it = ls_probing_.find(j.addr); it != ls_probing_.end()) {
    // Already probing; at most upgrade the announce flag.
    it->second.announce_on_timeout |= announce_on_timeout;
    return;
  }
  auto m = make_msg<LsProbeMsg>(env_.pool(), /*reply=*/false);
  m->leaf = leaf_.members();
  m->failed.reserve(failed_.size());
  for (const auto& [a, d] : failed_) m->failed.push_back(d.node);
  ++counters_.ls_probes_sent;
  trace_node(joining_ && !active_ ? obs::EventKind::kJoinProbe
                                  : obs::EventKind::kLsProbeSent,
             j.addr);
  send(j.addr, m);
  LsProbeState st;
  st.target = j;
  st.retries = 0;
  st.announce_on_timeout = announce_on_timeout;
  st.sent_at = env_.now();
  st.timer = env_.schedule(cfg_.t_o,
                           [this, a = j.addr] { on_ls_probe_timeout(a); });
  ls_probing_.emplace(j.addr, std::move(st));
}

void PastryNode::on_ls_probe_timeout(net::Address j) {
  const auto it = ls_probing_.find(j);
  if (it == ls_probing_.end()) return;
  LsProbeState& st = it->second;
  st.timer = kInvalidTimer;
  if (st.retries < cfg_.max_probe_retries) {
    st.retries += 1;
    auto m = make_msg<LsProbeMsg>(env_.pool(), /*reply=*/false);
    m->leaf = leaf_.members();
    m->failed.reserve(failed_.size());
    for (const auto& [a, d] : failed_) m->failed.push_back(d.node);
    ++counters_.ls_probes_sent;
    trace_node(joining_ && !active_ ? obs::EventKind::kJoinProbe
                                    : obs::EventKind::kLsProbeSent,
               j);
    send(j, m);
    st.timer =
        env_.schedule(cfg_.t_o, [this, j] { on_ls_probe_timeout(j); });
    // The probe just stopped being first-attempt: it no longer blocks
    // activation, so re-evaluate.
    done_probing(j);
    return;
  }
  const NodeDescriptor target = st.target;
  const bool announce = st.announce_on_timeout;
  ls_probing_.erase(it);
  mark_faulty(target, announce);
  done_probing(target.addr);
}

void PastryNode::notify_right_changed() {
  const auto r = leaf_.right_neighbour();
  std::optional<net::Address> now_right;
  if (r) now_right = r->addr;
  if (now_right == last_right_) return;
  last_right_ = now_right;
  env_.on_right_neighbour(r);
}

void PastryNode::mark_faulty(const NodeDescriptor& j, bool announce) {
  const bool was_leaf = leaf_.contains(j.addr);
  leaf_.remove(j.addr);
  notify_right_changed();
  rt_.remove(j.addr);
  excluded_.erase(j.addr);
  trt_hints_.erase(j.addr);
  last_probe_due_.erase(j.addr);
  suppress_heard_.erase(j.addr);
  measured_at_.erase(j.addr);
  last_heard_.erase(j.addr);
  last_sent_.erase(j.addr);
  rtt_.erase(j.addr);
  trace_node(obs::EventKind::kCondemn, j.addr);
  failed_.emplace(j.addr, FailedEntry{j, env_.now()});
  fail_est_.record_failure(env_.now());
  ++counters_.nodes_marked_faulty;
  env_.on_marked_faulty(j.addr);
  if (announce && was_leaf) {
    // Tell the rest of the leaf set that j failed (Section 4.1): the
    // failed set piggybacked on these probes carries the news, and the
    // replies bring candidate replacements.
    for (const NodeDescriptor& n : leaf_.members()) {
      ++counters_.ls_probes_announce;
      probe(n);
    }
  }
}

void PastryNode::handle_ls_probe(const LsProbeMsg& m, bool is_reply) {
  const NodeDescriptor j = m.sender;
  if (!j.valid() || j.id == self_.id) return;
  // heard_from() already removed j from failed_. Insert j directly: we
  // heard from it — unless its announced id is implausibly dense
  // (eclipse clusters pack sybil ids around a victim; the density check
  // keeps them out of the leaf set while still learning the node for
  // routing-table purposes, where one entry per prefix slot bounds the
  // damage).
  if (plausible_leaf_candidate(j)) {
    leaf_.add(j);
  } else {
    ++counters_.leaf_candidates_rejected;
  }
  rt_.add(j);

  // Nodes the sender believes failed: probe the ones in our leaf set to
  // confirm (recovering from false positives), then drop them from the
  // leaf set.
  for (const NodeDescriptor& f : m.failed) {
    if (f.addr == self_.addr || f.id == self_.id) continue;
    if (leaf_.contains(f.addr)) {
      ++counters_.ls_probes_confirm;
      probe(f);
      if (cfg_.leaf_plausibility_checks) {
        // Skeptical mode: hearsay triggers the confirming probe but the
        // member stays until that probe itself times out (mark_faulty
        // removes it then). An adversary claiming healthy neighbors dead
        // costs probe traffic, not membership.
        ++counters_.failure_claims_distrusted;
      } else {
        leaf_.remove(f.addr);
      }
    }
  }
  notify_right_changed();  // covers both the add and the removals above

  // Candidates from the sender's leaf set: probe before inclusion. Probe
  // only as many as the leaf set is short of (plus slack), closest first:
  // an undersized leaf set admits anything, and probing every name in
  // every received probe would echo each membership change into O(l^2)
  // probe waves.
  std::vector<NodeDescriptor> candidates;
  for (const NodeDescriptor& d : m.leaf) {
    if (d.id == self_.id || in_failed(d.addr)) continue;
    if (leaf_.contains(d.addr)) continue;
    if (!plausible_leaf_candidate(d)) {
      ++counters_.leaf_candidates_rejected;
      continue;
    }
    if (leaf_would_admit(d)) candidates.push_back(d);
  }
  const int deficit = cfg_.l - leaf_.size();
  const std::size_t budget =
      deficit > 0 ? static_cast<std::size_t>(deficit) : 2;
  if (candidates.size() > budget) {
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<std::ptrdiff_t>(budget),
                      candidates.end(),
                      [this](const NodeDescriptor& a, const NodeDescriptor& b) {
                        return self_.id.ring_distance_to(a.id) <
                               self_.id.ring_distance_to(b.id);
                      });
    candidates.resize(budget);
  }
  for (const NodeDescriptor& d : candidates) {
    ++counters_.ls_probes_candidate;
    if (active_) ++counters_.ls_probes_candidate_active;
    probe(d);
  }

  if (!is_reply) {
    auto reply = make_msg<LsProbeMsg>(env_.pool(), /*reply=*/true);
    reply->leaf = leaf_.members();
    // Generalized repair aid (Section 3.1): when the requester's leaf set
    // is empty (mass failure), also offer close nodes drawn from the
    // routing table. Not done for ordinary probes: routing-table entries
    // are repaired lazily and may be stale, and probing stale candidates
    // delays the requester's activation by a full probe timeout.
    if (m.leaf.empty()) {
      for (const NodeDescriptor& d : close_nodes_for(j.id)) {
        if (std::none_of(reply->leaf.begin(), reply->leaf.end(),
                         [&](const NodeDescriptor& x) {
                           return x.addr == d.addr;
                         })) {
          reply->leaf.push_back(d);
        }
      }
    }
    reply->failed.reserve(failed_.size());
    for (const auto& [a, d] : failed_) reply->failed.push_back(d.node);
    if (adversary_ != nullptr &&
        adversary_->corrupt_ls_reply(reply->leaf, reply->failed)) {
      ++counters_.ls_replies_corrupted;
    }
    send(j.addr, reply);
  } else {
    const auto it = ls_probing_.find(j.addr);
    if (it != ls_probing_.end()) {
      if (it->second.retries == 0) {
        rtt_[j.addr].sample(env_.now() - it->second.sent_at);
      }
      cancel_timer(it->second.timer);
      ls_probing_.erase(it);
    }
    done_probing(j.addr);
    return;
  }
  // An incoming probe may have completed this (still joining) node's leaf
  // set; every member in it either probed us or replied to our probe, so
  // the mutual-awareness precondition for activation holds.
  if (!active_ && joining_ && ls_probing_.empty()) try_complete();
}

bool PastryNode::has_blocking_ls_probes() const {
  for (const auto& [a, st] : ls_probing_) {
    (void)a;
    if (st.retries == 0) return true;
  }
  return false;
}

void PastryNode::done_probing(net::Address /*j*/) {
  if (has_blocking_ls_probes()) return;
  try_complete();
}

bool PastryNode::leaf_complete() const {
  if (leaf_.full()) return true;
  return small_ring_converged_ && !leaf_.empty();
}

void PastryNode::try_complete() {
  if (leaf_complete()) {
    if (!active_) activate();
    return;
  }
  repair_leaf_set();
}

std::uint64_t PastryNode::leaf_membership_hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (const NodeDescriptor& m : leaf_.members()) {
    h = (h ^ static_cast<std::uint64_t>(m.addr)) * 1099511628211ull;
  }
  return h;
}

void PastryNode::repair_leaf_set() {
  const std::uint64_t hash = leaf_membership_hash();
  if (hash == last_membership_hash_) {
    ++repair_stalls_;
  } else {
    last_membership_hash_ = hash;
    repair_stalls_ = 0;
    small_ring_converged_ = false;
  }
  if (repair_stalls_ >= 2 && !leaf_.empty()) {
    // Probing the extremes twice added nothing: the ring is smaller than
    // the leaf set; treat it as complete.
    small_ring_converged_ = true;
    if (!active_) activate();
    return;
  }

  bool sent = false;
  if (leaf_.empty()) {
    // Mass failure: seed repair from the routing table. Probe the nodes
    // closest to us on each side; their replies carry close nodes and the
    // repair converges in O(log N) iterations (Section 3.1).
    NodeDescriptor best_cw{};
    NodeDescriptor best_ccw{};
    U128 cw_d = kU128Max;
    U128 ccw_d = kU128Max;
    rt_.for_each([&](int, int, const RoutingTable::Entry& e) {
      if (in_failed(e.node.addr)) return;
      const U128 cw = self_.id.clockwise_distance_to(e.node.id);
      const U128 ccw = e.node.id.clockwise_distance_to(self_.id);
      if (cw < cw_d) {
        cw_d = cw;
        best_cw = e.node;
      }
      if (ccw < ccw_d) {
        ccw_d = ccw;
        best_ccw = e.node;
      }
    });
    if (best_cw.valid()) {
      ++counters_.ls_probes_repair;
      probe(best_cw);
      sent = true;
    }
    if (best_ccw.valid() && best_ccw.addr != best_cw.addr) {
      ++counters_.ls_probes_repair;
      probe(best_ccw);
      sent = true;
    }
  } else if (leaf_.size() < cfg_.l) {
    // Figure 2's done-probing repair: the leaf set is short of members;
    // the extremes know nodes farther out on their side, so probing them
    // extends coverage (their replies carry their own leaf sets).
    const auto lm = leaf_.leftmost();
    const auto rm = leaf_.rightmost();
    ++counters_.ls_probes_repair;
    probe(*lm);
    sent = true;
    if (rm->addr != lm->addr) {
      ++counters_.ls_probes_repair;
      probe(*rm);
    }
  }
  if (!sent && ls_probing_.empty()) {
    // Nothing to probe right now (targets already probing or failed);
    // retry after a timeout instead of spinning. The retry re-evaluates
    // completeness unconditionally: the leaf set may have been completed
    // in the meantime by incoming probes from other nodes.
    env_.schedule(cfg_.t_o, [this] {
      if (ls_probing_.empty()) try_complete();
    });
    ++repair_stalls_;
  }
}

void PastryNode::activate() {
  assert(!active_);
  active_ = true;
  joining_ = false;
  trace_node(obs::EventKind::kActivated, net::kNullAddress, join_epoch_);
  failed_.clear();
  cancel_timer(join_retry_timer_);
  ++counters_.joins_completed;

  // Periodic machinery. Small random phases avoid lock-step storms.
  const SimDuration hb_phase = from_seconds(
      env_.rng().uniform(0.0, to_seconds(cfg_.t_ls)));
  heartbeat_timer_ =
      env_.schedule(hb_phase, [this] { heartbeat_tick(); });
  watch_timer_ = env_.schedule(cfg_.t_ls + cfg_.t_o + hb_phase,
                               [this] { watch_tick(); });
  if (cfg_.active_rt_probing) {
    retune();
    rt_scan_timer_ = env_.schedule(
        from_seconds(env_.rng().uniform(1.0, trt_current_s_)),
        [this] { rt_scan_tick(); });
  }
  maintenance_timer_ = env_.schedule(
      from_seconds(env_.rng().uniform(0.5, 1.0) *
                   to_seconds(cfg_.rt_maintenance_period)),
      [this] { rt_maintenance_tick(); });

  env_.on_activated();
  announce_rows();
  flush_buffered();
}

bool PastryNode::leaf_would_admit(const NodeDescriptor& d) const {
  if (leaf_.size() < cfg_.l) return true;
  const U128 cw = self_.id.clockwise_distance_to(d.id);
  const U128 ccw = d.id.clockwise_distance_to(self_.id);
  const U128 cw_edge = self_.id.clockwise_distance_to(leaf_.rightmost()->id);
  const U128 ccw_edge = leaf_.leftmost()->id.clockwise_distance_to(self_.id);
  return cw < cw_edge || ccw < ccw_edge;
}

bool PastryNode::plausible_leaf_candidate(const NodeDescriptor& d) const {
  if (!cfg_.leaf_plausibility_checks) return true;
  // Too few members to estimate density: admit everything (a bootstrap
  // ring must be able to grow from one node).
  if (leaf_.size() < cfg_.l / 2) return true;
  const double n_hat = estimate_overlay_size();
  constexpr double kRing = 340282366920938463463374607431768211456.0;  // 2^128
  const double min_spacing = kRing / n_hat / cfg_.leaf_density_factor;
  if (self_.id.ring_distance_to(d.id).to_double() < min_spacing) return false;
  for (const NodeDescriptor& m : leaf_.members()) {
    if (m.id.ring_distance_to(d.id).to_double() < min_spacing) return false;
  }
  return true;
}

std::vector<NodeDescriptor> PastryNode::close_nodes_for(NodeId target) const {
  // The l+1 nodes we know (leaf set + routing table) closest to `target`
  // on the ring.
  std::vector<NodeDescriptor> all;
  all.reserve(leaf_.members().size() + rt_.entry_count());
  for (const NodeDescriptor& m : leaf_.members()) all.push_back(m);
  rt_.for_each([&](int, int, const RoutingTable::Entry& e) {
    if (!leaf_.contains(e.node.addr)) all.push_back(e.node);
  });
  std::sort(all.begin(), all.end(),
            [target](const NodeDescriptor& a, const NodeDescriptor& b) {
              return a.id.ring_distance_to(target) <
                     b.id.ring_distance_to(target);
            });
  if (all.size() > static_cast<std::size_t>(cfg_.l + 1)) {
    all.resize(static_cast<std::size_t>(cfg_.l + 1));
  }
  return all;
}

// ---------------------------------------------------------------------------
// Structured heartbeats (Section 4.1)
// ---------------------------------------------------------------------------

void PastryNode::heartbeat_tick() {
  heartbeat_timer_ = env_.schedule(cfg_.t_ls, [this] { heartbeat_tick(); });
  trace_node(obs::EventKind::kHeartbeatTick);
  const auto left = leaf_.left_neighbour();
  if (!left) return;
  if (cfg_.suppression) {
    const auto it = last_sent_.find(left->addr);
    if (it != last_sent_.end() && env_.now() - it->second < cfg_.t_ls) {
      ++counters_.heartbeats_suppressed;
      return;
    }
  }
  ++counters_.heartbeats_sent;
  send(left->addr, make_msg<HeartbeatMsg>(env_.pool()));
}

void PastryNode::watch_tick() {
  watch_timer_ = env_.schedule(cfg_.t_ls, [this] { watch_tick(); });
  const auto right = leaf_.right_neighbour();
  if (!right) return;
  const auto it = last_heard_.find(right->addr);
  const SimTime heard = it != last_heard_.end() ? it->second : 0;
  if (env_.now() - heard > cfg_.t_ls + cfg_.t_o) {
    // SUSPECT-FAULTY (Figure 2); first-hand detection announces.
    ++counters_.ls_probes_suspect;
    probe(*right, /*announce_on_timeout=*/true);
  }
}

}  // namespace mspastry::pastry
