#pragma once

#include <optional>

#include "common/node_id.hpp"
#include "pastry/types.hpp"

namespace mspastry::pastry {

/// A Pastry leaf set: the l/2 active nodes with identifiers closest to the
/// local node on each side of the ring. Members are kept sorted by
/// clockwise distance from the local id; the "right" side is the l/2
/// nearest successors, the "left" side the l/2 nearest predecessors. When
/// the overlay has fewer than l other nodes, a member can be on both
/// sides (the leaf set wraps around the whole ring).
///
/// This container is pure state: all protocol rules about *when* a node
/// may be inserted (only after hearing from it directly) or removed live
/// in PastryNode.
class LeafSet {
 public:
  LeafSet(NodeId self, int l);

  NodeId self() const { return self_; }
  int capacity_per_side() const { return l_ / 2; }

  /// Insert (or refresh) a member. Returns true if membership changed.
  /// Inserting the local id is a no-op. Members pushed out of both side
  /// windows by closer nodes are dropped.
  bool add(const NodeDescriptor& d);

  /// Remove by address. Returns true if a member was removed.
  bool remove(net::Address a);

  bool contains(net::Address a) const;
  std::optional<NodeDescriptor> find(net::Address a) const;

  int size() const { return static_cast<int>(members_.size()); }
  bool empty() const { return members_.empty(); }

  /// Number of distinct members currently on each side.
  int left_count() const;
  int right_count() const;

  /// Both sides at full capacity: l distinct members, so the windows do
  /// not overlap. (Small-ring convergence — a ring with fewer than l+1
  /// nodes can never be "full" — is detected by the node's repair logic,
  /// not here.)
  bool full() const { return size() >= l_; }

  /// Nearest neighbours on the ring.
  std::optional<NodeDescriptor> right_neighbour() const;  // 1st successor
  std::optional<NodeDescriptor> left_neighbour() const;   // 1st predecessor

  /// Extremes of each side: the farthest predecessor / successor known.
  std::optional<NodeDescriptor> leftmost() const;
  std::optional<NodeDescriptor> rightmost() const;

  /// True if key k falls inside the arc covered by the leaf set
  /// [leftmost, rightmost]. An empty or wrapped (size < l) leaf set covers
  /// the whole ring.
  bool covers(NodeId k) const;

  /// The member (or the local node, returned as nullopt) closest to k on
  /// the ring, with the ownership tie-break. nullopt means "the local
  /// node is the closest".
  std::optional<NodeDescriptor> closest(NodeId k) const;

  /// All members, nearest-successor first (clockwise order).
  const LeafVec& members() const { return members_; }

 private:
  U128 cw_from_self(NodeId id) const { return self_.clockwise_distance_to(id); }

  NodeId self_;
  int l_;
  /// Sorted by clockwise distance. Inline up to the paper's l = 32, and
  /// add() evicts before inserting when full, so a node's leaf set never
  /// touches the heap at the default configuration.
  LeafVec members_;
};

}  // namespace mspastry::pastry
