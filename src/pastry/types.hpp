#pragma once

#include <cstdint>
#include <utility>

#include "common/node_id.hpp"
#include "common/small_vec.hpp"
#include "net/network.hpp"

namespace mspastry::pastry {

/// Identity plus location of an overlay node: everything another node
/// needs to talk to it. Fresh per session (a rejoining machine gets a new
/// id and a new address).
struct NodeDescriptor {
  NodeId id;
  net::Address addr = net::kNullAddress;

  bool valid() const { return addr != net::kNullAddress; }
  friend bool operator==(const NodeDescriptor& a, const NodeDescriptor& b) {
    return a.addr == b.addr && a.id == b.id;
  }
};

/// Payload vectors with inline capacity matched to the protocol's
/// cardinalities (DESIGN.md "Message memory"): a full leaf set is l = 32
/// members, a routing-table row has at most 2^b - 1 = 15 entries, an
/// NN-reply carries the l + 1 closest nodes, and a join gathers one row
/// per shared prefix digit (~log_2b N; 8 covers overlays past 10^9
/// nodes). Overflow spills to the heap and is counted
/// (small_vec_spills()).
using LeafVec = SmallVec<NodeDescriptor, 32>;
using FailedVec = SmallVec<NodeDescriptor, 8>;
using RowVec = SmallVec<NodeDescriptor, 16>;
using CandidateVec = SmallVec<NodeDescriptor, 33>;
using JoinRows = SmallVec<std::pair<int, RowVec>, 8>;

/// Aggregated event counters, shared by all nodes of a simulation and read
/// by benches (probe-suppression rates, reroute counts, etc.).
struct Counters {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_suppressed = 0;
  std::uint64_t rt_probes_sent = 0;
  std::uint64_t rt_probes_suppressed = 0;
  /// Periodic-scan probes only (excludes SUSPECT probes triggered by ack
  /// timeouts); the denominator for the paper's suppression claim.
  std::uint64_t rt_probes_periodic = 0;
  std::uint64_t ls_probes_sent = 0;
  // Breakdown of leaf-set probe *initiations* by trigger (diagnostics).
  std::uint64_t ls_probes_join = 0;       ///< probing join-reply candidates
  std::uint64_t ls_probes_candidate = 0;  ///< new candidate from a probe
  std::uint64_t ls_probes_candidate_active = 0;  ///< ...sent by active nodes
  std::uint64_t ls_probes_confirm = 0;    ///< confirming an announced death
  std::uint64_t ls_probes_announce = 0;   ///< announcing a detected death
  std::uint64_t ls_probes_repair = 0;     ///< extending a short leaf set
  std::uint64_t ls_probes_suspect = 0;    ///< heartbeat watch / ack timeout
  std::uint64_t distance_probes_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t ack_timeouts = 0;      ///< per-hop ack timeouts (reroutes)
  std::uint64_t nodes_marked_faulty = 0;
  std::uint64_t false_positives = 0;   ///< filled in by the driver/oracle
  std::uint64_t lookups_forwarded = 0; ///< lookup transmissions (hops)
  std::uint64_t lookups_dropped_no_route = 0;
  std::uint64_t joins_started = 0;
  std::uint64_t joins_completed = 0;
  // Adversarial actions taken by nodes with an AdversaryPolicy installed.
  std::uint64_t lookups_dropped_adversarial = 0;
  std::uint64_t lookups_misrouted_adversarial = 0;
  std::uint64_t ls_replies_corrupted = 0;
  std::uint64_t nn_replies_corrupted = 0;
  // Countermeasure activity.
  std::uint64_t redundant_lookup_copies = 0;   ///< extra copies routed
  std::uint64_t leaf_candidates_rejected = 0;  ///< density check vetoes
  std::uint64_t failure_claims_distrusted = 0; ///< skeptical-mode deferrals
};

}  // namespace mspastry::pastry
