#include <algorithm>
#include <cassert>

#include "pastry/node.hpp"

namespace mspastry::pastry {

PastryNode::PastryNode(const Config& cfg, NodeDescriptor self, Env& env,
                       Counters& counters)
    : cfg_(cfg),
      self_(self),
      env_(env),
      counters_(counters),
      rec_(env.recorder()),
      leaf_(self.id, cfg.l),
      rt_(self.id, cfg.b, env.routing_arena()),
      fail_est_(cfg.failure_history),
      trt_local_s_(to_seconds(cfg.self_tuning ? cfg.t_rt_max : cfg.t_rt_fixed)),
      trt_current_s_(trt_local_s_) {}

PastryNode::~PastryNode() {
  cancel_timer(heartbeat_timer_);
  cancel_timer(watch_timer_);
  cancel_timer(rt_scan_timer_);
  cancel_timer(maintenance_timer_);
  cancel_timer(join_retry_timer_);
  for (auto& [a, p] : ls_probing_) cancel_timer(p.timer);
  for (auto& [a, p] : rt_probing_) cancel_timer(p.timer);
  for (auto& [s, p] : pending_acks_) cancel_timer(p.timer);
  for (auto& [s, d] : dist_sessions_) cancel_timer(d.timer);
}

void PastryNode::cancel_timer(TimerId& t) {
  if (t != kInvalidTimer) {
    env_.cancel(t);
    t = kInvalidTimer;
  }
}

void PastryNode::send(net::Address to, const IntrusivePtr<Message>& m) {
  assert(to != net::kNullAddress);
  m->sender = self_;
  m->trt_hint_s = cfg_.self_tuning ? trt_local_s_ : 0.0;
  last_sent_[to] = env_.now();
  env_.send(to, m);
}

void PastryNode::heard_from(const NodeDescriptor& d) {
  if (!d.valid() || d.id == self_.id) return;
  last_heard_[d.addr] = env_.now();
  excluded_.erase(d.addr);  // evidence of liveness ends ack-exclusion
  if (failed_.erase(d.addr) > 0) {  // recover from false positives
    trace_node(obs::EventKind::kAbsolve, d.addr);
  }
}

std::size_t PastryNode::routing_state_size() const {
  std::unordered_set<net::Address> uniq;
  for (const auto& m : leaf_.members()) uniq.insert(m.addr);
  rt_.for_each([&](int, int, const RoutingTable::Entry& e) {
    uniq.insert(e.node.addr);
  });
  return uniq.size();
}

double PastryNode::estimate_overlay_size() const {
  // Section 4.1: use the density of nodeIds in the leaf set. If the leaf
  // set wraps (fewer than l members) it holds the whole ring.
  if (leaf_.size() < cfg_.l) return static_cast<double>(leaf_.size() + 1);
  const NodeDescriptor lm = *leaf_.leftmost();
  const NodeDescriptor rm = *leaf_.rightmost();
  const double arc = self_.id.clockwise_distance_to(rm.id).to_double() +
                     lm.id.clockwise_distance_to(self_.id).to_double();
  if (arc <= 0.0) return static_cast<double>(leaf_.size() + 1);
  const double spacing =
      arc / static_cast<double>(leaf_.left_count() + leaf_.right_count());
  constexpr double kRing = 340282366920938463463374607431768211456.0;  // 2^128
  return std::max(2.0, kRing / spacing);
}

bool PastryNode::believes_root_of(NodeId key) const {
  if (!active_) return false;
  bool fb = false;
  int er = -1;
  int ec = -1;
  return !next_hop(key, {}, &fb, &er, &ec).valid();
}

bool PastryNode::in_failed(net::Address a) const {
  const auto it = failed_.find(a);
  if (it == failed_.end()) return false;
  if (env_.now() - it->second.since > cfg_.failed_entry_ttl) {
    // Lazy expiry: const_cast is confined here; the set is a cache of
    // verdicts, not protocol-visible state.
    const_cast<PastryNode*>(this)->failed_.erase(a);
    return false;
  }
  return true;
}

double PastryNode::estimate_failure_rate() const {
  return fail_est_.estimate(env_.now(), routing_state_size());
}

PastryNode::DebugState PastryNode::debug_state() const {
  DebugState d;
  d.active = active_;
  d.joining = joining_;
  d.join_epoch = join_epoch_;
  d.leaf_size = leaf_.size();
  d.rt_entries = rt_.entry_count();
  d.ls_probes_outstanding = ls_probing_.size();
  d.rt_probes_outstanding = rt_probing_.size();
  d.pending_acks = pending_acks_.size();
  d.buffered_messages = buffered_.size();
  d.failed_set_size = failed_.size();
  d.excluded_size = excluded_.size();
  d.nn_outstanding = nn_outstanding_;
  d.small_ring_converged = small_ring_converged_;
  d.repair_stalls = repair_stalls_;
  return d;
}

void PastryNode::leave() {
  std::unordered_set<net::Address> told;
  for (const NodeDescriptor& m : leaf_.members()) {
    if (told.insert(m.addr).second) {
      send(m.addr, make_msg<LeaveMsg>(env_.pool()));
    }
  }
  rt_.for_each([&](int, int, const RoutingTable::Entry& e) {
    if (told.insert(e.node.addr).second) {
      send(e.node.addr, make_msg<LeaveMsg>(env_.pool()));
    }
  });
  active_ = false;  // stop delivering; the host tears us down next
}

// ---------------------------------------------------------------------------
// Ingress dispatch
// ---------------------------------------------------------------------------

void PastryNode::handle(net::Address from, const MessagePtr& msg) {
  assert(msg != nullptr);
  heard_from(msg->sender);
  // Any unsolicited message (including acks, per Section 4.1) counts as
  // probe-suppressing evidence; replies to our own probes do not.
  if (msg->type != MsgType::kRtProbeReply &&
      msg->type != MsgType::kLsProbeReply &&
      msg->type != MsgType::kDistanceProbeReply) {
    suppress_heard_[from] = env_.now();
  }
  if (msg->trt_hint_s > 0.0) trt_hints_[from] = msg->trt_hint_s;

  switch (msg->type) {
    case MsgType::kLookup: {
      const auto& m = static_cast<const LookupMsg&>(*msg);
      trace_path(obs::EventKind::kRecv, m.trace_id, from, m.hops, m.hop_seq);
      if (m.wants_ack && cfg_.per_hop_acks) {
        auto ack = make_msg<AckMsg>(env_.pool());
        ack->hop_seq = m.hop_seq;
        ++counters_.acks_sent;
        send(from, ack);
      }
      route(make_msg<LookupMsg>(env_.pool(), m), {});
      return;
    }
    case MsgType::kJoinRequest: {
      const auto& m = static_cast<const JoinRequestMsg&>(*msg);
      trace_path(obs::EventKind::kRecv, m.trace_id, from, m.hops, m.hop_seq);
      if (m.wants_ack && cfg_.per_hop_acks) {
        auto ack = make_msg<AckMsg>(env_.pool());
        ack->hop_seq = m.hop_seq;
        ++counters_.acks_sent;
        send(from, ack);
      }
      auto copy = make_msg<JoinRequestMsg>(env_.pool(), m);
      // Contribute routing-table rows for every prefix depth this node
      // shares with the joiner that the message does not carry yet.
      const int depth = self_.id.shared_prefix_length(copy->joiner.id, cfg_.b);
      for (int r = 0; r <= depth && r < rt_.rows(); ++r) {
        const bool have = std::any_of(
            copy->rows.begin(), copy->rows.end(),
            [r](const auto& pr) { return pr.first == r; });
        if (!have) {
          auto entries = rt_.row_entries(r);
          if (!entries.empty()) copy->rows.emplace_back(r, std::move(entries));
        }
      }
      route(copy, {});
      return;
    }
    case MsgType::kAck: {
      const auto& m = static_cast<const AckMsg&>(*msg);
      on_ack(from, m.hop_seq);
      return;
    }
    case MsgType::kLsProbe:
      handle_ls_probe(static_cast<const LsProbeMsg&>(*msg), false);
      return;
    case MsgType::kLsProbeReply:
      handle_ls_probe(static_cast<const LsProbeMsg&>(*msg), true);
      return;
    case MsgType::kHeartbeat:
      return;  // liveness already recorded by heard_from
    case MsgType::kRtProbe: {
      send(from, make_msg<RtProbeMsg>(env_.pool(), true));
      return;
    }
    case MsgType::kRtProbeReply: {
      const auto it = rt_probing_.find(from);
      if (it != rt_probing_.end()) {
        if (it->second.retries == 0) {
          rtt_[from].sample(env_.now() - it->second.sent_at);
        }
        cancel_timer(it->second.timer);
        rt_probing_.erase(it);
      }
      return;
    }
    case MsgType::kDistanceProbe: {
      const auto& m = static_cast<const DistanceProbeMsg&>(*msg);
      auto reply = make_msg<DistanceProbeMsg>(env_.pool(), true);
      reply->seq = m.seq;
      send(from, reply);
      return;
    }
    case MsgType::kDistanceProbeReply: {
      const auto& m = static_cast<const DistanceProbeMsg&>(*msg);
      on_distance_reply(from, m.seq);
      return;
    }
    case MsgType::kDistanceReport: {
      // Symmetric probing: the sender measured its RTT to us; the value is
      // ours too (delays are symmetric), so consider it for our table
      // without probing back.
      const auto& m = static_cast<const DistanceReportMsg&>(*msg);
      consider_for_rt(m.sender, m.rtt, /*report_symmetric=*/false);
      return;
    }
    case MsgType::kRtRowRequest: {
      const auto& m = static_cast<const RtRowRequestMsg&>(*msg);
      auto reply = make_msg<RtRowReplyMsg>(env_.pool());
      reply->row = m.row;
      reply->entries = rt_.row_entries(m.row);
      send(from, reply);
      return;
    }
    case MsgType::kRtRowReply:
    case MsgType::kRtRowAnnounce: {
      // Constrained gossiping: probe unknown nodes in the received row and
      // adopt the closer ones (handled by the distance sessions).
      const RowVec* entries;
      if (msg->type == MsgType::kRtRowReply) {
        entries = &static_cast<const RtRowReplyMsg&>(*msg).entries;
      } else {
        entries = &static_cast<const RtRowAnnounceMsg&>(*msg).entries;
      }
      for (const NodeDescriptor& d : *entries) {
        if (d.id == self_.id || rt_.contains(d.addr) || in_failed(d.addr)) {
          continue;
        }
        const auto [r, c] = rt_.slot_of(d.id);
        if (r < 0) continue;
        const auto* cur = rt_.get(r, c);
        if (cur != nullptr && !cfg_.pns) continue;  // slot taken, no PNS
        start_distance_session(d, ProbePurpose::kRtCandidate,
                               cfg_.distance_probe_count);
      }
      return;
    }
    case MsgType::kRtEntryRequest: {
      const auto& m = static_cast<const RtEntryRequestMsg&>(*msg);
      auto reply = make_msg<RtEntryReplyMsg>(env_.pool());
      reply->row = m.row;
      reply->col = m.col;
      // Return any node we know that fits the requester's slot.
      rt_.for_each([&](int, int, const RoutingTable::Entry& e) {
        if (reply->entry.valid()) return;
        const auto [rr, cc] = slot_for(m.sender.id, e.node.id, cfg_.b);
        if (rr == m.row && cc == m.col) reply->entry = e.node;
      });
      if (!reply->entry.valid()) {
        for (const NodeDescriptor& d : leaf_.members()) {
          const auto [rr, cc] = slot_for(m.sender.id, d.id, cfg_.b);
          if (rr == m.row && cc == m.col) {
            reply->entry = d;
            break;
          }
        }
      }
      send(from, reply);
      return;
    }
    case MsgType::kRtEntryReply: {
      const auto& m = static_cast<const RtEntryReplyMsg&>(*msg);
      if (m.entry.valid() && !rt_.contains(m.entry.addr) &&
          !in_failed(m.entry.addr) && m.entry.id != self_.id) {
        // Passive repair: probe before inserting (never insert during
        // repair without hearing from the node directly).
        start_distance_session(m.entry, ProbePurpose::kRtCandidate,
                               cfg_.distance_probe_count);
      }
      return;
    }
    case MsgType::kNnRequest: {
      auto reply = make_msg<NnReplyMsg>(env_.pool());
      reply->candidates = close_nodes_for(self_.id);
      if (adversary_ != nullptr &&
          adversary_->corrupt_nn_reply(reply->candidates)) {
        ++counters_.nn_replies_corrupted;
      }
      send(from, reply);
      return;
    }
    case MsgType::kNnReply:
      handle_nn_reply(static_cast<const NnReplyMsg&>(*msg));
      return;
    case MsgType::kJoinReply:
      handle_join_reply(static_cast<const JoinReplyMsg&>(*msg));
      return;
    case MsgType::kLeave: {
      // Direct word from the departing node: drop it everywhere, no probe
      // needed (and no announcement — every member gets its own notice).
      // It does NOT go into failed_: the address never comes back, and a
      // rejoining machine arrives with a fresh id and address anyway.
      leaf_.remove(from);
      notify_right_changed();
      rt_.remove(from);
      excluded_.erase(from);
      trt_hints_.erase(from);
      last_probe_due_.erase(from);
      suppress_heard_.erase(from);
      last_heard_.erase(from);
      last_sent_.erase(from);
      rtt_.erase(from);
      measured_at_.erase(from);
      if (active_ && !leaf_complete()) repair_leaf_set();
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Routing (Figure 2, routei)
// ---------------------------------------------------------------------------

bool PastryNode::is_excluded(net::Address a,
                             const std::vector<net::Address>& excluded) const {
  if (excluded_.count(a) > 0 || in_failed(a)) return true;
  return std::find(excluded.begin(), excluded.end(), a) != excluded.end();
}

NodeDescriptor PastryNode::next_hop(
    NodeId key, const std::vector<net::Address>& excluded,
    bool* used_rt_fallback, int* empty_row, int* empty_col) const {
  *used_rt_fallback = false;
  *empty_row = -1;
  *empty_col = -1;

  // Case 1: the key is within the leaf-set arc: the closest of leaf set
  // members and self owns it.
  if (leaf_.covers(key)) {
    NodeDescriptor best{};  // invalid == self
    NodeId best_id = self_.id;
    for (const NodeDescriptor& m : leaf_.members()) {
      if (is_excluded(m.addr, excluded)) continue;
      if (m.id.closer_to(key, best_id)) {
        best = m;
        best_id = m.id;
      }
    }
    if (!best.valid() && !cfg_.exclude_root_on_ack_timeout) {
      // Self would deliver — but only because every closer member is
      // temporarily excluded (not confirmed faulty). Keep retransmitting
      // toward the true root instead of misdelivering; the concurrent
      // probe resolves the member's fate within (retries+1)*To.
      NodeDescriptor cand{};
      NodeId cand_id = self_.id;
      for (const NodeDescriptor& m : leaf_.members()) {
        if (in_failed(m.addr)) continue;
        if (m.id.closer_to(key, cand_id)) {
          cand = m;
          cand_id = m.id;
        }
      }
      if (cand.valid()) return cand;
    }
    return best;
  }

  // Case 2: routing-table hop on the shared prefix.
  const int r = self_.id.shared_prefix_length(key, cfg_.b);
  const int c = static_cast<int>(key.digit(r, cfg_.b));
  const RoutingTable::Entry* e = rt_.get(r, c);
  if (e != nullptr && !is_excluded(e->node.addr, excluded)) {
    return e->node;
  }
  if (e == nullptr) {
    *empty_row = r;
    *empty_col = c;
  }

  // Case 3: route around the hole: any known node strictly closer to the
  // key than we are, with a shared prefix at least as long.
  *used_rt_fallback = true;
  NodeDescriptor best{};
  U128 best_dist = self_.id.ring_distance_to(key);
  auto try_candidate = [&](const NodeDescriptor& d) {
    if (is_excluded(d.addr, excluded)) return;
    if (d.id.shared_prefix_length(key, cfg_.b) < r) return;
    const U128 dist = d.id.ring_distance_to(key);
    if (dist < best_dist) {
      best = d;
      best_dist = dist;
    }
  };
  for (const NodeDescriptor& m : leaf_.members()) try_candidate(m);
  rt_.for_each([&](int, int, const RoutingTable::Entry& en) {
    try_candidate(en.node);
  });
  return best;  // invalid == deliver locally
}

void PastryNode::route(const IntrusivePtr<RoutedMessage>& m,
                       const std::vector<net::Address>& excluded) {
  if (m->hops >= cfg_.max_route_hops) {
    ++counters_.lookups_dropped_no_route;
    trace_path(obs::EventKind::kDrop, m->trace_id, net::kNullAddress, m->hops);
    return;
  }
  bool fallback = false;
  int er = -1;
  int ec = -1;
  const NodeDescriptor next = next_hop(m->key, excluded, &fallback, &er, &ec);
  if (adversary_ != nullptr && m->type == MsgType::kLookup &&
      adversary_route(m, next, excluded)) {
    return;  // the adversary consumed or diverted the message
  }
  if (!next.valid()) {
    receive_root(m);
    return;
  }
  if (m->type == MsgType::kLookup &&
      env_.on_forward(static_cast<const LookupMsg&>(*m), next)) {
    trace_path(obs::EventKind::kAppConsumed, m->trace_id, next.addr, m->hops);
    return;  // the application consumed the message at this hop
  }
  // Passive routing-table repair: we found our slot (er, ec) empty while
  // routing; ask the next hop whether it knows a node for it.
  if (er >= 0 && next.valid()) {
    auto req = make_msg<RtEntryRequestMsg>(env_.pool());
    req->row = er;
    req->col = ec;
    send(next.addr, req);
  }
  forward(m, next, excluded);
}

bool PastryNode::adversary_route(const IntrusivePtr<RoutedMessage>& m,
                                 const NodeDescriptor& next,
                                 const std::vector<net::Address>& excluded) {
  switch (adversary_->on_route(*m, leaf_.covers(m->key))) {
    case AdversaryPolicy::RouteAction::kHonest:
      return false;
    case AdversaryPolicy::RouteAction::kDrop: {
      // Ack-then-devour: the upstream hop already got its per-hop ack
      // from handle(), so to it the transmission succeeded. The network
      // accounts for the pretend forward (sent + adversarially dropped)
      // and reports it to the drop observer for causal-path evidence,
      // but delivery is never scheduled.
      ++counters_.lookups_dropped_adversarial;
      if (next.valid()) {
        auto copy = make_msg<LookupMsg>(env_.pool(),
                                        static_cast<const LookupMsg&>(*m));
        copy->hops = m->hops + 1;
        copy->hop_seq = 0;
        env_.devour(next.addr, copy);
      }
      return true;
    }
    case AdversaryPolicy::RouteAction::kMisroute: {
      if (leaf_.covers(m->key)) {
        // Plausible root claim: deliver locally past closer leaf-set
        // members. This is the measurable misdelivery the oracle-verdict
        // expectation rule catches.
        ++counters_.lookups_misrouted_adversarial;
        receive_root(m);
        return true;
      }
      // Forward off-path: a live-but-wrong hop (the leaf member farthest
      // from the key) instead of the prefix-matching next hop. Honest
      // downstream nodes reconverge, so this costs hops and ack budget
      // rather than guaranteeing failure.
      NodeDescriptor wrong{};
      bool have = false;
      U128 worst{};
      for (const NodeDescriptor& cand : leaf_.members()) {
        if (cand.addr == next.addr || is_excluded(cand.addr, excluded)) {
          continue;
        }
        const U128 dist = cand.id.ring_distance_to(m->key);
        if (!have || worst < dist) {
          wrong = cand;
          worst = dist;
          have = true;
        }
      }
      if (!wrong.valid()) return false;  // nothing plausible: act honest
      ++counters_.lookups_misrouted_adversarial;
      forward(m, wrong, excluded);
      return true;
    }
  }
  return false;
}

void PastryNode::receive_root(const IntrusivePtr<RoutedMessage>& m) {
  if (!active_) {
    // Figure 2: never deliver (or answer joins) while inactive; buffer and
    // re-route after activation.
    buffer_message(m);
    return;
  }
  // Mass-failure guard: an active node whose entire leaf set vanished must
  // repair before delivering (Section 3.1's generalized repair).
  if (leaf_.empty() && rt_.entry_count() > 0) {
    buffer_message(m);
    repair_leaf_set();
    return;
  }
  if (m->type == MsgType::kLookup) {
    deliver_lookup(static_cast<const LookupMsg&>(*m));
    return;
  }
  if (m->type == MsgType::kJoinRequest) {
    const auto& jr = static_cast<const JoinRequestMsg&>(*m);
    auto reply = make_msg<JoinReplyMsg>(env_.pool());
    reply->join_epoch = jr.join_epoch;
    reply->rows = jr.rows;
    // Contribute this (root) node's rows as well.
    const int depth = self_.id.shared_prefix_length(jr.joiner.id, cfg_.b);
    for (int r = 0; r <= depth && r < rt_.rows(); ++r) {
      const bool have = std::any_of(
          reply->rows.begin(), reply->rows.end(),
          [r](const auto& pr) { return pr.first == r; });
      if (!have) {
        auto entries = rt_.row_entries(r);
        if (!entries.empty()) reply->rows.emplace_back(r, std::move(entries));
      }
    }
    reply->leaf_set = leaf_.members();
    trace_path(obs::EventKind::kDeliver, jr.trace_id, jr.joiner.addr,
               jr.hops, jr.join_epoch);
    send(jr.joiner.addr, reply);
    return;
  }
}

void PastryNode::deliver_lookup(const LookupMsg& m) {
  trace_path(obs::EventKind::kDeliver, m.trace_id, m.source.addr, m.hops,
             m.lookup_id);
  env_.on_deliver(m);
}

void PastryNode::buffer_message(const IntrusivePtr<RoutedMessage>& m) {
  constexpr std::size_t kMaxBuffered = 1024;
  if (buffered_.size() >= kMaxBuffered) {
    trace_path(obs::EventKind::kDrop, buffered_.front()->trace_id,
               net::kNullAddress, buffered_.front()->hops);
    buffered_.erase(buffered_.begin());
    ++counters_.lookups_dropped_no_route;
  }
  trace_path(obs::EventKind::kBuffered, m->trace_id, net::kNullAddress,
             m->hops);
  buffered_.push_back(m);
}

void PastryNode::flush_buffered() {
  auto pending = std::move(buffered_);
  buffered_.clear();
  for (auto& m : pending) route(m, {});
}

// ---------------------------------------------------------------------------
// Per-hop acks (Section 3.2)
// ---------------------------------------------------------------------------

SimDuration PastryNode::rto_for(net::Address a) const {
  const auto it = rtt_.find(a);
  if (it != rtt_.end() && it->second.seeded()) return it->second.rto(cfg_);
  // No sample yet: if the routing table knows a measured RTT, derive an
  // aggressive timeout from it; otherwise use the configured initial RTO.
  const RoutingTable::Entry* e = rt_.find(a);
  if (e != nullptr && e->rtt != kTimeNever) {
    return std::clamp(2 * e->rtt, cfg_.rto_min, cfg_.rto_max);
  }
  return cfg_.rto_initial;
}

void PastryNode::forward(const IntrusivePtr<RoutedMessage>& m,
                         const NodeDescriptor& next,
                         std::vector<net::Address> excluded) {
  // Routed messages are owned per hop; clone for mutation.
  IntrusivePtr<RoutedMessage> copy;
  if (m->type == MsgType::kLookup) {
    copy = make_msg<LookupMsg>(env_.pool(), static_cast<const LookupMsg&>(*m));
  } else {
    copy = make_msg<JoinRequestMsg>(env_.pool(),
                                    static_cast<const JoinRequestMsg&>(*m));
  }
  copy->hops = m->hops + 1;
  if (m->type == MsgType::kLookup) ++counters_.lookups_forwarded;

  if (!(cfg_.per_hop_acks && m->wants_ack)) {
    copy->hop_seq = 0;
    trace_path(obs::EventKind::kForward, copy->trace_id, next.addr,
               copy->hops);
    send(next.addr, copy);
    return;
  }
  const std::uint64_t seq = next_hop_seq_++;
  copy->hop_seq = seq;
  trace_path(obs::EventKind::kForward, copy->trace_id, next.addr, copy->hops,
             seq);
  PendingAck pending;
  pending.msg = copy;
  pending.dest = next.addr;
  pending.excluded = std::move(excluded);
  pending.sent_at = env_.now();
  pending.timer = env_.schedule(rto_for(next.addr),
                                [this, seq] { on_ack_timeout(seq); });
  pending_acks_.emplace(seq, std::move(pending));
  send(next.addr, copy);
}

void PastryNode::on_ack(net::Address from, std::uint64_t hop_seq) {
  const auto it = pending_acks_.find(hop_seq);
  if (it == pending_acks_.end() || it->second.dest != from) return;
  trace_path(obs::EventKind::kAckRecv, it->second.msg->trace_id, from,
             it->second.msg->hops, hop_seq);
  cancel_timer(it->second.timer);
  rtt_[from].sample(env_.now() - it->second.sent_at);
  pending_acks_.erase(it);
}

void PastryNode::on_ack_timeout(std::uint64_t hop_seq) {
  const auto it = pending_acks_.find(hop_seq);
  if (it == pending_acks_.end()) return;
  PendingAck pending = std::move(it->second);
  pending_acks_.erase(it);
  pending.timer = kInvalidTimer;
  ++counters_.ack_timeouts;
  trace_path(obs::EventKind::kAckTimeout, pending.msg->trace_id, pending.dest,
             pending.msg->hops, hop_seq);

  // Our own join request never got past the seed: restart the join from a
  // fresh bootstrap right away (a joiner has no routing state to reroute
  // with).
  if (pending.msg->type == MsgType::kJoinRequest && joining_ && !active_ &&
      static_cast<const JoinRequestMsg&>(*pending.msg).joiner.addr ==
          self_.addr) {
    trace_path(obs::EventKind::kJoinRestart, pending.msg->trace_id,
               pending.dest, pending.msg->hops, join_epoch_);
    const auto bootstrap = env_.bootstrap_candidate();
    if (bootstrap && bootstrap->id != self_.id) {
      start_join(*bootstrap);
    }
    return;
  }

  // A single lost ack is recovered by retransmitting to the same
  // destination before treating it as suspect.
  if (pending.same_dest_retries < cfg_.ack_retransmits) {
    const std::uint64_t seq = next_hop_seq_++;
    pending.msg = [&]() -> IntrusivePtr<RoutedMessage> {
      if (pending.msg->type == MsgType::kLookup) {
        return make_msg<LookupMsg>(
            env_.pool(), static_cast<const LookupMsg&>(*pending.msg));
      }
      return make_msg<JoinRequestMsg>(
          env_.pool(), static_cast<const JoinRequestMsg&>(*pending.msg));
    }();
    pending.msg->hop_seq = seq;
    pending.same_dest_retries += 1;
    pending.sent_at = env_.now();
    trace_path(obs::EventKind::kRetransmit, pending.msg->trace_id,
               pending.dest, pending.msg->hops, seq);
    pending.timer = env_.schedule(2 * rto_for(pending.dest),
                                  [this, seq] { on_ack_timeout(seq); });
    send(pending.dest, pending.msg);
    pending_acks_.emplace(seq, std::move(pending));
    return;
  }

  // Temporarily exclude the unresponsive node and probe it; it is only
  // marked faulty if the probe times out.
  excluded_.insert(pending.dest);
  trace_node(obs::EventKind::kSuspect, pending.dest);
  if (auto d = leaf_.find(pending.dest)) {
    // First-hand suspicion (missed ack): announce if confirmed dead.
    ++counters_.ls_probes_suspect;
    probe(*d, /*announce_on_timeout=*/true);
  } else if (const RoutingTable::Entry* e = rt_.find(pending.dest)) {
    send_rt_probe(e->node);
  }

  if (cfg_.mutation_suppress_reroute) {
    // Injected bug (see Config): the message is silently abandoned. The
    // expectation checker's timeout-followed-by-reaction rule exists to
    // catch exactly this.
    return;
  }

  std::vector<net::Address> excl = pending.excluded;
  excl.push_back(pending.dest);

  // If routing-with-exclusions still points at the same destination, the
  // consistency rule in next_hop fired (the destination is the closest
  // live-as-far-as-we-know root): retransmit with exponential backoff
  // rather than misdeliver locally.
  bool fb = false;
  int er = -1;
  int ec = -1;
  const NodeDescriptor next = next_hop(pending.msg->key, excl, &fb, &er, &ec);
  if (next.valid() && next.addr == pending.dest) {
    if (pending.same_dest_retries >= cfg_.max_same_dest_retransmits) {
      ++counters_.lookups_dropped_no_route;
      trace_path(obs::EventKind::kDrop, pending.msg->trace_id, pending.dest,
                 pending.msg->hops);
      return;
    }
    const std::uint64_t seq = next_hop_seq_++;
    pending.msg = [&]() -> IntrusivePtr<RoutedMessage> {
      if (pending.msg->type == MsgType::kLookup) {
        return make_msg<LookupMsg>(
            env_.pool(), static_cast<const LookupMsg&>(*pending.msg));
      }
      return make_msg<JoinRequestMsg>(
          env_.pool(), static_cast<const JoinRequestMsg&>(*pending.msg));
    }();
    pending.msg->hop_seq = seq;
    pending.same_dest_retries += 1;
    pending.sent_at = env_.now();
    trace_path(obs::EventKind::kRetransmit, pending.msg->trace_id,
               pending.dest, pending.msg->hops, seq);
    const SimDuration backoff = std::min<SimDuration>(
        rto_for(pending.dest) << std::min(pending.same_dest_retries, 8),
        cfg_.rto_max);
    pending.timer =
        env_.schedule(backoff, [this, seq] { on_ack_timeout(seq); });
    send(pending.dest, pending.msg);
    pending_acks_.emplace(seq, std::move(pending));
    return;
  }

  trace_path(obs::EventKind::kReroute, pending.msg->trace_id, pending.dest,
             pending.msg->hops);
  route(pending.msg, excl);
}

// ---------------------------------------------------------------------------
// Lookup origination
// ---------------------------------------------------------------------------

void PastryNode::lookup(NodeId key, std::uint64_t lookup_id,
                        std::uint64_t payload, bool wants_ack,
                        net::PacketPtr app_data) {
  auto m = make_msg<LookupMsg>(env_.pool());
  m->key = key;
  m->lookup_id = lookup_id;
  m->payload = payload;
  m->app_data = std::move(app_data);
  m->wants_ack = wants_ack;
  m->source = self_;
  m->sent_at = env_.now();
  m->trace_id = rec_ != nullptr ? rec_->sample_lookup(lookup_id) : 0;
  trace_path(obs::EventKind::kLookupIssued, m->trace_id, net::kNullAddress, 0,
             lookup_id);
  if (!active_) {
    buffer_message(m);
    return;
  }
  if (cfg_.lookup_redundancy <= 1) {
    route(m, {});
    return;
  }
  // Diverse-path redundancy: route k copies with pairwise-distinct first
  // hops, accumulated as per-copy exclusions. Disjointness is first-hop
  // only — Pastry's prefix routing converges paths near the root, so
  // interior disjointness is best-effort by construction. Redundant
  // copies are untraced (causal-path assembly is per-path); the
  // application layer deduplicates with first-correct-wins.
  std::vector<net::Address> used;
  for (int k = 0; k < cfg_.lookup_redundancy; ++k) {
    bool fb = false;
    int er = -1;
    int ec = -1;
    const NodeDescriptor first = next_hop(key, used, &fb, &er, &ec);
    if (k == 0) {
      route(m, {});
      if (!first.valid()) return;  // delivered locally: one copy suffices
    } else {
      // Never let exclusion pressure turn a redundant copy into a local
      // (mis)delivery: stop when no further disjoint first hop exists.
      if (!first.valid()) return;
      auto copy = make_msg<LookupMsg>(env_.pool(), *m);
      copy->trace_id = 0;
      ++counters_.redundant_lookup_copies;
      route(copy, used);
    }
    used.push_back(first.addr);
  }
}

}  // namespace mspastry::pastry
