#pragma once

// Slab pool for wire messages, the message-layer sibling of the event
// core's timer arena (sim/simulator.hpp). Every message type gets its own
// free-listed slab of fixed-size slots; allocation is a free-list pop +
// placement-new, and release (driven by the intrusive refcount's disposer
// hook) is a destructor call + free-list push. After warmup the working
// set of in-flight messages stabilises, so steady-state traffic allocates
// zero heap: new slab chunks are *counted* (Stats::chunk_allocs) exactly
// like callback heap fallbacks, and perf_core asserts the count stays
// flat during measurement.
//
// Recycling is generation-checked, mirroring the timer arena's
// (gen << 32 | slot) handles: each slot carries a generation bumped on
// every release, so tests can prove that a recycled slot is a genuinely
// new object and that aliased in-flight references (the fault plan's
// duplication rule delivers one packet several times) pin the slot until
// the last reference drops.
//
// The pool must outlive every message allocated from it — drivers declare
// it before the Simulator/Network members that hold messages in flight.
// The destructor asserts this (live() == 0) in debug builds.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/intrusive_ptr.hpp"
#include "common/ref_counted.hpp"

namespace mspastry::pastry {

class MessagePool {
 public:
  struct Stats {
    std::uint64_t allocated = 0;    ///< total make<T>() calls
    std::uint64_t reused = 0;       ///< served from a slab free list
    std::uint64_t chunk_allocs = 0; ///< heap fallbacks: fresh slab chunks
    std::uint64_t live = 0;         ///< objects currently outstanding
  };

  MessagePool() = default;
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  ~MessagePool() {
    assert(stats_.live == 0 &&
           "messages outlived their pool; fix destruction order");
  }

  /// Allocate a T from its slab (pooled, recycled on last release).
  template <class T, class... Args>
  IntrusivePtr<T> make(Args&&... args) {
    static_assert(std::is_base_of_v<RefCounted, T>,
                  "pooled types must derive RefCounted");
    return IntrusivePtr<T>(
        slab_for<T>().allocate(std::forward<Args>(args)...));
  }

  const Stats& stats() const noexcept { return stats_; }
  std::uint64_t live() const noexcept { return stats_.live; }

  /// Generation of the slab slot holding `obj`; 0 for unpooled objects.
  /// Bumped on every release, so two allocations that reuse one slot are
  /// distinguishable even though their addresses match.
  static std::uint32_t slot_generation(const RefCounted& obj) noexcept {
    const void* ctx = obj.disposer_context();
    return ctx != nullptr ? static_cast<const SlotHeader*>(ctx)->gen : 0;
  }

 private:
  struct SlotHeader {
    void* owner = nullptr;          ///< the TypedSlab<T> this slot belongs to
    SlotHeader* next_free = nullptr;
    std::uint32_t gen = 0;
  };

  class SlabBase {
   public:
    virtual ~SlabBase() = default;
  };

  template <class T>
  class TypedSlab final : public SlabBase {
   public:
    /// Slots per chunk: big enough to amortise the chunk allocation, small
    /// enough that rare message types do not pin much memory.
    static constexpr std::size_t kChunkSlots = 64;

    struct Slot : SlotHeader {
      alignas(T) unsigned char storage[sizeof(T)];
    };

    explicit TypedSlab(Stats& stats) : stats_(stats) {}

    ~TypedSlab() override {
      for (Slot* chunk : chunks_) {
        ::operator delete(chunk, std::align_val_t{alignof(Slot)});
      }
    }

    template <class... Args>
    T* allocate(Args&&... args) {
      Slot* s = free_;
      if (s != nullptr) {
        free_ = static_cast<Slot*>(s->next_free);
        ++stats_.reused;
      } else {
        s = carve();
      }
      T* obj = ::new (static_cast<void*>(s->storage))
          T(std::forward<Args>(args)...);
      obj->set_disposer(&TypedSlab::recycle, static_cast<SlotHeader*>(s));
      ++stats_.allocated;
      ++stats_.live;
      return obj;
    }

   private:
    Slot* carve() {
      if (next_in_chunk_ == kChunkSlots) {
        chunks_.push_back(static_cast<Slot*>(::operator new(
            kChunkSlots * sizeof(Slot), std::align_val_t{alignof(Slot)})));
        ++stats_.chunk_allocs;
        next_in_chunk_ = 0;
      }
      Slot* s = chunks_.back() + next_in_chunk_++;
      s->owner = this;
      s->next_free = nullptr;
      s->gen = 1;
      return s;
    }

    static void recycle(void* ctx, const RefCounted* obj) {
      auto* slot = static_cast<Slot*>(static_cast<SlotHeader*>(ctx));
      auto* self = static_cast<TypedSlab*>(slot->owner);
      // The disposer is registered per-T, so the downcast is exact.
      static_cast<const T*>(obj)->~T();
      ++slot->gen;  // anything still holding the old address can be caught
      slot->next_free = self->free_;
      self->free_ = slot;
      --self->stats_.live;
    }

    Stats& stats_;
    Slot* free_ = nullptr;
    std::vector<Slot*> chunks_;
    std::size_t next_in_chunk_ = kChunkSlots;
  };

  /// Process-wide dense type index: one increment per distinct T, so the
  /// per-pool lookup is a vector index, not a type_index hash. Atomic
  /// because sweep-runner trials build pools on worker threads.
  static std::size_t next_type_index() noexcept {
    static std::atomic<std::size_t> n{0};
    return n.fetch_add(1, std::memory_order_relaxed);
  }

  template <class T>
  static std::size_t type_index_of() noexcept {
    static const std::size_t idx = next_type_index();
    return idx;
  }

  template <class T>
  TypedSlab<T>& slab_for() {
    const std::size_t idx = type_index_of<T>();
    if (idx >= slabs_.size()) slabs_.resize(idx + 1);
    auto& slab = slabs_[idx];
    if (slab == nullptr) slab = std::make_unique<TypedSlab<T>>(stats_);
    return static_cast<TypedSlab<T>&>(*slab);
  }

  std::vector<std::unique_ptr<SlabBase>> slabs_;
  Stats stats_;
};

/// The factory the protocol code uses: make_msg<LsProbeMsg>(pool, ...).
template <class T, class... Args>
IntrusivePtr<T> make_msg(MessagePool& pool, Args&&... args) {
  return pool.make<T>(std::forward<Args>(args)...);
}

}  // namespace mspastry::pastry
