#pragma once

#include <algorithm>

#include "common/sim_time.hpp"
#include "pastry/config.hpp"

namespace mspastry::pastry {

/// Per-destination round-trip estimator in the style of TCP [Karn &
/// Partridge / Jacobson]: smoothed RTT plus mean deviation. MSPastry sets
/// retransmission timeouts more aggressively than TCP (no 1-second floor)
/// because a missed per-hop ack is recovered by rerouting to an
/// alternative neighbour, not by a congestion-safe resend to the same one.
/// State is kept in TCP-style scaled fixed point (srtt x8, rttvar x4) so
/// the gain divisions keep their fractional part: updating the unscaled
/// values with `(rtt - srtt) / 8` truncates toward zero, which silently
/// drops sub-granularity decreases and pins srtt up to 7 ticks above a
/// stable true RTT forever.
class RttEstimator {
 public:
  /// Feed one RTT sample.
  void sample(SimDuration rtt) {
    if (!seeded_) {
      srtt8_ = rtt * 8;
      rttvar4_ = rtt * 2;  // rttvar seeds at rtt / 2
      seeded_ = true;
      return;
    }
    SimDuration delta = rtt - (srtt8_ >> 3);
    srtt8_ += delta;  // srtt += (rtt - srtt) / 8, error kept in srtt8_
    if (delta < 0) delta = -delta;
    rttvar4_ += delta - (rttvar4_ >> 2);  // rttvar += (|err| - rttvar) / 4
  }

  bool seeded() const { return seeded_; }
  SimDuration srtt() const { return srtt8_ >> 3; }

  /// Retransmission timeout under the given configuration.
  SimDuration rto(const Config& cfg) const {
    if (!seeded_) return cfg.rto_initial;
    const auto raw =
        (srtt8_ >> 3) + static_cast<SimDuration>(
                            cfg.rto_var_factor *
                            (static_cast<double>(rttvar4_) / 4.0));
    return std::clamp(raw, cfg.rto_min, cfg.rto_max);
  }

 private:
  bool seeded_ = false;
  SimDuration srtt8_ = 0;   // smoothed RTT, scaled by 8
  SimDuration rttvar4_ = 0; // mean deviation, scaled by 4
};

}  // namespace mspastry::pastry
