#pragma once

#include <algorithm>

#include "common/sim_time.hpp"
#include "pastry/config.hpp"

namespace mspastry::pastry {

/// Per-destination round-trip estimator in the style of TCP [Karn &
/// Partridge / Jacobson]: smoothed RTT plus mean deviation. MSPastry sets
/// retransmission timeouts more aggressively than TCP (no 1-second floor)
/// because a missed per-hop ack is recovered by rerouting to an
/// alternative neighbour, not by a congestion-safe resend to the same one.
class RttEstimator {
 public:
  /// Feed one RTT sample.
  void sample(SimDuration rtt) {
    if (!seeded_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      seeded_ = true;
      return;
    }
    const SimDuration err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
    rttvar_ += (err - rttvar_) / 4;    // beta = 1/4
    srtt_ += (rtt - srtt_) / 8;        // alpha = 1/8
  }

  bool seeded() const { return seeded_; }
  SimDuration srtt() const { return srtt_; }

  /// Retransmission timeout under the given configuration.
  SimDuration rto(const Config& cfg) const {
    if (!seeded_) return cfg.rto_initial;
    const auto raw = srtt_ + static_cast<SimDuration>(
                                 cfg.rto_var_factor *
                                 static_cast<double>(rttvar_));
    return std::clamp(raw, cfg.rto_min, cfg.rto_max);
  }

 private:
  bool seeded_ = false;
  SimDuration srtt_ = 0;
  SimDuration rttvar_ = 0;
};

}  // namespace mspastry::pastry
