#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/node_id.hpp"
#include "common/small_vec.hpp"
#include "net/network.hpp"
#include "pastry/types.hpp"

namespace mspastry::pastry {

/// Every MSPastry wire message. The taxonomy mirrors the breakdown in the
/// paper's Figure 4 (right): distance probes, leaf-set heartbeats/probes,
/// routing-table probes, acks + retransmits, and join traffic, plus the
/// lookups themselves.
enum class MsgType : std::uint8_t {
  kJoinRequest,
  kJoinReply,
  kLsProbe,
  kLsProbeReply,
  kHeartbeat,
  kRtProbe,
  kRtProbeReply,
  kDistanceProbe,
  kDistanceProbeReply,
  kDistanceReport,   // symmetric-probing result share
  kRtRowRequest,     // periodic routing-table maintenance
  kRtRowReply,
  kRtRowAnnounce,    // join-time row broadcast
  kRtEntryRequest,   // passive routing-table repair
  kRtEntryReply,
  kNnRequest,        // nearest-neighbour seed discovery
  kNnReply,
  kLookup,
  kAck,
  kLeave,            // graceful departure notice (extension)
};

/// Number of message types; the rt wire codec (rt/wire.hpp) validates
/// decoded type bytes against this and its round-trip test iterates it.
inline constexpr int kMsgTypeCount = static_cast<int>(MsgType::kLeave) + 1;

/// Human-readable name, for reports and logs.
const char* msg_type_name(MsgType t);

/// True for message types counted as control traffic (everything except
/// the lookups themselves, matching the paper's metric).
constexpr bool is_control(MsgType t) { return t != MsgType::kLookup; }

/// Coarse categories used for the Figure-4 traffic breakdown.
enum class TrafficClass : std::uint8_t {
  kDistanceProbes,
  kLeafSetTraffic,   // heartbeats + LS probes/replies
  kRtProbes,
  kAcksRetransmits,
  kJoin,             // join requests/replies, row announce, NN discovery
  kLookups,
};
TrafficClass traffic_class(MsgType t);
const char* traffic_class_name(TrafficClass c);
inline constexpr int kTrafficClassCount = 6;

/// Common header. `sender` lets receivers learn descriptors from any
/// message they hear directly (the consistency rule: never insert a node
/// you have not heard from). `trt_hint_s` piggybacks the sender's local
/// self-tuning estimate of the routing-table probe period, per Section
/// 4.1 (0 means "no estimate").
struct Message : net::Packet {
  explicit Message(MsgType t) : type(t) {}
  MsgType type;
  NodeDescriptor sender;
  double trt_hint_s = 0.0;
};

/// Messages are slab-pooled (pastry/message_pool.hpp) and intrusively
/// refcounted; a copy of this pointer is one non-atomic increment.
using MessagePtr = IntrusivePtr<const Message>;

class MessagePool;

/// Why a codec operation (wire encode/decode, cross-shard clone) rejected
/// a message. Shared by the rt wire codec (rt/wire.hpp aliases this) and
/// clone_message below, so a forged type byte and a forged in-memory type
/// report through one vocabulary.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kTruncated,       ///< frame shorter than its fields claim
  kBadMagic,
  kBadVersion,
  kBadType,         ///< type byte outside pastry::kMsgTypeCount
  kBadLength,       ///< length field disagrees with the datagram size
  kOversizeVec,     ///< vector count above rt::kMaxVecLen
  kTrailingBytes,   ///< well-formed fields followed by extra bytes
  kUnknownAddress,  ///< encode: descriptor address not in the book
  kAppData,         ///< encode/clone: LookupMsg::app_data not supported
  kOversizeFrame,   ///< encode: frame would exceed rt::kMaxFrameBytes
};

const char* wire_status_name(WireStatus s);

/// Thrown (in every build mode, NDEBUG included) when a codec operation
/// meets a message it cannot represent: clone_message on a forged /
/// out-of-range MsgType, or app_data whose concrete type cannot cross
/// pools. Callers that must not unwind (worker threads) validate before
/// sending; the sharded driver's barrier runs single-threaded, so an
/// escape there fails the run loudly instead of silently corrupting it.
class CodecError : public std::runtime_error {
 public:
  CodecError(WireStatus status, const std::string& what)
      : std::runtime_error(what), status_(status) {}
  WireStatus status() const noexcept { return status_; }

 private:
  WireStatus status_;
};

/// Application payloads that can follow a lookup across shard boundaries.
/// A plain net::Packet cannot: refcounts are non-atomic and slabs are
/// single-threaded, so the clone must be a fresh object in the
/// *destination* shard's pool. App packet types opt in by implementing
/// clone_into; clone_message throws CodecError{kAppData} for any other
/// app_data payload.
struct CloneableAppData : net::Packet {
  virtual net::PacketPtr clone_into(MessagePool& pool) const = 0;
};

/// Deep-copy `m` into `pool`, preserving the dynamic type. The sharded
/// driver uses this to hand a message across shards: refcounts are
/// non-atomic and slabs are single-threaded, so a cross-shard delivery
/// must be a fresh object in the *destination* shard's pool (the
/// RefCounted copy constructor starts the clone's count at zero).
/// Lookups carrying app_data clone the payload through CloneableAppData;
/// any other app_data type throws CodecError{kAppData}, and a message
/// whose type byte is outside the enum (memory corruption, a forged
/// frame that slipped past decode) throws CodecError{kBadType} — in all
/// build modes, never an assert that compiles out under NDEBUG.
MessagePtr clone_message(const Message& m, MessagePool& pool);

// Payload vector aliases (LeafVec, RowVec, ...) live in pastry/types.hpp
// so the routing table can return them without depending on this header.

/// A routed message: carried hop by hop toward a destination key.
/// Subtypes: lookups and join requests.
struct RoutedMessage : Message {
  using Message::Message;
  NodeId key;
  int hops = 0;
  /// Per-hop transmission id; the receiver acks it. Unique per sender.
  std::uint64_t hop_seq = 0;
  bool wants_ack = true;
  /// End-to-end causal-trace id (obs/flight_recorder.hpp); 0 = untraced.
  /// Piggybacked hop to hop so every node on the path records against the
  /// same id.
  std::uint64_t trace_id = 0;
};

struct LookupMsg final : RoutedMessage {
  LookupMsg() : RoutedMessage(MsgType::kLookup) {}
  std::uint64_t lookup_id = 0;   ///< driver-assigned, for the oracle
  NodeDescriptor source;
  SimTime sent_at = 0;           ///< origination time (for RDP)
  std::uint64_t payload = 0;     ///< small opaque application value
  net::PacketPtr app_data;       ///< optional structured application data
};

struct JoinRequestMsg final : RoutedMessage {
  JoinRequestMsg() : RoutedMessage(MsgType::kJoinRequest) {}
  NodeDescriptor joiner;
  std::uint64_t join_epoch = 0;  ///< joiner's attempt counter
  /// Routing-table rows gathered along the route: (row index, entries).
  JoinRows rows;
};

struct JoinReplyMsg final : Message {
  JoinReplyMsg() : Message(MsgType::kJoinReply) {}
  std::uint64_t join_epoch = 0;
  JoinRows rows;
  LeafVec leaf_set;
};

/// Leaf-set probe / reply (Figure 2): carries the sender's leaf set and
/// failed set. Replies additionally serve generalized leaf-set repair by
/// including nodes from the routing table close to the requester.
struct LsProbeMsg final : Message {
  explicit LsProbeMsg(bool reply)
      : Message(reply ? MsgType::kLsProbeReply : MsgType::kLsProbe) {}
  LeafVec leaf;
  FailedVec failed;
};

struct HeartbeatMsg final : Message {
  HeartbeatMsg() : Message(MsgType::kHeartbeat) {}
};

/// Routing-table liveness probe (lighter than a leaf-set probe).
struct RtProbeMsg final : Message {
  explicit RtProbeMsg(bool reply)
      : Message(reply ? MsgType::kRtProbeReply : MsgType::kRtProbe) {}
};

struct DistanceProbeMsg final : Message {
  explicit DistanceProbeMsg(bool reply)
      : Message(reply ? MsgType::kDistanceProbeReply
                      : MsgType::kDistanceProbe) {}
  std::uint64_t seq = 0;
};

/// Symmetric probing (Section 4.2): i measured its RTT to j and tells j,
/// so j can consider i for its routing table without probing back.
struct DistanceReportMsg final : Message {
  DistanceReportMsg() : Message(MsgType::kDistanceReport) {}
  SimDuration rtt = 0;
};

struct RtRowRequestMsg final : Message {
  RtRowRequestMsg() : Message(MsgType::kRtRowRequest) {}
  int row = 0;
};

struct RtRowReplyMsg final : Message {
  RtRowReplyMsg() : Message(MsgType::kRtRowReply) {}
  int row = 0;
  RowVec entries;
};

struct RtRowAnnounceMsg final : Message {
  RtRowAnnounceMsg() : Message(MsgType::kRtRowAnnounce) {}
  int row = 0;
  RowVec entries;
};

/// Passive repair: "I found your slot (row, col) empty while routing; do
/// you know anyone for it?"
struct RtEntryRequestMsg final : Message {
  RtEntryRequestMsg() : Message(MsgType::kRtEntryRequest) {}
  int row = 0;
  int col = 0;
};

struct RtEntryReplyMsg final : Message {
  RtEntryReplyMsg() : Message(MsgType::kRtEntryReply) {}
  int row = 0;
  int col = 0;
  NodeDescriptor entry;  // invalid() if unknown
};

/// Nearest-neighbour discovery: ask a node for close-node candidates (its
/// leaf set plus a routing-table sample).
struct NnRequestMsg final : Message {
  NnRequestMsg() : Message(MsgType::kNnRequest) {}
};

struct NnReplyMsg final : Message {
  NnReplyMsg() : Message(MsgType::kNnReply) {}
  CandidateVec candidates;
};

struct AckMsg final : Message {
  AckMsg() : Message(MsgType::kAck) {}
  std::uint64_t hop_seq = 0;
};

/// Graceful departure (an extension beyond the paper, which injects only
/// crashes): the leaver tells its routing-state members directly, so they
/// drop it without the probe-timeout detection delay. Receivers trust it
/// — it comes straight from the departing node.
struct LeaveMsg final : Message {
  LeaveMsg() : Message(MsgType::kLeave) {}
};

}  // namespace mspastry::pastry
