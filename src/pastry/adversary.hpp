#pragma once

#include <cstdint>

#include "pastry/types.hpp"

namespace mspastry::pastry {

struct RoutedMessage;

/// Byzantine behavior hook for a PastryNode. A node with a policy
/// installed consults it at the protocol's interception points: the
/// routing forward path (drop / misroute), leaf-set probe replies, and
/// nearest-neighbour replies (lying). A node without a policy (the
/// default) pays one null test per interception point and behaves
/// exactly as before.
///
/// The hook decides *what* to do; the node implements the mechanics so a
/// policy cannot produce wire-impossible behavior (it can only lie within
/// the message vocabulary honest nodes understand). Policies live in the
/// overlay scenario layer (overlay/adversary.hpp) where they have access
/// to seeded RNG streams; the pastry layer only defines the interface.
class AdversaryPolicy {
 public:
  virtual ~AdversaryPolicy() = default;

  /// Verdict for one routed message about to be forwarded/delivered.
  enum class RouteAction : std::uint8_t {
    kHonest,    ///< route faithfully
    kDrop,      ///< ack upstream (already done by handle()), then devour
    kMisroute,  ///< claim the root if plausible, else forward off-path
  };

  /// Consulted by route() after the honest next hop is computed.
  /// `leaf_covers` says whether this node's leaf set covers the key, i.e.
  /// whether a local root claim would look plausible to the sender.
  virtual RouteAction on_route(const RoutedMessage& m, bool leaf_covers) = 0;

  /// Mutate an outgoing leaf-set probe reply in place (lying about
  /// membership and/or failures). Return true if anything was changed.
  virtual bool corrupt_ls_reply(LeafVec& leaf, FailedVec& failed) = 0;

  /// Mutate an outgoing nearest-neighbour reply in place. Return true if
  /// anything was changed.
  virtual bool corrupt_nn_reply(CandidateVec& candidates) = 0;
};

}  // namespace mspastry::pastry
