#include "pastry/routing_table.hpp"

#include <algorithm>
#include <cassert>

namespace mspastry::pastry {

RoutingTable::RoutingTable(NodeId self, int b) : self_(self), b_(b) {
  assert(b >= 1 && b <= 8);
  grid_.assign(static_cast<std::size_t>(NodeId::digit_count(b)),
               std::vector<std::optional<Entry>>(
                   static_cast<std::size_t>(1 << b)));
}

const RoutingTable::Entry* RoutingTable::get(int row, int col) const {
  if (row < 0 || row >= rows() || col < 0 || col >= cols()) return nullptr;
  const auto& s = grid_[static_cast<std::size_t>(row)]
                       [static_cast<std::size_t>(col)];
  return s ? &*s : nullptr;
}

std::pair<int, int> RoutingTable::slot_of(NodeId id) const {
  const int r = self_.shared_prefix_length(id, b_);
  if (r >= rows()) return {-1, -1};  // identical id
  return {r, static_cast<int>(id.digit(r, b_))};
}

bool RoutingTable::add(const NodeDescriptor& d) {
  assert(d.valid());
  const auto [r, c] = slot_of(d.id);
  if (r < 0) return false;
  auto& s = slot(r, c);
  if (s) return false;
  if (contains(d.addr)) return false;  // already present in another slot
  s = Entry{d, kTimeNever};
  index_[d.addr] = {r, c};
  return true;
}

bool RoutingTable::add_with_rtt(const NodeDescriptor& d, SimDuration rtt,
                                bool pns) {
  assert(d.valid());
  const auto [r, c] = slot_of(d.id);
  if (r < 0) return false;
  auto& s = slot(r, c);
  if (s && s->node.addr == d.addr) {
    s->rtt = rtt;  // refresh measurement of the incumbent
    return true;
  }
  if (contains(d.addr)) return false;  // present in a different slot
  if (!s) {
    s = Entry{d, rtt};
    index_[d.addr] = {r, c};
    return true;
  }
  // Occupied by a different node: PNS replacement if strictly closer or
  // the incumbent was never measured.
  if (pns && (s->rtt == kTimeNever || rtt < s->rtt)) {
    index_.erase(s->node.addr);
    s = Entry{d, rtt};
    index_[d.addr] = {r, c};
    return true;
  }
  return false;
}

void RoutingTable::update_rtt(net::Address a, SimDuration rtt) {
  const auto it = index_.find(a);
  if (it == index_.end()) return;
  slot(it->second.first, it->second.second)->rtt = rtt;
}

bool RoutingTable::remove(net::Address a) {
  const auto it = index_.find(a);
  if (it == index_.end()) return false;
  slot(it->second.first, it->second.second).reset();
  index_.erase(it);
  return true;
}

const RoutingTable::Entry* RoutingTable::find(net::Address a) const {
  const auto it = index_.find(a);
  if (it == index_.end()) return nullptr;
  const auto& s = grid_[static_cast<std::size_t>(it->second.first)]
                       [static_cast<std::size_t>(it->second.second)];
  return s ? &*s : nullptr;
}

RowVec RoutingTable::row_entries(int row) const {
  RowVec out;
  if (row < 0 || row >= rows()) return out;
  for (const auto& s : grid_[static_cast<std::size_t>(row)]) {
    if (s) out.push_back(s->node);
  }
  return out;
}

int RoutingTable::deepest_row() const {
  int deepest = -1;
  for (const auto& [addr, rc] : index_) {
    (void)addr;
    deepest = std::max(deepest, rc.first);
  }
  return deepest;
}

void RoutingTable::for_each(
    const std::function<void(int, int, const Entry&)>& f) const {
  for (int r = 0; r < rows(); ++r) {
    for (int c = 0; c < cols(); ++c) {
      const auto& s = grid_[static_cast<std::size_t>(r)]
                           [static_cast<std::size_t>(c)];
      if (s) f(r, c, *s);
    }
  }
}

}  // namespace mspastry::pastry
