#include "pastry/routing_table.hpp"

#include <cassert>

namespace mspastry::pastry {

RoutingTable::RoutingTable(NodeId self, int b, NodeArena* arena)
    : self_(self), b_(b), arena_(arena) {
  assert(b >= 1 && b <= 8);
  if (arena_ == nullptr) {
    owned_ = std::make_unique<NodeArena>(1 << b);
    arena_ = owned_.get();
  }
  assert(arena_->cols() == (1 << b) && "arena row width must match 2^b");
  rows_.assign(static_cast<std::size_t>(NodeId::digit_count(b)),
               NodeArena::kNullRow);
}

RoutingTable::~RoutingTable() {
  for (const std::uint32_t h : rows_) {
    if (h != NodeArena::kNullRow) arena_->free_row(h);
  }
}

const RoutingTable::Entry* RoutingTable::get(int row, int col) const {
  if (row < 0 || row >= rows() || col < 0 || col >= cols()) return nullptr;
  const std::uint32_t h = rows_[static_cast<std::size_t>(row)];
  if (h == NodeArena::kNullRow) return nullptr;
  const Entry* e = arena_->row(h) + col;
  return e->node.valid() ? e : nullptr;
}

RoutingTable::Entry* RoutingTable::peek(int row, int col) {
  return const_cast<Entry*>(
      static_cast<const RoutingTable*>(this)->get(row, col));
}

RoutingTable::Entry* RoutingTable::ensure(int row, int col) {
  std::uint32_t& h = rows_[static_cast<std::size_t>(row)];
  if (h == NodeArena::kNullRow) h = arena_->alloc_row();
  return arena_->row(h) + col;
}

std::pair<int, int> RoutingTable::slot_of(NodeId id) const {
  const int r = self_.shared_prefix_length(id, b_);
  if (r >= rows()) return {-1, -1};  // identical id
  return {r, static_cast<int>(id.digit(r, b_))};
}

bool RoutingTable::add(const NodeDescriptor& d) {
  assert(d.valid());
  const auto [r, c] = slot_of(d.id);
  if (r < 0) return false;
  if (peek(r, c) != nullptr) return false;
  if (contains(d.addr)) return false;  // already present in another slot
  *ensure(r, c) = Entry{d, kTimeNever};
  ++count_;
  return true;
}

bool RoutingTable::add_with_rtt(const NodeDescriptor& d, SimDuration rtt,
                                bool pns) {
  assert(d.valid());
  const auto [r, c] = slot_of(d.id);
  if (r < 0) return false;
  Entry* s = peek(r, c);
  if (s != nullptr && s->node.addr == d.addr) {
    s->rtt = rtt;  // refresh measurement of the incumbent
    return true;
  }
  if (contains(d.addr)) return false;  // present in a different slot
  if (s == nullptr) {
    *ensure(r, c) = Entry{d, rtt};
    ++count_;
    return true;
  }
  // Occupied by a different node: PNS replacement if strictly closer or
  // the incumbent was never measured.
  if (pns && (s->rtt == kTimeNever || rtt < s->rtt)) {
    *s = Entry{d, rtt};
    return true;
  }
  return false;
}

void RoutingTable::update_rtt(net::Address a, SimDuration rtt) {
  const Entry* e = scan(a);
  if (e != nullptr) const_cast<Entry*>(e)->rtt = rtt;
}

bool RoutingTable::remove(net::Address a) {
  int r = -1;
  int c = -1;
  const Entry* e = scan(a, &r, &c);
  if (e == nullptr) return false;
  *const_cast<Entry*>(e) = Entry{};
  --count_;
  // Release the row once its last entry is gone, so deepest_row() can
  // read occupancy straight off the handle array.
  const std::uint32_t h = rows_[static_cast<std::size_t>(r)];
  const Entry* base = arena_->row(h);
  for (int i = 0; i < cols(); ++i) {
    if (base[i].node.valid()) return true;
  }
  arena_->free_row(h);
  rows_[static_cast<std::size_t>(r)] = NodeArena::kNullRow;
  return true;
}

const RoutingTable::Entry* RoutingTable::scan(net::Address a, int* row_out,
                                              int* col_out) const {
  for (int r = 0; r < rows(); ++r) {
    const std::uint32_t h = rows_[static_cast<std::size_t>(r)];
    if (h == NodeArena::kNullRow) continue;
    const Entry* base = arena_->row(h);
    for (int c = 0; c < cols(); ++c) {
      if (base[c].node.valid() && base[c].node.addr == a) {
        if (row_out != nullptr) *row_out = r;
        if (col_out != nullptr) *col_out = c;
        return base + c;
      }
    }
  }
  return nullptr;
}

RowVec RoutingTable::row_entries(int row) const {
  RowVec out;
  if (row < 0 || row >= rows()) return out;
  const std::uint32_t h = rows_[static_cast<std::size_t>(row)];
  if (h == NodeArena::kNullRow) return out;
  const Entry* base = arena_->row(h);
  for (int c = 0; c < cols(); ++c) {
    if (base[c].node.valid()) out.push_back(base[c].node);
  }
  return out;
}

int RoutingTable::deepest_row() const {
  for (int r = rows() - 1; r >= 0; --r) {
    if (rows_[static_cast<std::size_t>(r)] != NodeArena::kNullRow) return r;
  }
  return -1;
}

void RoutingTable::for_each(
    const std::function<void(int, int, const Entry&)>& f) const {
  for (int r = 0; r < rows(); ++r) {
    const std::uint32_t h = rows_[static_cast<std::size_t>(r)];
    if (h == NodeArena::kNullRow) continue;
    const Entry* base = arena_->row(h);
    for (int c = 0; c < cols(); ++c) {
      if (base[c].node.valid()) f(r, c, base[c]);
    }
  }
}

}  // namespace mspastry::pastry
