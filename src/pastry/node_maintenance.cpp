#include <algorithm>
#include <cassert>

#include "pastry/node.hpp"

namespace mspastry::pastry {

// ---------------------------------------------------------------------------
// Routing-table liveness probing with self-tuned period (Section 4.1)
// ---------------------------------------------------------------------------

void PastryNode::retune() {
  if (!cfg_.self_tuning) {
    trt_local_s_ = to_seconds(cfg_.t_rt_fixed);
    trt_current_s_ = trt_local_s_;
    return;
  }
  const double mu = estimate_failure_rate();
  const double n = estimate_overlay_size();
  trt_local_s_ = selftune::tune_trt(cfg_, mu, n);

  // Median of the gossiped estimates from current routing-state members
  // plus our own (Section 4.1).
  std::vector<double> est;
  est.push_back(trt_local_s_);
  for (const NodeDescriptor& m : leaf_.members()) {
    const auto it = trt_hints_.find(m.addr);
    if (it != trt_hints_.end()) est.push_back(it->second);
  }
  rt_.for_each([&](int, int, const RoutingTable::Entry& e) {
    const auto it = trt_hints_.find(e.node.addr);
    if (it != trt_hints_.end()) est.push_back(it->second);
  });
  const auto mid = est.begin() + static_cast<std::ptrdiff_t>(est.size() / 2);
  std::nth_element(est.begin(), mid, est.end());
  trt_current_s_ = std::clamp(*mid, to_seconds(cfg_.t_rt_min),
                              to_seconds(cfg_.t_rt_max));
}

void PastryNode::rt_scan_tick() {
  retune();
  // Scan more often than the probe period so per-entry due times are hit
  // with little slack; each entry is probed at most once per Trt. The
  // 60 s cap keeps the self-tuner responsive when Trt itself is long.
  const double scan_s = std::clamp(trt_current_s_ / 4.0, 1.0, 60.0);
  rt_scan_timer_ =
      env_.schedule(from_seconds(scan_s), [this] { rt_scan_tick(); });
  const SimTime now = env_.now();
  const SimDuration period = from_seconds(trt_current_s_);
  std::vector<NodeDescriptor> to_probe;
  to_probe.reserve(rt_.entry_count());
  rt_.for_each([&](int, int, const RoutingTable::Entry& e) {
    if (leaf_.contains(e.node.addr)) return;  // covered by the leaf-set
                                              // heartbeat structure
    auto [due_it, inserted] = last_probe_due_.try_emplace(e.node.addr, now);
    if (inserted) return;  // fresh entry: first probe one period from now
    if (now - due_it->second < period) return;  // not due yet
    if (cfg_.suppression) {
      const auto heard = suppress_heard_.find(e.node.addr);
      if (heard != suppress_heard_.end() && now - heard->second < period) {
        // Other traffic replaced this probing cycle (Section 4.1).
        ++counters_.rt_probes_suppressed;
        due_it->second = now;
        return;
      }
    }
    due_it->second = now;
    ++counters_.rt_probes_periodic;
    to_probe.push_back(e.node);
  });
  for (const NodeDescriptor& d : to_probe) {
    // Stagger within the scan interval to avoid probe bursts.
    const SimDuration jitter =
        from_seconds(env_.rng().uniform(0.0, std::min(scan_s * 0.5, 5.0)));
    env_.schedule(jitter, [this, d] {
      if (rt_.contains(d.addr)) send_rt_probe(d);
    });
  }
}

void PastryNode::send_rt_probe(const NodeDescriptor& j) {
  if (rt_probing_.count(j.addr) > 0 || in_failed(j.addr)) return;
  ++counters_.rt_probes_sent;
  trace_node(obs::EventKind::kRtProbeSent, j.addr);
  send(j.addr, make_msg<RtProbeMsg>(env_.pool(), false));
  RtProbeState st;
  st.target = j;
  st.sent_at = env_.now();
  st.timer = env_.schedule(cfg_.t_o,
                           [this, a = j.addr] { on_rt_probe_timeout(a); });
  rt_probing_.emplace(j.addr, std::move(st));
}

void PastryNode::on_rt_probe_timeout(net::Address j) {
  const auto it = rt_probing_.find(j);
  if (it == rt_probing_.end()) return;
  RtProbeState& st = it->second;
  st.timer = kInvalidTimer;
  if (st.retries < cfg_.max_probe_retries) {
    st.retries += 1;
    ++counters_.rt_probes_sent;
    send(j, make_msg<RtProbeMsg>(env_.pool(), false));
    st.timer = env_.schedule(cfg_.t_o, [this, j] { on_rt_probe_timeout(j); });
    return;
  }
  const NodeDescriptor target = st.target;
  rt_probing_.erase(it);
  // Routing-table repair is lazy (periodic + passive), so just drop the
  // node; no announcement.
  mark_faulty(target, /*announce=*/false);
}

// ---------------------------------------------------------------------------
// Distance probing / PNS (Section 4.2)
// ---------------------------------------------------------------------------

std::uint64_t PastryNode::start_distance_session(const NodeDescriptor& target,
                                                 ProbePurpose purpose,
                                                 int probes) {
  assert(probes >= 1);
  if (target.id == self_.id || in_failed(target.addr)) return 0;
  if (purpose == ProbePurpose::kRtCandidate) {
    const auto it = measured_at_.find(target.addr);
    if (it != measured_at_.end() &&
        env_.now() - it->second < cfg_.distance_measurement_ttl) {
      return 0;  // measured recently; gossip will re-offer it later anyway
    }
  }
  // One session per target at a time.
  for (const auto& [id, s] : dist_sessions_) {
    if (s.target.addr == target.addr && s.purpose == purpose) return 0;
  }
  const std::uint64_t id = next_session_id_++;
  DistanceSession s;
  s.target = target;
  s.purpose = purpose;
  s.want = probes;
  dist_sessions_.emplace(id, std::move(s));
  distance_session_step(id);
  return id;
}

void PastryNode::distance_session_step(std::uint64_t session_id) {
  const auto it = dist_sessions_.find(session_id);
  if (it == dist_sessions_.end()) return;
  DistanceSession& s = it->second;
  s.timer = kInvalidTimer;
  if (s.sent < s.want) {
    const std::uint64_t seq = next_probe_seq_++;
    dist_probes_[seq] = OutstandingProbe{session_id, env_.now()};
    auto m = make_msg<DistanceProbeMsg>(env_.pool(), false);
    m->seq = seq;
    ++counters_.distance_probes_sent;
    send(s.target.addr, m);
    s.sent += 1;
    const SimDuration final_wait =
        s.purpose == ProbePurpose::kNearestNeighbour ? cfg_.nn_probe_timeout
                                                     : cfg_.t_o;
    const SimDuration next_in =
        s.sent < s.want ? cfg_.distance_probe_spacing : final_wait;
    s.timer = env_.schedule(next_in,
                            [this, session_id] {
                              distance_session_step(session_id);
                            });
    return;
  }
  finish_distance_session(session_id);
}

void PastryNode::on_distance_reply(net::Address from, std::uint64_t seq) {
  const auto it = dist_probes_.find(seq);
  if (it == dist_probes_.end()) return;
  const OutstandingProbe probe = it->second;
  dist_probes_.erase(it);
  const auto sit = dist_sessions_.find(probe.session);
  if (sit == dist_sessions_.end()) return;
  DistanceSession& s = sit->second;
  if (s.target.addr != from) return;
  const SimDuration rtt = env_.now() - probe.sent_at;
  s.samples.push_back(rtt);
  rtt_[from].sample(rtt);
  if (static_cast<int>(s.samples.size()) == s.want) {
    cancel_timer(s.timer);
    finish_distance_session(probe.session);
  }
}

void PastryNode::finish_distance_session(std::uint64_t session_id) {
  const auto it = dist_sessions_.find(session_id);
  if (it == dist_sessions_.end()) return;
  DistanceSession s = std::move(it->second);
  dist_sessions_.erase(it);
  cancel_timer(s.timer);
  if (s.samples.empty()) {
    // No reply at all: treat as a failed measurement. For the nearest-
    // neighbour walk this counts as "candidate unusable".
    if (s.purpose == ProbePurpose::kNearestNeighbour && joining_) {
      nn_outstanding_ -= 1;
      if (nn_outstanding_ <= 0) nn_measurement_done();
    }
    return;
  }
  std::sort(s.samples.begin(), s.samples.end());
  const SimDuration rtt = s.samples[s.samples.size() / 2];
  on_distance_measured(s.target, rtt, s.purpose);
}

void PastryNode::on_distance_measured(const NodeDescriptor& target,
                                      SimDuration rtt, ProbePurpose purpose) {
  switch (purpose) {
    case ProbePurpose::kRtCandidate:
      consider_for_rt(target, rtt, cfg_.symmetric_probes);
      return;
    case ProbePurpose::kNearestNeighbour:
      if (!joining_) return;
      if (rtt < nn_best_rtt_) {
        nn_best_ = target;
        nn_best_rtt_ = rtt;
      }
      nn_outstanding_ -= 1;
      if (nn_outstanding_ <= 0) nn_measurement_done();
      return;
  }
}

void PastryNode::consider_for_rt(const NodeDescriptor& d, SimDuration rtt,
                                 bool report_symmetric) {
  if (d.id == self_.id || in_failed(d.addr)) return;
  measured_at_[d.addr] = env_.now();
  rtt_[d.addr].sample(rtt);  // seed the RTO estimator too
  rt_.add_with_rtt(d, rtt, cfg_.pns);
  if (report_symmetric) {
    auto m = make_msg<DistanceReportMsg>(env_.pool());
    m->rtt = rtt;
    send(d.addr, m);
  }
}

// ---------------------------------------------------------------------------
// Periodic routing-table maintenance + join-time row announcements
// ---------------------------------------------------------------------------

void PastryNode::rt_maintenance_tick() {
  maintenance_timer_ = env_.schedule(cfg_.rt_maintenance_period,
                                     [this] { rt_maintenance_tick(); });
  // Ask one node per row for its corresponding row; probe what comes back
  // (the handler for kRtRowReply does that) and keep the closer nodes.
  for (int r = 0; r < rt_.rows(); ++r) {
    const auto entries = rt_.row_entries(r);
    if (entries.empty()) continue;
    const NodeDescriptor& pick =
        entries[env_.rng().uniform_index(entries.size())];
    auto m = make_msg<RtRowRequestMsg>(env_.pool());
    m->row = r;
    send(pick.addr, m);
  }
}

void PastryNode::announce_rows() {
  // Section 2: after initializing its routing table, the new node sends
  // row r to every node in that row; receivers probe the unknown entries
  // and adopt the closer ones — gossip that keeps tables near-perfect.
  for (int r = 0; r < rt_.rows(); ++r) {
    auto entries = rt_.row_entries(r);
    if (entries.empty()) continue;
    // One pooled message shared by every destination in the row: the
    // header send() stamps is identical per destination, so all copies
    // alias a single refcounted object instead of cloning per receiver.
    auto m = make_msg<RtRowAnnounceMsg>(env_.pool());
    m->row = r;
    m->entries = entries;
    for (const NodeDescriptor& d : entries) {
      send(d.addr, m);
    }
  }
  // Also measure distances to our own entries so PNS comparisons and RTO
  // seeds have data. The joiner initiates (symmetry-breaking of Section
  // 4.2); peers learn their value from our DistanceReport.
  rt_.for_each([&](int, int, const RoutingTable::Entry& e) {
    if (e.rtt == kTimeNever) {
      start_distance_session(e.node, ProbePurpose::kRtCandidate,
                             cfg_.distance_probe_count);
    }
  });
}

}  // namespace mspastry::pastry
