#include "pastry/leaf_set.hpp"

#include <algorithm>
#include <cassert>

namespace mspastry::pastry {

LeafSet::LeafSet(NodeId self, int l) : self_(self), l_(l) {
  assert(l >= 2 && l % 2 == 0);
}

bool LeafSet::add(const NodeDescriptor& d) {
  assert(d.valid());
  if (d.id == self_) return false;
  const U128 key = cw_from_self(d.id);
  // Find insertion point in clockwise order.
  const auto pos = std::lower_bound(
      members_.begin(), members_.end(), key,
      [this](const NodeDescriptor& m, const U128& k) {
        return cw_from_self(m.id) < k;
      });
  if (pos != members_.end() && pos->id == d.id) {
    if (pos->addr == d.addr) return false;  // already known
    pos->addr = d.addr;  // same id re-announced from a new endpoint
    return true;
  }
  const auto p = static_cast<int>(pos - members_.begin());
  if (size() < l_) {
    members_.insert(pos, d);
    return true;
  }
  // Full: one member must go. With the vector sorted by clockwise
  // distance, the right window is the first l/2 entries and the left
  // window the last l/2, so the evictee is whatever would land just past
  // the right window after insertion. Evicting *before* inserting keeps
  // the vector at l members, so the inline storage never spills.
  const int evict = capacity_per_side();
  if (p == evict) return false;  // d itself falls outside both windows
  if (p < evict) {
    members_.erase(members_.begin() + (evict - 1));
    members_.insert(members_.begin() + p, d);
  } else {
    members_.erase(members_.begin() + evict);
    members_.insert(members_.begin() + (p - 1), d);
  }
  return true;
}

bool LeafSet::remove(net::Address a) {
  const auto it = std::find_if(
      members_.begin(), members_.end(),
      [a](const NodeDescriptor& m) { return m.addr == a; });
  if (it == members_.end()) return false;
  members_.erase(it);
  return true;
}

bool LeafSet::contains(net::Address a) const {
  return find(a).has_value();
}

std::optional<NodeDescriptor> LeafSet::find(net::Address a) const {
  const auto it = std::find_if(
      members_.begin(), members_.end(),
      [a](const NodeDescriptor& m) { return m.addr == a; });
  if (it == members_.end()) return std::nullopt;
  return *it;
}

int LeafSet::left_count() const {
  return std::min(capacity_per_side(), size());
}

int LeafSet::right_count() const {
  return std::min(capacity_per_side(), size());
}

std::optional<NodeDescriptor> LeafSet::right_neighbour() const {
  if (members_.empty()) return std::nullopt;
  return members_.front();
}

std::optional<NodeDescriptor> LeafSet::left_neighbour() const {
  if (members_.empty()) return std::nullopt;
  return members_.back();
}

std::optional<NodeDescriptor> LeafSet::rightmost() const {
  if (members_.empty()) return std::nullopt;
  return members_[static_cast<std::size_t>(right_count() - 1)];
}

std::optional<NodeDescriptor> LeafSet::leftmost() const {
  if (members_.empty()) return std::nullopt;
  return members_[static_cast<std::size_t>(size() - left_count())];
}

bool LeafSet::covers(NodeId k) const {
  if (size() < l_) return true;  // wrapped or still converging; see header
  const NodeId lm = leftmost()->id;
  const NodeId rm = rightmost()->id;
  return lm.clockwise_distance_to(k) <= lm.clockwise_distance_to(rm);
}

std::optional<NodeDescriptor> LeafSet::closest(NodeId k) const {
  std::optional<NodeDescriptor> best;
  NodeId best_id = self_;
  for (const NodeDescriptor& m : members_) {
    if (m.id.closer_to(k, best_id)) {
      best = m;
      best_id = m.id;
    }
  }
  return best;
}

}  // namespace mspastry::pastry
