#include "pastry/message.hpp"

#include <cassert>

#include "pastry/message_pool.hpp"

namespace mspastry::pastry {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kJoinRequest: return "JOIN-REQUEST";
    case MsgType::kJoinReply: return "JOIN-REPLY";
    case MsgType::kLsProbe: return "LS-PROBE";
    case MsgType::kLsProbeReply: return "LS-PROBE-REPLY";
    case MsgType::kHeartbeat: return "HEARTBEAT";
    case MsgType::kRtProbe: return "RT-PROBE";
    case MsgType::kRtProbeReply: return "RT-PROBE-REPLY";
    case MsgType::kDistanceProbe: return "DISTANCE-PROBE";
    case MsgType::kDistanceProbeReply: return "DISTANCE-PROBE-REPLY";
    case MsgType::kDistanceReport: return "DISTANCE-REPORT";
    case MsgType::kRtRowRequest: return "RT-ROW-REQUEST";
    case MsgType::kRtRowReply: return "RT-ROW-REPLY";
    case MsgType::kRtRowAnnounce: return "RT-ROW-ANNOUNCE";
    case MsgType::kRtEntryRequest: return "RT-ENTRY-REQUEST";
    case MsgType::kRtEntryReply: return "RT-ENTRY-REPLY";
    case MsgType::kNnRequest: return "NN-REQUEST";
    case MsgType::kNnReply: return "NN-REPLY";
    case MsgType::kLookup: return "LOOKUP";
    case MsgType::kAck: return "ACK";
    case MsgType::kLeave: return "LEAVE";
  }
  return "?";
}

TrafficClass traffic_class(MsgType t) {
  switch (t) {
    case MsgType::kDistanceProbe:
    case MsgType::kDistanceProbeReply:
    case MsgType::kDistanceReport:
      return TrafficClass::kDistanceProbes;
    case MsgType::kLsProbe:
    case MsgType::kLsProbeReply:
    case MsgType::kHeartbeat:
    case MsgType::kLeave:
      return TrafficClass::kLeafSetTraffic;
    case MsgType::kRtProbe:
    case MsgType::kRtProbeReply:
    case MsgType::kRtRowRequest:
    case MsgType::kRtRowReply:
    case MsgType::kRtEntryRequest:
    case MsgType::kRtEntryReply:
      return TrafficClass::kRtProbes;
    case MsgType::kAck:
      return TrafficClass::kAcksRetransmits;
    case MsgType::kJoinRequest:
    case MsgType::kJoinReply:
    case MsgType::kRtRowAnnounce:
    case MsgType::kNnRequest:
    case MsgType::kNnReply:
      return TrafficClass::kJoin;
    case MsgType::kLookup:
      return TrafficClass::kLookups;
  }
  return TrafficClass::kLookups;
}

const char* traffic_class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kDistanceProbes: return "DistanceProbes";
    case TrafficClass::kLeafSetTraffic: return "LeafsetHeartbeats/Probes";
    case TrafficClass::kRtProbes: return "RTProbes";
    case TrafficClass::kAcksRetransmits: return "Acks+Retransmits";
    case TrafficClass::kJoin: return "Join";
    case TrafficClass::kLookups: return "Lookups";
  }
  return "?";
}

const char* wire_status_name(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kTruncated: return "truncated";
    case WireStatus::kBadMagic: return "bad-magic";
    case WireStatus::kBadVersion: return "bad-version";
    case WireStatus::kBadType: return "bad-type";
    case WireStatus::kBadLength: return "bad-length";
    case WireStatus::kOversizeVec: return "oversize-vec";
    case WireStatus::kTrailingBytes: return "trailing-bytes";
    case WireStatus::kUnknownAddress: return "unknown-address";
    case WireStatus::kAppData: return "app-data";
    case WireStatus::kOversizeFrame: return "oversize-frame";
  }
  return "?";
}

MessagePtr clone_message(const Message& m, MessagePool& pool) {
  // Every concrete message type is `final` and copy-constructible, so a
  // switch on the wire type recovers the dynamic type exactly (cheaper
  // and more explicit than a virtual clone on the hot cross-shard path).
  switch (m.type) {
    case MsgType::kJoinRequest:
      return pool.make<JoinRequestMsg>(static_cast<const JoinRequestMsg&>(m));
    case MsgType::kJoinReply:
      return pool.make<JoinReplyMsg>(static_cast<const JoinReplyMsg&>(m));
    case MsgType::kLsProbe:
    case MsgType::kLsProbeReply:
      return pool.make<LsProbeMsg>(static_cast<const LsProbeMsg&>(m));
    case MsgType::kHeartbeat:
      return pool.make<HeartbeatMsg>(static_cast<const HeartbeatMsg&>(m));
    case MsgType::kRtProbe:
    case MsgType::kRtProbeReply:
      return pool.make<RtProbeMsg>(static_cast<const RtProbeMsg&>(m));
    case MsgType::kDistanceProbe:
    case MsgType::kDistanceProbeReply:
      return pool.make<DistanceProbeMsg>(
          static_cast<const DistanceProbeMsg&>(m));
    case MsgType::kDistanceReport:
      return pool.make<DistanceReportMsg>(
          static_cast<const DistanceReportMsg&>(m));
    case MsgType::kRtRowRequest:
      return pool.make<RtRowRequestMsg>(
          static_cast<const RtRowRequestMsg&>(m));
    case MsgType::kRtRowReply:
      return pool.make<RtRowReplyMsg>(static_cast<const RtRowReplyMsg&>(m));
    case MsgType::kRtRowAnnounce:
      return pool.make<RtRowAnnounceMsg>(
          static_cast<const RtRowAnnounceMsg&>(m));
    case MsgType::kRtEntryRequest:
      return pool.make<RtEntryRequestMsg>(
          static_cast<const RtEntryRequestMsg&>(m));
    case MsgType::kRtEntryReply:
      return pool.make<RtEntryReplyMsg>(
          static_cast<const RtEntryReplyMsg&>(m));
    case MsgType::kNnRequest:
      return pool.make<NnRequestMsg>(static_cast<const NnRequestMsg&>(m));
    case MsgType::kNnReply:
      return pool.make<NnReplyMsg>(static_cast<const NnReplyMsg&>(m));
    case MsgType::kLookup: {
      const auto& lookup = static_cast<const LookupMsg&>(m);
      auto clone = pool.make<LookupMsg>(lookup);
      if (lookup.app_data != nullptr) {
        // The copy constructor shared the app_data pointer — a non-atomic
        // refcount that must not be touched from the destination shard.
        // Replace it with a payload-owned deep copy, or refuse.
        const auto* cloneable =
            dynamic_cast<const CloneableAppData*>(lookup.app_data.get());
        if (cloneable == nullptr) {
          clone->app_data = nullptr;  // drop the shared ref before throwing
          throw CodecError(WireStatus::kAppData,
                           "clone_message: app_data payload does not "
                           "implement CloneableAppData");
        }
        clone->app_data = cloneable->clone_into(pool);
      }
      return clone;
    }
    case MsgType::kAck:
      return pool.make<AckMsg>(static_cast<const AckMsg&>(m));
    case MsgType::kLeave:
      return pool.make<LeaveMsg>(static_cast<const LeaveMsg&>(m));
  }
  throw CodecError(
      WireStatus::kBadType,
      "clone_message: message type byte outside the MsgType enum");
}

}  // namespace mspastry::pastry
