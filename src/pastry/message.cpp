#include "pastry/message.hpp"

namespace mspastry::pastry {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kJoinRequest: return "JOIN-REQUEST";
    case MsgType::kJoinReply: return "JOIN-REPLY";
    case MsgType::kLsProbe: return "LS-PROBE";
    case MsgType::kLsProbeReply: return "LS-PROBE-REPLY";
    case MsgType::kHeartbeat: return "HEARTBEAT";
    case MsgType::kRtProbe: return "RT-PROBE";
    case MsgType::kRtProbeReply: return "RT-PROBE-REPLY";
    case MsgType::kDistanceProbe: return "DISTANCE-PROBE";
    case MsgType::kDistanceProbeReply: return "DISTANCE-PROBE-REPLY";
    case MsgType::kDistanceReport: return "DISTANCE-REPORT";
    case MsgType::kRtRowRequest: return "RT-ROW-REQUEST";
    case MsgType::kRtRowReply: return "RT-ROW-REPLY";
    case MsgType::kRtRowAnnounce: return "RT-ROW-ANNOUNCE";
    case MsgType::kRtEntryRequest: return "RT-ENTRY-REQUEST";
    case MsgType::kRtEntryReply: return "RT-ENTRY-REPLY";
    case MsgType::kNnRequest: return "NN-REQUEST";
    case MsgType::kNnReply: return "NN-REPLY";
    case MsgType::kLookup: return "LOOKUP";
    case MsgType::kAck: return "ACK";
    case MsgType::kLeave: return "LEAVE";
  }
  return "?";
}

TrafficClass traffic_class(MsgType t) {
  switch (t) {
    case MsgType::kDistanceProbe:
    case MsgType::kDistanceProbeReply:
    case MsgType::kDistanceReport:
      return TrafficClass::kDistanceProbes;
    case MsgType::kLsProbe:
    case MsgType::kLsProbeReply:
    case MsgType::kHeartbeat:
    case MsgType::kLeave:
      return TrafficClass::kLeafSetTraffic;
    case MsgType::kRtProbe:
    case MsgType::kRtProbeReply:
    case MsgType::kRtRowRequest:
    case MsgType::kRtRowReply:
    case MsgType::kRtEntryRequest:
    case MsgType::kRtEntryReply:
      return TrafficClass::kRtProbes;
    case MsgType::kAck:
      return TrafficClass::kAcksRetransmits;
    case MsgType::kJoinRequest:
    case MsgType::kJoinReply:
    case MsgType::kRtRowAnnounce:
    case MsgType::kNnRequest:
    case MsgType::kNnReply:
      return TrafficClass::kJoin;
    case MsgType::kLookup:
      return TrafficClass::kLookups;
  }
  return TrafficClass::kLookups;
}

const char* traffic_class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kDistanceProbes: return "DistanceProbes";
    case TrafficClass::kLeafSetTraffic: return "LeafsetHeartbeats/Probes";
    case TrafficClass::kRtProbes: return "RTProbes";
    case TrafficClass::kAcksRetransmits: return "Acks+Retransmits";
    case TrafficClass::kJoin: return "Join";
    case TrafficClass::kLookups: return "Lookups";
  }
  return "?";
}

}  // namespace mspastry::pastry
