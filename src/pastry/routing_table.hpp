#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/node_id.hpp"
#include "common/sim_time.hpp"
#include "pastry/node_arena.hpp"
#include "pastry/types.hpp"

namespace mspastry::pastry {

/// The routing-table slot (row, col) that `candidate` occupies in a table
/// owned by `owner`: row = shared prefix length, col = candidate's next
/// digit. Returns row == -1 when the ids are identical.
inline std::pair<int, int> slot_for(NodeId owner, NodeId candidate, int b) {
  const int r = owner.shared_prefix_length(candidate, b);
  if (r >= NodeId::digit_count(b)) return {-1, -1};
  return {r, static_cast<int>(candidate.digit(r, b))};
}

/// A Pastry routing table: 128/b rows by 2^b columns. The entry at (r, c)
/// is a node whose identifier shares the first r digits with the local
/// identifier and has digit r equal to c. Each entry remembers the
/// measured round-trip delay to the node (kTimeNever if not yet measured)
/// so proximity neighbour selection can compare candidates.
///
/// Rows live in a NodeArena (see node_arena.hpp): the table itself holds
/// only a 128/b-wide array of row handles, allocating a row on first
/// insert and releasing it when its last entry is removed. Only
/// ~log_2^b(N) rows are ever populated, so per-node footprint is a few
/// rows instead of the full grid, and at N = 10,000 the difference is
/// the bulk of simulation RSS. Address-keyed lookups scan the populated
/// rows (a few cache lines) instead of consulting a per-node hash map.
///
/// As with LeafSet, this is pure state: insertion policy (PNS, the
/// heard-directly rule) is enforced by PastryNode.
class RoutingTable {
 public:
  using Entry = RouteEntry;

  /// `arena` is the row slab shared by every node of a simulation (its
  /// column width must be 2^b); pass nullptr — tests, standalone use —
  /// and the table owns a private arena.
  RoutingTable(NodeId self, int b, NodeArena* arena = nullptr);
  ~RoutingTable();

  RoutingTable(const RoutingTable&) = delete;
  RoutingTable& operator=(const RoutingTable&) = delete;

  int rows() const { return static_cast<int>(rows_.size()); }
  int cols() const { return 1 << b_; }
  NodeId self() const { return self_; }

  /// Entry at (row, col), or nullptr if empty. The column matching the
  /// local id's digit in each row is always empty (it denotes the local
  /// node itself).
  const Entry* get(int row, int col) const;

  /// The slot a given id belongs in: (shared-prefix row, next digit).
  /// Returns row == -1 for the local id itself.
  std::pair<int, int> slot_of(NodeId id) const;

  /// Fill the slot for `d` if it is empty. Never replaces. Returns true
  /// if inserted. Used for join-time seeding and passive repair, where no
  /// distance measurement is available yet.
  bool add(const NodeDescriptor& d);

  /// Insert with a measured RTT. If the slot is occupied: replace when
  /// `pns` and the new node is closer (or the incumbent has no
  /// measurement), else keep the incumbent. Refreshing the RTT of the
  /// incumbent itself always succeeds. Returns true if the table changed.
  bool add_with_rtt(const NodeDescriptor& d, SimDuration rtt, bool pns);

  /// Update the measured RTT of an existing entry (no-op otherwise).
  void update_rtt(net::Address a, SimDuration rtt);

  bool remove(net::Address a);
  bool contains(net::Address a) const { return scan(a) != nullptr; }

  /// Entry holding address `a`, or nullptr.
  const Entry* find(net::Address a) const { return scan(a); }

  /// All non-empty entries of one row. Inline-capacity vector: a row has
  /// at most 2^b - 1 entries, so this never heap-allocates for b <= 4.
  RowVec row_entries(int row) const;

  /// Deepest row with at least one entry; -1 if the table is empty.
  int deepest_row() const;

  std::size_t entry_count() const { return count_; }

  /// Visit every entry: f(row, col, entry).
  void for_each(
      const std::function<void(int, int, const Entry&)>& f) const;

 private:
  /// Occupied slot at (row, col), or nullptr (row missing or slot empty).
  Entry* peek(int row, int col);

  /// Slot at (row, col) for writing, allocating the row if needed.
  Entry* ensure(int row, int col);

  /// Entry holding `a`, scanning populated rows; reports its slot.
  const Entry* scan(net::Address a, int* row_out = nullptr,
                    int* col_out = nullptr) const;

  NodeId self_;
  int b_;
  NodeArena* arena_;                 // shared, or owned_ below
  std::unique_ptr<NodeArena> owned_;
  std::vector<std::uint32_t> rows_;  // per-row handle or NodeArena::kNullRow
  std::size_t count_ = 0;
};

}  // namespace mspastry::pastry
