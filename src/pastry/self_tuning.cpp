#include "pastry/self_tuning.hpp"

#include <algorithm>
#include <cmath>

namespace mspastry::pastry {

double FailureRateEstimator::estimate(SimTime now,
                                      std::size_t routing_state_size) const {
  if (routing_state_size == 0 || times_.empty()) return 0.0;
  const double m = static_cast<double>(routing_state_size);
  // With k < K observations, compute as if a failure happened right now
  // (Section 4.1), which biases the estimate upward — the safe direction.
  double k = static_cast<double>(times_.size()) - 1.0;
  SimTime last = times_.back();
  if (times_.size() < static_cast<std::size_t>(capacity_) || last < now) {
    k += 1.0;
    last = now;
  }
  if (k <= 0.0) return 0.0;
  // A correlated failure burst can land every recorded time in the same
  // event-loop tick, collapsing the span to zero exactly when probing
  // should be fastest. Clamp to the clock resolution so a burst drives
  // the estimate up (the safe direction) instead of to zero.
  const double span = std::max(to_seconds(last - times_.front()),
                               to_seconds(microseconds(1)));
  return k / (m * span);
}

namespace selftune {

double p_fault(double T_seconds, double mu) {
  const double x = T_seconds * mu;
  if (x <= 0.0) return 0.0;
  if (x < 1e-8) return x / 2.0;  // series expansion, avoids cancellation
  return 1.0 - (1.0 - std::exp(-x)) / x;
}

double expected_hops(double n, int b) {
  if (n < 2.0) return 1.0;
  const double base = static_cast<double>(1 << b);
  const double h = (base - 1.0) / base * (std::log(n) / std::log(base));
  return std::max(1.0, h);
}

double tune_trt(const Config& cfg, double mu, double n) {
  const double t_min = to_seconds(cfg.t_rt_min);
  const double t_max = to_seconds(cfg.t_rt_max);
  if (mu <= 0.0) return t_max;  // nothing ever fails: probe rarely

  const double detect = to_seconds(cfg.probe_detect_time());
  const double h = expected_hops(n, cfg.b);
  const double p_ls = p_fault(to_seconds(cfg.t_ls) + detect, mu);
  const double survive_target = 1.0 - cfg.target_raw_loss;
  const double survive_ls = 1.0 - p_ls;
  if (h <= 1.0) {
    // Routes are a single (leaf-set) hop: routing-table probing cannot
    // affect the raw loss rate, so probe as rarely as allowed.
    return t_max;
  }
  if (survive_ls <= survive_target) {
    // The leaf-set hop alone exceeds the loss budget: no Trt can reach
    // the target; probe as fast as allowed (the conservative choice).
    return t_min;
  }
  // Per-routing-hop fault budget.
  const double per_hop =
      1.0 - std::pow(survive_target / survive_ls, 1.0 / (h - 1.0));

  // Pf(Trt + detect, mu) is increasing in Trt: bisect.
  double lo = t_min;
  double hi = t_max;
  if (p_fault(hi + detect, mu) <= per_hop) return t_max;
  if (p_fault(lo + detect, mu) >= per_hop) return t_min;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (p_fault(mid + detect, mu) < per_hop) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace selftune

}  // namespace mspastry::pastry
