#pragma once

#include <optional>

#include "common/inplace_callback.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "pastry/message.hpp"
#include "pastry/message_pool.hpp"
#include "pastry/types.hpp"
#include "sim/simulator.hpp"

namespace mspastry::obs {
class FlightRecorder;
}

namespace mspastry::pastry {

struct LookupMsg;
class NodeArena;

/// Everything a PastryNode needs from the outside world: a clock, timers,
/// a way to send messages, randomness, and upcall hooks. The overlay
/// driver implements this on top of the simulator and network; tests can
/// implement it directly to drive a node step by step.
class Env {
 public:
  virtual ~Env() = default;

  virtual SimTime now() const = 0;

  /// Schedule a callback after `delay`. Callbacks scheduled by a node must
  /// never fire after the node is destroyed; implementations guard this.
  /// The callback type is allocation-free up to kEnvCallbackCapacity
  /// bytes of captures; keep node timer lambdas small.
  virtual TimerId schedule(SimDuration delay, InplaceCallback fn) = 0;
  virtual void cancel(TimerId id) = 0;

  /// Transmit a message to a network address. The implementation stamps
  /// nothing: the node fills in sender/hints before calling.
  virtual void send(net::Address to, MessagePtr msg) = 0;

  /// An adversarial node "transmits" a message it actually devours: the
  /// network accounts for it as sent + adversarially dropped (so the
  /// packet identity stays exact) but never schedules delivery. Default
  /// no-op: environments without a network (unit-test mocks) need no
  /// accounting.
  virtual void devour(net::Address to, MessagePtr msg) {
    (void)to;
    (void)msg;
  }

  /// The slab pool all of this node's messages are allocated from. Owned
  /// by the driver and shared by every node of a simulation; must outlive
  /// all messages in flight.
  virtual MessagePool& pool() = 0;

  virtual Rng& rng() = 0;

  /// Row slab for this node's routing table, shared by every node of a
  /// simulation so churn recycles rows (see NodeArena). May be nullptr
  /// (tests, standalone nodes): the table then owns a private arena.
  virtual NodeArena* routing_arena() { return nullptr; }

  /// A fresh bootstrap node for (re)starting a join. May be empty if the
  /// node is supposed to be the first in the overlay.
  virtual std::optional<NodeDescriptor> bootstrap_candidate() = 0;

  /// This node's flight recorder, or nullptr when observability is off
  /// (the default). The node caches the pointer at construction; the
  /// disabled path costs one null test per would-be event.
  virtual obs::FlightRecorder* recorder() { return nullptr; }

  // --- Upcalls ----------------------------------------------------------

  /// A lookup reached this node as the root and the node is active: the
  /// application-level delivery of Figure 2.
  virtual void on_deliver(const LookupMsg& m) = 0;

  /// A lookup is about to be forwarded to `next` (the forward() upcall of
  /// the structured-overlay common API). Return true to consume the
  /// message here instead of forwarding — application-level multicast
  /// (Scribe) uses this to splice reverse-path trees.
  virtual bool on_forward(const LookupMsg& m, const NodeDescriptor& next) {
    (void)m;
    (void)next;
    return false;
  }

  /// The node completed the join protocol and became active.
  virtual void on_activated() {}

  /// The node's failure detector marked `victim` faulty (used by the
  /// oracle to count false positives).
  virtual void on_marked_faulty(net::Address victim) { (void)victim; }

  /// The node's leaf-set right neighbour changed (nullopt: leaf set has
  /// no clockwise member). Fired only on actual changes; the driver feeds
  /// it to the oracle's incremental ring-consistency check.
  virtual void on_right_neighbour(const std::optional<NodeDescriptor>& right) {
    (void)right;
  }
};

}  // namespace mspastry::pastry
