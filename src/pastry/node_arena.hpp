#pragma once

// Slab arena for per-node routing state. A Pastry routing table is
// 128/b rows by 2^b columns but holds only ~(2^b - 1) * log_2^b(N)
// entries, so materialising the full grid per node costs ~20 KB of
// mostly-empty slots — at N = 10,000 that is hundreds of megabytes of
// dead weight (and page-faulted RSS) before a single lookup runs. The
// arena slab-allocates rows on demand instead, following the
// message_pool approach: chunked pointer-stable storage, free-list
// reuse, and one arena shared by every node of a simulation so churn
// recycles rows instead of growing the heap.

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/sim_time.hpp"
#include "pastry/types.hpp"

namespace mspastry::pastry {

/// One routing-table slot. An invalid descriptor marks an empty slot, so
/// a row needs no separate occupancy word and value-initialisation of a
/// chunk yields all-empty rows.
struct RouteEntry {
  NodeDescriptor node;
  SimDuration rtt = kTimeNever;  ///< measured RTT; kTimeNever = unknown
};

/// Allocates fixed-width rows of RouteEntry (width = 2^b columns, fixed
/// per arena since every node of a simulation shares one `b`). Rows are
/// identified by dense uint32 handles; storage is chunked so row
/// pointers stay valid across growth. Freed rows are scrubbed back to
/// empty and reused LIFO.
class NodeArena {
 public:
  static constexpr std::uint32_t kNullRow = 0xffffffffu;

  explicit NodeArena(int cols) : cols_(cols) { assert(cols >= 2); }

  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  int cols() const { return cols_; }

  std::uint32_t alloc_row() {
    if (free_.empty()) grow_chunk();
    const std::uint32_t h = free_.back();
    free_.pop_back();
    ++in_use_;
    return h;
  }

  void free_row(std::uint32_t h) {
    RouteEntry* r = row(h);
    for (int c = 0; c < cols_; ++c) r[c] = RouteEntry{};
    free_.push_back(h);
    --in_use_;
  }

  RouteEntry* row(std::uint32_t h) {
    return chunks_[h / kRowsPerChunk].get() +
           static_cast<std::size_t>(h % kRowsPerChunk) *
               static_cast<std::size_t>(cols_);
  }
  const RouteEntry* row(std::uint32_t h) const {
    return const_cast<NodeArena*>(this)->row(h);
  }

  // Telemetry for the scale bench: live rows, high-water reservation.
  std::size_t rows_in_use() const { return in_use_; }
  std::size_t rows_reserved() const {
    return chunks_.size() * kRowsPerChunk;
  }
  std::size_t bytes_reserved() const {
    return rows_reserved() * static_cast<std::size_t>(cols_) *
           sizeof(RouteEntry);
  }

 private:
  static constexpr std::uint32_t kRowsPerChunk = 64;

  void grow_chunk() {
    const auto base =
        static_cast<std::uint32_t>(chunks_.size()) * kRowsPerChunk;
    chunks_.push_back(std::make_unique<RouteEntry[]>(
        static_cast<std::size_t>(kRowsPerChunk) *
        static_cast<std::size_t>(cols_)));
    free_.reserve(free_.size() + kRowsPerChunk);
    // Push descending so allocation proceeds ascending (chunk locality).
    for (std::uint32_t i = kRowsPerChunk; i > 0; --i) {
      free_.push_back(base + i - 1);
    }
  }

  int cols_;
  std::size_t in_use_ = 0;
  std::vector<std::unique_ptr<RouteEntry[]>> chunks_;
  std::vector<std::uint32_t> free_;
};

}  // namespace mspastry::pastry
