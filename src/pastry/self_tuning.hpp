#pragma once

#include <cstddef>
#include <deque>

#include "common/sim_time.hpp"
#include "pastry/config.hpp"

namespace mspastry::pastry {

/// Estimator of the node failure rate mu (failures per node per second),
/// Section 4.1: a node with M unique nodes in its routing state that
/// observes failures at rate mu should see K failures in time K/(M*mu).
/// Each node remembers the times of the last K failures it observed; a
/// node inserts its own join time into the history when it joins, and if
/// only k < K failures have been seen the estimate is computed as if one
/// more failure happened right now.
class FailureRateEstimator {
 public:
  explicit FailureRateEstimator(int history) : capacity_(history) {}

  /// Record that the node joined (seeds the history with the join time).
  void record_join(SimTime now) { push(now); }

  /// Record an observed failure of a routing-state member.
  void record_failure(SimTime now) { push(now); }

  /// Estimate mu given the current routing-state size M and current time.
  double estimate(SimTime now, std::size_t routing_state_size) const;

  std::size_t observed_failures() const { return times_.size(); }

 private:
  void push(SimTime t) {
    times_.push_back(t);
    while (times_.size() > static_cast<std::size_t>(capacity_)) {
      times_.pop_front();
    }
  }

  int capacity_;
  std::deque<SimTime> times_;
};

/// The self-tuning math of Section 4.1.
///
/// The probability of forwarding to a faulty node at a hop whose failure
/// detector needs at most T seconds to notice a fault is
///   Pf(T, mu) = 1 - (1 - e^{-T mu}) / (T mu)
/// and with h = (2^b - 1)/2^b * log_{2^b} N expected hops (last hop via
/// the leaf set, the rest via the routing table) the raw loss rate is
///   Lr = 1 - (1 - Pf(Tls + (r+1)To, mu)) * (1 - Pf(Trt + (r+1)To, mu))^(h-1).
/// tune_trt inverts this: it returns the largest Trt that keeps the raw
/// loss rate at or below the target.
namespace selftune {

/// Pf(T, mu): probability a node that failed at a uniform time within the
/// detection window is still undetected when a message is forwarded to it.
double p_fault(double T_seconds, double mu);

/// Expected overlay route hops for an overlay of size N with parameter b.
double expected_hops(double n, int b);

/// Solve for Trt (seconds). Returns a value clamped to [t_rt_min,
/// t_rt_max] from cfg. `mu` is failures/node/second, `n` the estimated
/// overlay size.
double tune_trt(const Config& cfg, double mu, double n);

}  // namespace selftune

}  // namespace mspastry::pastry
