#include <algorithm>
#include <cassert>

#include "pastry/node.hpp"

namespace mspastry::pastry {

void PastryNode::join(NodeDescriptor bootstrap) {
  assert(!active_ && !joining_);
  assert(bootstrap.valid());
  joining_ = true;
  join_started_ = env_.now();
  ++counters_.joins_started;
  trace_node(obs::EventKind::kJoinStart, bootstrap.addr, join_epoch_ + 1);
  fail_est_.record_join(env_.now());
  join_retry_timer_ =
      env_.schedule(cfg_.join_retry, [this] { on_join_retry(); });
  start_join(bootstrap);
}

void PastryNode::start_join(const NodeDescriptor& bootstrap) {
  ++join_epoch_;
  join_reply_seen_ = false;
  nn_visited_.clear();
  nn_iteration_ = 0;
  nn_current_ = NodeDescriptor{};
  nn_current_rtt_ = kTimeNever;
  nn_best_ = NodeDescriptor{};
  nn_best_rtt_ = kTimeNever;
  nn_outstanding_ = 1;
  nn_visited_.insert(bootstrap.addr);
  // Measure the bootstrap itself first (single probe, Section 4.2: the
  // nearest-neighbour walk uses one sample per candidate).
  if (start_distance_session(bootstrap, ProbePurpose::kNearestNeighbour,
                             1) == 0) {
    // Could not start (e.g. marked failed): fall back to joining via it.
    nn_current_ = bootstrap;
    send_join_request();
  }
}

void PastryNode::nn_request(const NodeDescriptor& target) {
  send(target.addr, make_msg<NnRequestMsg>(env_.pool()));
  // If the reply never arrives (loss or death), push on with what we have.
  const std::uint64_t epoch = join_epoch_;
  const int iter = nn_iteration_;
  env_.schedule(2 * cfg_.t_o, [this, epoch, iter] {
    if (joining_ && join_epoch_ == epoch && nn_iteration_ == iter &&
        nn_outstanding_ == 0) {
      send_join_request();
    }
  });
}

void PastryNode::handle_nn_reply(const NnReplyMsg& m) {
  if (!joining_ || nn_outstanding_ > 0) return;
  // Sample unvisited candidates and measure each with a single probe.
  std::vector<NodeDescriptor> candidates;
  candidates.reserve(m.candidates.size());
  for (const NodeDescriptor& d : m.candidates) {
    if (d.id == self_.id || nn_visited_.count(d.addr) > 0 ||
        in_failed(d.addr)) {
      continue;
    }
    candidates.push_back(d);
  }
  if (candidates.size() > static_cast<std::size_t>(cfg_.nn_sample)) {
    // Uniform sample without replacement.
    for (std::size_t i = 0; i < static_cast<std::size_t>(cfg_.nn_sample);
         ++i) {
      const std::size_t j =
          i + env_.rng().uniform_index(candidates.size() - i);
      std::swap(candidates[i], candidates[j]);
    }
    candidates.resize(static_cast<std::size_t>(cfg_.nn_sample));
  }
  if (candidates.empty()) {
    send_join_request();
    return;
  }
  nn_best_ = NodeDescriptor{};
  nn_best_rtt_ = kTimeNever;
  nn_outstanding_ = 0;
  for (const NodeDescriptor& d : candidates) {
    nn_visited_.insert(d.addr);
    if (start_distance_session(d, ProbePurpose::kNearestNeighbour, 1) != 0) {
      nn_outstanding_ += 1;
    }
  }
  if (nn_outstanding_ == 0) send_join_request();
}

void PastryNode::nn_measurement_done() {
  if (!joining_) return;
  nn_outstanding_ = 0;
  if (nn_best_.valid() && nn_best_rtt_ < nn_current_rtt_) {
    nn_current_ = nn_best_;
    nn_current_rtt_ = nn_best_rtt_;
    nn_iteration_ += 1;
    if (nn_iteration_ >= cfg_.nn_max_iterations) {
      send_join_request();
      return;
    }
    nn_request(nn_current_);
    return;
  }
  send_join_request();
}

void PastryNode::send_join_request() {
  if (!joining_ || active_) return;
  if (!nn_current_.valid()) {
    // Nothing reachable: wait for the retry timer to restart the join.
    return;
  }
  auto m = make_msg<JoinRequestMsg>(env_.pool());
  m->key = self_.id;
  m->joiner = self_;
  m->join_epoch = join_epoch_;
  m->wants_ack = cfg_.per_hop_acks;
  m->trace_id = rec_ != nullptr ? rec_->sample_join(join_epoch_) : 0;
  trace_path(obs::EventKind::kJoinRequestSent, m->trace_id, nn_current_.addr,
             0, join_epoch_);
  // Send through forward() so the transmission is ack-protected: if the
  // seed died since we measured it, the ack timeout restarts the join
  // immediately instead of stalling until the retry timer.
  forward(m, nn_current_, {});
}

void PastryNode::handle_join_reply(const JoinReplyMsg& m) {
  if (!joining_ || active_ || m.join_epoch != join_epoch_) return;
  if (join_reply_seen_) return;  // duplicate (retransmitted join request)
  join_reply_seen_ = true;
  trace_node(obs::EventKind::kJoinReplyRecv, m.sender.addr, m.join_epoch);
  // Seed the routing table from the rows gathered along the join route.
  for (const auto& [row, entries] : m.rows) {
    (void)row;
    for (const NodeDescriptor& d : entries) {
      if (d.id == self_.id || in_failed(d.addr)) continue;
      rt_.add(d);
    }
  }
  // The root's leaf set members (and the root itself, heard directly) are
  // this node's leaf-set candidates: probe them all; activation happens
  // in done_probing once every reply is in and the leaf set is complete.
  ++counters_.ls_probes_join;
  probe(m.sender);
  for (const NodeDescriptor& d : m.leaf_set) {
    if (d.id == self_.id || in_failed(d.addr)) continue;
    ++counters_.ls_probes_join;
    probe(d);
  }
}

void PastryNode::on_join_retry() {
  join_retry_timer_ = kInvalidTimer;
  if (active_ || !joining_) return;
  // The join stalled (dead seed, lost reply, ...): restart from a fresh
  // bootstrap node.
  for (auto& [a, p] : ls_probing_) cancel_timer(p.timer);
  ls_probing_.clear();
  failed_.clear();
  join_retry_timer_ =
      env_.schedule(cfg_.join_retry, [this] { on_join_retry(); });
  const auto bootstrap = env_.bootstrap_candidate();
  if (!bootstrap || bootstrap->id == self_.id) return;  // try again later
  trace_node(obs::EventKind::kJoinRestart, bootstrap->addr, join_epoch_ + 1);
  start_join(*bootstrap);
}

}  // namespace mspastry::pastry
