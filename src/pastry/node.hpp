#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "pastry/adversary.hpp"
#include "pastry/config.hpp"
#include "pastry/env.hpp"
#include "pastry/leaf_set.hpp"
#include "pastry/message.hpp"
#include "pastry/routing_table.hpp"
#include "pastry/rtt_estimator.hpp"
#include "pastry/self_tuning.hpp"
#include "pastry/types.hpp"

namespace mspastry::pastry {

/// One MSPastry overlay node: Figure 2's consistent-routing state machine
/// plus the dependability and performance machinery of Sections 3.2–4.2
/// (per-hop acks with aggressive retransmission, structured heartbeats,
/// self-tuned routing-table probing, PNS with constrained gossiping,
/// suppression, symmetric distance probes).
///
/// A node is created per *session*. It talks to the world exclusively
/// through Env; the same class runs under the simulator and in the example
/// applications.
class PastryNode {
 public:
  PastryNode(const Config& cfg, NodeDescriptor self, Env& env,
             Counters& counters);
  ~PastryNode();

  PastryNode(const PastryNode&) = delete;
  PastryNode& operator=(const PastryNode&) = delete;

  /// Become the first node of a new overlay: active immediately.
  void bootstrap();

  /// Join an existing overlay via a bootstrap node (any active node). Runs
  /// nearest-neighbour seed discovery, then the Figure-2 join protocol.
  void join(NodeDescriptor bootstrap);

  /// Gracefully depart (extension; the paper injects only crashes):
  /// notify every routing-state member so they drop this node without
  /// waiting for failure detection. The caller still tears the node down
  /// afterwards; the notice is fire-and-forget.
  void leave();

  /// Network ingress: called for every packet addressed to this node.
  void handle(net::Address from, const MessagePtr& msg);

  /// Application-level lookup primitive: route a message to the root of
  /// `key`. `lookup_id`, `payload` and `app_data` are opaque to the
  /// overlay.
  void lookup(NodeId key, std::uint64_t lookup_id, std::uint64_t payload = 0,
              bool wants_ack = true, net::PacketPtr app_data = nullptr);

  // --- Introspection (tests, oracle, applications) ----------------------

  bool active() const { return active_; }
  const NodeDescriptor& descriptor() const { return self_; }
  const LeafSet& leaf_set() const { return leaf_; }
  const RoutingTable& routing_table() const { return rt_; }
  const Config& config() const { return cfg_; }

  /// The routing-table probe period currently in force (median of
  /// gossiped estimates), in seconds.
  double current_trt_seconds() const { return trt_current_s_; }

  /// This node's own local self-tuning estimate, in seconds.
  double local_trt_seconds() const { return trt_local_s_; }

  /// Number of unique nodes in the routing state (leaf set + table).
  std::size_t routing_state_size() const;

  /// Overlay-size estimate from leaf-set identifier density (Section 4.1).
  double estimate_overlay_size() const;

  /// True if this node believes it is the current root of `key` (i.e. a
  /// lookup for the key would be delivered locally). Applications use
  /// this for replica placement and repair decisions.
  bool believes_root_of(NodeId key) const;

  /// Failure-rate estimate mu (failures/node/second).
  double estimate_failure_rate() const;

  /// True if `a` is in this node's failed set (Figure 2's failedi). The
  /// chaos oracle uses this to distinguish rerouting around a slow node
  /// from condemning it.
  bool considers_failed(net::Address a) const { return in_failed(a); }

  /// True while `a` is excluded from routing after a missed per-hop ack
  /// (suspected but not yet condemned; cleared by any message heard).
  bool currently_excludes(net::Address a) const {
    return excluded_.count(a) > 0;
  }

  /// Install (or clear, with nullptr) a Byzantine behavior policy. Not
  /// owned; the caller keeps it alive for the node's lifetime. A node
  /// with no policy behaves exactly as before — every interception point
  /// is a single null test.
  void set_adversary(AdversaryPolicy* policy) { adversary_ = policy; }
  bool is_adversarial() const { return adversary_ != nullptr; }

  /// Snapshot of internal state for debugging and tests.
  struct DebugState {
    bool active = false;
    bool joining = false;
    std::uint64_t join_epoch = 0;
    int leaf_size = 0;
    std::size_t rt_entries = 0;
    std::size_t ls_probes_outstanding = 0;
    std::size_t rt_probes_outstanding = 0;
    std::size_t pending_acks = 0;
    std::size_t buffered_messages = 0;
    std::size_t failed_set_size = 0;
    std::size_t excluded_size = 0;
    int nn_outstanding = 0;
    bool small_ring_converged = false;
    int repair_stalls = 0;
  };
  DebugState debug_state() const;

 private:
  // --- Message sending ---------------------------------------------------
  /// Stamp the common header (sender, trt hint), track last-sent time, and
  /// hand to the environment.
  void send(net::Address to, const IntrusivePtr<Message>& m);

  // --- Routing core (Figure 2: routei) ------------------------------------
  struct ExclusionSet;  // see node_core.cpp

  /// Route a message: forward to the next hop or invoke receive_root.
  /// `excluded` holds per-message exclusions accumulated by ack timeouts.
  void route(const IntrusivePtr<RoutedMessage>& m,
             const std::vector<net::Address>& excluded);

  /// Figure 2's next-hop choice; returns invalid descriptor when the
  /// message has reached its destination locally.
  NodeDescriptor next_hop(NodeId key,
                          const std::vector<net::Address>& excluded,
                          bool* used_rt_fallback, int* empty_row,
                          int* empty_col) const;

  bool is_excluded(net::Address a,
                   const std::vector<net::Address>& excluded) const;

  /// Adversary interception for one routed message; returns true when the
  /// adversary consumed the message (drop or root claim) and route() must
  /// stop. `next` is the honest next hop (invalid == local root).
  bool adversary_route(const IntrusivePtr<RoutedMessage>& m,
                       const NodeDescriptor& next,
                       const std::vector<net::Address>& excluded);

  void receive_root(const IntrusivePtr<RoutedMessage>& m);
  void deliver_lookup(const LookupMsg& m);
  void buffer_message(const IntrusivePtr<RoutedMessage>& m);
  void flush_buffered();

  // --- Per-hop acks (Section 3.2) -----------------------------------------
  void forward(const IntrusivePtr<RoutedMessage>& m,
               const NodeDescriptor& next,
               std::vector<net::Address> excluded);
  void on_ack(net::Address from, std::uint64_t hop_seq);
  void on_ack_timeout(std::uint64_t hop_seq);
  SimDuration rto_for(net::Address a) const;

  // --- Consistency: leaf-set probing (Figure 2) ----------------------------
  /// Send a leaf-set probe. `announce_on_timeout` marks first-hand
  /// failure detection: if the probe sequence times out, the failure is
  /// announced to the whole leaf set. Probes that merely confirm someone
  /// else's announcement (or vet candidates) must not re-announce, or a
  /// single death echoes through O(l^2) probe waves.
  void probe(const NodeDescriptor& j, bool announce_on_timeout = false);
  void handle_ls_probe(const LsProbeMsg& m, bool is_reply);
  void on_ls_probe_timeout(net::Address j);
  void done_probing(net::Address j);
  /// True while any leaf-set probe is still within its first timeout.
  /// Activation waits for these (an alive candidate answers its first
  /// probe unless the network lost it) but not for retries: those target
  /// nodes that are almost certainly dead, and dead candidates cannot
  /// make the leaf set inconsistent.
  bool has_blocking_ls_probes() const;
  void try_complete();
  void repair_leaf_set();
  std::uint64_t leaf_membership_hash() const;
  /// True when the leaf set should be treated as complete: both sides full
  /// or the repair process has converged on a small ring.
  bool leaf_complete() const;
  void activate();

  /// Would d enter the leaf set if added? (Capacity or range check.)
  bool leaf_would_admit(const NodeDescriptor& d) const;

  /// Density/spacing plausibility check (Config::leaf_plausibility_checks):
  /// true when d's announced id is not implausibly close to us or to an
  /// existing member given the overlay-size estimate. Always true when
  /// the check is disabled or the leaf set is too small to estimate.
  bool plausible_leaf_candidate(const NodeDescriptor& d) const;

  /// Close nodes to `target` from this node's routing state, for leaf-set
  /// probe replies (generalized repair, Section 3.1).
  std::vector<NodeDescriptor> close_nodes_for(NodeId target) const;

  // --- Failure detection (Section 4.1) -------------------------------------
  void heartbeat_tick();
  void watch_tick();
  void rt_scan_tick();
  void send_rt_probe(const NodeDescriptor& j);
  void on_rt_probe_timeout(net::Address j);
  void retune();

  // --- PNS / distance probing (Section 4.2) ---------------------------------
  enum class ProbePurpose : std::uint8_t {
    kRtCandidate,  ///< measure then consider for the routing table
    kNearestNeighbour,
  };
  std::uint64_t start_distance_session(const NodeDescriptor& target,
                                       ProbePurpose purpose, int probes);
  void distance_session_step(std::uint64_t session_id);
  void finish_distance_session(std::uint64_t session_id);
  void on_distance_reply(net::Address from, std::uint64_t seq);
  void on_distance_measured(const NodeDescriptor& target, SimDuration rtt,
                            ProbePurpose purpose);
  void consider_for_rt(const NodeDescriptor& d, SimDuration rtt,
                       bool report_symmetric);
  void rt_maintenance_tick();
  void announce_rows();

  // --- Join / nearest neighbour (Sections 2, 4.2) ---------------------------
  void start_join(const NodeDescriptor& bootstrap);
  void nn_request(const NodeDescriptor& target);
  void handle_nn_reply(const NnReplyMsg& m);
  void nn_measurement_done();
  void send_join_request();
  void handle_join_reply(const JoinReplyMsg& m);
  void on_join_retry();

  // --- Bookkeeping -----------------------------------------------------------
  /// A message was heard directly from `d`: refresh liveness, clear
  /// false-positive state, let the routing table learn the descriptor.
  void heard_from(const NodeDescriptor& d);

  /// Flight-recorder hooks (obs/events.hpp). Node-scoped events carry
  /// trace id 0 and are recorded whenever tracing is on; path-scoped
  /// events are recorded only for sampled messages (trace_id != 0) so
  /// rings stay signal-dense. Both are a single null test when off.
  void trace_node(obs::EventKind kind, net::Address peer = net::kNullAddress,
                  std::uint64_t aux = 0) {
    if (rec_ != nullptr) rec_->record(env_.now(), kind, 0, peer, 0, aux);
  }
  void trace_path(obs::EventKind kind, std::uint64_t trace_id,
                  net::Address peer = net::kNullAddress, std::int32_t hop = 0,
                  std::uint64_t aux = 0) {
    if (rec_ != nullptr && trace_id != 0) {
      rec_->record(env_.now(), kind, trace_id, peer, hop, aux);
    }
  }
  void mark_faulty(const NodeDescriptor& j, bool announce);
  /// Checks membership in the failed set, lazily expiring old entries.
  bool in_failed(net::Address a) const;
  void cancel_timer(TimerId& t);
  /// Fire Env::on_right_neighbour if the leaf set's clockwise neighbour
  /// changed since the last call. Invoked after every leaf-set mutation.
  void notify_right_changed();

  // --- State -------------------------------------------------------------
  Config cfg_;
  NodeDescriptor self_;
  Env& env_;
  Counters& counters_;
  /// Flight recorder for this node's session, owned by the environment's
  /// TraceDomain; nullptr when observability is disabled.
  obs::FlightRecorder* rec_;

  /// Byzantine behavior policy (nullptr == honest). Owned by the
  /// scenario layer; see adversary.hpp.
  AdversaryPolicy* adversary_ = nullptr;

  LeafSet leaf_;
  RoutingTable rt_;
  bool active_ = false;
  /// Right neighbour as last reported through Env::on_right_neighbour.
  std::optional<net::Address> last_right_;

  /// Nodes believed faulty (Figure 2's failedi), keyed by address, with
  /// the time the verdict was reached (entries expire after
  /// Config::failed_entry_ttl).
  struct FailedEntry {
    NodeDescriptor node;
    SimTime since = 0;
  };
  std::unordered_map<net::Address, FailedEntry> failed_;

  /// Outstanding leaf-set probes (Figure 2's probingi). sent_at feeds the
  /// RTT estimator on first-attempt replies (Karn's rule: retried probes
  /// give ambiguous samples and are not used).
  struct LsProbeState {
    NodeDescriptor target;
    int retries = 0;
    bool announce_on_timeout = false;
    SimTime sent_at = 0;
    TimerId timer = kInvalidTimer;
  };
  std::unordered_map<net::Address, LsProbeState> ls_probing_;

  /// Outstanding routing-table liveness probes.
  struct RtProbeState {
    NodeDescriptor target;
    int retries = 0;
    SimTime sent_at = 0;
    TimerId timer = kInvalidTimer;
  };
  std::unordered_map<net::Address, RtProbeState> rt_probing_;

  /// Nodes temporarily excluded from routing after a missed per-hop ack;
  /// cleared when any message is heard from them or they are marked
  /// faulty.
  std::unordered_set<net::Address> excluded_;

  /// In-flight forwarded messages awaiting per-hop acks.
  struct PendingAck {
    IntrusivePtr<RoutedMessage> msg;
    net::Address dest = net::kNullAddress;
    std::vector<net::Address> excluded;
    SimTime sent_at = 0;
    int same_dest_retries = 0;
    TimerId timer = kInvalidTimer;
  };
  std::unordered_map<std::uint64_t, PendingAck> pending_acks_;
  std::uint64_t next_hop_seq_ = 1;

  /// Per-destination RTT estimators (for RTO and as PNS seed data).
  std::unordered_map<net::Address, RttEstimator> rtt_;

  /// Liveness bookkeeping for suppression and the right-neighbour watch.
  std::unordered_map<net::Address, SimTime> last_heard_;
  std::unordered_map<net::Address, SimTime> last_sent_;

  /// Suppression evidence: like last_heard_, but excluding replies to our
  /// own probes — a probe's reply must not suppress the next probe, or
  /// the effective probing period silently doubles.
  std::unordered_map<net::Address, SimTime> suppress_heard_;

  /// When each routing-table entry was last due a liveness probe.
  std::unordered_map<net::Address, SimTime> last_probe_due_;

  /// Buffered routed messages (node inactive, or leaf set mid-repair).
  std::vector<IntrusivePtr<RoutedMessage>> buffered_;

  /// Self-tuning state.
  FailureRateEstimator fail_est_;
  std::unordered_map<net::Address, double> trt_hints_;
  double trt_local_s_;
  double trt_current_s_;

  /// Addresses whose distance was measured recently (TTL-limited), so
  /// periodic gossip does not endlessly re-probe candidates that never
  /// win a slot.
  std::unordered_map<net::Address, SimTime> measured_at_;

  /// Distance-probe sessions.
  struct DistanceSession {
    NodeDescriptor target;
    ProbePurpose purpose = ProbePurpose::kRtCandidate;
    int want = 0;
    int sent = 0;
    std::vector<SimDuration> samples;
    TimerId timer = kInvalidTimer;
  };
  std::unordered_map<std::uint64_t, DistanceSession> dist_sessions_;
  struct OutstandingProbe {
    std::uint64_t session = 0;
    SimTime sent_at = 0;
  };
  std::unordered_map<std::uint64_t, OutstandingProbe> dist_probes_;
  std::uint64_t next_session_id_ = 1;
  std::uint64_t next_probe_seq_ = 1;

  /// Join / nearest-neighbour state.
  bool joining_ = false;
  std::uint64_t join_epoch_ = 0;
  bool join_reply_seen_ = false;  ///< dedup: one JOIN-REPLY per epoch
  SimTime join_started_ = 0;
  NodeDescriptor nn_current_;
  SimDuration nn_current_rtt_ = kTimeNever;
  int nn_iteration_ = 0;
  int nn_outstanding_ = 0;
  NodeDescriptor nn_best_;
  SimDuration nn_best_rtt_ = kTimeNever;
  std::unordered_set<net::Address> nn_visited_;
  TimerId join_retry_timer_ = kInvalidTimer;

  /// Leaf-set repair convergence detection (small rings).
  std::uint64_t last_membership_hash_ = 0;
  int repair_stalls_ = 0;
  bool small_ring_converged_ = false;

  /// Periodic timers.
  TimerId heartbeat_timer_ = kInvalidTimer;
  TimerId watch_timer_ = kInvalidTimer;
  TimerId rt_scan_timer_ = kInvalidTimer;
  TimerId maintenance_timer_ = kInvalidTimer;
};

}  // namespace mspastry::pastry
