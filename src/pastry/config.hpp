#pragma once

#include <cstdint>

#include "common/sim_time.hpp"

namespace mspastry::pastry {

/// All MSPastry protocol knobs. Defaults are the paper's base
/// configuration (Section 5.1): b=4, l=32, Tls=30 s, To=3 s, two probe
/// retries, per-hop acks, routing-table probing self-tuned to a 5% raw
/// loss rate, probe suppression, and symmetric distance probes.
///
/// The boolean switches exist so the ablation experiments in Section 5.3
/// (active probing vs per-hop acks, self-tuning targets, suppression) can
/// turn individual techniques off.
struct Config {
  /// Identifier digits have b bits; the routing table has 2^b columns.
  int b = 4;

  /// Leaf set size: l/2 nodes on each side of the local id.
  int l = 32;

  /// Leaf-set heartbeat period (one heartbeat to the left neighbour).
  SimDuration t_ls = seconds(30);

  /// Probe timeout To; the paper picks the TCP SYN timeout, 3 s.
  SimDuration t_o = seconds(3);

  /// Probes are retried this many times before a node is marked faulty.
  int max_probe_retries = 2;

  // --- Reliable routing -----------------------------------------------

  /// Per-hop acknowledgements with rerouting on timeout.
  bool per_hop_acks = true;

  /// Same-destination retransmits before an unresponsive next hop is
  /// excluded and the message rerouted. One retransmit absorbs a single
  /// lost ack cheaply; after that the node is treated as suspect.
  int ack_retransmits = 1;

  /// When true (the paper's default, Section 3.2), an ack timeout
  /// excludes the destination from routing even at the final hop — in a
  /// loss-free network a missed ack implies the root is dead, so this is
  /// both fast and consistent; with link losses it admits a small
  /// probability of misdelivery. When false, a node never delivers
  /// locally past a closer leaf-set member that is merely excluded: it
  /// keeps retransmitting with exponential backoff until the concurrent
  /// probe either revives the node or marks it faulty (consistency over
  /// latency).
  bool exclude_root_on_ack_timeout = true;

  /// Give up on a message after this many same-destination retransmits
  /// (the probe resolves the node's fate long before this; only relevant
  /// with exclude_root_on_ack_timeout = false).
  int max_same_dest_retransmits = 20;

  /// Aggressive retransmission: RTO = srtt + rto_var_factor * rttvar,
  /// clamped to [rto_min, rto_max]. No TCP-style 1 s floor because Pastry
  /// can fail over to an alternative next hop.
  SimDuration rto_min = milliseconds(30);
  SimDuration rto_max = seconds(3);
  double rto_var_factor = 4.0;
  /// RTO used for a destination with no RTT sample yet.
  SimDuration rto_initial = seconds(1);

  /// Safety bound on overlay route length (loops cannot normally occur;
  /// this caps pathological routing under heavy churn).
  int max_route_hops = 64;

  // --- Active failure detection ---------------------------------------

  /// Liveness-probe the routing table at all. Off reproduces the
  /// "per-hop acks only" ablation.
  bool active_rt_probing = true;

  /// Self-tune the routing-table probe period Trt from the target raw
  /// loss rate; when false, t_rt_fixed is used.
  bool self_tuning = true;

  /// Target raw loss rate Lr for the self-tuner (paper default 5%).
  double target_raw_loss = 0.05;

  SimDuration t_rt_fixed = seconds(30);

  /// Lower bound (retries+1)*To = 9 s, per the paper; upper bound keeps
  /// probing alive in near-static systems.
  SimDuration t_rt_min = seconds(9);
  SimDuration t_rt_max = hours(2);

  /// How many past failures the failure-rate estimator remembers (K).
  int failure_history = 16;

  /// Entries in the failed set expire after this long: a session address
  /// never returns in the crash model, so the set is only consulted to
  /// avoid re-probing recent corpses; expiring entries bounds memory and
  /// lets nodes wrongly condemned during a network partition be
  /// re-learned once connectivity returns.
  SimDuration failed_entry_ttl = minutes(10);

  /// Suppress probes/heartbeats when any message was exchanged recently.
  bool suppression = true;

  // --- Proximity neighbour selection ------------------------------------

  /// PNS on/off. Off fills routing-table slots first-come-first-served.
  bool pns = true;

  /// Distance probes per measurement; the median is used (default 3
  /// spaced 1 s apart, per Section 4.2).
  int distance_probe_count = 3;
  SimDuration distance_probe_spacing = seconds(1);

  /// Symmetric distance probing: report measured RTTs back so the peer
  /// need not probe again.
  bool symmetric_probes = true;

  /// Periodic routing-table maintenance period (20 min in the paper).
  SimDuration rt_maintenance_period = minutes(20);

  /// Do not re-measure the distance to a candidate more often than this:
  /// gossip keeps re-offering nearby nodes that never win a slot, and
  /// re-probing them every maintenance round is wasted traffic.
  SimDuration distance_measurement_ttl = minutes(40);

  // --- Join -------------------------------------------------------------

  /// Nearest-neighbour seed discovery: max hill-climbing iterations and
  /// candidates probed per iteration (single probe each, per Section 4.2).
  int nn_max_iterations = 8;
  int nn_sample = 12;

  /// Timeout for the single-sample nearest-neighbour probes. Shorter than
  /// To: a dead candidate only delays the join, never triggers a faulty
  /// verdict, and Section 4.2 trades probe accuracy for join latency here.
  SimDuration nn_probe_timeout = seconds(1);

  /// If a join has not completed in this long, restart it with a fresh
  /// bootstrap (covers lost JOIN-REPLY and dead seeds).
  SimDuration join_retry = seconds(60);

  // --- Adversary countermeasures ----------------------------------------

  /// Redundant diverse-path lookups: each lookup() call routes this many
  /// copies, forcing distinct first hops by excluding the hops already
  /// used (interior disjointness is best-effort — Pastry's prefix routing
  /// converges paths near the root). 1 = single path (the paper's
  /// behavior). The application layer deduplicates deliveries
  /// (first-correct-wins in overlay::Metrics).
  int lookup_redundancy = 1;

  /// Leaf-set plausibility checks against adversarial lies: (a) reject
  /// announced candidates implausibly close to this node relative to the
  /// id density the leaf set implies, and (b) treat peer-announced
  /// failures skeptically — probe the accused member but keep it until
  /// the probe itself times out, instead of dropping it on hearsay.
  bool leaf_plausibility_checks = false;

  /// Density threshold for (a): a candidate is rejected when its ring
  /// distance to this node (or to the nearest current member) is below
  /// (2^128 / N̂) / leaf_density_factor, where N̂ is the leaf-set density
  /// estimate of the overlay size. Sybil clusters packed around a victim
  /// id sit orders of magnitude below this; honest neighbors almost
  /// never do (spacings are exponentially distributed around the mean, so
  /// P(reject an honest neighbor) ~ 1/factor per admission — the factor
  /// must be large enough that a whole run admits every true ring
  /// neighbor, or the ring never reconverges).
  double leaf_density_factor = 4096.0;

  // --- Test-only fault injection ----------------------------------------

  /// Mutation knob for the expectation checker's self-test: when set, an
  /// exhausted per-hop ack ladder abandons the message instead of
  /// rerouting (the timeout still fires and the suspect is still probed).
  /// This reproduces a classic "silently lost lookup" bug; the
  /// timeout-followed-by-reaction expectation must flag it. Never set
  /// outside tests.
  bool mutation_suppress_reroute = false;

  int routing_table_rows() const { return (128 + b - 1) / b; }
  int routing_table_cols() const { return 1 << b; }
  SimDuration probe_detect_time() const {
    // Worst-case time from failure to detection via probing: one period
    // plus (retries+1) timeouts. Used by the self-tuner.
    return (max_probe_retries + 1) * t_o;
  }
};

}  // namespace mspastry::pastry
