#include "net/fault_plan.hpp"

#include <algorithm>
#include <cstdio>

namespace mspastry::net {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kLoss: return "loss";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kFlap: return "flap";
    case FaultKind::kDelaySpike: return "delay-spike";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kStall: return "stall";
    case FaultKind::kAdversarialDrop: return "adversarial-drop";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// LinkMatcher
// ---------------------------------------------------------------------------

LinkMatcher LinkMatcher::all() { return LinkMatcher{}; }

LinkMatcher LinkMatcher::one_way(std::vector<Address> src,
                                 std::vector<Address> dst) {
  LinkMatcher m;
  m.kind_ = Kind::kOneWay;
  m.a_.insert(src.begin(), src.end());
  m.b_.insert(dst.begin(), dst.end());
  return m;
}

LinkMatcher LinkMatcher::cross(std::vector<Address> group) {
  LinkMatcher m;
  m.kind_ = Kind::kCross;
  m.a_.insert(group.begin(), group.end());
  return m;
}

LinkMatcher LinkMatcher::endpoint(std::vector<Address> eps) {
  LinkMatcher m;
  m.kind_ = Kind::kEndpoint;
  m.a_.insert(eps.begin(), eps.end());
  return m;
}

bool LinkMatcher::matches(Address from, Address to) const {
  switch (kind_) {
    case Kind::kAll:
      return true;
    case Kind::kOneWay:
      return (a_.empty() || a_.count(from) > 0) &&
             (b_.empty() || b_.count(to) > 0);
    case Kind::kCross:
      return a_.count(from) != a_.count(to);
    case Kind::kEndpoint:
      return a_.count(from) > 0 || a_.count(to) > 0;
  }
  return false;
}

namespace {

std::string set_to_string(const std::unordered_set<Address>& s) {
  std::vector<Address> v(s.begin(), s.end());
  std::sort(v.begin(), v.end());
  std::string out = "{";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i]);
  }
  out += "}";
  return out;
}

}  // namespace

std::string LinkMatcher::describe() const {
  switch (kind_) {
    case Kind::kAll:
      return "all";
    case Kind::kOneWay:
      return "one-way " + set_to_string(a_) + "->" + set_to_string(b_);
    case Kind::kCross:
      return "cross " + set_to_string(a_);
    case Kind::kEndpoint:
      return "endpoint " + set_to_string(a_);
  }
  return "?";
}

// ---------------------------------------------------------------------------
// FaultRule factories
// ---------------------------------------------------------------------------

FaultRule FaultRule::loss(LinkMatcher where, double p, SimTime start,
                          SimTime end) {
  FaultRule r;
  r.kind = FaultKind::kLoss;
  r.where = std::move(where);
  r.probability = p;
  r.start = start;
  r.end = end;
  return r;
}

FaultRule FaultRule::partition(LinkMatcher where, SimTime start, SimTime end) {
  FaultRule r;
  r.kind = FaultKind::kPartition;
  r.where = std::move(where);
  r.start = start;
  r.end = end;
  return r;
}

FaultRule FaultRule::flap(LinkMatcher where, SimDuration period,
                          double duty_up, SimTime start, SimTime end) {
  FaultRule r;
  r.kind = FaultKind::kFlap;
  r.where = std::move(where);
  r.period = period;
  r.duty_up = duty_up;
  r.start = start;
  r.end = end;
  return r;
}

FaultRule FaultRule::delay_spike(LinkMatcher where, SimDuration extra,
                                 SimTime start, SimTime end) {
  FaultRule r;
  r.kind = FaultKind::kDelaySpike;
  r.where = std::move(where);
  r.extra_delay = extra;
  r.start = start;
  r.end = end;
  return r;
}

FaultRule FaultRule::duplicate(LinkMatcher where, double p, SimDuration offset,
                               SimTime start, SimTime end) {
  FaultRule r;
  r.kind = FaultKind::kDuplicate;
  r.where = std::move(where);
  r.probability = p;
  r.dup_offset = offset;
  r.start = start;
  r.end = end;
  return r;
}

FaultRule FaultRule::reorder(LinkMatcher where, double p, SimDuration max_extra,
                             SimTime start, SimTime end) {
  FaultRule r;
  r.kind = FaultKind::kReorder;
  r.where = std::move(where);
  r.probability = p;
  r.extra_delay = max_extra;
  r.start = start;
  r.end = end;
  return r;
}

FaultRule FaultRule::stall(std::vector<Address> endpoints, SimTime start,
                           SimTime end) {
  FaultRule r;
  r.kind = FaultKind::kStall;
  r.where = LinkMatcher::endpoint(std::move(endpoints));
  r.start = start;
  r.end = end;
  return r;
}

std::string FaultRule::describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s where=%s window=[%lld,%s) p=%.3g delay=%lldus "
                "dup_off=%lldus period=%lldus duty=%.2f seed=%llu%s%s",
                fault_kind_name(kind), where.describe().c_str(),
                static_cast<long long>(start),
                end == kTimeNever ? "inf" : std::to_string(end).c_str(),
                probability, static_cast<long long>(extra_delay),
                static_cast<long long>(dup_offset),
                static_cast<long long>(period), duty_up,
                static_cast<unsigned long long>(seed),
                label.empty() ? "" : " # ", label.c_str());
  return buf;
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

FaultPlan::RuleId FaultPlan::add(FaultRule rule) {
  const RuleId id = next_id_++;
  const std::uint64_t seed =
      rule.seed != 0 ? rule.seed
                     : base_seed_ ^ (id * 0x9e3779b97f4a7c15ull);
  rules_.push_back(Slot{id, std::move(rule), Rng(seed)});
  return id;
}

bool FaultPlan::remove(RuleId id) {
  const auto it = std::find_if(rules_.begin(), rules_.end(),
                               [id](const Slot& s) { return s.id == id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  return true;
}

std::size_t FaultPlan::active_rule_count(SimTime now) const {
  std::size_t n = 0;
  for (const Slot& s : rules_) {
    if (now >= s.rule.start && now < s.rule.end) ++n;
  }
  return n;
}

FaultAction FaultPlan::apply(SimTime now, Address from, Address to) {
  FaultAction act;
  for (Slot& s : rules_) {
    const FaultRule& r = s.rule;
    if (now < r.start || now >= r.end) continue;
    if (r.kind == FaultKind::kStall) continue;  // handled via stall_release
    if (!r.where.matches(from, to)) continue;
    switch (r.kind) {
      case FaultKind::kPartition:
        act.drop = true;
        act.drop_kind = FaultKind::kPartition;
        break;
      case FaultKind::kLoss:
        if (s.rng.chance(r.probability)) {
          act.drop = true;
          act.drop_kind = FaultKind::kLoss;
        }
        break;
      case FaultKind::kFlap: {
        // Phase-based: up for duty_up * period at the start of each
        // period, down for the rest. Deterministic without any RNG.
        const SimDuration period = std::max<SimDuration>(1, r.period);
        const SimDuration phase = (now - r.start) % period;
        const auto up_span = static_cast<SimDuration>(
            r.duty_up * static_cast<double>(period));
        if (phase >= up_span) {
          act.drop = true;
          act.drop_kind = FaultKind::kFlap;
        }
        break;
      }
      case FaultKind::kDelaySpike:
        act.extra_delay += r.extra_delay;
        ++injected_[static_cast<std::size_t>(FaultKind::kDelaySpike)];
        break;
      case FaultKind::kDuplicate:
        if (s.rng.chance(r.probability)) {
          act.extra_copies += 1;
          act.dup_offset = std::max<SimDuration>(
              act.dup_offset, std::max<SimDuration>(1, r.dup_offset));
          ++injected_[static_cast<std::size_t>(FaultKind::kDuplicate)];
        }
        break;
      case FaultKind::kReorder:
        if (s.rng.chance(r.probability) && r.extra_delay > 0) {
          act.extra_delay += static_cast<SimDuration>(
              s.rng.uniform_index(static_cast<std::uint64_t>(r.extra_delay)) +
              1);
          ++injected_[static_cast<std::size_t>(FaultKind::kReorder)];
        }
        break;
      case FaultKind::kStall:
        break;
      case FaultKind::kAdversarialDrop:
        break;  // never a plan rule; injected by Network::devour
    }
    if (act.drop) {
      ++injected_[static_cast<std::size_t>(act.drop_kind)];
      return act;  // first dropping rule wins; later rules draw nothing
    }
  }
  return act;
}

SimTime FaultPlan::stall_release(SimTime now, Address a) const {
  SimTime release = now;
  // Fixed-point over overlapping/chained stall windows covering `release`.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Slot& s : rules_) {
      if (s.rule.kind != FaultKind::kStall) continue;
      if (release < s.rule.start || release >= s.rule.end) continue;
      if (!s.rule.where.matches(a, a)) continue;
      release = s.rule.end;
      changed = true;
    }
  }
  return release;
}

std::uint64_t FaultPlan::total_injected() const {
  std::uint64_t t = 0;
  for (const auto v : injected_) t += v;
  return t;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const Slot& s : rules_) {
    out += "#" + std::to_string(s.id) + " " + s.rule.describe() + "\n";
  }
  return out;
}

}  // namespace mspastry::net
