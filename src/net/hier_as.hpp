#pragma once

#include <memory>

#include "common/rng.hpp"
#include "net/delay_oracle.hpp"
#include "net/routed_graph.hpp"
#include "net/topology.hpp"

namespace mspastry::net {

/// Parameters for the Mercator-like hierarchical autonomous-system
/// topology. The paper's Mercator map has 102,639 routers in 2,662 AS with
/// hierarchical (Internet-like) routing and uses the number of IP hops as
/// the proximity metric. Real Mercator data is not available here, so we
/// synthesise an AS-level graph with a heavy-tailed degree distribution
/// (preferential attachment) and random intra-AS router graphs; routing
/// minimises AS hops first and router hops second, which approximates
/// hierarchical BGP-style routing. The defaults are scaled down ~13x (200
/// AS, ~38 routers each) so simulations stay laptop-sized; the structure —
/// a clustered, weak-triangle-inequality hop metric — is what the overlay
/// reacts to, and that is preserved.
struct HierASParams {
  int autonomous_systems = 200;
  int routers_per_as = 38;
  int attachment_links = 2;   ///< preferential-attachment parameter m
  double per_hop_delay_ms = 1.0;  ///< one IP hop == 1 ms of delay
  std::uint64_t seed = 43;

  /// Delay-oracle configuration; each AS is one cluster. Landmark
  /// synthesis is approximate only for ASes whose border count exceeds
  /// the landmark cap (high-degree preferential-attachment hubs).
  DelayOracleParams oracle;
};

/// Mercator-like topology. The proximity metric is the IP hop count,
/// expressed as delay at per_hop_delay_ms per hop so the rest of the
/// system can treat all topologies uniformly. End nodes attach directly to
/// randomly chosen routers (no extra LAN link), as in the paper.
class HierASTopology final : public Topology {
 public:
  explicit HierASTopology(const HierASParams& params);

  int router_count() const override { return graph_.router_count(); }
  SimDuration delay(int a, int b) const override {
    return oracle_->delay(a, b);
  }
  std::string name() const override { return "Mercator"; }
  SimDuration min_positive_delay() const override {
    return graph_.min_link_delay();
  }
  SimDuration min_delay_between(std::span<const int> a,
                                std::span<const int> b) const override {
    return oracle_->min_delay_between(a, b);
  }
  DelayCacheStats delay_cache_stats() const override {
    return oracle_->stats();
  }

  /// IP hop count between two routers (the paper's proximity metric).
  /// Every link carries exactly per_hop_delay of delay, so in landmark
  /// mode hops are recovered from the oracle's delay instead of pulling a
  /// full Dijkstra row (returns -1 for unreachable pairs, as the graph
  /// does).
  int hops(int a, int b) const {
    if (!oracle_->landmark_mode()) return graph_.hops(a, b);
    const SimDuration d = oracle_->delay(a, b);
    if (d == kTimeNever) return -1;
    return static_cast<int>(d / hop_delay_);
  }

  int as_count() const { return as_count_; }
  const RoutedGraph& graph() const { return graph_; }
  const DelayOracle& oracle() const { return *oracle_; }

 private:
  RoutedGraph graph_;
  int as_count_;
  SimDuration hop_delay_;
  std::unique_ptr<DelayOracle> oracle_;  // built after the graph, in the ctor
};

}  // namespace mspastry::net
