#pragma once

#include "common/rng.hpp"
#include "net/routed_graph.hpp"
#include "net/topology.hpp"

namespace mspastry::net {

/// Parameters for the Mercator-like hierarchical autonomous-system
/// topology. The paper's Mercator map has 102,639 routers in 2,662 AS with
/// hierarchical (Internet-like) routing and uses the number of IP hops as
/// the proximity metric. Real Mercator data is not available here, so we
/// synthesise an AS-level graph with a heavy-tailed degree distribution
/// (preferential attachment) and random intra-AS router graphs; routing
/// minimises AS hops first and router hops second, which approximates
/// hierarchical BGP-style routing. The defaults are scaled down ~13x (200
/// AS, ~38 routers each) so simulations stay laptop-sized; the structure —
/// a clustered, weak-triangle-inequality hop metric — is what the overlay
/// reacts to, and that is preserved.
struct HierASParams {
  int autonomous_systems = 200;
  int routers_per_as = 38;
  int attachment_links = 2;   ///< preferential-attachment parameter m
  double per_hop_delay_ms = 1.0;  ///< one IP hop == 1 ms of delay
  std::uint64_t seed = 43;
};

/// Mercator-like topology. The proximity metric is the IP hop count,
/// expressed as delay at per_hop_delay_ms per hop so the rest of the
/// system can treat all topologies uniformly. End nodes attach directly to
/// randomly chosen routers (no extra LAN link), as in the paper.
class HierASTopology final : public Topology {
 public:
  explicit HierASTopology(const HierASParams& params);

  int router_count() const override { return graph_.router_count(); }
  SimDuration delay(int a, int b) const override { return graph_.delay(a, b); }
  std::string name() const override { return "Mercator"; }
  SimDuration min_positive_delay() const override {
    return graph_.min_link_delay();
  }

  /// IP hop count between two routers (the paper's proximity metric).
  int hops(int a, int b) const { return graph_.hops(a, b); }

  int as_count() const { return as_count_; }
  const RoutedGraph& graph() const { return graph_; }

 private:
  RoutedGraph graph_;
  int as_count_;
};

}  // namespace mspastry::net
