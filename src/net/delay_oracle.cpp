#include "net/delay_oracle.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <utility>

namespace mspastry::net {

namespace {

/// Bytes held by a vector's buffer (capacity, matching what the allocator
/// actually reserved).
template <typename T>
std::uint64_t buffer_bytes(const std::vector<T>& v) {
  return static_cast<std::uint64_t>(v.capacity()) * sizeof(T);
}

}  // namespace

DelayOracle::DelayOracle(const RoutedGraph& graph, std::vector<int> cluster_of,
                         const DelayOracleParams& params)
    : graph_(graph), cluster_of_(std::move(cluster_of)), params_(params) {
  assert(static_cast<int>(cluster_of_.size()) == graph_.router_count());
  for (int c : cluster_of_) {
    assert(c >= 0);
    cluster_count_ = std::max(cluster_count_, c + 1);
  }
  switch (params_.mode) {
    case DelayOracleMode::kExact:
      landmark_mode_ = false;
      break;
    case DelayOracleMode::kLandmark:
      landmark_mode_ = true;
      break;
    case DelayOracleMode::kAuto:
      landmark_mode_ = graph_.router_count() > params_.exact_threshold;
      break;
  }
  if (landmark_mode_) build_landmark_tables();
}

void DelayOracle::build_landmark_tables() {
  const int n = graph_.router_count();
  const int c_count = cluster_count_;

  members_.assign(static_cast<std::size_t>(c_count), {});
  index_in_cluster_.assign(static_cast<std::size_t>(n), -1);
  for (int r = 0; r < n; ++r) {
    auto& list = members_[static_cast<std::size_t>(cluster_of_[r])];
    index_in_cluster_[static_cast<std::size_t>(r)] =
        static_cast<int>(list.size());
    list.push_back(r);
  }

  // Border routers: any router with a link leaving its cluster. Every
  // inter-cluster path crosses one on each side, which is what makes both
  // the landmark synthesis and the per-cluster-pair lower bound work.
  std::vector<std::vector<int>> borders(static_cast<std::size_t>(c_count));
  for (int r = 0; r < n; ++r) {
    const int cr = cluster_of_[static_cast<std::size_t>(r)];
    for (const RoutedGraph::Edge& e : graph_.edges(r)) {
      if (cluster_of_[static_cast<std::size_t>(e.to)] != cr) {
        borders[static_cast<std::size_t>(cr)].push_back(r);
        break;
      }
    }
  }

  // Landmarks: up to landmarks_per_cluster borders per cluster, evenly
  // spaced through the border list so multi-border clusters keep spatially
  // spread coverage rather than the first k by index.
  const int k = std::max(1, params_.landmarks_per_cluster);
  cluster_landmark_first_.assign(static_cast<std::size_t>(c_count) + 1, 0);
  for (int c = 0; c < c_count; ++c) {
    const auto& blist = borders[static_cast<std::size_t>(c)];
    const int take = std::min<int>(k, static_cast<int>(blist.size()));
    for (int i = 0; i < take; ++i) {
      const std::size_t pick =
          (take == static_cast<int>(blist.size()))
              ? static_cast<std::size_t>(i)
              : static_cast<std::size_t>(i) * blist.size() /
                    static_cast<std::size_t>(take);
      landmarks_.push_back(blist[pick]);
    }
    cluster_landmark_first_[static_cast<std::size_t>(c) + 1] =
        static_cast<int>(landmarks_.size());
  }
  const int l_count = static_cast<int>(landmarks_.size());

  // Global landmark index per router (or -1), to fill the landmark-pair
  // matrix from border rows in O(1) per entry.
  std::vector<int> landmark_index(static_cast<std::size_t>(n), -1);
  for (int gi = 0; gi < l_count; ++gi) {
    landmark_index[static_cast<std::size_t>(landmarks_[gi])] = gi;
  }

  to_landmark_stride_ = k;
  to_landmark_.assign(static_cast<std::size_t>(n) * k, kTimeNever);
  landmark_matrix_.assign(
      static_cast<std::size_t>(l_count) * l_count, kTimeNever);
  pair_lower_bound_.assign(
      static_cast<std::size_t>(c_count) * c_count, kTimeNever);

  // One full-graph Dijkstra per border router (transient row). Each row
  // feeds three tables:
  //  - to_landmark_ columns for the border's own cluster, when it is a
  //    landmark (full-graph distances — synthesis must be free to route
  //    a->L through other clusters if policy routing does);
  //  - the dense landmark-pair matrix;
  //  - the per-cluster-pair lower bound, which takes *all* border pairs,
  //    not just landmark pairs, so it stays a true bound even when a
  //    cluster has more borders than landmarks.
  std::vector<SimDuration> row_delay;
  std::vector<int> row_hops;
  for (int c = 0; c < c_count; ++c) {
    for (int b : borders[static_cast<std::size_t>(c)]) {
      graph_.compute_row(b, row_delay, row_hops);

      const int gi = landmark_index[static_cast<std::size_t>(b)];
      if (gi >= 0) {
        const int slot = gi - cluster_landmark_first_[static_cast<std::size_t>(c)];
        for (int r : members_[static_cast<std::size_t>(c)]) {
          to_landmark_[static_cast<std::size_t>(r) * k + slot] =
              row_delay[static_cast<std::size_t>(r)];
        }
        for (int gj = 0; gj < l_count; ++gj) {
          landmark_matrix_[static_cast<std::size_t>(gi) * l_count + gj] =
              row_delay[static_cast<std::size_t>(landmarks_[gj])];
        }
      }

      for (int c2 = 0; c2 < c_count; ++c2) {
        if (c2 == c) continue;
        auto& lb =
            pair_lower_bound_[static_cast<std::size_t>(c) * c_count + c2];
        for (int b2 : borders[static_cast<std::size_t>(c2)]) {
          const SimDuration d = row_delay[static_cast<std::size_t>(b2)];
          if (d < lb) lb = d;
        }
      }
    }
  }

  // Exact intra-cluster distances: Dijkstra restricted to the cluster
  // subgraph, one dense n_c x n_c block per cluster. Local (in-cluster)
  // indices keep the scratch arrays at cluster size.
  intra_offset_.assign(static_cast<std::size_t>(c_count) + 1, 0);
  for (int c = 0; c < c_count; ++c) {
    const std::size_t nc = members_[static_cast<std::size_t>(c)].size();
    intra_offset_[static_cast<std::size_t>(c) + 1] =
        intra_offset_[static_cast<std::size_t>(c)] + nc * nc;
  }
  intra_.assign(intra_offset_.back(), kTimeNever);

  std::vector<double> dist;
  std::vector<SimDuration> dly;
  using Item = std::pair<double, int>;  // (policy weight, local index)
  for (int c = 0; c < c_count; ++c) {
    const auto& list = members_[static_cast<std::size_t>(c)];
    const int nc = static_cast<int>(list.size());
    const std::size_t base = intra_offset_[static_cast<std::size_t>(c)];
    for (int s = 0; s < nc; ++s) {
      dist.assign(static_cast<std::size_t>(nc),
                  std::numeric_limits<double>::infinity());
      dly.assign(static_cast<std::size_t>(nc), kTimeNever);
      std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
      dist[static_cast<std::size_t>(s)] = 0.0;
      dly[static_cast<std::size_t>(s)] = 0;
      pq.emplace(0.0, s);
      while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[static_cast<std::size_t>(u)]) continue;
        for (const RoutedGraph::Edge& e :
             graph_.edges(list[static_cast<std::size_t>(u)])) {
          if (cluster_of_[static_cast<std::size_t>(e.to)] != c) continue;
          const int v = index_in_cluster_[static_cast<std::size_t>(e.to)];
          const double nd = d + e.weight;
          if (nd < dist[static_cast<std::size_t>(v)]) {
            dist[static_cast<std::size_t>(v)] = nd;
            dly[static_cast<std::size_t>(v)] =
                dly[static_cast<std::size_t>(u)] + e.delay;
            pq.emplace(nd, v);
          }
        }
      }
      for (int t = 0; t < nc; ++t) {
        intra_[base + static_cast<std::size_t>(s) * nc + t] =
            dly[static_cast<std::size_t>(t)];
      }
    }
  }
}

SimDuration DelayOracle::intra_delay(int a, int b) const {
  const int c = cluster_of_[static_cast<std::size_t>(a)];
  const std::size_t nc = members_[static_cast<std::size_t>(c)].size();
  const std::size_t ia =
      static_cast<std::size_t>(index_in_cluster_[static_cast<std::size_t>(a)]);
  const std::size_t ib =
      static_cast<std::size_t>(index_in_cluster_[static_cast<std::size_t>(b)]);
  return intra_[intra_offset_[static_cast<std::size_t>(c)] + ia * nc + ib];
}

SimDuration DelayOracle::delay(int a, int b) const {
  assert(a >= 0 && a < graph_.router_count());
  assert(b >= 0 && b < graph_.router_count());
  if (a == b) return 0;
  if (!landmark_mode_) return graph_.delay(a, b);

  const int ca = cluster_of_[static_cast<std::size_t>(a)];
  const int cb = cluster_of_[static_cast<std::size_t>(b)];
  if (ca == cb) return intra_delay(a, b);

  const int l_count = static_cast<int>(landmarks_.size());
  const int fa = cluster_landmark_first_[static_cast<std::size_t>(ca)];
  const int na = cluster_landmark_first_[static_cast<std::size_t>(ca) + 1] - fa;
  const int fb = cluster_landmark_first_[static_cast<std::size_t>(cb)];
  const int nb = cluster_landmark_first_[static_cast<std::size_t>(cb) + 1] - fb;

  SimDuration best = kTimeNever;
  const SimDuration* ta =
      &to_landmark_[static_cast<std::size_t>(a) * to_landmark_stride_];
  const SimDuration* tb =
      &to_landmark_[static_cast<std::size_t>(b) * to_landmark_stride_];
  for (int i = 0; i < na; ++i) {
    if (ta[i] == kTimeNever) continue;
    const SimDuration* mid =
        &landmark_matrix_[static_cast<std::size_t>(fa + i) * l_count + fb];
    for (int j = 0; j < nb; ++j) {
      if (tb[j] == kTimeNever || mid[j] == kTimeNever) continue;
      const SimDuration cand = ta[i] + mid[j] + tb[j];
      if (cand < best) best = cand;
    }
  }
  return best;
}

SimDuration DelayOracle::cluster_pair_lower_bound(int ca, int cb) const {
  assert(landmark_mode_);
  assert(ca != cb);
  return pair_lower_bound_[static_cast<std::size_t>(ca) * cluster_count_ + cb];
}

SimDuration DelayOracle::min_delay_between(std::span<const int> a,
                                           std::span<const int> b) const {
  SimDuration best = kTimeNever;
  if (!landmark_mode_) {
    for (int ra : a) {
      for (int rb : b) {
        if (ra == rb) continue;
        const SimDuration d = graph_.delay(ra, rb);
        if (d < best) best = d;
      }
    }
    return best;
  }

  // Distinct-cluster pairs answer from the dense border-pair matrix;
  // clusters straddling both groups (rare — shard partitions are
  // router-contiguous) fall back to exact intra distances.
  std::vector<char> in_a(static_cast<std::size_t>(cluster_count_), 0);
  std::vector<char> in_b(static_cast<std::size_t>(cluster_count_), 0);
  for (int ra : a) in_a[static_cast<std::size_t>(cluster_of_[ra])] = 1;
  for (int rb : b) in_b[static_cast<std::size_t>(cluster_of_[rb])] = 1;
  for (int ca = 0; ca < cluster_count_; ++ca) {
    if (!in_a[static_cast<std::size_t>(ca)]) continue;
    for (int cb = 0; cb < cluster_count_; ++cb) {
      if (!in_b[static_cast<std::size_t>(cb)] || ca == cb) continue;
      const SimDuration d = cluster_pair_lower_bound(ca, cb);
      if (d < best) best = d;
    }
  }
  for (int ra : a) {
    const int ca = cluster_of_[static_cast<std::size_t>(ra)];
    if (!in_b[static_cast<std::size_t>(ca)]) continue;
    for (int rb : b) {
      if (rb == ra || cluster_of_[static_cast<std::size_t>(rb)] != ca) continue;
      const SimDuration d = intra_delay(ra, rb);
      if (d < best) best = d;
    }
  }
  return best;
}

DelayCacheStats DelayOracle::stats() const {
  DelayCacheStats s;
  s.landmark_mode = landmark_mode_;
  s.row_cache_bytes = graph_.cache_bytes();
  s.cached_rows = graph_.cached_rows();
  if (!landmark_mode_) return s;
  s.clusters = cluster_count_;
  s.landmarks = static_cast<int>(landmarks_.size());
  s.oracle_bytes = buffer_bytes(to_landmark_) + buffer_bytes(landmark_matrix_) +
                   buffer_bytes(intra_) + buffer_bytes(pair_lower_bound_) +
                   buffer_bytes(cluster_of_) + buffer_bytes(index_in_cluster_) +
                   buffer_bytes(landmarks_) +
                   buffer_bytes(cluster_landmark_first_) +
                   buffer_bytes(intra_offset_);
  for (const auto& m : members_) s.oracle_bytes += buffer_bytes(m);
  return s;
}

}  // namespace mspastry::net
