#include "net/transit_stub.hpp"

#include <cassert>
#include <cstdlib>
#include <vector>

namespace mspastry::net {

namespace {

int total_routers(const TransitStubParams& p) {
  const int transit = p.transit_domains * p.routers_per_transit_domain;
  return transit + transit * p.stub_domains_per_transit_router *
                       p.routers_per_stub_domain;
}

SimDuration draw_delay(Rng& rng, double lo_ms, double hi_ms) {
  return from_seconds(rng.uniform(lo_ms, hi_ms) / 1000.0);
}

/// Weight links by their delay (in ms): shortest-weight routing is then
/// shortest-delay routing, which keeps delays symmetric (equal-weight
/// paths with different delays would otherwise be tie-broken differently
/// per direction). The hierarchical structure itself — stubs reachable
/// only through their transit router — already enforces policy routing.
double weight_of(SimDuration delay) { return to_seconds(delay) * 1000.0; }

void add_weighted_link(RoutedGraph& g, int a, int b, SimDuration delay) {
  g.add_link(a, b, weight_of(delay), delay);
}

/// Connect routers [first, first+n) as a ring plus `extra` random chords,
/// which yields a connected domain with some path diversity.
void connect_domain(RoutedGraph& g, Rng& rng, int first, int n, int extra,
                    double lo_ms, double hi_ms) {
  if (n == 1) return;
  for (int i = 0; i < n; ++i) {
    const int a = first + i;
    const int b = first + (i + 1) % n;
    if (n == 2 && i == 1) break;  // avoid duplicating the single link
    add_weighted_link(g, a, b, draw_delay(rng, lo_ms, hi_ms));
  }
  for (int i = 0; i < extra; ++i) {
    const int a = first + static_cast<int>(rng.uniform_index(n));
    const int b = first + static_cast<int>(rng.uniform_index(n));
    if (a == b || std::abs(a - b) == 1 || std::abs(a - b) == n - 1) continue;
    add_weighted_link(g, a, b, draw_delay(rng, lo_ms, hi_ms));
  }
}

}  // namespace

TransitStubTopology::TransitStubTopology(const TransitStubParams& p)
    : graph_(total_routers(p)),
      first_stub_router_(p.transit_domains * p.routers_per_transit_domain) {
  assert(p.transit_domains >= 1 && p.routers_per_transit_domain >= 1);
  assert(p.stub_domains_per_transit_router >= 1 &&
         p.routers_per_stub_domain >= 1);
  Rng rng(p.seed);

  const int rpt = p.routers_per_transit_domain;

  // 1. Intra-transit-domain meshes.
  for (int d = 0; d < p.transit_domains; ++d) {
    connect_domain(graph_, rng, d * rpt, rpt, rpt / 2,
                   p.intra_transit_delay_ms_min, p.intra_transit_delay_ms_max);
  }

  // 2. Inter-transit-domain links: ring over domains plus random chords, so
  //    the transit core is connected with redundancy (as GT-ITM produces).
  auto transit_router_in = [&](int domain) {
    return domain * rpt + static_cast<int>(rng.uniform_index(rpt));
  };
  for (int d = 0; d < p.transit_domains; ++d) {
    const int e = (d + 1) % p.transit_domains;
    if (p.transit_domains == 1) break;
    if (p.transit_domains == 2 && d == 1) break;
    add_weighted_link(graph_, transit_router_in(d), transit_router_in(e),
                      draw_delay(rng, p.inter_transit_delay_ms_min,
                                 p.inter_transit_delay_ms_max));
  }
  for (int i = 0; i < p.transit_domains / 2; ++i) {
    const int d = static_cast<int>(rng.uniform_index(p.transit_domains));
    const int e = static_cast<int>(rng.uniform_index(p.transit_domains));
    if (d == e) continue;
    add_weighted_link(graph_, transit_router_in(d), transit_router_in(e),
                      draw_delay(rng, p.inter_transit_delay_ms_min,
                                 p.inter_transit_delay_ms_max));
  }

  // 3. Stub domains: each transit router sponsors
  //    stub_domains_per_transit_router stub domains; a stub domain is a
  //    small connected graph whose gateway router links up to the sponsor.
  int next = first_stub_router_;
  const int transit_routers = first_stub_router_;
  for (int tr = 0; tr < transit_routers; ++tr) {
    for (int s = 0; s < p.stub_domains_per_transit_router; ++s) {
      const int first = next;
      next += p.routers_per_stub_domain;
      connect_domain(graph_, rng, first, p.routers_per_stub_domain,
                     p.routers_per_stub_domain / 3,
                     p.intra_stub_delay_ms_min, p.intra_stub_delay_ms_max);
      add_weighted_link(graph_, tr, first,
                        draw_delay(rng, p.transit_stub_delay_ms_min,
                                   p.transit_stub_delay_ms_max));
    }
  }
  assert(next == graph_.router_count());

  // Delay-oracle clustering: the transit core is one cluster — transit
  // routes cross domain boundaries freely, so splitting it would make the
  // restricted intra-cluster Dijkstra inexact — and each stub domain is
  // its own cluster with exactly one border (its gateway), which makes
  // landmark synthesis exact for every stub-to-stub (attachable) pair.
  std::vector<int> cluster_of(static_cast<std::size_t>(graph_.router_count()));
  for (int r = 0; r < graph_.router_count(); ++r) {
    cluster_of[static_cast<std::size_t>(r)] =
        r < first_stub_router_
            ? 0
            : 1 + (r - first_stub_router_) / p.routers_per_stub_domain;
  }
  oracle_ = std::make_unique<DelayOracle>(graph_, std::move(cluster_of),
                                          p.oracle);
}

}  // namespace mspastry::net
