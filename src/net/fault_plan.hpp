#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace mspastry::net {

/// Endpoint address (same alias as in network.hpp; redeclared here so the
/// fault layer does not depend on the network header).
using Address = std::int32_t;

/// The kinds of faults the injection engine can produce. Partitions and
/// flaps drop packets; delay spikes and reordering perturb delivery times;
/// duplication injects extra copies; a stall freezes an endpoint (gray
/// failure: the process stops, the endpoint stays bound).
enum class FaultKind : std::uint8_t {
  kLoss = 0,
  kPartition,
  kFlap,
  kDelaySpike,
  kDuplicate,
  kReorder,
  kStall,
  /// Not a fault-plan rule: counted when an adversarial overlay node
  /// devours a packet it pretended to forward (Network::devour). Lives in
  /// this enum so the injection observer and per-kind counters cover all
  /// injected packet mischief uniformly.
  kAdversarialDrop,
};
inline constexpr std::size_t kFaultKindCount = 8;

const char* fault_kind_name(FaultKind k);

/// Selects the (from, to) pairs a rule applies to. A closed set of forms
/// (rather than an arbitrary predicate) keeps schedules printable and
/// byte-for-byte reproducible.
class LinkMatcher {
 public:
  /// Every packet.
  static LinkMatcher all();

  /// Packets from `src` to `dst` only (one direction). An empty set acts
  /// as a wildcard, so one_way({a}, {}) matches everything a sends.
  static LinkMatcher one_way(std::vector<Address> src,
                             std::vector<Address> dst);

  /// Packets crossing the boundary of `group`, in both directions (the
  /// classic bidirectional partition cut).
  static LinkMatcher cross(std::vector<Address> group);

  /// Packets to or from any endpoint in `eps` (all of a node's links).
  static LinkMatcher endpoint(std::vector<Address> eps);

  bool matches(Address from, Address to) const;
  std::string describe() const;

 private:
  enum class Kind : std::uint8_t { kAll, kOneWay, kCross, kEndpoint };
  Kind kind_ = Kind::kAll;
  std::unordered_set<Address> a_;  // src / group / endpoints
  std::unordered_set<Address> b_;  // dst (one_way only)
};

/// One timed fault rule: a kind, a link selector, an activity window
/// [start, end), the kind-specific parameters, and a seed for the rule's
/// private RNG stream (0 = derive from the plan seed and rule id, so
/// adding draws in one rule never perturbs another).
struct FaultRule {
  FaultKind kind = FaultKind::kLoss;
  LinkMatcher where;
  SimTime start = kTimeZero;
  SimTime end = kTimeNever;
  double probability = 1.0;      ///< loss / duplicate / reorder
  SimDuration extra_delay = 0;   ///< delay spike; max extra for reorder
  SimDuration dup_offset = 0;    ///< spacing of injected duplicate copies
  SimDuration period = 0;        ///< flap period
  double duty_up = 0.5;          ///< fraction of a flap period the link is up
  std::uint64_t seed = 0;
  std::string label;

  static FaultRule loss(LinkMatcher where, double p, SimTime start = kTimeZero,
                        SimTime end = kTimeNever);
  static FaultRule partition(LinkMatcher where, SimTime start = kTimeZero,
                             SimTime end = kTimeNever);
  static FaultRule flap(LinkMatcher where, SimDuration period, double duty_up,
                        SimTime start = kTimeZero, SimTime end = kTimeNever);
  static FaultRule delay_spike(LinkMatcher where, SimDuration extra,
                               SimTime start = kTimeZero,
                               SimTime end = kTimeNever);
  static FaultRule duplicate(LinkMatcher where, double p, SimDuration offset,
                             SimTime start = kTimeZero,
                             SimTime end = kTimeNever);
  static FaultRule reorder(LinkMatcher where, double p, SimDuration max_extra,
                           SimTime start = kTimeZero,
                           SimTime end = kTimeNever);
  static FaultRule stall(std::vector<Address> endpoints, SimTime start,
                         SimTime end);

  std::string describe() const;
};

/// What the plan decided for one packet.
struct FaultAction {
  bool drop = false;
  FaultKind drop_kind = FaultKind::kLoss;
  SimDuration extra_delay = 0;  ///< delay spikes + reorder jitter, summed
  int extra_copies = 0;         ///< injected duplicates
  SimDuration dup_offset = 0;   ///< spacing between the injected copies
};

/// A composable stack of timed fault rules, consulted by the network for
/// every packet. Rules are evaluated in insertion order; the first rule
/// that drops a packet wins. All time dependence is phase-based (a rule is
/// a pure function of the clock and its private RNG stream), so schedules
/// are deterministic and rules can be added or removed at any time without
/// rescheduling anything.
class FaultPlan {
 public:
  using RuleId = std::uint64_t;
  static constexpr RuleId kNoRule = 0;

  explicit FaultPlan(std::uint64_t seed = 0x7a0517) : base_seed_(seed) {}

  /// Reseed the derivation base for subsequently added rules (rules
  /// already installed keep their streams).
  void reseed(std::uint64_t seed) { base_seed_ = seed; }

  RuleId add(FaultRule rule);
  bool remove(RuleId id);
  void clear() { rules_.clear(); }

  std::size_t rule_count() const { return rules_.size(); }
  std::size_t active_rule_count(SimTime now) const;

  /// Consult the stack for one packet; updates injection counters.
  FaultAction apply(SimTime now, Address from, Address to);

  /// Gray failure: is endpoint `a` frozen at `now`?
  bool stalled(SimTime now, Address a) const {
    return stall_release(now, a) > now;
  }

  /// Earliest time at or after `now` when `a` is not stalled (== now when
  /// it is not stalled; handles overlapping stall windows).
  SimTime stall_release(SimTime now, Address a) const;

  /// The network reports each packet it defers because of a stall.
  void note_stall_deferred() {
    ++injected_[static_cast<std::size_t>(FaultKind::kStall)];
  }

  /// The network reports each packet devoured by an adversarial sender
  /// (Network::devour), so per-kind injection counters stay uniform.
  void note_adversarial_drop() {
    ++injected_[static_cast<std::size_t>(FaultKind::kAdversarialDrop)];
  }

  std::uint64_t injected(FaultKind k) const {
    return injected_[static_cast<std::size_t>(k)];
  }
  std::uint64_t total_injected() const;

  /// Deterministic textual dump of every installed rule, for reproducible
  /// run logs ("the fault schedule").
  std::string describe() const;

 private:
  struct Slot {
    RuleId id;
    FaultRule rule;
    Rng rng;
  };

  std::uint64_t base_seed_;
  RuleId next_id_ = 1;
  std::vector<Slot> rules_;
  std::array<std::uint64_t, kFaultKindCount> injected_{};
};

}  // namespace mspastry::net
