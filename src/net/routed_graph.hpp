#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/sim_time.hpp"

namespace mspastry::net {

/// An undirected weighted router graph with shortest-path routing.
///
/// Each link carries two values: a routing-policy *weight* (what Dijkstra
/// minimises — this is how GT-ITM-style policy routing is approximated) and
/// a *delay* (what the chosen path accumulates — what the simulator
/// charges a packet). Separating the two lets a topology prefer, say,
/// transit links without pretending they are fast.
///
/// Shortest-path trees are computed lazily per source router and cached;
/// overlay simulations only ever query delays from the few hundred to few
/// thousand routers that have end nodes attached, so caching rows is far
/// cheaper than an all-pairs matrix. The cache is a flat array of row
/// pointers indexed by source router: delay() is on the network's
/// per-packet hot path, and two array indexes beat a hash lookup there.
///
/// Concurrent reads are safe once the graph is built: the sharded
/// simulation queries delays from every worker thread, so the row cache
/// is a published-pointer scheme — an acquire load on the hot path, and a
/// mutex-guarded, double-checked Dijkstra fill for the (rare, idempotent)
/// first query of a row. Mutation (add_link) is NOT thread-safe and must
/// finish before any concurrent querying starts.
class RoutedGraph {
 public:
  explicit RoutedGraph(int routers) : adjacency_(routers), cache_(routers) {}

  ~RoutedGraph() { clear_cache(); }

  RoutedGraph(const RoutedGraph&) = delete;
  RoutedGraph& operator=(const RoutedGraph&) = delete;

  int router_count() const { return static_cast<int>(adjacency_.size()); }

  /// Add an undirected link. Both weight and delay must be positive.
  void add_link(int a, int b, double weight, SimDuration delay);

  /// One-way delay along the policy-shortest path from a to b.
  /// Unreachable pairs return kTimeNever (topology generators are expected
  /// to produce connected graphs; tests assert reachability).
  SimDuration delay(int a, int b) const;

  /// Number of hops along the policy-shortest path from a to b.
  int hops(int a, int b) const;

  std::size_t link_count() const { return links_ / 2; }

  /// Smallest single-link delay in the graph, or kTimeNever when there are
  /// no links. Every path between distinct routers traverses at least one
  /// link and link delays are positive, so this lower-bounds delay(a, b)
  /// for a != b — the conservative scheduler's lookahead source.
  SimDuration min_link_delay() const { return min_link_delay_; }

  /// True if every router can reach router 0 (hence, by symmetry of the
  /// undirected graph, the graph is connected).
  bool connected() const;

 private:
  struct Edge {
    int to;
    double weight;
    SimDuration delay;
  };

  struct Row {
    std::vector<SimDuration> delay;  // accumulated delay to each router
    std::vector<int> hops;           // hop count to each router
  };

  const Row& row_from(int src) const;
  void clear_cache();

  std::vector<std::vector<Edge>> adjacency_;
  std::size_t links_ = 0;
  SimDuration min_link_delay_ = kTimeNever;

  /// Row pointers published with release stores, read with acquire loads;
  /// fill_mutex_ serialises the Dijkstra fills.
  mutable std::vector<std::atomic<Row*>> cache_;
  mutable std::mutex fill_mutex_;
};

}  // namespace mspastry::net
