#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"

namespace mspastry::net {

/// An undirected weighted router graph with shortest-path routing.
///
/// Each link carries two values: a routing-policy *weight* (what Dijkstra
/// minimises — this is how GT-ITM-style policy routing is approximated) and
/// a *delay* (what the chosen path accumulates — what the simulator
/// charges a packet). Separating the two lets a topology prefer, say,
/// transit links without pretending they are fast.
///
/// Shortest-path trees are computed lazily per source router and cached;
/// overlay simulations only ever query delays from the few hundred to few
/// thousand routers that have end nodes attached, so caching rows is far
/// cheaper than an all-pairs matrix. The cache is a flat vector indexed
/// by source router (an unfilled row is empty): delay() is on the
/// network's per-packet hot path, and two array indexes beat a hash
/// lookup there. The vector of empty rows costs ~48 bytes per router —
/// negligible next to one filled row.
class RoutedGraph {
 public:
  explicit RoutedGraph(int routers) : adjacency_(routers) {}

  int router_count() const { return static_cast<int>(adjacency_.size()); }

  /// Add an undirected link. Both weight and delay must be positive.
  void add_link(int a, int b, double weight, SimDuration delay);

  /// One-way delay along the policy-shortest path from a to b.
  /// Unreachable pairs return kTimeNever (topology generators are expected
  /// to produce connected graphs; tests assert reachability).
  SimDuration delay(int a, int b) const;

  /// Number of hops along the policy-shortest path from a to b.
  int hops(int a, int b) const;

  std::size_t link_count() const { return links_ / 2; }

  /// True if every router can reach router 0 (hence, by symmetry of the
  /// undirected graph, the graph is connected).
  bool connected() const;

 private:
  struct Edge {
    int to;
    double weight;
    SimDuration delay;
  };

  struct Row {
    std::vector<SimDuration> delay;  // accumulated delay to each router
    std::vector<int> hops;           // hop count to each router
    bool filled() const { return !delay.empty(); }
  };

  const Row& row_from(int src) const;

  std::vector<std::vector<Edge>> adjacency_;
  std::size_t links_ = 0;
  mutable std::vector<Row> cache_;  // indexed by source router, lazy
};

}  // namespace mspastry::net
