#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/sim_time.hpp"

namespace mspastry::net {

/// An undirected weighted router graph with shortest-path routing.
///
/// Each link carries two values: a routing-policy *weight* (what Dijkstra
/// minimises — this is how GT-ITM-style policy routing is approximated) and
/// a *delay* (what the chosen path accumulates — what the simulator
/// charges a packet). Separating the two lets a topology prefer, say,
/// transit links without pretending they are fast.
///
/// Shortest-path trees are computed lazily per source router and cached;
/// overlay simulations only ever query delays from the few hundred to few
/// thousand routers that have end nodes attached, so caching rows is far
/// cheaper than an all-pairs matrix. The cache is a flat array of row
/// pointers indexed by source router: delay() is on the network's
/// per-packet hot path, and two array indexes beat a hash lookup there.
/// Beyond a few thousand routers the lazily-filled rows still approach
/// O(R^2) memory once most routers are queried — large graphs should sit
/// behind a DelayOracle (net/delay_oracle.hpp) in landmark mode, which
/// queries this class only at build time.
///
/// Concurrent reads are safe once the graph is built: the sharded
/// simulation queries delays from every worker thread, so the row cache
/// is a published-pointer scheme — an acquire load on the hot path, and a
/// mutex-guarded, double-checked Dijkstra fill for the (rare, idempotent)
/// first query of a row. Mutation (add_link) is NOT thread-safe and must
/// finish before any concurrent querying starts.
class RoutedGraph {
 public:
  struct Edge {
    int to;
    double weight;
    SimDuration delay;
  };

  explicit RoutedGraph(int routers) : adjacency_(routers), cache_(routers) {}

  ~RoutedGraph() { clear_cache(); }

  RoutedGraph(const RoutedGraph&) = delete;
  RoutedGraph& operator=(const RoutedGraph&) = delete;

  int router_count() const { return static_cast<int>(adjacency_.size()); }

  /// Add an undirected link. Both weight and delay must be positive.
  void add_link(int a, int b, double weight, SimDuration delay);

  /// One-way delay along the policy-shortest path from a to b.
  /// Unreachable pairs return kTimeNever (topology generators are expected
  /// to produce connected graphs; tests assert reachability).
  SimDuration delay(int a, int b) const;

  /// Number of hops along the policy-shortest path from a to b.
  int hops(int a, int b) const;

  std::size_t link_count() const { return links_ / 2; }

  /// Outgoing links of one router (both directions of every undirected
  /// link appear, once per endpoint). Valid until the next add_link.
  std::span<const Edge> edges(int router) const {
    return adjacency_[static_cast<std::size_t>(router)];
  }

  /// Run one full Dijkstra from src without touching the row cache: fills
  /// `delay_out[r]` / `hops_out[r]` for every router (kTimeNever / -1 when
  /// unreachable). This is the build-time entry point for DelayOracle —
  /// it allocates nothing persistent, so landmark-mode construction can
  /// sweep many sources without growing cache_bytes().
  void compute_row(int src, std::vector<SimDuration>& delay_out,
                   std::vector<int>& hops_out) const;

  /// Smallest single-link delay in the graph, or kTimeNever when there are
  /// no links. Every path between distinct routers traverses at least one
  /// link and link delays are positive, so this lower-bounds delay(a, b)
  /// for a != b — the conservative scheduler's lookahead source.
  SimDuration min_link_delay() const { return min_link_delay_; }

  /// True if every router can reach router 0 (hence, by symmetry of the
  /// undirected graph, the graph is connected).
  bool connected() const;

  /// Drop every cached Dijkstra row. Not thread-safe: callers must ensure
  /// no concurrent delay()/hops() queries are in flight.
  void clear_cache();

  // --- Row-cache telemetry --------------------------------------------------
  // The lazily-filled rows are the superlinear memory term that RSS alone
  // hides inside general allocator noise; scale_suite reports these so a
  // run that silently regrows full rows is visible.

  /// Bytes held by cached Dijkstra rows right now.
  std::uint64_t cache_bytes() const {
    return cache_bytes_.load(std::memory_order_relaxed);
  }

  /// Number of source routers with a cached row right now.
  std::uint64_t cached_rows() const {
    return cached_rows_.load(std::memory_order_relaxed);
  }

 private:
  struct Row {
    std::vector<SimDuration> delay;  // accumulated delay to each router
    std::vector<int> hops;           // hop count to each router
  };

  const Row& row_from(int src) const;

  std::vector<std::vector<Edge>> adjacency_;
  std::size_t links_ = 0;
  SimDuration min_link_delay_ = kTimeNever;

  /// Row pointers published with release stores, read with acquire loads;
  /// fill_mutex_ serialises the Dijkstra fills.
  mutable std::vector<std::atomic<Row*>> cache_;
  mutable std::mutex fill_mutex_;
  mutable std::atomic<std::uint64_t> cache_bytes_{0};
  mutable std::atomic<std::uint64_t> cached_rows_{0};
};

}  // namespace mspastry::net
