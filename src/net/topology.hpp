#pragma once

#include <span>
#include <string>

#include "common/sim_time.hpp"

namespace mspastry::net {

/// Telemetry for whatever backs a topology's delay() answers (see
/// net/delay_oracle.hpp). scale_suite reports these per phase: RSS alone
/// cannot distinguish "the overlay grew" from "the delay cache quietly
/// regrew O(R^2) Dijkstra rows".
struct DelayCacheStats {
  bool landmark_mode = false;     ///< landmark synthesis vs exact rows
  int clusters = 0;               ///< cluster count (landmark mode)
  int landmarks = 0;              ///< total landmarks (landmark mode)
  std::uint64_t oracle_bytes = 0; ///< landmark tables: O(R*k + C^2 + L^2)
  std::uint64_t row_cache_bytes = 0;  ///< lazily-filled exact Dijkstra rows
  std::uint64_t cached_rows = 0;      ///< row count behind row_cache_bytes
};

/// A router-level topology: the simulator's model of the underlying
/// Internet. It answers one question: the one-way delay between two
/// routers. The overlay's proximity metric is the round-trip delay derived
/// from this (the paper uses RTT for GATech/CorpNet and IP hop count for
/// Mercator; our Mercator-like topology expresses hops as a nominal per-hop
/// delay, so one interface serves all three).
class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of routers; valid router indices are [0, router_count()).
  virtual int router_count() const = 0;

  /// One-way network delay between two routers. Must be symmetric and zero
  /// for a == b. Implementations cache shortest-path computations.
  virtual SimDuration delay(int a, int b) const = 0;

  /// Human-readable topology name (used in reports).
  virtual std::string name() const = 0;

  /// Routers suitable for attaching end nodes (e.g. only stub routers in a
  /// transit-stub topology). Default: any router.
  virtual bool attachable(int router) const {
    (void)router;
    return true;
  }

  /// Lower bound on delay(a, b) over all pairs of *distinct* routers. The
  /// conservative sharded scheduler derives its lookahead from this: any
  /// positive bound lets shards on different routers run ahead of each
  /// other by that much. Return 0 when no positive bound is known — the
  /// scheduler then falls back to single-shard execution. Graph-backed
  /// topologies return their minimum link delay (every path between
  /// distinct routers traverses at least one link, and link delays are
  /// positive, so this is a valid bound).
  virtual SimDuration min_positive_delay() const { return 0; }

  /// Lower bound on delay between any router in group `a` and any router
  /// in group `b` (the groups are disjoint shard router sets). The safe
  /// default is the global bound above; topologies with cheap
  /// group-distance structure may refine it. Note: a scheduler that needs
  /// shard-count-invariant epoch boundaries (for cross-shard-count
  /// determinism) must use the *global* bound — this hook serves engines
  /// that trade that invariance for wider epochs.
  virtual SimDuration min_delay_between(std::span<const int> a,
                                        std::span<const int> b) const {
    (void)a;
    (void)b;
    return min_positive_delay();
  }

  /// Memory telemetry for the structure answering delay(). Default: none
  /// (analytic topologies with no cache).
  virtual DelayCacheStats delay_cache_stats() const { return {}; }
};

}  // namespace mspastry::net
