#pragma once

#include <string>

#include "common/sim_time.hpp"

namespace mspastry::net {

/// A router-level topology: the simulator's model of the underlying
/// Internet. It answers one question: the one-way delay between two
/// routers. The overlay's proximity metric is the round-trip delay derived
/// from this (the paper uses RTT for GATech/CorpNet and IP hop count for
/// Mercator; our Mercator-like topology expresses hops as a nominal per-hop
/// delay, so one interface serves all three).
class Topology {
 public:
  virtual ~Topology() = default;

  /// Number of routers; valid router indices are [0, router_count()).
  virtual int router_count() const = 0;

  /// One-way network delay between two routers. Must be symmetric and zero
  /// for a == b. Implementations cache shortest-path computations.
  virtual SimDuration delay(int a, int b) const = 0;

  /// Human-readable topology name (used in reports).
  virtual std::string name() const = 0;

  /// Routers suitable for attaching end nodes (e.g. only stub routers in a
  /// transit-stub topology). Default: any router.
  virtual bool attachable(int router) const {
    (void)router;
    return true;
  }
};

}  // namespace mspastry::net
