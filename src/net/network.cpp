#include "net/network.hpp"

#include <cassert>
#include <unordered_set>

namespace mspastry::net {

Network::Network(Simulator& sim, std::shared_ptr<const Topology> topology,
                 NetworkConfig config, std::uint64_t seed)
    : sim_(sim),
      topology_(std::move(topology)),
      config_(config),
      rng_(seed) {
  assert(topology_ != nullptr);
  for (int r = 0; r < topology_->router_count(); ++r) {
    if (topology_->attachable(r)) attachable_routers_.push_back(r);
  }
  assert(!attachable_routers_.empty());
}

Address Network::attach(int router) {
  assert(router >= 0 && router < topology_->router_count());
  endpoints_.push_back(Endpoint{router, nullptr});
  return static_cast<Address>(endpoints_.size() - 1);
}

Address Network::attach_random(Rng& rng) {
  const auto idx = rng.uniform_index(attachable_routers_.size());
  return attach(attachable_routers_[idx]);
}

void Network::bind(Address a, Handler handler) {
  assert(a >= 0 && a < static_cast<Address>(endpoints_.size()));
  endpoints_[a].handler = std::move(handler);
}

void Network::unbind(Address a) {
  assert(a >= 0 && a < static_cast<Address>(endpoints_.size()));
  endpoints_[a].handler = nullptr;
}

bool Network::bound(Address a) const {
  return a >= 0 && a < static_cast<Address>(endpoints_.size()) &&
         static_cast<bool>(endpoints_[a].handler);
}

SimDuration Network::delay(Address a, Address b) const {
  assert(a >= 0 && a < static_cast<Address>(endpoints_.size()));
  assert(b >= 0 && b < static_cast<Address>(endpoints_.size()));
  if (a == b) return 0;
  return topology_->delay(endpoints_[a].router, endpoints_[b].router) +
         2 * config_.lan_delay;
}

void Network::partition(const std::vector<Address>& group) {
  auto inside = std::make_shared<std::unordered_set<Address>>(group.begin(),
                                                              group.end());
  filter_ = [inside](Address a, Address b) {
    return inside->count(a) == inside->count(b);  // same side only
  };
}

void Network::send(Address from, Address to, PacketPtr packet) {
  assert(packet != nullptr);
  ++sent_;
  if (filter_ && !filter_(from, to)) {
    ++lost_;
    return;
  }
  if (rng_.chance(config_.loss_rate)) {
    ++lost_;
    return;
  }
  SimDuration d = delay(from, to);
  if (config_.jitter_fraction > 0.0) {
    const double f = rng_.uniform(1.0 - config_.jitter_fraction,
                                  1.0 + config_.jitter_fraction);
    d = static_cast<SimDuration>(static_cast<double>(d) * f);
  }
  if (d < 1) d = 1;  // even loopback takes one microsecond
  sim_.schedule_after(d, [this, from, to, p = std::move(packet)] {
    Endpoint& ep = endpoints_[to];
    if (!ep.handler) return;  // endpoint is gone: packet is lost
    ++delivered_;
    ep.handler(from, p);
  });
}

}  // namespace mspastry::net
