#include "net/network.hpp"

#include <cassert>
#include <unordered_set>

namespace mspastry::net {

Network::Network(Simulator& sim, std::shared_ptr<const Topology> topology,
                 NetworkConfig config, std::uint64_t seed)
    : sim_(sim),
      topology_(std::move(topology)),
      config_(config),
      rng_(seed),
      faults_(seed ^ 0xfa017c0deull) {
  assert(topology_ != nullptr);
  for (int r = 0; r < topology_->router_count(); ++r) {
    if (topology_->attachable(r)) attachable_routers_.push_back(r);
  }
  assert(!attachable_routers_.empty());
}

Address Network::attach(int router) {
  assert(router >= 0 && router < topology_->router_count());
  endpoints_.push_back(Endpoint{router, nullptr});
  return static_cast<Address>(endpoints_.size() - 1);
}

Address Network::attach_random(Rng& rng) {
  const auto idx = rng.uniform_index(attachable_routers_.size());
  return attach(attachable_routers_[idx]);
}

void Network::bind(Address a, Handler handler) {
  assert(a >= 0 && a < static_cast<Address>(endpoints_.size()));
  endpoints_[a].handler = std::move(handler);
}

void Network::unbind(Address a) {
  assert(a >= 0 && a < static_cast<Address>(endpoints_.size()));
  endpoints_[a].handler = nullptr;
}

bool Network::bound(Address a) const {
  return a >= 0 && a < static_cast<Address>(endpoints_.size()) &&
         static_cast<bool>(endpoints_[a].handler);
}

SimDuration Network::delay(Address a, Address b) const {
  assert(a >= 0 && a < static_cast<Address>(endpoints_.size()));
  assert(b >= 0 && b < static_cast<Address>(endpoints_.size()));
  if (a == b) return 0;
  return topology_->delay(endpoints_[a].router, endpoints_[b].router) +
         2 * config_.lan_delay;
}

void Network::partition(const std::vector<Address>& group) {
  heal();
  partition_rule_ =
      faults_.add(FaultRule::partition(LinkMatcher::cross(group), sim_.now()));
}

void Network::heal() {
  if (partition_rule_ != FaultPlan::kNoRule) {
    faults_.remove(partition_rule_);
    partition_rule_ = FaultPlan::kNoRule;
  }
}

void Network::send(Address from, Address to, PacketPtr packet) {
  assert(packet != nullptr);
  ++sent_;
  if (filter_ && !filter_(from, to)) {
    ++lost_;
    notify_drop(from, to, packet, DropKind::kFilter);
    return;
  }
  const SimTime now = sim_.now();
  // A stalled sender's packets leave the machine only when it resumes
  // (the process is frozen; the timers that produced them fire late).
  const SimTime depart = faults_.stall_release(now, from);
  if (depart > now) {
    faults_.note_stall_deferred();
    notify_injection(FaultKind::kStall);
  }
  FaultAction act = faults_.apply(now, from, to);
  if (act.drop) {
    ++lost_;
    notify_injection(act.drop_kind);
    notify_drop(from, to, packet, DropKind::kFault);
    return;
  }
  if (act.extra_delay > 0) notify_injection(FaultKind::kDelaySpike);
  if (rng_.chance(config_.loss_rate)) {
    ++lost_;
    notify_drop(from, to, packet, DropKind::kLoss);
    return;
  }
  SimDuration d = delay(from, to);
  if (config_.jitter_fraction > 0.0) {
    const double f = rng_.uniform(1.0 - config_.jitter_fraction,
                                  1.0 + config_.jitter_fraction);
    d = static_cast<SimDuration>(static_cast<double>(d) * f);
  }
  d += act.extra_delay;
  if (d < 1) d = 1;  // even loopback takes one microsecond
  if (act.extra_copies == 0) {
    // Common case: the caller's reference rides the wire; no refcount
    // traffic at all between send() and the delivery callback.
    schedule_delivery((depart - now) + d, from, to, std::move(packet));
    return;
  }
  schedule_delivery((depart - now) + d, from, to, packet);
  for (int i = 0; i < act.extra_copies; ++i) {
    // An injected copy occupies the wire like a real transmission, which
    // keeps the packet-accounting identity exact. All copies alias one
    // packet object; the refcount keeps it alive until the last delivery.
    ++sent_;
    notify_injection(FaultKind::kDuplicate);
    schedule_delivery(
        (depart - now) + d + (i + 1) * std::max<SimDuration>(1, act.dup_offset),
        from, to, packet);
  }
}

void Network::devour(Address from, Address to, PacketPtr packet) {
  assert(packet != nullptr);
  // The pretend transmission occupies the identity like a real one.
  ++sent_;
  ++dropped_adversarial_;
  faults_.note_adversarial_drop();
  notify_injection(FaultKind::kAdversarialDrop);
  notify_drop(from, to, packet, DropKind::kAdversary);
}

void Network::schedule_delivery(SimDuration after, Address from, Address to,
                                PacketPtr packet) {
  ++in_flight_;
  sim_.schedule_after(after,
                      [this, from, to, p = std::move(packet)]() mutable {
                        deliver(from, to, std::move(p));
                      });
}

void Network::deliver(Address from, Address to, PacketPtr packet) {
  // A stalled receiver's packets sit in its socket buffer until the
  // process resumes (gray failure: the endpoint never unbinds). The
  // deferred retry moves this delivery's reference instead of copying it
  // — under a long stall the old copy-per-retry churned a refcount
  // increment/decrement pair for every buffered packet.
  const SimTime release = faults_.stall_release(sim_.now(), to);
  if (release > sim_.now()) {
    faults_.note_stall_deferred();
    notify_injection(FaultKind::kStall);
    sim_.schedule_at(release,
                     [this, from, to, p = std::move(packet)]() mutable {
                       deliver(from, to, std::move(p));
                     });
    return;
  }
  --in_flight_;
  Endpoint& ep = endpoints_[to];
  if (!ep.handler) {
    ++dropped_unbound_;  // endpoint is gone: packet is lost on arrival
    notify_drop(from, to, packet, DropKind::kUnbound);
    return;
  }
  ++delivered_;
  ep.handler(from, packet);
}

}  // namespace mspastry::net
