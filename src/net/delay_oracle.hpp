#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/sim_time.hpp"
#include "net/routed_graph.hpp"
#include "net/topology.hpp"

namespace mspastry::net {

/// How the oracle answers delay queries.
enum class DelayOracleMode {
  kAuto,      ///< exact at or below exact_threshold routers, else landmark
  kExact,     ///< always delegate to the graph's lazy Dijkstra row cache
  kLandmark,  ///< always synthesize from cluster landmarks
};

struct DelayOracleParams {
  DelayOracleMode mode = DelayOracleMode::kAuto;

  /// Auto-mode switch point. Exact rows cost O(R) per queried source and
  /// O(R^2) worst case; below this they are both cheap and byte-exact, so
  /// every existing test/bench configuration (<= ~1200 routers) keeps its
  /// digests. Above it the landmark tables win asymptotically.
  int exact_threshold = 2048;

  /// Landmarks per cluster (cap). Border routers — routers with a link
  /// leaving their cluster — are chosen first: every inter-cluster path
  /// must pass through a border on each side, so when a cluster's borders
  /// all fit under the cap, synthesis through them is exact (see below).
  int landmarks_per_cluster = 12;
};

/// Hierarchical landmark delay oracle: answers Topology::delay() for
/// cluster-structured router graphs in O(k^2) time and
/// O(R*k + sum(n_c^2) + L^2 + C^2) memory instead of the O(R^2) a full
/// Dijkstra row cache approaches on large graphs.
///
/// The generators all build *clustered* graphs — transit-stub stub
/// domains, hier-AS autonomous systems, corpnet campuses — where
/// inter-cluster traffic funnels through a few border routers. The oracle
/// exploits that:
///
///  - intra-cluster: exact Dijkstra restricted to the cluster subgraph,
///    stored dense per cluster (sum of n_c^2 entries). For all three
///    generators the policy-shortest path between two routers of a
///    cluster never leaves it (stubs and campuses attach through a single
///    gateway; hier-AS inter-AS weights exceed any intra path), so the
///    restricted answer equals the full-graph one.
///  - inter-cluster: d(a, b) ~= min over landmark pairs of
///    d(a, L_a) + d(L_a, L_b) + d(L_b, b), with d(a, L_a) / d(L_b, b)
///    full-graph distances stored per router (R*k entries) and the
///    landmark-pair matrix dense (L^2 entries). When the true path's exit
///    border of cluster(a) and entry border of cluster(b) are both
///    landmarks, shortest-path subpath decomposition makes the synthesized
///    value exact; only clusters with more borders than the landmark cap
///    contribute error (gated at <= 15% max / <= 5% mean by tests).
///  - per-cluster-pair lower bounds: every path from cluster A to cluster
///    B contains a contiguous segment from a border of A to a border of
///    B, so min over *all* border pairs (not just landmarks) of the exact
///    border-to-border delay lower-bounds every A-to-B delay. Stored as a
///    dense C^2 matrix; min_delay_between() answers from it, which gives
///    the sharded engine per-shard-pair lookahead far wider than the
///    global min-link bound.
///
/// Correctness requirement on the graph: link weights must determine path
/// delays (equal-weight paths have equal delay). All three generators
/// satisfy it — transit-stub and corpnet use weight = delay, hier-AS uses
/// uniform per-hop delay with hop-counting weights — and the decomposition
/// arguments above rely on it.
///
/// Thread safety: construction is single-threaded and eager; afterwards
/// every query is a pure read of immutable tables, so concurrent delay()
/// calls from sharded workers need no synchronisation. In exact mode the
/// oracle delegates to the graph's published-pointer row cache, which
/// handles concurrent first-query fills itself.
class DelayOracle {
 public:
  /// `graph` must outlive the oracle and must not gain links afterwards.
  /// `cluster_of[r]` maps every router to a dense cluster id in [0, C).
  DelayOracle(const RoutedGraph& graph, std::vector<int> cluster_of,
              const DelayOracleParams& params = {});

  bool landmark_mode() const { return landmark_mode_; }
  int cluster_count() const { return cluster_count_; }
  int landmark_count() const { return static_cast<int>(landmarks_.size()); }
  int cluster_of(int router) const {
    return cluster_of_[static_cast<std::size_t>(router)];
  }

  /// One-way delay between two routers; kTimeNever when unreachable.
  SimDuration delay(int a, int b) const;

  /// Lower bound on delay between any router in `a` and any *distinct*
  /// router in `b` (Topology::min_delay_between semantics). Landmark mode
  /// answers from the border-pair matrix (plus exact intra distances when
  /// the groups share a cluster); exact mode takes the true pairwise
  /// minimum. Returns kTimeNever when no cross pair is reachable.
  SimDuration min_delay_between(std::span<const int> a,
                                std::span<const int> b) const;

  /// Exact-delay lower bound for the (ca, cb) cluster pair, ca != cb
  /// (landmark mode only; kTimeNever when the clusters cannot reach each
  /// other). Exposed for tests.
  SimDuration cluster_pair_lower_bound(int ca, int cb) const;

  DelayCacheStats stats() const;

 private:
  void build_landmark_tables();
  SimDuration intra_delay(int a, int b) const;

  const RoutedGraph& graph_;
  std::vector<int> cluster_of_;
  DelayOracleParams params_;
  int cluster_count_ = 0;
  bool landmark_mode_ = false;

  // --- Landmark-mode tables (empty in exact mode) --------------------------
  std::vector<std::vector<int>> members_;   ///< routers per cluster
  std::vector<int> index_in_cluster_;       ///< position within members_
  std::vector<int> landmarks_;              ///< global landmark router ids
  std::vector<int> cluster_landmark_first_; ///< per cluster: offset into
                                            ///< landmarks_ (C+1 entries)
  /// d(r, L) for every router r and each landmark L of r's own cluster,
  /// flat R x landmarks_per_cluster (kTimeNever-padded).
  std::vector<SimDuration> to_landmark_;
  int to_landmark_stride_ = 0;
  /// Dense landmark-pair matrix, L x L.
  std::vector<SimDuration> landmark_matrix_;
  /// Exact intra-cluster distances: per-cluster dense n_c x n_c blocks.
  std::vector<SimDuration> intra_;
  std::vector<std::size_t> intra_offset_;   ///< per cluster, into intra_
  /// C x C min border-pair exact delay (the per-cluster-pair lower bound).
  std::vector<SimDuration> pair_lower_bound_;
};

}  // namespace mspastry::net
