#include "net/routed_graph.hpp"

#include <cassert>
#include <limits>
#include <memory>
#include <queue>

namespace mspastry::net {

void RoutedGraph::add_link(int a, int b, double weight, SimDuration delay) {
  assert(a >= 0 && a < router_count());
  assert(b >= 0 && b < router_count());
  assert(a != b && weight > 0 && delay > 0);
  adjacency_[a].push_back(Edge{b, weight, delay});
  adjacency_[b].push_back(Edge{a, weight, delay});
  links_ += 2;
  if (delay < min_link_delay_) min_link_delay_ = delay;
  clear_cache();  // paths may change; generators build before querying
}

void RoutedGraph::clear_cache() {
  for (auto& slot : cache_) {
    delete slot.exchange(nullptr, std::memory_order_relaxed);
  }
}

const RoutedGraph::Row& RoutedGraph::row_from(int src) const {
  auto& slot = cache_[static_cast<std::size_t>(src)];
  if (const Row* row = slot.load(std::memory_order_acquire)) return *row;

  std::lock_guard<std::mutex> lock(fill_mutex_);
  if (const Row* row = slot.load(std::memory_order_relaxed)) return *row;

  const int n = router_count();
  auto row = std::make_unique<Row>();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  row->delay.assign(n, kTimeNever);
  row->hops.assign(n, -1);

  using Item = std::pair<double, int>;  // (policy weight, router)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[src] = 0.0;
  row->delay[src] = 0;
  row->hops[src] = 0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const Edge& e : adjacency_[u]) {
      const double nd = d + e.weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        row->delay[e.to] = row->delay[u] + e.delay;
        row->hops[e.to] = row->hops[u] + 1;
        pq.emplace(nd, e.to);
      }
    }
  }
  Row* published = row.release();
  slot.store(published, std::memory_order_release);
  return *published;
}

SimDuration RoutedGraph::delay(int a, int b) const {
  if (a == b) return 0;
  return row_from(a).delay[b];
}

int RoutedGraph::hops(int a, int b) const {
  if (a == b) return 0;
  return row_from(a).hops[b];
}

bool RoutedGraph::connected() const {
  if (router_count() == 0) return true;
  const Row& row = row_from(0);
  for (int i = 0; i < router_count(); ++i) {
    if (row.delay[i] == kTimeNever) return false;
  }
  return true;
}

}  // namespace mspastry::net
