#include "net/routed_graph.hpp"

#include <cassert>
#include <limits>
#include <queue>

namespace mspastry::net {

void RoutedGraph::add_link(int a, int b, double weight, SimDuration delay) {
  assert(a >= 0 && a < router_count());
  assert(b >= 0 && b < router_count());
  assert(a != b && weight > 0 && delay > 0);
  adjacency_[a].push_back(Edge{b, weight, delay});
  adjacency_[b].push_back(Edge{a, weight, delay});
  links_ += 2;
  cache_.clear();  // paths may change; generators build before querying
}

const RoutedGraph::Row& RoutedGraph::row_from(int src) const {
  const int n = router_count();
  if (cache_.empty()) cache_.resize(static_cast<std::size_t>(n));
  Row& row = cache_[static_cast<std::size_t>(src)];
  if (row.filled()) return row;

  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  row.delay.assign(n, kTimeNever);
  row.hops.assign(n, -1);

  using Item = std::pair<double, int>;  // (policy weight, router)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[src] = 0.0;
  row.delay[src] = 0;
  row.hops[src] = 0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const Edge& e : adjacency_[u]) {
      const double nd = d + e.weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        row.delay[e.to] = row.delay[u] + e.delay;
        row.hops[e.to] = row.hops[u] + 1;
        pq.emplace(nd, e.to);
      }
    }
  }
  return row;
}

SimDuration RoutedGraph::delay(int a, int b) const {
  if (a == b) return 0;
  return row_from(a).delay[b];
}

int RoutedGraph::hops(int a, int b) const {
  if (a == b) return 0;
  return row_from(a).hops[b];
}

bool RoutedGraph::connected() const {
  if (router_count() == 0) return true;
  const Row& row = row_from(0);
  for (int i = 0; i < router_count(); ++i) {
    if (row.delay[i] == kTimeNever) return false;
  }
  return true;
}

}  // namespace mspastry::net
