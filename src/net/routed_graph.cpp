#include "net/routed_graph.hpp"

#include <cassert>
#include <limits>
#include <memory>
#include <queue>

namespace mspastry::net {

void RoutedGraph::add_link(int a, int b, double weight, SimDuration delay) {
  assert(a >= 0 && a < router_count());
  assert(b >= 0 && b < router_count());
  assert(a != b && weight > 0 && delay > 0);
  adjacency_[a].push_back(Edge{b, weight, delay});
  adjacency_[b].push_back(Edge{a, weight, delay});
  links_ += 2;
  if (delay < min_link_delay_) min_link_delay_ = delay;
  clear_cache();  // paths may change; generators build before querying
}

void RoutedGraph::clear_cache() {
  for (auto& slot : cache_) {
    delete slot.exchange(nullptr, std::memory_order_relaxed);
  }
  cache_bytes_.store(0, std::memory_order_relaxed);
  cached_rows_.store(0, std::memory_order_relaxed);
}

void RoutedGraph::compute_row(int src, std::vector<SimDuration>& delay_out,
                              std::vector<int>& hops_out) const {
  const int n = router_count();
  assert(src >= 0 && src < n);
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  delay_out.assign(n, kTimeNever);
  hops_out.assign(n, -1);

  using Item = std::pair<double, int>;  // (policy weight, router)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  dist[src] = 0.0;
  delay_out[src] = 0;
  hops_out[src] = 0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (const Edge& e : adjacency_[u]) {
      const double nd = d + e.weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        delay_out[e.to] = delay_out[u] + e.delay;
        hops_out[e.to] = hops_out[u] + 1;
        pq.emplace(nd, e.to);
      }
    }
  }
}

const RoutedGraph::Row& RoutedGraph::row_from(int src) const {
  auto& slot = cache_[static_cast<std::size_t>(src)];
  if (const Row* row = slot.load(std::memory_order_acquire)) return *row;

  std::lock_guard<std::mutex> lock(fill_mutex_);
  if (const Row* row = slot.load(std::memory_order_relaxed)) return *row;

  auto row = std::make_unique<Row>();
  compute_row(src, row->delay, row->hops);
  cache_bytes_.fetch_add(
      sizeof(Row) +
          row->delay.capacity() * sizeof(SimDuration) +
          row->hops.capacity() * sizeof(int),
      std::memory_order_relaxed);
  cached_rows_.fetch_add(1, std::memory_order_relaxed);
  Row* published = row.release();
  slot.store(published, std::memory_order_release);
  return *published;
}

SimDuration RoutedGraph::delay(int a, int b) const {
  if (a == b) return 0;
  return row_from(a).delay[b];
}

int RoutedGraph::hops(int a, int b) const {
  if (a == b) return 0;
  return row_from(a).hops[b];
}

bool RoutedGraph::connected() const {
  if (router_count() == 0) return true;
  const Row& row = row_from(0);
  for (int i = 0; i < router_count(); ++i) {
    if (row.delay[i] == kTimeNever) return false;
  }
  return true;
}

}  // namespace mspastry::net
