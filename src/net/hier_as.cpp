#include "net/hier_as.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace mspastry::net {

HierASTopology::HierASTopology(const HierASParams& p)
    : graph_(p.autonomous_systems * p.routers_per_as),
      as_count_(p.autonomous_systems),
      hop_delay_(from_seconds(p.per_hop_delay_ms / 1000.0)) {
  assert(p.autonomous_systems >= 2 && p.routers_per_as >= 1);
  Rng rng(p.seed);
  const SimDuration hop = from_seconds(p.per_hop_delay_ms / 1000.0);

  // Policy weights: an inter-AS hop costs vastly more than any intra-AS
  // path can, so Dijkstra minimises the AS-level path first — the
  // "hierarchical routing as in the Internet" behaviour of the paper's
  // Mercator setup.
  constexpr double kIntraWeight = 1.0;
  const double inter_weight =
      kIntraWeight * p.routers_per_as * p.routers_per_as + 1.0;

  // 1. Intra-AS router graphs: ring + chords (connected, diameter O(sqrt)).
  for (int a = 0; a < p.autonomous_systems; ++a) {
    const int first = a * p.routers_per_as;
    const int n = p.routers_per_as;
    for (int i = 0; i + 1 < n; ++i) {
      graph_.add_link(first + i, first + i + 1, kIntraWeight, hop);
    }
    if (n > 2) graph_.add_link(first + n - 1, first, kIntraWeight, hop);
    for (int i = 0; i < n / 3; ++i) {
      const int x = first + static_cast<int>(rng.uniform_index(n));
      const int y = first + static_cast<int>(rng.uniform_index(n));
      if (x == y) continue;
      graph_.add_link(x, y, kIntraWeight, hop);
    }
  }

  // 2. AS-level graph via preferential attachment (heavy-tailed degrees,
  //    like the real AS graph). Each new AS links to `attachment_links`
  //    existing ASes chosen proportionally to current degree. AS x's
  //    border router for a given link is chosen at random, giving several
  //    distinct borders per AS as in reality.
  std::vector<int> degree(p.autonomous_systems, 0);
  std::vector<int> endpoints;  // one entry per link endpoint, for PA draws
  auto border = [&](int as) {
    return as * p.routers_per_as +
           static_cast<int>(rng.uniform_index(p.routers_per_as));
  };
  auto link_as = [&](int a, int b) {
    graph_.add_link(border(a), border(b), inter_weight, hop);
    ++degree[a];
    ++degree[b];
    endpoints.push_back(a);
    endpoints.push_back(b);
  };
  link_as(0, 1);
  for (int a = 2; a < p.autonomous_systems; ++a) {
    const int m = std::min(p.attachment_links, a);
    for (int i = 0; i < m; ++i) {
      // Draw an existing AS proportional to degree; retry on self-link.
      int target;
      do {
        target = endpoints[rng.uniform_index(endpoints.size())];
      } while (target == a);
      link_as(a, target);
    }
  }

  // Delay-oracle clustering: one cluster per AS. Inter-AS weights exceed
  // any intra-AS path, so shortest paths between two routers of an AS
  // never leave it and the restricted intra-cluster Dijkstra is exact.
  std::vector<int> cluster_of(static_cast<std::size_t>(graph_.router_count()));
  for (int r = 0; r < graph_.router_count(); ++r) {
    cluster_of[static_cast<std::size_t>(r)] = r / p.routers_per_as;
  }
  oracle_ = std::make_unique<DelayOracle>(graph_, std::move(cluster_of),
                                          p.oracle);
}

}  // namespace mspastry::net
