#include "net/corpnet.hpp"

#include <cassert>
#include <vector>

namespace mspastry::net {

CorpNetTopology::CorpNetTopology(const CorpNetParams& p) : graph_(p.routers) {
  assert(p.routers >= p.campuses && p.campuses >= 1);
  Rng rng(p.seed);

  // Split routers across campuses: the first two campuses are large HQ
  // sites holding ~60% of the routers; the rest are regional offices.
  std::vector<int> campus_first(p.campuses + 1, 0);
  const int hq = p.campuses >= 2 ? static_cast<int>(p.routers * 0.3) : p.routers;
  int assigned = 0;
  for (int c = 0; c < p.campuses; ++c) {
    campus_first[c] = assigned;
    int size;
    if (c < 2 && p.campuses >= 2) {
      size = hq;
    } else {
      const int remaining_campuses = p.campuses - c;
      size = (p.routers - assigned) / remaining_campuses;
    }
    assigned += size;
  }
  campus_first[p.campuses] = p.routers;

  auto intra_delay = [&] {
    return from_seconds(rng.uniform(p.intra_campus_delay_ms_min,
                                    p.intra_campus_delay_ms_max) /
                        1000.0);
  };
  auto backbone_delay = [&] {
    return from_seconds(
        rng.uniform(p.backbone_delay_ms_min, p.backbone_delay_ms_max) /
        1000.0);
  };

  // Weight = delay (ms), so shortest-weight == shortest-delay and delays
  // stay symmetric under Dijkstra tie-breaking.
  auto link = [&](int a, int b, SimDuration delay) {
    graph_.add_link(a, b, to_seconds(delay) * 1000.0, delay);
  };

  // Dense-ish campus LANs: ring + chords.
  for (int c = 0; c < p.campuses; ++c) {
    const int first = campus_first[c];
    const int n = campus_first[c + 1] - first;
    for (int i = 0; i + 1 < n; ++i) {
      link(first + i, first + i + 1, intra_delay());
    }
    if (n > 2) link(first + n - 1, first, intra_delay());
    for (int i = 0; i < n / 2; ++i) {
      const int x = first + static_cast<int>(rng.uniform_index(n));
      const int y = first + static_cast<int>(rng.uniform_index(n));
      if (x == y) continue;
      link(x, y, intra_delay());
    }
  }

  // Backbone: every campus links to both HQ campuses (hub-and-spoke with
  // two hubs), plus an HQ-to-HQ trunk.
  auto gateway = [&](int c) { return campus_first[c]; };
  if (p.campuses >= 2) {
    link(gateway(0), gateway(1), backbone_delay());
    for (int c = 2; c < p.campuses; ++c) {
      link(gateway(c), gateway(0), backbone_delay());
      link(gateway(c), gateway(1), backbone_delay());
    }
  }

  // Delay-oracle clustering: one cluster per campus. All backbone links
  // attach at campus gateways, so each cluster has a single border and
  // landmark synthesis through it is exact.
  std::vector<int> cluster_of(static_cast<std::size_t>(p.routers));
  for (int c = 0; c < p.campuses; ++c) {
    for (int r = campus_first[c]; r < campus_first[c + 1]; ++r) {
      cluster_of[static_cast<std::size_t>(r)] = c;
    }
  }
  oracle_ = std::make_unique<DelayOracle>(graph_, std::move(cluster_of),
                                          p.oracle);
}

}  // namespace mspastry::net
