#pragma once

// UDP endpoint identity for the real-time backend (src/rt).
//
// The simulator hands out net::Address values directly; a real deployment
// only knows IPv4 host:port pairs. The rt backend maps each endpoint it
// hears about to a deterministic Address so the protocol core — which keys
// every table by Address — runs unchanged. The mapping must be a pure
// function of the endpoint: 50 daemon processes never exchange address
// tables, yet their flight-recorder dumps must merge into one TraceDomain
// with consistent peer references (obs/trace_dump.hpp).

#include <cstdint>
#include <optional>
#include <string>

#include "net/network.hpp"

namespace mspastry::net {

/// An IPv4 UDP endpoint, host byte order. ip 0 / port 0 is "no endpoint"
/// (used to encode invalid NodeDescriptors on the wire).
struct Endpoint {
  std::uint32_t ip = 0;
  std::uint16_t port = 0;

  bool valid() const { return port != 0; }
  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

inline constexpr std::uint32_t kLoopbackIp = 0x7F000001;  // 127.0.0.1

/// Deterministic endpoint -> overlay address.
///
/// Loopback endpoints map to their port number (1..65535): every process
/// of a localnet run computes the same Address for the same daemon, so
/// merged traces need no remapping and a port number doubles as a
/// human-readable node name in dumps. Non-loopback endpoints fold the ip
/// into bits 16..30 (always > 65535, so the two ranges never collide);
/// that fold can alias distinct ips — AddressBook::intern detects and
/// counts such collisions. Returns kNullAddress for invalid endpoints.
inline Address address_of(Endpoint e) {
  if (!e.valid()) return kNullAddress;
  if (e.ip == kLoopbackIp || e.ip == 0) {
    return static_cast<Address>(e.port);
  }
  std::uint32_t h = e.ip * 0x9E3779B1u;  // Fibonacci hash of the ip
  h = (h >> 17) & 0x3FFFu;               // 14 bits
  return static_cast<Address>(((h + 1u) << 16) | e.port);
}

/// "a.b.c.d:port" for logs and manifests.
std::string endpoint_to_string(Endpoint e);

/// Parse "host:port" where host is a dotted quad or "localhost".
/// Returns nullopt on malformed input.
std::optional<Endpoint> parse_endpoint(const std::string& s);

}  // namespace mspastry::net
