#pragma once

#include <memory>

#include "common/rng.hpp"
#include "net/routed_graph.hpp"
#include "net/topology.hpp"

namespace mspastry::net {

/// Parameters for the transit-stub generator. The defaults reproduce the
/// structure of the paper's GATech topology (generated with the Georgia
/// Tech topology generator): 10 transit domains with an average of 5
/// routers each, 10 stub domains attached per transit router, 10 routers
/// per stub domain — 5050 routers in total.
struct TransitStubParams {
  int transit_domains = 10;
  int routers_per_transit_domain = 5;
  int stub_domains_per_transit_router = 10;
  int routers_per_stub_domain = 10;

  // Link delays (one-way). GT-ITM derives delays from embedding geometry;
  // we draw them from ranges representative of WAN/MAN/LAN links.
  double inter_transit_delay_ms_min = 20.0;
  double inter_transit_delay_ms_max = 60.0;
  double intra_transit_delay_ms_min = 4.0;
  double intra_transit_delay_ms_max = 20.0;
  double transit_stub_delay_ms_min = 2.0;
  double transit_stub_delay_ms_max = 10.0;
  double intra_stub_delay_ms_min = 0.5;
  double intra_stub_delay_ms_max = 3.0;

  std::uint64_t seed = 42;

  /// A smaller topology with the same shape, for fast test/bench runs.
  static TransitStubParams scaled(int transit_domains, int stubs_per_router,
                                  int routers_per_stub) {
    TransitStubParams p;
    p.transit_domains = transit_domains;
    p.stub_domains_per_transit_router = stubs_per_router;
    p.routers_per_stub_domain = routers_per_stub;
    return p;
  }
};

/// GATech-like transit-stub topology. End nodes attach to stub routers
/// only (via a 1 ms LAN link added by the Network layer, as in the paper).
class TransitStubTopology final : public Topology {
 public:
  explicit TransitStubTopology(const TransitStubParams& params);

  int router_count() const override { return graph_.router_count(); }
  SimDuration delay(int a, int b) const override { return graph_.delay(a, b); }
  std::string name() const override { return "GATech"; }
  bool attachable(int router) const override {
    return router >= first_stub_router_;
  }
  SimDuration min_positive_delay() const override {
    return graph_.min_link_delay();
  }

  int transit_router_count() const { return first_stub_router_; }
  const RoutedGraph& graph() const { return graph_; }

 private:
  RoutedGraph graph_;
  int first_stub_router_;
};

}  // namespace mspastry::net
