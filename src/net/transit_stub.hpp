#pragma once

#include <memory>

#include "common/rng.hpp"
#include "net/delay_oracle.hpp"
#include "net/routed_graph.hpp"
#include "net/topology.hpp"

namespace mspastry::net {

/// Parameters for the transit-stub generator. The defaults reproduce the
/// structure of the paper's GATech topology (generated with the Georgia
/// Tech topology generator): 10 transit domains with an average of 5
/// routers each, 10 stub domains attached per transit router, 10 routers
/// per stub domain — 5050 routers in total.
struct TransitStubParams {
  int transit_domains = 10;
  int routers_per_transit_domain = 5;
  int stub_domains_per_transit_router = 10;
  int routers_per_stub_domain = 10;

  // Link delays (one-way). GT-ITM derives delays from embedding geometry;
  // we draw them from ranges representative of WAN/MAN/LAN links.
  double inter_transit_delay_ms_min = 20.0;
  double inter_transit_delay_ms_max = 60.0;
  double intra_transit_delay_ms_min = 4.0;
  double intra_transit_delay_ms_max = 20.0;
  double transit_stub_delay_ms_min = 2.0;
  double transit_stub_delay_ms_max = 10.0;
  double intra_stub_delay_ms_min = 0.5;
  double intra_stub_delay_ms_max = 3.0;

  std::uint64_t seed = 42;

  /// Delay-oracle configuration. The defaults keep every graph at or below
  /// 2048 routers on byte-exact Dijkstra rows; the paper-size 5050-router
  /// GATech graph (and anything larger) switches to landmark synthesis.
  /// Clustering: the whole transit core is one cluster (transit paths roam
  /// freely across transit domains), each stub domain is its own cluster
  /// (it talks to the world only through its gateway link).
  DelayOracleParams oracle;

  /// A smaller topology with the same shape, for fast test/bench runs.
  static TransitStubParams scaled(int transit_domains, int stubs_per_router,
                                  int routers_per_stub) {
    TransitStubParams p;
    p.transit_domains = transit_domains;
    p.stub_domains_per_transit_router = stubs_per_router;
    p.routers_per_stub_domain = routers_per_stub;
    return p;
  }
};

/// GATech-like transit-stub topology. End nodes attach to stub routers
/// only (via a 1 ms LAN link added by the Network layer, as in the paper).
class TransitStubTopology final : public Topology {
 public:
  explicit TransitStubTopology(const TransitStubParams& params);

  int router_count() const override { return graph_.router_count(); }
  SimDuration delay(int a, int b) const override {
    return oracle_->delay(a, b);
  }
  std::string name() const override { return "GATech"; }
  bool attachable(int router) const override {
    return router >= first_stub_router_;
  }
  SimDuration min_positive_delay() const override {
    return graph_.min_link_delay();
  }
  SimDuration min_delay_between(std::span<const int> a,
                                std::span<const int> b) const override {
    return oracle_->min_delay_between(a, b);
  }
  DelayCacheStats delay_cache_stats() const override {
    return oracle_->stats();
  }

  int transit_router_count() const { return first_stub_router_; }
  const RoutedGraph& graph() const { return graph_; }
  const DelayOracle& oracle() const { return *oracle_; }

 private:
  RoutedGraph graph_;
  int first_stub_router_;
  std::unique_ptr<DelayOracle> oracle_;  // built after the graph, in the ctor
};

}  // namespace mspastry::net
