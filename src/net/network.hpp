#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/intrusive_ptr.hpp"
#include "common/ref_counted.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "net/fault_plan.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace mspastry::net {

/// Base class for anything carried by the network. Overlay message types
/// derive from this; the network itself never inspects payloads.
/// Intrusively refcounted: copying a PacketPtr is a non-atomic increment
/// and in-flight delivery callbacks *move* their reference (see
/// DESIGN.md "Message memory").
struct Packet : RefCounted {};

using PacketPtr = IntrusivePtr<const Packet>;

/// A network endpoint. Each overlay-node *session* gets a fresh address
/// when it is created, which models the fact that a machine that fails and
/// later rejoins is, to the protocol, a brand-new endpoint.
using Address = std::int32_t;
inline constexpr Address kNullAddress = -1;

struct NetworkConfig {
  /// Uniform probability that any packet is silently dropped in transit
  /// (the paper's "network message loss rate", varied 0–5% in Figure 6).
  double loss_rate = 0.0;

  /// Access-link delay added at each end (the paper attaches end nodes to
  /// GATech/CorpNet routers through a 1 ms LAN link; Mercator attaches
  /// directly, i.e. 0).
  SimDuration lan_delay = milliseconds(1);

  /// Multiplicative uniform jitter applied per packet: the delivery delay
  /// is scaled by a factor drawn from [1-j, 1+j]. Zero by default (the
  /// paper's simulator does not model congestion); used by the Fig-8
  /// "deployment-like" perturbed runs.
  double jitter_fraction = 0.0;
};

/// The packet-level network model: computes delays from a Topology,
/// applies uniform loss, and delivers packets to bound handlers through
/// the discrete-event simulator. It does not model congestion (neither
/// does the paper's simulator).
class Network {
 public:
  /// Called on packet delivery: (source address, packet).
  using Handler = std::function<void(Address, const PacketPtr&)>;

  Network(Simulator& sim, std::shared_ptr<const Topology> topology,
          NetworkConfig config, std::uint64_t seed);

  /// Create an endpoint attached to a specific router.
  Address attach(int router);

  /// Create an endpoint attached to a random attachable router.
  Address attach_random(Rng& rng);

  /// Install the packet handler for an endpoint. Replaces any previous
  /// handler.
  void bind(Address a, Handler handler);

  /// Remove an endpoint's handler; packets in flight to it are lost on
  /// arrival. This is how node failures manifest to the rest of the world.
  void unbind(Address a);

  bool bound(Address a) const;

  /// One-way delay between two endpoints (router path + both LAN links).
  /// This is ground truth used by the oracle to compute RDP; the protocol
  /// itself only ever learns delays by measuring probes.
  SimDuration delay(Address a, Address b) const;

  /// Round-trip delay: 2 * delay(). The overlay's proximity metric.
  SimDuration rtt(Address a, Address b) const { return 2 * delay(a, b); }

  /// Send a packet; delivery (or loss) is scheduled on the simulator.
  void send(Address from, Address to, PacketPtr packet);

  /// An adversarial sender "transmits" a packet it actually devours: the
  /// packet counts as sent and adversarially dropped (keeping the
  /// accounting identity exact), the injection and drop observers see it
  /// (DropKind::kAdversary), but delivery is never scheduled.
  void devour(Address from, Address to, PacketPtr packet);

  /// Install a reachability filter for fault injection: packets where
  /// `allow(from, to)` is false are silently dropped (both directions must
  /// be filtered by the caller if symmetry is wanted). Pass nullptr to
  /// clear. Arbitrary predicates belong here; describable, timed faults
  /// belong on the fault plan below.
  using LinkFilter = std::function<bool(Address, Address)>;
  void set_link_filter(LinkFilter allow) { filter_ = std::move(allow); }

  /// The composable fault-rule stack consulted for every packet. Scenario
  /// harnesses install timed rules (partitions, flaps, delay spikes,
  /// duplication, reordering, stalls) directly on it.
  FaultPlan& faults() { return faults_; }
  const FaultPlan& faults() const { return faults_; }

  /// Convenience wrapper over the fault plan: bidirectionally partition
  /// the endpoints in `group` from everyone else. Installs one partition
  /// rule; any caller-installed link filter and any other fault rules are
  /// left untouched. Heal with heal(), which removes only this rule.
  void partition(const std::vector<Address>& group);
  void heal();

  /// Observer invoked once per injected fault event (drop, delay, copy,
  /// stall deferral); the overlay driver wires this to its metrics.
  using InjectionObserver = std::function<void(FaultKind)>;
  void set_injection_observer(InjectionObserver o) {
    injection_observer_ = std::move(o);
  }

  /// Why the network dropped a packet (for the drop observer below).
  enum class DropKind : std::uint8_t {
    kFilter,   ///< caller-installed link filter said no
    kFault,    ///< a fault-plan rule (partition, flap, ...) dropped it
    kLoss,      ///< uniform random loss
    kUnbound,   ///< arrived at a dead endpoint
    kAdversary, ///< devoured by an adversarial sender (Network::devour)
  };

  /// Observer invoked for every packet the network loses, with the ground
  /// truth of where and why. The observability layer wires this to the
  /// sender's flight recorder; unset (the default) costs one branch per
  /// drop.
  using DropObserver =
      std::function<void(Address from, Address to, const PacketPtr&, DropKind)>;
  void set_drop_observer(DropObserver o) { drop_observer_ = std::move(o); }

  const Topology& topology() const { return *topology_; }
  int router_of(Address a) const { return endpoints_[a].router; }

  std::uint64_t packets_sent() const { return sent_; }
  std::uint64_t packets_lost() const { return lost_; }
  std::uint64_t packets_delivered() const { return delivered_; }
  /// Packets that arrived at an endpoint with no bound handler (the
  /// receiver died or never bound). Together with the others:
  /// sent == lost + delivered + dropped_unbound + dropped_adversarial
  ///      + in_flight, always.
  std::uint64_t packets_dropped_unbound() const { return dropped_unbound_; }
  /// Packets devoured by adversarial senders (Network::devour).
  std::uint64_t packets_dropped_adversarial() const {
    return dropped_adversarial_;
  }
  std::uint64_t packets_in_flight() const { return in_flight_; }

 private:
  struct Endpoint {
    int router = -1;
    Handler handler;  // empty == unbound
  };

  void schedule_delivery(SimDuration after, Address from, Address to,
                         PacketPtr packet);
  /// Takes its reference by value and moves it onward (a stalled receiver
  /// re-schedules the same reference instead of copying it per retry).
  void deliver(Address from, Address to, PacketPtr packet);
  void notify_injection(FaultKind k) {
    if (injection_observer_) injection_observer_(k);
  }
  void notify_drop(Address from, Address to, const PacketPtr& p, DropKind k) {
    if (drop_observer_) drop_observer_(from, to, p, k);
  }

  Simulator& sim_;
  std::shared_ptr<const Topology> topology_;
  NetworkConfig config_;
  Rng rng_;
  std::vector<Endpoint> endpoints_;
  std::vector<int> attachable_routers_;
  LinkFilter filter_;
  FaultPlan faults_;
  FaultPlan::RuleId partition_rule_ = FaultPlan::kNoRule;
  InjectionObserver injection_observer_;
  DropObserver drop_observer_;
  std::uint64_t sent_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_unbound_ = 0;
  std::uint64_t dropped_adversarial_ = 0;
  std::uint64_t in_flight_ = 0;
};

}  // namespace mspastry::net
