#include "net/endpoint.hpp"

#include <cstdio>
#include <cstdlib>

namespace mspastry::net {

std::string endpoint_to_string(Endpoint e) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (e.ip >> 24) & 0xFF,
                (e.ip >> 16) & 0xFF, (e.ip >> 8) & 0xFF, e.ip & 0xFF,
                unsigned{e.port});
  return buf;
}

std::optional<Endpoint> parse_endpoint(const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return std::nullopt;
  }
  const std::string host = s.substr(0, colon);
  const std::string port_str = s.substr(colon + 1);

  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) {
    return std::nullopt;
  }

  Endpoint e;
  e.port = static_cast<std::uint16_t>(port);
  if (host == "localhost") {
    e.ip = kLoopbackIp;
    return e;
  }
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trail = 0;
  if (std::sscanf(host.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trail) !=
          4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    return std::nullopt;
  }
  e.ip = (a << 24) | (b << 16) | (c << 8) | d;
  return e;
}

}  // namespace mspastry::net
