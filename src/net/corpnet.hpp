#pragma once

#include <memory>

#include "common/rng.hpp"
#include "net/delay_oracle.hpp"
#include "net/routed_graph.hpp"
#include "net/topology.hpp"

namespace mspastry::net {

/// Parameters for the CorpNet-like topology. The paper's CorpNet has 298
/// routers measured from the world-wide Microsoft corporate network with
/// minimum RTT as the proximity metric. The measurement data is not
/// available, so we synthesise a corporate WAN with the same router count:
/// a small number of campuses (two large — Redmond- and Cambridge-like —
/// plus regional offices), dense low-delay links within a campus, and a
/// small high-delay inter-campus backbone. This preserves what matters to
/// the overlay: a sharply bimodal delay distribution (sub-millisecond
/// on-campus, tens of milliseconds across the backbone) over few routers.
struct CorpNetParams {
  int routers = 298;
  int campuses = 6;
  double intra_campus_delay_ms_min = 0.2;
  double intra_campus_delay_ms_max = 2.0;
  double backbone_delay_ms_min = 15.0;
  double backbone_delay_ms_max = 80.0;
  std::uint64_t seed = 44;

  /// Delay-oracle configuration; each campus is one cluster with a single
  /// border (its gateway), so landmark synthesis would be exact — though
  /// at 298 routers the default exact threshold keeps this topology on
  /// byte-exact Dijkstra rows.
  DelayOracleParams oracle;
};

/// CorpNet-like corporate WAN topology.
class CorpNetTopology final : public Topology {
 public:
  explicit CorpNetTopology(const CorpNetParams& params);

  int router_count() const override { return graph_.router_count(); }
  SimDuration delay(int a, int b) const override {
    return oracle_->delay(a, b);
  }
  std::string name() const override { return "CorpNet"; }
  SimDuration min_positive_delay() const override {
    return graph_.min_link_delay();
  }
  SimDuration min_delay_between(std::span<const int> a,
                                std::span<const int> b) const override {
    return oracle_->min_delay_between(a, b);
  }
  DelayCacheStats delay_cache_stats() const override {
    return oracle_->stats();
  }

  const RoutedGraph& graph() const { return graph_; }
  const DelayOracle& oracle() const { return *oracle_; }

 private:
  RoutedGraph graph_;
  std::unique_ptr<DelayOracle> oracle_;  // built after the graph, in the ctor
};

}  // namespace mspastry::net
