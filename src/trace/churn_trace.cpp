#include "trace/churn_trace.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace mspastry::trace {

ChurnTrace::ChurnTrace(std::vector<ChurnEvent> events, std::string name)
    : events_(std::move(events)), name_(std::move(name)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.time < b.time;
                   });
  // Validate: each session joins exactly once, fails at most once, and the
  // failure comes after the join.
  std::unordered_map<std::int32_t, int> state;  // 0=unseen 1=joined 2=failed
  for (const ChurnEvent& e : events_) {
    auto& s = state[e.node];
    if (e.type == ChurnEventType::kJoin) {
      if (s != 0) throw std::invalid_argument("duplicate join for session");
      s = 1;
      ++session_count_;
    } else {
      if (s != 1) throw std::invalid_argument("failure without live session");
      s = 2;
    }
  }
}

ChurnTrace::SessionStats ChurnTrace::session_stats() const {
  std::unordered_map<std::int32_t, SimTime> join_time;
  SampleSet lengths;
  for (const ChurnEvent& e : events_) {
    if (e.type == ChurnEventType::kJoin) {
      join_time[e.node] = e.time;
    } else {
      lengths.add(to_seconds(e.time - join_time.at(e.node)));
    }
  }
  SessionStats s;
  s.completed_sessions = lengths.count();
  s.mean_seconds = lengths.mean();
  SampleSet copy = lengths;
  s.median_seconds = copy.median();
  return s;
}

ChurnTrace::PopulationStats ChurnTrace::population_stats() const {
  PopulationStats p;
  if (events_.empty()) return p;
  int active = 0;
  double integral = 0.0;  // node-seconds
  SimTime prev = events_.front().time;
  p.min_active = INT32_MAX;
  for (const ChurnEvent& e : events_) {
    integral += static_cast<double>(active) * to_seconds(e.time - prev);
    prev = e.time;
    active += e.type == ChurnEventType::kJoin ? 1 : -1;
    p.min_active = std::min(p.min_active, active);
    p.max_active = std::max(p.max_active, active);
  }
  const double span = to_seconds(duration() - events_.front().time);
  p.mean_active = span > 0 ? integral / span : active;
  return p;
}

std::vector<std::pair<double, double>> ChurnTrace::failure_rate_series(
    SimDuration window) const {
  // For each window: failures / (mean active nodes in window * window s).
  std::map<SimTime, double> failures;      // window index -> count
  std::map<SimTime, double> node_seconds;  // window index -> integral
  int active = 0;
  SimTime prev = 0;
  auto accumulate_active = [&](SimTime upto) {
    // Spread `active` node-time across windows between prev and upto.
    while (prev < upto) {
      const SimTime wi = prev / window;
      const SimTime wend = (wi + 1) * window;
      const SimTime seg = std::min(wend, upto) - prev;
      node_seconds[wi] += static_cast<double>(active) * to_seconds(seg);
      prev += seg;
    }
  };
  for (const ChurnEvent& e : events_) {
    accumulate_active(e.time);
    if (e.type == ChurnEventType::kFail) {
      failures[e.time / window] += 1.0;
    }
    active += e.type == ChurnEventType::kJoin ? 1 : -1;
  }
  std::vector<std::pair<double, double>> out;
  for (const auto& [wi, ns] : node_seconds) {
    if (ns <= 0) continue;
    const double f = failures.count(wi) ? failures.at(wi) : 0.0;
    out.emplace_back(to_seconds(wi * window), f / ns);
  }
  return out;
}

void ChurnTrace::save(std::ostream& out) const {
  for (const ChurnEvent& e : events_) {
    out << (e.type == ChurnEventType::kJoin ? 'J' : 'F') << ' ' << e.time
        << ' ' << e.node << '\n';
  }
}

ChurnTrace ChurnTrace::load(std::istream& in, std::string name) {
  std::vector<ChurnEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag;
    ChurnEvent e;
    if (!(ls >> tag >> e.time >> e.node)) {
      throw std::invalid_argument("ChurnTrace::load: bad line: " + line);
    }
    if (tag != 'J' && tag != 'F') {
      throw std::invalid_argument("ChurnTrace::load: bad tag: " + line);
    }
    e.type = tag == 'J' ? ChurnEventType::kJoin : ChurnEventType::kFail;
    events.push_back(e);
  }
  return ChurnTrace(std::move(events), std::move(name));
}

}  // namespace mspastry::trace
