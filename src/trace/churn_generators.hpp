#pragma once

#include "trace/churn_trace.hpp"

namespace mspastry::trace {

/// Parameters for the synthetic churn generator: a non-homogeneous Poisson
/// arrival process (diurnal + weekly modulation, as visible in the paper's
/// Figure 3) with log-normal session times (heavy-tailed, matching the
/// published mean/median pairs of the measurement studies).
struct SyntheticChurnParams {
  SimDuration duration = hours(60);
  double mean_session_seconds = 2.3 * 3600;
  double median_session_seconds = 1.0 * 3600;
  int target_population = 2000;   ///< steady-state active node count
  double diurnal_amplitude = 0.35;  ///< arrival-rate modulation, 0..1
  double weekend_factor = 0.7;      ///< arrival multiplier Sat/Sun
  double initial_fraction = 1.0;    ///< population present at t=0 / target
  std::uint64_t seed = 1;
  std::string name = "synthetic";
};

/// Generate a churn trace from the parameters above. Sessions that would
/// outlive the trace simply have no failure event.
ChurnTrace generate_synthetic(const SyntheticChurnParams& params);

/// Presets matched to the three real-world traces used by the paper.
/// `node_scale` scales the active population and `time_scale` the trace
/// length, so benches can run reduced versions with the same dynamics.
///
/// Gnutella [Saroiu et al.]: 60 h, mean session 2.3 h, median 1 h,
/// 1300–2700 active nodes.
SyntheticChurnParams gnutella_params(double node_scale = 1.0,
                                     double time_scale = 1.0,
                                     std::uint64_t seed = 11);

/// OverNet [Bhagwan et al.]: 7 days, mean session 134 min, median 79 min,
/// 260–650 active nodes.
SyntheticChurnParams overnet_params(double node_scale = 1.0,
                                    double time_scale = 1.0,
                                    std::uint64_t seed = 12);

/// Microsoft corporate network [Bolosky et al.]: 37 days, mean session
/// 37.7 h, ~15000 active nodes (20000 machines sampled), an order of
/// magnitude lower failure rate than the open-Internet traces.
SyntheticChurnParams microsoft_params(double node_scale = 1.0,
                                      double time_scale = 1.0,
                                      std::uint64_t seed = 13);

/// The paper's artificial traces: Poisson arrivals, exponential session
/// times with the given mean, steady-state population of `target_population`
/// (10,000 in the paper). No diurnal modulation.
ChurnTrace generate_poisson(SimDuration duration, double mean_session_seconds,
                            int target_population, std::uint64_t seed,
                            std::string name = "poisson");

}  // namespace mspastry::trace
