#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/stats.hpp"

namespace mspastry::trace {

enum class ChurnEventType : std::uint8_t { kJoin, kFail };

/// One churn event. `node` identifies a *session*: a machine that leaves
/// and later returns appears as a new session (matching how the paper's
/// traces were fed to the simulator — a re-joining node picks a fresh
/// nodeId and endpoint).
struct ChurnEvent {
  SimTime time = 0;
  std::int32_t node = 0;
  ChurnEventType type = ChurnEventType::kJoin;
};

/// A time-ordered sequence of node arrivals and failures that drives fault
/// injection. Every session has exactly one kJoin, optionally followed by
/// one kFail; sessions still alive at the end of the trace simply never
/// fail.
class ChurnTrace {
 public:
  ChurnTrace() = default;

  /// Build from events; sorts by time and validates the join/fail pairing.
  /// Throws std::invalid_argument on malformed input.
  explicit ChurnTrace(std::vector<ChurnEvent> events, std::string name = "");

  const std::vector<ChurnEvent>& events() const { return events_; }
  const std::string& name() const { return name_; }

  /// Time of the last event.
  SimTime duration() const {
    return events_.empty() ? 0 : events_.back().time;
  }

  /// Number of distinct sessions.
  int session_count() const { return session_count_; }

  struct SessionStats {
    double mean_seconds = 0.0;
    double median_seconds = 0.0;
    std::size_t completed_sessions = 0;  // sessions with a recorded failure
  };

  /// Statistics over completed sessions (join..fail). Open sessions are
  /// excluded, as in the measurement studies the paper cites.
  SessionStats session_stats() const;

  struct PopulationStats {
    int min_active = 0;
    int max_active = 0;
    double mean_active = 0.0;
  };

  /// Active-population extrema over the trace (sampled at every event).
  PopulationStats population_stats() const;

  /// Figure 3's metric: node failures per active node per second, averaged
  /// over fixed windows. Each point is (window start, failure rate).
  std::vector<std::pair<double, double>> failure_rate_series(
      SimDuration window) const;

  /// Serialise as text: one event per line, "J <time_us> <node>" or
  /// "F <time_us> <node>".
  void save(std::ostream& out) const;
  static ChurnTrace load(std::istream& in, std::string name = "");

 private:
  std::vector<ChurnEvent> events_;
  std::string name_;
  int session_count_ = 0;
};

}  // namespace mspastry::trace
