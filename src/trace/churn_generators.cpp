#include "trace/churn_generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace mspastry::trace {

namespace {

/// Arrival-rate modulation at time t: diurnal sinusoid (lowest around
/// 04:00) times a weekend damping factor. Mirrors the daily and weekly
/// patterns visible in the paper's Figure 3.
double modulation(SimTime t, double amplitude, double weekend_factor) {
  const double day_fraction =
      std::fmod(to_seconds(t), 86400.0) / 86400.0;  // 0 at midnight
  // Peak at ~16:00, trough at ~04:00.
  const double diurnal =
      1.0 + amplitude * std::sin(2.0 * M_PI * (day_fraction - 0.4166));
  const int day_index = static_cast<int>(to_seconds(t) / 86400.0);
  const bool weekend = day_index % 7 >= 5;
  return diurnal * (weekend ? weekend_factor : 1.0);
}

struct LogNormalSession {
  double mu;
  double sigma;

  static LogNormalSession from_mean_median(double mean, double median) {
    assert(mean >= median && median > 0);
    LogNormalSession s;
    s.mu = std::log(median);
    s.sigma = std::sqrt(std::max(0.0, 2.0 * std::log(mean / median)));
    return s;
  }

  double draw(Rng& rng) const {
    return std::max(1.0, rng.lognormal(mu, sigma));
  }
};

}  // namespace

ChurnTrace generate_synthetic(const SyntheticChurnParams& p) {
  assert(p.target_population > 0 && p.duration > 0);
  Rng rng(p.seed);
  const auto session =
      LogNormalSession::from_mean_median(p.mean_session_seconds,
                                         p.median_session_seconds);
  std::vector<ChurnEvent> events;
  std::int32_t next_node = 0;

  auto add_session = [&](SimTime join_at, double length_seconds) {
    const std::int32_t node = next_node++;
    events.push_back({join_at, node, ChurnEventType::kJoin});
    const SimTime fail_at = join_at + from_seconds(length_seconds);
    if (fail_at <= p.duration) {
      events.push_back({fail_at, node, ChurnEventType::kFail});
    }
  };

  // Initial population, staggered over the first minutes so the overlay's
  // join protocol is not hit by a thundering herd at t=0.
  const int initial =
      static_cast<int>(p.target_population * p.initial_fraction);
  for (int i = 0; i < initial; ++i) {
    const SimTime at = from_seconds(rng.uniform(0.0, 300.0));
    add_session(at, session.draw(rng));
  }

  // Ongoing arrivals: non-homogeneous Poisson by thinning. The base rate
  // keeps the population in steady state: lambda0 = N / E[session].
  const double lambda0 =
      static_cast<double>(p.target_population) / p.mean_session_seconds;
  const double weekend_max = std::max(1.0, p.weekend_factor);
  const double lambda_max = lambda0 * (1.0 + p.diurnal_amplitude) * weekend_max;
  SimTime t = from_seconds(300.0);
  while (true) {
    t += from_seconds(rng.exponential(1.0 / lambda_max));
    if (t > p.duration) break;
    const double accept =
        modulation(t, p.diurnal_amplitude, p.weekend_factor) *
        lambda0 / lambda_max;
    if (!rng.chance(accept)) continue;
    add_session(t, session.draw(rng));
  }

  return ChurnTrace(std::move(events), p.name);
}

SyntheticChurnParams gnutella_params(double node_scale, double time_scale,
                                     std::uint64_t seed) {
  SyntheticChurnParams p;
  p.duration = static_cast<SimDuration>(hours(60) * time_scale);
  p.mean_session_seconds = 2.3 * 3600.0;
  p.median_session_seconds = 1.0 * 3600.0;
  p.target_population = std::max(8, static_cast<int>(2000 * node_scale));
  p.diurnal_amplitude = 0.35;
  p.weekend_factor = 0.85;
  p.seed = seed;
  p.name = "Gnutella";
  return p;
}

SyntheticChurnParams overnet_params(double node_scale, double time_scale,
                                    std::uint64_t seed) {
  SyntheticChurnParams p;
  p.duration = static_cast<SimDuration>(days(7) * time_scale);
  p.mean_session_seconds = 134.0 * 60.0;
  p.median_session_seconds = 79.0 * 60.0;
  p.target_population = std::max(8, static_cast<int>(455 * node_scale));
  p.diurnal_amplitude = 0.40;
  p.weekend_factor = 0.80;
  p.seed = seed;
  p.name = "OverNet";
  return p;
}

SyntheticChurnParams microsoft_params(double node_scale, double time_scale,
                                      std::uint64_t seed) {
  SyntheticChurnParams p;
  p.duration = static_cast<SimDuration>(days(37) * time_scale);
  p.mean_session_seconds = 37.7 * 3600.0;
  p.median_session_seconds = 30.0 * 3600.0;
  p.target_population = std::max(8, static_cast<int>(15000 * node_scale));
  p.diurnal_amplitude = 0.30;
  p.weekend_factor = 0.55;
  p.seed = seed;
  p.name = "Microsoft";
  return p;
}

ChurnTrace generate_poisson(SimDuration duration, double mean_session_seconds,
                            int target_population, std::uint64_t seed,
                            std::string name) {
  assert(target_population > 0 && mean_session_seconds > 0);
  Rng rng(seed);
  std::vector<ChurnEvent> events;
  std::int32_t next_node = 0;

  auto add_session = [&](SimTime join_at, double length_seconds) {
    const std::int32_t node = next_node++;
    events.push_back({join_at, node, ChurnEventType::kJoin});
    const SimTime fail_at =
        join_at + from_seconds(std::max(1.0, length_seconds));
    if (fail_at <= duration) {
      events.push_back({fail_at, node, ChurnEventType::kFail});
    }
  };

  // Exponential sessions are memoryless, so drawing full session lengths
  // for the initial population gives an exact stationary start.
  for (int i = 0; i < target_population; ++i) {
    const SimTime at = from_seconds(rng.uniform(0.0, 300.0));
    add_session(at, rng.exponential(mean_session_seconds));
  }
  const double lambda =
      static_cast<double>(target_population) / mean_session_seconds;
  SimTime t = from_seconds(300.0);
  while (true) {
    t += from_seconds(rng.exponential(1.0 / lambda));
    if (t > duration) break;
    add_session(t, rng.exponential(mean_session_seconds));
  }
  return ChurnTrace(std::move(events), std::move(name));
}

}  // namespace mspastry::trace
