#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "overlay/driver.hpp"
#include "pastry/adversary.hpp"

namespace mspastry::overlay {

/// What a corrupted node does. One behavior per node keeps scenarios
/// interpretable: the f-sweep attributes every degradation to a single
/// mechanism (see bench/tab_adversary).
enum class AdversaryBehavior : std::uint8_t {
  kDrop,      ///< ack lookups upstream, then silently devour them
  kMisroute,  ///< claim roots for keys it plausibly covers, else off-path
  kLie,       ///< corrupt leaf-set and nearest-neighbour replies
};

const char* to_string(AdversaryBehavior b);
std::optional<AdversaryBehavior> behavior_from_name(std::string_view name);

/// Seeded per-node Byzantine policy: at each interception point the node
/// strikes with probability `strike` (1.0 = always-on adversary). Each
/// policy owns its RNG stream, so adversarial decisions are reproducible
/// from the scenario seed and independent of honest-path RNG draws.
class ScriptedAdversary final : public pastry::AdversaryPolicy {
 public:
  ScriptedAdversary(AdversaryBehavior behavior, double strike,
                    std::uint64_t seed)
      : behavior_(behavior), strike_(strike), rng_(seed) {}

  RouteAction on_route(const pastry::RoutedMessage& m,
                       bool leaf_covers) override;
  bool corrupt_ls_reply(pastry::LeafVec& leaf,
                        pastry::FailedVec& failed) override;
  bool corrupt_nn_reply(pastry::CandidateVec& candidates) override;

 private:
  AdversaryBehavior behavior_;
  double strike_;
  Rng rng_;
};

/// ScriptedAdversary's shard-count-invariant sibling, used by the
/// ShardedDriver. Same behaviors, but every decision is a *stateless*
/// draw keyed (adversary seed, this node's address, intercept seq) via
/// common/hash_mix.hpp — the per-node intercept sequence is itself
/// shard-count-invariant (a node's local event order never depends on
/// the partition), so the corruption schedule is byte-identical at any
/// shard count, unlike a shared mt19937 stream whose draws interleave
/// across nodes.
class KeyedAdversary final : public pastry::AdversaryPolicy {
 public:
  KeyedAdversary(AdversaryBehavior behavior, double strike,
                 std::uint64_t seed, net::Address self)
      : behavior_(behavior),
        strike_(strike),
        seed_(seed),
        self_(static_cast<std::uint64_t>(
            static_cast<std::uint32_t>(self))) {}

  RouteAction on_route(const pastry::RoutedMessage& m,
                       bool leaf_covers) override;
  bool corrupt_ls_reply(pastry::LeafVec& leaf,
                        pastry::FailedVec& failed) override;
  bool corrupt_nn_reply(pastry::CandidateVec& candidates) override;

 private:
  bool chance(double p);

  AdversaryBehavior behavior_;
  double strike_;
  std::uint64_t seed_;
  std::uint64_t self_;
  std::uint64_t seq_ = 0;
};

/// Owns the adversarial population of one driver run: installs policies
/// on existing nodes (a corrupted fraction f) or joins sybil nodes whose
/// ids cluster around a victim key (an eclipse attack). The controller
/// must outlive its use of the driver's nodes within a run; disarm() or
/// destruction detaches every surviving policy.
class AdversaryController {
 public:
  AdversaryController(OverlayDriver& driver, AdversaryBehavior behavior,
                      double strike, std::uint64_t seed)
      : driver_(driver), behavior_(behavior), strike_(strike), seed_(seed) {}
  ~AdversaryController() { disarm(); }

  AdversaryController(const AdversaryController&) = delete;
  AdversaryController& operator=(const AdversaryController&) = delete;

  /// Corrupt a deterministic pseudo-random `fraction` of the currently
  /// live nodes. Returns the addresses corrupted (sorted).
  std::vector<net::Address> corrupt_fraction(double fraction);

  /// Install a policy on one specific node (no-op if dead or already
  /// corrupted).
  void corrupt(net::Address a);

  /// Join `count` sybil nodes whose ids alternate tightly around the
  /// victim key (far denser than honest id spacing), running the driver
  /// `join_gap` per join so each completes the normal join protocol.
  /// Returns the sybil addresses in join order.
  std::vector<net::Address> join_eclipse_cluster(NodeId victim, int count,
                                                 SimDuration join_gap);

  /// Heal: detach every policy; corrupted nodes act honest again.
  void disarm();

  /// Heal an eclipse: crash every sybil this controller joined (and drop
  /// their policies).
  void kill_sybils();

  bool is_adversarial(net::Address a) const {
    return policies_.count(a) > 0;
  }
  std::size_t count() const { return policies_.size(); }
  const std::vector<net::Address>& sybils() const { return sybils_; }

  /// Deterministic one-line dump for run headers and schedule logs.
  std::string describe() const;

 private:
  OverlayDriver& driver_;
  AdversaryBehavior behavior_;
  double strike_;
  std::uint64_t seed_;
  std::unordered_map<net::Address, std::unique_ptr<ScriptedAdversary>>
      policies_;
  std::vector<net::Address> sybils_;
};

}  // namespace mspastry::overlay
