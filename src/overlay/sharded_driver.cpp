#include "overlay/sharded_driver.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/hash_mix.hpp"

namespace mspastry::overlay {

namespace {

/// All network randomness in the sharded driver is *stateless* — a
/// mix3(seed, sender, per-sender packet seq) hash (common/hash_mix.hpp) —
/// so a packet's fate never depends on how draws from other nodes
/// interleave with it, which is the property that makes the run
/// independent of the shard count.
double to_unit(std::uint64_t h) { return hash_to_unit(h); }

constexpr std::uint64_t kLossSalt = 0x6c6f7373ull;      // "loss"
constexpr std::uint64_t kJitterSalt = 0x6a697474ull;    // "jitt"
constexpr std::uint64_t kDitherSalt = 0x64697468ull;    // "dith"
constexpr std::uint64_t kNodeSalt = 0x6e6f6465ull;      // "node"
constexpr std::uint64_t kAdvSelectSalt = 0x73656c65ull; // "sele"
constexpr std::uint64_t kAdvSybilSalt = 0x73796269ull;  // "sybi"

/// Honest-rooted key redraws (below) and the bench probe conventions cap
/// redraw attempts so a pathological population cannot loop forever.
constexpr int kHonestKeyRedraws = 64;

/// Delivery-time dither, hashed from the packet identity: 0..127 us added
/// to every delay. Same-instant arrivals at one receiver from *different*
/// senders would otherwise be ordered by simulator scheduling order,
/// which is shard-dependent for cross-shard traffic (barrier drain order)
/// — the dither makes such ties vanishingly rare instead of load-bearing.
constexpr std::uint64_t kDitherMask = 127;

SimDuration compute_lookahead(const net::Topology& topo,
                              const net::NetworkConfig& nc) {
  SimDuration topo_min = topo.min_positive_delay();
  if (topo_min < 0 || topo_min >= kTimeNever) topo_min = 0;
  // Cross-shard endpoints always sit on distinct routers (the partition
  // cuts at router boundaries), so every cross-shard delay is at least
  // topo_min + both LAN links, scaled by the worst-case jitter factor.
  // Fault extra delays, duplication offsets and the dither only add.
  const SimDuration base = 2 * nc.lan_delay + topo_min;
  const double scaled =
      static_cast<double>(base) * (1.0 - nc.jitter_fraction);
  if (scaled <= 0.0) return 0;
  return static_cast<SimDuration>(scaled);
}

void add_counters(pastry::Counters& into, const pastry::Counters& c) {
  into.heartbeats_sent += c.heartbeats_sent;
  into.heartbeats_suppressed += c.heartbeats_suppressed;
  into.rt_probes_sent += c.rt_probes_sent;
  into.rt_probes_suppressed += c.rt_probes_suppressed;
  into.rt_probes_periodic += c.rt_probes_periodic;
  into.ls_probes_sent += c.ls_probes_sent;
  into.ls_probes_join += c.ls_probes_join;
  into.ls_probes_candidate += c.ls_probes_candidate;
  into.ls_probes_candidate_active += c.ls_probes_candidate_active;
  into.ls_probes_confirm += c.ls_probes_confirm;
  into.ls_probes_announce += c.ls_probes_announce;
  into.ls_probes_repair += c.ls_probes_repair;
  into.ls_probes_suspect += c.ls_probes_suspect;
  into.distance_probes_sent += c.distance_probes_sent;
  into.acks_sent += c.acks_sent;
  into.ack_timeouts += c.ack_timeouts;
  into.nodes_marked_faulty += c.nodes_marked_faulty;
  into.false_positives += c.false_positives;
  into.lookups_forwarded += c.lookups_forwarded;
  into.lookups_dropped_no_route += c.lookups_dropped_no_route;
  into.joins_started += c.joins_started;
  into.joins_completed += c.joins_completed;
  into.lookups_dropped_adversarial += c.lookups_dropped_adversarial;
  into.lookups_misrouted_adversarial += c.lookups_misrouted_adversarial;
  into.ls_replies_corrupted += c.ls_replies_corrupted;
  into.nn_replies_corrupted += c.nn_replies_corrupted;
  into.redundant_lookup_copies += c.redundant_lookup_copies;
  into.leaf_candidates_rejected += c.leaf_candidates_rejected;
  into.failure_claims_distrusted += c.failure_claims_distrusted;
}

}  // namespace

/// Per-node Env for the sharded driver. Differences from the
/// single-threaded OverlayDriver::NodeEnv, all in service of
/// shard-count-invariance:
///  - the node draws from its *own* RNG stream (seeded from the trial
///    seed and the session uid), never a shared driver stream;
///  - global bookkeeping upcalls append deferred-ledger events instead of
///    mutating the oracle/metrics directly;
///  - bootstrap candidates come from the ledger oracle's last-barrier
///    snapshot (safe to read concurrently: it only mutates at barriers).
class ShardedDriver::ShardEnv final : public pastry::Env {
 public:
  ShardEnv(ShardedDriver& d, std::size_t shard, std::uint32_t uid,
           pastry::NodeDescriptor self, obs::FlightRecorder* rec)
      : d_(d),
        shard_(shard),
        uid_(uid),
        self_(self),
        rng_(mix3(d.cfg_.seed, kNodeSalt, uid)),
        rec_(rec),
        alive_(std::make_shared<bool>(true)) {}

  void shutdown() { *alive_ = false; }
  const pastry::NodeDescriptor& self() const { return self_; }
  std::uint32_t uid() const { return uid_; }
  std::size_t shard() const { return shard_; }

  /// The per-sender packet sequence feeding the stateless loss / jitter /
  /// dither draws; app packets and overlay messages share one stream so
  /// their fates are keyed exactly like the serial Network's single
  /// stream of sends.
  std::uint64_t next_send_seq() { return send_seq_++; }

  SimTime now() const override { return d_.engine_.shard(shard_).now(); }

  TimerId schedule(SimDuration delay, InplaceCallback fn) override {
    struct Guarded {
      std::shared_ptr<bool> alive;
      InplaceCallback fn;
      void operator()() {
        if (*alive) fn();
      }
    };
    static_assert(Simulator::Callback::fits_inline<Guarded>(),
                  "liveness-guarded node timers must stay allocation-free");
    return d_.engine_.shard(shard_).schedule_after(
        delay, Guarded{alive_, std::move(fn)});
  }

  void cancel(TimerId id) override { d_.engine_.shard(shard_).cancel(id); }

  void send(net::Address to, pastry::MessagePtr msg) override {
    d_.shard_send(shard_, self_.addr, to, std::move(msg), next_send_seq());
  }

  void devour(net::Address to, pastry::MessagePtr msg) override {
    d_.shard_devour(*this, to, std::move(msg));
  }

  Rng& rng() override { return rng_; }

  pastry::MessagePool& pool() override { return d_.shards_[shard_]->pool; }

  pastry::NodeArena* routing_arena() override {
    return d_.shards_[shard_]->arena.get();
  }

  std::optional<pastry::NodeDescriptor> bootstrap_candidate() override {
    // Reads the ledger oracle's last-barrier snapshot; the draw itself
    // comes from this node's stream, so it is shard-count-invariant.
    const auto pick = d_.oracle_.random_active(rng_);
    if (!pick || pick->second == self_.addr) return std::nullopt;
    return pastry::NodeDescriptor{pick->first, pick->second};
  }

  obs::FlightRecorder* recorder() override { return rec_; }

  void on_deliver(const pastry::LookupMsg& m) override {
    LogEvent e;
    e.kind = LogEvent::Kind::kDelivered;
    e.id = m.key;
    e.a = m.source.addr;
    e.b = self_.addr;
    e.u = m.lookup_id;
    log(std::move(e));
    // App upcall on the worker thread, against per-shard app state; its
    // global effects (latency samples) go through the ledger.
    if (m.app_data != nullptr && d_.app_ != nullptr) {
      d_.app_->deliver(AppNode(&d_, this), m);
    }
  }

  void on_activated() override {
    LogEvent e;
    e.kind = LogEvent::Kind::kActivated;
    e.id = self_.id;
    e.a = self_.addr;
    e.u = static_cast<std::uint64_t>(now() - join_started_);
    log(std::move(e));
    if (!workload_started_) {
      workload_started_ = true;
      d_.start_workload_loop(*this);
    }
  }

  void on_marked_faulty(net::Address victim) override {
    // The live-victim check happens at barrier apply time against the
    // ledger's alive set — in (time, session) order, so the verdict is
    // the same for every shard count.
    LogEvent e;
    e.kind = LogEvent::Kind::kMarkedFaulty;
    e.a = victim;
    log(std::move(e));
  }

  void on_right_neighbour(
      const std::optional<pastry::NodeDescriptor>& right) override {
    LogEvent e;
    e.kind = LogEvent::Kind::kRight;
    e.id = self_.id;
    e.a = self_.addr;
    if (right) {
      e.b = right->addr;
      e.flag = true;
    }
    log(std::move(e));
  }

  /// Stamp (time, order) and append to the owning shard's log. Order is
  /// (uid << 26) | stream 0 | seq: unique across sessions and across the
  /// driver's drop-event stream (stream bit 1, keyed by send seq).
  void log(LogEvent e) {
    e.t = now();
    e.order = (static_cast<std::uint64_t>(uid_) << 26) |
              (log_seq_++ & 0xffffffull);
    d_.shards_[shard_]->log.push_back(std::move(e));
  }

  std::uint64_t next_lookup_id() {
    return (static_cast<std::uint64_t>(uid_ + 1) << 32) | lookup_seq_++;
  }

  SimTime join_started_ = 0;

 private:
  ShardedDriver& d_;
  std::size_t shard_;
  std::uint32_t uid_;
  pastry::NodeDescriptor self_;
  Rng rng_;
  obs::FlightRecorder* rec_;
  std::shared_ptr<bool> alive_;
  std::uint64_t send_seq_ = 0;
  std::uint32_t log_seq_ = 0;
  std::uint64_t lookup_seq_ = 0;
  bool workload_started_ = false;
};

ShardedDriver::ShardedDriver(std::shared_ptr<const net::Topology> topology,
                             net::NetworkConfig net_config,
                             DriverConfig config, std::size_t shards)
    : topology_(std::move(topology)),
      net_cfg_(net_config),
      cfg_(config),
      net_seed_(config.seed ^ 0x9e3779b9ull),
      lookahead_(compute_lookahead(*topology_, net_config)),
      engine_(shards, lookahead_),
      metrics_(config.metrics_window, config.warmup) {
  const std::size_t s = engine_.shards();
  shards_.reserve(s);
  for (std::size_t i = 0; i < s; ++i) {
    auto sh = std::make_unique<Shard>();
    sh->arena = std::make_unique<pastry::NodeArena>(1 << cfg_.pastry.b);
    sh->traffic =
        std::make_unique<Metrics>(cfg_.metrics_window, cfg_.warmup);
    sh->faults.reseed(mix3(net_seed_, 0xfa017c0deull, i));
    if (cfg_.obs.enabled) {
      sh->obs = std::make_unique<obs::TraceDomain>(cfg_.obs);
    }
    sh->outbox.resize(s);
    shards_.push_back(std::move(sh));
  }
}

ShardedDriver::~ShardedDriver() {
  // Tear nodes down while the simulators are still alive: node
  // destructors cancel their timers and return arena rows. The default
  // member destruction then runs the engine down (releasing in-flight
  // message references) before the pools assert live() == 0.
  for (auto& sh : shards_) {
    for (auto& [a, ns] : sh->nodes) ns.env->shutdown();
    sh->nodes.clear();
    for (auto& row : sh->outbox) row.clear();
  }
}

void ShardedDriver::add_fault_rule(const net::FaultRule& rule) {
  if (ran_) {
    throw ConfigError("add_fault_rule: install fault rules before run_trace");
  }
  for (auto& sh : shards_) sh->faults.add(rule);
}

void ShardedDriver::set_adversary(const ShardedAdversaryConfig& adv) {
  if (ran_) {
    throw ConfigError("set_adversary: install the adversary before run_trace");
  }
  if (!(adv.fraction >= 0.0 && adv.fraction <= 1.0)) {
    throw ConfigError("set_adversary: fraction must be in [0, 1]");
  }
  if (!(adv.strike >= 0.0 && adv.strike <= 1.0)) {
    throw ConfigError("set_adversary: strike must be in [0, 1]");
  }
  if (adv.eclipse_sybils < 0) {
    throw ConfigError("set_adversary: eclipse sybil count must be >= 0");
  }
  if (adv.arm_at < 0) {
    throw ConfigError("set_adversary: arm_at must be >= 0");
  }
  adv_ = adv;
}

void ShardedDriver::attach_app(ShardedApp* app) {
  if (ran_) {
    throw ConfigError("attach_app: attach the application before run_trace");
  }
  app_ = app;
}

bool ShardedDriver::session_is_adversarial(net::Address a) const {
  const auto i = static_cast<std::size_t>(a);
  return a >= 0 && i < sessions_.size() && sessions_[i].adversarial;
}

SimDuration ShardedDriver::delay_between(net::Address a,
                                         net::Address b) const {
  if (a == b) return 0;
  return topology_->delay(sessions_[static_cast<std::size_t>(a)].router,
                          sessions_[static_cast<std::size_t>(b)].router) +
         2 * net_cfg_.lan_delay;
}

void ShardedDriver::shard_send(std::size_t src_shard, net::Address from,
                               net::Address to, net::PacketPtr msg,
                               std::uint64_t send_seq) {
  assert(msg != nullptr);
  Shard& sh = *shards_[src_shard];
  const SimTime now = engine_.shard(src_shard).now();
  if (const auto* m = dynamic_cast<const pastry::Message*>(msg.get())) {
    sh.traffic->on_message(now, m->type);
  } else {
    sh.traffic->on_app_message(now);
  }
  ++sh.sent;

  // A stalled sender's packets leave the machine only when it resumes
  // (net/network.cpp has the serial twin). stall_release is *pure* — no
  // RNG, just rule arithmetic — so the shard-local plan replica returns
  // the same verdict at every shard count.
  SimDuration stall = 0;
  const SimTime depart = sh.faults.stall_release(now, from);
  if (depart > now) {
    sh.faults.note_stall_deferred();
    sh.traffic->on_fault_injected(net::FaultKind::kStall);
    stall = depart - now;
  }

  net::FaultAction act = sh.faults.apply(now, from, to);
  if (act.drop) {
    ++sh.lost;
    sh.traffic->on_fault_injected(act.drop_kind);
    note_send_drop(sh, now, from, to, *msg);
    return;
  }
  if (act.extra_delay > 0) {
    sh.traffic->on_fault_injected(net::FaultKind::kDelaySpike);
  }
  if (net_cfg_.loss_rate > 0.0 &&
      to_unit(mix3(net_seed_ ^ kLossSalt,
                   static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)),
                   send_seq)) < net_cfg_.loss_rate) {
    ++sh.lost;
    note_send_drop(sh, now, from, to, *msg);
    return;
  }

  SimDuration d = delay_between(from, to);
  if (net_cfg_.jitter_fraction > 0.0) {
    const double u = to_unit(mix3(
        net_seed_ ^ kJitterSalt,
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)),
        send_seq));
    const double f = 1.0 - net_cfg_.jitter_fraction +
                     2.0 * net_cfg_.jitter_fraction * u;
    d = static_cast<SimDuration>(static_cast<double>(d) * f);
  }
  d += act.extra_delay;
  if (d < 1) d = 1;
  d += static_cast<SimDuration>(
      mix3(net_seed_ ^ kDitherSalt,
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)),
           send_seq) &
      kDitherMask);

  schedule_delivery(src_shard, now + stall + d, from, to, msg, send_seq);
  for (int i = 0; i < act.extra_copies; ++i) {
    ++sh.sent;
    sh.traffic->on_fault_injected(net::FaultKind::kDuplicate);
    const SimDuration off =
        (i + 1) * std::max<SimDuration>(1, act.dup_offset);
    schedule_delivery(src_shard, now + stall + d + off, from, to, msg,
                      send_seq);
  }
}

void ShardedDriver::shard_devour(ShardEnv& env, net::Address to,
                                 pastry::MessagePtr msg) {
  assert(msg != nullptr);
  Shard& sh = *shards_[env.shard()];
  // The pretend transmission occupies the packet-accounting identity like
  // a real one (the serial Network::devour does the same); the lookup id,
  // if any, goes through the ledger so the eventual lost verdict is
  // blamed on the adversary in S-invariant order.
  ++sh.sent;
  ++sh.dropped_adversarial;
  sh.faults.note_adversarial_drop();
  sh.traffic->on_fault_injected(net::FaultKind::kAdversarialDrop);
  if (sh.obs != nullptr) {
    const auto* rm = dynamic_cast<const pastry::RoutedMessage*>(msg.get());
    if (rm != nullptr && rm->trace_id != 0) {
      sh.obs->recorder_for(env.self().addr)
          .record(env.now(), obs::EventKind::kAdversaryDrop, rm->trace_id,
                  to, rm->hops, rm->hop_seq);
    }
  }
  if (const auto* lm = dynamic_cast<const pastry::LookupMsg*>(msg.get())) {
    LogEvent e;
    e.kind = LogEvent::Kind::kDevoured;
    e.u = lm->lookup_id;
    env.log(std::move(e));
  }
}

void ShardedDriver::note_send_drop(Shard& sh, SimTime now, net::Address from,
                                   net::Address to, const net::Packet& msg) {
  if (sh.obs == nullptr) return;
  const auto* rm = dynamic_cast<const pastry::RoutedMessage*>(&msg);
  if (rm == nullptr || rm->trace_id == 0) return;
  sh.obs->recorder_for(from).record(now, obs::EventKind::kNetDrop,
                                    rm->trace_id, to, rm->hops, rm->hop_seq);
}

void ShardedDriver::schedule_delivery(std::size_t src_shard, SimTime at,
                                      net::Address from, net::Address to,
                                      net::PacketPtr msg,
                                      std::uint64_t send_seq) {
  ++shards_[src_shard]->in_flight;
  const std::size_t dst =
      sessions_[static_cast<std::size_t>(to)].shard;
  if (dst == src_shard) {
    engine_.shard(dst).schedule_at(
        at, [this, dst, from, to, send_seq, m = std::move(msg)]() mutable {
          deliver(dst, from, to, send_seq, std::move(m));
        });
    return;
  }
  // Lookahead contract: a cross-shard delivery can never land inside the
  // epoch that produced it.
  assert(at >= engine_.epoch_end());
  shards_[src_shard]->outbox[dst].push_back(
      OutMsg{at, from, to, send_seq, std::move(msg)});
}

void ShardedDriver::deliver(std::size_t dst_shard, net::Address from,
                            net::Address to, std::uint64_t send_seq,
                            net::PacketPtr msg) {
  Shard& sh = *shards_[dst_shard];
  // A stalled receiver's packets sit in its socket buffer until the
  // process resumes (gray failure: the endpoint never unbinds). The
  // expiry timer lives on the *receiving* session's shard, so cross-shard
  // timing never observes a partial stall; the verdict itself is pure.
  const SimTime dnow = engine_.shard(dst_shard).now();
  const SimTime release = sh.faults.stall_release(dnow, to);
  if (release > dnow) {
    sh.faults.note_stall_deferred();
    sh.traffic->on_fault_injected(net::FaultKind::kStall);
    engine_.shard(dst_shard).schedule_at(
        release, [this, dst_shard, from, to, send_seq,
                  p = std::move(msg)]() mutable {
          deliver(dst_shard, from, to, send_seq, std::move(p));
        });
    return;
  }
  --sh.in_flight;
  const auto it = sh.nodes.find(to);
  if (it == sh.nodes.end()) {
    ++sh.unbound;
    // The sender's ring may live on another shard: defer the drop record
    // through the ledger (ordered by the sender's packet seq, stream 1 —
    // disjoint from the sessions' upcall stream 0).
    if (cfg_.obs.enabled) {
      const auto* rm =
          dynamic_cast<const pastry::RoutedMessage*>(msg.get());
      if (rm != nullptr && rm->trace_id != 0) {
        LogEvent e;
        e.t = engine_.shard(dst_shard).now();
        e.order =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
             << 26) |
            (1ull << 24) | (send_seq & 0xffffffull);
        e.kind = LogEvent::Kind::kNetDropObs;
        e.a = from;
        e.b = to;
        e.u = rm->trace_id;
        e.v = (static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(rm->hops))
               << 32) |
              static_cast<std::uint32_t>(rm->hop_seq & 0xffffffffull);
        sh.log.push_back(std::move(e));
      }
    }
    return;
  }
  ++sh.delivered;
  if (auto m = dynamic_pointer_cast<const pastry::Message>(msg)) {
    it->second.node->handle(from, std::move(m));
    return;
  }
  if (app_ != nullptr) {
    app_->packet(AppNode(this, it->second.env.get()), from, msg);
  }
}

void ShardedDriver::create_session(std::uint32_t uid) {
  Session& s = sessions_[uid];
  Shard& sh = *shards_[s.shard];
  const net::Address addr = static_cast<net::Address>(uid);
  const pastry::NodeDescriptor self{s.id, addr};

  NodeState ns;
  obs::FlightRecorder* rec =
      sh.obs != nullptr ? &sh.obs->recorder_for(addr) : nullptr;
  ns.env = std::make_unique<ShardEnv>(*this, s.shard, uid, self, rec);
  ns.node = std::make_unique<pastry::PastryNode>(cfg_.pastry, self, *ns.env,
                                                 sh.counters);
  ShardEnv* env = ns.env.get();
  pastry::PastryNode* node = ns.node.get();
  env->join_started_ = engine_.shard(s.shard).now();
  // Adversarial sessions created at or after the arming instant (sybils,
  // churn rejoins) arm immediately; earlier ones wait for the arm sweep.
  if (s.adversarial && adv_ && env->join_started_ >= adv_->arm_at) {
    install_policy(uid, ns);
  }
  sh.nodes.emplace(addr, std::move(ns));

  LogEvent e;
  e.kind = LogEvent::Kind::kJoinStarted;
  e.id = s.id;
  e.a = addr;
  env->log(std::move(e));

  if (uid == first_session_) {
    // Exactly one designated session seeds the overlay; every other join
    // waits until a candidate is visible. (Letting any join with an empty
    // oracle snapshot bootstrap would split the ring: snapshot visibility
    // lags by up to an epoch.)
    node->bootstrap();
    return;
  }
  try_join(uid);
}

void ShardedDriver::try_join(std::uint32_t uid) {
  Shard& sh = *shards_[sessions_[uid].shard];
  const auto it = sh.nodes.find(static_cast<net::Address>(uid));
  if (it == sh.nodes.end()) return;  // session died while waiting
  ShardEnv& env = *it->second.env;
  if (const auto cand = env.bootstrap_candidate()) {
    it->second.node->join(*cand);
  } else {
    env.schedule(kJoinRetryDelay, [this, uid] { try_join(uid); });
  }
}

void ShardedDriver::kill_session(std::uint32_t uid) {
  Shard& sh = *shards_[sessions_[uid].shard];
  const auto it = sh.nodes.find(static_cast<net::Address>(uid));
  if (it == sh.nodes.end()) return;
  ShardEnv& env = *it->second.env;
  LogEvent e;
  e.kind = LogEvent::Kind::kFailed;
  e.id = sessions_[uid].id;
  e.a = static_cast<net::Address>(uid);
  env.log(std::move(e));
  env.shutdown();
  sh.nodes.erase(it);  // node destroyed on its own shard; timers cancelled
}

void ShardedDriver::arm_session(std::uint32_t uid) {
  // Install the policy on one corrupted session if it is live; a session
  // dead at arm time arms on its next join (create_session).
  Shard& sh = *shards_[sessions_[uid].shard];
  const auto it = sh.nodes.find(static_cast<net::Address>(uid));
  if (it != sh.nodes.end()) install_policy(uid, it->second);
}

void ShardedDriver::install_policy(std::uint32_t uid, NodeState& ns) {
  if (ns.policy != nullptr) return;
  ns.policy = std::make_unique<KeyedAdversary>(
      adv_->behavior, adv_->strike, adv_->seed,
      static_cast<net::Address>(uid));
  ns.node->set_adversary(ns.policy.get());
}

double ShardedDriver::workload_rate(SimTime now) const {
  return app_ != nullptr ? app_->workload_rate(now)
                         : cfg_.lookup_rate_per_node;
}

void ShardedDriver::start_workload_loop(ShardEnv& env) {
  if (!workload_on_) return;
  schedule_workload_tick(env);
}

void ShardedDriver::schedule_workload_tick(ShardEnv& env) {
  // Per-node Poisson process: the aggregate over N active nodes is
  // Poisson with rate N * rate, exactly like the single-threaded driver's
  // aggregate process, but each node draws only from its own stream. With
  // an app attached the rate is the app's (a pure function of time,
  // re-sampled each tick — the same piecewise approximation the serial
  // fig8 pump uses). The callback is liveness-guarded by env.schedule, so
  // a killed node's pending tick fires into nothing.
  const double rate = std::max(workload_rate(env.now()), 1e-6);
  const SimDuration gap = from_seconds(env.rng().exponential(1.0 / rate));
  ShardEnv* e = &env;
  env.schedule(gap, [this, e] {
    if (!workload_on_) return;
    // Armed adversarial sessions issue no workload: sources stay honest,
    // matching the serial benches' probe convention, so failure rates
    // measure the adversary's effect on *victims*, not its self-drops.
    const bool armed_adversary =
        adv_ && e->now() >= adv_->arm_at &&
        sessions_[e->uid()].adversarial;
    if (!armed_adversary) {
      if (app_ != nullptr) {
        app_->workload_tick(AppNode(this, e));
      } else {
        issue_workload_lookup(*e);
      }
    }
    schedule_workload_tick(*e);
  });
}

void ShardedDriver::issue_workload_lookup(ShardEnv& env) {
  Shard& sh = *shards_[sessions_[env.uid()].shard];
  const auto it = sh.nodes.find(static_cast<net::Address>(env.uid()));
  if (it == sh.nodes.end()) return;
  NodeId key = env.rng().node_id();
  if (adv_ && env.now() >= adv_->arm_at) {
    // Honest-rooted keys (bounded redraws from the node's own stream,
    // against the barrier-snapshot oracle — concurrent reads are safe):
    // the serial adversary benches redraw probe keys the same way, so
    // correctness verdicts measure misrouting, not keys the adversary
    // legitimately owns.
    for (int i = 0; i < kHonestKeyRedraws; ++i) {
      const auto root = oracle_.root_of(key);
      if (!root || !session_is_adversarial(*root)) break;
      key = env.rng().node_id();
    }
  }
  const std::uint64_t id = env.next_lookup_id();
  LogEvent e;
  e.kind = LogEvent::Kind::kIssued;
  e.id = key;
  e.a = env.self().addr;
  e.u = id;
  env.log(std::move(e));
  it->second.node->lookup(key, id, 0, cfg_.lookups_want_ack, nullptr);
}

void ShardedDriver::apply_barrier(SimTime epoch_end) {
  (void)epoch_end;
  const std::size_t s = shards_.size();
  // 1. Hand cross-shard messages over: clone into the destination pool,
  //    schedule there, release the source-pool reference. Single-threaded
  //    and in (src, dst, append) order — but delivery *times* carry the
  //    per-packet dither, so receiver-side interleaving doesn't depend on
  //    this order.
  for (std::size_t src = 0; src < s; ++src) {
    for (std::size_t dst = 0; dst < s; ++dst) {
      auto& row = shards_[src]->outbox[dst];
      for (OutMsg& m : row) {
        net::PacketPtr clone;
        if (const auto* pm =
                dynamic_cast<const pastry::Message*>(m.msg.get())) {
          clone = pastry::clone_message(*pm, shards_[dst]->pool);
        } else if (const auto* app = dynamic_cast<const pastry::CloneableAppData*>(
                       m.msg.get())) {
          clone = app->clone_into(shards_[dst]->pool);
        } else {
          // Single-threaded barrier context: throwing is sound, and the
          // config error (an app packet type that cannot cross shards)
          // must not be silently dropped in Release builds.
          throw pastry::CodecError(
              pastry::WireStatus::kAppData,
              "sharded barrier: cross-shard app packet does not implement "
              "CloneableAppData");
        }
        engine_.shard(dst).schedule_at(
            m.t, [this, dst, from = m.from, to = m.to, seq = m.send_seq,
                  c = std::move(clone)]() mutable {
              deliver(dst, from, to, seq, std::move(c));
            });
        m.msg = nullptr;
      }
      row.clear();
    }
  }
  // 2. Apply the deferred ledger in global (time, session-order) order.
  log_scratch_.clear();
  for (auto& sh : shards_) {
    log_scratch_.insert(log_scratch_.end(), sh->log.begin(), sh->log.end());
    sh->log.clear();
  }
  std::sort(log_scratch_.begin(), log_scratch_.end(),
            [](const LogEvent& a, const LogEvent& b) {
              return a.t != b.t ? a.t < b.t : a.order < b.order;
            });
  for (const LogEvent& e : log_scratch_) apply_log_event(e);
}

void ShardedDriver::apply_log_event(const LogEvent& e) {
  switch (e.kind) {
    case LogEvent::Kind::kJoinStarted:
      metrics_.on_join_started(e.t);
      metrics_.population_change(e.t, +1);
      alive_.emplace(e.a, e.id);
      break;
    case LogEvent::Kind::kActivated:
      oracle_.node_activated(e.id, e.a);
      metrics_.on_join_completed(e.t, static_cast<SimDuration>(e.u));
      break;
    case LogEvent::Kind::kFailed:
      oracle_.node_failed(e.id);
      metrics_.population_change(e.t, -1);
      alive_.erase(e.a);
      break;
    case LogEvent::Kind::kRight:
      oracle_.node_reports_right(
          e.id, e.flag ? std::optional<net::Address>(e.b) : std::nullopt);
      break;
    case LogEvent::Kind::kIssued:
      metrics_.on_lookup_issued(e.u, e.t, e.a, e.id);
      break;
    case LogEvent::Kind::kDelivered: {
      // Scored against the ledger oracle as of all events before this one
      // in global order — for every shard count, the same order.
      const auto root = oracle_.root_of(e.id);
      const bool correct = root && *root == e.b;
      SimDuration nd = 0;
      if (correct && e.a != e.b) nd = delay_between(e.a, e.b);
      // Same attribution rule as the serial driver: a wrong delivery by an
      // armed adversarial node is a misroute, anything else stale state.
      const auto cause =
          (!correct && adv_ && e.t >= adv_->arm_at &&
           session_is_adversarial(e.b))
              ? Metrics::IncorrectCause::kAdversarialMisroute
              : Metrics::IncorrectCause::kStaleLeafSet;
      metrics_.on_lookup_delivered(e.u, e.t, correct, nd, cause);
      break;
    }
    case LogEvent::Kind::kDevoured:
      metrics_.on_lookup_devoured(e.u);
      break;
    case LogEvent::Kind::kAppSample:
      app_samples_.push_back(std::bit_cast<double>(e.u));
      break;
    case LogEvent::Kind::kMarkedFaulty:
      if (alive_.count(e.a) > 0) ++ledger_false_positives_;
      break;
    case LogEvent::Kind::kNetDropObs: {
      Shard& sh = *shards_[sessions_[static_cast<std::size_t>(e.a)].shard];
      if (sh.obs != nullptr) {
        sh.obs->recorder_for(e.a).record(
            e.t, obs::EventKind::kNetDrop, e.u, e.b,
            static_cast<std::int32_t>(e.v >> 32),
            e.v & 0xffffffffull);
      }
      break;
    }
  }
}

void ShardedDriver::run_trace(const trace::ChurnTrace& trace,
                              SimDuration extra) {
  if (ran_) {
    throw ConfigError("run_trace: a ShardedDriver runs exactly one trace");
  }
  ran_ = true;
  if (app_ != nullptr) app_->on_run_start(*this, shards_.size());

  // --- Pre-assignment: sessions get ids, routers, addresses and their
  // shard *before* anything runs, from the trial seed alone. ------------
  std::vector<int> attachable;
  for (int r = 0; r < topology_->router_count(); ++r) {
    if (topology_->attachable(r)) attachable.push_back(r);
  }
  assert(!attachable.empty());

  std::unordered_map<std::int32_t, std::uint32_t> uid_of;
  for (const trace::ChurnEvent& ev : trace.events()) {
    if (ev.type != trace::ChurnEventType::kJoin) continue;
    if (uid_of.emplace(ev.node, sessions_.size()).second) {
      sessions_.push_back(Session{});
      sessions_.back().first_join = ev.time;
    }
  }
  {
    Rng setup(cfg_.seed);
    for (Session& s : sessions_) {
      s.router = attachable[setup.uniform_index(attachable.size())];
      s.id = setup.node_id();
    }
  }

  // --- Adversarial population, decided before the partition so the
  // corrupted set and sybil sessions are identical at any shard count.
  const std::size_t n_trace = sessions_.size();
  if (adv_) {
    if (adv_->fraction > 0.0) {
      // Rank trace sessions by a stateless hash of (adversary seed, salt,
      // uid) and corrupt the round(f*N) smallest — reproducible from the
      // seeds alone, independent of shard layout and map iteration order.
      std::vector<std::uint32_t> rank(n_trace);
      for (std::uint32_t i = 0; i < n_trace; ++i) rank[i] = i;
      std::sort(rank.begin(), rank.end(),
                [&](std::uint32_t a, std::uint32_t b) {
                  const std::uint64_t ha = mix3(adv_->seed, kAdvSelectSalt, a);
                  const std::uint64_t hb = mix3(adv_->seed, kAdvSelectSalt, b);
                  return ha != hb ? ha < hb : a < b;
                });
      const auto k = static_cast<std::size_t>(
          adv_->fraction * static_cast<double>(n_trace) + 0.5);
      for (std::size_t i = 0; i < std::min(k, n_trace); ++i) {
        sessions_[rank[i]].adversarial = true;
      }
    }
    // Eclipse sybils: extra sessions that join at arm time with ids
    // alternating ±k·2^104 around the victim, the same clustering the
    // serial AdversaryController::join_eclipse_cluster produces.
    Rng sybil_setup(mix3(adv_->seed, kAdvSybilSalt, 0));
    for (int i = 0; i < adv_->eclipse_sybils; ++i) {
      const U128 offset =
          U128{0, static_cast<std::uint64_t>(i / 2 + 1)} << 104;
      const U128 id = (i % 2 == 0) ? adv_->eclipse_victim.value() + offset
                                   : adv_->eclipse_victim.value() - offset;
      Session sy;
      sy.first_join = adv_->arm_at;
      sy.router = attachable[sybil_setup.uniform_index(attachable.size())];
      sy.id = NodeId{id};
      sy.adversarial = true;
      sy.sybil = true;
      sybils_.push_back(static_cast<net::Address>(sessions_.size()));
      sessions_.push_back(sy);
    }
  }

  // Router-contiguous partition: sort sessions by (router, uid) and cut
  // into near-equal blocks only at router boundaries, so cross-shard
  // pairs always sit on distinct routers (the lookahead's premise).
  const std::size_t n = sessions_.size();
  const std::size_t s = shards_.size();
  std::vector<std::uint32_t> order(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return sessions_[a].router != sessions_[b].router
                         ? sessions_[a].router < sessions_[b].router
                         : a < b;
            });
  const std::size_t target = n == 0 ? 1 : (n + s - 1) / s;
  std::size_t shard = 0, in_block = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (in_block >= target && shard + 1 < s &&
        sessions_[order[i]].router != sessions_[order[i - 1]].router) {
      ++shard;
      in_block = 0;
    }
    sessions_[order[i]].shard = shard;
    ++in_block;
  }

  // Per-shard-pair lookahead (opt-in): the global bound assumes the two
  // closest routers in the whole topology could land on different shards,
  // but the router-contiguous partition usually keeps them together. The
  // real bound is the minimum Topology::min_delay_between over the actual
  // shard-pair router sets — often an inter-cluster backbone delay, one
  // to two orders of magnitude wider than the global min link.
  if (cfg_.per_pair_lookahead && shards_.size() > 1) {
    std::vector<std::vector<int>> shard_routers(s);
    for (std::size_t i = 0; i < n; ++i) {
      const Session& sess = sessions_[order[i]];
      auto& list = shard_routers[sess.shard];
      if (list.empty() || list.back() != sess.router) {
        list.push_back(sess.router);  // order[] is router-sorted: dedup
      }
    }
    SimDuration bound = kTimeNever;
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = i + 1; j < s; ++j) {
        const SimDuration d =
            topology_->min_delay_between(shard_routers[i], shard_routers[j]);
        if (d < bound) bound = d;
      }
    }
    if (bound > 0 && bound < kTimeNever) {
      const double scaled = static_cast<double>(2 * net_cfg_.lan_delay + bound) *
                            (1.0 - net_cfg_.jitter_fraction);
      if (scaled > 0.0) {
        engine_.raise_lookahead(static_cast<SimDuration>(scaled));
        lookahead_ = engine_.lookahead();
      }
    }
  }

  // Designated bootstrap: the earliest-joining *trace* session (uid
  // breaks ties) — sybils never bootstrap the overlay.
  first_session_ = 0;
  for (std::uint32_t i = 1; i < n_trace; ++i) {
    if (sessions_[i].first_join < sessions_[first_session_].first_join) {
      first_session_ = i;
    }
  }

  // --- Schedule the churn on each session's own shard. ------------------
  for (const trace::ChurnEvent& ev : trace.events()) {
    const auto it = uid_of.find(ev.node);
    if (it == uid_of.end()) continue;  // fail without a join: malformed
    const std::uint32_t uid = it->second;
    const bool join = ev.type == trace::ChurnEventType::kJoin;
    engine_.shard(sessions_[uid].shard)
        .schedule_at(ev.time, [this, uid, join] {
          if (join) {
            create_session(uid);
          } else {
            kill_session(uid);
          }
        });
  }

  // --- Arm the adversary: one event per corrupted session (scheduled on
  // its own shard — the event *count* must not depend on the shard
  // count), and sybil joins through the normal session path.
  if (adv_) {
    for (std::uint32_t i = 0; i < n_trace; ++i) {
      if (!sessions_[i].adversarial) continue;
      engine_.shard(sessions_[i].shard)
          .schedule_at(adv_->arm_at, [this, i] { arm_session(i); });
    }
    for (const net::Address a : sybils_) {
      const auto uid = static_cast<std::uint32_t>(a);
      engine_.shard(sessions_[uid].shard)
          .schedule_at(adv_->arm_at, [this, uid] { create_session(uid); });
    }
  }

  workload_on_ = cfg_.lookup_rate_per_node > 0.0 || app_ != nullptr;
  engine_.run_until(trace.duration() + extra,
                    [this](SimTime e) { apply_barrier(e); });
  finish();
}

void ShardedDriver::finish() {
  if (finished_) return;
  finished_ = true;
  workload_on_ = false;
  apply_barrier(kTimeNever);  // flush any residual ledger entries

  const SimTime end = engine_.shard(0).now();
  for (auto& sh : shards_) {
    metrics_.merge_traffic_from(*sh->traffic);
    add_counters(total_counters_, sh->counters);
  }
  total_counters_.false_positives += ledger_false_positives_;
  metrics_.finalize(end, cfg_.loss_grace);

  if (cfg_.obs.enabled) {
    obs_merged_ = std::make_unique<obs::TraceDomain>(cfg_.obs);
    for (auto& sh : shards_) {
      obs_merged_->absorb(std::move(*sh->obs));
      sh->obs = nullptr;
    }
  }
}

std::uint64_t ShardedDriver::packets_sent() const {
  std::uint64_t v = 0;
  for (const auto& sh : shards_) v += sh->sent;
  return v;
}

std::uint64_t ShardedDriver::packets_lost() const {
  std::uint64_t v = 0;
  for (const auto& sh : shards_) v += sh->lost;
  return v;
}

std::uint64_t ShardedDriver::packets_delivered() const {
  std::uint64_t v = 0;
  for (const auto& sh : shards_) v += sh->delivered;
  return v;
}

std::uint64_t ShardedDriver::packets_dropped_unbound() const {
  std::uint64_t v = 0;
  for (const auto& sh : shards_) v += sh->unbound;
  return v;
}

std::uint64_t ShardedDriver::packets_dropped_adversarial() const {
  std::uint64_t v = 0;
  for (const auto& sh : shards_) v += sh->dropped_adversarial;
  return v;
}

std::int64_t ShardedDriver::packets_in_flight() const {
  std::int64_t v = 0;
  for (const auto& sh : shards_) v += sh->in_flight;
  return v;
}

std::size_t ShardedDriver::live_node_count() const {
  std::size_t v = 0;
  for (const auto& sh : shards_) v += sh->nodes.size();
  return v;
}

// --- AppNode: the per-upcall façade handed to ShardedApp hooks. ---------

SimTime ShardedDriver::AppNode::now() const { return env_->now(); }

net::Address ShardedDriver::AppNode::self() const {
  return env_->self().addr;
}

std::size_t ShardedDriver::AppNode::shard() const { return env_->shard(); }

Rng& ShardedDriver::AppNode::rng() const { return env_->rng(); }

pastry::MessagePool& ShardedDriver::AppNode::pool() const {
  return d_->shards_[env_->shard()]->pool;
}

std::uint64_t ShardedDriver::AppNode::issue_lookup(
    NodeId key, std::uint64_t payload, net::PacketPtr app_data) const {
  Shard& sh = *d_->shards_[env_->shard()];
  const auto it = sh.nodes.find(env_->self().addr);
  if (it == sh.nodes.end()) return 0;  // node died under the app's feet
  const std::uint64_t id = env_->next_lookup_id();
  LogEvent e;
  e.kind = LogEvent::Kind::kIssued;
  e.id = key;
  e.a = env_->self().addr;
  e.u = id;
  env_->log(std::move(e));
  it->second.node->lookup(key, id, payload, d_->cfg_.lookups_want_ack,
                          std::move(app_data));
  return id;
}

void ShardedDriver::AppNode::send_packet(net::Address to,
                                         net::PacketPtr packet) const {
  // Shares the sender's send-seq stream with overlay messages, so the
  // packet's loss/jitter/dither fate is keyed exactly like every other
  // send from this node.
  d_->shard_send(env_->shard(), env_->self().addr, to, std::move(packet),
                 env_->next_send_seq());
}

void ShardedDriver::AppNode::schedule(SimDuration delay,
                                      InplaceCallback fn) const {
  env_->schedule(delay, std::move(fn));
}

void ShardedDriver::AppNode::record_latency(double seconds) const {
  LogEvent e;
  e.kind = LogEvent::Kind::kAppSample;
  e.u = std::bit_cast<std::uint64_t>(seconds);
  env_->log(std::move(e));
}

}  // namespace mspastry::overlay
