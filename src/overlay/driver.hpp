#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "obs/flight_recorder.hpp"
#include "overlay/metrics.hpp"
#include "overlay/oracle.hpp"
#include "pastry/node.hpp"
#include "sim/simulator.hpp"
#include "trace/churn_trace.hpp"

namespace mspastry::overlay {

struct DriverConfig {
  pastry::Config pastry;

  /// Lookup workload: each active node generates lookups at this rate
  /// (Poisson), destination keys uniform over the id space. The paper's
  /// base configuration uses 0.01 lookups/s/node.
  double lookup_rate_per_node = 0.01;
  bool lookups_want_ack = true;

  /// Metrics windows (10 min for Gnutella/OverNet in the paper, 1 h for
  /// Microsoft) and warmup excluded from aggregates.
  SimDuration metrics_window = minutes(10);
  SimDuration warmup = minutes(20);

  /// Lookups issued within this long of the end of the run are not
  /// counted as lost (they may legitimately still be in flight).
  SimDuration loss_grace = seconds(60);

  /// Observability (causal path tracing, src/obs). Disabled by default:
  /// no TraceDomain is created and every node's recorder pointer is null.
  obs::ObsConfig obs;

  /// Sharded driver only: after partitioning sessions, widen the engine
  /// lookahead from the global min-link bound to the minimum of
  /// Topology::min_delay_between over the actual shard-pair router sets.
  /// Fewer, longer epochs — but epoch boundaries then depend on the
  /// partition, so runs are no longer byte-identical across *shard
  /// counts* (they remain deterministic for a fixed count). Off by
  /// default to preserve the cross-shard-count determinism gate.
  bool per_pair_lookahead = false;

  std::uint64_t seed = 7;
};

/// Binds everything together: the simulator, the network model, the churn
/// trace, the lookup workload, the oracle, and the metrics. This is the
/// "experiment harness" equivalent of the paper's simulator setup
/// (Section 5.1).
class OverlayDriver {
 public:
  OverlayDriver(std::shared_ptr<const net::Topology> topology,
                net::NetworkConfig net_config, DriverConfig config);
  ~OverlayDriver();

  OverlayDriver(const OverlayDriver&) = delete;
  OverlayDriver& operator=(const OverlayDriver&) = delete;

  /// Run a full churn trace with the configured lookup workload, then
  /// finalize metrics. Runs `extra` of simulated time beyond the last
  /// trace event so in-flight traffic settles.
  void run_trace(const trace::ChurnTrace& trace,
                 SimDuration extra = seconds(30));

  // --- Manual control (tests, examples, applications) ---------------------

  /// Create a node and start its join (or bootstrap it if the overlay is
  /// empty). Returns its address.
  net::Address add_node();

  /// Same, but with a caller-chosen identifier instead of a random one.
  /// Adversarial eclipse placement uses this to cluster sybil ids around
  /// a victim key; everything else about the join is the normal protocol.
  net::Address add_node_with_id(NodeId id);

  /// Crash a node: silently drops all its state and traffic.
  void kill_node(net::Address a);

  /// Gracefully depart: the node notifies its routing-state members (so
  /// they drop it without failure-detection delay), then is torn down.
  void leave_node(net::Address a);

  /// Issue one lookup from `from` (must exist). Returns the lookup id.
  std::uint64_t issue_lookup(net::Address from, NodeId key,
                             std::uint64_t payload = 0,
                             net::PacketPtr app_data = nullptr);

  /// The id the next issue_lookup() will return. Harnesses that track
  /// per-lookup outcomes must register the id BEFORE issuing: when the
  /// source itself is the root, delivery happens synchronously inside
  /// issue_lookup and an after-the-fact registration misses it.
  std::uint64_t next_lookup_id() const { return next_lookup_id_; }

  void run_until(SimTime t) { sim_.run_until(t); }
  void run_for(SimDuration d) { sim_.run_until(sim_.now() + d); }

  /// Start the Poisson lookup workload (run_trace does this itself).
  void start_workload();

  /// Finalize metrics (run_trace does this itself).
  void finish();

  // --- Introspection -------------------------------------------------------

  Simulator& sim() { return sim_; }
  net::Network& network() { return net_; }
  Oracle& oracle() { return oracle_; }
  Metrics& metrics() { return metrics_; }
  pastry::Counters& counters() { return counters_; }
  Rng& rng() { return rng_; }
  pastry::MessagePool& pool() { return pool_; }

  /// The flight-recorder registry, or nullptr when observability is off.
  obs::TraceDomain* trace_domain() { return obs_.get(); }
  const obs::TraceDomain* trace_domain() const { return obs_.get(); }

  /// Ground-truth verdict of a lookup's first delivery (correct root per
  /// the oracle), recorded while observability is on. Feeds the obs
  /// delivered-at-oracle-root expectation rule; nullopt when the lookup
  /// was never delivered (or obs was off).
  std::optional<bool> lookup_verdict(std::uint64_t id) const {
    const auto it = lookup_verdicts_.find(id);
    if (it == lookup_verdicts_.end()) return std::nullopt;
    return it->second;
  }

  /// Shared routing-table row slab (scale telemetry: rows, bytes).
  const pastry::NodeArena& routing_arena() const { return node_arena_; }

  pastry::PastryNode* node(net::Address a);
  std::size_t live_node_count() const { return nodes_.size(); }
  std::vector<net::Address> live_addresses() const;

  /// Application hooks: called at the root on lookup delivery, on each
  /// forwarding hop (return true to consume, as in the common-API
  /// forward() upcall), and for non-overlay packets addressed to a node.
  std::function<void(net::Address self, const pastry::LookupMsg&)>
      on_app_deliver;
  std::function<bool(net::Address self, const pastry::LookupMsg&,
                     const pastry::NodeDescriptor& next)>
      on_app_forward;
  std::function<void(net::Address self, net::Address from,
                     const net::PacketPtr&)>
      on_app_packet;

  /// Send a non-overlay (application) packet; counted as app traffic.
  void send_app_packet(net::Address from, net::Address to,
                       net::PacketPtr packet);

 private:
  class NodeEnv;  // Env implementation per node

  struct LiveNode {
    std::unique_ptr<NodeEnv> env;  // must outlive node (node's dtor uses it)
    std::unique_ptr<pastry::PastryNode> node;
    SimTime join_started = 0;
  };

  net::Address add_node_at(net::Address addr, NodeId id);
  void deliver_packet(net::Address to, net::Address from,
                      const net::PacketPtr& packet);
  void devour_packet(net::Address from, net::Address to,
                     pastry::MessagePtr msg);
  void handle_delivery(net::Address self, const pastry::LookupMsg& m);
  void handle_activated(net::Address self);
  void schedule_next_workload_lookup();

  /// Declared before sim_: members destroy in reverse order, so the
  /// simulator (whose queued callbacks hold the last references to
  /// in-flight messages) tears down first and every slot recycles into a
  /// live pool. The pool's destructor asserts live() == 0.
  pastry::MessagePool pool_;
  Simulator sim_;
  std::shared_ptr<const net::Topology> topology_;
  net::Network net_;
  DriverConfig cfg_;
  Rng rng_;
  pastry::Counters counters_;
  Oracle oracle_;
  Metrics metrics_;

  /// Created in the constructor when cfg_.obs.enabled; nodes cache
  /// per-session recorder pointers, so it must outlive nodes_.
  std::unique_ptr<obs::TraceDomain> obs_;

  /// Routing-table row slab shared by every node; declared before nodes_
  /// because each node's RoutingTable destructor returns its rows here.
  pastry::NodeArena node_arena_;

  std::unordered_map<net::Address, LiveNode> nodes_;
  std::unordered_map<std::uint64_t, bool> lookup_verdicts_;
  std::uint64_t next_lookup_id_ = 1;
  bool workload_running_ = false;
  bool finished_ = false;
};

}  // namespace mspastry::overlay
