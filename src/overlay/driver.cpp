#include "overlay/driver.hpp"

#include <cassert>

#include "common/log.hpp"

namespace mspastry::overlay {

/// Per-node Env implementation. A shared "alive" flag guards every
/// scheduled callback so that timers can never fire into a destroyed
/// node (nodes die abruptly under fault injection).
class OverlayDriver::NodeEnv final : public pastry::Env {
 public:
  NodeEnv(OverlayDriver& driver, pastry::NodeDescriptor self)
      : driver_(driver),
        self_(self),
        alive_(std::make_shared<bool>(true)) {}

  void shutdown() { *alive_ = false; }
  const pastry::NodeDescriptor& self() const { return self_; }

  SimTime now() const override { return driver_.sim_.now(); }

  TimerId schedule(SimDuration delay, InplaceCallback fn) override {
    // A named struct rather than a lambda so we can assert the guard
    // wrapper never pushes the simulator callback onto the heap.
    struct Guarded {
      std::shared_ptr<bool> alive;
      InplaceCallback fn;
      void operator()() {
        if (*alive) fn();
      }
    };
    static_assert(
        Simulator::Callback::fits_inline<Guarded>(),
        "liveness-guarded node timers must stay allocation-free; grow "
        "Simulator::kCallbackCapacity");
    return driver_.sim_.schedule_after(delay,
                                       Guarded{alive_, std::move(fn)});
  }

  void cancel(TimerId id) override { driver_.sim_.cancel(id); }

  void send(net::Address to, pastry::MessagePtr msg) override {
    driver_.metrics_.on_message(driver_.sim_.now(), msg->type);
    driver_.net_.send(self_.addr, to, msg);
  }

  void devour(net::Address to, pastry::MessagePtr msg) override {
    driver_.devour_packet(self_.addr, to, std::move(msg));
  }

  Rng& rng() override { return driver_.rng_; }

  pastry::MessagePool& pool() override { return driver_.pool_; }

  pastry::NodeArena* routing_arena() override {
    return &driver_.node_arena_;
  }

  std::optional<pastry::NodeDescriptor> bootstrap_candidate() override {
    const auto pick = driver_.oracle_.random_active(driver_.rng_);
    if (!pick || pick->second == self_.addr) return std::nullopt;
    return pastry::NodeDescriptor{pick->first, pick->second};
  }

  obs::FlightRecorder* recorder() override {
    return driver_.obs_ != nullptr
               ? &driver_.obs_->recorder_for(self_.addr)
               : nullptr;
  }

  void on_deliver(const pastry::LookupMsg& m) override {
    driver_.handle_delivery(self_.addr, m);
  }

  bool on_forward(const pastry::LookupMsg& m,
                  const pastry::NodeDescriptor& next) override {
    if (!driver_.on_app_forward) return false;
    return driver_.on_app_forward(self_.addr, m, next);
  }

  void on_activated() override { driver_.handle_activated(self_.addr); }

  void on_marked_faulty(net::Address victim) override {
    // Ground-truth check: marking a live node faulty is a false positive.
    if (driver_.net_.bound(victim)) ++driver_.counters_.false_positives;
  }

  void on_right_neighbour(
      const std::optional<pastry::NodeDescriptor>& right) override {
    driver_.oracle_.node_reports_right(
        self_.id, right ? std::optional<net::Address>(right->addr)
                        : std::nullopt);
  }

 private:
  OverlayDriver& driver_;
  pastry::NodeDescriptor self_;
  std::shared_ptr<bool> alive_;
};

OverlayDriver::OverlayDriver(std::shared_ptr<const net::Topology> topology,
                             net::NetworkConfig net_config,
                             DriverConfig config)
    : topology_(std::move(topology)),
      net_(sim_, topology_, net_config, config.seed ^ 0x9e3779b9ull),
      cfg_(config),
      rng_(config.seed),
      metrics_(config.metrics_window, config.warmup),
      node_arena_(1 << config.pastry.b) {
  net_.set_injection_observer(
      [this](net::FaultKind k) { metrics_.on_fault_injected(k); });
  if (cfg_.obs.enabled) {
    obs_ = std::make_unique<obs::TraceDomain>(cfg_.obs);
    // Wire-level ground truth: when the network loses a traced routed
    // message, note it on the *sender's* ring — the assembler uses it to
    // explain why a hop's kRecv never happened.
    net_.set_drop_observer([this](net::Address from, net::Address to,
                                  const net::PacketPtr& p,
                                  net::Network::DropKind kind) {
      const auto rm = dynamic_pointer_cast<const pastry::RoutedMessage>(p);
      if (rm != nullptr && rm->trace_id != 0) {
        const auto ev = kind == net::Network::DropKind::kAdversary
                            ? obs::EventKind::kAdversaryDrop
                            : obs::EventKind::kNetDrop;
        obs_->recorder_for(from).record(sim_.now(), ev, rm->trace_id, to,
                                        rm->hops, rm->hop_seq);
      }
    });
  }
}

OverlayDriver::~OverlayDriver() {
  // Stop callbacks into nodes before members are torn down.
  for (auto& [a, ln] : nodes_) ln.env->shutdown();
}

pastry::PastryNode* OverlayDriver::node(net::Address a) {
  const auto it = nodes_.find(a);
  return it == nodes_.end() ? nullptr : it->second.node.get();
}

std::vector<net::Address> OverlayDriver::live_addresses() const {
  std::vector<net::Address> out;
  out.reserve(nodes_.size());
  for (const auto& [a, ln] : nodes_) out.push_back(a);
  return out;
}

net::Address OverlayDriver::add_node() {
  const net::Address addr = net_.attach_random(rng_);
  return add_node_at(addr, rng_.node_id());
}

net::Address OverlayDriver::add_node_with_id(NodeId id) {
  return add_node_at(net_.attach_random(rng_), id);
}

net::Address OverlayDriver::add_node_at(net::Address addr, NodeId id) {
  const pastry::NodeDescriptor self{id, addr};

  LiveNode ln;
  ln.env = std::make_unique<NodeEnv>(*this, self);
  ln.node = std::make_unique<pastry::PastryNode>(cfg_.pastry, self, *ln.env,
                                                 counters_);
  ln.join_started = sim_.now();
  pastry::PastryNode* raw = ln.node.get();

  net_.bind(addr, [this, addr](net::Address from,
                               const net::PacketPtr& packet) {
    deliver_packet(addr, from, packet);
  });

  const auto bootstrap = oracle_.random_active(rng_);
  metrics_.on_join_started(sim_.now());
  metrics_.population_change(sim_.now(), +1);
  nodes_.emplace(addr, std::move(ln));
  LOG_INFO(sim_.now(), "driver", "node %d (%s) %s", addr,
           self.id.to_string().c_str(),
           bootstrap ? "joining" : "bootstrapping");
  if (!bootstrap) {
    raw->bootstrap();
  } else {
    raw->join(pastry::NodeDescriptor{bootstrap->first, bootstrap->second});
  }
  return addr;
}

void OverlayDriver::kill_node(net::Address a) {
  const auto it = nodes_.find(a);
  if (it == nodes_.end()) return;
  LOG_INFO(sim_.now(), "driver", "node %d crashed", a);
  it->second.env->shutdown();
  net_.unbind(a);
  oracle_.node_failed(it->second.env->self().id);
  metrics_.population_change(sim_.now(), -1);
  nodes_.erase(it);  // node destroyed; env (declared first) survives it
}

void OverlayDriver::leave_node(net::Address a) {
  const auto it = nodes_.find(a);
  if (it == nodes_.end()) return;
  it->second.node->leave();  // notices are in flight before teardown
  kill_node(a);
}

void OverlayDriver::deliver_packet(net::Address to, net::Address from,
                                   const net::PacketPtr& packet) {
  const auto it = nodes_.find(to);
  if (it == nodes_.end()) return;
  if (auto msg = dynamic_pointer_cast<const pastry::Message>(packet)) {
    it->second.node->handle(from, msg);
    return;
  }
  if (on_app_packet) on_app_packet(to, from, packet);
}

void OverlayDriver::devour_packet(net::Address from, net::Address to,
                                  pastry::MessagePtr msg) {
  // Adversarial traffic loss is attributed, not mistaken for network
  // loss: the lookup id is remembered so an eventual lost verdict can be
  // blamed on the adversary, and the network counts the phantom send
  // toward the packet-accounting identity.
  if (const auto* lm = dynamic_cast<const pastry::LookupMsg*>(msg.get())) {
    metrics_.on_lookup_devoured(lm->lookup_id);
  }
  net_.devour(from, to, std::move(msg));
}

void OverlayDriver::handle_delivery(net::Address self,
                                    const pastry::LookupMsg& m) {
  const auto root = oracle_.root_of(m.key);
  const bool correct = root && *root == self;
  if (!correct) {
    LOG_WARN(sim_.now(), "oracle",
             "incorrect delivery: lookup %llu for %s delivered at node %d, "
             "root is %d",
             (unsigned long long)m.lookup_id, m.key.to_string().c_str(),
             self, root ? *root : -1);
  }
  // Verdict for the obs delivered-at-oracle-root rule: only the traced
  // copy (redundant diverse-path copies carry trace_id 0), so the verdict
  // matches the delivery the assembled causal path will show.
  if (obs_ != nullptr && m.trace_id != 0) {
    lookup_verdicts_.emplace(m.lookup_id, correct);
  }
  SimDuration net_delay = 0;
  if (correct && m.source.addr != self) {
    net_delay = net_.delay(m.source.addr, self);
  }
  const pastry::PastryNode* n = node(self);
  const auto cause = (!correct && n != nullptr && n->is_adversarial())
                         ? Metrics::IncorrectCause::kAdversarialMisroute
                         : Metrics::IncorrectCause::kStaleLeafSet;
  metrics_.on_lookup_delivered(m.lookup_id, sim_.now(), correct, net_delay,
                               cause);
  if (on_app_deliver) on_app_deliver(self, m);
}

void OverlayDriver::handle_activated(net::Address self) {
  const auto it = nodes_.find(self);
  assert(it != nodes_.end());
  oracle_.node_activated(it->second.env->self().id, self);
  LOG_DEBUG(sim_.now(), "driver", "node %d active after %.2fs", self,
            to_seconds(sim_.now() - it->second.join_started));
  metrics_.on_join_completed(sim_.now(),
                             sim_.now() - it->second.join_started);
}

std::uint64_t OverlayDriver::issue_lookup(net::Address from, NodeId key,
                                          std::uint64_t payload,
                                          net::PacketPtr app_data) {
  pastry::PastryNode* n = node(from);
  assert(n != nullptr);
  const std::uint64_t id = next_lookup_id_++;
  metrics_.on_lookup_issued(id, sim_.now(), from, key);
  n->lookup(key, id, payload, cfg_.lookups_want_ack, std::move(app_data));
  return id;
}

void OverlayDriver::send_app_packet(net::Address from, net::Address to,
                                    net::PacketPtr packet) {
  metrics_.on_app_message(sim_.now());
  net_.send(from, to, std::move(packet));
}

void OverlayDriver::start_workload() {
  if (workload_running_ || cfg_.lookup_rate_per_node <= 0.0) return;
  workload_running_ = true;
  schedule_next_workload_lookup();
}

void OverlayDriver::schedule_next_workload_lookup() {
  // The aggregate process over N active nodes is Poisson with rate
  // N * lookup_rate; re-evaluating N at each event tracks churn closely
  // (N changes slowly relative to the event rate).
  const double n = std::max<std::size_t>(1, oracle_.active_count());
  const double rate = n * cfg_.lookup_rate_per_node;
  const SimDuration gap = from_seconds(rng_.exponential(1.0 / rate));
  sim_.schedule_after(gap, [this] {
    if (!workload_running_) return;
    const auto src = oracle_.random_active(rng_);
    if (src && nodes_.count(src->second) > 0) {
      issue_lookup(src->second, rng_.node_id());
    }
    schedule_next_workload_lookup();
  });
}

void OverlayDriver::finish() {
  if (finished_) return;
  finished_ = true;
  workload_running_ = false;
  metrics_.finalize(sim_.now(), cfg_.loss_grace);
}

void OverlayDriver::run_trace(const trace::ChurnTrace& trace,
                              SimDuration extra) {
  std::unordered_map<std::int32_t, net::Address> session_addr;
  for (const trace::ChurnEvent& e : trace.events()) {
    sim_.schedule_at(e.time, [this, e, &session_addr] {
      if (e.type == trace::ChurnEventType::kJoin) {
        session_addr[e.node] = add_node();
      } else {
        const auto it = session_addr.find(e.node);
        if (it != session_addr.end()) {
          kill_node(it->second);
          session_addr.erase(it);
        }
      }
    });
  }
  start_workload();
  sim_.run_until(trace.duration() + extra);
  finish();
}

}  // namespace mspastry::overlay
