#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/node_id.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "pastry/message.hpp"

namespace mspastry::overlay {

/// Integrates "live node-seconds" into fixed windows, for per-node-per-
/// second rates (the denominator of the paper's control-traffic and
/// failure-rate metrics).
class NodeSecondsAccumulator {
 public:
  explicit NodeSecondsAccumulator(SimDuration window) : window_(window) {}

  void change(SimTime now, int delta) {
    settle(now);
    count_ += delta;
  }

  /// Node-seconds accumulated in each window up to the given time.
  const std::map<SimTime, double>& windows(SimTime upto) {
    settle(upto);
    return bins_;
  }

  int current_count() const { return count_; }

 private:
  void settle(SimTime now) {
    while (last_ < now) {
      const SimTime wi = last_ / window_;
      const SimTime wend = (wi + 1) * window_;
      const SimTime seg = std::min(wend, now) - last_;
      bins_[wi] += static_cast<double>(count_) * to_seconds(seg);
      last_ += seg;
    }
  }

  SimDuration window_;
  SimTime last_ = 0;
  int count_ = 0;
  std::map<SimTime, double> bins_;
};

/// The paper's evaluation metrics (Section 5.2): incorrect-delivery rate,
/// lookup loss rate, RDP, and control traffic (msgs/s/node, by type), plus
/// join latency. Windowed series feed the time plots (Figures 4, 8);
/// aggregates feed the tables and the parameter sweeps.
class Metrics {
 public:
  Metrics(SimDuration window, SimDuration warmup)
      : window_(window),
        warmup_(warmup),
        node_seconds_(window),
        rdp_series_(window) {}

  // --- Feeding (called by the driver) -----------------------------------

  void on_message(SimTime t, pastry::MsgType type);
  void on_app_message(SimTime t);  ///< application traffic outside lookups
  /// Control message from an overlay without the MSPastry message
  /// taxonomy (e.g. the Chord baseline): counted in the control totals
  /// but not in any per-class series.
  void on_unclassified_control(SimTime t);
  void on_lookup_issued(std::uint64_t id, SimTime t, net::Address src,
                        NodeId key);

  /// Attribution for an incorrect delivery (who to blame). The driver
  /// passes kAdversarialMisroute when the delivering node had an
  /// AdversaryPolicy installed; everything else is a stale-leaf-set
  /// misdelivery (churn raced the lookup, or lies poisoned honest state).
  enum class IncorrectCause : std::uint8_t {
    kStaleLeafSet = 0,
    kAdversarialMisroute,
  };

  /// `net_delay` is the direct network delay source->deliverer (for RDP);
  /// pass 0 when source == deliverer. Deliveries resolve first-correct-
  /// wins: an incorrect delivery is held pending and a later correct
  /// delivery of the same id (a redundant diverse-path copy) upgrades it;
  /// pendings still unresolved at finalize() count as incorrect.
  void on_lookup_delivered(
      std::uint64_t id, SimTime t, bool correct, SimDuration net_delay,
      IncorrectCause cause = IncorrectCause::kStaleLeafSet);

  /// An adversarial node devoured a copy of this lookup in transit; if no
  /// copy is ever delivered, the loss is attributed to the adversary.
  void on_lookup_devoured(std::uint64_t id);
  void on_join_started(SimTime t);
  void on_join_completed(SimTime t, SimDuration latency);
  void population_change(SimTime t, int delta) {
    node_seconds_.change(t, delta);
  }
  /// One fault event injected by the network's fault plan (wired up by
  /// the driver through Network::set_injection_observer).
  void on_fault_injected(net::FaultKind k) {
    ++fault_injections_[static_cast<std::size_t>(k)];
  }

  /// Close the books: lookups issued before `end - grace` and never
  /// delivered are counted lost.
  void finalize(SimTime end, SimDuration grace);

  /// Fold another Metrics' *traffic-side* state (per-window and total
  /// message counts, fault-injection counters) into this one. The sharded
  /// driver counts traffic per shard — on_message is called from worker
  /// threads — and merges into the single ledger Metrics at the end;
  /// everything lookup/join/population-related lives on the ledger only.
  /// Sums of per-window counts are order-independent (integer-valued
  /// doubles well under 2^53), so the merged result is shard-invariant.
  void merge_traffic_from(const Metrics& other);

  // --- Aggregates (post-warmup) -------------------------------------------

  std::uint64_t lookups_issued() const { return issued_; }
  std::uint64_t lookups_delivered_correct() const { return correct_; }
  std::uint64_t lookups_delivered_incorrect() const { return incorrect_; }
  std::uint64_t lookups_lost() const { return lost_; }

  // Attributed splits (valid after finalize()):
  // incorrect == misrouted_by_adversary + stale_leaf_set, and
  // lost >= dropped_by_adversary.
  std::uint64_t incorrect_misrouted_by_adversary() const {
    return incorrect_adversarial_;
  }
  std::uint64_t incorrect_stale_leaf_set() const {
    return incorrect_ - incorrect_adversarial_;
  }
  std::uint64_t lost_dropped_by_adversary() const {
    return lost_adversarial_;
  }

  double loss_rate() const {
    return issued_ ? static_cast<double>(lost_) / issued_ : 0.0;
  }
  double incorrect_delivery_rate() const {
    return issued_ ? static_cast<double>(incorrect_) / issued_ : 0.0;
  }
  double mean_rdp() const { return rdp_.mean(); }
  const RunningStats& rdp_stats() const { return rdp_; }
  const RunningStats& hop_delay_stats() const { return delay_; }
  /// Per-lookup RDP samples (for quantiles; the mean is sensitive to the
  /// heavy tail that churn produces).
  SampleSet& rdp_samples() { return rdp_samples_; }

  /// Control messages per second per node over the post-warmup run.
  double control_traffic_rate() const;
  /// Total messages (control + lookups + app) per second per node.
  double total_traffic_rate() const;
  /// Control traffic of one class, msgs/s/node.
  double control_traffic_rate(pastry::TrafficClass c) const;

  SampleSet& join_latency_samples() { return join_latency_; }
  std::uint64_t joins_started() const { return joins_started_; }
  std::uint64_t joins_completed() const { return joins_completed_; }

  std::uint64_t fault_injections(net::FaultKind k) const {
    return fault_injections_[static_cast<std::size_t>(k)];
  }
  std::uint64_t total_fault_injections() const {
    std::uint64_t t = 0;
    for (const auto v : fault_injections_) t += v;
    return t;
  }

  // --- Windowed series (for the time plots) --------------------------------

  struct SeriesPoint {
    double t_seconds;
    double value;
  };

  /// Control messages per second per node, per window.
  std::vector<SeriesPoint> control_traffic_series(SimTime end);
  /// Same but for one traffic class.
  std::vector<SeriesPoint> control_traffic_series(pastry::TrafficClass c,
                                                  SimTime end);
  /// Total traffic (all messages) per second per node, per window.
  std::vector<SeriesPoint> total_traffic_series(SimTime end);
  /// Mean RDP per window.
  std::vector<SeriesPoint> rdp_series() const;

 private:
  struct LookupRecord {
    SimTime issued_at;
    net::Address src;
    NodeId key;
  };

  bool post_warmup(SimTime t) const { return t >= warmup_; }
  void record_correct(const LookupRecord& rec, SimTime t,
                      SimDuration net_delay);

  SimDuration window_;
  SimDuration warmup_;

  // Mutable: reading the windows settles the integral up to "now".
  mutable NodeSecondsAccumulator node_seconds_;

  // Message counts: per-window per-class, and post-warmup totals.
  std::map<SimTime, std::array<double, pastry::kTrafficClassCount>>
      class_windows_;
  std::map<SimTime, double> total_windows_;
  std::array<std::uint64_t, pastry::kTrafficClassCount> class_totals_{};
  std::uint64_t control_total_ = 0;
  std::uint64_t all_total_ = 0;
  double post_warmup_node_seconds(SimTime end) const;

  std::unordered_map<std::uint64_t, LookupRecord> outstanding_;

  /// Incorrectly-delivered lookups held open for a first-correct-wins
  /// upgrade by a redundant copy; flushed into incorrect_ at finalize().
  struct PendingIncorrect {
    LookupRecord rec;
    IncorrectCause cause = IncorrectCause::kStaleLeafSet;
  };
  std::unordered_map<std::uint64_t, PendingIncorrect> pending_incorrect_;
  /// Lookup ids with at least one adversarially-devoured copy.
  std::unordered_set<std::uint64_t> devoured_;

  std::uint64_t issued_ = 0;
  std::uint64_t correct_ = 0;
  std::uint64_t incorrect_ = 0;
  std::uint64_t incorrect_adversarial_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t lost_adversarial_ = 0;
  RunningStats rdp_;
  RunningStats delay_;
  SampleSet rdp_samples_;
  WindowedSeries rdp_series_;

  SampleSet join_latency_;
  std::uint64_t joins_started_ = 0;
  std::uint64_t joins_completed_ = 0;
  std::array<std::uint64_t, net::kFaultKindCount> fault_injections_{};

  SimTime finalized_at_ = kTimeNever;
};

}  // namespace mspastry::overlay
