#include "overlay/chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/log.hpp"
#include "obs/expectations.hpp"
#include "obs/path_assembler.hpp"
#include "obs/trace_dump.hpp"

namespace mspastry::overlay {

namespace {

constexpr int kFaultPhase = 1;
constexpr int kHealPhase = 2;
// Victim-targeted probes during a gray stall: the oracle still counts the
// stalled (alive) node as root, but peers correctly deliver its keys next
// door — diagnostic signal, excluded from the SLO rates.
constexpr int kDiagPhase = 3;

enum class Scenario {
  kAsymPartition,
  kFlap,
  kDelaySpike,
  kDupReorder,
  kGrayStall,
  kCombined,
  kByzantineDrop,
  kByzantineMisroute,
  kEclipse,
  kRandom,
};

Scenario parse_scenario(const std::string& name) {
  if (name == "asym-partition") return Scenario::kAsymPartition;
  if (name == "flap") return Scenario::kFlap;
  if (name == "delay-spike") return Scenario::kDelaySpike;
  if (name == "dup-reorder") return Scenario::kDupReorder;
  if (name == "gray-stall") return Scenario::kGrayStall;
  if (name == "combined") return Scenario::kCombined;
  if (name == "byzantine-drop") return Scenario::kByzantineDrop;
  if (name == "byzantine-misroute") return Scenario::kByzantineMisroute;
  if (name == "eclipse-victim") return Scenario::kEclipse;
  if (name == "random") return Scenario::kRandom;
  throw std::runtime_error("unknown chaos scenario: " + name);
}

bool is_adversarial_scenario(Scenario s) {
  return s == Scenario::kByzantineDrop || s == Scenario::kByzantineMisroute ||
         s == Scenario::kEclipse;
}

std::uint64_t mix_seed(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = seed ^ 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

ChaosHarness::ChaosHarness(std::shared_ptr<const net::Topology> topology,
                           ChaosConfig config)
    : topology_(std::move(topology)), cfg_(config) {}

ChaosHarness::~ChaosHarness() = default;

const std::vector<std::string>& ChaosHarness::scenarios() {
  static const std::vector<std::string> kNames = {
      "asym-partition", "flap",           "delay-spike",
      "dup-reorder",    "gray-stall",     "combined",
      "byzantine-drop", "byzantine-misroute", "eclipse-victim"};
  return kNames;
}

void ChaosHarness::build_overlay(std::uint64_t seed, bool harden) {
  DriverConfig dcfg;
  dcfg.pastry = cfg_.pastry;
  if (harden) {
    // Adversary scenarios gate the *defended* system: both
    // countermeasures on (the undefended ablation is tab_adversary's).
    dcfg.pastry.lookup_redundancy = cfg_.adversary_redundancy;
    dcfg.pastry.leaf_plausibility_checks = true;
  }
  dcfg.lookup_rate_per_node = cfg_.bg_lookup_rate;
  dcfg.warmup = 0;
  dcfg.seed = seed;
  dcfg.obs = cfg_.obs;
  driver_ = std::make_unique<OverlayDriver>(topology_, net::NetworkConfig{},
                                            dcfg);
  probes_.clear();
  adv_ = nullptr;
  driver_->on_app_deliver = [this](net::Address self,
                                   const pastry::LookupMsg& m) {
    // First-correct-wins, mirroring Metrics: a misdelivered probe is
    // upgraded if any later copy (diverse-path redundancy, duplication
    // faults) lands at the true root.
    const auto it = probes_.find(m.lookup_id);
    if (it == probes_.end() || (it->second.delivered && it->second.correct)) {
      return;
    }
    const auto root = driver_->oracle().root_of(m.key);
    const bool correct = root && *root == self;
    if (!it->second.delivered || correct) {
      it->second.delivered = true;
      it->second.correct = correct;
    }
  };
  for (int i = 0; i < cfg_.nodes; ++i) {
    driver_->add_node();
    driver_->run_for(seconds(2));
  }
  driver_->run_for(cfg_.settle);
  driver_->start_workload();
}

void ChaosHarness::issue_probe(int phase, const NodeId* key) {
  auto src = driver_->oracle().random_active(driver_->rng());
  for (int tries = 0; adv_ != nullptr && src &&
                      adv_->is_adversarial(src->second) && tries < 64;
       ++tries) {
    src = driver_->oracle().random_active(driver_->rng());
  }
  if (!src || driver_->node(src->second) == nullptr) return;
  if (adv_ != nullptr && adv_->is_adversarial(src->second)) return;
  NodeId k = key != nullptr ? *key : driver_->rng().node_id();
  if (key == nullptr && adv_ != nullptr) {
    // Honest-rooted keys only: a key the adversary legitimately owns
    // proves nothing about whether honest nodes can still serve theirs.
    for (int tries = 0; tries < 64; ++tries) {
      const auto root = driver_->oracle().root_of(k);
      if (root && !adv_->is_adversarial(*root)) break;
      k = driver_->rng().node_id();
    }
    const auto root = driver_->oracle().root_of(k);
    if (!root || adv_->is_adversarial(*root)) return;
  }
  // Register before issuing: when the source is itself the root, the
  // delivery callback fires synchronously inside issue_lookup, and a
  // probe registered afterwards would be scored lost forever.
  const std::uint64_t id = driver_->next_lookup_id();
  probes_.emplace(id, ProbeOutcome{phase, k, false, false});
  driver_->issue_lookup(src->second, k);
}

void ChaosHarness::probe_until(SimTime until, int phase, const NodeId* key) {
  while (driver_->sim().now() + cfg_.probe_interval <= until) {
    issue_probe(phase, key);
    driver_->run_for(cfg_.probe_interval);
  }
  if (driver_->sim().now() < until) {
    driver_->run_until(until);
  }
}

bool ChaosHarness::ring_consistent() const {
  // Incrementally maintained by the oracle from right-neighbour change
  // reports — O(1) per poll instead of a full O(N log N) rescan of every
  // live node's leaf set (see tests/test_oracle_differential.cpp for the
  // equivalence check against the rescan).
  return driver_->oracle().ring_consistent();
}

double ChaosHarness::measure_reconvergence(SimTime heal_at,
                                           SimDuration budget) {
  const std::size_t expected = static_cast<std::size_t>(cfg_.nodes);
  SimTime converged_at = kTimeNever;
  // Sample the invariant once a second; coarser chunks drive the clock.
  PeriodicTask poll(driver_->sim(), seconds(1), [this, expected,
                                                &converged_at] {
    if (converged_at != kTimeNever) return;
    if (driver_->oracle().active_count() >= expected && ring_consistent()) {
      converged_at = driver_->sim().now();
    }
  });
  const SimTime deadline = heal_at + budget;
  while (driver_->sim().now() < deadline && converged_at == kTimeNever) {
    driver_->run_for(seconds(5));
  }
  poll.stop();
  if (converged_at == kTimeNever) return -1.0;
  return to_seconds(converged_at - heal_at);
}

std::vector<net::FaultRule> ChaosHarness::make_schedule(
    const std::string& scenario, SimTime t0, SimTime t1, net::Address victim,
    std::vector<net::Address>* minority, Rng& rng) {
  using net::FaultRule;
  using net::LinkMatcher;
  std::vector<FaultRule> rules;
  auto addrs = driver_->live_addresses();
  std::sort(addrs.begin(), addrs.end());

  switch (parse_scenario(scenario)) {
    case Scenario::kAsymPartition: {
      // One-way cut: the minority can hear the majority but nothing the
      // minority sends crosses back (adversarial asymmetric link failure).
      const std::size_t m = std::max<std::size_t>(2, addrs.size() / 4);
      minority->assign(addrs.begin(), addrs.begin() + m);
      std::vector<net::Address> rest(addrs.begin() + m, addrs.end());
      auto r = FaultRule::partition(LinkMatcher::one_way(*minority, rest), t0,
                                    t1);
      r.seed = rng.next_u64();
      r.label = "one-way minority->majority cut";
      rules.push_back(std::move(r));
      break;
    }
    case Scenario::kFlap: {
      auto r = FaultRule::flap(LinkMatcher::endpoint({victim}), seconds(10),
                               0.5, t0, t1);
      r.seed = rng.next_u64();
      r.label = "victim links up/down every 5 s";
      rules.push_back(std::move(r));
      break;
    }
    case Scenario::kDelaySpike: {
      auto r = FaultRule::delay_spike(LinkMatcher::all(), milliseconds(400),
                                      t0, t1);
      r.seed = rng.next_u64();
      r.label = "global +400 ms delay spike";
      rules.push_back(std::move(r));
      break;
    }
    case Scenario::kDupReorder: {
      auto d = FaultRule::duplicate(LinkMatcher::all(), 0.15,
                                    milliseconds(20), t0, t1);
      d.seed = rng.next_u64();
      d.label = "15% duplication";
      rules.push_back(std::move(d));
      auto r = FaultRule::reorder(LinkMatcher::all(), 0.25, milliseconds(150),
                                  t0, t1);
      r.seed = rng.next_u64();
      r.label = "25% reordering, up to +150 ms";
      rules.push_back(std::move(r));
      break;
    }
    case Scenario::kGrayStall: {
      auto r = FaultRule::stall({victim}, t0, t0 + cfg_.stall_window);
      r.seed = rng.next_u64();
      r.label = "gray failure: victim frozen, endpoint stays bound";
      rules.push_back(std::move(r));
      break;
    }
    case Scenario::kCombined: {
      auto l = FaultRule::loss(LinkMatcher::all(), 0.05, t0, t1);
      l.seed = rng.next_u64();
      l.label = "5% loss";
      rules.push_back(std::move(l));
      auto d = FaultRule::delay_spike(LinkMatcher::all(), milliseconds(200),
                                      t0, t1);
      d.seed = rng.next_u64();
      d.label = "global +200 ms";
      rules.push_back(std::move(d));
      const net::Address victim2 =
          addrs[addrs.size() / 2] == victim ? addrs.back()
                                            : addrs[addrs.size() / 2];
      auto f = FaultRule::flap(LinkMatcher::endpoint({victim2}), seconds(8),
                               0.5, t0, t1);
      f.seed = rng.next_u64();
      f.label = "second victim flapping";
      rules.push_back(std::move(f));
      auto s = FaultRule::stall({victim}, t0 + seconds(10),
                                t0 + seconds(10) + cfg_.stall_window);
      s.seed = rng.next_u64();
      s.label = "first victim gray-stalled";
      rules.push_back(std::move(s));
      break;
    }
    case Scenario::kByzantineDrop:
    case Scenario::kByzantineMisroute: {
      // The adversarial population is the fault; a mild background loss
      // rule rides along so the scenario exercises the composition of
      // Byzantine behavior with ordinary fault-plan rules.
      auto l = FaultRule::loss(LinkMatcher::all(), 0.02, t0, t1);
      l.seed = rng.next_u64();
      l.label = "2% background loss composed with adversary";
      rules.push_back(std::move(l));
      break;
    }
    case Scenario::kEclipse:
      break;  // the sybil cluster is the entire fault
    case Scenario::kRandom: {
      // Seeded random schedule over the non-partition kinds (partitions
      // need operational recovery, which would make "random" flaky).
      const int n = 2 + static_cast<int>(rng.uniform_index(4));
      for (int i = 0; i < n; ++i) {
        const SimTime start =
            t0 + static_cast<SimTime>(rng.uniform_index(
                     static_cast<std::uint64_t>((t1 - t0) / 2)));
        const SimTime end = std::min<SimTime>(
            t1, start + (t1 - t0) / 4 +
                    static_cast<SimTime>(rng.uniform_index(
                        static_cast<std::uint64_t>((t1 - t0) / 4))));
        const net::Address target =
            addrs[rng.uniform_index(addrs.size())];
        const LinkMatcher where = rng.chance(0.5)
                                      ? LinkMatcher::all()
                                      : LinkMatcher::endpoint({target});
        FaultRule r;
        switch (rng.uniform_index(6)) {
          case 0:
            r = FaultRule::loss(where, rng.uniform(0.05, 0.3), start, end);
            break;
          case 1:
            r = FaultRule::flap(where,
                                seconds(4 + rng.uniform(0.0, 12.0)),
                                rng.uniform(0.3, 0.7), start, end);
            break;
          case 2:
            r = FaultRule::delay_spike(
                where,
                milliseconds(
                    50 + static_cast<std::int64_t>(rng.uniform_index(350))),
                start, end);
            break;
          case 3:
            r = FaultRule::duplicate(where, rng.uniform(0.05, 0.2),
                                     milliseconds(10), start, end);
            break;
          case 4:
            r = FaultRule::reorder(
                where, rng.uniform(0.1, 0.3),
                milliseconds(
                    50 + static_cast<std::int64_t>(rng.uniform_index(200))),
                start, end);
            break;
          default:
            r = FaultRule::stall(
                {target}, start,
                std::min<SimTime>(end, start + cfg_.stall_window));
            break;
        }
        r.seed = rng.next_u64();
        r.label = "random rule " + std::to_string(i);
        rules.push_back(std::move(r));
      }
      break;
    }
  }
  return rules;
}

ChaosResult ChaosHarness::run(const std::string& scenario) {
  const Scenario kind = parse_scenario(scenario);
  const bool adversarial = is_adversarial_scenario(kind);
  ChaosResult res;
  res.scenario = scenario;
  res.seed = cfg_.seed;

  build_overlay(mix_seed(cfg_.seed, scenario), adversarial);
  Rng schedule_rng(mix_seed(cfg_.seed, scenario + "/schedule"));

  net::Network& net = driver_->network();

  net::Address victim = net::kNullAddress;
  NodeId victim_key;
  if (kind == Scenario::kFlap || kind == Scenario::kGrayStall ||
      kind == Scenario::kCombined || kind == Scenario::kEclipse) {
    const auto pick = driver_->oracle().random_active(schedule_rng);
    victim = pick->second;
    victim_key = pick->first;
  }

  // Arm the adversary before the fault window opens, so eclipse sybils
  // finish their (honest-protocol) joins before probing starts.
  std::unique_ptr<AdversaryController> adv;
  if (adversarial) {
    const AdversaryBehavior behavior = kind == Scenario::kByzantineDrop
                                           ? AdversaryBehavior::kDrop
                                           : AdversaryBehavior::kMisroute;
    adv = std::make_unique<AdversaryController>(
        *driver_, behavior, 1.0,
        mix_seed(cfg_.seed, scenario + "/adversary"));
    if (kind == Scenario::kEclipse) {
      adv->join_eclipse_cluster(victim_key, cfg_.eclipse_sybils, seconds(2));
      driver_->run_for(seconds(30));  // let the cluster settle in
    } else {
      adv->corrupt_fraction(cfg_.adversary_fraction);
    }
    adv_ = adv.get();
    res.adversarial_nodes = adv->count();
    res.adversary_description = adv->describe();
    LOG_INFO(driver_->sim().now(), "chaos", "%s",
             res.adversary_description.c_str());
  }

  const SimTime t0 = driver_->sim().now();
  const SimTime t1 =
      kind == Scenario::kGrayStall ? t0 + cfg_.stall_window
                                   : t0 + cfg_.fault_window;

  std::vector<net::Address> minority;
  for (auto& rule :
       make_schedule(scenario, t0, t1, victim, &minority, schedule_rng)) {
    net.faults().add(std::move(rule));
  }
  res.fault_schedule = net.faults().describe();
  LOG_INFO(t0, "chaos", "scenario %s schedule:\n%s", scenario.c_str(),
           res.fault_schedule.c_str());

  // --- Fault window: probe lookups flow while the faults are active ------
  const bool gray = kind == Scenario::kGrayStall;
  if (gray) {
    // Alternate victim-targeted and uniform lookups, and inspect the
    // peers' verdicts just before the stall releases.
    const SimTime check_at = t1 - milliseconds(500);
    int i = 0;
    while (driver_->sim().now() + cfg_.probe_interval <= check_at) {
      const bool at_victim = (i++ % 2 == 0);
      issue_probe(at_victim ? kDiagPhase : kFaultPhase,
                  at_victim ? &victim_key : nullptr);
      driver_->run_for(cfg_.probe_interval);
    }
    driver_->run_until(check_at);
    for (const net::Address a : driver_->live_addresses()) {
      if (a == victim) continue;
      const auto* n = driver_->node(a);
      if (n->currently_excludes(victim)) res.stall_rerouted = true;
      if (n->considers_failed(victim)) res.stall_condemned = true;
    }
    driver_->run_until(t1);
  } else if (kind == Scenario::kEclipse) {
    // Alternate probes for the eclipsed victim's own key (the attack
    // target) with uniform honest-rooted probes (collateral damage).
    int i = 0;
    while (driver_->sim().now() + cfg_.probe_interval <= t1) {
      const bool at_victim = (i++ % 2 == 0);
      issue_probe(kFaultPhase, at_victim ? &victim_key : nullptr);
      driver_->run_for(cfg_.probe_interval);
    }
    driver_->run_until(t1);
  } else {
    probe_until(t1, kFaultPhase, nullptr);
  }

  // --- Heal: rule windows expire at t1. Byzantine nodes are disarmed
  // (they act honest again) and eclipse sybils crash; asymmetric
  // partitions condemn both sides, so the minority rejoins through the
  // bootstrap service (the operational recovery path DESIGN.md
  // documents).
  const SimTime heal_at = driver_->sim().now();
  if (adv != nullptr) {
    if (kind == Scenario::kEclipse) adv->kill_sybils();
    adv->disarm();
    adv_ = nullptr;
  }
  if (kind == Scenario::kAsymPartition) {
    for (const net::Address a : minority) driver_->kill_node(a);
    for (std::size_t i = 0; i < minority.size(); ++i) {
      driver_->add_node();
      driver_->run_for(seconds(5));
    }
  }

  res.reconverge_seconds =
      measure_reconvergence(heal_at, cfg_.slo.max_reconverge);
  driver_->run_for(cfg_.heal_grace);

  // --- Post-heal probes: strict correctness expected ---------------------
  if (gray) {
    // The stalled node must serve its own keys again.
    for (int i = 0; i < 3; ++i) {
      issue_probe(kHealPhase, &victim_key);
      driver_->run_for(cfg_.probe_interval);
    }
  }
  for (int i = 0; i < cfg_.heal_probes; ++i) {
    issue_probe(kHealPhase, nullptr);
    driver_->run_for(cfg_.probe_interval);
  }
  driver_->run_for(seconds(30));  // let stragglers land

  if (gray && driver_->node(victim) != nullptr) {
    // Recovered = a post-heal lookup for the victim's key reached it.
    for (const auto& [id, p] : probes_) {
      (void)id;
      if (p.phase == kHealPhase && p.key == victim_key && p.delivered &&
          p.correct) {
        res.stall_recovered = true;
      }
    }
  }

  // --- Collect and judge --------------------------------------------------
  for (std::size_t k = 0; k < net::kFaultKindCount; ++k) {
    res.injected[k] = net.faults().injected(static_cast<net::FaultKind>(k));
  }
  for (const auto& [id, p] : probes_) {
    (void)id;
    if (p.phase == kFaultPhase) {
      ++res.fault_issued;
      if (p.delivered) ++res.fault_delivered;
      if (p.delivered && !p.correct) ++res.fault_incorrect;
    } else if (p.phase == kHealPhase) {
      ++res.heal_issued;
      if (p.delivered) ++res.heal_delivered;
      if (p.delivered && !p.correct) ++res.heal_incorrect;
    }
  }
  res.false_positives = driver_->counters().false_positives;
  const pastry::Counters& pc = driver_->counters();
  res.adversary_drops = pc.lookups_dropped_adversarial;
  res.adversary_misroutes = pc.lookups_misrouted_adversarial;
  res.replies_corrupted = pc.ls_replies_corrupted + pc.nn_replies_corrupted;
  res.leaf_rejections = pc.leaf_candidates_rejected;
  res.redundant_copies = pc.redundant_lookup_copies;
  res.accounting_ok =
      net.packets_sent() == net.packets_lost() + net.packets_delivered() +
                                net.packets_dropped_unbound() +
                                net.packets_dropped_adversarial() +
                                net.packets_in_flight();

  char buf[160];
  const ChaosSlo& slo = cfg_.slo;
  const double max_incorrect = adversarial ? slo.max_adversary_incorrect_rate
                                           : slo.max_fault_incorrect_rate;
  const double max_loss =
      adversarial ? slo.max_adversary_loss_rate : slo.max_fault_loss_rate;
  if (res.fault_incorrect_rate() > max_incorrect) {
    std::snprintf(buf, sizeof(buf),
                  "incorrect-delivery rate %.3f during faults exceeds %.3f",
                  res.fault_incorrect_rate(), max_incorrect);
    res.violations.push_back(buf);
  }
  if (res.fault_loss_rate() > max_loss) {
    std::snprintf(buf, sizeof(buf),
                  "lookup-loss rate %.3f during faults exceeds %.3f",
                  res.fault_loss_rate(), max_loss);
    res.violations.push_back(buf);
  }
  if (res.reconverge_seconds < 0) {
    std::snprintf(buf, sizeof(buf),
                  "no ring reconvergence within %.0f s of heal",
                  to_seconds(slo.max_reconverge));
    res.violations.push_back(buf);
  }
  if (res.heal_incorrect_rate() > slo.max_heal_incorrect_rate) {
    std::snprintf(buf, sizeof(buf),
                  "incorrect-delivery rate %.3f after heal exceeds %.3f",
                  res.heal_incorrect_rate(), slo.max_heal_incorrect_rate);
    res.violations.push_back(buf);
  }
  if (res.heal_loss_rate() > slo.max_heal_loss_rate) {
    std::snprintf(buf, sizeof(buf),
                  "lookup-loss rate %.3f after heal exceeds %.3f",
                  res.heal_loss_rate(), slo.max_heal_loss_rate);
    res.violations.push_back(buf);
  }
  if (gray) {
    if (!res.stall_rerouted) {
      res.violations.push_back(
          "stalled node was never rerouted around (RTO path inert)");
    }
    if (res.stall_condemned) {
      res.violations.push_back(
          "stalled node was condemned to a failed set before recovering");
    }
    if (!res.stall_recovered) {
      res.violations.push_back(
          "stalled node did not serve its keys after recovering");
    }
  }
  if (!res.accounting_ok) {
    res.violations.push_back(
        "packet accounting identity violated "
        "(sent != lost+delivered+unbound+adversarial+in-flight)");
  }
  attach_observability(res);
  return res;
}

void ChaosHarness::attach_observability(ChaosResult& res) {
  obs::TraceDomain* domain = driver_->trace_domain();
  if (domain == nullptr) return;

  const auto paths = obs::assemble_paths(*domain);
  obs::ExpectationConfig ecfg;
  ecfg.b = cfg_.pastry.b;
  ecfg.overlay_size = driver_->oracle().active_count();
  ecfg.t_ls = cfg_.pastry.t_ls;
  ecfg.t_o = cfg_.pastry.t_o;
  ecfg.failed_entry_ttl = cfg_.pastry.failed_entry_ttl;
  // Ground-truth delivery verdicts recorded by the driver feed the
  // delivered-at-oracle-root rule: a misdelivery (e.g. an adversarial
  // root claim on the traced copy) is flagged with its causal path.
  ecfg.lookup_verdict = [this](std::uint64_t id) {
    return driver_->lookup_verdict(id);
  };
  const auto report = obs::check_expectations(*domain, paths, ecfg);
  res.expectation_summary = report.summary();
  res.expectation_violations = report.violations.size();

  if (res.ok()) return;

  // An SLO tripped: attach the causal path of each failed probe lookup
  // (lost, or delivered to the wrong node), a few at most — the point is
  // evidence, not a corpus. Probe ids are sorted so the selection is
  // deterministic across runs.
  constexpr std::size_t kMaxOffendingPaths = 3;
  std::vector<std::uint64_t> failed_ids;
  for (const auto& [id, p] : probes_) {
    if (p.phase == kDiagPhase) continue;
    if (p.delivered && p.correct) continue;
    failed_ids.push_back(id);
  }
  std::sort(failed_ids.begin(), failed_ids.end());
  for (const std::uint64_t id : failed_ids) {
    if (res.offending_paths.size() >= kMaxOffendingPaths) break;
    const auto path =
        obs::assemble_path(*domain, domain->trace_id_for_lookup(id));
    if (!path) continue;
    res.offending_paths.push_back(obs::describe(*path));
  }
  if (!cfg_.trace_dump_prefix.empty()) {
    res.trace_dump_path =
        cfg_.trace_dump_prefix + res.scenario + ".trace.jsonl";
    if (!obs::write_trace_dump_file(*domain, res.trace_dump_path)) {
      LOG_WARN(driver_->sim().now(), "chaos", "cannot write trace dump %s",
               res.trace_dump_path.c_str());
      res.trace_dump_path.clear();
    }
  }
}

}  // namespace mspastry::overlay
