#pragma once

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fault_plan.hpp"
#include "net/topology.hpp"
#include "overlay/adversary.hpp"
#include "overlay/driver.hpp"

namespace mspastry::overlay {

/// Dependability service-level objectives checked by the chaos oracle.
/// The during-fault bounds are deliberately loose (the point of a fault
/// window is degradation); the post-heal bounds are strict: the paper's
/// consistency claim is that the overlay returns to correct routing.
struct ChaosSlo {
  double max_fault_incorrect_rate = 0.25;
  double max_fault_loss_rate = 0.50;
  double max_heal_incorrect_rate = 0.0;
  /// Post-heal probes are few (heal_probes), so this must leave headroom
  /// above the ~3% residual loss a reconverging overlay shows.
  double max_heal_loss_rate = 0.10;
  SimDuration max_reconverge = minutes(8);

  /// Adversary scenarios (byzantine-*, eclipse-victim) run WITH both
  /// countermeasures on; these strict bounds gate that the defenses work
  /// at the configured adversarial fraction (baseline-vs-countermeasure
  /// ablation lives in bench/tab_adversary, not here).
  double max_adversary_incorrect_rate = 0.01;
  double max_adversary_loss_rate = 0.05;
};

struct ChaosConfig {
  int nodes = 40;
  std::uint64_t seed = 7;

  /// Background Poisson lookup workload (drives suppression and RTO
  /// estimators the way real traffic would).
  double bg_lookup_rate = 0.02;

  /// Harness-tracked probe lookups: one every probe_interval, outcomes
  /// checked against the oracle per phase.
  SimDuration probe_interval = seconds(2);

  SimDuration settle = minutes(3);       ///< ring build-out before faults
  SimDuration fault_window = seconds(60);
  SimDuration stall_window = seconds(8); ///< gray failure: < condemnation time
  SimDuration heal_grace = seconds(30);  ///< wait after reconvergence
  int heal_probes = 30;

  pastry::Config pastry{};
  ChaosSlo slo{};

  /// Adversary scenarios: fraction of the built overlay corrupted
  /// (byzantine-*), lookup redundancy and plausibility checks switched on
  /// as countermeasures, and the sybil cluster size for eclipse-victim.
  double adversary_fraction = 0.2;
  int adversary_redundancy = 3;
  int eclipse_sybils = 16;

  /// Chaos runs trace every lookup by default (sampling off costs nothing
  /// here — the overlays are small) so an SLO trip can name the offending
  /// causal path instead of just a rate. Set obs.enabled = false to run
  /// the harness blind.
  obs::ObsConfig obs{/*enabled=*/true};

  /// When non-empty and a run trips an SLO, the full flight-recorder
  /// contents are written to "<prefix><scenario>.trace.jsonl" for offline
  /// inspection with tools/trace_explorer.
  std::string trace_dump_prefix;
};

/// Everything one scenario run produced, plus the oracle's verdicts.
struct ChaosResult {
  std::string scenario;
  std::uint64_t seed = 0;

  /// Injection counters by fault kind, from the network's fault plan.
  std::array<std::uint64_t, net::kFaultKindCount> injected{};

  // Probe lookups issued while faults were active.
  std::uint64_t fault_issued = 0;
  std::uint64_t fault_delivered = 0;
  std::uint64_t fault_incorrect = 0;

  // Probe lookups issued after heal + reconvergence.
  std::uint64_t heal_issued = 0;
  std::uint64_t heal_delivered = 0;
  std::uint64_t heal_incorrect = 0;

  /// Seconds from heal to ring reconvergence (leaf sets consistent with
  /// the oracle's active set); negative if it never happened in budget.
  double reconverge_seconds = -1.0;

  // Gray-failure scenario verdicts.
  bool stall_rerouted = false;   ///< a peer excluded the stalled node
  bool stall_condemned = false;  ///< a peer put it in its failed set
  bool stall_recovered = false;  ///< it served its keys again afterwards

  std::uint64_t false_positives = 0;  ///< live nodes condemned, whole run
  bool accounting_ok = false;  ///< sent == lost+delivered+unbound
                               ///< +adversarial+in-flight

  // Adversary scenario facts (zero elsewhere).
  std::string adversary_description;  ///< deterministic population dump
  std::uint64_t adversarial_nodes = 0;
  std::uint64_t adversary_drops = 0;       ///< lookups devoured
  std::uint64_t adversary_misroutes = 0;   ///< root claims / off-path hops
  std::uint64_t replies_corrupted = 0;     ///< LS + NN replies lied about
  std::uint64_t leaf_rejections = 0;       ///< density-check vetoes
  std::uint64_t redundant_copies = 0;      ///< diverse-path extra lookups

  /// Deterministic dump of the installed fault rules (byte-for-byte
  /// reproducible from the seed).
  std::string fault_schedule;

  /// Invariant violations; empty means every oracle check passed.
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }

  /// Expectation-checker verdict over the run's causal traces (src/obs).
  /// Faults legitimately break some expectations (a stalled node misses
  /// heartbeats), so these are reported alongside — not folded into —
  /// the SLO violations above.
  std::string expectation_summary;
  std::size_t expectation_violations = 0;

  /// Assembled causal paths (obs::describe) of probe lookups that were
  /// lost or misdelivered, attached when an SLO trips — the evidence that
  /// turns "loss rate exceeded" into "this lookup died at hop 3".
  std::vector<std::string> offending_paths;

  /// Full flight-recorder dump written on an SLO trip when the config
  /// asked for one ("" otherwise).
  std::string trace_dump_path;

  double fault_loss_rate() const {
    return fault_issued == 0
               ? 0.0
               : 1.0 - static_cast<double>(fault_delivered) /
                           static_cast<double>(fault_issued);
  }
  double fault_incorrect_rate() const {
    return fault_issued == 0 ? 0.0
                             : static_cast<double>(fault_incorrect) /
                                   static_cast<double>(fault_issued);
  }
  double heal_loss_rate() const {
    return heal_issued == 0 ? 0.0
                            : 1.0 - static_cast<double>(heal_delivered) /
                                        static_cast<double>(heal_issued);
  }
  double heal_incorrect_rate() const {
    return heal_issued == 0 ? 0.0
                            : static_cast<double>(heal_incorrect) /
                                  static_cast<double>(heal_issued);
  }
};

/// Runs named (or seeded-random) fault scenarios against a live overlay
/// and checks oracle invariants: bounded incorrect delivery and lookup
/// loss during the fault, and recovery SLOs after heal — reconvergence of
/// the leaf-set ring against the oracle's ground truth and near-perfect
/// lookups afterwards. Each run builds a fresh overlay on the shared
/// topology, so scenarios are independent and reproducible from the seed.
class ChaosHarness {
 public:
  ChaosHarness(std::shared_ptr<const net::Topology> topology,
               ChaosConfig config);
  ~ChaosHarness();

  /// The named scenarios, in bench/report order: asym-partition, flap,
  /// delay-spike, dup-reorder, gray-stall, combined, byzantine-drop,
  /// byzantine-misroute, eclipse-victim.
  static const std::vector<std::string>& scenarios();

  /// Run one named scenario ("random" runs a seeded random schedule).
  ChaosResult run(const std::string& scenario);

 private:
  struct ProbeOutcome {
    int phase = 0;
    NodeId key;
    bool delivered = false;
    bool correct = false;
  };

  void build_overlay(std::uint64_t seed, bool harden);
  void attach_observability(ChaosResult& res);
  void issue_probe(int phase, const NodeId* key);
  void probe_until(SimTime until, int phase, const NodeId* key);
  bool ring_consistent() const;
  double measure_reconvergence(SimTime heal_at, SimDuration budget);

  std::vector<net::FaultRule> make_schedule(const std::string& scenario,
                                            SimTime t0, SimTime t1,
                                            net::Address victim,
                                            std::vector<net::Address>* minority,
                                            Rng& rng);

  std::shared_ptr<const net::Topology> topology_;
  ChaosConfig cfg_;
  std::unique_ptr<OverlayDriver> driver_;
  std::unordered_map<std::uint64_t, ProbeOutcome> probes_;

  /// Set while an adversary scenario's population is armed: probe
  /// sampling then rejects adversarial sources and adversarially-rooted
  /// keys (the secure-routing measurement convention — a lookup "from"
  /// or "for" the adversary proves nothing about honest service).
  const AdversaryController* adv_ = nullptr;
};

}  // namespace mspastry::overlay
