#include "overlay/oracle.hpp"

namespace mspastry::overlay {

void Oracle::node_activated(NodeId id, net::Address addr) {
  const auto [it, inserted] = active_.emplace(id, addr);
  if (!inserted) return;
  refresh(id);
  // Inserting `id` changes the ground-truth successor of exactly one
  // other node: id's predecessor on the ring.
  if (active_.size() >= 2) {
    const auto pred =
        it == active_.begin() ? std::prev(active_.end()) : std::prev(it);
    refresh(pred->first);
  }
}

void Oracle::node_failed(NodeId id) {
  right_.erase(id);
  const auto it = active_.find(id);
  if (it == active_.end()) return;  // crashed while still joining
  std::optional<NodeId> pred;
  if (active_.size() >= 2) {
    const auto p =
        it == active_.begin() ? std::prev(active_.end()) : std::prev(it);
    pred = p->first;
  }
  active_.erase(it);
  inconsistent_.erase(id);
  // Removing `id` hands its keys to its successor but only changes the
  // *expected successor* of its predecessor.
  if (pred) refresh(*pred);
}

void Oracle::node_reports_right(NodeId id,
                                std::optional<net::Address> right) {
  right_[id] = right;
  if (active_.count(id) > 0) refresh(id);
}

void Oracle::refresh(NodeId id) {
  if (active_.count(id) == 0) {
    inconsistent_.erase(id);
    return;
  }
  const auto succ = successor_of(id);
  const auto r = right_.find(id);
  const std::optional<net::Address> reported =
      r == right_.end() ? std::nullopt : r->second;
  const bool ok = succ ? (reported.has_value() && *reported == succ->second)
                       : !reported.has_value();
  if (ok) {
    inconsistent_.erase(id);
  } else {
    inconsistent_.insert(id);
  }
}

std::optional<net::Address> Oracle::root_of(NodeId key) const {
  if (active_.empty()) return std::nullopt;
  // Candidates: the id at or after the key, and the one before (with
  // wraparound); the ring-closest of the two is the root.
  auto after = active_.lower_bound(key);
  if (after == active_.end()) after = active_.begin();
  auto before = after == active_.begin() ? std::prev(active_.end())
                                         : std::prev(after);
  const NodeId a = after->first;
  const NodeId b = before->first;
  if (a == b) return after->second;
  return a.closer_to(key, b) ? after->second : before->second;
}

std::optional<std::pair<NodeId, net::Address>> Oracle::successor_of(
    NodeId id) const {
  if (active_.size() < 2) return std::nullopt;
  auto it = active_.upper_bound(id);
  if (it == active_.end()) it = active_.begin();
  if (it->first == id) {
    ++it;
    if (it == active_.end()) it = active_.begin();
  }
  return std::make_pair(it->first, it->second);
}

std::optional<std::pair<NodeId, net::Address>> Oracle::random_active(
    Rng& rng) const {
  if (active_.empty()) return std::nullopt;
  // std::map has no random access; advance from a random lower_bound.
  const NodeId probe = rng.node_id();
  auto it = active_.lower_bound(probe);
  if (it == active_.end()) it = active_.begin();
  return std::make_pair(it->first, it->second);
}

}  // namespace mspastry::overlay
