#include "overlay/oracle.hpp"

namespace mspastry::overlay {

std::optional<net::Address> Oracle::root_of(NodeId key) const {
  if (active_.empty()) return std::nullopt;
  // Candidates: the id at or after the key, and the one before (with
  // wraparound); the ring-closest of the two is the root.
  auto after = active_.lower_bound(key);
  if (after == active_.end()) after = active_.begin();
  auto before = after == active_.begin() ? std::prev(active_.end())
                                         : std::prev(after);
  const NodeId a = after->first;
  const NodeId b = before->first;
  if (a == b) return after->second;
  return a.closer_to(key, b) ? after->second : before->second;
}

std::optional<std::pair<NodeId, net::Address>> Oracle::successor_of(
    NodeId id) const {
  if (active_.size() < 2) return std::nullopt;
  auto it = active_.upper_bound(id);
  if (it == active_.end()) it = active_.begin();
  if (it->first == id) {
    ++it;
    if (it == active_.end()) it = active_.begin();
  }
  return std::make_pair(it->first, it->second);
}

std::optional<std::pair<NodeId, net::Address>> Oracle::random_active(
    Rng& rng) const {
  if (active_.empty()) return std::nullopt;
  // std::map has no random access; advance from a random lower_bound.
  const NodeId probe = rng.node_id();
  auto it = active_.lower_bound(probe);
  if (it == active_.end()) it = active_.begin();
  return std::make_pair(it->first, it->second);
}

}  // namespace mspastry::overlay
