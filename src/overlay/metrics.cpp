#include "overlay/metrics.hpp"

#include <cassert>

namespace mspastry::overlay {

void Metrics::on_message(SimTime t, pastry::MsgType type) {
  const auto cls = pastry::traffic_class(type);
  const SimTime wi = t / window_;
  total_windows_[wi] += 1.0;
  class_windows_[wi][static_cast<std::size_t>(cls)] += 1.0;
  if (post_warmup(t)) {
    ++all_total_;
    ++class_totals_[static_cast<std::size_t>(cls)];
    if (pastry::is_control(type)) ++control_total_;
  }
}

void Metrics::on_app_message(SimTime t) {
  total_windows_[t / window_] += 1.0;
  if (post_warmup(t)) ++all_total_;
}

void Metrics::on_unclassified_control(SimTime t) {
  total_windows_[t / window_] += 1.0;
  if (post_warmup(t)) {
    ++all_total_;
    ++control_total_;
  }
}

void Metrics::merge_traffic_from(const Metrics& other) {
  for (const auto& [wi, counts] : other.class_windows_) {
    auto& mine = class_windows_[wi];
    for (std::size_t c = 0; c < counts.size(); ++c) mine[c] += counts[c];
  }
  for (const auto& [wi, count] : other.total_windows_) {
    total_windows_[wi] += count;
  }
  for (std::size_t c = 0; c < class_totals_.size(); ++c) {
    class_totals_[c] += other.class_totals_[c];
  }
  control_total_ += other.control_total_;
  all_total_ += other.all_total_;
  for (std::size_t k = 0; k < fault_injections_.size(); ++k) {
    fault_injections_[k] += other.fault_injections_[k];
  }
}

void Metrics::on_lookup_issued(std::uint64_t id, SimTime t, net::Address src,
                               NodeId key) {
  outstanding_.emplace(id, LookupRecord{t, src, key});
  if (post_warmup(t)) ++issued_;
}

void Metrics::on_lookup_delivered(std::uint64_t id, SimTime t, bool correct,
                                  SimDuration net_delay,
                                  IncorrectCause cause) {
  // First-correct-wins: an incorrect delivery parks the lookup in
  // pending_incorrect_; a later correct delivery (a redundant
  // diverse-path copy) upgrades it. Only finalize() turns a pending
  // incorrect into a counted one.
  const auto it = outstanding_.find(id);
  if (it == outstanding_.end()) {
    if (!correct) return;  // duplicate incorrect: the first verdict holds
    const auto pit = pending_incorrect_.find(id);
    if (pit == pending_incorrect_.end()) return;  // duplicate correct
    const LookupRecord rec = pit->second.rec;
    pending_incorrect_.erase(pit);
    record_correct(rec, t, net_delay);
    return;
  }
  const LookupRecord rec = it->second;
  outstanding_.erase(it);
  if (!correct) {
    pending_incorrect_.emplace(id, PendingIncorrect{rec, cause});
    return;
  }
  record_correct(rec, t, net_delay);
}

void Metrics::record_correct(const LookupRecord& rec, SimTime t,
                             SimDuration net_delay) {
  const bool counted = post_warmup(rec.issued_at);
  if (counted) ++correct_;
  if (net_delay > 0) {
    const double rdp = static_cast<double>(t - rec.issued_at) /
                       static_cast<double>(net_delay);
    if (counted) {
      rdp_.add(rdp);
      rdp_samples_.add(rdp);
      delay_.add(to_seconds(t - rec.issued_at));
    }
    rdp_series_.add(t, rdp);
  }
}

void Metrics::on_lookup_devoured(std::uint64_t id) {
  if (outstanding_.count(id) > 0 || pending_incorrect_.count(id) > 0) {
    devoured_.insert(id);
  }
}

void Metrics::on_join_started(SimTime t) {
  if (post_warmup(t)) ++joins_started_;
}

void Metrics::on_join_completed(SimTime t, SimDuration latency) {
  if (post_warmup(t)) {
    ++joins_completed_;
    join_latency_.add(to_seconds(latency));
  }
}

void Metrics::finalize(SimTime end, SimDuration grace) {
  finalized_at_ = end;
  const SimTime cutoff = end - grace;
  for (const auto& [id, rec] : outstanding_) {
    if (rec.issued_at <= cutoff && post_warmup(rec.issued_at)) {
      ++lost_;
      if (devoured_.count(id) > 0) ++lost_adversarial_;
    }
  }
  // Pending incorrect deliveries never upgraded by a correct copy: they
  // were delivered (wrongly), not lost — no grace applies.
  for (const auto& [id, p] : pending_incorrect_) {
    (void)id;
    if (!post_warmup(p.rec.issued_at)) continue;
    ++incorrect_;
    if (p.cause == IncorrectCause::kAdversarialMisroute) {
      ++incorrect_adversarial_;
    }
  }
}

double Metrics::post_warmup_node_seconds(SimTime end) const {
  double total = 0.0;
  for (const auto& [wi, ns] : node_seconds_.windows(end)) {
    if (wi * window_ >= warmup_) total += ns;
  }
  return total;
}

double Metrics::control_traffic_rate() const {
  const double ns = post_warmup_node_seconds(
      finalized_at_ == kTimeNever ? 0 : finalized_at_);
  return ns > 0 ? static_cast<double>(control_total_) / ns : 0.0;
}

double Metrics::total_traffic_rate() const {
  const double ns = post_warmup_node_seconds(
      finalized_at_ == kTimeNever ? 0 : finalized_at_);
  return ns > 0 ? static_cast<double>(all_total_) / ns : 0.0;
}

double Metrics::control_traffic_rate(pastry::TrafficClass c) const {
  const double ns = post_warmup_node_seconds(
      finalized_at_ == kTimeNever ? 0 : finalized_at_);
  return ns > 0 ? static_cast<double>(
                      class_totals_[static_cast<std::size_t>(c)]) /
                      ns
                : 0.0;
}

std::vector<Metrics::SeriesPoint> Metrics::control_traffic_series(
    SimTime end) {
  std::vector<SeriesPoint> out;
  const auto& ns = node_seconds_.windows(end);
  for (const auto& [wi, arr] : class_windows_) {
    const auto nit = ns.find(wi);
    if (nit == ns.end() || nit->second <= 0) continue;
    double control = 0.0;
    for (std::size_t c = 0; c < arr.size(); ++c) {
      if (static_cast<pastry::TrafficClass>(c) !=
          pastry::TrafficClass::kLookups) {
        control += arr[c];
      }
    }
    out.push_back({to_seconds(wi * window_), control / nit->second});
  }
  return out;
}

std::vector<Metrics::SeriesPoint> Metrics::control_traffic_series(
    pastry::TrafficClass c, SimTime end) {
  std::vector<SeriesPoint> out;
  const auto& ns = node_seconds_.windows(end);
  for (const auto& [wi, arr] : class_windows_) {
    const auto nit = ns.find(wi);
    if (nit == ns.end() || nit->second <= 0) continue;
    out.push_back({to_seconds(wi * window_),
                   arr[static_cast<std::size_t>(c)] / nit->second});
  }
  return out;
}

std::vector<Metrics::SeriesPoint> Metrics::total_traffic_series(SimTime end) {
  std::vector<SeriesPoint> out;
  const auto& ns = node_seconds_.windows(end);
  for (const auto& [wi, total] : total_windows_) {
    const auto nit = ns.find(wi);
    if (nit == ns.end() || nit->second <= 0) continue;
    out.push_back({to_seconds(wi * window_), total / nit->second});
  }
  return out;
}

std::vector<Metrics::SeriesPoint> Metrics::rdp_series() const {
  std::vector<SeriesPoint> out;
  for (const auto& p : rdp_series_.points()) {
    out.push_back({to_seconds(p.start), p.mean()});
  }
  return out;
}

}  // namespace mspastry::overlay
