#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/fault_plan.hpp"
#include "net/topology.hpp"
#include "obs/flight_recorder.hpp"
#include "overlay/driver.hpp"
#include "overlay/metrics.hpp"
#include "overlay/oracle.hpp"
#include "pastry/node.hpp"
#include "sim/sharded_simulator.hpp"
#include "trace/churn_trace.hpp"

namespace mspastry::overlay {

/// Trace-driven experiment harness running on the conservative sharded
/// scheduler (sim/sharded_simulator.hpp): node *sessions* are partitioned
/// across shards, each shard owns its sessions' simulator, message pool,
/// routing arena, counters and traffic metrics, and cross-shard messages
/// are cloned into the destination shard's pool at epoch barriers.
///
/// The lookahead is derived from the topology: the minimum cross-shard
/// one-way delay is 2 * lan_delay + Topology::min_positive_delay()
/// (sessions sharing a router always share a shard — the partition cuts
/// the router-sorted session list at router boundaries — so cross-shard
/// pairs sit on distinct routers), scaled down by the worst-case jitter
/// factor. A topology with no positive bound (and no LAN delay) yields
/// zero lookahead and the engine falls back to single-shard execution.
///
/// Determinism contract — the output is byte-identical for any shard
/// count, including 1:
///  - every session's id, router, address (== session uid) and RNG stream
///    are pre-assigned from the trial seed in uid order, before sharding;
///  - the lookup workload is a *per-node* Poisson process driven by the
///    node's own stream (equivalent in distribution to the single-driver
///    aggregate process, but free of cross-node draw interleaving);
///  - network loss/jitter draws are stateless hashes keyed by
///    (net seed, sender, per-sender packet seq), plus a small hash-derived
///    delivery-time dither that makes cross-shard/local (time, receiver)
///    ties vanishingly rare;
///  - all global bookkeeping (oracle, lookup scoring, join/population
///    metrics, false positives) is a *deferred ledger*: shards append
///    (time, session-ordered) log events during an epoch and the driver
///    applies them single-threaded at the barrier, sorted by the
///    shard-count-invariant key (time, session uid, per-session seq);
///  - epoch boundaries depend only on the global minimum pending time and
///    the (global) lookahead, so ledger visibility — when a joiner can see
///    a bootstrap candidate, which root the oracle scores a delivery
///    against — is itself shard-count-invariant.
///
/// Deliberately unsupported in sharded mode (use OverlayDriver):
/// adversary policies, application packets / LookupMsg::app_data, Scribe,
/// the chaos harness, and gray-failure stall rules. Fault-plan rules
/// (loss, partitions, flaps, delay spikes, duplication, reordering) ARE
/// supported via per-shard plan replicas: runs are deterministic for a
/// fixed shard count but not byte-identical across shard counts (each
/// shard's rule streams draw independently), so the determinism gate uses
/// fault-free workloads.
class ShardedDriver {
 public:
  ShardedDriver(std::shared_ptr<const net::Topology> topology,
                net::NetworkConfig net_config, DriverConfig config,
                std::size_t shards);
  ~ShardedDriver();

  ShardedDriver(const ShardedDriver&) = delete;
  ShardedDriver& operator=(const ShardedDriver&) = delete;

  /// Install one fault rule on every shard's plan replica (call before
  /// run_trace). Stall rules are not supported (asserted).
  void add_fault_rule(const net::FaultRule& rule);

  /// Run a full churn trace with the configured lookup workload, then
  /// finalize metrics. One-shot: a ShardedDriver runs one trace.
  void run_trace(const trace::ChurnTrace& trace,
                 SimDuration extra = seconds(30));

  // --- Introspection (valid after run_trace) ------------------------------

  Metrics& metrics() { return metrics_; }
  Oracle& oracle() { return oracle_; }
  /// Protocol counters summed over shards (plus ledger false positives).
  const pastry::Counters& counters() const { return total_counters_; }

  std::uint64_t executed_events() const { return engine_.executed_events(); }
  std::uint64_t epochs() const { return engine_.epochs(); }
  std::size_t effective_shards() const { return engine_.shards(); }
  std::size_t requested_shards() const { return engine_.requested_shards(); }
  SimDuration lookahead() const { return lookahead_; }

  /// Packet accounting summed over shards; the identity
  /// sent == lost + delivered + dropped_unbound + in_flight holds on the
  /// aggregate (per-shard in-flight counts can be individually negative:
  /// a send increments on the source shard, delivery decrements on the
  /// destination shard).
  std::uint64_t packets_sent() const;
  std::uint64_t packets_lost() const;
  std::uint64_t packets_delivered() const;
  std::uint64_t packets_dropped_unbound() const;
  std::int64_t packets_in_flight() const;

  /// Merged flight-recorder registry (per-shard domains absorbed at
  /// finish); nullptr when observability is off.
  obs::TraceDomain* trace_domain() { return obs_merged_.get(); }

  std::size_t live_node_count() const;

 private:
  class ShardEnv;  // per-node Env implementation
  friend class ShardEnv;

  /// One deferred-ledger event, written by a shard during an epoch and
  /// applied single-threaded at the barrier. `order` is
  /// (session uid << 24) | per-session seq — a shard-count-invariant
  /// same-time tiebreak.
  struct LogEvent {
    enum class Kind : std::uint8_t {
      kJoinStarted,
      kActivated,
      kFailed,
      kRight,
      kIssued,
      kDelivered,
      kMarkedFaulty,
      kNetDropObs,
    };
    SimTime t = 0;
    std::uint64_t order = 0;
    Kind kind = Kind::kJoinStarted;
    NodeId id;                            // node id / lookup key
    net::Address a = net::kNullAddress;   // self / victim / source
    net::Address b = net::kNullAddress;   // right / drop destination
    std::uint64_t u = 0;                  // lookup id / latency / trace id
    std::uint64_t v = 0;                  // aux (obs hop data)
    bool flag = false;                    // right-present
  };

  /// A message queued for another shard: cloned into the destination pool
  /// and scheduled there at the next barrier. The sender's packet seq
  /// rides along to give unbound-drop ledger events a shard-count-
  /// invariant order key.
  struct OutMsg {
    SimTime t = 0;
    net::Address from = net::kNullAddress;
    net::Address to = net::kNullAddress;
    std::uint64_t send_seq = 0;
    pastry::MessagePtr msg;
  };

  struct NodeState {
    std::unique_ptr<ShardEnv> env;  // must outlive node (dtor uses it)
    std::unique_ptr<pastry::PastryNode> node;
  };

  /// Everything one worker thread owns. Only the owning worker touches a
  /// shard during the parallel phase; the barrier phase (single-threaded,
  /// all workers quiescent) may touch all of them.
  struct Shard {
    /// Pool declared first: destroyed last, after everything in this
    /// struct that can hold message references.
    pastry::MessagePool pool;
    std::unique_ptr<pastry::NodeArena> arena;
    pastry::Counters counters;
    std::unique_ptr<Metrics> traffic;  ///< on_message + fault injections only
    net::FaultPlan faults;             ///< per-shard rule replica
    std::unique_ptr<obs::TraceDomain> obs;  ///< per-shard rings (if enabled)
    std::vector<LogEvent> log;
    std::vector<std::vector<OutMsg>> outbox;  ///< one row per dest shard
    std::unordered_map<net::Address, NodeState> nodes;
    // Packet accounting (see packets_in_flight() on the aggregate).
    std::uint64_t sent = 0;
    std::uint64_t lost = 0;
    std::uint64_t delivered = 0;
    std::uint64_t unbound = 0;
    std::int64_t in_flight = 0;
  };

  struct Session {
    NodeId id;
    int router = -1;
    std::size_t shard = 0;
    SimTime first_join = kTimeNever;
  };

  static constexpr SimDuration kJoinRetryDelay = seconds(1);

  SimDuration delay_between(net::Address a, net::Address b) const;
  void shard_send(std::size_t src_shard, net::Address from, net::Address to,
                  pastry::MessagePtr msg, std::uint64_t send_seq);
  void note_send_drop(Shard& sh, SimTime now, net::Address from,
                      net::Address to, const pastry::Message& msg);
  void schedule_delivery(std::size_t src_shard, SimTime at, net::Address from,
                         net::Address to, pastry::MessagePtr msg,
                         std::uint64_t send_seq);
  void deliver(std::size_t dst_shard, net::Address from, net::Address to,
               std::uint64_t send_seq, pastry::MessagePtr msg);
  void create_session(std::uint32_t uid);
  void kill_session(std::uint32_t uid);
  void try_join(std::uint32_t uid);
  void start_workload_loop(ShardEnv& env);
  void schedule_workload_tick(ShardEnv& env);
  void issue_workload_lookup(ShardEnv& env);
  void apply_barrier(SimTime epoch_end);
  void apply_log_event(const LogEvent& e);
  void finish();

  std::shared_ptr<const net::Topology> topology_;
  net::NetworkConfig net_cfg_;
  DriverConfig cfg_;
  std::uint64_t net_seed_;
  SimDuration lookahead_ = 0;

  /// Shards declared before the engine: the engine's simulators (whose
  /// queued callbacks hold the last message references) are destroyed
  /// first, recycling every slot into a live pool. Node teardown happens
  /// explicitly in the destructor, before either.
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardedSimulator engine_;

  std::vector<Session> sessions_;
  std::uint32_t first_session_ = 0;  ///< designated bootstrap session

  // --- Global ledger (barrier-phase only) ---------------------------------
  Oracle oracle_;
  Metrics metrics_;
  /// Sessions currently bound (joined, not yet killed), as of the events
  /// applied so far; the ground truth for false-positive verdicts.
  std::unordered_map<net::Address, NodeId> alive_;
  std::uint64_t ledger_false_positives_ = 0;
  pastry::Counters total_counters_;
  std::vector<LogEvent> log_scratch_;

  std::unique_ptr<obs::TraceDomain> obs_merged_;

  bool workload_on_ = false;
  bool ran_ = false;
  bool finished_ = false;
};

}  // namespace mspastry::overlay
