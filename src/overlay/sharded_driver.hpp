#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/fault_plan.hpp"
#include "net/topology.hpp"
#include "obs/flight_recorder.hpp"
#include "overlay/adversary.hpp"
#include "overlay/driver.hpp"
#include "overlay/metrics.hpp"
#include "overlay/oracle.hpp"
#include "pastry/node.hpp"
#include "sim/sharded_simulator.hpp"
#include "trace/churn_trace.hpp"

namespace mspastry::overlay {

/// Configuration the driver cannot run. Thrown in every build mode —
/// these used to be assert(false) guards that compiled out under NDEBUG,
/// so a Release build silently *accepted* an adversary / app-data /
/// stall-rule configuration and produced wrong results. Raised at
/// set_adversary / add_fault_rule / run_trace setup, never mid-run.
class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Declarative adversary setup for the sharded engine. The serial
/// driver's AdversaryController mutates a running overlay; the sharded
/// driver instead takes the whole scenario up front (who is corrupt, when
/// policies arm, how many sybils eclipse which key) so every adversarial
/// decision can be pre-assigned from the trial seed in uid order — the
/// same discipline as session ids and routers, and the reason the
/// corruption schedule is byte-identical at any shard count.
struct ShardedAdversaryConfig {
  AdversaryBehavior behavior = AdversaryBehavior::kDrop;
  /// Fraction of trace sessions corrupted: the round(f*N) sessions with
  /// the smallest selection hashes (exact count, like the serial
  /// controller's shuffle prefix).
  double fraction = 0.0;
  double strike = 1.0;
  /// Policies install at this instant (typically warmup end, matching
  /// the serial benches that corrupt after the overlay settles); sybil
  /// joins are scheduled here too. Sessions created later arm on join.
  SimTime arm_at = 0;
  /// Sybil sessions joined around eclipse_victim at arm_at, ids
  /// alternating ± k*2^104 like AdversaryController::join_eclipse_cluster.
  int eclipse_sybils = 0;
  NodeId eclipse_victim;
  std::uint64_t seed = 0;
};

class ShardedApp;

/// Trace-driven experiment harness running on the conservative sharded
/// scheduler (sim/sharded_simulator.hpp): node *sessions* are partitioned
/// across shards, each shard owns its sessions' simulator, message pool,
/// routing arena, counters and traffic metrics, and cross-shard messages
/// are cloned into the destination shard's pool at epoch barriers.
///
/// The lookahead is derived from the topology: the minimum cross-shard
/// one-way delay is 2 * lan_delay + Topology::min_positive_delay()
/// (sessions sharing a router always share a shard — the partition cuts
/// the router-sorted session list at router boundaries — so cross-shard
/// pairs sit on distinct routers), scaled down by the worst-case jitter
/// factor. A topology with no positive bound (and no LAN delay) yields
/// zero lookahead and the engine falls back to single-shard execution.
///
/// Determinism contract — the output is byte-identical for any shard
/// count, including 1:
///  - every session's id, router, address (== session uid) and RNG stream
///    are pre-assigned from the trial seed in uid order, before sharding;
///  - the lookup workload is a *per-node* Poisson process driven by the
///    node's own stream (equivalent in distribution to the single-driver
///    aggregate process, but free of cross-node draw interleaving);
///  - network loss/jitter draws are stateless hashes keyed by
///    (net seed, sender, per-sender packet seq), plus a small hash-derived
///    delivery-time dither that makes cross-shard/local (time, receiver)
///    ties vanishingly rare;
///  - all global bookkeeping (oracle, lookup scoring, join/population
///    metrics, false positives) is a *deferred ledger*: shards append
///    (time, session-ordered) log events during an epoch and the driver
///    applies them single-threaded at the barrier, sorted by the
///    shard-count-invariant key (time, session uid, per-session seq);
///  - epoch boundaries depend only on the global minimum pending time and
///    the (global) lookahead, so ledger visibility — when a joiner can see
///    a bootstrap candidate, which root the oracle scores a delivery
///    against — is itself shard-count-invariant.
///
/// Adversary policies, application data and gray-failure stall rules run
/// here with S-invariant formulations of their serial semantics:
///  - adversary corruption (set_adversary) uses KeyedAdversary — every
///    decision a stateless hash of (adversary seed, node addr, intercept
///    seq) — with selection, sybil placement and arming pre-assigned from
///    the seed; devoured lookups flow through a per-shard accounting path
///    and a kDevoured ledger event;
///  - application packets (attach_app / LookupMsg::app_data) ride the
///    same keyed send path as overlay messages, cross shards via
///    CloneableAppData::clone_into, and report latency samples through
///    kAppSample ledger events applied in (time, uid, seq) order;
///  - gray-stall rules evaluate against the shard-local plan replica —
///    stall_release is pure (no RNG), so identical replicas give every
///    shard the same verdict — with deferred deliveries re-scheduled on
///    the *receiving* session's shard.
/// Probabilistic fault-plan rules (loss, flaps, delay spikes,
/// duplication, reordering) remain per-shard RNG streams: deterministic
/// for a fixed shard count but not byte-identical across shard counts,
/// so cross-count determinism gates use stall-only or fault-free plans.
class ShardedDriver {
 public:
  ShardedDriver(std::shared_ptr<const net::Topology> topology,
                net::NetworkConfig net_config, DriverConfig config,
                std::size_t shards);
  ~ShardedDriver();

  ShardedDriver(const ShardedDriver&) = delete;
  ShardedDriver& operator=(const ShardedDriver&) = delete;

  /// Install one fault rule on every shard's plan replica (call before
  /// run_trace; ConfigError afterwards). Stall rules are supported: their
  /// evaluation is pure, so the replicas agree at every shard count.
  void add_fault_rule(const net::FaultRule& rule);

  /// Install an adversary scenario (call before run_trace; ConfigError
  /// afterwards or on out-of-range fraction/strike/sybil count).
  void set_adversary(const ShardedAdversaryConfig& adv);

  /// Attach an application (Squirrel-style workloads). The app's hooks
  /// run on worker threads against per-shard state; see ShardedApp.
  /// Call before run_trace (ConfigError afterwards).
  void attach_app(ShardedApp* app);

  /// Run a full churn trace with the configured lookup workload, then
  /// finalize metrics. One-shot: a ShardedDriver runs one trace.
  void run_trace(const trace::ChurnTrace& trace,
                 SimDuration extra = seconds(30));

 private:
  class ShardEnv;  // per-node Env implementation

 public:
  /// Value handle a ShardedApp receives for the node an upcall concerns:
  /// issue lookups, send app packets, schedule liveness-guarded timers
  /// and record latency samples, all against the node's own shard and
  /// RNG stream. Copyable and cheap; valid only while the node lives
  /// (apps use it inside upcalls and schedule() callbacks, which are
  /// liveness-guarded).
  class AppNode {
   public:
    SimTime now() const;
    net::Address self() const;
    std::size_t shard() const;
    Rng& rng() const;
    pastry::MessagePool& pool() const;
    /// Issue a lookup from this node (logs the issue through the ledger
    /// like the Poisson workload). Returns the lookup id.
    std::uint64_t issue_lookup(NodeId key, std::uint64_t payload = 0,
                               net::PacketPtr app_data = nullptr) const;
    /// Send a non-overlay packet; counted as app traffic. Cross-shard
    /// packets must implement pastry::CloneableAppData.
    void send_packet(net::Address to, net::PacketPtr packet) const;
    /// Schedule a callback on this node's shard; it is dropped if the
    /// node dies first. The callback must fit the inline Env capacity.
    void schedule(SimDuration delay, InplaceCallback fn) const;
    /// Record one end-to-end latency sample (seconds) through the
    /// deferred ledger; merged in S-invariant order at the barrier
    /// (ShardedDriver::app_latency_samples).
    void record_latency(double seconds) const;

   private:
    friend class ShardedDriver;
    friend class ShardEnv;
    AppNode(ShardedDriver* d, ShardEnv* env) : d_(d), env_(env) {}
    ShardedDriver* d_;
    ShardEnv* env_;
  };

  // --- Introspection (valid after run_trace) ------------------------------

  Metrics& metrics() { return metrics_; }
  Oracle& oracle() { return oracle_; }
  /// Protocol counters summed over shards (plus ledger false positives).
  const pastry::Counters& counters() const { return total_counters_; }

  std::uint64_t executed_events() const { return engine_.executed_events(); }
  std::uint64_t epochs() const { return engine_.epochs(); }
  std::size_t effective_shards() const { return engine_.shards(); }
  std::size_t requested_shards() const { return engine_.requested_shards(); }
  SimDuration lookahead() const { return lookahead_; }

  /// Packet accounting summed over shards; the identity
  /// sent == lost + delivered + dropped_unbound + dropped_adversarial +
  /// in_flight holds on the aggregate (per-shard in-flight counts can be
  /// individually negative: a send increments on the source shard,
  /// delivery decrements on the destination shard).
  std::uint64_t packets_sent() const;
  std::uint64_t packets_lost() const;
  std::uint64_t packets_delivered() const;
  std::uint64_t packets_dropped_unbound() const;
  std::uint64_t packets_dropped_adversarial() const;
  std::int64_t packets_in_flight() const;

  /// True when `a` belongs to the adversarial population (corrupted
  /// session or sybil); meaningful once run_trace has assigned sessions.
  bool session_is_adversarial(net::Address a) const;

  /// Sybil session addresses, in join order (empty without an eclipse).
  const std::vector<net::Address>& sybil_addresses() const {
    return sybils_;
  }

  /// App latency samples recorded via AppNode::record_latency, in the
  /// ledger's S-invariant (time, uid, seq) order.
  const std::vector<double>& app_latency_samples() const {
    return app_samples_;
  }

  /// Merged flight-recorder registry (per-shard domains absorbed at
  /// finish); nullptr when observability is off.
  obs::TraceDomain* trace_domain() { return obs_merged_.get(); }

  std::size_t live_node_count() const;

 private:
  friend class ShardEnv;

  /// One deferred-ledger event, written by a shard during an epoch and
  /// applied single-threaded at the barrier. `order` is
  /// (session uid << 24) | per-session seq — a shard-count-invariant
  /// same-time tiebreak.
  struct LogEvent {
    enum class Kind : std::uint8_t {
      kJoinStarted,
      kActivated,
      kFailed,
      kRight,
      kIssued,
      kDelivered,
      kMarkedFaulty,
      kNetDropObs,
      kDevoured,    ///< adversary devoured a lookup (u = lookup id)
      kAppSample,   ///< app latency sample (u = bit pattern of seconds)
    };
    SimTime t = 0;
    std::uint64_t order = 0;
    Kind kind = Kind::kJoinStarted;
    NodeId id;                            // node id / lookup key
    net::Address a = net::kNullAddress;   // self / victim / source
    net::Address b = net::kNullAddress;   // right / drop destination
    std::uint64_t u = 0;                  // lookup id / latency / trace id
    std::uint64_t v = 0;                  // aux (obs hop data)
    bool flag = false;                    // right-present
  };

  /// A packet queued for another shard: cloned into the destination pool
  /// (clone_message for overlay messages, CloneableAppData::clone_into
  /// for app packets) and scheduled there at the next barrier. The
  /// sender's packet seq rides along to give unbound-drop ledger events a
  /// shard-count-invariant order key.
  struct OutMsg {
    SimTime t = 0;
    net::Address from = net::kNullAddress;
    net::Address to = net::kNullAddress;
    std::uint64_t send_seq = 0;
    net::PacketPtr msg;
  };

  struct NodeState {
    std::unique_ptr<ShardEnv> env;  // must outlive node (dtor uses it)
    /// Installed when the session is adversarial and armed; owned here so
    /// it dies with the node (declared before node_: destroyed after it).
    std::unique_ptr<KeyedAdversary> policy;
    std::unique_ptr<pastry::PastryNode> node;
  };

  /// Everything one worker thread owns. Only the owning worker touches a
  /// shard during the parallel phase; the barrier phase (single-threaded,
  /// all workers quiescent) may touch all of them.
  struct Shard {
    /// Pool declared first: destroyed last, after everything in this
    /// struct that can hold message references.
    pastry::MessagePool pool;
    std::unique_ptr<pastry::NodeArena> arena;
    pastry::Counters counters;
    std::unique_ptr<Metrics> traffic;  ///< on_message + fault injections only
    net::FaultPlan faults;             ///< per-shard rule replica
    std::unique_ptr<obs::TraceDomain> obs;  ///< per-shard rings (if enabled)
    std::vector<LogEvent> log;
    std::vector<std::vector<OutMsg>> outbox;  ///< one row per dest shard
    std::unordered_map<net::Address, NodeState> nodes;
    // Packet accounting (see packets_in_flight() on the aggregate).
    std::uint64_t sent = 0;
    std::uint64_t lost = 0;
    std::uint64_t delivered = 0;
    std::uint64_t unbound = 0;
    std::uint64_t dropped_adversarial = 0;
    std::int64_t in_flight = 0;
  };

  struct Session {
    NodeId id;
    int router = -1;
    std::size_t shard = 0;
    SimTime first_join = kTimeNever;
    bool adversarial = false;  ///< corrupted by selection, or a sybil
    bool sybil = false;
  };

  static constexpr SimDuration kJoinRetryDelay = seconds(1);

  SimDuration delay_between(net::Address a, net::Address b) const;
  void shard_send(std::size_t src_shard, net::Address from, net::Address to,
                  net::PacketPtr msg, std::uint64_t send_seq);
  void shard_devour(ShardEnv& env, net::Address to, pastry::MessagePtr msg);
  void note_send_drop(Shard& sh, SimTime now, net::Address from,
                      net::Address to, const net::Packet& msg);
  void schedule_delivery(std::size_t src_shard, SimTime at, net::Address from,
                         net::Address to, net::PacketPtr msg,
                         std::uint64_t send_seq);
  void deliver(std::size_t dst_shard, net::Address from, net::Address to,
               std::uint64_t send_seq, net::PacketPtr msg);
  void create_session(std::uint32_t uid);
  void kill_session(std::uint32_t uid);
  void try_join(std::uint32_t uid);
  void arm_session(std::uint32_t uid);
  void install_policy(std::uint32_t uid, NodeState& ns);
  void start_workload_loop(ShardEnv& env);
  void schedule_workload_tick(ShardEnv& env);
  void issue_workload_lookup(ShardEnv& env);
  double workload_rate(SimTime now) const;
  void apply_barrier(SimTime epoch_end);
  void apply_log_event(const LogEvent& e);
  void finish();

  std::shared_ptr<const net::Topology> topology_;
  net::NetworkConfig net_cfg_;
  DriverConfig cfg_;
  std::uint64_t net_seed_;
  SimDuration lookahead_ = 0;

  /// Shards declared before the engine: the engine's simulators (whose
  /// queued callbacks hold the last message references) are destroyed
  /// first, recycling every slot into a live pool. Node teardown happens
  /// explicitly in the destructor, before either.
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardedSimulator engine_;

  std::vector<Session> sessions_;
  std::uint32_t first_session_ = 0;  ///< designated bootstrap session

  // --- Global ledger (barrier-phase only) ---------------------------------
  Oracle oracle_;
  Metrics metrics_;
  /// Sessions currently bound (joined, not yet killed), as of the events
  /// applied so far; the ground truth for false-positive verdicts.
  std::unordered_map<net::Address, NodeId> alive_;
  std::uint64_t ledger_false_positives_ = 0;
  pastry::Counters total_counters_;
  std::vector<LogEvent> log_scratch_;

  std::unique_ptr<obs::TraceDomain> obs_merged_;

  // --- Adversary scenario (immutable during the run) ----------------------
  std::optional<ShardedAdversaryConfig> adv_;
  std::vector<net::Address> sybils_;

  // --- Application --------------------------------------------------------
  ShardedApp* app_ = nullptr;
  std::vector<double> app_samples_;  ///< barrier-ordered (kAppSample)

  bool workload_on_ = false;
  bool ran_ = false;
  bool finished_ = false;
};

/// Application adapter for the sharded engine — the parallel counterpart
/// of OverlayDriver's on_app_deliver/on_app_packet hooks plus a per-node
/// workload. Hooks run on worker threads, one shard at a time: an
/// implementation must keep its mutable state partitioned per shard
/// (AppNode::shard() indexes it) and never touch another shard's replica
/// outside on_run_start/on_run_end. All randomness must come from
/// AppNode::rng() (the node's own stream) or pure functions of time, so
/// the app's behavior is shard-count-invariant like the driver's.
class ShardedApp {
 public:
  virtual ~ShardedApp() = default;

  /// Called once from run_trace before anything runs: size per-shard
  /// state replicas.
  virtual void on_run_start(ShardedDriver& driver, std::size_t shards) = 0;

  /// Per-node workload rate (requests/s) at `t`. Must be a *pure*
  /// function of time (every shard evaluates it independently). Return
  /// <= 0 for no app workload; the driver's Poisson lookup workload is
  /// then the only traffic source.
  virtual double workload_rate(SimTime t) const = 0;

  /// One workload event at `node` (issue a request, pick content, ...).
  virtual void workload_tick(const ShardedDriver::AppNode& node) = 0;

  /// A lookup carrying app_data reached its root at `node`.
  virtual void deliver(const ShardedDriver::AppNode& node,
                       const pastry::LookupMsg& m) = 0;

  /// A non-overlay packet arrived at `node`.
  virtual void packet(const ShardedDriver::AppNode& node, net::Address from,
                      const net::PacketPtr& packet) = 0;
};

}  // namespace mspastry::overlay
