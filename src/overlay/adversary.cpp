#include "overlay/adversary.hpp"

#include <algorithm>
#include <cstdio>

#include "common/hash_mix.hpp"

namespace mspastry::overlay {

const char* to_string(AdversaryBehavior b) {
  switch (b) {
    case AdversaryBehavior::kDrop:
      return "drop";
    case AdversaryBehavior::kMisroute:
      return "misroute";
    case AdversaryBehavior::kLie:
      return "lie";
  }
  return "?";
}

std::optional<AdversaryBehavior> behavior_from_name(std::string_view name) {
  if (name == "drop") return AdversaryBehavior::kDrop;
  if (name == "misroute") return AdversaryBehavior::kMisroute;
  if (name == "lie") return AdversaryBehavior::kLie;
  return std::nullopt;
}

ScriptedAdversary::RouteAction ScriptedAdversary::on_route(
    const pastry::RoutedMessage&, bool) {
  if (behavior_ == AdversaryBehavior::kLie || !rng_.chance(strike_)) {
    return RouteAction::kHonest;
  }
  return behavior_ == AdversaryBehavior::kDrop ? RouteAction::kDrop
                                               : RouteAction::kMisroute;
}

bool ScriptedAdversary::corrupt_ls_reply(pastry::LeafVec& leaf,
                                         pastry::FailedVec& failed) {
  if (behavior_ != AdversaryBehavior::kLie || !rng_.chance(strike_)) {
    return false;
  }
  // Falsely report live leaf-set members as failed: receivers that trust
  // peer failure claims evict them and end up with stale leaf sets.
  bool changed = false;
  for (std::size_t i = 0; i < leaf.size();) {
    if (rng_.chance(0.5)) {
      failed.push_back(leaf[i]);
      leaf.erase(leaf.begin() + static_cast<std::ptrdiff_t>(i));
      changed = true;
    } else {
      ++i;
    }
  }
  return changed;
}

bool ScriptedAdversary::corrupt_nn_reply(pastry::CandidateVec& candidates) {
  if (behavior_ != AdversaryBehavior::kLie || !rng_.chance(strike_)) {
    return false;
  }
  // Conceal most of the neighbourhood: the probing node discovers fewer
  // honest close nodes, slowing leaf-set repair and biasing its view.
  if (candidates.size() <= 1) return false;
  candidates.resize(1);
  return true;
}

bool KeyedAdversary::chance(double p) {
  // Mirrors Rng::chance, including the no-draw fast paths, so strike=1.0
  // adversaries consume no sequence numbers on the always-strike gate.
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return hash_to_unit(mix3(seed_, self_, seq_++)) < p;
}

KeyedAdversary::RouteAction KeyedAdversary::on_route(
    const pastry::RoutedMessage&, bool) {
  if (behavior_ == AdversaryBehavior::kLie || !chance(strike_)) {
    return RouteAction::kHonest;
  }
  return behavior_ == AdversaryBehavior::kDrop ? RouteAction::kDrop
                                               : RouteAction::kMisroute;
}

bool KeyedAdversary::corrupt_ls_reply(pastry::LeafVec& leaf,
                                      pastry::FailedVec& failed) {
  if (behavior_ != AdversaryBehavior::kLie || !chance(strike_)) {
    return false;
  }
  // Same lie as ScriptedAdversary: falsely report live leaf-set members
  // as failed, per-entry coin flips.
  bool changed = false;
  for (std::size_t i = 0; i < leaf.size();) {
    if (chance(0.5)) {
      failed.push_back(leaf[i]);
      leaf.erase(leaf.begin() + static_cast<std::ptrdiff_t>(i));
      changed = true;
    } else {
      ++i;
    }
  }
  return changed;
}

bool KeyedAdversary::corrupt_nn_reply(pastry::CandidateVec& candidates) {
  if (behavior_ != AdversaryBehavior::kLie || !chance(strike_)) {
    return false;
  }
  if (candidates.size() <= 1) return false;
  candidates.resize(1);
  return true;
}

std::vector<net::Address> AdversaryController::corrupt_fraction(
    double fraction) {
  auto addrs = driver_.live_addresses();
  std::sort(addrs.begin(), addrs.end());
  // Deterministic Fisher-Yates from the controller seed, then take the
  // prefix: the corrupted set is reproducible and independent of the
  // unordered-map iteration order behind live_addresses().
  Rng pick(seed_ ^ 0x5bd1e995u);
  for (std::size_t i = addrs.size(); i > 1; --i) {
    std::swap(addrs[i - 1], addrs[pick.uniform_index(i)]);
  }
  const auto n = static_cast<std::size_t>(
      fraction * static_cast<double>(addrs.size()) + 0.5);
  std::vector<net::Address> chosen(addrs.begin(),
                                   addrs.begin() + std::min(n, addrs.size()));
  std::sort(chosen.begin(), chosen.end());
  for (const net::Address a : chosen) corrupt(a);
  return chosen;
}

void AdversaryController::corrupt(net::Address a) {
  pastry::PastryNode* n = driver_.node(a);
  if (n == nullptr || policies_.count(a) > 0) return;
  auto policy = std::make_unique<ScriptedAdversary>(
      behavior_, strike_,
      seed_ ^ (static_cast<std::uint64_t>(a) * 0x9e3779b97f4a7c15ull));
  n->set_adversary(policy.get());
  policies_.emplace(a, std::move(policy));
}

std::vector<net::Address> AdversaryController::join_eclipse_cluster(
    NodeId victim, int count, SimDuration join_gap) {
  // Sybil ids alternate clockwise/counter-clockwise at a spacing of
  // 2^104 — astronomically denser than honest spacing (~2^128 / N), so
  // an unchecked victim ends up with sybils for leaf-set neighbours and
  // prefix-matching routes funnel through the cluster.
  std::vector<net::Address> joined;
  joined.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const U128 offset =
        U128{0, static_cast<std::uint64_t>(i / 2 + 1)} << 104;  // k * 2^104
    const U128 id = (i % 2 == 0) ? victim.value() + offset
                                 : victim.value() - offset;
    const net::Address a = driver_.add_node_with_id(NodeId{id});
    // join_gap 0 supports arming from inside a scheduled callback, where
    // re-entering the simulator loop would be unsound.
    if (join_gap > 0) driver_.run_for(join_gap);
    corrupt(a);
    sybils_.push_back(a);
    joined.push_back(a);
  }
  return joined;
}

void AdversaryController::disarm() {
  for (auto& [a, policy] : policies_) {
    (void)policy;
    if (pastry::PastryNode* n = driver_.node(a)) n->set_adversary(nullptr);
  }
  policies_.clear();
}

void AdversaryController::kill_sybils() {
  for (const net::Address a : sybils_) {
    policies_.erase(a);  // node dies with its policy pointer
    driver_.kill_node(a);
  }
  sybils_.clear();
}

std::string AdversaryController::describe() const {
  std::vector<net::Address> addrs;
  addrs.reserve(policies_.size());
  for (const auto& [a, p] : policies_) {
    (void)p;
    addrs.push_back(a);
  }
  std::sort(addrs.begin(), addrs.end());
  char buf[96];
  std::snprintf(buf, sizeof buf, "adversary behavior=%s strike=%.2f nodes=[",
                to_string(behavior_), strike_);
  std::string out = buf;
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(addrs[i]);
  }
  out += "] sybils=";
  out += std::to_string(sybils_.size());
  return out;
}

}  // namespace mspastry::overlay
