#pragma once

#include <map>
#include <optional>

#include "common/node_id.hpp"
#include "net/network.hpp"

namespace mspastry::overlay {

/// Global ground truth, used only by the simulation harness (never by the
/// protocol): which nodes are currently active, and hence which node is
/// the *current root* of any key. Deliveries are checked against this to
/// measure the incorrect-delivery rate, and failure-detector verdicts are
/// checked against it to count false positives.
class Oracle {
 public:
  /// A node completed the join protocol (Figure 2's activei = true).
  void node_activated(NodeId id, net::Address addr) {
    active_.emplace(id, addr);
  }

  /// A node left or crashed (active or not).
  void node_failed(NodeId id) { active_.erase(id); }

  bool is_active(NodeId id) const { return active_.count(id) > 0; }
  std::size_t active_count() const { return active_.size(); }

  /// The current root of `key`: the active node whose id is numerically
  /// closest modulo 2^128, with the same tie-break the protocol uses.
  std::optional<net::Address> root_of(NodeId key) const;

  /// A uniformly random active node (for bootstraps and workloads).
  std::optional<std::pair<NodeId, net::Address>> random_active(
      Rng& rng) const;

  /// The active node immediately clockwise of `id` (its ring successor,
  /// excluding `id` itself). Ground truth for leaf-set reconvergence
  /// checks; nullopt with fewer than two active nodes.
  std::optional<std::pair<NodeId, net::Address>> successor_of(
      NodeId id) const;

 private:
  std::map<NodeId, net::Address> active_;  // ordered by id
};

}  // namespace mspastry::overlay
