#pragma once

#include <map>
#include <optional>
#include <set>

#include "common/node_id.hpp"
#include "net/network.hpp"

namespace mspastry::overlay {

/// Global ground truth, used only by the simulation harness (never by the
/// protocol): which nodes are currently active, and hence which node is
/// the *current root* of any key. Deliveries are checked against this to
/// measure the incorrect-delivery rate, and failure-detector verdicts are
/// checked against it to count false positives.
///
/// The ring-consistency verdict is maintained *incrementally*: nodes push
/// their current right neighbour through the driver whenever it changes,
/// and each membership delta re-evaluates only the nodes whose expected
/// successor can have changed (the new/removed node and its predecessor).
/// `ring_consistent()` is therefore O(1) — at N = 10,000 the old
/// once-a-second full rescan was O(N log N) per poll and dominated the
/// chaos and reconvergence harnesses.
class Oracle {
 public:
  /// A node completed the join protocol (Figure 2's activei = true).
  void node_activated(NodeId id, net::Address addr);

  /// A node left or crashed (active or not).
  void node_failed(NodeId id);

  /// A node's leaf-set right neighbour changed (nullopt: no neighbour).
  /// Reports from not-yet-active nodes are retained and start counting
  /// when the node activates.
  void node_reports_right(NodeId id, std::optional<net::Address> right);

  /// True when every active node's reported right neighbour matches its
  /// ground-truth ring successor and at least two nodes are active.
  /// Incrementally maintained; equivalent to a full rescan of all live
  /// nodes (see the differential test).
  bool ring_consistent() const {
    return active_.size() >= 2 && inconsistent_.empty();
  }

  /// Number of active nodes whose reported right neighbour disagrees with
  /// ground truth (diagnostics and tests).
  std::size_t inconsistent_count() const { return inconsistent_.size(); }

  bool is_active(NodeId id) const { return active_.count(id) > 0; }
  std::size_t active_count() const { return active_.size(); }

  /// The current root of `key`: the active node whose id is numerically
  /// closest modulo 2^128, with the same tie-break the protocol uses.
  std::optional<net::Address> root_of(NodeId key) const;

  /// A uniformly random active node (for bootstraps and workloads).
  std::optional<std::pair<NodeId, net::Address>> random_active(
      Rng& rng) const;

  /// The active node immediately clockwise of `id` (its ring successor,
  /// excluding `id` itself). Ground truth for leaf-set reconvergence
  /// checks; nullopt with fewer than two active nodes.
  std::optional<std::pair<NodeId, net::Address>> successor_of(
      NodeId id) const;

 private:
  /// Recompute `id`'s membership in `inconsistent_` from the stored
  /// report and the current ground truth.
  void refresh(NodeId id);

  std::map<NodeId, net::Address> active_;  // ordered by id
  /// Last reported right neighbour per live node (active or joining).
  std::map<NodeId, std::optional<net::Address>> right_;
  /// Active nodes whose report disagrees with their ring successor.
  std::set<NodeId> inconsistent_;
};

}  // namespace mspastry::overlay
