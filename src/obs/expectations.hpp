#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/path_assembler.hpp"

namespace mspastry::obs {

/// Parameters the declarative rules are evaluated against. These mirror
/// the protocol configuration that was in force during the run; the
/// checker never reaches into live nodes — everything it knows comes from
/// the rings.
struct ExpectationConfig {
  int b = 4;                      ///< identifier digit width
  std::size_t overlay_size = 0;   ///< N for the hop bound; 0 skips the rule
  int hop_slack = 4;              ///< the "+c" over ceil(log_2^b N)
  SimDuration t_ls = seconds(30);
  SimDuration t_o = seconds(3);
  SimDuration failed_entry_ttl = minutes(10);

  /// R7 (analytic-mean-hops): tolerance as a fraction of the Kong et al.
  /// closed-form expected hop count ceil(log_2^b N) — the aggregate
  /// counterpart to R1's per-path bound, sensitive to systematic routing
  /// shortfalls (e.g. a delay oracle distorting proximity) that per-path
  /// slack absorbs. <= 0 (the default) disables the rule; it needs an
  /// experiment-scale run to be meaningful, so the harness opts in.
  double analytic_hops_tolerance = 0.0;
  /// R7 minimum sample: skip the rule below this many delivered complete
  /// non-join paths (the mean is noise on tiny samples).
  std::size_t analytic_min_paths = 100;

  /// Ground-truth verdict oracle for the delivered-at-oracle-root rule:
  /// given a lookup id, return whether its (first) delivery landed at the
  /// node the oracle says owned the key at delivery time. nullopt = no
  /// verdict recorded for that id (unsampled or pre-warmup); rule is
  /// skipped entirely when the function is unset. The checker itself
  /// stays pure over the rings — the harness supplies the verdicts it
  /// recorded during the run.
  std::function<std::optional<bool>(std::uint64_t lookup_id)> lookup_verdict;
};

struct Violation {
  std::string rule;
  std::uint64_t trace_id = 0;          ///< 0 for node-scoped violations
  net::Address node = net::kNullAddress;
  SimTime at = kTimeNever;
  std::string detail;
};

struct ExpectationReport {
  std::vector<Violation> violations;
  std::size_t paths_checked = 0;
  std::size_t nodes_checked = 0;
  std::vector<std::string> rules_run;
  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// One Pip-style expectation: a named, self-describing predicate over the
/// assembled paths and the raw per-node rings.
struct Expectation {
  const char* name;
  const char* description;
  std::function<void(const TraceDomain&, const std::vector<CausalPath>&,
                     const ExpectationConfig&, std::vector<Violation>&)>
      check;
};

/// The rule table. Declarative in the Pip sense: each entry states a
/// protocol invariant; check_expectations runs them all.
const std::vector<Expectation>& expectations();

/// Run every rule over the domain. `paths` must come from
/// assemble_paths(domain) — passed in so callers can reuse the assembly.
ExpectationReport check_expectations(const TraceDomain& domain,
                                     const std::vector<CausalPath>& paths,
                                     const ExpectationConfig& cfg);

}  // namespace mspastry::obs
