#pragma once

#include <cstdint>

#include "common/sim_time.hpp"
#include "net/network.hpp"

namespace mspastry::obs {

/// Everything a node's flight recorder can witness. The taxonomy follows
/// the protocol machinery the paper's evaluation reasons about per
/// lookup: routing hops (Figure 2), the per-hop ack/retransmit/reroute
/// ladder (Section 3.2), failure-detection verdicts (Section 4.1), and
/// the join phases (Figure 2's state machine).
enum class EventKind : std::uint8_t {
  kNone = 0,

  // --- Routed-message path (trace-scoped) -------------------------------
  kLookupIssued,   ///< lookup originated here; aux = lookup_id
  kRecv,           ///< routed message arrived; hop = its hop count
  kForward,        ///< forwarded to peer; hop = outgoing hops, aux = hop_seq
  kBuffered,       ///< held while inactive / mid-repair; re-routed later
  kDeliver,        ///< reached the root and was delivered locally
  kAppConsumed,    ///< application forward() upcall consumed it mid-route
  kDrop,           ///< gave up (max hops or retransmit budget exhausted)

  // --- Per-hop ack ladder (Section 3.2, trace-scoped) -------------------
  kAckRecv,        ///< ack for our transmission; aux = hop_seq
  kAckTimeout,     ///< RTO expired waiting on peer; aux = hop_seq
  kRetransmit,     ///< same-destination retransmission; aux = new hop_seq
  kReroute,        ///< excluded peer and re-routed around it

  // --- Failure detection (node-scoped, trace_id = 0) --------------------
  kSuspect,        ///< peer excluded from routing after missed acks
  kAbsolve,        ///< a condemned peer was heard from again
  kCondemn,        ///< peer entered the failed set (marked faulty)
  kLsProbeSent,    ///< leaf-set probe to peer
  kRtProbeSent,    ///< routing-table liveness probe to peer
  kHeartbeatTick,  ///< periodic heartbeat timer fired (sent or suppressed)

  // --- Join phases (node-scoped except the routed join request) ---------
  kJoinStart,      ///< join() called; aux = join epoch
  kJoinRestart,    ///< join restarted from a fresh bootstrap; aux = epoch
  kJoinRequestSent,///< ack-protected join request left the joiner
  kJoinReplyRecv,  ///< accepted JOIN-REPLY; aux = epoch
  kJoinProbe,      ///< pre-activation leaf-set probe (probes-before-activate)
  kActivated,      ///< node became active

  // --- Wire-level (recorded by the driver's drop observer) --------------
  kNetDrop,        ///< the network dropped a traced packet in flight
  kAdversaryDrop,  ///< an adversarial sender devoured a traced packet
};

inline constexpr int kEventKindCount =
    static_cast<int>(EventKind::kAdversaryDrop) + 1;

/// Short stable name, used in dumps and reports.
const char* event_kind_name(EventKind k);

/// Inverse of event_kind_name; kNone for unknown names (forward compat:
/// an old explorer reading a newer dump skips what it cannot name).
EventKind event_kind_from_name(const char* name);

/// One flight-recorder entry. Fixed-size POD: rings are flat arrays and
/// recording is a handful of stores. `trace_id == 0` means node-scoped
/// (failure detection, join phases, heartbeats); nonzero ids tie the
/// event to one end-to-end lookup/join path.
struct TraceEvent {
  SimTime t = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t aux = 0;                  ///< kind-specific (hop_seq, epoch, id)
  net::Address peer = net::kNullAddress;  ///< the other endpoint, if any
  std::int32_t hop = 0;                   ///< hop count of the routed message
  EventKind kind = EventKind::kNone;
};

}  // namespace mspastry::obs
