#pragma once

// Flight-recorder dump format + offline reload.
//
// A dump is JSON-lines: a header object, one "node" object per ring
// (with its overwrite accounting), then one "event" object per retained
// event, oldest first. The format is append-only flat objects so the
// explorer's parser stays trivial and dumps diff cleanly.
//
//   {"schema": 1, "kind": "mspastry-trace", "nodes": 40, ...}
//   {"row": "node", "node": 3, "recorded": 512, "dropped": 0, ...}
//   {"row": "event", "node": 3, "t": 1200000, "kind": "forward",
//    "trace": "9f2c...", "peer": 17, "hop": 1, "aux": 42}

#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/expectations.hpp"
#include "obs/path_assembler.hpp"

namespace mspastry::obs {

/// Write the whole domain as a JSON-lines dump.
void write_trace_dump(const TraceDomain& domain, std::ostream& os);

/// Convenience: write to a file path. Returns false if it cannot open.
bool write_trace_dump_file(const TraceDomain& domain,
                           const std::string& path);

/// One parsed flat-JSON line from a dump: string values unquoted,
/// numbers kept as their literal text.
struct DumpRow {
  std::unordered_map<std::string, std::string> fields;

  const std::string* get(const char* key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
  std::uint64_t u64(const char* key, std::uint64_t fallback = 0) const;
  std::int64_t i64(const char* key, std::int64_t fallback = 0) const;
  std::uint64_t hex64(const char* key) const;
};

/// Parse every flat JSON object (one per line) from a dump stream.
/// Tolerates blank lines; nested values are not supported (the dump
/// never produces them).
std::vector<DumpRow> parse_dump_rows(std::istream& is);

/// Rebuild a TraceDomain from parsed dump rows: rings are sized to hold
/// every retained event and the live rings' overwrite counts are
/// imported, so assemble_paths / check_expectations give the same
/// answers offline as they would have in-process.
TraceDomain load_trace_dump(const std::vector<DumpRow>& rows);

/// Emit assembled paths as machine-readable rows on any emitter with the
/// bench_util::JsonEmitter shape (row(name).field(key, value)); one
/// "path" row per path, one "hop" row per hop. Duck-typed so obs does
/// not depend on the bench harness.
template <typename Emitter>
void emit_paths(Emitter& out, const std::vector<CausalPath>& paths) {
  for (const CausalPath& p : paths) {
    auto& row = out.row("path");
    row.hex("trace", p.trace_id)
        .field("kind", p.is_join ? "join" : "lookup")
        .field("origin", p.origin)
        .field("outcome", p.delivered  ? "delivered"
                          : p.consumed ? "app-consumed"
                          : p.dropped  ? "dropped"
                          : p.net_lost ? "lost-in-network"
                                       : "unresolved")
        .field("issued_at_s", to_seconds(p.issued_at))
        .field("hops", static_cast<int>(p.hops.size()))
        .field("reroutes", p.reroutes)
        .field("timeouts", p.timeouts)
        .field("retransmits", p.retransmits)
        .field("complete", p.complete);
    if (p.delivered) {
      row.field("latency_ms", to_seconds(p.total_latency()) * 1e3)
          .field("transmission_ms", to_seconds(p.total_transmission()) * 1e3)
          .field("rto_wait_ms", to_seconds(p.total_rto_wait()) * 1e3)
          .field("reroute_penalty_ms",
                 to_seconds(p.total_reroute_penalty()) * 1e3);
    }
    for (const HopRecord& h : p.hops) {
      auto& hr = out.row("hop");
      hr.hex("trace", p.trace_id)
          .field("hop", h.hop)
          .field("from", h.from)
          .field("to", h.to)
          .field("attempts", h.attempts)
          .field("timeouts", h.timeouts)
          .field("rerouted", h.rerouted)
          .field("net_dropped", h.net_dropped)
          .field("buffered", h.buffered);
      if (h.transmission != kTimeNever) {
        hr.field("transmission_ms", to_seconds(h.transmission) * 1e3);
      }
      if (h.rto_wait > 0) {
        hr.field("rto_wait_ms", to_seconds(h.rto_wait) * 1e3);
      }
      if (h.reroute_penalty > 0) {
        hr.field("reroute_penalty_ms", to_seconds(h.reroute_penalty) * 1e3);
      }
    }
  }
}

}  // namespace mspastry::obs
