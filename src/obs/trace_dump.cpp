#include "obs/trace_dump.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>

namespace mspastry::obs {

namespace {

void write_event(std::ostream& os, net::Address node, const TraceEvent& e) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"row\": \"event\", \"node\": %d, \"t\": %lld, "
                "\"kind\": \"%s\", \"trace\": \"%016llx\", \"peer\": %d, "
                "\"hop\": %d, \"aux\": %llu}\n",
                node, static_cast<long long>(e.t), event_kind_name(e.kind),
                static_cast<unsigned long long>(e.trace_id), e.peer, e.hop,
                static_cast<unsigned long long>(e.aux));
  os << buf;
}

}  // namespace

void write_trace_dump(const TraceDomain& domain, std::ostream& os) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"schema\": 1, \"kind\": \"mspastry-trace\", "
                "\"nodes\": %zu, \"ring_capacity\": %zu, "
                "\"sample_rate\": %.17g}\n",
                domain.recorder_count(), domain.config().ring_capacity,
                domain.config().sample_rate);
  os << buf;

  // Deterministic output: order rings by address.
  std::vector<const FlightRecorder*> rings;
  rings.reserve(domain.recorder_count());
  domain.for_each_recorder(
      [&rings](const FlightRecorder& r) { rings.push_back(&r); });
  std::sort(rings.begin(), rings.end(),
            [](const FlightRecorder* a, const FlightRecorder* b) {
              return a->self() < b->self();
            });

  for (const FlightRecorder* r : rings) {
    std::snprintf(buf, sizeof buf,
                  "{\"row\": \"node\", \"node\": %d, \"recorded\": %llu, "
                  "\"dropped\": %llu, \"capacity\": %zu}\n",
                  r->self(),
                  static_cast<unsigned long long>(r->recorded()),
                  static_cast<unsigned long long>(r->dropped()),
                  r->capacity());
    os << buf;
    r->for_each([&os, r](const TraceEvent& e) { write_event(os, r->self(), e); });
  }
}

bool write_trace_dump_file(const TraceDomain& domain,
                           const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_trace_dump(domain, os);
  return os.good();
}

std::uint64_t DumpRow::u64(const char* key, std::uint64_t fallback) const {
  const std::string* v = get(key);
  return v == nullptr ? fallback : std::strtoull(v->c_str(), nullptr, 10);
}

std::int64_t DumpRow::i64(const char* key, std::int64_t fallback) const {
  const std::string* v = get(key);
  return v == nullptr ? fallback : std::strtoll(v->c_str(), nullptr, 10);
}

std::uint64_t DumpRow::hex64(const char* key) const {
  const std::string* v = get(key);
  return v == nullptr ? 0 : std::strtoull(v->c_str(), nullptr, 16);
}

namespace {

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

/// Parse one quoted string starting at s[i] == '"'. Handles the escapes
/// the dump writer can produce; anything fancier is not our format.
bool parse_string(const std::string& s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out += s[i];
    } else {
      out += s[i];
    }
    ++i;
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

}  // namespace

std::vector<DumpRow> parse_dump_rows(std::istream& is) {
  std::vector<DumpRow> rows;
  std::string line;
  while (std::getline(is, line)) {
    std::size_t i = 0;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != '{') continue;
    ++i;
    DumpRow row;
    bool bad = false;
    while (!bad) {
      skip_ws(line, i);
      if (i < line.size() && line[i] == '}') break;
      std::string key;
      if (!parse_string(line, i, key)) {
        bad = true;
        break;
      }
      skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') {
        bad = true;
        break;
      }
      ++i;
      skip_ws(line, i);
      std::string value;
      if (i < line.size() && line[i] == '"') {
        if (!parse_string(line, i, value)) {
          bad = true;
          break;
        }
      } else {
        while (i < line.size() && line[i] != ',' && line[i] != '}') {
          value += line[i];
          ++i;
        }
        while (!value.empty() &&
               (value.back() == ' ' || value.back() == '\t')) {
          value.pop_back();
        }
      }
      row.fields[key] = value;
      skip_ws(line, i);
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (!bad && !row.fields.empty()) rows.push_back(std::move(row));
  }
  return rows;
}

TraceDomain load_trace_dump(const std::vector<DumpRow>& rows) {
  // Size the offline rings to hold every retained event so the reload
  // itself never overwrites; completeness comes from the imported
  // per-ring drop counts instead.
  std::unordered_map<std::int64_t, std::uint64_t> retained;
  for (const DumpRow& r : rows) {
    const std::string* kind = r.get("row");
    if (kind != nullptr && *kind == "event") retained[r.i64("node")] += 1;
  }
  std::uint64_t max_retained = 2;
  for (const auto& [node, n] : retained) {
    max_retained = std::max(max_retained, n);
  }

  ObsConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = static_cast<std::size_t>(max_retained);
  for (const DumpRow& r : rows) {
    if (r.get("sample_rate") != nullptr) {
      cfg.sample_rate = std::strtod(r.get("sample_rate")->c_str(), nullptr);
      break;
    }
  }

  TraceDomain domain(cfg);
  for (const DumpRow& r : rows) {
    const std::string* kind = r.get("row");
    if (kind == nullptr) continue;
    const auto node = static_cast<net::Address>(r.i64("node"));
    if (*kind == "node") {
      domain.recorder_for(node).import_drop_count(r.u64("dropped"));
    } else if (*kind == "event") {
      const std::string* name = r.get("kind");
      domain.recorder_for(node).record(
          r.i64("t"),
          event_kind_from_name(name == nullptr ? "?" : name->c_str()),
          r.hex64("trace"), static_cast<net::Address>(r.i64("peer")),
          static_cast<std::int32_t>(r.i64("hop")), r.u64("aux"));
    }
  }
  return domain;
}

}  // namespace mspastry::obs
