#include "obs/path_assembler.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace mspastry::obs {

SimDuration CausalPath::total_transmission() const {
  SimDuration sum = 0;
  for (const HopRecord& h : hops) {
    if (h.transmission != kTimeNever) sum += h.transmission;
  }
  return sum;
}

SimDuration CausalPath::total_rto_wait() const {
  SimDuration sum = 0;
  for (const HopRecord& h : hops) sum += h.rto_wait;
  return sum;
}

SimDuration CausalPath::total_reroute_penalty() const {
  SimDuration sum = 0;
  for (const HopRecord& h : hops) sum += h.reroute_penalty;
  return sum;
}

namespace {

struct NodeEvent {
  net::Address node = net::kNullAddress;
  TraceEvent e;
};

/// Per-recorder retention summary, for completeness verdicts: a ring that
/// overwrote events whose window overlaps the path cannot vouch for it.
struct Retention {
  bool overwrote = false;
  SimTime earliest_retained = kTimeNever;
};

CausalPath stitch(std::uint64_t trace_id, std::vector<NodeEvent>& events,
                  const std::unordered_map<net::Address, Retention>& kept) {
  // Per-node ring order is already chronological; a stable sort by time
  // keeps it while interleaving nodes.
  std::stable_sort(events.begin(), events.end(),
                   [](const NodeEvent& a, const NodeEvent& b) {
                     return a.e.t < b.e.t;
                   });

  CausalPath p;
  p.trace_id = trace_id;
  std::map<int, HopRecord> hops;  // ordered by hop index

  auto rec = [&hops](int hop) -> HopRecord& {
    HopRecord& h = hops[hop];
    h.hop = hop;
    return h;
  };

  for (const NodeEvent& ne : events) {
    const TraceEvent& e = ne.e;
    switch (e.kind) {
      case EventKind::kLookupIssued:
        if (p.issued_at == kTimeNever) {
          p.origin = ne.node;
          p.issued_at = e.t;
        }
        if (p.lookup_id == 0) p.lookup_id = e.aux;
        break;
      case EventKind::kJoinRequestSent:
        if (p.issued_at == kTimeNever) {
          p.origin = ne.node;
          p.issued_at = e.t;
        }
        p.is_join = true;
        break;
      case EventKind::kForward: {
        HopRecord& h = rec(e.hop);
        if (h.attempts == 0) h.first_sent = e.t;
        h.from = ne.node;
        h.to = e.peer;
        h.last_sent = e.t;
        h.attempts += 1;
        break;
      }
      case EventKind::kRetransmit: {
        HopRecord& h = rec(e.hop);
        if (h.first_sent == kTimeNever) h.first_sent = e.t;
        h.to = e.peer;
        h.last_sent = e.t;
        h.attempts += 1;
        break;
      }
      case EventKind::kRecv: {
        HopRecord& h = rec(e.hop);
        if (h.received == kTimeNever) {
          h.received = e.t;
          h.to = ne.node;  // ground truth: who actually got it
          if (h.from == net::kNullAddress) h.from = e.peer;
        } else {
          h.duplicate_recvs += 1;
        }
        break;
      }
      case EventKind::kAckRecv: {
        HopRecord& h = rec(e.hop);
        if (h.acked == kTimeNever) h.acked = e.t;
        break;
      }
      case EventKind::kAckTimeout: {
        HopRecord& h = rec(e.hop);
        h.timeouts += 1;
        if (h.last_sent != kTimeNever && e.t > h.last_sent) {
          h.rto_wait += e.t - h.last_sent;
        }
        break;
      }
      case EventKind::kReroute: {
        HopRecord& h = rec(e.hop);
        h.rerouted = true;
        if (h.first_sent != kTimeNever && e.t > h.first_sent) {
          h.reroute_penalty = e.t - h.first_sent;
        }
        break;
      }
      case EventKind::kNetDrop:
        rec(e.hop).net_dropped = true;
        break;
      case EventKind::kAdversaryDrop:
        rec(e.hop).adversary_dropped = true;
        break;
      case EventKind::kBuffered:
        rec(e.hop).buffered = true;
        break;
      case EventKind::kDeliver:
        if (!p.delivered) {
          p.delivered = true;
          p.delivered_at = e.t;
          p.delivered_by = ne.node;
          if (!p.is_join && p.lookup_id == 0) p.lookup_id = e.aux;
        }
        break;
      case EventKind::kAppConsumed:
        p.consumed = true;
        break;
      case EventKind::kDrop:
        p.dropped = true;
        break;
      default:
        break;  // node-scoped kinds never carry a trace id
    }
  }

  p.hops.reserve(hops.size());
  std::unordered_set<net::Address> touched;
  if (p.origin != net::kNullAddress) touched.insert(p.origin);
  if (p.delivered_by != net::kNullAddress) touched.insert(p.delivered_by);
  for (auto& [idx, h] : hops) {
    if (h.received != kTimeNever && h.last_sent != kTimeNever) {
      const SimTime base =
          h.last_sent <= h.received ? h.last_sent : h.first_sent;
      h.transmission = h.received >= base ? h.received - base : 0;
    }
    p.timeouts += h.timeouts;
    if (h.attempts > 1) p.retransmits += h.attempts - 1;
    if (h.rerouted) p.reroutes += 1;
    p.duplicate_recvs += h.duplicate_recvs;
    if (h.buffered) p.buffered_hops += 1;
    if (h.net_dropped && !p.delivered) p.net_lost = true;
    if (h.adversary_dropped && !p.delivered) p.adversary_devoured = true;
    if (h.from != net::kNullAddress) touched.insert(h.from);
    if (h.to != net::kNullAddress) touched.insert(h.to);
    p.hops.push_back(std::move(h));
  }

  // Completeness: every touched ring must still retain the path's window.
  for (const net::Address a : touched) {
    const auto it = kept.find(a);
    if (it == kept.end()) continue;
    if (!it->second.overwrote) continue;
    if (p.issued_at == kTimeNever ||
        it->second.earliest_retained > p.issued_at) {
      p.complete = false;
      break;
    }
  }
  return p;
}

std::unordered_map<std::uint64_t, std::vector<NodeEvent>> collect(
    const TraceDomain& domain, std::uint64_t only_trace,
    std::unordered_map<net::Address, Retention>& kept) {
  std::unordered_map<std::uint64_t, std::vector<NodeEvent>> by_trace;
  domain.for_each_recorder([&](const FlightRecorder& r) {
    Retention ret;
    ret.overwrote = r.dropped() > 0;
    bool first = true;
    r.for_each([&](const TraceEvent& e) {
      if (first) {
        ret.earliest_retained = e.t;
        first = false;
      }
      if (e.trace_id == 0) return;
      if (only_trace != 0 && e.trace_id != only_trace) return;
      by_trace[e.trace_id].push_back(NodeEvent{r.self(), e});
    });
    kept.emplace(r.self(), ret);
  });
  return by_trace;
}

}  // namespace

std::vector<CausalPath> assemble_paths(const TraceDomain& domain) {
  std::unordered_map<net::Address, Retention> kept;
  auto by_trace = collect(domain, 0, kept);
  std::vector<CausalPath> out;
  out.reserve(by_trace.size());
  for (auto& [id, events] : by_trace) {
    out.push_back(stitch(id, events, kept));
  }
  // Deterministic order: by origination time, then trace id.
  std::sort(out.begin(), out.end(),
            [](const CausalPath& a, const CausalPath& b) {
              if (a.issued_at != b.issued_at) return a.issued_at < b.issued_at;
              return a.trace_id < b.trace_id;
            });
  return out;
}

std::optional<CausalPath> assemble_path(const TraceDomain& domain,
                                        std::uint64_t trace_id) {
  if (trace_id == 0) return std::nullopt;
  std::unordered_map<net::Address, Retention> kept;
  auto by_trace = collect(domain, trace_id, kept);
  const auto it = by_trace.find(trace_id);
  if (it == by_trace.end()) return std::nullopt;
  return stitch(trace_id, it->second, kept);
}

std::string describe(const CausalPath& p) {
  char buf[256];
  std::string out;
  const char* outcome = p.delivered            ? "delivered"
                        : p.consumed           ? "app-consumed"
                        : p.dropped            ? "dropped"
                        : p.adversary_devoured ? "devoured-by-adversary"
                        : p.net_lost           ? "lost-in-network"
                                               : "unresolved";
  std::snprintf(buf, sizeof buf,
                "trace %016llx %s from node %d: %s, %zu hops, %d reroutes, "
                "%d timeouts, %d retransmits%s\n",
                static_cast<unsigned long long>(p.trace_id),
                p.is_join ? "join" : "lookup", p.origin, outcome,
                p.hops.size(), p.reroutes, p.timeouts, p.retransmits,
                p.complete ? "" : " [INCOMPLETE: ring overwrote events]");
  out += buf;
  if (p.delivered) {
    std::snprintf(buf, sizeof buf,
                  "  latency %.3f ms = transmission %.3f ms + rto-wait %.3f "
                  "ms + reroute-penalty %.3f ms (+ queueing)\n",
                  to_seconds(p.total_latency()) * 1e3,
                  to_seconds(p.total_transmission()) * 1e3,
                  to_seconds(p.total_rto_wait()) * 1e3,
                  to_seconds(p.total_reroute_penalty()) * 1e3);
    out += buf;
  }
  for (const HopRecord& h : p.hops) {
    std::snprintf(buf, sizeof buf,
                  "  hop %2d: %4d -> %-4d t=%.6fs attempts=%d", h.hop, h.from,
                  h.to, to_seconds(h.first_sent), h.attempts);
    out += buf;
    if (h.received != kTimeNever) {
      std::snprintf(buf, sizeof buf, " recv+%.3fms",
                    to_seconds(h.transmission) * 1e3);
      out += buf;
    }
    if (h.acked != kTimeNever) {
      std::snprintf(buf, sizeof buf, " ack+%.3fms",
                    to_seconds(h.acked - h.first_sent) * 1e3);
      out += buf;
    }
    if (h.timeouts > 0) {
      std::snprintf(buf, sizeof buf, " TIMEOUTx%d(rto-wait %.0fms)",
                    h.timeouts, to_seconds(h.rto_wait) * 1e3);
      out += buf;
    }
    if (h.rerouted) out += " REROUTED";
    if (h.net_dropped) out += " NET-DROP";
    if (h.adversary_dropped) out += " ADVERSARY-DROP";
    if (h.buffered) out += " BUFFERED";
    if (h.duplicate_recvs > 0) {
      std::snprintf(buf, sizeof buf, " dup-recv x%d", h.duplicate_recvs);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace mspastry::obs
