#include "obs/flight_recorder.hpp"

#include <cassert>
#include <cstring>

namespace mspastry::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kNone: return "none";
    case EventKind::kLookupIssued: return "lookup-issued";
    case EventKind::kRecv: return "recv";
    case EventKind::kForward: return "forward";
    case EventKind::kBuffered: return "buffered";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kAppConsumed: return "app-consumed";
    case EventKind::kDrop: return "drop";
    case EventKind::kAckRecv: return "ack-recv";
    case EventKind::kAckTimeout: return "ack-timeout";
    case EventKind::kRetransmit: return "retransmit";
    case EventKind::kReroute: return "reroute";
    case EventKind::kSuspect: return "suspect";
    case EventKind::kAbsolve: return "absolve";
    case EventKind::kCondemn: return "condemn";
    case EventKind::kLsProbeSent: return "ls-probe";
    case EventKind::kRtProbeSent: return "rt-probe";
    case EventKind::kHeartbeatTick: return "heartbeat-tick";
    case EventKind::kJoinStart: return "join-start";
    case EventKind::kJoinRestart: return "join-restart";
    case EventKind::kJoinRequestSent: return "join-request";
    case EventKind::kJoinReplyRecv: return "join-reply";
    case EventKind::kJoinProbe: return "join-probe";
    case EventKind::kActivated: return "activated";
    case EventKind::kNetDrop: return "net-drop";
    case EventKind::kAdversaryDrop: return "adversary-drop";
  }
  return "?";
}

EventKind event_kind_from_name(const char* name) {
  for (int i = 0; i < kEventKindCount; ++i) {
    const EventKind k = static_cast<EventKind>(i);
    if (std::strcmp(event_kind_name(k), name) == 0) return k;
  }
  return EventKind::kNone;
}

namespace {

/// splitmix64: cheap, well-mixed, and stable across platforms — trace ids
/// must be re-derivable by anyone who knows the lookup id.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x = x ^ (x >> 31);
  return x;
}

constexpr std::uint64_t kLookupSalt = 0x70617468746163ull;  // "pathtrac"
constexpr std::uint64_t kJoinSalt = 0x6a6f696e70617468ull;  // "joinpath"

std::uint64_t threshold_for(double rate) {
  if (rate >= 1.0) return ~0ull;
  if (rate <= 0.0) return 0;
  return static_cast<std::uint64_t>(
      rate * 18446744073709551615.0);  // rate * (2^64 - 1)
}

}  // namespace

std::uint64_t lookup_trace_id(std::uint64_t lookup_id) {
  const std::uint64_t id = mix64(lookup_id ^ kLookupSalt);
  return id == 0 ? 1 : id;  // 0 is reserved for "untraced"
}

std::uint64_t join_trace_id(net::Address joiner, std::uint64_t epoch) {
  const std::uint64_t id =
      mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(joiner))
             << 32 | (epoch & 0xffffffffull)) ^
            kJoinSalt);
  return id == 0 ? 1 : id;
}

bool trace_sampled(std::uint64_t trace_id, double rate) {
  return trace_id != 0 && trace_id <= threshold_for(rate);
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(net::Address self, const ObsConfig& cfg)
    : self_(self),
      threshold_(threshold_for(cfg.sample_rate)),
      mask_(round_up_pow2(cfg.ring_capacity < 2 ? 2 : cfg.ring_capacity) - 1),
      ring_(mask_ + 1) {}

std::vector<TraceEvent> FlightRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(next_ < ring_.size() ? next_ : ring_.size());
  for_each([&out](const TraceEvent& e) { out.push_back(e); });
  return out;
}

FlightRecorder& TraceDomain::recorder_for(net::Address a) {
  auto it = recorders_.find(a);
  if (it == recorders_.end()) {
    it = recorders_
             .emplace(a, std::make_unique<FlightRecorder>(a, cfg_))
             .first;
  }
  return *it->second;
}

const FlightRecorder* TraceDomain::find(net::Address a) const {
  const auto it = recorders_.find(a);
  return it == recorders_.end() ? nullptr : it->second.get();
}

void TraceDomain::absorb(TraceDomain&& other) {
  for (auto& [a, r] : other.recorders_) {
    [[maybe_unused]] const bool inserted =
        recorders_.emplace(a, std::move(r)).second;
    assert(inserted && "recorder address collision across shards");
  }
  other.recorders_.clear();
}

}  // namespace mspastry::obs
