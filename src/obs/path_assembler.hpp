#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace mspastry::obs {

/// One overlay-hop transmission of a traced message, stitched from the
/// sender's and receiver's rings. A reroute abandons a hop and the
/// replacement transmission appears as the next hop index (the protocol's
/// hop counter counts transmissions, matching the paper's accounting).
struct HopRecord {
  int hop = 0;                                ///< transmission index (1-based)
  net::Address from = net::kNullAddress;
  net::Address to = net::kNullAddress;        ///< last destination tried
  SimTime first_sent = kTimeNever;
  SimTime last_sent = kTimeNever;             ///< latest (re)transmission
  SimTime received = kTimeNever;              ///< arrival at `to`, if seen
  SimTime acked = kTimeNever;                 ///< per-hop ack back at `from`
  int attempts = 0;                           ///< transmissions incl. retries
  int timeouts = 0;                           ///< RTO expiries at `from`
  int duplicate_recvs = 0;                    ///< dup-injected extra arrivals
  bool rerouted = false;                      ///< abandoned via reroute
  bool net_dropped = false;                   ///< wire drop observed
  bool adversary_dropped = false;             ///< devoured by the sender
  bool buffered = false;                      ///< held at an inactive receiver

  /// Per-hop latency attribution (the tentpole's breakdown):
  SimDuration transmission = kTimeNever;      ///< received - last_sent
  SimDuration rto_wait = 0;                   ///< time burnt waiting on RTOs
  SimDuration reroute_penalty = 0;            ///< first_sent -> reroute verdict
};

/// An end-to-end causal path for one traced lookup or join request.
struct CausalPath {
  std::uint64_t trace_id = 0;
  /// The application-level lookup id this path carried (0 for joins or
  /// when the issue/deliver events fell off the ring). Lets checkers ask
  /// the oracle whether the delivering node was the true root.
  std::uint64_t lookup_id = 0;
  bool is_join = false;
  net::Address origin = net::kNullAddress;
  net::Address delivered_by = net::kNullAddress;
  SimTime issued_at = kTimeNever;
  SimTime delivered_at = kTimeNever;

  bool delivered = false;    ///< reached the root (kDeliver)
  bool consumed = false;     ///< an application forward() upcall ate it
  bool dropped = false;      ///< a node gave up (max hops / retry budget)
  bool net_lost = false;     ///< the wire dropped the last transmission
  bool adversary_devoured = false;  ///< an adversarial hop devoured it

  /// False when a contributing ring overwrote events from this path's
  /// time window: hops may be missing and attributions undercounted.
  bool complete = true;

  int reroutes = 0;
  int timeouts = 0;
  int retransmits = 0;
  int duplicate_recvs = 0;
  int buffered_hops = 0;

  std::vector<HopRecord> hops;

  SimDuration total_latency() const {
    return (delivered && issued_at != kTimeNever) ? delivered_at - issued_at
                                                  : kTimeNever;
  }
  SimDuration total_transmission() const;
  SimDuration total_rto_wait() const;
  SimDuration total_reroute_penalty() const;
};

/// Stitch every traced path out of the domain's per-node rings.
std::vector<CausalPath> assemble_paths(const TraceDomain& domain);

/// Stitch one path by trace id (empty if no ring holds events for it).
std::optional<CausalPath> assemble_path(const TraceDomain& domain,
                                        std::uint64_t trace_id);

/// Multi-line human-readable rendering with the per-hop breakdown; used
/// by chaos SLO dumps and the trace explorer.
std::string describe(const CausalPath& p);

}  // namespace mspastry::obs
