#include "obs/expectations.hpp"

#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace mspastry::obs {

namespace {

void add_violation(std::vector<Violation>& out, const char* rule,
                   std::uint64_t trace_id, net::Address node, SimTime at,
                   std::string detail) {
  Violation v;
  v.rule = rule;
  v.trace_id = trace_id;
  v.node = node;
  v.at = at;
  v.detail = std::move(detail);
  out.push_back(std::move(v));
}

// R1 — hop count ≤ ceil(log_2^b N) + c. Reroutes and inactive-node
// buffering legitimately consume extra transmissions (the hop counter
// counts transmissions, as the paper does), so they extend the bound;
// the slack c covers leaf-set final hops and imperfect tables.
void check_hop_bound(const TraceDomain&, const std::vector<CausalPath>& paths,
                     const ExpectationConfig& cfg,
                     std::vector<Violation>& out) {
  if (cfg.overlay_size < 2) return;
  const int expected = static_cast<int>(std::ceil(
      std::log2(static_cast<double>(cfg.overlay_size)) / cfg.b));
  for (const CausalPath& p : paths) {
    if (!p.delivered || !p.complete) continue;
    const int bound =
        expected + cfg.hop_slack + p.reroutes + p.buffered_hops;
    const int hops = static_cast<int>(p.hops.size());
    if (hops > bound) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%d hops exceeds ceil(log_2^b N)=%d + slack %d + "
                    "%d reroutes + %d buffered",
                    hops, expected, cfg.hop_slack, p.reroutes,
                    p.buffered_hops);
      add_violation(out, "hop-count-bound", p.trace_id, p.origin, p.issued_at,
                    buf);
    }
  }
}

// R2 — never forward to a locally-condemned node: between a kCondemn for
// a peer and its kAbsolve (or the failed-entry TTL), no kForward may
// target it. The ring retains a contiguous suffix of history, so a
// retained forward whose condemn was overwritten is simply not checked
// (false negatives only, never false positives).
void check_no_forward_to_condemned(const TraceDomain& domain,
                                   const std::vector<CausalPath>&,
                                   const ExpectationConfig& cfg,
                                   std::vector<Violation>& out) {
  domain.for_each_recorder([&](const FlightRecorder& r) {
    std::unordered_map<net::Address, SimTime> condemned;
    r.for_each([&](const TraceEvent& e) {
      switch (e.kind) {
        case EventKind::kCondemn:
          condemned[e.peer] = e.t;
          break;
        case EventKind::kAbsolve:
          condemned.erase(e.peer);
          break;
        case EventKind::kForward: {
          const auto it = condemned.find(e.peer);
          if (it == condemned.end()) break;
          if (e.t - it->second > cfg.failed_entry_ttl) {
            condemned.erase(it);  // verdict expired, mirror lazy expiry
            break;
          }
          char buf[120];
          std::snprintf(buf, sizeof buf,
                        "forwarded to node %d condemned %.1f s earlier",
                        e.peer, to_seconds(e.t - it->second));
          add_violation(out, "no-forward-to-condemned", e.trace_id, r.self(),
                        e.t, buf);
          break;
        }
        default:
          break;
      }
    });
  });
}

// R3 — every per-hop timeout is followed by a recorded reaction: the
// Section-3.2 ladder reacts synchronously (same callback, same sim time)
// with a retransmission, a reroute, a give-up drop, or — for a joiner's
// own request — a join restart. A timeout with no reaction means a
// message silently vanished.
void check_timeout_reaction(const TraceDomain& domain,
                            const std::vector<CausalPath>&,
                            const ExpectationConfig&,
                            std::vector<Violation>& out) {
  domain.for_each_recorder([&](const FlightRecorder& r) {
    const std::vector<TraceEvent> events = r.events();
    std::unordered_set<std::size_t> used;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const TraceEvent& e = events[i];
      if (e.kind != EventKind::kAckTimeout || e.trace_id == 0) continue;
      bool reacted = false;
      for (std::size_t j = i + 1; j < events.size() && events[j].t == e.t;
           ++j) {
        const EventKind k = events[j].kind;
        if ((k == EventKind::kRetransmit || k == EventKind::kReroute ||
             k == EventKind::kDrop || k == EventKind::kJoinRestart) &&
            events[j].trace_id == e.trace_id && used.insert(j).second) {
          reacted = true;
          break;
        }
      }
      if (!reacted) {
        char buf[120];
        std::snprintf(buf, sizeof buf,
                      "RTO expired for hop %d toward node %d with no "
                      "retransmit/reroute/drop recorded",
                      e.hop, e.peer);
        add_violation(out, "timeout-followed-by-reaction", e.trace_id,
                      r.self(), e.t, buf);
      }
    }
  });
}

// R4 — join ordering: a node that accepted a JOIN-REPLY must probe its
// leaf-set candidates before activating (Figure 2's mutual-awareness
// precondition). Bootstrap nodes have no reply and are skipped.
void check_join_probe_order(const TraceDomain& domain,
                            const std::vector<CausalPath>&,
                            const ExpectationConfig&,
                            std::vector<Violation>& out) {
  domain.for_each_recorder([&](const FlightRecorder& r) {
    SimTime reply_at = kTimeNever;
    SimTime activated_at = kTimeNever;
    bool probed_between = false;
    r.for_each([&](const TraceEvent& e) {
      if (e.kind == EventKind::kJoinReplyRecv && reply_at == kTimeNever) {
        reply_at = e.t;
      } else if (e.kind == EventKind::kJoinProbe &&
                 reply_at != kTimeNever && activated_at == kTimeNever) {
        probed_between = true;
      } else if (e.kind == EventKind::kActivated &&
                 activated_at == kTimeNever) {
        activated_at = e.t;
      }
    });
    if (reply_at != kTimeNever && activated_at != kTimeNever &&
        activated_at >= reply_at && !probed_between) {
      add_violation(out, "join-probes-before-activation", 0, r.self(),
                    activated_at,
                    "activated after a JOIN-REPLY without probing any "
                    "leaf-set candidate");
    }
  });
}

// R5 — heartbeat periodicity: the per-node heartbeat timer must tick at
// least every Tls + To. Ring overwrite cannot forge a gap: retained
// events are a contiguous suffix, so two adjacent retained ticks were
// adjacent in reality.
void check_heartbeat_period(const TraceDomain& domain,
                            const std::vector<CausalPath>&,
                            const ExpectationConfig& cfg,
                            std::vector<Violation>& out) {
  domain.for_each_recorder([&](const FlightRecorder& r) {
    SimTime last = kTimeNever;
    r.for_each([&](const TraceEvent& e) {
      if (e.kind != EventKind::kHeartbeatTick) return;
      if (last != kTimeNever && e.t - last > cfg.t_ls + cfg.t_o) {
        char buf[120];
        std::snprintf(buf, sizeof buf,
                      "heartbeat gap %.1f s exceeds Tls + To = %.1f s",
                      to_seconds(e.t - last),
                      to_seconds(cfg.t_ls + cfg.t_o));
        add_violation(out, "heartbeat-periodicity", 0, r.self(), e.t, buf);
      }
      last = e.t;
    });
  });
}

// R6 — a delivered lookup must land at the oracle's root for its key.
// The harness records a ground-truth verdict per lookup id at delivery
// time; the rule attaches the offending causal path to the violation so
// a misdelivery (e.g. an adversarial root claim) is directly debuggable.
void check_delivered_at_oracle_root(const TraceDomain&,
                                    const std::vector<CausalPath>& paths,
                                    const ExpectationConfig& cfg,
                                    std::vector<Violation>& out) {
  if (!cfg.lookup_verdict) return;
  for (const CausalPath& p : paths) {
    if (!p.delivered || p.is_join || p.lookup_id == 0) continue;
    const std::optional<bool> correct = cfg.lookup_verdict(p.lookup_id);
    if (!correct.has_value() || *correct) continue;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "lookup %llu delivered by node %d, which the oracle says "
                  "is not the root; offending path:\n",
                  static_cast<unsigned long long>(p.lookup_id),
                  p.delivered_by);
    add_violation(out, "delivered-at-oracle-root", p.trace_id,
                  p.delivered_by, p.delivered_at, buf + describe(p));
  }
}

// R7 — analytic mean hop count: the measured mean over delivered complete
// non-join lookups must sit within a configured tolerance of the Kong et
// al. closed-form expectation ceil(log_2^b N) ("A General Framework for
// Scalability and Performance Analysis of DHT Routing Systems"). R1 bounds
// each path from above with slack; this rule pins the *aggregate* from
// both sides, so it also fires when routing systematically takes too FEW
// hops (e.g. a broken hop counter) or drifts high without breaching the
// per-path bound. Opt-in via analytic_hops_tolerance > 0: the closed form
// assumes full routing tables over a stable population, which only
// experiment-scale runs approximate.
void check_analytic_mean_hops(const TraceDomain&,
                              const std::vector<CausalPath>& paths,
                              const ExpectationConfig& cfg,
                              std::vector<Violation>& out) {
  if (cfg.analytic_hops_tolerance <= 0.0 || cfg.overlay_size < 2) return;
  double total = 0.0;
  std::size_t count = 0;
  for (const CausalPath& p : paths) {
    if (!p.delivered || !p.complete || p.is_join) continue;
    total += static_cast<double>(p.hops.size());
    ++count;
  }
  if (count < cfg.analytic_min_paths) return;
  const double expected = std::ceil(
      std::log2(static_cast<double>(cfg.overlay_size)) / cfg.b);
  const double mean = total / static_cast<double>(count);
  if (std::abs(mean - expected) > cfg.analytic_hops_tolerance * expected) {
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "mean lookup hops %.3f over %zu paths deviates from "
                  "analytic ceil(log_2^b N)=%.0f (N=%zu, b=%d) by more "
                  "than %.0f%%",
                  mean, count, expected, cfg.overlay_size, cfg.b,
                  cfg.analytic_hops_tolerance * 100.0);
    add_violation(out, "analytic-mean-hops", 0, net::kNullAddress, kTimeNever,
                  buf);
  }
}

}  // namespace

const std::vector<Expectation>& expectations() {
  static const std::vector<Expectation> kRules = {
      {"hop-count-bound",
       "delivered lookups take at most ceil(log_2^b N) + c transmissions, "
       "rescaled for reroutes and inactive-node buffering",
       check_hop_bound},
      {"no-forward-to-condemned",
       "no message is forwarded to a peer in the local failed set",
       check_no_forward_to_condemned},
      {"timeout-followed-by-reaction",
       "every per-hop ack timeout is followed by a retransmit, reroute, "
       "drop, or join restart",
       check_timeout_reaction},
      {"join-probes-before-activation",
       "a joiner probes leaf-set candidates between JOIN-REPLY and "
       "activation",
       check_join_probe_order},
      {"heartbeat-periodicity",
       "heartbeat timer ticks are never more than Tls + To apart",
       check_heartbeat_period},
      {"delivered-at-oracle-root",
       "a delivered lookup's responsible node matches the oracle's root "
       "for the key (misdelivery attaches the offending causal path)",
       check_delivered_at_oracle_root},
      {"analytic-mean-hops",
       "mean delivered-lookup hop count matches the Kong et al. analytic "
       "expectation ceil(log_2^b N) within a configured tolerance",
       check_analytic_mean_hops},
  };
  return kRules;
}

ExpectationReport check_expectations(const TraceDomain& domain,
                                     const std::vector<CausalPath>& paths,
                                     const ExpectationConfig& cfg) {
  ExpectationReport report;
  report.paths_checked = paths.size();
  report.nodes_checked = domain.recorder_count();
  for (const Expectation& rule : expectations()) {
    report.rules_run.emplace_back(rule.name);
    rule.check(domain, paths, cfg, report.violations);
  }
  return report;
}

std::string ExpectationReport::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "expectations: %zu rules over %zu paths, %zu nodes: ",
                rules_run.size(), paths_checked, nodes_checked);
  std::string out = buf;
  if (ok()) {
    out += "all satisfied\n";
    return out;
  }
  std::snprintf(buf, sizeof buf, "%zu VIOLATIONS\n", violations.size());
  out += buf;
  for (const Violation& v : violations) {
    std::snprintf(buf, sizeof buf, "  [%s] node %d t=%.3fs trace %016llx: ",
                  v.rule.c_str(), v.node, to_seconds(v.at),
                  static_cast<unsigned long long>(v.trace_id));
    out += buf;
    out += v.detail;
    out += '\n';
  }
  return out;
}

}  // namespace mspastry::obs
