#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/events.hpp"

namespace mspastry::obs {

/// Observability configuration, a knob on the driver. Disabled is the
/// default and costs one null-pointer test per would-be event: nodes hold
/// a FlightRecorder* that is simply nullptr.
struct ObsConfig {
  bool enabled = false;

  /// Fraction of lookups/joins that get a trace id (deterministic
  /// hash-threshold sampling, so the same run traces the same set of
  /// lookups regardless of where the decision is evaluated).
  double sample_rate = 1.0;

  /// Events retained per node. The ring overwrites oldest-first, so the
  /// retained window is always a contiguous suffix of what happened —
  /// the path assembler and checker rely on that.
  std::size_t ring_capacity = 4096;
};

/// Derive the 64-bit trace id carried by a sampled lookup. Deterministic
/// (splitmix64 of the lookup id under a fixed salt): the chaos harness
/// re-derives the id of an offending probe lookup after the fact.
std::uint64_t lookup_trace_id(std::uint64_t lookup_id);

/// Trace id for a join attempt, from the joiner's address and epoch.
std::uint64_t join_trace_id(net::Address joiner, std::uint64_t epoch);

/// True if `trace_id` falls under the sampling threshold for `rate`.
bool trace_sampled(std::uint64_t trace_id, double rate);

/// Fixed-capacity per-node binary event ring. All memory is allocated at
/// construction (node creation, not steady state); record() is a bump of
/// a monotone counter plus a handful of stores into the ring slot.
class FlightRecorder {
 public:
  FlightRecorder(net::Address self, const ObsConfig& cfg);

  net::Address self() const { return self_; }

  void record(SimTime t, EventKind kind, std::uint64_t trace_id,
              net::Address peer, std::int32_t hop = 0,
              std::uint64_t aux = 0) {
    TraceEvent& e = ring_[next_ & mask_];
    e.t = t;
    e.trace_id = trace_id;
    e.aux = aux;
    e.peer = peer;
    e.hop = hop;
    e.kind = kind;
    ++next_;
  }

  /// Trace id for a lookup originated at this node, or 0 if the sampler
  /// passes on it (or tracing of paths is off).
  std::uint64_t sample_lookup(std::uint64_t lookup_id) const {
    const std::uint64_t id = lookup_trace_id(lookup_id);
    return id <= threshold_ ? id : 0;
  }

  std::uint64_t sample_join(std::uint64_t epoch) const {
    const std::uint64_t id = join_trace_id(self_, epoch);
    return id <= threshold_ ? id : 0;
  }

  /// Number of events ever recorded.
  std::uint64_t recorded() const { return predropped_ + next_; }

  /// Events lost to ring overwrite (always the oldest ones).
  std::uint64_t dropped() const { return predropped_ + overwritten(); }

  std::size_t capacity() const { return ring_.size(); }

  /// For offline rebuilds (trace_explorer): account for events the live
  /// ring had already overwritten before the dump was written, so the
  /// assembler's completeness verdicts survive a dump/reload round trip.
  void import_drop_count(std::uint64_t n) { predropped_ += n; }

  /// Retained events, oldest first (a contiguous suffix of history).
  std::vector<TraceEvent> events() const;

  /// Visit retained events oldest first without materialising a copy.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint64_t i = overwritten(); i < next_; ++i) {
      fn(ring_[i & mask_]);
    }
  }

 private:
  std::uint64_t overwritten() const {
    return next_ > ring_.size() ? next_ - ring_.size() : 0;
  }

  net::Address self_;
  std::uint64_t threshold_;
  std::uint64_t next_ = 0;
  std::uint64_t predropped_ = 0;
  std::uint64_t mask_;
  std::vector<TraceEvent> ring_;
};

/// Registry of per-node flight recorders, owned by the overlay driver.
/// Keyed by network address — addresses identify *sessions* and are never
/// reused, so rings survive their node's death and the assembler can
/// still stitch paths through crashed hops.
class TraceDomain {
 public:
  explicit TraceDomain(ObsConfig cfg) : cfg_(cfg) {}

  const ObsConfig& config() const { return cfg_; }

  /// The recorder for `a`, created on first use.
  FlightRecorder& recorder_for(net::Address a);

  const FlightRecorder* find(net::Address a) const;

  /// Trace id a probe/workload lookup with `lookup_id` carries in this
  /// domain (0 if unsampled) — how harnesses map lookup ids to paths.
  std::uint64_t trace_id_for_lookup(std::uint64_t lookup_id) const {
    const std::uint64_t id = lookup_trace_id(lookup_id);
    return trace_sampled(id, cfg_.sample_rate) ? id : 0;
  }

  template <typename Fn>
  void for_each_recorder(Fn&& fn) const {
    for (const auto& [a, r] : recorders_) fn(*r);
  }

  std::size_t recorder_count() const { return recorders_.size(); }

  /// Move every recorder of `other` into this domain (other is left
  /// empty). The sharded driver keeps one domain per shard during the run
  /// and absorbs them into a single domain for assembly; addresses are
  /// session-unique across shards, so collisions cannot happen (asserted).
  void absorb(TraceDomain&& other);

 private:
  ObsConfig cfg_;
  std::unordered_map<net::Address, std::unique_ptr<FlightRecorder>>
      recorders_;
};

}  // namespace mspastry::obs
