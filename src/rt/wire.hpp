#pragma once

// Versioned binary wire codec for every pastry::Message subtype.
//
// The simulator passes messages as in-memory pointers; the real-time
// backend has to put them on UDP. One datagram carries one frame:
//
//   u32  payload length (bytes after this field)
//   u16  magic 0x4D50 ("MP")
//   u8   version (kWireVersion)
//   u8   message type (pastry::MsgType)
//   --- common header ---
//   endpoint  sender   (u32 ip, u16 port)
//   u128      sender id
//   f64       trt hint (bit pattern)
//   --- routed header (kLookup / kJoinRequest only) ---
//   u128 key, i32 hops, u64 hop_seq, u8 flags (bit0 wants_ack), u64 trace
//   --- per-type payload ---
//
// All integers little-endian. NodeDescriptors travel as (u128 id,
// endpoint); the receiver interns each endpoint into its AddressBook, so
// descriptors decode with locally valid addresses and the protocol core
// never sees an endpoint. Decoding is defensive: a frame that is
// truncated, oversized, version-skewed, or internally inconsistent
// yields an error status and no message — never UB (the corrupt-frame
// corpus in tests/test_wire.cpp runs under ASan/UBSan in CI).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pastry/message.hpp"
#include "pastry/message_pool.hpp"
#include "rt/address_book.hpp"

namespace mspastry::rt {

inline constexpr std::uint16_t kWireMagic = 0x4D50;
inline constexpr std::uint8_t kWireVersion = 1;

/// Hard ceiling on one frame; fits a single UDP datagram on loopback.
inline constexpr std::size_t kMaxFrameBytes = 65507;

/// Ceiling on any one on-wire vector (a full leaf set is 32, a routing
/// row 15; the cap only exists so a corrupt length byte cannot demand a
/// gigabyte).
inline constexpr std::size_t kMaxVecLen = 4096;

/// The status vocabulary lives with the message taxonomy
/// (pastry/message.hpp) so clone_message's typed errors and the wire
/// codec report through one enum; the rt spellings below stay valid.
using WireStatus = pastry::WireStatus;
using pastry::wire_status_name;

/// Encode `m` as one frame appended to `out` (out is cleared first).
/// Descriptor addresses are resolved to endpoints through `book`; every
/// address a node can hold was interned when it was first heard, so
/// kUnknownAddress indicates a logic error, not a protocol condition.
WireStatus encode_message(const pastry::Message& m, const AddressBook& book,
                          std::vector<std::uint8_t>* out);

struct DecodeResult {
  WireStatus status = WireStatus::kOk;
  pastry::MessagePtr msg;     ///< null unless status == kOk
  net::Address from = net::kNullAddress;  ///< interned sender address
};

/// Decode one frame. Allocates the message from `pool` (single-threaded:
/// call on the owning worker) and interns every endpoint seen into
/// `book`. On any error the result carries no message and the pool is
/// left without a live allocation.
DecodeResult decode_message(const std::uint8_t* data, std::size_t len,
                            pastry::MessagePool& pool, AddressBook& book);

}  // namespace mspastry::rt
