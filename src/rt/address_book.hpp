#pragma once

// Endpoint <-> Address interning for the real-time backend.
//
// The protocol core addresses peers by net::Address; UDP needs host:port.
// The book records every endpoint heard on the wire under its
// deterministic address (net::address_of) so sends can be resolved back.
// It is shared by all workers and the io thread of one RtRuntime, hence
// the mutex — lookups are rare relative to packet work (one per descriptor
// decoded/encoded) and the map stays small (one entry per known session).

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "net/endpoint.hpp"

namespace mspastry::rt {

class AddressBook {
 public:
  /// Record `e` and return its address. If the deterministic fold maps
  /// two distinct endpoints to one address (possible for non-loopback
  /// ips only), the first mapping wins and the collision is counted —
  /// callers can alarm on collisions() != 0.
  net::Address intern(net::Endpoint e);

  /// The endpoint `a` was interned from, if any.
  std::optional<net::Endpoint> endpoint_of(net::Address a) const;

  std::uint64_t collisions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return collisions_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<net::Address, net::Endpoint> map_;
  std::uint64_t collisions_ = 0;
};

}  // namespace mspastry::rt
