#pragma once

// Wall-clock time source for the real-time backend, expressed in the
// protocol's SimTime (integral microseconds).
//
// CLOCK_MONOTONIC is system-wide on Linux: every process on a machine
// reads the same counter. The localnet launcher passes its own start
// reading to each daemon (--epoch-us), so all processes of a run stamp
// flight-recorder events against a common, small time base and their
// dumps merge into causally ordered traces without clock reconciliation.

#include <ctime>

#include "common/sim_time.hpp"

namespace mspastry::rt {

/// Raw CLOCK_MONOTONIC reading in microseconds.
inline SimTime monotonic_micros() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<SimTime>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

/// Monotonic clock rebased to an epoch (default: construction time).
class WallClock {
 public:
  WallClock() : epoch_(monotonic_micros()) {}
  explicit WallClock(SimTime epoch_us) : epoch_(epoch_us) {}

  SimTime now() const { return monotonic_micros() - epoch_; }
  SimTime epoch() const { return epoch_; }

 private:
  SimTime epoch_;
};

}  // namespace mspastry::rt
