#include "rt/wire.hpp"

#include <bit>
#include <cstring>

namespace mspastry::rt {

namespace {

using pastry::Message;
using pastry::MsgType;
using pastry::NodeDescriptor;

// --- Byte-order helpers ---------------------------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>* out) : out_(*out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void i64(std::int64_t v) { raw(&v, 8); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    u64(bits);
  }
  void u128(U128 v) {
    u64(v.lo);
    u64(v.hi);
  }

  std::size_t size() const { return out_.size(); }
  void patch_u32(std::size_t at, std::uint32_t v) {
    std::memcpy(out_.data() + at, &v, 4);
  }

 private:
  void raw(const void* p, std::size_t n) {
    // Little-endian hosts only (x86/arm64); static_assert guards ports.
    static_assert(std::endian::native == std::endian::little,
                  "wire codec assumes a little-endian host");
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }

  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}

  bool u8(std::uint8_t* v) { return raw(v, 1); }
  bool u16(std::uint16_t* v) { return raw(v, 2); }
  bool u32(std::uint32_t* v) { return raw(v, 4); }
  bool u64(std::uint64_t* v) { return raw(v, 8); }
  bool i32(std::int32_t* v) { return raw(v, 4); }
  bool i64(std::int64_t* v) { return raw(v, 8); }
  bool f64(double* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }
  bool u128(U128* v) { return u64(&v->lo) && u64(&v->hi); }

  std::size_t remaining() const { return len_ - pos_; }

 private:
  bool raw(void* p, std::size_t n) {
    if (len_ - pos_ < n) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

// --- Descriptors ----------------------------------------------------------

WireStatus put_descriptor(Writer& w, const NodeDescriptor& d,
                          const AddressBook& book) {
  if (!d.valid()) {
    w.u128(U128{});
    w.u32(0);
    w.u16(0);
    return WireStatus::kOk;
  }
  const auto ep = book.endpoint_of(d.addr);
  if (!ep) return WireStatus::kUnknownAddress;
  w.u128(d.id.value());
  w.u32(ep->ip);
  w.u16(ep->port);
  return WireStatus::kOk;
}

bool get_descriptor(Reader& r, AddressBook& book, NodeDescriptor* d) {
  U128 id;
  net::Endpoint ep;
  if (!r.u128(&id) || !r.u32(&ep.ip) || !r.u16(&ep.port)) return false;
  d->id = NodeId{id};
  d->addr = ep.valid() ? book.intern(ep) : net::kNullAddress;
  return true;
}

template <typename Vec>
WireStatus put_descriptor_vec(Writer& w, const Vec& v,
                              const AddressBook& book) {
  if (v.size() > kMaxVecLen) return WireStatus::kOversizeVec;
  w.u16(static_cast<std::uint16_t>(v.size()));
  for (const NodeDescriptor& d : v) {
    const WireStatus st = put_descriptor(w, d, book);
    if (st != WireStatus::kOk) return st;
  }
  return WireStatus::kOk;
}

template <typename Vec>
WireStatus get_descriptor_vec(Reader& r, AddressBook& book, Vec* v) {
  std::uint16_t n = 0;
  if (!r.u16(&n)) return WireStatus::kTruncated;
  if (n > kMaxVecLen) return WireStatus::kOversizeVec;
  for (std::uint16_t i = 0; i < n; ++i) {
    NodeDescriptor d;
    if (!get_descriptor(r, book, &d)) return WireStatus::kTruncated;
    v->push_back(d);
  }
  return WireStatus::kOk;
}

WireStatus put_join_rows(Writer& w, const pastry::JoinRows& rows,
                         const AddressBook& book) {
  if (rows.size() > kMaxVecLen) return WireStatus::kOversizeVec;
  w.u16(static_cast<std::uint16_t>(rows.size()));
  for (const auto& [row, entries] : rows) {
    w.i32(row);
    const WireStatus st = put_descriptor_vec(w, entries, book);
    if (st != WireStatus::kOk) return st;
  }
  return WireStatus::kOk;
}

WireStatus get_join_rows(Reader& r, AddressBook& book,
                         pastry::JoinRows* rows) {
  std::uint16_t n = 0;
  if (!r.u16(&n)) return WireStatus::kTruncated;
  if (n > kMaxVecLen) return WireStatus::kOversizeVec;
  for (std::uint16_t i = 0; i < n; ++i) {
    std::int32_t row = 0;
    if (!r.i32(&row)) return WireStatus::kTruncated;
    pastry::RowVec entries;
    const WireStatus st = get_descriptor_vec(r, book, &entries);
    if (st != WireStatus::kOk) return st;
    rows->push_back({row, std::move(entries)});
  }
  return WireStatus::kOk;
}

// --- Routed header --------------------------------------------------------

void put_routed(Writer& w, const pastry::RoutedMessage& m) {
  w.u128(m.key.value());
  w.i32(m.hops);
  w.u64(m.hop_seq);
  w.u8(m.wants_ack ? 1 : 0);
  w.u64(m.trace_id);
}

bool get_routed(Reader& r, pastry::RoutedMessage* m) {
  U128 key;
  std::uint8_t flags = 0;
  if (!r.u128(&key) || !r.i32(&m->hops) || !r.u64(&m->hop_seq) ||
      !r.u8(&flags) || !r.u64(&m->trace_id)) {
    return false;
  }
  m->key = NodeId{key};
  m->wants_ack = (flags & 1) != 0;
  return true;
}

// --- Per-type payloads ----------------------------------------------------

WireStatus put_payload(Writer& w, const Message& m, const AddressBook& book) {
  switch (m.type) {
    case MsgType::kJoinRequest: {
      const auto& j = static_cast<const pastry::JoinRequestMsg&>(m);
      put_routed(w, j);
      const WireStatus st = put_descriptor(w, j.joiner, book);
      if (st != WireStatus::kOk) return st;
      w.u64(j.join_epoch);
      return put_join_rows(w, j.rows, book);
    }
    case MsgType::kJoinReply: {
      const auto& j = static_cast<const pastry::JoinReplyMsg&>(m);
      w.u64(j.join_epoch);
      const WireStatus st = put_join_rows(w, j.rows, book);
      if (st != WireStatus::kOk) return st;
      return put_descriptor_vec(w, j.leaf_set, book);
    }
    case MsgType::kLsProbe:
    case MsgType::kLsProbeReply: {
      const auto& p = static_cast<const pastry::LsProbeMsg&>(m);
      const WireStatus st = put_descriptor_vec(w, p.leaf, book);
      if (st != WireStatus::kOk) return st;
      return put_descriptor_vec(w, p.failed, book);
    }
    case MsgType::kHeartbeat:
    case MsgType::kRtProbe:
    case MsgType::kRtProbeReply:
    case MsgType::kNnRequest:
    case MsgType::kLeave:
      return WireStatus::kOk;
    case MsgType::kDistanceProbe:
    case MsgType::kDistanceProbeReply:
      w.u64(static_cast<const pastry::DistanceProbeMsg&>(m).seq);
      return WireStatus::kOk;
    case MsgType::kDistanceReport:
      w.i64(static_cast<const pastry::DistanceReportMsg&>(m).rtt);
      return WireStatus::kOk;
    case MsgType::kRtRowRequest:
      w.i32(static_cast<const pastry::RtRowRequestMsg&>(m).row);
      return WireStatus::kOk;
    case MsgType::kRtRowReply: {
      const auto& rr = static_cast<const pastry::RtRowReplyMsg&>(m);
      w.i32(rr.row);
      return put_descriptor_vec(w, rr.entries, book);
    }
    case MsgType::kRtRowAnnounce: {
      const auto& rr = static_cast<const pastry::RtRowAnnounceMsg&>(m);
      w.i32(rr.row);
      return put_descriptor_vec(w, rr.entries, book);
    }
    case MsgType::kRtEntryRequest: {
      const auto& rr = static_cast<const pastry::RtEntryRequestMsg&>(m);
      w.i32(rr.row);
      w.i32(rr.col);
      return WireStatus::kOk;
    }
    case MsgType::kRtEntryReply: {
      const auto& rr = static_cast<const pastry::RtEntryReplyMsg&>(m);
      w.i32(rr.row);
      w.i32(rr.col);
      return put_descriptor(w, rr.entry, book);
    }
    case MsgType::kNnReply:
      return put_descriptor_vec(
          w, static_cast<const pastry::NnReplyMsg&>(m).candidates, book);
    case MsgType::kLookup: {
      const auto& l = static_cast<const pastry::LookupMsg&>(m);
      if (l.app_data != nullptr) return WireStatus::kAppData;
      put_routed(w, l);
      w.u64(l.lookup_id);
      const WireStatus st = put_descriptor(w, l.source, book);
      if (st != WireStatus::kOk) return st;
      w.i64(l.sent_at);
      w.u64(l.payload);
      return WireStatus::kOk;
    }
    case MsgType::kAck:
      w.u64(static_cast<const pastry::AckMsg&>(m).hop_seq);
      return WireStatus::kOk;
  }
  return WireStatus::kBadType;
}

WireStatus get_payload(Reader& r, MsgType type, pastry::MessagePool& pool,
                       AddressBook& book, pastry::MessagePtr* out) {
  using pastry::make_msg;
  switch (type) {
    case MsgType::kJoinRequest: {
      auto m = make_msg<pastry::JoinRequestMsg>(pool);
      if (!get_routed(r, m.get())) return WireStatus::kTruncated;
      if (!get_descriptor(r, book, &m->joiner)) return WireStatus::kTruncated;
      if (!r.u64(&m->join_epoch)) return WireStatus::kTruncated;
      const WireStatus st = get_join_rows(r, book, &m->rows);
      if (st != WireStatus::kOk) return st;
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kJoinReply: {
      auto m = make_msg<pastry::JoinReplyMsg>(pool);
      if (!r.u64(&m->join_epoch)) return WireStatus::kTruncated;
      WireStatus st = get_join_rows(r, book, &m->rows);
      if (st != WireStatus::kOk) return st;
      st = get_descriptor_vec(r, book, &m->leaf_set);
      if (st != WireStatus::kOk) return st;
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kLsProbe:
    case MsgType::kLsProbeReply: {
      auto m = make_msg<pastry::LsProbeMsg>(pool,
                                            type == MsgType::kLsProbeReply);
      WireStatus st = get_descriptor_vec(r, book, &m->leaf);
      if (st != WireStatus::kOk) return st;
      st = get_descriptor_vec(r, book, &m->failed);
      if (st != WireStatus::kOk) return st;
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kHeartbeat:
      *out = make_msg<pastry::HeartbeatMsg>(pool);
      return WireStatus::kOk;
    case MsgType::kRtProbe:
    case MsgType::kRtProbeReply:
      *out = make_msg<pastry::RtProbeMsg>(pool,
                                          type == MsgType::kRtProbeReply);
      return WireStatus::kOk;
    case MsgType::kNnRequest:
      *out = make_msg<pastry::NnRequestMsg>(pool);
      return WireStatus::kOk;
    case MsgType::kLeave:
      *out = make_msg<pastry::LeaveMsg>(pool);
      return WireStatus::kOk;
    case MsgType::kDistanceProbe:
    case MsgType::kDistanceProbeReply: {
      auto m = make_msg<pastry::DistanceProbeMsg>(
          pool, type == MsgType::kDistanceProbeReply);
      if (!r.u64(&m->seq)) return WireStatus::kTruncated;
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kDistanceReport: {
      auto m = make_msg<pastry::DistanceReportMsg>(pool);
      if (!r.i64(&m->rtt)) return WireStatus::kTruncated;
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kRtRowRequest: {
      auto m = make_msg<pastry::RtRowRequestMsg>(pool);
      if (!r.i32(&m->row)) return WireStatus::kTruncated;
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kRtRowReply: {
      auto m = make_msg<pastry::RtRowReplyMsg>(pool);
      if (!r.i32(&m->row)) return WireStatus::kTruncated;
      const WireStatus st = get_descriptor_vec(r, book, &m->entries);
      if (st != WireStatus::kOk) return st;
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kRtRowAnnounce: {
      auto m = make_msg<pastry::RtRowAnnounceMsg>(pool);
      if (!r.i32(&m->row)) return WireStatus::kTruncated;
      const WireStatus st = get_descriptor_vec(r, book, &m->entries);
      if (st != WireStatus::kOk) return st;
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kRtEntryRequest: {
      auto m = make_msg<pastry::RtEntryRequestMsg>(pool);
      if (!r.i32(&m->row) || !r.i32(&m->col)) return WireStatus::kTruncated;
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kRtEntryReply: {
      auto m = make_msg<pastry::RtEntryReplyMsg>(pool);
      if (!r.i32(&m->row) || !r.i32(&m->col)) return WireStatus::kTruncated;
      if (!get_descriptor(r, book, &m->entry)) return WireStatus::kTruncated;
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kNnReply: {
      auto m = make_msg<pastry::NnReplyMsg>(pool);
      const WireStatus st = get_descriptor_vec(r, book, &m->candidates);
      if (st != WireStatus::kOk) return st;
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kLookup: {
      auto m = make_msg<pastry::LookupMsg>(pool);
      if (!get_routed(r, m.get())) return WireStatus::kTruncated;
      if (!r.u64(&m->lookup_id)) return WireStatus::kTruncated;
      if (!get_descriptor(r, book, &m->source)) return WireStatus::kTruncated;
      if (!r.i64(&m->sent_at) || !r.u64(&m->payload)) {
        return WireStatus::kTruncated;
      }
      *out = m;
      return WireStatus::kOk;
    }
    case MsgType::kAck: {
      auto m = make_msg<pastry::AckMsg>(pool);
      if (!r.u64(&m->hop_seq)) return WireStatus::kTruncated;
      *out = m;
      return WireStatus::kOk;
    }
  }
  return WireStatus::kBadType;
}

}  // namespace

// wire_status_name lives in pastry/message.cpp with the shared enum.

WireStatus encode_message(const pastry::Message& m, const AddressBook& book,
                          std::vector<std::uint8_t>* out) {
  out->clear();
  Writer w(out);
  w.u32(0);  // length, patched below
  w.u16(kWireMagic);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(m.type));
  WireStatus st = put_descriptor(w, m.sender, book);
  if (st != WireStatus::kOk) return st;
  w.f64(m.trt_hint_s);
  st = put_payload(w, m, book);
  if (st != WireStatus::kOk) return st;
  if (out->size() > kMaxFrameBytes) return WireStatus::kOversizeFrame;
  w.patch_u32(0, static_cast<std::uint32_t>(out->size() - 4));
  return WireStatus::kOk;
}

DecodeResult decode_message(const std::uint8_t* data, std::size_t len,
                            pastry::MessagePool& pool, AddressBook& book) {
  DecodeResult res;
  auto fail = [&res](WireStatus st) {
    res.status = st;
    res.msg = nullptr;
    return res;
  };
  if (len > kMaxFrameBytes) return fail(WireStatus::kBadLength);

  Reader r(data, len);
  std::uint32_t frame_len = 0;
  std::uint16_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type_byte = 0;
  if (!r.u32(&frame_len)) return fail(WireStatus::kTruncated);
  if (frame_len != len - 4) return fail(WireStatus::kBadLength);
  if (!r.u16(&magic)) return fail(WireStatus::kTruncated);
  if (magic != kWireMagic) return fail(WireStatus::kBadMagic);
  if (!r.u8(&version)) return fail(WireStatus::kTruncated);
  if (version != kWireVersion) return fail(WireStatus::kBadVersion);
  if (!r.u8(&type_byte)) return fail(WireStatus::kTruncated);
  if (type_byte >= pastry::kMsgTypeCount) return fail(WireStatus::kBadType);
  const MsgType type = static_cast<MsgType>(type_byte);

  NodeDescriptor sender;
  double trt_hint = 0.0;
  if (!get_descriptor(r, book, &sender) || !r.f64(&trt_hint)) {
    return fail(WireStatus::kTruncated);
  }

  pastry::MessagePtr msg;
  const WireStatus st = get_payload(r, type, pool, book, &msg);
  if (st != WireStatus::kOk) return fail(st);
  if (r.remaining() != 0) return fail(WireStatus::kTrailingBytes);

  // Stamp the common header on the (still uniquely ours) message.
  auto* mutable_msg = const_cast<pastry::Message*>(msg.get());
  mutable_msg->sender = sender;
  mutable_msg->trt_hint_s = trt_hint;

  res.msg = std::move(msg);
  res.from = sender.addr;
  return res;
}

}  // namespace mspastry::rt
