#include "rt/address_book.hpp"

namespace mspastry::rt {

net::Address AddressBook::intern(net::Endpoint e) {
  const net::Address a = net::address_of(e);
  if (a == net::kNullAddress) return a;
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = map_.emplace(a, e);
  if (!inserted && !(it->second == e)) ++collisions_;
  return a;
}

std::optional<net::Endpoint> AddressBook::endpoint_of(net::Address a) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(a);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mspastry::rt
