#include "rt/runtime.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>

namespace mspastry::rt {

namespace {

sockaddr_in to_sockaddr(net::Endpoint e) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(e.ip);
  sa.sin_port = htons(e.port);
  return sa;
}

/// Datagrams drained per socket per epoll wake: bounds the time one busy
/// node can starve its siblings on the io thread.
constexpr int kRecvBatch = 64;

/// Idle cv/epoll wait cap, so stop flags are observed promptly.
constexpr SimTime kMaxIdleWaitUs = 200000;

}  // namespace

/// The Env a real-time node runs against. Lives on the node's owner
/// worker after start(); every method is owner-thread-only, mirroring the
/// single-threaded contract the simulator's NodeEnv has.
class RtNodeEnv final : public pastry::Env {
 public:
  RtNodeEnv(RtRuntime& rt, RtRuntime::Worker& w, LocalNode& n)
      : rt_(rt), w_(w), n_(n), alive_(std::make_shared<bool>(true)) {}
  ~RtNodeEnv() override { *alive_ = false; }

  SimTime now() const override { return w_.cached_now; }

  TimerId schedule(SimDuration delay, InplaceCallback fn) override {
    // Same liveness-guard idiom as the overlay driver: a timer must
    // never outlive its node, and the guard must stay allocation-free.
    struct Guarded {
      std::shared_ptr<bool> alive;
      InplaceCallback fn;
      void operator()() {
        if (*alive) fn();
      }
    };
    static_assert(
        Simulator::Callback::fits_inline<Guarded>(),
        "liveness-guarded node timers must stay allocation-free; grow "
        "Simulator::kCallbackCapacity");
    if (delay < 0) delay = 0;
    return w_.timers.schedule_at(w_.cached_now + delay,
                                 Guarded{alive_, std::move(fn)});
  }

  void cancel(TimerId id) override { w_.timers.cancel(id); }

  void send(net::Address to, pastry::MessagePtr msg) override {
    const auto ep = rt_.book_.endpoint_of(to);
    if (!ep) {
      rt_.stats_.dropped_no_endpoint.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const WireStatus st = encode_message(*msg, rt_.book_, &w_.wire_buf);
    if (st != WireStatus::kOk) {
      rt_.stats_.encode_errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const sockaddr_in sa = to_sockaddr(*ep);
    const ssize_t r =
        sendto(n_.fd, w_.wire_buf.data(), w_.wire_buf.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    if (r < 0) {
      rt_.stats_.send_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      rt_.stats_.datagrams_out.fetch_add(1, std::memory_order_relaxed);
    }
  }

  pastry::MessagePool& pool() override { return w_.pool; }
  Rng& rng() override { return w_.rng; }
  pastry::NodeArena* routing_arena() override { return &w_.arena; }

  std::optional<pastry::NodeDescriptor> bootstrap_candidate() override {
    if (n_.bootstrap && n_.bootstrap->addr != n_.self.addr) {
      return n_.bootstrap;
    }
    return std::nullopt;
  }

  obs::FlightRecorder* recorder() override {
    return w_.obs != nullptr ? &w_.obs->recorder_for(n_.self.addr) : nullptr;
  }

  void on_deliver(const pastry::LookupMsg& m) override {
    if (n_.on_deliver) n_.on_deliver(m);
  }

  void on_activated() override {
    if (n_.on_activated) n_.on_activated();
  }

 private:
  RtRuntime& rt_;
  RtRuntime::Worker& w_;
  LocalNode& n_;
  std::shared_ptr<bool> alive_;
};

RtRuntime::RtRuntime(const RtConfig& cfg, pastry::Config node_cfg)
    : cfg_(cfg),
      node_cfg_(node_cfg),
      clock_(cfg.epoch_us >= 0 ? cfg.epoch_us : monotonic_micros()) {
  if (cfg_.workers < 1) cfg_.workers = 1;
  Rng seeder(cfg_.seed);
  for (int i = 0; i < cfg_.workers; ++i) {
    auto w = std::make_unique<Worker>(node_cfg_.routing_table_cols(),
                                      seeder.fork());
    if (cfg_.obs.enabled) {
      w->obs = std::make_unique<obs::TraceDomain>(cfg_.obs);
    }
    w->cached_now = clock_.now();
    workers_.push_back(std::move(w));
  }
  epoll_fd_ = epoll_create1(0);
  wake_fd_ = eventfd(0, EFD_NONBLOCK);
  assert(epoll_fd_ >= 0 && wake_fd_ >= 0);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the wake eventfd
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
}

RtRuntime::~RtRuntime() {
  if (started_ && !stopped_) stop();
  for (auto& n : nodes_) {
    if (n->fd >= 0) close(n->fd);
  }
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

LocalNode* RtRuntime::add_node(NodeId id, net::Endpoint bind_ep) {
  assert(!started_ && "nodes must be added before start()");
  const int fd = socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return nullptr;
  if (bind_ep.ip == 0) bind_ep.ip = net::kLoopbackIp;
  sockaddr_in sa = to_sockaddr(bind_ep);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) != 0) {
    close(fd);
    return nullptr;
  }
  // Joins and lookup bursts are spiky; a roomy receive buffer absorbs
  // them instead of silently dropping on loopback.
  int rcvbuf = 1 << 20;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);

  socklen_t slen = sizeof sa;
  getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &slen);
  net::Endpoint actual{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
  if (actual.ip == 0) actual.ip = bind_ep.ip;

  auto n = std::make_unique<LocalNode>();
  n->endpoint = actual;
  n->fd = fd;
  n->worker = static_cast<int>(nodes_.size() % workers_.size());
  n->self = pastry::NodeDescriptor{id, book_.intern(actual)};
  if (n->self.addr == net::kNullAddress) {
    close(fd);
    return nullptr;
  }

  Worker& w = *workers_[n->worker];
  w.cached_now = clock_.now();
  n->env = std::make_unique<RtNodeEnv>(*this, w, *n);
  n->node = std::make_unique<pastry::PastryNode>(node_cfg_, n->self, *n->env,
                                                 n->counters);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = n.get();
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);

  nodes_.push_back(std::move(n));
  return nodes_.back().get();
}

pastry::NodeDescriptor RtRuntime::intern_peer(NodeId id, net::Endpoint e) {
  return pastry::NodeDescriptor{id, book_.intern(e)};
}

void RtRuntime::start() {
  assert(!started_);
  started_ = true;
  for (auto& w : workers_) {
    w->thread = std::thread([this, wp = w.get()] { worker_loop(*wp); });
  }
  io_thread_ = std::thread([this] { io_loop(); });
}

void RtRuntime::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  io_stop_.store(true);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = write(wake_fd_, &one, sizeof one);
  io_thread_.join();
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->cv.notify_one();
    w->thread.join();
  }
  if (cfg_.obs.enabled) {
    merged_obs_ = std::make_unique<obs::TraceDomain>(cfg_.obs);
    for (auto& w : workers_) {
      merged_obs_->absorb(std::move(*w->obs));
    }
  }
}

void RtRuntime::post(LocalNode& n, std::function<void()> fn) {
  Worker& w = *workers_[n.worker];
  if (!started_ || stopped_) {
    // Single-threaded phase: run inline against a fresh clock reading.
    w.cached_now = clock_.now();
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.tasks.push_back(std::move(fn));
  }
  w.cv.notify_one();
}

void RtRuntime::io_loop() {
  std::vector<epoll_event> events(64);
  std::vector<std::uint8_t> buf(65536);
  std::vector<std::vector<Inbound>> staged(workers_.size());
  while (!io_stop_.load(std::memory_order_relaxed)) {
    const int n = epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()),
                             static_cast<int>(kMaxIdleWaitUs / 1000));
    for (int i = 0; i < n; ++i) {
      auto* ln = static_cast<LocalNode*>(events[i].data.ptr);
      if (ln == nullptr) {
        std::uint64_t drain = 0;
        [[maybe_unused]] const ssize_t r =
            read(wake_fd_, &drain, sizeof drain);
        continue;
      }
      for (int k = 0; k < kRecvBatch; ++k) {
        const ssize_t got =
            recvfrom(ln->fd, buf.data(), buf.size(), 0, nullptr, nullptr);
        if (got < 0) break;  // EAGAIN: batch drained
        stats_.datagrams_in.fetch_add(1, std::memory_order_relaxed);
        staged[ln->worker].push_back(
            Inbound{ln, {buf.data(), buf.data() + got}});
      }
    }
    for (std::size_t wi = 0; wi < staged.size(); ++wi) {
      if (staged[wi].empty()) continue;
      Worker& w = *workers_[wi];
      {
        std::lock_guard<std::mutex> lock(w.mu);
        for (auto& in : staged[wi]) w.inbox.push_back(std::move(in));
      }
      w.cv.notify_one();
      staged[wi].clear();
    }
  }
}

void RtRuntime::dispatch(Worker& w, Inbound& in) {
  // One cached clock reading per datagram: every event recorded while
  // handling it shares a timestamp (see runtime.hpp header comment).
  w.cached_now = clock_.now();
  DecodeResult r =
      decode_message(in.bytes.data(), in.bytes.size(), w.pool, book_);
  if (r.status != WireStatus::kOk || r.from == net::kNullAddress) {
    stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  in.node->node->handle(r.from, r.msg);
}

void RtRuntime::worker_loop(Worker& w) {
  std::vector<Inbound> inbox;
  std::vector<std::function<void()>> tasks;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(w.mu);
      if (!w.stop && w.inbox.empty() && w.tasks.empty()) {
        const SimTime next = w.timers.next_event_time();
        const SimTime now = clock_.now();
        SimTime wait_us = kMaxIdleWaitUs;
        if (next != kTimeNever) {
          wait_us = std::min(wait_us, std::max<SimTime>(next - now, 0));
        }
        if (wait_us > 0) {
          w.cv.wait_for(lock, std::chrono::microseconds(wait_us));
        }
      }
      if (w.stop) break;
      inbox.swap(w.inbox);
      tasks.swap(w.tasks);
    }
    for (auto& t : tasks) {
      w.cached_now = clock_.now();
      t();
    }
    tasks.clear();
    for (auto& in : inbox) dispatch(w, in);
    inbox.clear();
    w.cached_now = clock_.now();
    w.timers.run_until(w.cached_now);
  }
}

}  // namespace mspastry::rt
