#pragma once

// Real-time backend: the same pastry::PastryNode that runs under the
// discrete-event simulator, running on wall-clock timers and UDP sockets.
//
// Thread model (DESIGN.md "Real-time backend"):
//
//   - One net-io thread owns an epoll set over every local node's UDP
//     socket. It only moves bytes: datagrams are batched off the sockets
//     and pushed, still raw, onto the owning worker's inbound queue.
//     Decoding happens on the worker because message pools and refcounts
//     are single-threaded by design.
//   - A small pool of worker threads owns all protocol state. Each worker
//     owns a MessagePool, a NodeArena, an Rng, a per-worker
//     obs::TraceDomain, and a Simulator used purely as a timer queue
//     (schedule_at against wall time, run_until(now) each loop). Nodes
//     are assigned to workers round-robin at creation and every touch of
//     a node — decode, handle, timer callbacks, upcalls, sends — happens
//     on its owner worker. This is the same owner-thread/hand-off
//     discipline as the sharded simulator, with the epoll queue in place
//     of the epoch barrier.
//   - Sends go out synchronously on the owner worker through the node's
//     own socket, so peers see the advertised source endpoint.
//
// Time: Env::now() returns a per-dispatch cached reading of the shared
// monotonic clock, so all events recorded while handling one datagram or
// one timer batch carry a single timestamp — the discretization the
// expectation checker's same-instant rules (R3) assume of an Env.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/flight_recorder.hpp"
#include "pastry/config.hpp"
#include "pastry/node.hpp"
#include "pastry/node_arena.hpp"
#include "rt/address_book.hpp"
#include "rt/clock.hpp"
#include "rt/wire.hpp"

namespace mspastry::rt {

struct RtConfig {
  /// Worker threads owning protocol state. One suffices for a daemon
  /// hosting a single node; tests run many nodes across several.
  int workers = 1;

  /// Shared time base (a raw CLOCK_MONOTONIC reading in microseconds);
  /// < 0 means "this runtime's construction time". The localnet launcher
  /// passes its own start to every daemon so merged traces share one
  /// clock.
  SimTime epoch_us = -1;

  std::uint64_t seed = 1;

  /// Observability; enabled means every node records into a per-worker
  /// TraceDomain, merged at stop().
  obs::ObsConfig obs;
};

/// Aggregate datagram/codec counters (io + all workers; atomics).
struct RtStats {
  std::atomic<std::uint64_t> datagrams_in{0};
  std::atomic<std::uint64_t> datagrams_out{0};
  std::atomic<std::uint64_t> decode_errors{0};
  std::atomic<std::uint64_t> encode_errors{0};
  std::atomic<std::uint64_t> send_errors{0};
  std::atomic<std::uint64_t> dropped_no_endpoint{0};
};

class RtRuntime;

/// One locally hosted overlay node: its socket, its Env, and the
/// PastryNode itself. Created via RtRuntime::add_node before start().
/// All interaction after start() must go through RtRuntime::post.
struct LocalNode {
  pastry::NodeDescriptor self;
  net::Endpoint endpoint;
  int fd = -1;
  int worker = 0;

  /// Upcalls, invoked on the owner worker thread. Unset = ignored.
  std::function<void(const pastry::LookupMsg&)> on_deliver;
  std::function<void()> on_activated;

  /// Fixed bootstrap fed to Env::bootstrap_candidate (join retries).
  std::optional<pastry::NodeDescriptor> bootstrap;

  pastry::Counters counters;
  std::unique_ptr<pastry::Env> env;     // owner-worker only after start()
  std::unique_ptr<pastry::PastryNode> node;
};

class RtRuntime {
 public:
  explicit RtRuntime(const RtConfig& cfg, pastry::Config node_cfg);
  ~RtRuntime();

  RtRuntime(const RtRuntime&) = delete;
  RtRuntime& operator=(const RtRuntime&) = delete;

  /// Bind a UDP socket on `bind` (port 0 picks an ephemeral port) and
  /// create a node with identifier `id` behind it. Must be called before
  /// start(). Returns nullptr if the socket cannot be bound.
  LocalNode* add_node(NodeId id, net::Endpoint bind);

  /// Record a remote node (endpoint + id) in the address book and return
  /// a descriptor usable as a bootstrap.
  pastry::NodeDescriptor intern_peer(NodeId id, net::Endpoint e);

  void start();

  /// Stop io + workers, then (single-threaded again) absorb per-worker
  /// trace domains. Nodes stay alive for introspection until destruction.
  void stop();

  /// Run `fn` on `n`'s owner worker thread; the only safe way to touch a
  /// node (join, lookups, reads of protocol state) while running.
  void post(LocalNode& n, std::function<void()> fn);

  AddressBook& book() { return book_; }
  RtStats& stats() { return stats_; }
  const WallClock& clock() const { return clock_; }
  const std::vector<std::unique_ptr<LocalNode>>& nodes() const {
    return nodes_;
  }

  /// Merged trace domain; valid (non-null iff obs enabled) after stop().
  obs::TraceDomain* trace_domain() { return merged_obs_.get(); }

 private:
  friend class RtNodeEnv;
  struct Inbound {
    LocalNode* node;
    std::vector<std::uint8_t> bytes;
  };

  // Declaration order is destruction order in reverse; workers hold the
  // pools/arenas/timers and must die after the nodes that use them, so
  // nodes_ is declared after workers_.
  struct Worker {
    // pool first: the Simulator (whose parked callbacks may capture
    // MessagePtrs) and the nodes must be destroyed before it.
    pastry::MessagePool pool;
    Simulator timers;
    pastry::NodeArena arena;
    Rng rng;
    std::unique_ptr<obs::TraceDomain> obs;
    std::vector<std::uint8_t> wire_buf;
    SimTime cached_now = 0;

    std::mutex mu;
    std::condition_variable cv;
    std::vector<Inbound> inbox;
    std::vector<std::function<void()>> tasks;
    bool stop = false;

    std::thread thread;

    explicit Worker(int cols, Rng r) : arena(cols), rng(std::move(r)) {}
  };

  void io_loop();
  void worker_loop(Worker& w);
  void dispatch(Worker& w, Inbound& in);

  RtConfig cfg_;
  pastry::Config node_cfg_;
  WallClock clock_;
  AddressBook book_;
  RtStats stats_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: io-thread shutdown
  std::atomic<bool> io_stop_{false};
  std::thread io_thread_;
  bool started_ = false;
  bool stopped_ = false;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<LocalNode>> nodes_;
  std::unique_ptr<obs::TraceDomain> merged_obs_;
};

}  // namespace mspastry::rt
