#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/sim_time.hpp"
#include "sim/simulator.hpp"

namespace mspastry {

/// Conservative parallel discrete-event scheduler (PDES): S independent
/// `Simulator` instances ("shards"), each owning a disjoint set of actors,
/// executed in lock-step *epochs* whose length is bounded by the minimum
/// cross-shard event latency (the lookahead L).
///
/// The classic conservative argument: if every event one shard can cause
/// on another shard lands at least L after the causing event, then all
/// events with t < min_pending + L are causally independent across shards
/// and can run concurrently. Each epoch therefore:
///
///   1. (single-threaded) computes `next_min`, the earliest pending event
///      across all shards, and the epoch end E = min(next_min + L,
///      until + 1);
///   2. (parallel) every shard runs `run_until(E - 1)` on its own thread —
///      all events with t < E, in exact local (t, seq) order;
///   3. (single-threaded, all shards quiescent) drains cross-shard
///      outboxes posted during the parallel phase (each scheduled event
///      has t >= E by the lookahead contract) and calls the caller's
///      barrier hook with E.
///
/// Because workers only touch their own shard during phase 2 and all
/// cross-shard hand-off happens in the quiescent phase 3, the only
/// synchronisation is a pair of barriers per epoch — no locks, no atomics
/// on the hot path. Outbox rows are per (src, dst) and written only by
/// src's worker, so they are single-producer by construction.
///
/// Determinism contract: epoch boundaries depend only on the global
/// minimum pending time and L, both of which are independent of the shard
/// count, so a caller whose per-shard behaviour is shard-assignment-
/// invariant (per-actor RNG streams, shard-count-independent tie-breaks)
/// produces byte-identical results for any S — including S = 1, which
/// runs the same epoch loop inline with no threads.
class ShardedSimulator {
 public:
  /// Called at the end of every epoch (all shards quiescent, engine
  /// outboxes already drained) with the epoch end E: every event with
  /// t < E has executed on every shard; nothing at t >= E has.
  using BarrierFn = std::function<void(SimTime epoch_end)>;

  /// `lookahead` is the minimum cross-shard latency in simulated time: an
  /// event executing at time t may post() work onto another shard no
  /// earlier than t + lookahead. A lookahead < 1 cannot order anything
  /// (same-time cross-shard events would be unordered), so the engine
  /// falls back to a single shard and uses kFallbackEpoch to chunk time.
  ShardedSimulator(std::size_t shards, SimDuration lookahead);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Epoch length used when the requested lookahead was < 1 and the
  /// engine fell back to one shard (any positive value is correct with a
  /// single shard; this just sets the barrier-hook cadence).
  static constexpr SimDuration kFallbackEpoch = SimDuration{16384};

  /// Number of shards actually running (1 when the lookahead forced the
  /// single-shard fallback).
  std::size_t shards() const { return sims_.size(); }
  /// Number of shards originally asked for.
  std::size_t requested_shards() const { return requested_shards_; }
  SimDuration lookahead() const { return lookahead_; }

  /// Widen the lookahead before the run starts (increase-only; shrinking
  /// would re-ask the caller for a safety proof it already gave). The
  /// caller asserts that every cross-shard event latency is at least
  /// `lookahead` — e.g. a per-shard-pair bound from
  /// Topology::min_delay_between over the actual partition, instead of
  /// the global min-link bound the engine was constructed with. Must be
  /// called before run_until; epoch boundaries derived from the wider
  /// window are NOT shard-count-invariant (the partition isn't).
  void raise_lookahead(SimDuration lookahead);

  Simulator& shard(std::size_t i) { return *sims_[i]; }
  const Simulator& shard(std::size_t i) const { return *sims_[i]; }

  /// Total events executed across all shards.
  std::uint64_t executed_events() const;
  /// Epochs completed so far (each = one parallel phase + one barrier).
  std::uint64_t epochs() const { return epochs_; }

  /// End of the epoch currently executing (valid during the parallel
  /// phase and the barrier hook): every posted event must satisfy
  /// t >= epoch_end().
  SimTime epoch_end() const { return epoch_end_; }

  /// Post a callback onto shard `dst` at absolute time `t`, from code
  /// running on shard `src` during the parallel phase. Buffered in a
  /// per-(src, dst) row and scheduled on dst at the next barrier. The
  /// lookahead contract requires t >= epoch_end(); asserted.
  ///
  /// Same-shard posts are legal and also deferred to the barrier (the
  /// caller should normally just schedule_at directly for those).
  void post(std::size_t src, std::size_t dst, SimTime t,
            Simulator::Callback fn);

  /// Run all shards up to and including `until` (same contract as
  /// Simulator::run_until: events at exactly `until` execute; every
  /// shard's clock ends at >= until). `at_barrier` may be empty.
  void run_until(SimTime until, const BarrierFn& at_barrier = {});

 private:
  struct Posted {
    SimTime t;
    Simulator::Callback fn;
  };

  /// Earliest pending event across all shards (single-threaded).
  SimTime global_min();
  /// Schedule everything in the outboxes onto the destination shards, in
  /// (src, dst) row order (single-threaded, deterministic).
  void drain_outboxes();
  /// One epoch's parallel phase: every shard runs run_until(bound).
  /// Dispatches to the worker pool (or runs inline when S == 1).
  void parallel_run_until(SimTime bound);

  std::size_t requested_shards_;
  SimDuration lookahead_;
  std::vector<std::unique_ptr<Simulator>> sims_;

  /// outboxes_[src * S + dst]: written only by shard src's worker during
  /// the parallel phase, drained single-threaded at the barrier.
  std::vector<std::vector<Posted>> outboxes_;

  SimTime epoch_end_ = kTimeZero;
  std::uint64_t epochs_ = 0;

  struct Pool;  // worker threads + barriers (multi-shard runs only)
  std::unique_ptr<Pool> pool_;
};

}  // namespace mspastry
