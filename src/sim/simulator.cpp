#include "sim/simulator.hpp"

#include <cassert>

namespace mspastry {

TimerId Simulator::schedule_at(SimTime t, Callback fn) {
  assert(t >= now_ && "cannot schedule in the past");
  const TimerId id = next_id_++;
  heap_.push(Entry{t < now_ ? now_ : t, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

void Simulator::cancel(TimerId id) {
  if (id == kInvalidTimer) return;
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;  // already fired or never existed
  callbacks_.erase(it);
  cancelled_.insert(id);
}

void Simulator::prune() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

void Simulator::execute_top() {
  const Entry e = heap_.top();
  heap_.pop();
  now_ = e.t;
  auto it = callbacks_.find(e.id);
  assert(it != callbacks_.end());
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  ++executed_;
  fn();
}

bool Simulator::step() {
  prune();
  if (heap_.empty()) return false;
  execute_top();
  return true;
}

void Simulator::run_until(SimTime t) {
  for (;;) {
    prune();
    if (heap_.empty() || heap_.top().t > t) break;
    execute_top();
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

PeriodicTask::PeriodicTask(Simulator& sim, SimDuration period,
                           Simulator::Callback fn)
    : state_(std::make_shared<State>(State{sim, period, std::move(fn)})) {
  assert(period > 0);
  arm(state_);
}

void PeriodicTask::arm(const std::shared_ptr<State>& st) {
  st->timer = st->sim.schedule_after(st->period, [st] {
    if (st->stopped) return;
    st->fn();
    if (!st->stopped) arm(st);
  });
}

void PeriodicTask::stop() {
  if (!state_ || state_->stopped) return;
  state_->stopped = true;
  state_->sim.cancel(state_->timer);
}

}  // namespace mspastry
