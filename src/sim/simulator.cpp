#include "sim/simulator.hpp"

#include <cassert>

namespace mspastry {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t s = free_head_;
    free_head_ = static_cast<std::uint32_t>(meta_[s]);
    return s;
  }
  assert(slots_.size() < kNoFreeSlot && "timer arena exhausted");
  slots_.emplace_back();
  meta_.push_back(static_cast<std::uint64_t>(kNoFreeSlot));
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  slots_[slot].reset();
  // Bump the generation odd -> even (stale TimerIds and heap tombstones
  // can never match again) and link the slot into the free list.
  const std::uint64_t gen = (meta_[slot] >> 32) + 1;
  meta_[slot] = (gen << 32) | free_head_;
  free_head_ = slot;
}

TimerId Simulator::arm_slot(SimTime t, std::uint32_t slot) {
  assert(t >= now_ && "cannot schedule in the past");
  // Bump the generation even -> odd (armed).
  const std::uint32_t gen = slot_gen(slot) + 1;
  meta_[slot] = static_cast<std::uint64_t>(gen) << 32;
  heap_push(HeapEntry{t < now_ ? now_ : t, next_seq_++, slot, gen});
  ++live_;
  return (static_cast<TimerId>(gen) << 32) | (slot + 1);
}

void Simulator::cancel(TimerId id) {
  if (id == kInvalidTimer) return;
  const std::uint32_t slot = static_cast<std::uint32_t>(id) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  if (slot_gen(slot) != gen) return;  // already fired or cancelled
  release_slot(slot);  // heap entry becomes a tombstone, pruned lazily
  --live_;
}

void Simulator::heap_push(const HeapEntry& e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::heap_pop_front() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void Simulator::execute_front() {
  const HeapEntry e = heap_[0];
  heap_pop_front();
  now_ = e.t;
  // Move the callback out and free the slot *before* invoking: the
  // callback may itself schedule (reusing this hot slot) or cancel.
  Callback fn = std::move(slots_[e.slot]);
  release_slot(e.slot);
  --live_;
  ++executed_;
  fn();
}

bool Simulator::step() {
  while (!heap_.empty()) {
    if (!entry_live(heap_[0])) {  // tombstone of a cancelled event
      heap_pop_front();
      continue;
    }
    execute_front();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime t) {
  while (!heap_.empty()) {
    if (!entry_live(heap_[0])) {
      heap_pop_front();
      continue;
    }
    if (heap_[0].t > t) break;
    execute_front();
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

PeriodicTask::PeriodicTask(Simulator& sim, SimDuration period,
                           Simulator::Callback fn)
    : state_(std::make_shared<State>(State{sim, period, std::move(fn)})) {
  assert(period > 0);
  arm(state_);
}

void PeriodicTask::arm(const std::shared_ptr<State>& st) {
  st->timer = st->sim.schedule_after(st->period, [st] {
    if (st->stopped) return;
    st->fn();
    if (!st->stopped) arm(st);
  });
}

void PeriodicTask::stop() {
  if (!state_ || state_->stopped) return;
  state_->stopped = true;
  state_->sim.cancel(state_->timer);
}

}  // namespace mspastry
