#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace mspastry {

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t s = free_head_;
    free_head_ = static_cast<std::uint32_t>(meta_[s]);
    return s;
  }
  assert(slots_.size() < kNoFreeSlot && "timer arena exhausted");
  slots_.emplace_back();
  meta_.push_back(static_cast<std::uint64_t>(kNoFreeSlot));
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  slots_[slot].reset();
  // Bump the generation odd -> even (stale TimerIds and heap tombstones
  // can never match again) and link the slot into the free list.
  const std::uint64_t gen = (meta_[slot] >> 32) + 1;
  meta_[slot] = (gen << 32) | free_head_;
  free_head_ = slot;
}

TimerId Simulator::arm_slot(SimTime t, std::uint32_t slot) {
  assert(t >= now_ && "cannot schedule in the past");
  // Bump the generation even -> odd (armed).
  const std::uint32_t gen = slot_gen(slot) + 1;
  meta_[slot] = static_cast<std::uint64_t>(gen) << 32;
  place(HeapEntry{t < now_ ? now_ : t, next_seq_++, slot, gen});
  ++live_;
  return (static_cast<TimerId>(gen) << 32) | (slot + 1);
}

void Simulator::place(const HeapEntry& e) {
  const Tick delta = tick_of(e.t) - cur_tick_;
  if (delta <= 0) {
    heap_push(e);
    return;
  }
  if (delta >= kWheelSpanTicks) {
    far_push(e);
    return;
  }
  int level = 0;
  if (delta >= (Tick(1) << (3 * kLevelBits))) {
    level = 3;
  } else if (delta >= (Tick(1) << (2 * kLevelBits))) {
    level = 2;
  } else if (delta >= (Tick(1) << kLevelBits)) {
    level = 1;
  }
  const auto idx = static_cast<std::uint32_t>(
      (tick_of(e.t) >> (kLevelBits * level)) & (kWheelBuckets - 1));
  wheel_[static_cast<std::size_t>(level)][idx].push_back(e);
  occupied_[static_cast<std::size_t>(level)] |= std::uint64_t{1} << idx;
  ++wheel_count_;
}

void Simulator::far_push(const HeapEntry& e) {
  far_.push_back(e);
  std::push_heap(far_.begin(), far_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) {
                   return earlier(b, a);  // min-heap on (t, seq)
                 });
}

void Simulator::far_pop_front() {
  std::pop_heap(far_.begin(), far_.end(),
                [](const HeapEntry& a, const HeapEntry& b) {
                  return earlier(b, a);
                });
  far_.pop_back();
}

Simulator::Tick Simulator::level_next_tick(int k) const {
  const std::uint64_t m = occupied_[static_cast<std::size_t>(k)];
  if (m == 0) return kTickNever;
  const int shift = kLevelBits * k;
  const auto ck =
      static_cast<std::uint32_t>(cur_tick_ >> shift) & (kWheelBuckets - 1);
  // Occupied buckets sit strictly within one cycle ahead of the cursor
  // (placement bounds the delta), so walking indices in rotating order
  // starting after the cursor's own index visits them in time order; the
  // cursor's index itself means "one full cycle ahead".
  const std::uint32_t start = (ck + 1) & (kWheelBuckets - 1);
  const std::uint64_t rot = std::rotr(m, static_cast<int>(start));
  const auto j = static_cast<std::uint32_t>(std::countr_zero(rot));
  const std::uint32_t b = (start + j) & (kWheelBuckets - 1);
  const Tick cycle = (cur_tick_ >> (shift + kLevelBits))
                     << (shift + kLevelBits);
  Tick s = cycle + (static_cast<Tick>(b) << shift);
  if (b <= ck) s += Tick(1) << (shift + kLevelBits);  // wrapped to next cycle
  return s;
}

void Simulator::cascade(int level, std::uint32_t idx) {
  auto& bucket = wheel_[static_cast<std::size_t>(level)][idx];
  occupied_[static_cast<std::size_t>(level)] &=
      ~(std::uint64_t{1} << idx);
  wheel_count_ -= bucket.size();
  scratch_.clear();
  scratch_.swap(bucket);  // bucket keeps scratch's old capacity for reuse
  for (const HeapEntry& e : scratch_) {
    if (!entry_live(e)) continue;  // cancelled in place: never touches heap
    place(e);
  }
}

void Simulator::advance_to(Tick target) {
  const Tick prev = cur_tick_;
  cur_tick_ = target;
  // Newly-entered buckets, top level first: a level-k bucket is entered
  // when the cursor's level-k index (including cycle bits) changes. By
  // minimality of `target` every bucket whose span was skipped outright
  // is empty, so only the buckets containing `target` need attention.
  for (int k = kWheelLevels - 1; k >= 0; --k) {
    const int shift = kLevelBits * k;
    if ((target >> shift) == (prev >> shift)) continue;
    const auto idx =
        static_cast<std::uint32_t>(target >> shift) & (kWheelBuckets - 1);
    if ((occupied_[static_cast<std::size_t>(k)] >> idx & 1u) == 0) continue;
    cascade(k, idx);
  }
}

void Simulator::pump(SimTime bound) {
  for (;;) {
    while (!heap_.empty() && !entry_live(heap_[0])) heap_pop_front();
    // Fast path: the heap front is within the current wheel tick, so no
    // parked entry can precede it (wheel entries are strictly ahead of
    // the cursor).
    if (!heap_.empty() && tick_of(heap_[0].t) <= cur_tick_) return;
    const SimTime horizon = heap_.empty() ? kTimeNever : heap_[0].t;

    // Prune cancelled far-heap entries and migrate any now in range.
    while (!far_.empty()) {
      const HeapEntry& f = far_.front();
      if (!entry_live(f)) {
        far_pop_front();
        continue;
      }
      if (tick_of(f.t) - cur_tick_ < kWheelSpanTicks) {
        const HeapEntry e = f;
        far_pop_front();
        place(e);
        continue;
      }
      break;
    }

    Tick t_next = kTickNever;
    for (int k = 0; k < kWheelLevels; ++k) {
      t_next = std::min(t_next, level_next_tick(k));
    }
    if (t_next == kTickNever) {
      if (far_.empty()) return;  // heap front (or nothing) is the minimum
      const HeapEntry& f = far_.front();
      if (!heap_.empty() &&
          (horizon < f.t || (horizon == f.t && heap_[0].seq < f.seq))) {
        return;
      }
      if (f.t > bound && horizon > bound) return;
      // The wheel is empty: jump the cursor just far enough for the far
      // front to migrate into level 3 on the next iteration.
      cur_tick_ = tick_of(f.t) - (kWheelSpanTicks - 1);
      continue;
    }
    // No bucket holds an entry before its span start, so the heap front
    // wins outright if it is strictly earlier than that lower bound.
    const SimTime wheel_lb = t_next << kTickShift;
    if (horizon < wheel_lb) return;
    if (wheel_lb > bound && horizon > bound) return;  // nothing due by bound
    advance_to(t_next);
  }
}

void Simulator::cancel(TimerId id) {
  if (id == kInvalidTimer) return;
  const std::uint32_t slot = static_cast<std::uint32_t>(id) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return;
  if (slot_gen(slot) != gen) return;  // already fired or cancelled
  release_slot(slot);  // heap entry becomes a tombstone, pruned lazily
  --live_;
}

void Simulator::heap_push(const HeapEntry& e) {
  heap_.push_back(e);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::heap_pop_front() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void Simulator::execute_front() {
  const HeapEntry e = heap_[0];
  heap_pop_front();
  now_ = e.t;
  // Move the callback out and free the slot *before* invoking: the
  // callback may itself schedule (reusing this hot slot) or cancel.
  Callback fn = std::move(slots_[e.slot]);
  release_slot(e.slot);
  --live_;
  ++executed_;
  fn();
}

SimTime Simulator::next_event_time() {
  pump(kTimeNever);
  return heap_.empty() ? kTimeNever : heap_[0].t;
}

bool Simulator::step() {
  pump(kTimeNever);
  if (heap_.empty()) return false;  // pump pruned everything: queue is empty
  execute_front();
  return true;
}

void Simulator::run_until(SimTime t) {
  for (;;) {
    // Bounding the pump keeps the cursor lazy under poll-style run_for
    // loops: buckets past `t` stay parked instead of being drained one
    // wheel tick at a time.
    pump(t);
    if (heap_.empty() || heap_[0].t > t) break;
    execute_front();
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

PeriodicTask::PeriodicTask(Simulator& sim, SimDuration period,
                           Simulator::Callback fn)
    : state_(std::make_shared<State>(State{sim, period, std::move(fn)})) {
  assert(period > 0);
  arm(state_);
}

void PeriodicTask::arm(const std::shared_ptr<State>& st) {
  st->timer = st->sim.schedule_after(st->period, [st] {
    if (st->stopped) return;
    st->fn();
    if (!st->stopped) arm(st);
  });
}

void PeriodicTask::stop() {
  if (!state_ || state_->stopped) return;
  state_->stopped = true;
  state_->sim.cancel(state_->timer);
}

}  // namespace mspastry
