#include "sim/sharded_simulator.hpp"

#include <barrier>
#include <cassert>
#include <thread>

namespace mspastry {

/// Persistent worker threads for the parallel phase. The main thread
/// executes shard 0 itself; shards 1..S-1 each get a thread. Two barriers
/// frame every phase: `start` releases the workers onto their shard with
/// the bound already published, `done` hands control back once every
/// shard is quiescent. Barrier phase completion synchronises, so `bound`
/// and `stop` need no atomics: they are written strictly before the start
/// arrival and read strictly after it.
struct ShardedSimulator::Pool {
  ShardedSimulator& owner;
  std::barrier<> start;
  std::barrier<> done;
  SimTime bound = kTimeZero;
  bool stop = false;
  std::vector<std::thread> threads;

  explicit Pool(ShardedSimulator& o)
      : owner(o),
        start(static_cast<std::ptrdiff_t>(o.sims_.size())),
        done(static_cast<std::ptrdiff_t>(o.sims_.size())) {
    threads.reserve(o.sims_.size() - 1);
    for (std::size_t i = 1; i < o.sims_.size(); ++i) {
      threads.emplace_back([this, i] { worker(i); });
    }
  }

  ~Pool() {
    stop = true;
    start.arrive_and_wait();  // releases workers into the stop branch
    for (auto& t : threads) t.join();
  }

  void worker(std::size_t i) {
    for (;;) {
      start.arrive_and_wait();
      if (stop) return;
      owner.sims_[i]->run_until(bound);
      done.arrive_and_wait();
    }
  }

  void run(SimTime b) {
    bound = b;
    start.arrive_and_wait();
    owner.sims_[0]->run_until(b);
    done.arrive_and_wait();
  }
};

ShardedSimulator::ShardedSimulator(std::size_t shards, SimDuration lookahead)
    : requested_shards_(shards == 0 ? 1 : shards) {
  std::size_t effective = requested_shards_;
  if (lookahead < 1) {
    // Nothing bounds cross-shard latency: conservative epochs would have
    // zero width. Run everything on one shard; the epoch loop still needs
    // a positive window to chunk time for the barrier hook.
    effective = 1;
    lookahead = kFallbackEpoch;
  }
  lookahead_ = lookahead;
  sims_.reserve(effective);
  for (std::size_t i = 0; i < effective; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  outboxes_.resize(effective * effective);
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::raise_lookahead(SimDuration lookahead) {
  assert(epochs_ == 0 && "raise_lookahead must precede run_until");
  if (lookahead > lookahead_) lookahead_ = lookahead;
}

std::uint64_t ShardedSimulator::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& s : sims_) total += s->executed_events();
  return total;
}

void ShardedSimulator::post(std::size_t src, std::size_t dst, SimTime t,
                            Simulator::Callback fn) {
  assert(src < sims_.size() && dst < sims_.size());
  assert(t >= epoch_end_ &&
         "cross-shard event inside the current epoch violates lookahead");
  outboxes_[src * sims_.size() + dst].push_back(Posted{t, std::move(fn)});
}

SimTime ShardedSimulator::global_min() {
  SimTime m = kTimeNever;
  for (auto& s : sims_) {
    const SimTime t = s->next_event_time();
    if (t < m) m = t;
  }
  return m;
}

void ShardedSimulator::drain_outboxes() {
  const std::size_t n = sims_.size();
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      auto& row = outboxes_[src * n + dst];
      for (Posted& p : row) {
        sims_[dst]->schedule_at(p.t, std::move(p.fn));
      }
      row.clear();
    }
  }
}

void ShardedSimulator::parallel_run_until(SimTime bound) {
  if (sims_.size() == 1) {
    sims_[0]->run_until(bound);
    return;
  }
  if (!pool_) pool_ = std::make_unique<Pool>(*this);
  pool_->run(bound);
}

void ShardedSimulator::run_until(SimTime until, const BarrierFn& at_barrier) {
  assert(until < kTimeNever);
  for (;;) {
    const SimTime next_min = global_min();
    if (next_min > until) break;  // also covers kTimeNever (empty queues)
    // Epoch end: far enough to cover the lookahead window, but clipped to
    // until + 1 so events at exactly `until` still execute in this call
    // (matching Simulator::run_until semantics).
    SimTime e = until + 1;
    if (lookahead_ < e - next_min) e = next_min + lookahead_;
    epoch_end_ = e;
    parallel_run_until(e - 1);
    drain_outboxes();
    if (at_barrier) at_barrier(e);
    ++epochs_;
  }
  // No events remain at or before `until`: advance every clock to it.
  for (auto& s : sims_) s->run_until(until);
}

}  // namespace mspastry
