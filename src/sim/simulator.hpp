#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/inplace_callback.hpp"
#include "common/sim_time.hpp"

namespace mspastry {

/// Handle to a scheduled event; used to cancel timers. Value 0 is invalid.
///
/// Layout: (generation << 32) | (slot + 1). The low half names a slot in
/// the simulator's timer arena; the high half is that slot's generation
/// at scheduling time. A slot's generation is bumped every time it is
/// released (fire or cancel), so a stale handle — kept around after its
/// timer fired, or after the slot was recycled for a new timer — can
/// never match, and cancel() on it is a safe no-op.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// A single-threaded discrete-event simulator: a clock plus a priority
/// queue of callbacks. Events scheduled for the same instant fire in
/// scheduling order (FIFO), which makes runs deterministic.
///
/// This is the substrate everything else runs on: the network model
/// schedules message deliveries, the overlay nodes schedule protocol
/// timers, and the churn driver schedules joins and failures. The
/// paper's runs push millions of events through it at N = 10,000 nodes,
/// so the internals are built for throughput (see DESIGN.md "Event
/// core"):
///
///  - callbacks live in a slab-allocated arena of fixed-size slots with
///    free-list reuse — schedule/cancel/fire touch no hash table and,
///    for callbacks that fit the inline buffer, no allocator;
///  - cancel() is an O(1) generation check + tombstone: the parked entry
///    is left in place and dropped (lazily) when it surfaces;
///  - a hierarchical timer wheel (4 levels x 64 buckets, 2^10 us ticks)
///    fronts the ready queue: timers further than one tick out park in a
///    bucket and only enter the comparison-ordered heap when the cursor
///    reaches their tick, so the O(N) steady-state periodic load
///    (heartbeats, Trt probes, RT maintenance) costs O(1) per timer and
///    cancelled timers (most RTO timers — acks beat them) never touch
///    the heap at all;
///  - the ready queue is a 4-ary implicit min-heap keyed by (time, seq),
///    which does ~half the levels of a binary heap on pop and keeps
///    sifts within one or two cache lines. Execution order is exactly
///    (time, seq) — the wheel never reorders, it only defers heap entry.
class Simulator {
 public:
  /// Inline capacity for callbacks stored by the simulator. Sized so the
  /// drivers' liveness-guard wrapper (shared_ptr flag + a full
  /// InplaceCallback, see OverlayDriver::NodeEnv) still fits without a
  /// heap fallback.
  static constexpr std::size_t kCallbackCapacity =
      16 + sizeof(InplaceCallback);
  using Callback = BasicInplaceCallback<kCallbackCapacity>;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now). Returns a handle
  /// that can be passed to cancel(). The templated overload constructs
  /// the callable directly in its arena slot (no relocation); the
  /// Callback overload serves callers that already hold a type-erased
  /// callback (the Env::schedule guard path).
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Callback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  TimerId schedule_at(SimTime t, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    slots_[slot].emplace(std::forward<F>(fn));
    return arm_slot(t, slot);
  }

  TimerId schedule_at(SimTime t, Callback fn) {
    const std::uint32_t slot = acquire_slot();
    slots_[slot] = std::move(fn);
    return arm_slot(t, slot);
  }

  /// Schedule `fn` to run `d` after the current time (d >= 0).
  template <typename F>
  TimerId schedule_after(SimDuration d, F&& fn) {
    return schedule_at(now_ + d, std::forward<F>(fn));
  }

  /// Cancel a pending event. O(1). Cancelling an already-fired, already-
  /// cancelled, or invalid handle is a no-op, so callers need not track
  /// firing precisely.
  void cancel(TimerId id);

  /// Execute the next pending event, if any. Returns false when the queue
  /// is empty.
  bool step();

  /// Run events until the queue is empty or the next event is after `t`;
  /// the clock is left at min(t, time of last executed event). Events at
  /// exactly `t` are executed.
  void run_until(SimTime t);

  /// Run until the event queue drains completely.
  void run_to_completion();

  /// Time of the earliest live pending event, or kTimeNever when the
  /// queue is empty. Pumps the wheel (pruning tombstones) so the answer
  /// is exact; the conservative sharded scheduler uses this to compute
  /// epoch windows.
  SimTime next_event_time();

  /// Number of events executed so far (for progress reporting and tests).
  std::uint64_t executed_events() const { return executed_; }

  /// Number of events currently pending. Exact: cancelled events leave
  /// this count immediately even though their heap entries linger as
  /// tombstones until they surface.
  std::size_t pending_events() const { return live_; }

  /// Introspection for perf accounting: arena high-water mark (slots) and
  /// entries currently held across the heap, wheel, and far heap (live
  /// events + unpruned tombstones).
  std::size_t arena_slots() const { return slots_.size(); }
  std::size_t heap_entries() const {
    return heap_.size() + wheel_count_ + far_.size();
  }
  /// Entries parked in wheel buckets or the far heap (not yet promoted to
  /// the ready queue); includes tombstones of cancelled timers.
  std::size_t parked_entries() const { return wheel_count_ + far_.size(); }

 private:
  struct HeapEntry {
    SimTime t;
    std::uint64_t seq;  // FIFO tiebreaker: increases monotonically
    std::uint32_t slot;
    std::uint32_t gen;  // slot generation at scheduling time (odd)
  };

  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  // --- Timer wheel geometry ----------------------------------------------
  // A tick is 2^10 us (~1 ms, on the order of one network hop). Each of
  // the 4 levels has 64 buckets; level k buckets span 64^k ticks, so the
  // wheel covers 64^4 ticks (~4.8 simulated hours). Timers beyond that
  // horizon wait in `far_` (a plain (t, seq) min-heap of churn-trace
  // events, never cancelled in practice) and migrate into the wheel when
  // the cursor gets within range. Bucket indices are absolute tick bits
  // (Varghese-Lauck hashed hierarchical wheel), and the level is chosen
  // from the delta to the cursor, which guarantees an entry's bucket is
  // always entered by the cursor before the entry's tick passes.
  using Tick = std::int64_t;
  static constexpr int kTickShift = 10;
  static constexpr int kLevelBits = 6;
  static constexpr int kWheelLevels = 4;
  static constexpr std::uint32_t kWheelBuckets = 64;
  static constexpr Tick kWheelSpanTicks =
      Tick(1) << (kLevelBits * kWheelLevels);  // 64^4
  static constexpr Tick kTickNever = INT64_MAX;

  static Tick tick_of(SimTime t) { return t >> kTickShift; }

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  /// Marks an acquired slot (callback already stored) as pending at `t`,
  /// parks its entry (heap, wheel, or far heap), and mints the
  /// generation-tagged handle.
  TimerId arm_slot(SimTime t, std::uint32_t slot);

  /// Files an entry by delta to the cursor: current tick (or past) goes
  /// straight to the ready heap, within the wheel span to a bucket, and
  /// beyond to the far heap.
  void place(const HeapEntry& e);

  /// Makes heap_[0] the globally earliest live pending event, advancing
  /// the wheel cursor and draining buckets as needed. Stops early once it
  /// can prove no pending event is at or before `bound` (the heap may
  /// then be empty or its front later than `bound`).
  void pump(SimTime bound);

  /// Moves the cursor to `target` (the minimal occupied span start as
  /// computed by pump), cascading the newly-entered bucket at each level.
  void advance_to(Tick target);

  /// Empties bucket (level, idx), re-filing live entries relative to the
  /// current cursor and dropping cancelled tombstones.
  void cascade(int level, std::uint32_t idx);

  /// Earliest tick at which level `k` can hold an entry (the span start
  /// of its next occupied bucket in cursor order), or kTickNever.
  Tick level_next_tick(int k) const;

  void far_push(const HeapEntry& e);
  void far_pop_front();

  // Slot metadata is kept in a parallel flat array of 8-byte words —
  // generation in the high half, free-list link in the low half — so the
  // hot paths (tombstone checks on every pop, O(1) cancel) touch a dense
  // array instead of the 100+-byte-stride callback arena. A slot's
  // generation is odd while armed and even while free; both arming and
  // releasing increment it, so handle/tombstone matches need no separate
  // "armed" flag: matching an (odd) recorded generation implies armed.
  std::uint32_t slot_gen(std::uint32_t slot) const {
    return static_cast<std::uint32_t>(meta_[slot] >> 32);
  }

  /// True if the heap entry still refers to an armed timer (not a
  /// cancelled tombstone, not a recycled slot).
  bool entry_live(const HeapEntry& e) const {
    return slot_gen(e.slot) == e.gen;
  }

  void heap_push(const HeapEntry& e);
  void heap_pop_front();

  // Pops and runs the event in heap_[0]; precondition: entry_live.
  void execute_front();

  SimTime now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<HeapEntry> heap_;     // 4-ary implicit min-heap on (t, seq)
  std::vector<Callback> slots_;     // timer arena (cold: callbacks only)
  std::vector<std::uint64_t> meta_; // parallel: generation | free link
  std::uint32_t free_head_ = kNoFreeSlot;

  // Wheel state. Invariant: every bucket entry's tick is > cur_tick_;
  // everything at or before the cursor has been promoted to the heap.
  Tick cur_tick_ = 0;
  std::array<std::array<std::vector<HeapEntry>, kWheelBuckets>, kWheelLevels>
      wheel_;
  std::array<std::uint64_t, kWheelLevels> occupied_{};  // per-level masks
  std::size_t wheel_count_ = 0;   // entries across all buckets (+tombstones)
  std::vector<HeapEntry> far_;    // binary min-heap on (t, seq)
  std::vector<HeapEntry> scratch_;  // cascade staging, capacity reused
};

/// A repeating timer built on the simulator: fires `fn` every `period`,
/// first firing one period after construction, until stop() or
/// destruction. Used for timed fault-rule supervision and the chaos
/// harness's invariant polling.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, SimDuration period, Simulator::Callback fn);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();

 private:
  struct State {
    Simulator& sim;
    SimDuration period;
    Simulator::Callback fn;
    bool stopped = false;
    TimerId timer = kInvalidTimer;
  };

  static void arm(const std::shared_ptr<State>& st);

  std::shared_ptr<State> state_;
};

}  // namespace mspastry
