#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sim_time.hpp"

namespace mspastry {

/// Handle to a scheduled event; used to cancel timers. Value 0 is invalid.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// A single-threaded discrete-event simulator: a clock plus a priority
/// queue of callbacks. Events scheduled for the same instant fire in
/// scheduling order (FIFO), which makes runs deterministic.
///
/// This is the substrate everything else runs on: the network model
/// schedules message deliveries, the overlay nodes schedule protocol
/// timers, and the churn driver schedules joins and failures.
class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `t` (>= now). Returns a handle
  /// that can be passed to cancel().
  TimerId schedule_at(SimTime t, Callback fn);

  /// Schedule `fn` to run `d` after the current time (d >= 0).
  TimerId schedule_after(SimDuration d, Callback fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or invalid handle
  /// is a no-op, so callers need not track firing precisely.
  void cancel(TimerId id);

  /// Execute the next pending event, if any. Returns false when the queue
  /// is empty.
  bool step();

  /// Run events until the queue is empty or the next event is after `t`;
  /// the clock is left at min(t, time of last executed event). Events at
  /// exactly `t` are executed.
  void run_until(SimTime t);

  /// Run until the event queue drains completely.
  void run_to_completion();

  /// Number of events executed so far (for progress reporting and tests).
  std::uint64_t executed_events() const { return executed_; }

  /// Number of events currently pending (cancelled-but-unpopped events are
  /// not counted).
  std::size_t pending_events() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    SimTime t;
    TimerId id;  // also the FIFO tiebreaker: ids increase monotonically
    bool operator>(const Entry& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  // Pops and runs one event; precondition: heap not empty after pruning.
  void execute_top();

  // Drop cancelled entries sitting at the top of the heap.
  void prune();

  SimTime now_ = kTimeZero;
  TimerId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<TimerId, Callback> callbacks_;
  std::unordered_set<TimerId> cancelled_;
};

/// A repeating timer built on the simulator: fires `fn` every `period`,
/// first firing one period after construction, until stop() or
/// destruction. Used for timed fault-rule supervision and the chaos
/// harness's invariant polling.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, SimDuration period, Simulator::Callback fn);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();

 private:
  struct State {
    Simulator& sim;
    SimDuration period;
    Simulator::Callback fn;
    bool stopped = false;
    TimerId timer = kInvalidTimer;
  };

  static void arm(const std::shared_ptr<State>& st);

  std::shared_ptr<State> state_;
};

}  // namespace mspastry
