#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "apps/app_mux.hpp"

namespace mspastry::apps {

/// A Scribe-like application-level multicast system (Castro, Druschel,
/// Kermarrec, Rowstron): a group is named by a key; the key's root is the
/// rendezvous point. Subscriptions are routed toward the root, and each
/// node along the route splices itself into the tree (via the common-API
/// forward() upcall), recording the previous hop as a child. Published
/// messages flow from the root down the reverse-path tree.
///
/// Tree state is soft: members should re-subscribe periodically (as in
/// Scribe) so the tree heals around failed forwarders.
class MulticastService final : public Application {
 public:
  explicit MulticastService(overlay::OverlayDriver& driver)
      : driver_(driver) {}

  static NodeId group_id(const std::string& name) {
    return NodeId::hash_of("group:" + name);
  }

  /// Subscribe the node at `member` to the group. Safe to call repeatedly
  /// (soft-state refresh).
  void subscribe(net::Address member, NodeId group);

  /// Enable Scribe's soft-state maintenance: every `interval`, each live
  /// member re-subscribes to each of its groups, healing tree edges that
  /// broke when forwarders failed. Call once.
  void enable_auto_refresh(SimDuration interval);

  /// Publish a message to the group from node `via`: routed to the
  /// rendezvous root, then disseminated down the tree.
  void publish(net::Address via, NodeId group, std::uint64_t msg_id);

  /// Invoked once per (member, message) delivery.
  std::function<void(net::Address member, NodeId group, std::uint64_t msg)>
      on_message;

  struct Stats {
    std::uint64_t subscribes = 0;
    std::uint64_t publishes = 0;
    std::uint64_t deliveries = 0;
    std::uint64_t forwards = 0;  ///< tree-edge transmissions
  };
  const Stats& stats() const { return stats_; }

  /// Tree introspection (tests): children of a node for a group.
  std::size_t children_of(net::Address node, NodeId group) const;
  bool is_member(net::Address node, NodeId group) const;

  // Application interface ---------------------------------------------------
  bool deliver(net::Address self, const pastry::LookupMsg& m) override;
  ForwardVerdict forward(net::Address self, const pastry::LookupMsg& m,
                         const pastry::NodeDescriptor& next) override;
  bool packet(net::Address self, net::Address from,
              const net::PacketPtr& p) override;

 private:
  struct SubscribeData final : net::Packet {
    NodeId group;
    net::Address member = net::kNullAddress;
  };
  struct PublishData final : net::Packet {
    NodeId group;
    std::uint64_t msg_id = 0;
  };
  struct TreeData final : net::Packet {
    NodeId group;
    std::uint64_t msg_id = 0;
  };

  struct GroupState {
    std::unordered_set<net::Address> children;
    bool member = false;
    bool in_tree = false;  ///< this node forwards for the group
  };

  void splice(net::Address self, const SubscribeData& sub,
              net::Address child);
  void disseminate(net::Address self, NodeId group, std::uint64_t msg_id);

  void refresh_tick();

  overlay::OverlayDriver& driver_;
  Stats stats_;
  SimDuration refresh_interval_ = 0;  // 0 = auto-refresh off
  /// Per-node, per-group forwarding state.
  std::unordered_map<net::Address, std::unordered_map<NodeId, GroupState>>
      state_;
  /// Per-node duplicate suppression: (group, msg) pairs already seen.
  std::unordered_map<net::Address,
                     std::unordered_set<std::uint64_t>>
      seen_;
};

}  // namespace mspastry::apps
