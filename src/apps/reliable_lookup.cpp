#include "apps/reliable_lookup.hpp"

namespace mspastry::apps {

std::uint64_t ReliableLookupService::lookup(net::Address via, NodeId key,
                                            Callback done) {
  const std::uint64_t op = next_op_++;
  Pending p;
  p.via = via;
  p.key = key;
  p.done = std::move(done);
  pending_.emplace(op, std::move(p));
  ++stats_.requests;
  transmit(op);
  return op;
}

void ReliableLookupService::transmit(std::uint64_t op) {
  auto it = pending_.find(op);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (driver_.node(p.via) == nullptr) {
    // The requester itself died: the request dies with it.
    Pending finished = std::move(p);
    pending_.erase(it);
    ++stats_.failures;
    if (finished.done) finished.done(false, net::kNullAddress);
    return;
  }
  auto data = pastry::make_msg<RequestData>(driver_.pool());
  data->op = op;
  data->requester = p.via;
  driver_.issue_lookup(p.via, p.key, op, data);
  p.timer = driver_.sim().schedule_after(params_.retry_after,
                                         [this, op] { on_timeout(op); });
}

void ReliableLookupService::on_timeout(std::uint64_t op) {
  auto it = pending_.find(op);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  p.timer = kInvalidTimer;
  if (p.retries >= params_.max_retries) {
    Pending finished = std::move(p);
    pending_.erase(it);
    ++stats_.failures;
    if (finished.done) finished.done(false, net::kNullAddress);
    return;
  }
  p.retries += 1;
  ++stats_.retransmissions;
  transmit(op);
}

bool ReliableLookupService::deliver(net::Address self,
                                    const pastry::LookupMsg& m) {
  auto req = dynamic_pointer_cast<const RequestData>(m.app_data);
  if (!req) return false;
  auto ack = pastry::make_msg<E2eAck>(driver_.pool());
  ack->op = req->op;
  driver_.send_app_packet(self, req->requester, ack);
  return true;
}

bool ReliableLookupService::packet(net::Address /*self*/, net::Address from,
                                   const net::PacketPtr& pkt) {
  auto ack = dynamic_pointer_cast<const E2eAck>(pkt);
  if (!ack) return false;
  const auto it = pending_.find(ack->op);
  if (it == pending_.end()) return true;  // duplicate ack
  Pending p = std::move(it->second);
  pending_.erase(it);
  if (p.timer != kInvalidTimer) driver_.sim().cancel(p.timer);
  ++stats_.acked;
  if (p.done) p.done(true, from);
  return true;
}

}  // namespace mspastry::apps
