#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "apps/web_workload.hpp"
#include "overlay/sharded_driver.hpp"

namespace mspastry::apps {

/// WebCacheService's shard-count-invariant sibling: the same Squirrel-like
/// cooperative web cache (home-node caching, simulated origin fetches),
/// restructured for the ShardedDriver's app contract:
///  - all mutable state (caches, pending requests, counters) is replicated
///    per shard and only touched by the owning worker;
///  - request ops are keyed (requester uid, per-requester seq), never a
///    shared counter, so ids are identical at any shard count;
///  - URL popularity draws come from the requesting node's own RNG stream
///    (same Zipf-like sampling formula as WebWorkload::pick_url);
///  - the request rate is WebWorkload::rate_at — a pure function of time —
///    evaluated independently by every shard;
///  - request/response payloads implement pastry::CloneableAppData so they
///    can cross shard boundaries at epoch barriers;
///  - end-to-end latencies flow through AppNode::record_latency into the
///    driver's S-invariant ledger (ShardedDriver::app_latency_samples).
class ShardedWebCacheService final : public overlay::ShardedApp {
 public:
  struct Params {
    /// Simulated origin-server fetch time on a cache miss.
    SimDuration origin_delay = milliseconds(150);
    /// Cache capacity per node (objects); 0 = unbounded.
    std::size_t capacity = 0;
    /// Workload shape (diurnal office-hours rate + URL popularity).
    WebWorkloadParams workload;
  };

  explicit ShardedWebCacheService(Params params) : params_(params) {}
  ShardedWebCacheService() : ShardedWebCacheService(Params{}) {}

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;       ///< served from the home-node cache
    std::uint64_t misses = 0;     ///< required an origin fetch
    std::uint64_t responses = 0;  ///< responses received by requesters
  };

  /// Counters summed over shards (call after the run).
  Stats stats() const;

  /// Objects cached across all nodes, summed over shards.
  std::size_t cached_total() const;

  /// The overlay key of workload URL `page` — lets scenarios aim an
  /// eclipse attack at a hot object's home node.
  static NodeId url_key(int page);

  // ShardedApp interface ----------------------------------------------------
  void on_run_start(overlay::ShardedDriver& driver,
                    std::size_t shards) override;
  double workload_rate(SimTime t) const override;
  void workload_tick(const overlay::ShardedDriver::AppNode& node) override;
  void deliver(const overlay::ShardedDriver::AppNode& node,
               const pastry::LookupMsg& m) override;
  void packet(const overlay::ShardedDriver::AppNode& node, net::Address from,
              const net::PacketPtr& packet) override;

 private:
  struct RequestData final : pastry::CloneableAppData {
    std::uint64_t op = 0;
    NodeId url_key;
    net::Address requester = net::kNullAddress;
    net::PacketPtr clone_into(pastry::MessagePool& pool) const override;
  };
  struct ResponseMsg final : pastry::CloneableAppData {
    std::uint64_t op = 0;
    bool was_cached = false;
    net::PacketPtr clone_into(pastry::MessagePool& pool) const override;
  };

  /// One shard's replica; only the owning worker touches it mid-run.
  struct ShardState {
    Stats stats;
    std::unordered_map<net::Address, std::unordered_set<NodeId>> caches;
    std::unordered_map<std::uint64_t, SimTime> pending;  // op -> issue time
    std::unordered_map<net::Address, std::uint32_t> op_seq;
  };

  void respond(const overlay::ShardedDriver::AppNode& node,
               const RequestData& req, bool was_cached);

  Params params_;
  /// Used only for rate_at (const, draw-free); URL draws use node streams.
  WebWorkload shape_{params_.workload, /*seed=*/0};
  std::vector<ShardState> shards_;
};

}  // namespace mspastry::apps
