#include "apps/sharded_web_cache.hpp"

#include <algorithm>
#include <cmath>

namespace mspastry::apps {

net::PacketPtr ShardedWebCacheService::RequestData::clone_into(
    pastry::MessagePool& pool) const {
  return pool.make<RequestData>(*this);
}

net::PacketPtr ShardedWebCacheService::ResponseMsg::clone_into(
    pastry::MessagePool& pool) const {
  return pool.make<ResponseMsg>(*this);
}

NodeId ShardedWebCacheService::url_key(int page) {
  return NodeId::hash_of("http://corp/" + std::to_string(std::max(0, page)));
}

ShardedWebCacheService::Stats ShardedWebCacheService::stats() const {
  Stats total;
  for (const ShardState& s : shards_) {
    total.requests += s.stats.requests;
    total.hits += s.stats.hits;
    total.misses += s.stats.misses;
    total.responses += s.stats.responses;
  }
  return total;
}

std::size_t ShardedWebCacheService::cached_total() const {
  std::size_t total = 0;
  for (const ShardState& s : shards_) {
    for (const auto& [addr, cache] : s.caches) total += cache.size();
  }
  return total;
}

void ShardedWebCacheService::on_run_start(overlay::ShardedDriver&,
                                          std::size_t shards) {
  shards_.assign(shards, ShardState{});
}

double ShardedWebCacheService::workload_rate(SimTime t) const {
  return shape_.rate_at(t);
}

void ShardedWebCacheService::workload_tick(
    const overlay::ShardedDriver::AppNode& node) {
  ShardState& st = shards_[node.shard()];
  // Same Zipf-like draw as WebWorkload::pick_url, but from the node's own
  // stream: the URL sequence a node requests is shard-count-invariant.
  const double u = node.rng().uniform();
  const int page = static_cast<int>(std::pow(
                       static_cast<double>(params_.workload.url_count), u)) -
                   1;
  const NodeId key = url_key(page);

  auto data = pastry::make_msg<RequestData>(node.pool());
  // Ops are (requester uid, per-requester seq): unique, and identical at
  // any shard count (a shared next_op_ counter would interleave).
  const auto self = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(node.self()));
  data->op = ((self + 1) << 32) | st.op_seq[node.self()]++;
  data->url_key = key;
  data->requester = node.self();
  st.pending[data->op] = node.now();
  ++st.stats.requests;
  node.issue_lookup(key, data->op, data);
}

void ShardedWebCacheService::respond(
    const overlay::ShardedDriver::AppNode& node, const RequestData& req,
    bool was_cached) {
  auto resp = pastry::make_msg<ResponseMsg>(node.pool());
  resp->op = req.op;
  resp->was_cached = was_cached;
  node.send_packet(req.requester, resp);
}

void ShardedWebCacheService::deliver(
    const overlay::ShardedDriver::AppNode& node, const pastry::LookupMsg& m) {
  auto req = dynamic_pointer_cast<const RequestData>(m.app_data);
  if (!req) return;
  ShardState& st = shards_[node.shard()];
  auto& cache = st.caches[node.self()];
  if (cache.count(req->url_key) > 0) {
    ++st.stats.hits;
    respond(node, *req, /*was_cached=*/true);
    return;
  }
  ++st.stats.misses;
  // Origin fetch: after the simulated delay, cache the object and respond.
  // The AppNode copy stays valid because the callback is liveness-guarded
  // (dropped if this home node dies first).
  node.schedule(params_.origin_delay, [this, node, req] {
    ShardState& s = shards_[node.shard()];
    auto& c = s.caches[node.self()];
    if (params_.capacity > 0 && c.size() >= params_.capacity) {
      c.erase(c.begin());  // crude eviction; enough for simulation
    }
    c.insert(req->url_key);
    respond(node, *req, /*was_cached=*/false);
  });
}

void ShardedWebCacheService::packet(
    const overlay::ShardedDriver::AppNode& node, net::Address /*from*/,
    const net::PacketPtr& packet) {
  auto resp = dynamic_pointer_cast<const ResponseMsg>(packet);
  if (!resp) return;
  ShardState& st = shards_[node.shard()];
  const auto it = st.pending.find(resp->op);
  if (it == st.pending.end()) return;
  node.record_latency(to_seconds(node.now() - it->second));
  st.pending.erase(it);
  ++st.stats.responses;
}

}  // namespace mspastry::apps
