#include "apps/multicast.hpp"

namespace mspastry::apps {

namespace {
std::uint64_t dedup_key(NodeId group, std::uint64_t msg_id) {
  return std::hash<NodeId>{}(group) ^ (msg_id * 0x9e3779b97f4a7c15ull);
}
}  // namespace

void MulticastService::enable_auto_refresh(SimDuration interval) {
  if (refresh_interval_ > 0) return;  // already running
  refresh_interval_ = interval;
  driver_.sim().schedule_after(interval, [this] { refresh_tick(); });
}

void MulticastService::refresh_tick() {
  driver_.sim().schedule_after(refresh_interval_, [this] { refresh_tick(); });
  // Snapshot first: subscribing routes lookups, whose upcalls touch state_.
  std::vector<std::pair<net::Address, NodeId>> memberships;
  for (const auto& [addr, groups] : state_) {
    if (driver_.node(addr) == nullptr) continue;  // session gone
    for (const auto& [group, st] : groups) {
      if (st.member) memberships.emplace_back(addr, group);
    }
  }
  for (const auto& [addr, group] : memberships) subscribe(addr, group);
}

void MulticastService::subscribe(net::Address member, NodeId group) {
  ++stats_.subscribes;
  state_[member][group].member = true;
  auto data = pastry::make_msg<SubscribeData>(driver_.pool());
  data->group = group;
  data->member = member;
  driver_.issue_lookup(member, group, 0, data);
}

void MulticastService::publish(net::Address via, NodeId group,
                               std::uint64_t msg_id) {
  ++stats_.publishes;
  auto data = pastry::make_msg<PublishData>(driver_.pool());
  data->group = group;
  data->msg_id = msg_id;
  driver_.issue_lookup(via, group, msg_id, data);
}

std::size_t MulticastService::children_of(net::Address node,
                                          NodeId group) const {
  const auto nit = state_.find(node);
  if (nit == state_.end()) return 0;
  const auto git = nit->second.find(group);
  return git == nit->second.end() ? 0 : git->second.children.size();
}

bool MulticastService::is_member(net::Address node, NodeId group) const {
  const auto nit = state_.find(node);
  if (nit == state_.end()) return false;
  const auto git = nit->second.find(group);
  return git != nit->second.end() && git->second.member;
}

void MulticastService::splice(net::Address self, const SubscribeData& sub,
                              net::Address child) {
  auto& st = state_[self][sub.group];
  if (child != net::kNullAddress && child != self) {
    st.children.insert(child);
  }
}

MulticastService::ForwardVerdict MulticastService::forward(
    net::Address self, const pastry::LookupMsg& m,
    const pastry::NodeDescriptor& /*next*/) {
  auto sub = dynamic_pointer_cast<const SubscribeData>(m.app_data);
  if (!sub) {
    // Publish lookups are recognised but always continue to the root.
    if (dynamic_pointer_cast<const PublishData>(m.app_data)) {
      return {true, false};
    }
    return {};
  }
  // Origin hop: the member is routing its own subscribe; nothing to
  // splice yet (m.sender is stamped only on transmission).
  if (!m.sender.valid() || m.sender.addr == self) {
    return {true, false};
  }
  auto& st = state_[self][sub->group];
  const bool was_in_tree = st.in_tree || st.member;
  splice(self, *sub, m.sender.addr);
  if (was_in_tree) {
    // Already part of the tree: absorb the join here (Scribe).
    return {true, true};
  }
  st.in_tree = true;  // this node now forwards for the group
  return {true, false};
}

bool MulticastService::deliver(net::Address self, const pastry::LookupMsg& m) {
  if (auto sub = dynamic_pointer_cast<const SubscribeData>(m.app_data)) {
    auto& st = state_[self][sub->group];
    st.in_tree = true;  // the rendezvous root anchors the tree
    const net::Address child =
        m.sender.valid() && m.sender.addr != self ? m.sender.addr
                                                  : net::kNullAddress;
    splice(self, *sub, child);
    return true;
  }
  if (auto pub = dynamic_pointer_cast<const PublishData>(m.app_data)) {
    disseminate(self, pub->group, pub->msg_id);
    return true;
  }
  return false;
}

void MulticastService::disseminate(net::Address self, NodeId group,
                                   std::uint64_t msg_id) {
  auto& seen = seen_[self];
  if (!seen.insert(dedup_key(group, msg_id)).second) return;
  const auto& st = state_[self][group];
  if (st.member) {
    ++stats_.deliveries;
    if (on_message) on_message(self, group, msg_id);
  }
  for (const net::Address child : st.children) {
    auto data = pastry::make_msg<TreeData>(driver_.pool());
    data->group = group;
    data->msg_id = msg_id;
    ++stats_.forwards;
    driver_.send_app_packet(self, child, data);
  }
}

bool MulticastService::packet(net::Address self, net::Address /*from*/,
                              const net::PacketPtr& p) {
  auto tree = dynamic_pointer_cast<const TreeData>(p);
  if (!tree) return false;
  disseminate(self, tree->group, tree->msg_id);
  return true;
}

}  // namespace mspastry::apps
