#include "apps/web_cache.hpp"

namespace mspastry::apps {

WebCacheService::WebCacheService(overlay::OverlayDriver& driver,
                                 Params params)
    : driver_(driver), params_(params) {}

std::uint64_t WebCacheService::request(net::Address via,
                                       const std::string& url) {
  const NodeId key = NodeId::hash_of(url);
  auto data = pastry::make_msg<RequestData>(driver_.pool());
  data->op = next_op_++;
  data->url_key = key;
  data->requester = via;
  pending_[data->op] = driver_.sim().now();
  ++stats_.requests;
  driver_.issue_lookup(via, key, data->op, data);
  return data->op;
}

std::size_t WebCacheService::cached_on(net::Address a) const {
  const auto it = caches_.find(a);
  return it == caches_.end() ? 0 : it->second.size();
}

void WebCacheService::respond(net::Address home, const RequestData& req,
                              bool was_cached) {
  auto resp = pastry::make_msg<ResponseMsg>(driver_.pool());
  resp->op = req.op;
  resp->was_cached = was_cached;
  driver_.send_app_packet(home, req.requester, resp);
}

bool WebCacheService::deliver(net::Address self, const pastry::LookupMsg& m) {
  auto req = dynamic_pointer_cast<const RequestData>(m.app_data);
  if (!req) return false;
  auto& cache = caches_[self];
  if (cache.count(req->url_key) > 0) {
    ++stats_.hits;
    respond(self, *req, /*was_cached=*/true);
    return true;
  }
  ++stats_.misses;
  // Origin fetch: after the simulated delay, cache the object and respond
  // (if this node is still alive, which the scheduled lambda checks by
  // consulting the driver).
  driver_.sim().schedule_after(
      params_.origin_delay, [this, self, req] {
        if (driver_.node(self) == nullptr) return;  // home node died
        auto& c = caches_[self];
        if (params_.capacity > 0 && c.size() >= params_.capacity) {
          c.erase(c.begin());  // crude eviction; enough for simulation
        }
        c.insert(req->url_key);
        respond(self, *req, /*was_cached=*/false);
      });
  return true;
}

bool WebCacheService::packet(net::Address /*self*/, net::Address /*from*/,
                             const net::PacketPtr& p) {
  auto resp = dynamic_pointer_cast<const ResponseMsg>(p);
  if (!resp) return false;
  const auto it = pending_.find(resp->op);
  if (it == pending_.end()) return true;
  latencies_.add(to_seconds(driver_.sim().now() - it->second));
  pending_.erase(it);
  ++stats_.responses;
  return true;
}

}  // namespace mspastry::apps
