#include "apps/kv_store.hpp"

namespace mspastry::apps {

KvStoreService::KvStoreService(overlay::OverlayDriver& driver, int replicas)
    : driver_(driver), replicas_(replicas) {}

std::uint64_t KvStoreService::put(net::Address via, const std::string& key,
                                  std::string value, PutCallback done) {
  const NodeId key_id = NodeId::hash_of(key);
  auto data = pastry::make_msg<PutData>(driver_.pool());
  data->op = next_op_++;
  data->key_id = key_id;
  data->value = std::move(value);
  data->requester = via;
  pending_[data->op] = Pending{std::move(done), {}};
  ++stats_.puts;
  driver_.issue_lookup(via, key_id, data->op, data);
  return data->op;
}

std::uint64_t KvStoreService::get(net::Address via, const std::string& key,
                                  GetCallback done) {
  const NodeId key_id = NodeId::hash_of(key);
  auto data = pastry::make_msg<GetData>(driver_.pool());
  data->op = next_op_++;
  data->key_id = key_id;
  data->requester = via;
  pending_[data->op] = Pending{{}, std::move(done)};
  ++stats_.gets;
  driver_.issue_lookup(via, key_id, data->op, data);
  return data->op;
}

void KvStoreService::enable_repair(SimDuration interval) {
  if (repair_interval_ > 0) return;
  repair_interval_ = interval;
  driver_.sim().schedule_after(interval, [this] { repair_tick(); });
}

void KvStoreService::repair_tick() {
  driver_.sim().schedule_after(repair_interval_, [this] { repair_tick(); });
  // Snapshot (addr, key, value) triples first: replicate() writes into
  // stores_ of other nodes while we iterate.
  struct Item {
    net::Address addr;
    NodeId key;
    std::string value;
  };
  std::vector<Item> owned;
  for (const auto& [addr, store] : stores_) {
    const pastry::PastryNode* n = driver_.node(addr);
    if (n == nullptr || !n->active()) continue;
    for (const auto& [key, value] : store) {
      if (n->believes_root_of(key)) owned.push_back({addr, key, value});
    }
  }
  for (const auto& item : owned) {
    replicate(item.addr, item.key, item.value);
  }
}

std::size_t KvStoreService::stored_on(net::Address a) const {
  const auto it = stores_.find(a);
  return it == stores_.end() ? 0 : it->second.size();
}

void KvStoreService::replicate(net::Address root, NodeId key_id,
                               const std::string& value) {
  const pastry::PastryNode* n = driver_.node(root);
  if (n == nullptr) return;
  // Closest leaf-set neighbours, half per side (the members vector is
  // sorted by clockwise distance: front = successors, back = predecessors).
  const auto& members = n->leaf_set().members();
  const int per_side = replicas_ / 2;
  std::vector<net::Address> targets;
  const int sz = static_cast<int>(members.size());
  for (int i = 0; i < per_side && i < sz; ++i) {
    targets.push_back(members[static_cast<std::size_t>(i)].addr);
  }
  for (int i = 0; i < replicas_ - per_side && sz - 1 - i >= per_side; ++i) {
    targets.push_back(members[static_cast<std::size_t>(sz - 1 - i)].addr);
  }
  for (const net::Address t : targets) {
    auto r = pastry::make_msg<ReplicateMsg>(driver_.pool());
    r->key_id = key_id;
    r->value = value;
    driver_.send_app_packet(root, t, r);
  }
}

bool KvStoreService::deliver(net::Address self, const pastry::LookupMsg& m) {
  if (auto putd = dynamic_pointer_cast<const PutData>(m.app_data)) {
    stores_[self][putd->key_id] = putd->value;
    replicate(self, putd->key_id, putd->value);
    auto resp = pastry::make_msg<ResponseMsg>(driver_.pool());
    resp->op = putd->op;
    resp->is_put = true;
    resp->found = true;
    driver_.send_app_packet(self, putd->requester, resp);
    return true;
  }
  if (auto getd = dynamic_pointer_cast<const GetData>(m.app_data)) {
    auto resp = pastry::make_msg<ResponseMsg>(driver_.pool());
    resp->op = getd->op;
    resp->is_put = false;
    const auto& store = stores_[self];
    const auto it = store.find(getd->key_id);
    if (it != store.end()) {
      resp->found = true;
      resp->value = it->second;
    }
    driver_.send_app_packet(self, getd->requester, resp);
    return true;
  }
  return false;
}

bool KvStoreService::packet(net::Address self, net::Address /*from*/,
                            const net::PacketPtr& p) {
  if (auto rep = dynamic_pointer_cast<const ReplicateMsg>(p)) {
    stores_[self][rep->key_id] = rep->value;
    ++stats_.replicas_stored;
    return true;
  }
  if (auto resp = dynamic_pointer_cast<const ResponseMsg>(p)) {
    const auto it = pending_.find(resp->op);
    if (it == pending_.end()) return true;
    Pending pending = std::move(it->second);
    pending_.erase(it);
    if (resp->is_put) {
      if (pending.put_cb) pending.put_cb(resp->found);
    } else {
      if (resp->found) {
        ++stats_.get_hits;
      } else {
        ++stats_.get_misses;
      }
      if (pending.get_cb) pending.get_cb(resp->found, resp->value);
    }
    return true;
  }
  return false;
}

}  // namespace mspastry::apps
