#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "apps/app_mux.hpp"

namespace mspastry::apps {

/// A PAST-like replicated key-value store on top of MSPastry: values live
/// at the key's root node and are replicated to the nearest leaf-set
/// neighbours, so they survive root failures (the archival-storage use
/// case the paper's introduction cites for consistent routing).
class KvStoreService final : public Application {
 public:
  /// `replicas` additional copies beyond the root (spread over the
  /// closest leaf-set neighbours, half per side).
  KvStoreService(overlay::OverlayDriver& driver, int replicas = 4);

  using PutCallback = std::function<void(bool ok)>;
  using GetCallback = std::function<void(bool found, const std::string&)>;

  /// Store key -> value, initiated from node `via`.
  std::uint64_t put(net::Address via, const std::string& key,
                    std::string value, PutCallback done = {});

  /// Fetch a value, initiated from node `via`.
  std::uint64_t get(net::Address via, const std::string& key,
                    GetCallback done = {});

  struct Stats {
    std::uint64_t puts = 0;
    std::uint64_t gets = 0;
    std::uint64_t get_hits = 0;
    std::uint64_t get_misses = 0;
    std::uint64_t replicas_stored = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Number of objects held by a node (root copies + replicas).
  std::size_t stored_on(net::Address a) const;

  /// Enable PAST-like replica maintenance: every `interval`, each live
  /// node scans its store; for every object it believes it is the root
  /// of, it re-replicates to its current leaf-set neighbours. This keeps
  /// the replica set aligned with the ring as nodes come and go, so data
  /// survives arbitrarily many sequential root failures (not just the
  /// first). Call once.
  void enable_repair(SimDuration interval);

  // Application interface ---------------------------------------------------
  bool deliver(net::Address self, const pastry::LookupMsg& m) override;
  bool packet(net::Address self, net::Address from,
              const net::PacketPtr& p) override;

 private:
  struct PutData final : net::Packet {
    std::uint64_t op = 0;
    NodeId key_id;
    std::string value;
    net::Address requester = net::kNullAddress;
  };
  struct GetData final : net::Packet {
    std::uint64_t op = 0;
    NodeId key_id;
    net::Address requester = net::kNullAddress;
  };
  struct ReplicateMsg final : net::Packet {
    NodeId key_id;
    std::string value;
  };
  struct ResponseMsg final : net::Packet {
    std::uint64_t op = 0;
    bool is_put = false;
    bool found = false;
    std::string value;
  };

  void replicate(net::Address root, NodeId key_id, const std::string& value);
  void repair_tick();

  overlay::OverlayDriver& driver_;
  int replicas_;
  Stats stats_;
  SimDuration repair_interval_ = 0;  // 0 = repair off
  std::uint64_t next_op_ = 1;

  struct Pending {
    PutCallback put_cb;
    GetCallback get_cb;
  };
  std::unordered_map<std::uint64_t, Pending> pending_;

  /// Per-session object stores (a crashed node loses its store; that is
  /// the point of replication).
  std::unordered_map<net::Address,
                     std::unordered_map<NodeId, std::string>>
      stores_;
};

}  // namespace mspastry::apps
