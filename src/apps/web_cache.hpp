#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "apps/app_mux.hpp"
#include "common/stats.hpp"

namespace mspastry::apps {

/// A Squirrel-like decentralized cooperative web cache (Iyer, Rowstron,
/// Druschel): every participating desktop runs a proxy; a web object's
/// URL is hashed to a key, and the key's root node is the object's "home
/// node", responsible for caching it. Requests are routed through
/// MSPastry to the home node; on a miss the home node fetches from the
/// origin server (simulated as a configurable delay) and caches.
///
/// This is the application used to validate the paper's simulator
/// (Figure 8).
class WebCacheService final : public Application {
 public:
  struct Params {
    /// Simulated origin-server fetch time on a cache miss.
    SimDuration origin_delay = milliseconds(150);
    /// Cache capacity per node (objects); 0 = unbounded.
    std::size_t capacity = 0;
  };

  WebCacheService(overlay::OverlayDriver& driver, Params params);
  explicit WebCacheService(overlay::OverlayDriver& driver)
      : WebCacheService(driver, Params{}) {}

  /// Issue a web request for `url` from the proxy running on `via`.
  std::uint64_t request(net::Address via, const std::string& url);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t hits = 0;          ///< served from the home-node cache
    std::uint64_t misses = 0;        ///< required an origin fetch
    std::uint64_t responses = 0;     ///< responses received by requesters
  };
  const Stats& stats() const { return stats_; }

  /// End-to-end request latencies (seconds), requester-side.
  SampleSet& latencies() { return latencies_; }

  std::size_t cached_on(net::Address a) const;

  // Application interface ---------------------------------------------------
  bool deliver(net::Address self, const pastry::LookupMsg& m) override;
  bool packet(net::Address self, net::Address from,
              const net::PacketPtr& p) override;

 private:
  struct RequestData final : net::Packet {
    std::uint64_t op = 0;
    NodeId url_key;
    net::Address requester = net::kNullAddress;
  };
  struct ResponseMsg final : net::Packet {
    std::uint64_t op = 0;
    bool was_cached = false;
  };

  void respond(net::Address home, const RequestData& req, bool was_cached);

  overlay::OverlayDriver& driver_;
  Params params_;
  Stats stats_;
  std::uint64_t next_op_ = 1;
  std::unordered_map<std::uint64_t, SimTime> pending_;  // op -> issue time
  std::unordered_map<net::Address, std::unordered_set<NodeId>> caches_;
  SampleSet latencies_;
};

}  // namespace mspastry::apps
