#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "apps/app_mux.hpp"

namespace mspastry::apps {

/// End-to-end reliable lookups (Section 3.2: "Applications that require
/// guaranteed delivery can use end-to-end acks and retransmissions"): the
/// requester retransmits a lookup until the key's root acknowledges it
/// directly, surviving even the rare losses that per-hop recovery misses
/// (e.g. a lookup buffered at a node that dies mid-join).
class ReliableLookupService final : public Application {
 public:
  struct Params {
    /// Retransmission interval (end-to-end, so much coarser than the
    /// per-hop RTO) and the retry budget before reporting failure.
    SimDuration retry_after = seconds(5);
    int max_retries = 5;
  };

  ReliableLookupService(overlay::OverlayDriver& driver, Params params)
      : driver_(driver), params_(params) {}
  explicit ReliableLookupService(overlay::OverlayDriver& driver)
      : ReliableLookupService(driver, Params{}) {}

  /// done(ok, root_address): ok is false after the retry budget runs out.
  using Callback = std::function<void(bool ok, net::Address root)>;

  std::uint64_t lookup(net::Address via, NodeId key, Callback done = {});

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t acked = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t failures = 0;
  };
  const Stats& stats() const { return stats_; }

  // Application interface --------------------------------------------------
  bool deliver(net::Address self, const pastry::LookupMsg& m) override;
  bool packet(net::Address self, net::Address from,
              const net::PacketPtr& p) override;

 private:
  struct RequestData final : net::Packet {
    std::uint64_t op = 0;
    net::Address requester = net::kNullAddress;
  };
  struct E2eAck final : net::Packet {
    std::uint64_t op = 0;
  };

  struct Pending {
    net::Address via = net::kNullAddress;
    NodeId key;
    int retries = 0;
    Callback done;
    TimerId timer = kInvalidTimer;
  };

  void transmit(std::uint64_t op);
  void on_timeout(std::uint64_t op);

  overlay::OverlayDriver& driver_;
  Params params_;
  Stats stats_;
  std::uint64_t next_op_ = 1;
  std::unordered_map<std::uint64_t, Pending> pending_;
};

}  // namespace mspastry::apps
