#pragma once

#include <memory>
#include <vector>

#include "overlay/driver.hpp"

namespace mspastry::apps {

/// Interface implemented by overlay applications. Each upcall returns true
/// when the application recognised and consumed the event, so several
/// applications can share one overlay (as Squirrel, PAST and Scribe share
/// MSPastry in the paper's deployments).
class Application {
 public:
  virtual ~Application() = default;

  /// A lookup was delivered at `self` (this node is the key's root).
  virtual bool deliver(net::Address self, const pastry::LookupMsg& m) = 0;

  /// A lookup is about to be forwarded from `self`; return {true, consume}
  /// when recognised.
  struct ForwardVerdict {
    bool recognised = false;
    bool consume = false;
  };
  virtual ForwardVerdict forward(net::Address self,
                                 const pastry::LookupMsg& m,
                                 const pastry::NodeDescriptor& next) {
    (void)self;
    (void)m;
    (void)next;
    return {};
  }

  /// A direct (non-overlay) application packet arrived at `self`.
  virtual bool packet(net::Address self, net::Address from,
                      const net::PacketPtr& p) = 0;
};

/// Dispatches driver application hooks to a set of Applications, first
/// claim wins. Install exactly one AppMux per driver.
class AppMux {
 public:
  explicit AppMux(overlay::OverlayDriver& driver) {
    driver.on_app_deliver = [this](net::Address self,
                                   const pastry::LookupMsg& m) {
      for (auto* app : apps_) {
        if (app->deliver(self, m)) return;
      }
    };
    driver.on_app_forward = [this](net::Address self,
                                   const pastry::LookupMsg& m,
                                   const pastry::NodeDescriptor& next) {
      for (auto* app : apps_) {
        const auto v = app->forward(self, m, next);
        if (v.recognised) return v.consume;
      }
      return false;
    };
    driver.on_app_packet = [this](net::Address self, net::Address from,
                                  const net::PacketPtr& p) {
      for (auto* app : apps_) {
        if (app->packet(self, from, p)) return;
      }
    };
  }

  /// Register an application (not owned; must outlive the driver run).
  void attach(Application& app) { apps_.push_back(&app); }

 private:
  std::vector<Application*> apps_;
};

}  // namespace mspastry::apps
