#pragma once

// Synthetic web-browsing workload for the Squirrel-style experiments
// (Figure 8): a non-homogeneous Poisson request process with an
// office-hours weekday pattern, over a Zipf-like URL popularity
// distribution. Used by bench/fig8_squirrel and the web_cache example;
// parameters documented against the MSR-Cambridge deployment the paper
// logs (52 machines, 4 weekdays + a weekend).

#include <cmath>
#include <string>

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace mspastry::apps {

struct WebWorkloadParams {
  /// Peak per-machine request rate at mid-afternoon on a weekday.
  double peak_rate_per_node = 0.02;
  /// Night/weekend floor as a fraction of the weekday office shape.
  double off_hours_floor = 0.05;
  /// Weekend damping of the whole curve.
  double weekend_factor = 0.1;
  /// Day-of-week of simulated time zero (0 = Monday); the paper's trace
  /// starts on a Thursday, putting days 2-3 on the weekend.
  int start_day_of_week = 3;
  /// URL universe size and Zipf-like skew (u^(1/(1-s)) style sampling;
  /// 1.0 approximates the classic web-popularity curve).
  int url_count = 2000;
};

/// Request-rate and URL sampling for the workload.
class WebWorkload {
 public:
  explicit WebWorkload(WebWorkloadParams params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  /// Per-node request rate (requests/second) at simulated time t.
  double rate_at(SimTime t) const {
    const double day = to_seconds(t) / 86400.0;
    const int day_idx = static_cast<int>(day);
    const double hour = (day - day_idx) * 24.0;
    const int dow = (params_.start_day_of_week + day_idx) % 7;
    const bool weekend = dow >= 5;
    const double office =
        hour > 8.0 && hour < 19.0
            ? std::sin((hour - 8.0) / 11.0 * M_PI)  // ramp, peak, ramp
            : params_.off_hours_floor;
    const double shape = std::max(params_.off_hours_floor, office);
    return (weekend ? params_.weekend_factor : 1.0) * shape *
           params_.peak_rate_per_node;
  }

  /// Interval until the next request across `nodes` machines at time t
  /// (thinning is unnecessary because callers re-sample the rate each
  /// event; the rate changes on the hour scale, events on the second
  /// scale).
  SimDuration next_gap(SimTime t, int nodes) {
    const double rate = std::max(1e-4, rate_at(t)) * nodes;
    return from_seconds(rng_.exponential(1.0 / rate));
  }

  /// A URL drawn from the skewed popularity distribution (small indices
  /// are hot).
  std::string pick_url() {
    const double u = rng_.uniform();
    const int page =
        static_cast<int>(std::pow(static_cast<double>(params_.url_count),
                                  u)) -
        1;
    return "http://corp/" + std::to_string(std::max(0, page));
  }

  const WebWorkloadParams& params() const { return params_; }
  Rng& rng() { return rng_; }

 private:
  WebWorkloadParams params_;
  Rng rng_;
};

}  // namespace mspastry::apps
