#include "common/stats.hpp"

#include <cstdio>

namespace mspastry {

std::string format_series(const std::string& header,
                          const std::vector<std::pair<double, double>>& xy) {
  std::string out = header + "\n";
  char buf[64];
  for (const auto& [x, y] : xy) {
    std::snprintf(buf, sizeof buf, "%.6g\t%.6g\n", x, y);
    out += buf;
  }
  return out;
}

}  // namespace mspastry
