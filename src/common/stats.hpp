#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/sim_time.hpp"

namespace mspastry {

/// Incrementally computed mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = HUGE_VAL;
  double max_ = -HUGE_VAL;
};

/// Collects samples and answers quantile / CDF queries. Keeps all samples;
/// suitable for the volumes a simulation run produces (joins, lookups).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }

  std::size_t count() const { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  /// q in [0,1]; nearest-rank quantile.
  double quantile(double q) {
    if (samples_.empty()) return 0.0;
    sort();
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }

  double median() { return quantile(0.5); }

  /// Fraction of samples <= x.
  double cdf(double x) {
    if (samples_.empty()) return 0.0;
    sort();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  /// Evenly spaced CDF points (x, F(x)) for plotting, `points` of them.
  std::vector<std::pair<double, double>> cdf_points(int points) {
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || points <= 0) return out;
    sort();
    const double lo = samples_.front();
    const double hi = samples_.back();
    for (int i = 0; i <= points; ++i) {
      const double x = lo + (hi - lo) * i / points;
      out.emplace_back(x, cdf(x));
    }
    return out;
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  void sort() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = true;
};

/// A time series binned into fixed windows of simulated time: each add()
/// accumulates into the window containing its timestamp. Used for the
/// paper's windowed metrics (control traffic, failure rates, RDP over
/// time).
class WindowedSeries {
 public:
  explicit WindowedSeries(SimDuration window) : window_(window) {}

  void add(SimTime t, double value) {
    auto& bin = bins_[index_of(t)];
    bin.sum += value;
    bin.count += 1;
  }

  void increment(SimTime t) { add(t, 1.0); }

  SimDuration window() const { return window_; }

  struct Point {
    SimTime start;   ///< window start time
    double sum;      ///< sum of values added in the window
    double count;    ///< number of add() calls in the window
    double mean() const { return count > 0 ? sum / count : 0.0; }
  };

  /// All windows with at least one sample, in time order.
  std::vector<Point> points() const {
    std::vector<Point> out;
    out.reserve(bins_.size());
    for (const auto& [idx, bin] : bins_) {
      out.push_back(Point{idx * window_, bin.sum, bin.count});
    }
    return out;
  }

 private:
  struct Bin {
    double sum = 0.0;
    double count = 0.0;
  };

  SimTime index_of(SimTime t) const { return t / window_; }

  SimDuration window_;
  std::map<SimTime, Bin> bins_;  // ordered so points() is chronological
};

/// Writes series as tab-separated text, one row per point, for plotting.
/// Returns the formatted table; callers print or save it.
std::string format_series(const std::string& header,
                          const std::vector<std::pair<double, double>>& xy);

}  // namespace mspastry
