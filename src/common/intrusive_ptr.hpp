#pragma once

// Move-aware smart pointer over RefCounted: a copy is one non-atomic
// increment, a move is free. This is the message path's replacement for
// shared_ptr<const Message> — half the size (no separate control block
// pointer), no allocation, no atomics. See DESIGN.md "Message memory".

#include <cstddef>
#include <type_traits>
#include <utility>

#include "common/ref_counted.hpp"

namespace mspastry {

template <class T>
class IntrusivePtr {
 public:
  using element_type = T;

  constexpr IntrusivePtr() noexcept = default;
  constexpr IntrusivePtr(std::nullptr_t) noexcept {}  // NOLINT

  /// Shares ownership of `p` (increments). A freshly constructed object
  /// has count zero, so wrapping the result of `new T(...)` yields count
  /// one — there is no separate "adopt" path.
  IntrusivePtr(T* p) noexcept : p_(p) {  // NOLINT(runtime/explicit)
    if (p_ != nullptr) intrusive_add_ref(p_);
  }

  IntrusivePtr(const IntrusivePtr& o) noexcept : p_(o.p_) {
    if (p_ != nullptr) intrusive_add_ref(p_);
  }

  IntrusivePtr(IntrusivePtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }

  template <class U,
            class = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  IntrusivePtr(const IntrusivePtr<U>& o) noexcept  // NOLINT
      : p_(o.get()) {
    if (p_ != nullptr) intrusive_add_ref(p_);
  }

  template <class U,
            class = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  IntrusivePtr(IntrusivePtr<U>&& o) noexcept : p_(o.detach()) {}  // NOLINT

  ~IntrusivePtr() {
    if (p_ != nullptr) intrusive_release(p_);
  }

  IntrusivePtr& operator=(const IntrusivePtr& o) noexcept {
    IntrusivePtr(o).swap(*this);
    return *this;
  }

  IntrusivePtr& operator=(IntrusivePtr&& o) noexcept {
    IntrusivePtr(std::move(o)).swap(*this);
    return *this;
  }

  template <class U,
            class = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  IntrusivePtr& operator=(const IntrusivePtr<U>& o) noexcept {
    IntrusivePtr(o).swap(*this);
    return *this;
  }

  template <class U,
            class = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  IntrusivePtr& operator=(IntrusivePtr<U>&& o) noexcept {
    IntrusivePtr(std::move(o)).swap(*this);
    return *this;
  }

  IntrusivePtr& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  T* get() const noexcept { return p_; }
  T& operator*() const noexcept { return *p_; }
  T* operator->() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }

  /// Refcount of the pointee (0 for an empty pointer). Route code uses
  /// this for the clone-elision fast path: a uniquely owned message may
  /// be mutated in place instead of copied.
  std::uint32_t use_count() const noexcept {
    return p_ != nullptr ? p_->use_count() : 0;
  }

  void reset() noexcept {
    if (p_ != nullptr) intrusive_release(p_);
    p_ = nullptr;
  }

  /// Release ownership WITHOUT decrementing; the caller takes over the
  /// reference. Used by the converting move constructor.
  T* detach() noexcept {
    T* p = p_;
    p_ = nullptr;
    return p;
  }

  void swap(IntrusivePtr& o) noexcept { std::swap(p_, o.p_); }

 private:
  T* p_ = nullptr;
};

template <class T, class U>
bool operator==(const IntrusivePtr<T>& a, const IntrusivePtr<U>& b) noexcept {
  return a.get() == b.get();
}
template <class T, class U>
bool operator!=(const IntrusivePtr<T>& a, const IntrusivePtr<U>& b) noexcept {
  return a.get() != b.get();
}
template <class T>
bool operator==(const IntrusivePtr<T>& a, std::nullptr_t) noexcept {
  return a.get() == nullptr;
}
template <class T>
bool operator==(std::nullptr_t, const IntrusivePtr<T>& a) noexcept {
  return a.get() == nullptr;
}
template <class T>
bool operator!=(const IntrusivePtr<T>& a, std::nullptr_t) noexcept {
  return a.get() != nullptr;
}
template <class T>
bool operator!=(std::nullptr_t, const IntrusivePtr<T>& a) noexcept {
  return a.get() != nullptr;
}

/// Heap-allocating factory for refcounted objects that do not come from a
/// pool (tests, one-off payloads): deleted with `delete` when the count
/// hits zero.
template <class T, class... Args>
IntrusivePtr<T> make_refcounted(Args&&... args) {
  return IntrusivePtr<T>(new T(std::forward<Args>(args)...));
}

/// Drop-in equivalents of std::static_pointer_cast / dynamic_pointer_cast
/// for the intrusive pointer (found unqualified via ADL).
template <class To, class From>
IntrusivePtr<To> static_pointer_cast(const IntrusivePtr<From>& p) noexcept {
  return IntrusivePtr<To>(static_cast<To*>(p.get()));
}

template <class To, class From>
IntrusivePtr<To> dynamic_pointer_cast(const IntrusivePtr<From>& p) noexcept {
  return IntrusivePtr<To>(dynamic_cast<To*>(p.get()));
}

}  // namespace mspastry
