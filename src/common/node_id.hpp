#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace mspastry {

/// An unsigned 128-bit integer. Used for Pastry identifiers and for exact
/// arithmetic on the identifier ring (distances, midpoints). Only the
/// operations the overlay needs are provided.
struct U128 {
  std::uint64_t hi{0};
  std::uint64_t lo{0};

  constexpr U128() = default;
  constexpr U128(std::uint64_t h, std::uint64_t l) : hi(h), lo(l) {}

  friend constexpr auto operator<=>(const U128&, const U128&) = default;

  /// Addition modulo 2^128 (the identifier space is a ring).
  friend constexpr U128 operator+(U128 a, U128 b) {
    U128 r;
    r.lo = a.lo + b.lo;
    r.hi = a.hi + b.hi + (r.lo < a.lo ? 1 : 0);
    return r;
  }

  /// Subtraction modulo 2^128.
  friend constexpr U128 operator-(U128 a, U128 b) {
    U128 r;
    r.lo = a.lo - b.lo;
    r.hi = a.hi - b.hi - (a.lo < b.lo ? 1 : 0);
    return r;
  }

  /// Logical right shift by 0..127 bits.
  friend constexpr U128 operator>>(U128 a, int s) {
    if (s == 0) return a;
    if (s >= 64) return U128{0, a.hi >> (s - 64)};
    return U128{a.hi >> s, (a.lo >> s) | (a.hi << (64 - s))};
  }

  /// Logical left shift by 0..127 bits.
  friend constexpr U128 operator<<(U128 a, int s) {
    if (s == 0) return a;
    if (s >= 64) return U128{a.lo << (s - 64), 0};
    return U128{(a.hi << s) | (a.lo >> (64 - s)), a.lo << s};
  }

  /// Value as a double; exact only for small values, used for statistics
  /// such as estimating overlay size from identifier density.
  constexpr double to_double() const {
    return static_cast<double>(hi) * 18446744073709551616.0 +
           static_cast<double>(lo);
  }
};

inline constexpr U128 kU128Max{UINT64_MAX, UINT64_MAX};

/// A Pastry identifier: a 128-bit unsigned integer interpreted as a point on
/// the identifier ring (arithmetic modulo 2^128). Both node identifiers and
/// object keys live in this space; a key is owned by the active node whose
/// identifier is numerically closest to it modulo 2^128 (the key's "root").
class NodeId {
 public:
  constexpr NodeId() = default;
  explicit constexpr NodeId(U128 v) : value_(v) {}
  constexpr NodeId(std::uint64_t hi, std::uint64_t lo) : value_(hi, lo) {}

  constexpr U128 value() const { return value_; }

  friend constexpr auto operator<=>(const NodeId&, const NodeId&) = default;

  /// Clockwise (increasing-identifier) distance from this id to `other`,
  /// i.e. (other - this) mod 2^128.
  constexpr U128 clockwise_distance_to(NodeId other) const {
    return other.value_ - value_;
  }

  /// Distance on the ring: the minimum of the clockwise and
  /// counter-clockwise distances. This is the metric that defines a key's
  /// root node.
  constexpr U128 ring_distance_to(NodeId other) const {
    const U128 cw = other.value_ - value_;
    const U128 ccw = value_ - other.value_;
    return cw < ccw ? cw : ccw;
  }

  /// True if this id is numerically closer to `k` (on the ring) than
  /// `other` is. Ties broken toward the clockwise side so that every key
  /// has exactly one root.
  constexpr bool closer_to(NodeId k, NodeId other) const {
    const U128 a = ring_distance_to(k);
    const U128 b = other.ring_distance_to(k);
    if (a != b) return a < b;
    // Tie: prefer the node counter-clockwise of the key (k - id smallest).
    return k.value_ - value_ < k.value_ - other.value_;
  }

  /// Number of identifier digits when digits have `bits` bits each
  /// (Pastry's parameter b). For b that does not divide 128 the last digit
  /// holds the remaining low-order bits.
  static constexpr int digit_count(int bits) { return (128 + bits - 1) / bits; }

  /// The i-th digit (from the most significant end) in base 2^bits.
  constexpr unsigned digit(int i, int bits) const {
    const int high = 128 - i * bits;           // exclusive high bit position
    const int low = high - bits < 0 ? 0 : high - bits;
    const U128 shifted = value_ >> low;
    const unsigned mask = (1u << (high - low)) - 1u;
    return static_cast<unsigned>(shifted.lo) & mask;
  }

  /// Length of the shared digit prefix of this id and `other` in base
  /// 2^bits. Equal ids share all digit_count(bits) digits.
  constexpr int shared_prefix_length(NodeId other, int bits) const {
    const int n = digit_count(bits);
    for (int i = 0; i < n; ++i) {
      if (digit(i, bits) != other.digit(i, bits)) return i;
    }
    return n;
  }

  /// Hex string, 32 nibbles, most significant first.
  std::string to_string() const;

  /// Parse a hex string produced by to_string(); also accepts shorter
  /// strings (implicitly left-padded with zeros).
  static NodeId from_string(const std::string& hex);

  /// Deterministically derive an id by hashing arbitrary bytes (stand-in
  /// for SHA-1 key generation in applications like Squirrel).
  static NodeId hash_of(const std::string& bytes);

 private:
  U128 value_{};
};

}  // namespace mspastry

template <>
struct std::hash<mspastry::NodeId> {
  std::size_t operator()(const mspastry::NodeId& id) const noexcept {
    const auto v = id.value();
    return std::hash<std::uint64_t>{}(v.hi * 0x9e3779b97f4a7c15ull ^ v.lo);
  }
};
