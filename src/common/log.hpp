#pragma once

// A minimal leveled logger for the simulation harness. Logging in a
// discrete-event simulator must (a) never allocate on the hot path when
// disabled and (b) stamp simulated time, not wall time — both are handled
// here. Off by default; enable per-run via Logger::set_level or the
// MSPASTRY_LOG environment variable ("error", "warn", "info", "debug").

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/sim_time.hpp"

namespace mspastry {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

/// Process-wide logger. Single-threaded by design (the simulator is).
class Logger {
 public:
  static LogLevel level() { return instance().level_; }
  static void set_level(LogLevel l) { instance().level_ = l; }

  /// Route output somewhere else (tests capture it); nullptr = stderr.
  static void set_sink(std::FILE* f) { instance().sink_ = f; }

  static bool enabled(LogLevel l) {
    return static_cast<int>(l) <= static_cast<int>(level());
  }

  /// printf-style; `now` is the simulated time stamped on the line.
  static void log(LogLevel l, SimTime now, const char* component,
                  const char* fmt, ...) {
    if (!enabled(l)) return;
    Logger& self = instance();
    std::FILE* out = self.sink_ != nullptr ? self.sink_ : stderr;
    std::fprintf(out, "[%10.3fs] %-5s %-8s ", to_seconds(now),
                 name_of(l), component);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);
    std::fputc('\n', out);
  }

  static const char* name_of(LogLevel l) {
    switch (l) {
      case LogLevel::kOff: return "off";
      case LogLevel::kError: return "error";
      case LogLevel::kWarn: return "warn";
      case LogLevel::kInfo: return "info";
      case LogLevel::kDebug: return "debug";
    }
    return "?";
  }

  /// Parse a level name; unknown names yield kOff.
  static LogLevel parse(const char* name) {
    if (name == nullptr) return LogLevel::kOff;
    if (std::strcmp(name, "error") == 0) return LogLevel::kError;
    if (std::strcmp(name, "warn") == 0) return LogLevel::kWarn;
    if (std::strcmp(name, "info") == 0) return LogLevel::kInfo;
    if (std::strcmp(name, "debug") == 0) return LogLevel::kDebug;
    return LogLevel::kOff;
  }

 private:
  Logger() {
    level_ = parse(std::getenv("MSPASTRY_LOG"));
  }

  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  LogLevel level_ = LogLevel::kOff;
  std::FILE* sink_ = nullptr;
};

// Convenience macros: the level check happens before argument evaluation.
#define MSPASTRY_LOG_AT(lvl, now, component, ...)                        \
  do {                                                                   \
    if (::mspastry::Logger::enabled(lvl)) {                              \
      ::mspastry::Logger::log(lvl, now, component, __VA_ARGS__);         \
    }                                                                    \
  } while (0)

#define LOG_ERROR(now, component, ...) \
  MSPASTRY_LOG_AT(::mspastry::LogLevel::kError, now, component, __VA_ARGS__)
#define LOG_WARN(now, component, ...) \
  MSPASTRY_LOG_AT(::mspastry::LogLevel::kWarn, now, component, __VA_ARGS__)
#define LOG_INFO(now, component, ...) \
  MSPASTRY_LOG_AT(::mspastry::LogLevel::kInfo, now, component, __VA_ARGS__)
#define LOG_DEBUG(now, component, ...) \
  MSPASTRY_LOG_AT(::mspastry::LogLevel::kDebug, now, component, __VA_ARGS__)

}  // namespace mspastry
