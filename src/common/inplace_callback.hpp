#pragma once

// Move-only callable with small-buffer-optimised inline storage, the
// event core's replacement for std::function. Rationale (see DESIGN.md
// "Event core"): the simulator stores one callback per scheduled event
// and the paper's runs schedule millions of them, so callback storage
// must not heap-allocate on the hot path. std::function's inline buffer
// (16 bytes on libstdc++) is too small for even a [this, seq] capture
// wrapped in a liveness guard; BasicInplaceCallback sizes its buffer for
// the largest timer lambda in src/pastry / src/overlay instead.
//
// Callables larger than the inline capacity (or over-aligned ones) fall
// back to the heap. That is allowed but *counted* — perf_core records
// callback_heap_fallbacks() in BENCH_core.json so a capture that quietly
// outgrows the buffer shows up as a perf regression, not a mystery.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mspastry {

namespace detail {
/// Process-wide tally of callbacks that did not fit inline. Each
/// simulation is single-threaded, but the sweep runner (bench/
/// sweep_runner.hpp) runs independent trials on worker threads, so the
/// counter is a relaxed atomic — uncontended increments stay cheap.
inline std::atomic<std::uint64_t> callback_heap_fallbacks_{0};
}  // namespace detail

/// Number of BasicInplaceCallback constructions (since process start)
/// that had to heap-allocate their callable.
inline std::uint64_t callback_heap_fallbacks() {
  return detail::callback_heap_fallbacks_.load(std::memory_order_relaxed);
}

template <std::size_t InlineCapacity>
class BasicInplaceCallback {
 public:
  static constexpr std::size_t inline_capacity = InlineCapacity;

  BasicInplaceCallback() noexcept = default;
  BasicInplaceCallback(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, BasicInplaceCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  BasicInplaceCallback(F&& f) {  // NOLINT(runtime/explicit)
    construct(std::forward<F>(f));
  }

  /// Destroy the current callable (if any) and store a new one in place —
  /// lets the simulator build callbacks directly in their arena slot
  /// instead of constructing a temporary and relocating it.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, BasicInplaceCallback> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  void emplace(F&& f) {
    reset();
    construct(std::forward<F>(f));
  }

  BasicInplaceCallback(BasicInplaceCallback&& o) noexcept { move_from(o); }

  BasicInplaceCallback& operator=(BasicInplaceCallback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  BasicInplaceCallback(const BasicInplaceCallback&) = delete;
  BasicInplaceCallback& operator=(const BasicInplaceCallback&) = delete;

  ~BasicInplaceCallback() { reset(); }

  /// Invoke the stored callable; must be non-empty.
  void operator()() {
    assert(invoke_ != nullptr && "invoking an empty InplaceCallback");
    invoke_(storage_);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// True when a callable of type D is stored inline (no heap).
  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= InlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  enum class Op { kDestroy, kRelocateTo };

  using InvokeFn = void (*)(void*);
  using ManageFn = void (*)(Op, void* self, void* dst);

  template <typename F>
  void construct(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      invoke_ = &inline_invoke<D>;
      // Trivially copyable callables (the common case: captures of
      // `this`, ids, times) need no manager — relocation is a memcpy of
      // the buffer and destruction is a no-op. The simulator moves every
      // callback twice at most (into its arena slot and back out to
      // fire), so this fast path is worth the branch.
      if constexpr (!std::is_trivially_copyable_v<D> ||
                    !std::is_trivially_destructible_v<D>) {
        manage_ = &inline_manage<D>;
      }
    } else {
      detail::callback_heap_fallbacks_.fetch_add(1,
                                                 std::memory_order_relaxed);
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      invoke_ = &boxed_invoke<D>;
      manage_ = &boxed_manage<D>;
    }
  }

  template <typename D>
  static void inline_invoke(void* s) {
    (*std::launder(reinterpret_cast<D*>(s)))();
  }
  template <typename D>
  static void inline_manage(Op op, void* s, void* dst) {
    D* self = std::launder(reinterpret_cast<D*>(s));
    if (op == Op::kRelocateTo) {
      ::new (dst) D(std::move(*self));
    }
    self->~D();
  }

  template <typename D>
  static void boxed_invoke(void* s) {
    (**std::launder(reinterpret_cast<D**>(s)))();
  }
  template <typename D>
  static void boxed_manage(Op op, void* s, void* dst) {
    D** box = std::launder(reinterpret_cast<D**>(s));
    if (op == Op::kRelocateTo) {
      ::new (dst) D*(*box);  // steal the heap box; no allocation
    } else {
      delete *box;
    }
  }

  void move_from(BasicInplaceCallback& o) noexcept {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (o.manage_ != nullptr) {
      o.manage_(Op::kRelocateTo, o.storage_, storage_);
    } else if (o.invoke_ != nullptr) {
      std::memcpy(storage_, o.storage_, InlineCapacity);  // trivial callable
    }
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[InlineCapacity];
  InvokeFn invoke_ = nullptr;
  ManageFn manage_ = nullptr;
};

/// Inline capacity for protocol-node timer callbacks (pastry/chord via
/// Env::schedule): the largest real capture is [this, NodeDescriptor]
/// = 8 + 24 = 32 bytes; 48 leaves headroom.
inline constexpr std::size_t kEnvCallbackCapacity = 48;
using InplaceCallback = BasicInplaceCallback<kEnvCallbackCapacity>;

}  // namespace mspastry
