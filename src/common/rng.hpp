#pragma once

#include <cstdint>
#include <random>

#include "common/node_id.hpp"

namespace mspastry {

/// Deterministic random source for the whole simulation. A thin wrapper
/// around std::mt19937_64 with the distributions the overlay and the
/// workload generators need. One instance is threaded through the
/// simulation so that a (seed, configuration) pair fully determines a run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal deviate.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal with the given location/scale parameters of the underlying
  /// normal. Used by the churn generators for heavy-tailed session times.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// A fresh identifier drawn uniformly at random from the 128-bit space.
  NodeId node_id() { return NodeId{U128{engine_(), engine_()}}; }

  /// Derive an independent child generator; used to give subsystems their
  /// own streams so adding draws in one subsystem does not perturb others.
  Rng fork() { return Rng(engine_() ^ 0x6a09e667f3bcc909ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mspastry
