#pragma once

#include <cstdint>

namespace mspastry {

/// splitmix64: stable, well-mixed, cheap. Subsystems that must stay
/// shard-count-invariant (the sharded network model, the keyed adversary)
/// derive all their randomness *statelessly* — as a hash of a (seed,
/// identity, per-identity sequence) tuple — so one draw's outcome never
/// depends on how draws from other nodes interleave with it.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return mix64(a ^ mix64(b ^ mix64(c)));
}

/// Uniform in [0, 1) from a hash (53 mantissa bits).
inline double hash_to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace mspastry
