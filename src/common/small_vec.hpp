#pragma once

// Inline-capacity vector for message payloads. Leaf-set and routing-row
// payloads have small, protocol-fixed cardinalities (|L| = 32 members,
// 2^b = 16 columns per row), so a vector sized for the common case keeps
// the whole message — header and payload — inside one pool slab slot and
// makes per-hop clones a flat copy with no allocator round trips.
//
// Elements beyond the inline capacity spill to the heap. That is allowed
// but *counted* (the inplace_callback heap-fallback idiom): perf_core
// records small_vec_spills() so a payload that quietly outgrows its
// capacity shows up as a perf regression, not a mystery. The counter is a
// relaxed atomic because sweep-runner trials run on worker threads.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace mspastry {

namespace detail {
inline std::atomic<std::uint64_t> small_vec_spills_{0};
}  // namespace detail

/// Number of SmallVec grow operations (since process start) that moved a
/// payload to the heap because it outgrew its inline capacity.
inline std::uint64_t small_vec_spills() {
  return detail::small_vec_spills_.load(std::memory_order_relaxed);
}

template <class T, std::size_t N>
class SmallVec {
 public:
  static_assert(N > 0, "inline capacity must be positive");

  using value_type = T;
  using size_type = std::size_t;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept : data_(inline_data()) {}

  SmallVec(const SmallVec& o) : SmallVec() { assign(o.begin(), o.end()); }

  SmallVec(SmallVec&& o) noexcept : SmallVec() { steal_from(o); }

  SmallVec(std::initializer_list<T> init) : SmallVec() {
    assign(init.begin(), init.end());
  }

  /// Converting from std::vector is deliberately implicit: message fields
  /// are assigned from routing-state accessors that return vectors.
  SmallVec(const std::vector<T>& v) : SmallVec() {  // NOLINT
    assign(v.begin(), v.end());
  }

  ~SmallVec() { destroy_all(); }

  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) assign(o.begin(), o.end());
    return *this;
  }

  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      destroy_all();
      steal_from(o);
    }
    return *this;
  }

  SmallVec& operator=(const std::vector<T>& v) {
    assign(v.begin(), v.end());
    return *this;
  }

  SmallVec& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }

  template <class InputIt>
  void assign(InputIt first, InputIt last) {
    clear();
    if constexpr (std::forward_iterator<InputIt>) {
      // Sized sources take the bulk path: one capacity check, then a
      // batch construct (a memcpy for the trivially copyable descriptor
      // payloads this type exists for).
      const auto n = static_cast<size_type>(std::distance(first, last));
      reserve(n);
      std::uninitialized_copy(first, last, data_);
      size_ = n;
    } else {
      for (; first != last; ++first) push_back(*first);
    }
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }
  const_iterator cbegin() const noexcept { return begin(); }
  const_iterator cend() const noexcept { return end(); }

  size_type size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  size_type capacity() const noexcept { return cap_; }
  static constexpr size_type inline_capacity() noexcept { return N; }
  bool spilled() const noexcept { return data_ != inline_data(); }

  T& operator[](size_type i) noexcept {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](size_type i) const noexcept {
    assert(i < size_);
    return data_[i];
  }
  T& front() noexcept { return data_[0]; }
  const T& front() const noexcept { return data_[0]; }
  T& back() noexcept { return data_[size_ - 1]; }
  const T& back() const noexcept { return data_[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <class... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow(size_ + 1);
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() noexcept {
    assert(size_ > 0);
    data_[--size_].~T();
  }

  /// Insert before `pos`, shifting the tail right. Takes the value by
  /// value so inserting an element of *this cannot alias the shift.
  iterator insert(const_iterator pos, T v) {
    const size_type i = static_cast<size_type>(pos - data_);
    assert(i <= size_);
    if (size_ == cap_) grow(size_ + 1);
    if (i == size_) {
      ::new (static_cast<void*>(data_ + size_)) T(std::move(v));
    } else {
      ::new (static_cast<void*>(data_ + size_)) T(std::move(data_[size_ - 1]));
      for (size_type j = size_ - 1; j > i; --j) {
        data_[j] = std::move(data_[j - 1]);
      }
      data_[i] = std::move(v);
    }
    ++size_;
    return data_ + i;
  }

  iterator erase(const_iterator pos) {
    const size_type i = static_cast<size_type>(pos - data_);
    assert(i < size_);
    for (size_type j = i; j + 1 < size_; ++j) {
      data_[j] = std::move(data_[j + 1]);
    }
    data_[--size_].~T();
    return data_ + i;
  }

  void clear() noexcept {
    for (size_type i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void reserve(size_type n) {
    if (n > cap_) grow(n);
  }

  void resize(size_type n) {
    if (n < size_) {
      for (size_type i = n; i < size_; ++i) data_[i].~T();
    } else {
      if (n > cap_) grow(n);
      for (size_type i = size_; i < n; ++i) {
        ::new (static_cast<void*>(data_ + i)) T();
      }
    }
    size_ = n;
  }

 private:
  T* inline_data() noexcept {
    return std::launder(reinterpret_cast<T*>(inline_storage_));
  }
  const T* inline_data() const noexcept {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void grow(size_type need) {
    size_type cap = cap_ * 2;
    if (cap < need) cap = need;
    T* fresh = std::allocator<T>{}.allocate(cap);
    for (size_type i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (spilled()) {
      std::allocator<T>{}.deallocate(data_, cap_);
    } else {
      detail::small_vec_spills_.fetch_add(1, std::memory_order_relaxed);
    }
    data_ = fresh;
    cap_ = cap;
  }

  void destroy_all() noexcept {
    clear();
    if (spilled()) std::allocator<T>{}.deallocate(data_, cap_);
  }

  /// Take o's contents; *this must be empty-inline. A spilled source hands
  /// over its heap block; an inline source is moved elementwise (still
  /// cheap: ≤ N moves of trivially movable descriptors).
  void steal_from(SmallVec& o) noexcept {
    if (o.spilled()) {
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = o.inline_data();
      o.size_ = 0;
      o.cap_ = N;
    } else {
      data_ = inline_data();
      size_ = o.size_;
      cap_ = N;
      for (size_type i = 0; i < size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(o.data_[i]));
        o.data_[i].~T();
      }
      o.size_ = 0;
    }
  }

  T* data_;
  size_type size_ = 0;
  size_type cap_ = N;
  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
};

template <class T, std::size_t A, std::size_t B>
bool operator==(const SmallVec<T, A>& a, const SmallVec<T, B>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

template <class T, std::size_t A, std::size_t B>
bool operator!=(const SmallVec<T, A>& a, const SmallVec<T, B>& b) {
  return !(a == b);
}

}  // namespace mspastry
