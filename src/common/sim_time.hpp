#pragma once

#include <cstdint>

namespace mspastry {

/// Simulated time. All protocol and simulator timestamps are integral
/// microseconds so that event ordering is exact and runs are reproducible.
using SimTime = std::int64_t;

/// Durations share the representation of absolute times.
using SimDuration = std::int64_t;

inline constexpr SimTime kTimeZero = 0;

/// A sentinel meaning "never" / "not scheduled".
inline constexpr SimTime kTimeNever = INT64_MAX;

constexpr SimDuration microseconds(std::int64_t us) noexcept { return us; }
constexpr SimDuration milliseconds(std::int64_t ms) noexcept { return ms * 1000; }
constexpr SimDuration seconds(double s) noexcept {
  return static_cast<SimDuration>(s * 1e6);
}
constexpr SimDuration minutes(double m) noexcept { return seconds(m * 60.0); }
constexpr SimDuration hours(double h) noexcept { return seconds(h * 3600.0); }
constexpr SimDuration days(double d) noexcept { return hours(d * 24.0); }

/// Convert a simulated duration to floating-point seconds (for statistics).
constexpr double to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / 1e6;
}

/// Convert floating-point seconds to a simulated duration.
constexpr SimDuration from_seconds(double s) noexcept {
  return static_cast<SimDuration>(s * 1e6);
}

}  // namespace mspastry
