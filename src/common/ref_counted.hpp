#pragma once

// Intrusive, non-atomic reference counting for simulator payloads. The
// discrete-event core is single-threaded by design (the parallel sweep
// runner gives every trial its own Simulator/Network/pool, so refcounts
// are never shared across threads), which makes an atomic control block —
// what shared_ptr pays for on every copy of every message — pure waste on
// the hot path. See DESIGN.md "Message memory".
//
// A RefCounted object may carry a *disposer*: a function pointer invoked
// when the count reaches zero, instead of `delete`. The message pool uses
// this to return pooled objects to their slab; plain heap objects (tests,
// one-off app payloads) leave it null and are deleted normally.

#include <cstdint>

namespace mspastry {

class RefCounted {
 public:
  /// Called when the refcount reaches zero. `ctx` is whatever was passed
  /// to set_disposer (the pool passes the slab slot).
  using Disposer = void (*)(void* ctx, const RefCounted* obj);

  RefCounted() = default;
  /// Copies start a fresh life: the count and disposer are object
  /// identity, not payload. Per-hop message clones depend on this.
  RefCounted(const RefCounted&) noexcept {}
  RefCounted& operator=(const RefCounted&) noexcept { return *this; }
  virtual ~RefCounted() = default;

  /// Number of IntrusivePtrs currently referencing this object.
  std::uint32_t use_count() const noexcept { return refs_; }

  /// Install a custom deleter (for allocators/pools). Must be called
  /// before the object is shared; not part of the copyable state.
  void set_disposer(Disposer d, void* ctx) noexcept {
    dispose_ = d;
    dispose_ctx_ = ctx;
  }

  /// The disposer context, if any (the pool's slab slot). Exposed so the
  /// pool can recover per-slot metadata (generation) for its tests.
  void* disposer_context() const noexcept { return dispose_ctx_; }
  bool pooled() const noexcept { return dispose_ != nullptr; }

 private:
  friend inline void intrusive_add_ref(const RefCounted* p) noexcept;
  friend inline void intrusive_release(const RefCounted* p) noexcept;

  mutable std::uint32_t refs_ = 0;
  Disposer dispose_ = nullptr;
  void* dispose_ctx_ = nullptr;
};

inline void intrusive_add_ref(const RefCounted* p) noexcept { ++p->refs_; }

inline void intrusive_release(const RefCounted* p) noexcept {
  if (--p->refs_ != 0) return;
  if (p->dispose_ != nullptr) {
    p->dispose_(p->dispose_ctx_, p);
  } else {
    delete p;
  }
}

}  // namespace mspastry
