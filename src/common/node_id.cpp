#include "common/node_id.hpp"

#include <cstdio>
#include <stdexcept>

namespace mspastry {

std::string NodeId::to_string() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(value_.hi),
                static_cast<unsigned long long>(value_.lo));
  return std::string(buf);
}

NodeId NodeId::from_string(const std::string& hex) {
  if (hex.empty() || hex.size() > 32) {
    throw std::invalid_argument("NodeId::from_string: bad length");
  }
  U128 v;
  for (char c : hex) {
    unsigned nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<unsigned>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<unsigned>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("NodeId::from_string: bad digit");
    }
    v = (v << 4) + U128{0, nibble};
  }
  return NodeId{v};
}

namespace {

// 64-bit mixer (splitmix64 finaliser); used to build a 128-bit digest.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

NodeId NodeId::hash_of(const std::string& bytes) {
  // FNV-1a over the input into two lanes with distinct offsets, then mixed.
  // Not cryptographic, but uniform and deterministic, which is all the
  // overlay's key-derivation needs in simulation.
  std::uint64_t a = 0xcbf29ce484222325ull;
  std::uint64_t b = 0x84222325cbf29ce4ull;
  for (unsigned char c : bytes) {
    a = (a ^ c) * 0x100000001b3ull;
    b = (b ^ (c + 0x5bull)) * 0x100000001b3ull;
  }
  return NodeId{U128{mix64(a), mix64(b ^ a)}};
}

}  // namespace mspastry
