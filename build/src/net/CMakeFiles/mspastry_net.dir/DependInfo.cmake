
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/corpnet.cpp" "src/net/CMakeFiles/mspastry_net.dir/corpnet.cpp.o" "gcc" "src/net/CMakeFiles/mspastry_net.dir/corpnet.cpp.o.d"
  "/root/repo/src/net/fault_plan.cpp" "src/net/CMakeFiles/mspastry_net.dir/fault_plan.cpp.o" "gcc" "src/net/CMakeFiles/mspastry_net.dir/fault_plan.cpp.o.d"
  "/root/repo/src/net/hier_as.cpp" "src/net/CMakeFiles/mspastry_net.dir/hier_as.cpp.o" "gcc" "src/net/CMakeFiles/mspastry_net.dir/hier_as.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/mspastry_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/mspastry_net.dir/network.cpp.o.d"
  "/root/repo/src/net/routed_graph.cpp" "src/net/CMakeFiles/mspastry_net.dir/routed_graph.cpp.o" "gcc" "src/net/CMakeFiles/mspastry_net.dir/routed_graph.cpp.o.d"
  "/root/repo/src/net/transit_stub.cpp" "src/net/CMakeFiles/mspastry_net.dir/transit_stub.cpp.o" "gcc" "src/net/CMakeFiles/mspastry_net.dir/transit_stub.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mspastry_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mspastry_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
