file(REMOVE_RECURSE
  "CMakeFiles/mspastry_net.dir/corpnet.cpp.o"
  "CMakeFiles/mspastry_net.dir/corpnet.cpp.o.d"
  "CMakeFiles/mspastry_net.dir/fault_plan.cpp.o"
  "CMakeFiles/mspastry_net.dir/fault_plan.cpp.o.d"
  "CMakeFiles/mspastry_net.dir/hier_as.cpp.o"
  "CMakeFiles/mspastry_net.dir/hier_as.cpp.o.d"
  "CMakeFiles/mspastry_net.dir/network.cpp.o"
  "CMakeFiles/mspastry_net.dir/network.cpp.o.d"
  "CMakeFiles/mspastry_net.dir/routed_graph.cpp.o"
  "CMakeFiles/mspastry_net.dir/routed_graph.cpp.o.d"
  "CMakeFiles/mspastry_net.dir/transit_stub.cpp.o"
  "CMakeFiles/mspastry_net.dir/transit_stub.cpp.o.d"
  "libmspastry_net.a"
  "libmspastry_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mspastry_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
