# Empty compiler generated dependencies file for mspastry_net.
# This may be replaced when dependencies are built.
