file(REMOVE_RECURSE
  "libmspastry_net.a"
)
