file(REMOVE_RECURSE
  "CMakeFiles/mspastry_common.dir/node_id.cpp.o"
  "CMakeFiles/mspastry_common.dir/node_id.cpp.o.d"
  "CMakeFiles/mspastry_common.dir/stats.cpp.o"
  "CMakeFiles/mspastry_common.dir/stats.cpp.o.d"
  "libmspastry_common.a"
  "libmspastry_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mspastry_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
