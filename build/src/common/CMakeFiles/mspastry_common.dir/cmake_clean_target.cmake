file(REMOVE_RECURSE
  "libmspastry_common.a"
)
