# Empty dependencies file for mspastry_common.
# This may be replaced when dependencies are built.
