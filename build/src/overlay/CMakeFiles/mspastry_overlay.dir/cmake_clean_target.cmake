file(REMOVE_RECURSE
  "libmspastry_overlay.a"
)
