file(REMOVE_RECURSE
  "CMakeFiles/mspastry_overlay.dir/chaos.cpp.o"
  "CMakeFiles/mspastry_overlay.dir/chaos.cpp.o.d"
  "CMakeFiles/mspastry_overlay.dir/driver.cpp.o"
  "CMakeFiles/mspastry_overlay.dir/driver.cpp.o.d"
  "CMakeFiles/mspastry_overlay.dir/metrics.cpp.o"
  "CMakeFiles/mspastry_overlay.dir/metrics.cpp.o.d"
  "CMakeFiles/mspastry_overlay.dir/oracle.cpp.o"
  "CMakeFiles/mspastry_overlay.dir/oracle.cpp.o.d"
  "libmspastry_overlay.a"
  "libmspastry_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mspastry_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
