# Empty dependencies file for mspastry_overlay.
# This may be replaced when dependencies are built.
