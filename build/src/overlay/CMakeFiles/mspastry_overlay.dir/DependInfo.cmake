
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/overlay/chaos.cpp" "src/overlay/CMakeFiles/mspastry_overlay.dir/chaos.cpp.o" "gcc" "src/overlay/CMakeFiles/mspastry_overlay.dir/chaos.cpp.o.d"
  "/root/repo/src/overlay/driver.cpp" "src/overlay/CMakeFiles/mspastry_overlay.dir/driver.cpp.o" "gcc" "src/overlay/CMakeFiles/mspastry_overlay.dir/driver.cpp.o.d"
  "/root/repo/src/overlay/metrics.cpp" "src/overlay/CMakeFiles/mspastry_overlay.dir/metrics.cpp.o" "gcc" "src/overlay/CMakeFiles/mspastry_overlay.dir/metrics.cpp.o.d"
  "/root/repo/src/overlay/oracle.cpp" "src/overlay/CMakeFiles/mspastry_overlay.dir/oracle.cpp.o" "gcc" "src/overlay/CMakeFiles/mspastry_overlay.dir/oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pastry/CMakeFiles/mspastry_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mspastry_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mspastry_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mspastry_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mspastry_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
