file(REMOVE_RECURSE
  "libmspastry_apps.a"
)
