# Empty dependencies file for mspastry_apps.
# This may be replaced when dependencies are built.
