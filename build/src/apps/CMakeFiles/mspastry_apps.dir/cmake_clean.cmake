file(REMOVE_RECURSE
  "CMakeFiles/mspastry_apps.dir/kv_store.cpp.o"
  "CMakeFiles/mspastry_apps.dir/kv_store.cpp.o.d"
  "CMakeFiles/mspastry_apps.dir/multicast.cpp.o"
  "CMakeFiles/mspastry_apps.dir/multicast.cpp.o.d"
  "CMakeFiles/mspastry_apps.dir/reliable_lookup.cpp.o"
  "CMakeFiles/mspastry_apps.dir/reliable_lookup.cpp.o.d"
  "CMakeFiles/mspastry_apps.dir/web_cache.cpp.o"
  "CMakeFiles/mspastry_apps.dir/web_cache.cpp.o.d"
  "libmspastry_apps.a"
  "libmspastry_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mspastry_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
