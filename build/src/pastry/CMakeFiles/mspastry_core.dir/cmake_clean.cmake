file(REMOVE_RECURSE
  "CMakeFiles/mspastry_core.dir/leaf_set.cpp.o"
  "CMakeFiles/mspastry_core.dir/leaf_set.cpp.o.d"
  "CMakeFiles/mspastry_core.dir/message.cpp.o"
  "CMakeFiles/mspastry_core.dir/message.cpp.o.d"
  "CMakeFiles/mspastry_core.dir/node_consistency.cpp.o"
  "CMakeFiles/mspastry_core.dir/node_consistency.cpp.o.d"
  "CMakeFiles/mspastry_core.dir/node_core.cpp.o"
  "CMakeFiles/mspastry_core.dir/node_core.cpp.o.d"
  "CMakeFiles/mspastry_core.dir/node_join.cpp.o"
  "CMakeFiles/mspastry_core.dir/node_join.cpp.o.d"
  "CMakeFiles/mspastry_core.dir/node_maintenance.cpp.o"
  "CMakeFiles/mspastry_core.dir/node_maintenance.cpp.o.d"
  "CMakeFiles/mspastry_core.dir/routing_table.cpp.o"
  "CMakeFiles/mspastry_core.dir/routing_table.cpp.o.d"
  "CMakeFiles/mspastry_core.dir/self_tuning.cpp.o"
  "CMakeFiles/mspastry_core.dir/self_tuning.cpp.o.d"
  "libmspastry_core.a"
  "libmspastry_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mspastry_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
