# Empty dependencies file for mspastry_core.
# This may be replaced when dependencies are built.
