file(REMOVE_RECURSE
  "libmspastry_core.a"
)
