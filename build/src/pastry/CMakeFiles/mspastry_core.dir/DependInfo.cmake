
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pastry/leaf_set.cpp" "src/pastry/CMakeFiles/mspastry_core.dir/leaf_set.cpp.o" "gcc" "src/pastry/CMakeFiles/mspastry_core.dir/leaf_set.cpp.o.d"
  "/root/repo/src/pastry/message.cpp" "src/pastry/CMakeFiles/mspastry_core.dir/message.cpp.o" "gcc" "src/pastry/CMakeFiles/mspastry_core.dir/message.cpp.o.d"
  "/root/repo/src/pastry/node_consistency.cpp" "src/pastry/CMakeFiles/mspastry_core.dir/node_consistency.cpp.o" "gcc" "src/pastry/CMakeFiles/mspastry_core.dir/node_consistency.cpp.o.d"
  "/root/repo/src/pastry/node_core.cpp" "src/pastry/CMakeFiles/mspastry_core.dir/node_core.cpp.o" "gcc" "src/pastry/CMakeFiles/mspastry_core.dir/node_core.cpp.o.d"
  "/root/repo/src/pastry/node_join.cpp" "src/pastry/CMakeFiles/mspastry_core.dir/node_join.cpp.o" "gcc" "src/pastry/CMakeFiles/mspastry_core.dir/node_join.cpp.o.d"
  "/root/repo/src/pastry/node_maintenance.cpp" "src/pastry/CMakeFiles/mspastry_core.dir/node_maintenance.cpp.o" "gcc" "src/pastry/CMakeFiles/mspastry_core.dir/node_maintenance.cpp.o.d"
  "/root/repo/src/pastry/routing_table.cpp" "src/pastry/CMakeFiles/mspastry_core.dir/routing_table.cpp.o" "gcc" "src/pastry/CMakeFiles/mspastry_core.dir/routing_table.cpp.o.d"
  "/root/repo/src/pastry/self_tuning.cpp" "src/pastry/CMakeFiles/mspastry_core.dir/self_tuning.cpp.o" "gcc" "src/pastry/CMakeFiles/mspastry_core.dir/self_tuning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mspastry_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mspastry_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mspastry_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
