file(REMOVE_RECURSE
  "libmspastry_trace.a"
)
