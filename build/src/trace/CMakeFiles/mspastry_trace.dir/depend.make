# Empty dependencies file for mspastry_trace.
# This may be replaced when dependencies are built.
