file(REMOVE_RECURSE
  "CMakeFiles/mspastry_trace.dir/churn_generators.cpp.o"
  "CMakeFiles/mspastry_trace.dir/churn_generators.cpp.o.d"
  "CMakeFiles/mspastry_trace.dir/churn_trace.cpp.o"
  "CMakeFiles/mspastry_trace.dir/churn_trace.cpp.o.d"
  "libmspastry_trace.a"
  "libmspastry_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mspastry_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
