file(REMOVE_RECURSE
  "CMakeFiles/mspastry_chord.dir/chord_driver.cpp.o"
  "CMakeFiles/mspastry_chord.dir/chord_driver.cpp.o.d"
  "CMakeFiles/mspastry_chord.dir/chord_node.cpp.o"
  "CMakeFiles/mspastry_chord.dir/chord_node.cpp.o.d"
  "libmspastry_chord.a"
  "libmspastry_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mspastry_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
