file(REMOVE_RECURSE
  "libmspastry_chord.a"
)
