# Empty compiler generated dependencies file for mspastry_chord.
# This may be replaced when dependencies are built.
