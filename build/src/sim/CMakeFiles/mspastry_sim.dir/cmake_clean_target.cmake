file(REMOVE_RECURSE
  "libmspastry_sim.a"
)
