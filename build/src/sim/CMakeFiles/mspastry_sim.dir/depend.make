# Empty dependencies file for mspastry_sim.
# This may be replaced when dependencies are built.
