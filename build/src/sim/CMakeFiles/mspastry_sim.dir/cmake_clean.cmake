file(REMOVE_RECURSE
  "CMakeFiles/mspastry_sim.dir/simulator.cpp.o"
  "CMakeFiles/mspastry_sim.dir/simulator.cpp.o.d"
  "libmspastry_sim.a"
  "libmspastry_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mspastry_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
