# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_node_id[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_log[1]_include.cmake")
include("/root/repo/build/tests/test_topologies[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_chaos[1]_include.cmake")
include("/root/repo/build/tests/test_traces[1]_include.cmake")
include("/root/repo/build/tests/test_leaf_set[1]_include.cmake")
include("/root/repo/build/tests/test_routing_table[1]_include.cmake")
include("/root/repo/build/tests/test_self_tuning[1]_include.cmake")
include("/root/repo/build/tests/test_rtt_estimator[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_node_basic[1]_include.cmake")
include("/root/repo/build/tests/test_node_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_node_gossip[1]_include.cmake")
include("/root/repo/build/tests/test_reliable_lookup[1]_include.cmake")
include("/root/repo/build/tests/test_config_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_leave[1]_include.cmake")
include("/root/repo/build/tests/test_convergence[1]_include.cmake")
include("/root/repo/build/tests/test_chord[1]_include.cmake")
include("/root/repo/build/tests/test_chord_routing[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_dependability[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_web_workload[1]_include.cmake")
