
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_chaos.cpp" "tests/CMakeFiles/test_chaos.dir/test_chaos.cpp.o" "gcc" "tests/CMakeFiles/test_chaos.dir/test_chaos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/mspastry_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/mspastry_chord.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/mspastry_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/pastry/CMakeFiles/mspastry_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mspastry_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mspastry_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mspastry_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mspastry_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
