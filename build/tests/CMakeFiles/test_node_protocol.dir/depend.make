# Empty dependencies file for test_node_protocol.
# This may be replaced when dependencies are built.
