file(REMOVE_RECURSE
  "CMakeFiles/test_reliable_lookup.dir/test_reliable_lookup.cpp.o"
  "CMakeFiles/test_reliable_lookup.dir/test_reliable_lookup.cpp.o.d"
  "test_reliable_lookup"
  "test_reliable_lookup.pdb"
  "test_reliable_lookup[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reliable_lookup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
