# Empty dependencies file for test_reliable_lookup.
# This may be replaced when dependencies are built.
