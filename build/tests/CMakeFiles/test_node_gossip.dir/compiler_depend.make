# Empty compiler generated dependencies file for test_node_gossip.
# This may be replaced when dependencies are built.
