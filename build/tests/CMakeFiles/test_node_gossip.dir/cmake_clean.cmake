file(REMOVE_RECURSE
  "CMakeFiles/test_node_gossip.dir/test_node_gossip.cpp.o"
  "CMakeFiles/test_node_gossip.dir/test_node_gossip.cpp.o.d"
  "test_node_gossip"
  "test_node_gossip.pdb"
  "test_node_gossip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
