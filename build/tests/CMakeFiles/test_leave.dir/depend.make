# Empty dependencies file for test_leave.
# This may be replaced when dependencies are built.
