file(REMOVE_RECURSE
  "CMakeFiles/test_leave.dir/test_leave.cpp.o"
  "CMakeFiles/test_leave.dir/test_leave.cpp.o.d"
  "test_leave"
  "test_leave.pdb"
  "test_leave[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
