file(REMOVE_RECURSE
  "CMakeFiles/test_chord_routing.dir/test_chord_routing.cpp.o"
  "CMakeFiles/test_chord_routing.dir/test_chord_routing.cpp.o.d"
  "test_chord_routing"
  "test_chord_routing.pdb"
  "test_chord_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chord_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
