# Empty dependencies file for test_chord_routing.
# This may be replaced when dependencies are built.
