file(REMOVE_RECURSE
  "CMakeFiles/test_node_basic.dir/test_node_basic.cpp.o"
  "CMakeFiles/test_node_basic.dir/test_node_basic.cpp.o.d"
  "test_node_basic"
  "test_node_basic.pdb"
  "test_node_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
