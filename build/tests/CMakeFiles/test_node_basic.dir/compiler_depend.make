# Empty compiler generated dependencies file for test_node_basic.
# This may be replaced when dependencies are built.
