file(REMOVE_RECURSE
  "CMakeFiles/test_dependability.dir/test_dependability.cpp.o"
  "CMakeFiles/test_dependability.dir/test_dependability.cpp.o.d"
  "test_dependability"
  "test_dependability.pdb"
  "test_dependability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dependability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
