# Empty compiler generated dependencies file for test_dependability.
# This may be replaced when dependencies are built.
