# Empty compiler generated dependencies file for test_self_tuning.
# This may be replaced when dependencies are built.
