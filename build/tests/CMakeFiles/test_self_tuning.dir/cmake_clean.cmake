file(REMOVE_RECURSE
  "CMakeFiles/test_self_tuning.dir/test_self_tuning.cpp.o"
  "CMakeFiles/test_self_tuning.dir/test_self_tuning.cpp.o.d"
  "test_self_tuning"
  "test_self_tuning.pdb"
  "test_self_tuning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_self_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
