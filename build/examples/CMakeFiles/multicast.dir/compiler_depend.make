# Empty compiler generated dependencies file for multicast.
# This may be replaced when dependencies are built.
