file(REMOVE_RECURSE
  "CMakeFiles/multicast.dir/multicast.cpp.o"
  "CMakeFiles/multicast.dir/multicast.cpp.o.d"
  "multicast"
  "multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
