file(REMOVE_RECURSE
  "CMakeFiles/churn_observatory.dir/churn_observatory.cpp.o"
  "CMakeFiles/churn_observatory.dir/churn_observatory.cpp.o.d"
  "churn_observatory"
  "churn_observatory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_observatory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
