# Empty dependencies file for churn_observatory.
# This may be replaced when dependencies are built.
