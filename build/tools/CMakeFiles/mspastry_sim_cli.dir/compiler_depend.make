# Empty compiler generated dependencies file for mspastry_sim_cli.
# This may be replaced when dependencies are built.
