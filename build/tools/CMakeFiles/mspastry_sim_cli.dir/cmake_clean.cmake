file(REMOVE_RECURSE
  "CMakeFiles/mspastry_sim_cli.dir/mspastry_sim.cpp.o"
  "CMakeFiles/mspastry_sim_cli.dir/mspastry_sim.cpp.o.d"
  "mspastry-sim"
  "mspastry-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mspastry_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
