# Empty compiler generated dependencies file for tab_topologies.
# This may be replaced when dependencies are built.
