file(REMOVE_RECURSE
  "CMakeFiles/tab_topologies.dir/tab_topologies.cpp.o"
  "CMakeFiles/tab_topologies.dir/tab_topologies.cpp.o.d"
  "tab_topologies"
  "tab_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
