file(REMOVE_RECURSE
  "CMakeFiles/fig6_network_loss.dir/fig6_network_loss.cpp.o"
  "CMakeFiles/fig6_network_loss.dir/fig6_network_loss.cpp.o.d"
  "fig6_network_loss"
  "fig6_network_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_network_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
