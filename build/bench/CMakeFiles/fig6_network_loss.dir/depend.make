# Empty dependencies file for fig6_network_loss.
# This may be replaced when dependencies are built.
