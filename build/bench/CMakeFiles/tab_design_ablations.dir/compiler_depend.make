# Empty compiler generated dependencies file for tab_design_ablations.
# This may be replaced when dependencies are built.
