file(REMOVE_RECURSE
  "CMakeFiles/tab_design_ablations.dir/tab_design_ablations.cpp.o"
  "CMakeFiles/tab_design_ablations.dir/tab_design_ablations.cpp.o.d"
  "tab_design_ablations"
  "tab_design_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_design_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
