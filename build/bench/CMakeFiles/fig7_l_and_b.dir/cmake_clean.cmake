file(REMOVE_RECURSE
  "CMakeFiles/fig7_l_and_b.dir/fig7_l_and_b.cpp.o"
  "CMakeFiles/fig7_l_and_b.dir/fig7_l_and_b.cpp.o.d"
  "fig7_l_and_b"
  "fig7_l_and_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_l_and_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
