# Empty compiler generated dependencies file for fig7_l_and_b.
# This may be replaced when dependencies are built.
