# Empty compiler generated dependencies file for tab_selftuning.
# This may be replaced when dependencies are built.
