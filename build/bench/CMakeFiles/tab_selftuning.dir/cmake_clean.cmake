file(REMOVE_RECURSE
  "CMakeFiles/tab_selftuning.dir/tab_selftuning.cpp.o"
  "CMakeFiles/tab_selftuning.dir/tab_selftuning.cpp.o.d"
  "tab_selftuning"
  "tab_selftuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_selftuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
