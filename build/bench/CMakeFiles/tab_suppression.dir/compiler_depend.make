# Empty compiler generated dependencies file for tab_suppression.
# This may be replaced when dependencies are built.
