file(REMOVE_RECURSE
  "CMakeFiles/tab_suppression.dir/tab_suppression.cpp.o"
  "CMakeFiles/tab_suppression.dir/tab_suppression.cpp.o.d"
  "tab_suppression"
  "tab_suppression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_suppression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
