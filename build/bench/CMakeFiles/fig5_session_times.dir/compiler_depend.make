# Empty compiler generated dependencies file for fig5_session_times.
# This may be replaced when dependencies are built.
