file(REMOVE_RECURSE
  "CMakeFiles/fig5_session_times.dir/fig5_session_times.cpp.o"
  "CMakeFiles/fig5_session_times.dir/fig5_session_times.cpp.o.d"
  "fig5_session_times"
  "fig5_session_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_session_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
