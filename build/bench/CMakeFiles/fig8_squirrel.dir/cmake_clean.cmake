file(REMOVE_RECURSE
  "CMakeFiles/fig8_squirrel.dir/fig8_squirrel.cpp.o"
  "CMakeFiles/fig8_squirrel.dir/fig8_squirrel.cpp.o.d"
  "fig8_squirrel"
  "fig8_squirrel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_squirrel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
