# Empty dependencies file for fig8_squirrel.
# This may be replaced when dependencies are built.
