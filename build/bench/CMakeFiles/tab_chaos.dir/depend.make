# Empty dependencies file for tab_chaos.
# This may be replaced when dependencies are built.
