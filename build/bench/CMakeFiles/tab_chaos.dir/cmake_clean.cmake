file(REMOVE_RECURSE
  "CMakeFiles/tab_chaos.dir/tab_chaos.cpp.o"
  "CMakeFiles/tab_chaos.dir/tab_chaos.cpp.o.d"
  "tab_chaos"
  "tab_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
