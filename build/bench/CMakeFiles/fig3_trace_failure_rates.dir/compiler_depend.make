# Empty compiler generated dependencies file for fig3_trace_failure_rates.
# This may be replaced when dependencies are built.
