# Empty compiler generated dependencies file for tab_baseline.
# This may be replaced when dependencies are built.
