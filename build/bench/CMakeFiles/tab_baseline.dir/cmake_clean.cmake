file(REMOVE_RECURSE
  "CMakeFiles/tab_baseline.dir/tab_baseline.cpp.o"
  "CMakeFiles/tab_baseline.dir/tab_baseline.cpp.o.d"
  "tab_baseline"
  "tab_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
