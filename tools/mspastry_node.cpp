// mspastry-node: one MSPastry overlay node as a real UDP daemon.
//
// Runs the same pastry::PastryNode the simulator runs, against the
// real-time backend (rt::RtRuntime): wall-clock timers, UDP sockets, the
// versioned wire codec. A daemon binds a port, optionally joins an
// overlay through --bootstrap, issues a configurable lookup workload,
// and on SIGTERM/SIGINT (or --duration expiry) dumps its flight-recorder
// ring as an obs JSONL trace and prints a status summary.
//
// Multi-process runs (tools/localnet.cpp) need three things from each
// daemon beyond the protocol itself:
//   --manifest FILE  written at bind time: port, address, id. Survives
//                    SIGKILL, so the launcher knows victim identities.
//   --status FILE    written at activation: the launcher's join gate.
//   --epoch-us N     a shared CLOCK_MONOTONIC base so every process
//                    stamps traces against one clock and dumps merge.
//
// The trace dump is the standard obs format plus daemon rows ("session",
// "issued", "delivery") that the expectation tooling ignores and the
// launcher's correctness gates consume.

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/trace_dump.hpp"
#include "pastry/config.hpp"
#include "rt/runtime.hpp"

using namespace mspastry;

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

struct Options {
  std::uint16_t port = 0;        // 0: ephemeral
  std::string bind_ip;           // empty: 127.0.0.1
  std::string id_hex;            // empty: derive from seed
  std::uint64_t seed = 0;        // 0: derive from pid + time
  std::string bootstrap;         // host:port; empty: bootstrap a new overlay
  std::string bootstrap_id;      // required with --bootstrap
  double lookup_rate = 0.0;      // lookups/s once active
  double duration_s = 0.0;       // 0: run until signalled
  std::string trace_path;
  double trace_sample = 1.0;
  std::string manifest_path;
  std::string status_path;
  SimTime epoch_us = -1;
  std::string preset;            // "localnet" scales protocol timers
  bool help = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --port N            UDP port to bind (default: ephemeral)\n"
      "  --bind IP           local IP to bind (default 127.0.0.1)\n"
      "  --id HEX            128-bit node id (default: random from seed)\n"
      "  --seed N            rng seed (default: pid ^ clock)\n"
      "  --bootstrap H:P     join via this node (default: new overlay)\n"
      "  --bootstrap-id HEX  the bootstrap node's id (required to join)\n"
      "  --lookup-rate R     lookups per second once active (default 0)\n"
      "  --duration S        exit after S seconds (default: until signal)\n"
      "  --trace FILE        dump obs JSONL trace on exit\n"
      "  --trace-sample F    lookup trace sampling rate (default 1.0)\n"
      "  --manifest FILE     write port/addr/id manifest at startup\n"
      "  --status FILE       write this file upon activation\n"
      "  --epoch-us N        shared CLOCK_MONOTONIC time base\n"
      "  --preset localnet   scaled timers for localhost testing\n",
      argv0);
}

bool parse_args(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (a == "--help" || a == "-h") {
      o->help = true;
    } else if (a == "--port") {
      if ((v = next("--port")) == nullptr) return false;
      o->port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (a == "--bind") {
      if ((v = next("--bind")) == nullptr) return false;
      o->bind_ip = v;
    } else if (a == "--id") {
      if ((v = next("--id")) == nullptr) return false;
      o->id_hex = v;
    } else if (a == "--seed") {
      if ((v = next("--seed")) == nullptr) return false;
      o->seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--bootstrap") {
      if ((v = next("--bootstrap")) == nullptr) return false;
      o->bootstrap = v;
    } else if (a == "--bootstrap-id") {
      if ((v = next("--bootstrap-id")) == nullptr) return false;
      o->bootstrap_id = v;
    } else if (a == "--lookup-rate") {
      if ((v = next("--lookup-rate")) == nullptr) return false;
      o->lookup_rate = std::atof(v);
    } else if (a == "--duration") {
      if ((v = next("--duration")) == nullptr) return false;
      o->duration_s = std::atof(v);
    } else if (a == "--trace") {
      if ((v = next("--trace")) == nullptr) return false;
      o->trace_path = v;
    } else if (a == "--trace-sample") {
      if ((v = next("--trace-sample")) == nullptr) return false;
      o->trace_sample = std::atof(v);
    } else if (a == "--manifest") {
      if ((v = next("--manifest")) == nullptr) return false;
      o->manifest_path = v;
    } else if (a == "--status") {
      if ((v = next("--status")) == nullptr) return false;
      o->status_path = v;
    } else if (a == "--epoch-us") {
      if ((v = next("--epoch-us")) == nullptr) return false;
      o->epoch_us = std::strtoll(v, nullptr, 10);
    } else if (a == "--preset") {
      if ((v = next("--preset")) == nullptr) return false;
      o->preset = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

/// Protocol timers scaled for a 50-process localhost overlay: detection
/// and join latencies in seconds instead of the paper's WAN half-minutes,
/// so a CI run converges quickly — while keeping every ratio (retries,
/// RTO clamps vs t_o, heartbeat vs probe period) intact.
pastry::Config localnet_config() {
  pastry::Config cfg;
  cfg.t_ls = seconds(5);
  cfg.t_o = seconds(2);
  cfg.t_rt_min = seconds(6);
  cfg.nn_probe_timeout = milliseconds(500);
  cfg.join_retry = seconds(20);
  cfg.rto_initial = milliseconds(500);
  cfg.rt_maintenance_period = minutes(2);
  return cfg;
}

struct IssuedRec {
  std::uint64_t lookup_id;
  NodeId key;
  SimTime t;
};

struct DeliveryRec {
  std::uint64_t lookup_id;
  NodeId key;
  SimTime t;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return 2;
  if (opt.help) {
    usage(argv[0]);
    return 0;
  }
  if (!opt.bootstrap.empty() && opt.bootstrap_id.empty()) {
    std::fprintf(stderr,
                 "--bootstrap requires --bootstrap-id (the bootstrap's id "
                 "is printed in its manifest/startup line)\n");
    return 2;
  }

  if (opt.seed == 0) {
    opt.seed = static_cast<std::uint64_t>(getpid()) * 0x9E3779B97F4A7C15ull ^
               static_cast<std::uint64_t>(rt::monotonic_micros());
  }

  pastry::Config node_cfg;
  if (opt.preset == "localnet") {
    node_cfg = localnet_config();
  } else if (!opt.preset.empty()) {
    std::fprintf(stderr, "unknown preset %s\n", opt.preset.c_str());
    return 2;
  }

  rt::RtConfig rc;
  rc.workers = 1;
  rc.seed = opt.seed;
  rc.epoch_us = opt.epoch_us;
  rc.obs.enabled = !opt.trace_path.empty();
  rc.obs.sample_rate = opt.trace_sample;
  rc.obs.ring_capacity = 1 << 15;

  rt::RtRuntime runtime(rc, node_cfg);

  Rng rng(opt.seed);
  const NodeId id = opt.id_hex.empty() ? rng.node_id()
                                       : NodeId::from_string(opt.id_hex);

  net::Endpoint bind_ep{0, opt.port};
  if (!opt.bind_ip.empty()) {
    const auto parsed = net::parse_endpoint(opt.bind_ip + ":1");
    if (!parsed) {
      std::fprintf(stderr, "bad --bind ip %s\n", opt.bind_ip.c_str());
      return 2;
    }
    bind_ep.ip = parsed->ip;
  }

  rt::LocalNode* node = runtime.add_node(id, bind_ep);
  if (node == nullptr) {
    std::fprintf(stderr, "cannot bind UDP port %u\n", unsigned{opt.port});
    return 2;
  }

  std::printf("mspastry-node %s addr=%d id=%s\n",
              net::endpoint_to_string(node->endpoint).c_str(),
              node->self.addr, node->self.id.to_string().c_str());
  std::fflush(stdout);

  if (!opt.manifest_path.empty()) {
    std::ofstream mf(opt.manifest_path);
    mf << "{\"row\": \"manifest\", \"port\": " << node->endpoint.port
       << ", \"addr\": " << node->self.addr << ", \"id\": \""
       << node->self.id.to_string() << "\", \"pid\": " << getpid() << "}\n";
  }

  std::atomic<bool> active{false};
  std::atomic<SimTime> activated_at{0};
  node->on_activated = [&] {
    active.store(true);
    activated_at.store(runtime.clock().now());
    if (!opt.status_path.empty()) {
      std::ofstream sf(opt.status_path);
      sf << "active " << runtime.clock().now() << "\n";
    }
  };

  std::mutex log_mu;
  std::vector<IssuedRec> issued;
  std::vector<DeliveryRec> delivered;
  node->on_deliver = [&](const pastry::LookupMsg& m) {
    std::lock_guard<std::mutex> lock(log_mu);
    delivered.push_back(
        DeliveryRec{m.lookup_id, m.key, runtime.clock().now()});
  };

  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  runtime.start();

  if (opt.bootstrap.empty()) {
    runtime.post(*node, [node] { node->node->bootstrap(); });
  } else {
    const auto ep = net::parse_endpoint(opt.bootstrap);
    if (!ep) {
      std::fprintf(stderr, "bad --bootstrap %s\n", opt.bootstrap.c_str());
      return 2;
    }
    const pastry::NodeDescriptor boot =
        runtime.intern_peer(NodeId::from_string(opt.bootstrap_id), *ep);
    node->bootstrap = boot;
    runtime.post(*node, [node, boot] { node->node->join(boot); });
  }

  // Lookup workload: a self-rescheduling timer on the node's worker.
  // Lookup ids are namespaced by port so 50 daemons never collide on a
  // trace id. Exponential gaps give a Poisson stream at --lookup-rate.
  std::atomic<std::uint64_t> lookup_counter{0};
  auto tick = std::make_shared<std::function<void()>>();
  if (opt.lookup_rate > 0) {
    const std::uint64_t id_base = std::uint64_t{node->endpoint.port} << 32;
    // Worker-owned state; only the workload timer callback touches it.
    auto wl_rng = std::make_shared<Rng>(opt.seed ^ 0xABCDEF);
    const double rate = opt.lookup_rate;
    *tick = [&runtime, node, tick, wl_rng, rate, id_base, &lookup_counter,
             &log_mu, &issued, &active] {
      if (active.load()) {
        const NodeId key = wl_rng->node_id();
        const std::uint64_t lid = id_base | (++lookup_counter);
        {
          std::lock_guard<std::mutex> lock(log_mu);
          issued.push_back(IssuedRec{lid, key, runtime.clock().now()});
        }
        node->node->lookup(key, lid);
      }
      const SimDuration gap = std::max<SimDuration>(
          from_seconds(wl_rng->exponential(1.0 / rate)), 1000);
      node->env->schedule(gap, [tick] { (*tick)(); });
    };
    runtime.post(*node, [tick] { (*tick)(); });
  }

  // Main thread: wait for a signal or the duration to elapse.
  const SimTime t_end =
      opt.duration_s > 0
          ? runtime.clock().now() + from_seconds(opt.duration_s)
          : kTimeNever;
  while (g_signal.load() == 0 && runtime.clock().now() < t_end) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  runtime.stop();
  // The workload closure holds a shared_ptr to itself (so the timer can
  // reschedule it); break the cycle or it leaks under ASan.
  *tick = nullptr;

  // Trace dump: the standard obs JSONL rows, then the daemon rows the
  // launcher's correctness gates use (load_trace_dump ignores them).
  if (!opt.trace_path.empty() && runtime.trace_domain() != nullptr) {
    obs::write_trace_dump_file(*runtime.trace_domain(), opt.trace_path);
    std::ofstream os(opt.trace_path, std::ios::app);
    os << "{\"row\": \"session\", \"addr\": " << node->self.addr
       << ", \"id\": \"" << node->self.id.to_string()
       << "\", \"port\": " << node->endpoint.port
       << ", \"activated_us\": " << activated_at.load() << "}\n";
    std::lock_guard<std::mutex> lock(log_mu);
    for (const IssuedRec& r : issued) {
      os << "{\"row\": \"issued\", \"lookup\": " << r.lookup_id
         << ", \"key\": \"" << r.key.to_string() << "\", \"t\": " << r.t
         << ", \"origin\": " << node->self.addr << "}\n";
    }
    for (const DeliveryRec& r : delivered) {
      os << "{\"row\": \"delivery\", \"lookup\": " << r.lookup_id
         << ", \"key\": \"" << r.key.to_string() << "\", \"t\": " << r.t
         << ", \"by\": " << node->self.addr << ", \"by_id\": \""
         << node->self.id.to_string() << "\"}\n";
    }
  }

  const auto& st = runtime.stats();
  std::size_t n_issued, n_delivered;
  {
    std::lock_guard<std::mutex> lock(log_mu);
    n_issued = issued.size();
    n_delivered = delivered.size();
  }
  std::printf(
      "{\"row\": \"summary\", \"addr\": %d, \"active\": %s, "
      "\"issued\": %zu, \"delivered\": %zu, \"datagrams_in\": %" PRIu64
      ", \"datagrams_out\": %" PRIu64 ", \"decode_errors\": %" PRIu64
      ", \"encode_errors\": %" PRIu64 ", \"send_errors\": %" PRIu64
      ", \"book_collisions\": %" PRIu64 "}\n",
      node->self.addr, active.load() ? "true" : "false", n_issued,
      n_delivered, st.datagrams_in.load(), st.datagrams_out.load(),
      st.decode_errors.load(), st.encode_errors.load(),
      st.send_errors.load(), runtime.book().collisions());

  return active.load() ? 0 : 3;
}
