// trace_explorer — inspect flight-recorder dumps (src/obs).
//
// Reads a JSON-lines trace dump written by `mspastry-sim --trace=FILE`
// (or by the chaos harness when an SLO trips), rebuilds the per-node
// rings, reassembles end-to-end causal paths, and prints, filters,
// aggregates, or re-checks them offline.
//
// Examples:
//   trace_explorer run.trace.jsonl                   # overview + path list
//   trace_explorer run.trace.jsonl --show 00c32... # one path, hop by hop
//   trace_explorer run.trace.jsonl --kind lookup --outcome delivered --agg
//   trace_explorer run.trace.jsonl --check --n 300   # expectation checker
//   trace_explorer run.trace.jsonl --json paths.json # machine-readable rows
//   trace_explorer --merge node_*.trace.jsonl --check # localnet run:
//       per-process dumps combine into one domain, so causal paths that
//       hopped across processes reassemble before checking

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/expectations.hpp"
#include "obs/path_assembler.hpp"
#include "obs/trace_dump.hpp"

using namespace mspastry;

namespace {

struct Options {
  std::vector<std::string> dump_files;
  bool merge = false;
  std::string show;      // 16-hex trace id
  std::string kind;      // "", "lookup", "join"
  std::string outcome;   // "", "delivered", "dropped", ...
  std::string json_out;  // machine-readable rows via JsonEmitter
  int min_hops = -1;
  bool agg = false;
  bool check = false;
  int b = 4;
  std::size_t n = 0;  // overlay size for the hop bound; 0 = node-ring count
};

void usage() {
  std::puts(
      "trace_explorer DUMP [DUMP...] [options]\n"
      "  --merge            combine several dumps (one per process, e.g. a\n"
      "                     localnet run) into one trace domain before\n"
      "                     assembling paths; required for multiple DUMPs\n"
      "  --show TRACE       print one causal path (16-hex trace id) per hop\n"
      "  --kind lookup|join           filter paths\n"
      "  --outcome delivered|app-consumed|dropped|lost-in-network|unresolved\n"
      "  --min-hops N                 filter paths\n"
      "  --agg              per-hop delay attribution table over the\n"
      "                     filtered delivered paths\n"
      "  --check            run the Pip-style expectation checker over the\n"
      "                     dump; violations exit nonzero\n"
      "  --b N              digit width for the hop bound (default 4)\n"
      "  --n N              overlay size for the hop bound (default: the\n"
      "                     number of node rings in the dump)\n"
      "  --json FILE        write the filtered paths + hops as JSON rows\n"
      "                     (bench_util emitter format)\n");
}

bool parse(int argc, char** argv, Options& o) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--help" || a == "-h") return false;
    else if (a == "--show") { if (!(v = need(i))) return false; o.show = v; }
    else if (a == "--kind") { if (!(v = need(i))) return false; o.kind = v; }
    else if (a == "--outcome") { if (!(v = need(i))) return false; o.outcome = v; }
    else if (a == "--min-hops") { if (!(v = need(i))) return false; o.min_hops = std::atoi(v); }
    else if (a == "--json") { if (!(v = need(i))) return false; o.json_out = v; }
    else if (a == "--agg") o.agg = true;
    else if (a == "--check") o.check = true;
    else if (a == "--merge") o.merge = true;
    else if (a == "--b") { if (!(v = need(i))) return false; o.b = std::atoi(v); }
    else if (a == "--n") { if (!(v = need(i))) return false; o.n = std::strtoull(v, nullptr, 10); }
    else if (!a.empty() && a[0] != '-') o.dump_files.push_back(a);
    else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  if (o.dump_files.empty()) {
    std::fprintf(stderr, "no dump file given\n");
    return false;
  }
  if (o.dump_files.size() > 1 && !o.merge) {
    std::fprintf(stderr, "%zu dump files given; pass --merge to combine\n",
                 o.dump_files.size());
    return false;
  }
  return true;
}

const char* outcome_name(const obs::CausalPath& p) {
  if (p.delivered) return "delivered";
  if (p.consumed) return "app-consumed";
  if (p.dropped) return "dropped";
  if (p.net_lost) return "lost-in-network";
  return "unresolved";
}

bool keep(const obs::CausalPath& p, const Options& o) {
  if (!o.kind.empty() && o.kind != (p.is_join ? "join" : "lookup")) {
    return false;
  }
  if (!o.outcome.empty() && o.outcome != outcome_name(p)) return false;
  if (o.min_hops >= 0 && static_cast<int>(p.hops.size()) < o.min_hops) {
    return false;
  }
  return true;
}

void print_list(const std::vector<obs::CausalPath>& paths) {
  std::printf("%-18s %-6s %-15s %4s %4s %4s %9s\n", "trace", "kind",
              "outcome", "hops", "rrt", "rto", "lat(ms)");
  for (const obs::CausalPath& p : paths) {
    char lat[16] = "-";
    // issued_at is unknowable when the origin's ring is missing from the
    // dump (e.g. a localnet victim whose process was SIGKILLed).
    if (p.delivered && p.issued_at != kTimeNever) {
      std::snprintf(lat, sizeof lat, "%.2f",
                    to_seconds(p.total_latency()) * 1e3);
    }
    std::printf("%016llx   %-6s %-15s %4zu %4d %4d %9s%s\n",
                static_cast<unsigned long long>(p.trace_id),
                p.is_join ? "join" : "lookup", outcome_name(p),
                p.hops.size(), p.reroutes, p.timeouts, lat,
                p.complete ? "" : "  (incomplete: ring overwrote events)");
  }
}

/// Per-hop-index means over the delivered paths: where along the route
/// the time goes, split into wire transmission, RTO stalls and reroute
/// penalty — the delay-attribution lens of the per-hop analyses in
/// PAPERS.md.
void print_aggregate(const std::vector<obs::CausalPath>& paths) {
  struct Acc {
    std::uint64_t n = 0, timeouts = 0, reroutes = 0;
    double tx = 0, rto = 0, rr = 0;
  };
  std::vector<Acc> by_hop;
  std::uint64_t delivered = 0;
  for (const obs::CausalPath& p : paths) {
    if (!p.delivered) continue;
    ++delivered;
    for (const obs::HopRecord& h : p.hops) {
      const std::size_t idx = h.hop > 0 ? static_cast<std::size_t>(h.hop) : 0;
      if (idx >= by_hop.size()) by_hop.resize(idx + 1);
      Acc& a = by_hop[idx];
      ++a.n;
      a.timeouts += static_cast<std::uint64_t>(h.timeouts);
      a.reroutes += h.rerouted ? 1 : 0;
      if (h.transmission != kTimeNever) {
        a.tx += to_seconds(h.transmission) * 1e3;
      }
      a.rto += to_seconds(h.rto_wait) * 1e3;
      a.rr += to_seconds(h.reroute_penalty) * 1e3;
    }
  }
  std::printf("\nper-hop delay attribution (%llu delivered paths)\n",
              static_cast<unsigned long long>(delivered));
  std::printf("%4s %8s %8s %12s %12s %12s\n", "hop", "count", "rto/rrt",
              "tx(ms)", "rto-wait(ms)", "reroute(ms)");
  for (std::size_t i = 0; i < by_hop.size(); ++i) {
    const Acc& a = by_hop[i];
    if (a.n == 0) continue;
    const double n = static_cast<double>(a.n);
    std::printf("%4zu %8llu %4llu/%-3llu %12.3f %12.3f %12.3f\n", i,
                static_cast<unsigned long long>(a.n),
                static_cast<unsigned long long>(a.timeouts),
                static_cast<unsigned long long>(a.reroutes), a.tx / n,
                a.rto / n, a.rr / n);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 2;
  }

  // Load every dump; with --merge, absorb each per-process domain into
  // the first (addresses are unique per process in localnet runs, so
  // rings never collide) and cross-process paths reassemble whole.
  obs::TraceDomain domain{obs::ObsConfig{}};
  bool have_domain = false;
  for (const std::string& file : o.dump_files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 2;
    }
    const auto rows = obs::parse_dump_rows(in);
    if (rows.empty()) {
      std::fprintf(stderr, "%s: no dump rows\n", file.c_str());
      return 2;
    }
    obs::TraceDomain d = obs::load_trace_dump(rows);
    if (!have_domain) {
      domain = std::move(d);
      have_domain = true;
    } else {
      domain.absorb(std::move(d));
    }
  }

  std::uint64_t events = 0, dropped = 0;
  domain.for_each_recorder([&](const obs::FlightRecorder& r) {
    events += r.recorded() - r.dropped();
    dropped += r.dropped();
  });
  const auto all_paths = obs::assemble_paths(domain);
  std::vector<obs::CausalPath> paths;
  for (const obs::CausalPath& p : all_paths) {
    if (keep(p, o)) paths.push_back(p);
  }
  const std::string label =
      o.dump_files.size() == 1
          ? o.dump_files.front()
          : std::to_string(o.dump_files.size()) + " merged dumps";
  std::printf(
      "%s: %zu node rings, %llu events retained (%llu overwritten), "
      "%zu paths (%zu after filters)\n",
      label.c_str(), domain.recorder_count(),
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(dropped), all_paths.size(),
      paths.size());

  if (!o.show.empty()) {
    const std::uint64_t id = std::strtoull(o.show.c_str(), nullptr, 16);
    const auto path = obs::assemble_path(domain, id);
    if (!path) {
      std::fprintf(stderr, "no events for trace %s\n", o.show.c_str());
      return 1;
    }
    std::printf("\n%s", obs::describe(*path).c_str());
    return 0;
  }

  print_list(paths);
  if (o.agg) print_aggregate(paths);

  if (!o.json_out.empty()) {
    bench::JsonEmitter em("trace_paths", o.json_out);
    obs::emit_paths(em, paths);
    em.write();
  }

  if (o.check) {
    obs::ExpectationConfig ecfg;
    ecfg.b = o.b;
    ecfg.overlay_size = o.n != 0 ? o.n : domain.recorder_count();
    const auto report = obs::check_expectations(domain, all_paths, ecfg);
    std::printf("\n%s", report.summary().c_str());
    return report.ok() ? 0 : 1;
  }
  return 0;
}
