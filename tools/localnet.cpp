// localnet — multi-process overlay harness over mspastry-node daemons.
//
// Spawns N mspastry-node processes on localhost UDP ports, drives a
// join / steady-lookup / crash / reconverge / steady-lookup scenario,
// then gates the run offline:
//
//   1. every daemon completes the join protocol (status-file gate);
//   2. phase A (pre-crash): every lookup whose true root (closest id of
//      all N) survives the later kills is delivered exactly there;
//   3. SIGKILL `kills` random non-bootstrap daemons;
//   4. phase B (post-reconvergence): every lookup is delivered at the
//      closest id among the *survivors*, with zero incorrect deliveries,
//      and at least one phase-B key whose closest-of-N id belonged to a
//      victim is delivered at the surviving root — the reconvergence
//      proof;
//   5. the merged survivor trace dumps pass the same Pip-style
//      expectation rules the simulator runs (obs/expectations).
//
// Victim daemons die by SIGKILL, so their dumps are lost by design: the
// launcher knows their ids from its own assignment, and phase-A lookups
// rooted at a victim are excluded from the delivery gate (the proof of
// their delivery died with the victim's ring).
//
// Every gate decision comes from per-daemon JSONL dumps: the standard
// obs rows (merged with TraceDomain::absorb — port-derived addresses are
// unique across processes, so rings never collide) plus the daemon's
// "issued" / "delivery" rows, timestamped against the shared
// CLOCK_MONOTONIC epoch the launcher hands out.

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "obs/expectations.hpp"
#include "obs/path_assembler.hpp"
#include "obs/trace_dump.hpp"
#include "rt/clock.hpp"

using namespace mspastry;

namespace {

struct Options {
  std::string bin = "tools/mspastry-node";  // daemon binary
  int n = 50;
  int kills = 5;
  int base_port = 47100;
  double rate = 2.0;           // lookups/s per daemon
  double phase_a_s = 30.0;     // steady seconds before the kills
  double reconverge_s = 20.0;  // settle seconds after the kills
  double phase_b_s = 15.0;     // steady seconds after reconvergence
  double join_timeout_s = 120.0;
  double settle_s = 2.0;       // post-join settle before gating begins
  double tail_margin_s = 2.0;  // in-flight allowance before shutdown
  double min_delivery = 0.99;
  std::uint64_t seed = 1;
  std::string run_dir = "localnet-run";
  bool help = false;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --bin PATH        mspastry-node binary (default tools/mspastry-node)\n"
      "  --n N             overlay size (default 50)\n"
      "  --kills K         SIGKILL victims, never the bootstrap (default 5)\n"
      "  --base-port P     first UDP port; node i binds P+i (default 47100)\n"
      "  --rate R          per-daemon lookups/s (default 2)\n"
      "  --phase-a S       pre-crash steady seconds (default 30)\n"
      "  --reconverge S    post-crash settle seconds (default 20)\n"
      "  --phase-b S       post-reconvergence steady seconds (default 15)\n"
      "  --join-timeout S  join-gate deadline (default 120)\n"
      "  --settle S        post-join settle before gating lookups (2)\n"
      "  --min-delivery F  delivery-rate floor over gated lookups (0.99)\n"
      "  --seed N          id/victim rng seed (default 1)\n"
      "  --run-dir DIR     manifests, status files, logs, traces\n",
      argv0);
}

bool parse_args(int argc, char** argv, Options* o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (a == "--help" || a == "-h") o->help = true;
    else if (a == "--bin") { if (!(v = next("--bin"))) return false; o->bin = v; }
    else if (a == "--n") { if (!(v = next("--n"))) return false; o->n = std::atoi(v); }
    else if (a == "--kills") { if (!(v = next("--kills"))) return false; o->kills = std::atoi(v); }
    else if (a == "--base-port") { if (!(v = next("--base-port"))) return false; o->base_port = std::atoi(v); }
    else if (a == "--rate") { if (!(v = next("--rate"))) return false; o->rate = std::atof(v); }
    else if (a == "--phase-a") { if (!(v = next("--phase-a"))) return false; o->phase_a_s = std::atof(v); }
    else if (a == "--reconverge") { if (!(v = next("--reconverge"))) return false; o->reconverge_s = std::atof(v); }
    else if (a == "--phase-b") { if (!(v = next("--phase-b"))) return false; o->phase_b_s = std::atof(v); }
    else if (a == "--join-timeout") { if (!(v = next("--join-timeout"))) return false; o->join_timeout_s = std::atof(v); }
    else if (a == "--settle") { if (!(v = next("--settle"))) return false; o->settle_s = std::atof(v); }
    else if (a == "--min-delivery") { if (!(v = next("--min-delivery"))) return false; o->min_delivery = std::atof(v); }
    else if (a == "--seed") { if (!(v = next("--seed"))) return false; o->seed = std::strtoull(v, nullptr, 10); }
    else if (a == "--run-dir") { if (!(v = next("--run-dir"))) return false; o->run_dir = v; }
    else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return false;
    }
  }
  if (o->n < 2 || o->kills < 0 || o->kills >= o->n) {
    std::fprintf(stderr, "need n >= 2 and 0 <= kills < n\n");
    return false;
  }
  return true;
}

std::string path_in(const Options& o, int i, const char* suffix) {
  return o.run_dir + "/node_" + std::to_string(i) + suffix;
}

/// fork + exec one daemon with stdout/stderr captured to its log file.
pid_t spawn(const std::vector<std::string>& args, const std::string& log) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const int fd = open(log.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    dup2(fd, 1);
    dup2(fd, 2);
    close(fd);
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  execv(argv[0], argv.data());
  std::fprintf(stderr, "execv %s: %s\n", argv[0], std::strerror(errno));
  _exit(127);
}

void sleep_s(double s) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::int64_t>(s * 1e6)));
}

struct IssuedRow {
  std::uint64_t lookup_id;
  NodeId key;
  SimTime t;
};

struct DeliveryRow {
  NodeId by_id;
  SimTime t;
};

NodeId closest(const std::vector<NodeId>& ids, const NodeId& key) {
  NodeId best = ids.front();
  for (const NodeId& id : ids) {
    if (id.closer_to(key, best)) best = id;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse_args(argc, argv, &o)) {
    usage(argv[0]);
    return 2;
  }
  if (o.help) {
    usage(argv[0]);
    return 0;
  }

  mkdir(o.run_dir.c_str(), 0755);

  // The launcher assigns ids itself: it must know every id — including
  // the victims', whose manifests it could read but whose dumps die with
  // them — to compute closest-root ground truth offline.
  Rng id_rng(o.seed);
  std::vector<NodeId> ids;
  for (int i = 0; i < o.n; ++i) ids.push_back(id_rng.node_id());

  const SimTime epoch = rt::monotonic_micros();
  auto now_shared = [epoch] { return rt::monotonic_micros() - epoch; };

  std::printf("localnet: spawning %d daemons (ports %d..%d), epoch %lld\n",
              o.n, o.base_port, o.base_port + o.n - 1,
              static_cast<long long>(epoch));
  std::fflush(stdout);

  std::vector<pid_t> pids(o.n, -1);
  const std::string boot_ep =
      "127.0.0.1:" + std::to_string(o.base_port);
  for (int i = 0; i < o.n; ++i) {
    std::vector<std::string> args = {
        o.bin,
        "--port", std::to_string(o.base_port + i),
        "--id", ids[i].to_string(),
        "--seed", std::to_string(o.seed * 1000003 + i + 1),
        "--preset", "localnet",
        "--epoch-us", std::to_string(epoch),
        "--lookup-rate", std::to_string(o.rate),
        "--manifest", path_in(o, i, ".manifest.json"),
        "--status", path_in(o, i, ".status"),
        "--trace", path_in(o, i, ".trace.jsonl"),
    };
    if (i > 0) {
      args.insert(args.end(), {"--bootstrap", boot_ep,
                               "--bootstrap-id", ids[0].to_string()});
    }
    pids[i] = spawn(args, path_in(o, i, ".log"));
    if (pids[i] < 0) {
      std::fprintf(stderr, "fork failed for node %d\n", i);
      for (int j = 0; j < i; ++j) kill(pids[j], SIGKILL);
      return 1;
    }
    // Stagger joins a little so the bootstrap does not absorb the whole
    // overlay's join traffic in one burst.
    if (i > 0) sleep_s(0.1);
  }

  auto kill_all = [&] {
    for (pid_t p : pids) {
      if (p > 0) kill(p, SIGKILL);
    }
    for (pid_t p : pids) {
      if (p > 0) waitpid(p, nullptr, 0);
    }
  };

  // Join gate: every daemon writes its status file upon activation.
  SimTime t_joined = 0;
  {
    const SimTime deadline = now_shared() + from_seconds(o.join_timeout_s);
    int joined = 0;
    while (joined < o.n && now_shared() < deadline) {
      joined = 0;
      for (int i = 0; i < o.n; ++i) {
        if (access(path_in(o, i, ".status").c_str(), F_OK) == 0) ++joined;
      }
      if (joined < o.n) sleep_s(0.2);
    }
    if (joined < o.n) {
      std::fprintf(stderr,
                   "join gate FAILED: %d/%d daemons active after %.0fs\n",
                   joined, o.n, o.join_timeout_s);
      kill_all();
      return 1;
    }
    t_joined = now_shared();
    std::printf("localnet: all %d daemons active at t=%.1fs\n", o.n,
                to_seconds(t_joined));
    std::fflush(stdout);
  }

  // Phase A: steady lookups over the full overlay.
  sleep_s(o.phase_a_s);
  const SimTime t_kill = now_shared();

  // Crash: SIGKILL `kills` distinct victims, never the bootstrap (the
  // remaining daemons' join-retry path still points at it).
  Rng victim_rng(o.seed ^ 0x5EEDBEEF);
  std::set<int> victims;
  while (static_cast<int>(victims.size()) < o.kills) {
    victims.insert(1 + static_cast<int>(victim_rng.uniform_index(
                           static_cast<std::uint64_t>(o.n - 1))));
  }
  for (int v : victims) {
    std::printf("localnet: SIGKILL node %d (id %s) at t=%.1fs\n", v,
                ids[v].to_string().c_str(), to_seconds(t_kill));
    kill(pids[v], SIGKILL);
  }
  std::fflush(stdout);

  // Reconvergence window, then phase B steady lookups over survivors.
  sleep_s(o.reconverge_s);
  const SimTime t_phase_b = now_shared();
  sleep_s(o.phase_b_s);
  const SimTime t_stop = now_shared();

  for (int i = 0; i < o.n; ++i) {
    if (!victims.count(i)) kill(pids[i], SIGTERM);
  }

  // Reap: survivors must exit 0 (they dump traces on SIGTERM); victims
  // must have died by our SIGKILL.
  bool exit_gate_ok = true;
  for (int i = 0; i < o.n; ++i) {
    int st = 0;
    waitpid(pids[i], &st, 0);
    if (victims.count(i)) {
      if (!WIFSIGNALED(st) || WTERMSIG(st) != SIGKILL) {
        std::fprintf(stderr, "victim %d did not die by SIGKILL (status %d)\n",
                     i, st);
        exit_gate_ok = false;
      }
    } else if (!WIFEXITED(st) || WEXITSTATUS(st) != 0) {
      std::fprintf(stderr, "survivor %d exited abnormally (status %d)\n", i,
                   st);
      exit_gate_ok = false;
    }
  }

  // Merge the survivor dumps into one trace domain and collect the
  // daemons' issued/delivery ledger rows.
  obs::TraceDomain merged{obs::ObsConfig{}};
  bool have_domain = false;
  std::vector<IssuedRow> issued;
  std::unordered_map<std::uint64_t, std::vector<DeliveryRow>> deliveries;
  for (int i = 0; i < o.n; ++i) {
    if (victims.count(i)) continue;
    const std::string trace = path_in(o, i, ".trace.jsonl");
    std::ifstream in(trace);
    if (!in) {
      std::fprintf(stderr, "missing survivor dump %s\n", trace.c_str());
      exit_gate_ok = false;
      continue;
    }
    const auto rows = obs::parse_dump_rows(in);
    for (const obs::DumpRow& r : rows) {
      const std::string* row = r.get("row");
      if (row == nullptr) continue;
      if (*row == "issued") {
        issued.push_back(IssuedRow{r.u64("lookup"),
                                   NodeId::from_string(*r.get("key")),
                                   r.i64("t")});
      } else if (*row == "delivery") {
        deliveries[r.u64("lookup")].push_back(
            DeliveryRow{NodeId::from_string(*r.get("by_id")), r.i64("t")});
      }
    }
    obs::TraceDomain d = obs::load_trace_dump(rows);
    if (!have_domain) {
      merged = std::move(d);
      have_domain = true;
    } else {
      merged.absorb(std::move(d));
    }
  }

  std::vector<NodeId> survivor_ids;
  std::set<std::string> victim_id_set;
  for (int i = 0; i < o.n; ++i) {
    if (victims.count(i)) victim_id_set.insert(ids[i].to_string());
    else survivor_ids.push_back(ids[i]);
  }

  // Correctness gates over the issued/delivery ledger. A lookup is gated
  // when its phase gives it an unambiguous expected root and it was
  // issued early enough that its delivery had time to land before the
  // dumps were cut.
  const SimTime tail = from_seconds(o.tail_margin_s);
  // Lookups fired while daemons were still joining (or right after the
  // last activation) see a partial overlay whose legitimate root is the
  // closest *joined* id, not the closest of all N — they are outside
  // both phase windows.
  const SimTime t_gate_a = t_joined + from_seconds(o.settle_s);
  std::size_t a_gated = 0, a_delivered = 0, a_victim_rooted = 0;
  std::size_t b_gated = 0, b_delivered = 0, incorrect = 0, transition = 0;
  std::size_t reconv_proof = 0;  // phase-B keys whose closest-of-N died
  std::unordered_map<std::uint64_t, bool> verdicts;
  for (const IssuedRow& r : issued) {
    const bool phase_a = r.t >= t_gate_a && r.t < t_kill;
    const bool phase_b = r.t >= t_phase_b && r.t < t_stop - tail;
    if (!phase_a && !phase_b) {
      ++transition;
      continue;
    }
    const NodeId root_all = closest(ids, r.key);
    if (phase_a && victim_id_set.count(root_all.to_string())) {
      // The true root was later SIGKILLed: its delivery record died with
      // its dump, so the gate cannot see it. Excluded by design.
      ++a_victim_rooted;
      continue;
    }
    const NodeId expected = phase_a ? root_all : closest(survivor_ids, r.key);
    (phase_a ? a_gated : b_gated)++;
    const auto it = deliveries.find(r.lookup_id);
    bool correct = false;
    if (it != deliveries.end()) {
      for (const DeliveryRow& d : it->second) {
        if (d.by_id == expected) correct = true;
        else {
          ++incorrect;
          std::fprintf(stderr,
                       "INCORRECT delivery: lookup %llu key %s delivered by "
                       "%s, expected root %s\n",
                       static_cast<unsigned long long>(r.lookup_id),
                       r.key.to_string().c_str(), d.by_id.to_string().c_str(),
                       expected.to_string().c_str());
        }
      }
    }
    if (correct) {
      (phase_a ? a_delivered : b_delivered)++;
      if (phase_b && victim_id_set.count(root_all.to_string())) {
        ++reconv_proof;  // key re-homed from a dead root to a survivor
      }
    }
    verdicts[r.lookup_id] = correct;
  }

  // Expectation rules over the merged rings — the same declarative
  // checker the simulator gates on, with the localnet timer preset and
  // the ledger verdicts wired into the delivered-at-oracle-root rule.
  obs::ExpectationConfig ecfg;
  ecfg.b = 4;
  ecfg.overlay_size = static_cast<std::size_t>(o.n);
  ecfg.t_ls = seconds(5);
  ecfg.t_o = seconds(2);
  ecfg.lookup_verdict =
      [&verdicts](std::uint64_t lookup_id) -> std::optional<bool> {
    const auto it = verdicts.find(lookup_id);
    if (it == verdicts.end()) return std::nullopt;
    return it->second;
  };
  const auto paths = obs::assemble_paths(merged);
  const auto report = obs::check_expectations(merged, paths, ecfg);

  const std::size_t gated = a_gated + b_gated;
  const std::size_t delivered = a_delivered + b_delivered;
  const double rate =
      gated > 0 ? static_cast<double>(delivered) / static_cast<double>(gated)
                : 1.0;

  std::printf(
      "\nlocalnet report: n=%d kills=%d\n"
      "  phase A: %zu gated lookups, %zu delivered at root "
      "(%zu victim-rooted excluded)\n"
      "  phase B: %zu gated lookups, %zu delivered at surviving root\n"
      "  transition window skipped: %zu; incorrect deliveries: %zu\n"
      "  reconvergence proofs (dead root re-homed): %zu\n"
      "  delivery rate %.4f (floor %.4f)\n"
      "  merged domain: %zu rings, %zu paths\n%s",
      o.n, o.kills, a_gated, a_delivered, a_victim_rooted, b_gated,
      b_delivered, transition, incorrect, reconv_proof, rate, o.min_delivery,
      merged.recorder_count(), paths.size(), report.summary().c_str());

  bool ok = exit_gate_ok;
  if (!have_domain || merged.recorder_count() !=
                          static_cast<std::size_t>(o.n - o.kills)) {
    std::fprintf(stderr, "GATE: expected %d survivor rings, merged %zu\n",
                 o.n - o.kills, merged.recorder_count());
    ok = false;
  }
  if (incorrect > 0) {
    std::fprintf(stderr, "GATE: %zu incorrect deliveries\n", incorrect);
    ok = false;
  }
  if (gated == 0 || rate < o.min_delivery) {
    std::fprintf(stderr, "GATE: delivery rate %.4f below floor %.4f\n", rate,
                 o.min_delivery);
    ok = false;
  }
  if (o.kills > 0 && reconv_proof == 0) {
    std::fprintf(stderr,
                 "GATE: no phase-B lookup re-homed from a killed root — "
                 "reconvergence unproven\n");
    ok = false;
  }
  if (!report.ok()) {
    std::fprintf(stderr, "GATE: expectation checker found %zu violations\n",
                 report.violations.size());
    ok = false;
  }
  std::printf("localnet: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
