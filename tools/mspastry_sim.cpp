// mspastry_sim — command-line experiment runner.
//
// Runs an MSPastry overlay simulation with a chosen topology, churn trace
// and protocol configuration, and prints the paper's evaluation metrics
// (and optionally the windowed time series) as text.
//
// Examples:
//   mspastry_sim --topology gatech --trace gnutella --node-scale 0.1
//   mspastry_sim --topology corpnet --trace poisson --session-min 30
//                --population 300 --duration-min 90 --loss 0.05
//   mspastry_sim --trace-file churn.txt --no-acks --series rdp
//   mspastry_sim --save-trace churn.txt --trace overnet   (generate only)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "apps/sharded_web_cache.hpp"
#include "common/stats.hpp"
#include "net/corpnet.hpp"
#include "net/hier_as.hpp"
#include "net/transit_stub.hpp"
#include "obs/expectations.hpp"
#include "obs/path_assembler.hpp"
#include "obs/trace_dump.hpp"
#include "overlay/adversary.hpp"
#include "overlay/chaos.hpp"
#include "overlay/driver.hpp"
#include "overlay/sharded_driver.hpp"
#include "trace/churn_generators.hpp"

using namespace mspastry;

namespace {

struct Options {
  std::string topology = "gatech";  // gatech | mercator | corpnet
  std::string trace = "gnutella";   // gnutella | overnet | microsoft | poisson
  std::string trace_file;           // load events instead of generating
  std::string save_trace;           // write the generated trace and exit
  double node_scale = 0.1;
  double time_scale = 0.05;
  double session_min = 60.0;  // poisson only
  int population = 300;       // poisson only
  double duration_min = 90.0; // poisson only
  double loss = 0.0;
  double lookup_rate = 0.01;
  bool squirrel = false;  // sharded: attach the Squirrel-style web cache
  std::uint64_t seed = 7;
  std::size_t shards = 0;    // 0 = classic engine; N>=1 = sharded engine
  bool fault_recipe = false; // canonical loss+spike+duplicate plan (sharded)
  std::string chaos;              // named scenario | "all" | "list"
  std::uint64_t chaos_seed = 0;   // 0 = use --seed
  std::string adversary;          // behavior:fraction, e.g. misroute:0.2
  std::string eclipse_victim;     // hex key to cluster sybils around
  int redundancy = 1;             // diverse-path lookup copies
  bool leaf_checks = false;       // leaf-set plausibility countermeasure
  std::string trace_out;          // causal-trace dump path (obs subsystem)
  double trace_sample = 1.0;      // fraction of lookups/joins traced
  bool check_expectations = false;
  std::string series;  // "", "rdp", "control", "all"
  bool no_acks = false;
  bool no_probing = false;
  bool no_selftuning = false;
  bool no_suppression = false;
  bool no_pns = false;
  int b = 4;
  int l = 32;
  double target_lr = 0.05;
};

void usage() {
  std::puts(
      "mspastry_sim [options]\n"
      "  --topology gatech|mercator|corpnet   underlying network\n"
      "  --trace gnutella|overnet|microsoft|poisson\n"
      "  --trace-file FILE      load churn events (J/F lines) from FILE\n"
      "  --save-trace FILE      generate the trace, save it, and exit\n"
      "  --node-scale X         population scale vs the paper (default 0.1)\n"
      "  --time-scale X         duration scale vs the paper (default 0.05)\n"
      "  --session-min M        poisson: mean session minutes (default 60)\n"
      "  --population N         poisson: steady-state nodes (default 300)\n"
      "  --duration-min M       poisson: trace length (default 90)\n"
      "  --loss P               network loss probability (default 0)\n"
      "  --lookup-rate R        lookups/s/node (default 0.01)\n"
      "  --seed S               RNG seed (default 7); feeds the network,\n"
      "                         trace, and chaos streams, printed in the\n"
      "                         run header for reproducibility\n"
      "  --shards N             run on the parallel sharded engine with N\n"
      "                         worker shards; output is byte-identical to\n"
      "                         --shards 1, including --adversary,\n"
      "                         --eclipse-victim and --squirrel runs\n"
      "                         (not compatible with --chaos)\n"
      "  --fault-recipe         sharded only: install the canonical fault\n"
      "                         plan (1% loss, 20 ms delay spike mid-run,\n"
      "                         0.5% duplication) on every shard\n"
      "  --squirrel             sharded only: attach the Squirrel-style\n"
      "                         cooperative web cache (diurnal request\n"
      "                         workload, home-node caching) and report\n"
      "                         hit rates and request latencies\n"
      "  --chaos SCENARIO       run a chaos scenario instead of a trace:\n"
      "                         asym-partition|flap|delay-spike|dup-reorder|\n"
      "                         gray-stall|combined|byzantine-drop|\n"
      "                         byzantine-misroute|eclipse-victim|random|all\n"
      "                         (--chaos=list prints the scenario names)\n"
      "  --chaos-seed S         seed for the chaos fault schedule\n"
      "                         (default: --seed)\n"
      "  --adversary B:F        corrupt fraction F of live nodes at warmup\n"
      "                         with behavior B (drop|misroute|lie), e.g.\n"
      "                         --adversary=misroute:0.2\n"
      "  --eclipse-victim KEY   join 16 sybils clustered around hex KEY at\n"
      "                         warmup (combines with --adversary behavior)\n"
      "  --redundancy K         diverse-path lookups: K first-hop-disjoint\n"
      "                         copies, first correct delivery wins\n"
      "  --leaf-checks          enable leaf-set density/spacing\n"
      "                         plausibility checks\n"
      "  --trace=FILE           record causal traces (src/obs) and write a\n"
      "                         flight-recorder dump to FILE as JSON lines\n"
      "                         (--trace-out FILE is the same flag; inspect\n"
      "                         the dump with trace_explorer). With --chaos,\n"
      "                         FILE is a prefix: a scenario that trips an\n"
      "                         SLO dumps to FILE<scenario>.trace.jsonl\n"
      "  --trace-sample R       fraction of lookups/joins traced (default 1)\n"
      "  --check-expectations   run the Pip-style expectation checker over\n"
      "                         the traces; any violation exits nonzero\n"
      "                         (chaos runs report violations but never\n"
      "                         gate on them — faults break expectations)\n"
      "  --b N --l N            Pastry parameters (default 4, 32)\n"
      "  --target-lr X          self-tuning raw-loss target (default 0.05)\n"
      "  --no-acks --no-probing --no-selftuning --no-suppression --no-pns\n"
      "  --series rdp|control|all   also print windowed time series\n");
}

bool parse(int argc, char** argv, Options& o) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const char* v = nullptr;
    if (a == "--help" || a == "-h") return false;
    else if (a == "--topology") { if (!(v = need(i))) return false; o.topology = v; }
    else if (a == "--trace") { if (!(v = need(i))) return false; o.trace = v; }
    else if (a == "--trace-file") { if (!(v = need(i))) return false; o.trace_file = v; }
    else if (a == "--save-trace") { if (!(v = need(i))) return false; o.save_trace = v; }
    else if (a == "--node-scale") { if (!(v = need(i))) return false; o.node_scale = std::atof(v); }
    else if (a == "--time-scale") { if (!(v = need(i))) return false; o.time_scale = std::atof(v); }
    else if (a == "--session-min") { if (!(v = need(i))) return false; o.session_min = std::atof(v); }
    else if (a == "--population") { if (!(v = need(i))) return false; o.population = std::atoi(v); }
    else if (a == "--duration-min") { if (!(v = need(i))) return false; o.duration_min = std::atof(v); }
    else if (a == "--loss") { if (!(v = need(i))) return false; o.loss = std::atof(v); }
    else if (a == "--lookup-rate") { if (!(v = need(i))) return false; o.lookup_rate = std::atof(v); }
    else if (a == "--seed") { if (!(v = need(i))) return false; o.seed = std::strtoull(v, nullptr, 10); }
    else if (a == "--shards") { if (!(v = need(i))) return false; o.shards = static_cast<std::size_t>(std::atoi(v)); if (o.shards == 0) o.shards = 1; }
    else if (a.rfind("--shards=", 0) == 0) { o.shards = static_cast<std::size_t>(std::atoi(a.c_str() + 9)); if (o.shards == 0) o.shards = 1; }
    else if (a == "--fault-recipe") o.fault_recipe = true;
    else if (a == "--squirrel") o.squirrel = true;
    else if (a == "--chaos") { if (!(v = need(i))) return false; o.chaos = v; }
    else if (a.rfind("--chaos=", 0) == 0) o.chaos = a.substr(8);
    else if (a == "--chaos-seed") { if (!(v = need(i))) return false; o.chaos_seed = std::strtoull(v, nullptr, 10); }
    else if (a.rfind("--chaos-seed=", 0) == 0) o.chaos_seed = std::strtoull(a.c_str() + 13, nullptr, 10);
    else if (a == "--adversary") { if (!(v = need(i))) return false; o.adversary = v; }
    else if (a.rfind("--adversary=", 0) == 0) o.adversary = a.substr(12);
    else if (a == "--eclipse-victim") { if (!(v = need(i))) return false; o.eclipse_victim = v; }
    else if (a.rfind("--eclipse-victim=", 0) == 0) o.eclipse_victim = a.substr(17);
    else if (a == "--redundancy") { if (!(v = need(i))) return false; o.redundancy = std::atoi(v); }
    else if (a.rfind("--redundancy=", 0) == 0) o.redundancy = std::atoi(a.c_str() + 13);
    else if (a == "--leaf-checks") o.leaf_checks = true;
    // "--trace NAME" (space form) is the churn workload above; the "="
    // form and --trace-out are the causal-trace dump path.
    else if (a.rfind("--trace=", 0) == 0) o.trace_out = a.substr(8);
    else if (a == "--trace-out") { if (!(v = need(i))) return false; o.trace_out = v; }
    else if (a == "--trace-sample") { if (!(v = need(i))) return false; o.trace_sample = std::atof(v); }
    else if (a.rfind("--trace-sample=", 0) == 0) o.trace_sample = std::atof(a.c_str() + 15);
    else if (a == "--check-expectations") o.check_expectations = true;
    else if (a == "--b") { if (!(v = need(i))) return false; o.b = std::atoi(v); }
    else if (a == "--l") { if (!(v = need(i))) return false; o.l = std::atoi(v); }
    else if (a == "--target-lr") { if (!(v = need(i))) return false; o.target_lr = std::atof(v); }
    else if (a == "--series") { if (!(v = need(i))) return false; o.series = v; }
    else if (a == "--no-acks") o.no_acks = true;
    else if (a == "--no-probing") o.no_probing = true;
    else if (a == "--no-selftuning") o.no_selftuning = true;
    else if (a == "--no-suppression") o.no_suppression = true;
    else if (a == "--no-pns") o.no_pns = true;
    else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  return true;
}

std::shared_ptr<net::Topology> make_topology(const Options& o) {
  if (o.topology == "gatech") {
    return std::make_shared<net::TransitStubTopology>(
        net::TransitStubParams::scaled(6, 4, 5));
  }
  if (o.topology == "mercator") {
    net::HierASParams p;
    p.autonomous_systems = 80;
    p.routers_per_as = 15;
    return std::make_shared<net::HierASTopology>(p);
  }
  if (o.topology == "corpnet") {
    return std::make_shared<net::CorpNetTopology>(net::CorpNetParams{});
  }
  return nullptr;
}

trace::ChurnTrace make_trace(const Options& o) {
  if (!o.trace_file.empty()) {
    std::ifstream in(o.trace_file);
    if (!in) throw std::runtime_error("cannot open " + o.trace_file);
    return trace::ChurnTrace::load(in, o.trace_file);
  }
  if (o.trace == "gnutella") {
    return trace::generate_synthetic(
        trace::gnutella_params(o.node_scale, o.time_scale, o.seed + 1));
  }
  if (o.trace == "overnet") {
    return trace::generate_synthetic(
        trace::overnet_params(o.node_scale * 4, o.time_scale, o.seed + 1));
  }
  if (o.trace == "microsoft") {
    return trace::generate_synthetic(
        trace::microsoft_params(o.node_scale / 5, o.time_scale, o.seed + 1));
  }
  if (o.trace == "poisson") {
    return trace::generate_poisson(minutes(o.duration_min),
                                   o.session_min * 60.0, o.population,
                                   o.seed + 1);
  }
  throw std::runtime_error("unknown trace: " + o.trace);
}

void print_series(const char* name,
                  const std::vector<overlay::Metrics::SeriesPoint>& s) {
  std::printf("# series: %s (seconds\tvalue)\n", name);
  for (const auto& p : s) std::printf("%.6g\t%.6g\n", p.t_seconds, p.value);
}

/// The paper's evaluation block, shared by the single-threaded and
/// sharded paths (adversary extras are printed by the caller).
void print_results(overlay::Metrics& m, const pastry::Counters& c,
                   std::uint64_t executed_events) {
  std::printf("\nresults (post-warmup)\n");
  std::printf("  lookups issued            %llu\n",
              (unsigned long long)m.lookups_issued());
  std::printf("  delivered correctly       %llu\n",
              (unsigned long long)m.lookups_delivered_correct());
  std::printf("  incorrect delivery rate   %.3g\n",
              m.incorrect_delivery_rate());
  std::printf("  lookup loss rate          %.3g\n", m.loss_rate());
  std::printf("  RDP mean / median         %.2f / %.2f\n", m.mean_rdp(),
              m.rdp_samples().quantile(0.5));
  std::printf("  control traffic           %.3f msgs/s/node\n",
              m.control_traffic_rate());
  std::printf("  join latency p50 / p95    %.1f / %.1f s\n",
              m.join_latency_samples().quantile(0.5),
              m.join_latency_samples().quantile(0.95));
  std::printf("  false positives           %llu\n",
              (unsigned long long)c.false_positives);
  std::printf("  probes suppressed         %llu of %llu periodic\n",
              (unsigned long long)c.rt_probes_suppressed,
              (unsigned long long)(c.rt_probes_suppressed +
                                   c.rt_probes_periodic));
  std::printf("  simulator events          %llu\n",
              (unsigned long long)executed_events);
}

/// Causal-trace dump + expectation checking, shared by both engines.
int finish_tracing(const Options& o, const obs::TraceDomain& domain,
                   std::size_t overlay_size,
                   const overlay::DriverConfig& dcfg) {
  int rc = 0;
  const auto paths = obs::assemble_paths(domain);
  std::printf("\ncausal traces: %zu paths from %zu node rings "
              "(sample rate %.3g)\n",
              paths.size(), domain.recorder_count(), o.trace_sample);
  if (!o.trace_out.empty()) {
    if (obs::write_trace_dump_file(domain, o.trace_out)) {
      std::printf("trace dump written to %s\n", o.trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace dump %s\n",
                   o.trace_out.c_str());
      rc = 2;
    }
  }
  if (o.check_expectations) {
    obs::ExpectationConfig ecfg;
    ecfg.b = o.b;
    ecfg.overlay_size = overlay_size;
    ecfg.t_ls = dcfg.pastry.t_ls;
    ecfg.t_o = dcfg.pastry.t_o;
    ecfg.failed_entry_ttl = dcfg.pastry.failed_entry_ttl;
    const auto report = obs::check_expectations(domain, paths, ecfg);
    std::printf("%s", report.summary().c_str());
    if (!report.ok()) rc = 1;
  }
  return rc;
}

/// Parse --adversary behavior:fraction (shared by both engines). Returns
/// false (after printing to stderr) on a malformed spec.
bool parse_adversary_spec(const Options& o,
                          overlay::AdversaryBehavior& behavior,
                          double& fraction) {
  behavior = overlay::AdversaryBehavior::kMisroute;
  fraction = 0.0;
  if (o.adversary.empty()) return true;
  const auto colon = o.adversary.find(':');
  const std::string bname = o.adversary.substr(0, colon);
  const auto parsed = overlay::behavior_from_name(bname);
  if (!parsed) {
    std::fprintf(stderr, "unknown adversary behavior: %s\n", bname.c_str());
    return false;
  }
  behavior = *parsed;
  if (colon != std::string::npos) {
    char* end = nullptr;
    fraction = std::strtod(o.adversary.c_str() + colon + 1, &end);
    if (end == o.adversary.c_str() + colon + 1 || *end != '\0' ||
        fraction < 0.0 || fraction > 1.0) {
      std::fprintf(stderr, "bad adversary fraction (want 0..1): %s\n",
                   o.adversary.c_str() + colon + 1);
      return false;
    }
  }
  return true;
}

/// Adversary result block shared by both engines.
void print_adversary_results(overlay::Metrics& m,
                             const pastry::Counters& c) {
  std::printf("  incorrect: adversarial    %llu (stale leaf set %llu)\n",
              (unsigned long long)m.incorrect_misrouted_by_adversary(),
              (unsigned long long)m.incorrect_stale_leaf_set());
  std::printf("  lost: devoured            %llu\n",
              (unsigned long long)m.lost_dropped_by_adversary());
  std::printf("  adversary actions         %llu drops, %llu misroutes, "
              "%llu corrupted replies\n",
              (unsigned long long)c.lookups_dropped_adversarial,
              (unsigned long long)c.lookups_misrouted_adversarial,
              (unsigned long long)(c.ls_replies_corrupted +
                                   c.nn_replies_corrupted));
  std::printf("  countermeasures           %llu redundant copies, "
              "%llu leaf rejections, %llu distrusted claims\n",
              (unsigned long long)c.redundant_lookup_copies,
              (unsigned long long)c.leaf_candidates_rejected,
              (unsigned long long)c.failure_claims_distrusted);
}

int run_sharded(const Options& o, std::shared_ptr<net::Topology> topology,
                const net::NetworkConfig& ncfg,
                const overlay::DriverConfig& dcfg,
                const trace::ChurnTrace& churn) {
  overlay::ShardedDriver driver(std::move(topology), ncfg, dcfg, o.shards);
  std::printf("sharded engine: %zu shards requested, %zu effective, "
              "lookahead %lld us\n",
              driver.requested_shards(), driver.effective_shards(),
              (long long)driver.lookahead());
  apps::ShardedWebCacheService squirrel;
  const bool with_adversary =
      !o.adversary.empty() || !o.eclipse_victim.empty();
  try {
    if (o.fault_recipe) {
      driver.add_fault_rule(
          net::FaultRule::loss(net::LinkMatcher::all(), 0.01));
      driver.add_fault_rule(net::FaultRule::delay_spike(
          net::LinkMatcher::all(), milliseconds(20), churn.duration() / 3,
          churn.duration() * 2 / 3));
      driver.add_fault_rule(net::FaultRule::duplicate(
          net::LinkMatcher::all(), 0.005, milliseconds(1)));
      std::printf("fault recipe: loss 1%%, delay spike 20 ms over the "
                  "middle third, duplication 0.5%%\n");
    }
    if (o.squirrel) {
      driver.attach_app(&squirrel);
      std::printf("squirrel: cooperative web cache attached "
                  "(diurnal workload)\n");
    }
    if (with_adversary) {
      overlay::AdversaryBehavior behavior;
      double fraction = 0.0;
      if (!parse_adversary_spec(o, behavior, fraction)) return 2;
      overlay::ShardedAdversaryConfig adv;
      adv.behavior = behavior;
      adv.fraction = fraction;
      adv.arm_at = dcfg.warmup;
      if (!o.eclipse_victim.empty()) {
        adv.eclipse_sybils = 16;
        adv.eclipse_victim = NodeId::from_string(o.eclipse_victim);
      }
      adv.seed = o.seed ^ 0xadd5a17ull;
      driver.set_adversary(adv);
      std::printf(
          "adversary: behavior %s, fraction %.2f, sybils %d, seed %llu, "
          "arms at %.0f s; countermeasures: redundancy %d, leaf-checks %s\n",
          overlay::to_string(behavior), fraction, adv.eclipse_sybils,
          (unsigned long long)adv.seed, to_seconds(adv.arm_at),
          o.redundancy, o.leaf_checks ? "on" : "off");
    }
    driver.run_trace(churn);
  } catch (const overlay::ConfigError& e) {
    std::fprintf(stderr, "config error: %s\n", e.what());
    return 2;
  } catch (const pastry::CodecError& e) {
    std::fprintf(stderr, "codec error (%s): %s\n",
                 pastry::wire_status_name(e.status()), e.what());
    return 2;
  }
  print_results(driver.metrics(), driver.counters(),
                driver.executed_events());
  if (with_adversary) {
    print_adversary_results(driver.metrics(), driver.counters());
    std::printf("  packets devoured          %llu; sybils joined %zu\n",
                (unsigned long long)driver.packets_dropped_adversarial(),
                driver.sybil_addresses().size());
  }
  if (o.squirrel) {
    const auto st = squirrel.stats();
    SampleSet lat;
    for (const double s : driver.app_latency_samples()) lat.add(s);
    std::printf("  squirrel requests         %llu (%llu hits, %llu misses, "
                "%llu responses)\n",
                (unsigned long long)st.requests, (unsigned long long)st.hits,
                (unsigned long long)st.misses,
                (unsigned long long)st.responses);
    std::printf("  squirrel latency p50/p95  %.1f / %.1f ms (%zu samples, "
                "%zu objects cached)\n",
                lat.quantile(0.5) * 1e3, lat.quantile(0.95) * 1e3,
                lat.count(), squirrel.cached_total());
  }
  std::printf("  epochs                    %llu\n",
              (unsigned long long)driver.epochs());
  if (o.series == "rdp" || o.series == "all") {
    print_series("RDP", driver.metrics().rdp_series());
  }
  if (o.series == "control" || o.series == "all") {
    print_series("control traffic (msgs/s/node)",
                 driver.metrics().control_traffic_series(churn.duration()));
  }
  if (dcfg.obs.enabled && driver.trace_domain() != nullptr) {
    return finish_tracing(o, *driver.trace_domain(),
                          driver.oracle().active_count(), dcfg);
  }
  return 0;
}

}  // namespace

int run_chaos(const Options& o) {
  auto topology = make_topology(o);
  if (!topology) {
    std::fprintf(stderr, "unknown topology: %s\n", o.topology.c_str());
    return 2;
  }
  overlay::ChaosConfig cfg;
  cfg.seed = o.chaos_seed != 0 ? o.chaos_seed : o.seed;
  cfg.pastry.b = o.b;
  cfg.pastry.l = o.l;
  cfg.obs.sample_rate = o.trace_sample;
  cfg.trace_dump_prefix = o.trace_out;
  std::printf("chaos: scenario %s, seed %llu, topology %s\n",
              o.chaos.c_str(), (unsigned long long)cfg.seed,
              topology->name().c_str());
  overlay::ChaosHarness harness(std::move(topology), cfg);
  const auto names = o.chaos == "all"
                         ? overlay::ChaosHarness::scenarios()
                         : std::vector<std::string>{o.chaos};
  bool all_ok = true;
  for (const auto& name : names) {
    overlay::ChaosResult r;
    try {
      r = harness.run(name);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s (known scenarios:", e.what());
      for (const auto& s : overlay::ChaosHarness::scenarios()) {
        std::fprintf(stderr, " %s", s.c_str());
      }
      std::fprintf(stderr, " random all)\n");
      return 2;
    }
    std::printf("\n--- %s (seed %llu) ---\nfault schedule:\n%s",
                r.scenario.c_str(), (unsigned long long)r.seed,
                r.fault_schedule.c_str());
    std::printf(
        "during faults: %llu probes, loss %.3f, incorrect %.3f\n"
        "after heal:    %llu probes, loss %.3f, incorrect %.3f\n",
        (unsigned long long)r.fault_issued, r.fault_loss_rate(),
        r.fault_incorrect_rate(), (unsigned long long)r.heal_issued,
        r.heal_loss_rate(), r.heal_incorrect_rate());
    if (r.reconverge_seconds < 0) {
      std::printf("reconvergence: never\n");
    } else {
      std::printf("reconvergence: %.1f s after heal\n",
                  r.reconverge_seconds);
    }
    if (r.scenario == "gray-stall") {
      std::printf("gray failure: rerouted=%s condemned=%s recovered=%s\n",
                  r.stall_rerouted ? "yes" : "no",
                  r.stall_condemned ? "yes" : "no",
                  r.stall_recovered ? "yes" : "no");
    }
    for (const auto& v : r.violations) {
      std::printf("violation: %s\n", v.c_str());
    }
    if (!r.expectation_summary.empty()) {
      std::printf("%s", r.expectation_summary.c_str());
    }
    for (const auto& p : r.offending_paths) {
      std::printf("\noffending lookup:\n%s", p.c_str());
    }
    if (!r.trace_dump_path.empty()) {
      std::printf("trace dump written to %s\n", r.trace_dump_path.c_str());
    }
    std::printf("verdict: %s\n", r.ok() ? "ok" : "FAIL");
    all_ok = all_ok && r.ok();
  }
  return all_ok ? 0 : 1;
}

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 2;
  }
  if (o.chaos == "list") {
    for (const auto& s : overlay::ChaosHarness::scenarios()) {
      std::puts(s.c_str());
    }
    std::puts("random");
    return 0;
  }
  std::printf("seed: %llu\n", (unsigned long long)o.seed);
  if (!o.chaos.empty()) return run_chaos(o);

  trace::ChurnTrace churn = make_trace(o);
  const auto pop = churn.population_stats();
  std::printf("trace: %s, %d sessions, active %d..%d, %.2f h\n",
              churn.name().c_str(), churn.session_count(), pop.min_active,
              pop.max_active, to_seconds(churn.duration()) / 3600.0);
  if (!o.save_trace.empty()) {
    std::ofstream out(o.save_trace);
    churn.save(out);
    std::printf("trace written to %s\n", o.save_trace.c_str());
    return 0;
  }

  auto topology = make_topology(o);
  if (!topology) {
    std::fprintf(stderr, "unknown topology: %s\n", o.topology.c_str());
    return 2;
  }
  std::printf("topology: %s (%d routers), loss %.1f%%\n",
              topology->name().c_str(), topology->router_count(),
              o.loss * 100);

  net::NetworkConfig ncfg;
  ncfg.loss_rate = o.loss;
  ncfg.lan_delay = o.topology == "mercator" ? 0 : milliseconds(1);

  overlay::DriverConfig dcfg;
  dcfg.lookup_rate_per_node = o.lookup_rate;
  dcfg.seed = o.seed;
  dcfg.warmup = std::min<SimDuration>(churn.duration() / 5, hours(1));
  dcfg.pastry.b = o.b;
  dcfg.pastry.l = o.l;
  dcfg.pastry.per_hop_acks = !o.no_acks;
  dcfg.pastry.active_rt_probing = !o.no_probing;
  dcfg.pastry.self_tuning = !o.no_selftuning;
  dcfg.pastry.suppression = !o.no_suppression;
  dcfg.pastry.pns = !o.no_pns;
  dcfg.pastry.target_raw_loss = o.target_lr;
  dcfg.pastry.lookup_redundancy = o.redundancy;
  dcfg.pastry.leaf_plausibility_checks = o.leaf_checks;
  const bool tracing = !o.trace_out.empty() || o.check_expectations;
  dcfg.obs.enabled = tracing;
  dcfg.obs.sample_rate = o.trace_sample;

  if (o.shards >= 1) return run_sharded(o, topology, ncfg, dcfg, churn);
  if (o.fault_recipe) {
    std::fprintf(stderr, "--fault-recipe requires --shards N (N > 1)\n");
    return 2;
  }

  overlay::OverlayDriver driver(topology, ncfg, dcfg);

  // Adversary: parse behavior:fraction, arm at warmup (the overlay is
  // populated by then), print the configuration + seed in the header so
  // the run is reproducible from the printed line alone.
  std::unique_ptr<overlay::AdversaryController> adversary;
  if (!o.adversary.empty() || !o.eclipse_victim.empty()) {
    overlay::AdversaryBehavior behavior;
    double fraction = 0.0;
    if (!parse_adversary_spec(o, behavior, fraction)) return 2;
    const std::uint64_t adv_seed = o.seed ^ 0xadd5a17ull;
    adversary = std::make_unique<overlay::AdversaryController>(
        driver, behavior, 1.0, adv_seed);
    std::printf(
        "adversary: behavior %s, fraction %.2f%s%s, seed %llu, armed at "
        "warmup (%.0f s); countermeasures: redundancy %d, leaf-checks %s\n",
        overlay::to_string(behavior), fraction,
        o.eclipse_victim.empty() ? "" : ", eclipse victim ",
        o.eclipse_victim.c_str(), (unsigned long long)adv_seed,
        to_seconds(dcfg.warmup), o.redundancy, o.leaf_checks ? "on" : "off");
    overlay::AdversaryController* adv = adversary.get();
    const Options* opt = &o;
    driver.sim().schedule_at(dcfg.warmup, [adv, opt, fraction] {
      if (!opt->eclipse_victim.empty()) {
        adv->join_eclipse_cluster(NodeId::from_string(opt->eclipse_victim),
                                  16, /*join_gap=*/0);
      }
      if (!opt->adversary.empty()) adv->corrupt_fraction(fraction);
      std::printf("adversary armed: %s\n", adv->describe().c_str());
    });
  }

  driver.run_trace(churn);

  auto& m = driver.metrics();
  const auto& c = driver.counters();
  print_results(m, c, driver.sim().executed_events());
  if (adversary != nullptr) print_adversary_results(m, c);

  if (o.series == "rdp" || o.series == "all") {
    print_series("RDP", m.rdp_series());
  }
  if (o.series == "control" || o.series == "all") {
    print_series("control traffic (msgs/s/node)",
                 m.control_traffic_series(churn.duration()));
  }

  if (tracing) {
    return finish_tracing(o, *driver.trace_domain(),
                          driver.oracle().active_count(), dcfg);
  }
  return 0;
}
