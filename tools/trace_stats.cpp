// trace_stats — analyse a churn trace file (or a generated preset):
// session statistics, population band, and the Figure-3 failure-rate
// series as tab-separated text.
//
//   trace_stats churn.txt
//   trace_stats --preset gnutella --node-scale 0.1 --time-scale 0.05
//   trace_stats churn.txt --window-min 30

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "trace/churn_generators.hpp"
#include "trace/churn_trace.hpp"

using namespace mspastry;

namespace {

void usage() {
  std::puts(
      "trace_stats [FILE | --preset gnutella|overnet|microsoft]\n"
      "  --node-scale X   preset population scale (default 0.1)\n"
      "  --time-scale X   preset duration scale (default 0.05)\n"
      "  --seed S         preset RNG seed (default 1)\n"
      "  --window-min M   failure-rate window (default 10)\n"
      "  --no-series      statistics only\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::string preset;
  double node_scale = 0.1;
  double time_scale = 0.05;
  std::uint64_t seed = 1;
  double window_min = 10.0;
  bool series = true;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto need = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (a == "--preset") {
      const char* v = need();
      if (!v) return 2;
      preset = v;
    } else if (a == "--node-scale") {
      const char* v = need();
      if (!v) return 2;
      node_scale = std::atof(v);
    } else if (a == "--time-scale") {
      const char* v = need();
      if (!v) return 2;
      time_scale = std::atof(v);
    } else if (a == "--seed") {
      const char* v = need();
      if (!v) return 2;
      seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--window-min") {
      const char* v = need();
      if (!v) return 2;
      window_min = std::atof(v);
    } else if (a == "--no-series") {
      series = false;
    } else if (!a.empty() && a[0] != '-') {
      file = a;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      usage();
      return 2;
    }
  }

  trace::ChurnTrace t;
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    t = trace::ChurnTrace::load(in, file);
  } else if (preset == "gnutella") {
    t = trace::generate_synthetic(
        trace::gnutella_params(node_scale, time_scale, seed));
  } else if (preset == "overnet") {
    t = trace::generate_synthetic(
        trace::overnet_params(node_scale * 4, time_scale, seed));
  } else if (preset == "microsoft") {
    t = trace::generate_synthetic(
        trace::microsoft_params(node_scale / 5, time_scale, seed));
  } else {
    usage();
    return 2;
  }

  const auto stats = t.session_stats();
  const auto pop = t.population_stats();
  std::printf("trace            %s\n", t.name().c_str());
  std::printf("duration         %.2f h\n", to_seconds(t.duration()) / 3600);
  std::printf("sessions         %d (%zu completed)\n", t.session_count(),
              stats.completed_sessions);
  std::printf("session mean     %.1f min\n", stats.mean_seconds / 60);
  std::printf("session median   %.1f min\n", stats.median_seconds / 60);
  std::printf("active nodes     %d..%d (mean %.0f)\n", pop.min_active,
              pop.max_active, pop.mean_active);
  if (stats.mean_seconds > 0) {
    std::printf("failure rate     %.3g /node/s (1/mean-session)\n",
                1.0 / stats.mean_seconds);
  }
  if (series) {
    std::printf("\n# failure rate series (hours\t/node/s), %g-minute windows\n",
                window_min);
    for (const auto& [ts, rate] :
         t.failure_rate_series(minutes(window_min))) {
      std::printf("%.4g\t%.4g\n", ts / 3600.0, rate);
    }
  }
  return 0;
}
